// Package repro is a from-scratch, stdlib-only Go reproduction of
// "VSS: A Storage System for Video Analytics" (SIGMOD 2021).
//
// The public API lives in repro/vss; the storage manager in
// internal/core; substrates (codec, vision, clustering, solver, catalog,
// storage, indexes, cost and quality models) under internal/. See
// README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for recorded
// paper-vs-measured results. bench_test.go wraps every evaluation
// experiment in a testing.B harness; cmd/vssbench runs them standalone.
//
// # Concurrency
//
// The storage manager is safe for concurrent use and built for it: VSS
// sits beneath a video DBMS serving many camera streams and readers at
// once. Locking is two-tier — a short-lived store-wide registry lock
// guards only the catalog of logical videos, while each video carries its
// own lock, so operations on different videos (reads, writes, eviction,
// deferred compression, compaction) proceed fully in parallel and
// background maintenance never blocks foreground traffic on other videos.
// Within a single read, plan selection and cache admission run under the
// video's lock but the CPU-heavy GOP decode/convert/encode pipeline fans
// out on a bounded worker pool (vss.Options.Workers, default GOMAXPROCS)
// with no locks held. Cross-video operations — joint compression and
// reads that traverse duplicate/joint GOP references — acquire the
// involved video locks in sorted name order, which keeps the system
// deadlock-free. See internal/core/store.go for the full contract.
package repro
