// Package repro is a from-scratch, stdlib-only Go reproduction of
// "VSS: A Storage System for Video Analytics" (SIGMOD 2021).
//
// The public API lives in repro/vss; the storage manager in
// internal/core; substrates (codec, vision, clustering, solver, catalog,
// storage, indexes, cost and quality models) under internal/. See
// README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for recorded
// paper-vs-measured results. bench_test.go wraps every evaluation
// experiment in a testing.B harness; cmd/vssbench runs them standalone.
package repro
