// Package repro is a from-scratch, stdlib-only Go reproduction of
// "VSS: A Storage System for Video Analytics" (SIGMOD 2021).
//
// The public API lives in repro/vss; the storage manager in
// internal/core; substrates (codec, vision, clustering, solver, catalog,
// storage, indexes, cost and quality models) under internal/. See
// README.md for the system overview, quickstart, and benchmark results;
// docs/ARCHITECTURE.md for the paper-section → package map and the
// locking/pipeline invariants; docs/WIRE.md for the normative wire
// protocol (video plane and GOP storage plane); docs/CLUSTER.md for
// running a multi-node fleet; docs/METRICS.md for the vssd /metrics
// reference; and examples/README.md for the example index. bench_test.go
// wraps every evaluation experiment in a testing.B harness; cmd/vssbench
// runs them standalone.
//
// # Concurrency
//
// The storage manager is safe for concurrent use and built for it: VSS
// sits beneath a video DBMS serving many camera streams and readers at
// once. Locking is two-tier — a short-lived store-wide registry lock
// guards only the catalog of logical videos, while each video carries its
// own lock, so operations on different videos (reads, writes, eviction,
// deferred compression, compaction) proceed fully in parallel and
// background maintenance never blocks foreground traffic on other videos.
// Within a single read, plan selection and cache admission run under the
// video's lock but the CPU-heavy GOP decode/convert/encode pipeline fans
// out on a bounded worker pool (vss.Options.Workers, default GOMAXPROCS)
// with no locks held. Cross-video operations — joint compression and
// reads that traverse duplicate/joint GOP references — acquire the
// involved video locks in sorted name order, which keeps the system
// deadlock-free. See internal/core/store.go for the full contract.
//
// Ingest is pipelined the same way: a streaming Writer hands each
// completed GOP to a bounded pool of encode workers (vss.WriteOptions
// EncodeWorkers, default Options.Workers, sharing the same store-wide CPU
// budget as reads) and commits encoded GOPs strictly in append order
// through a sequenced commit queue, so a single camera stream compresses
// on every core while readers still only ever observe a durable prefix of
// the appended frames. At most MaxInflightGOPs GOPs buffer in the
// pipeline before Append blocks; encode or commit errors surface — first
// in append order, deterministically — on a later Append or on
// Flush/Close, which drain the pipeline. Bulk ingest through WriteEncoded
// validates outside the video lock and commits in bounded chunks so it
// cannot starve concurrent readers of the same video. See
// internal/core/writer.go for the engine.
//
// # Serving
//
// The serving layer exposes the store over the network. Two pieces
// compose it:
//
// First, a streaming read path in the core (vss.System.ReadStream,
// internal/core/stream.go): the same plan/snapshot phase as Read, but
// output units — encoded GOPs for compressed reads, frame batches for raw
// — are yielded in order as the parallel decode pipeline produces them,
// with decode memory bounded by a small look-ahead window instead of the
// full ReadResult (passthrough bytes are still snapshotted up front; see
// internal/core/stream.go for the exact contract). context.Context is plumbed through both ReadStream and
// ReadContext, so a cancelled read stops decoding at the next GOP
// boundary (first-error-wins checks in the worker loops). Streamed bytes
// are identical to what Read returns; the trade is that streaming reads
// never cache-admit their result.
//
// Second, the vssd daemon (cmd/vssd, internal/server): HTTP endpoints for
// create/delete/stat/ls, GOP-level encoded writes, and streaming reads
// whose responses are chunk-framed and flushed as the pipeline produces
// them — a disconnected client cancels its in-flight decode work. Around
// the store it adds the production-shape concerns the library cannot
// express: an admission controller bounding in-flight reads with a
// bounded wait queue and per-client limits (429 beyond them), a
// byte-bounded LRU of hot encoded responses invalidated on writes, and a
// /metrics endpoint surfacing read statistics, cache hit rates, queue
// depths, per-video deferred-compression levels, and storage-backend
// counters. See examples/serving for an end-to-end walkthrough and
// internal/server's package comment for the endpoint and wire-format
// reference.
//
// # Storage layout and backends
//
// The physical layer follows Figure 2 of the paper — one directory per
// logical video, one subdirectory per physical video (materialized
// view), one file per GOP, written atomically and hard-linked for
// compaction — but the layout is addressed logically as (video,
// physical-video dir, sequence) behind the storage.Backend interface
// (internal/storage), so where GOPs physically live is pluggable
// (vss.Options.Backend):
//
//   - localfs (default): a single root under <store>/data.
//   - sharded: N roots with each GOP placed by a stable hash of its
//     address — one root per disk spreads IO, per-shard operations run
//     in parallel, and a degraded shard fails per GOP instead of
//     store-wide. vssd/vssctl select it with -shards N (conventional
//     roots under the store directory) or -shard-roots for explicit,
//     order-stable disk paths. With -replicas R every GOP lives on R
//     distinct roots (primary + ring successors): writes fan out with
//     first-success durability, reads fail over past degraded roots
//     (repeat offenders demote to last resort), and the maintenance
//     pass scrubs placements, re-copying missing or stale replicas from
//     a healthy copy with the catalog as the size oracle — so losing a
//     disk is a slowdown, not an outage, and replication converges back
//     to R on its own.
//   - mem: in-memory, for tests and IO-free benchmarks; CI re-runs the
//     core suite against it (VSS_BACKEND=mem) to enforce backend parity.
//   - remote: one vssd node reached over the wire protocol's GOP
//     storage plane (docs/WIRE.md), with retry-and-backoff on transport
//     errors and 5xx — never on 4xx. internal/router composes N remotes
//     into a cluster backend (hash-ring placement, replica fan-out,
//     read failover, a write-repair journal, and the same scrub engine
//     as sharded), which cmd/vssrouterd serves as a stateless scale-out
//     front end; see docs/CLUSTER.md.
//
// The metadata catalog always stays on the local filesystem under
// <store>/catalog. On the read side, GOP bytes are fetched by an
// asynchronous IO-prefetch stage that runs ahead of the decode workers
// with a bounded look-ahead window (2*Workers), overlapping backend or
// shard IO with decode for both batch and streaming reads; a prefetched
// GOP that changed identity mid-flight (evicted, jointly compressed,
// lossless-recompressed) is detected per GOP and re-snapshotted under
// the video lock. The io bench experiment measures cold reads across
// backends with and without prefetch; see examples/sharded for a
// multi-root walkthrough.
package repro
