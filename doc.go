// Package repro is a from-scratch, stdlib-only Go reproduction of
// "VSS: A Storage System for Video Analytics" (SIGMOD 2021).
//
// The public API lives in repro/vss; the storage manager in
// internal/core; substrates (codec, vision, clustering, solver, catalog,
// storage, indexes, cost and quality models) under internal/. See
// README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for recorded
// paper-vs-measured results. bench_test.go wraps every evaluation
// experiment in a testing.B harness; cmd/vssbench runs them standalone.
//
// # Concurrency
//
// The storage manager is safe for concurrent use and built for it: VSS
// sits beneath a video DBMS serving many camera streams and readers at
// once. Locking is two-tier — a short-lived store-wide registry lock
// guards only the catalog of logical videos, while each video carries its
// own lock, so operations on different videos (reads, writes, eviction,
// deferred compression, compaction) proceed fully in parallel and
// background maintenance never blocks foreground traffic on other videos.
// Within a single read, plan selection and cache admission run under the
// video's lock but the CPU-heavy GOP decode/convert/encode pipeline fans
// out on a bounded worker pool (vss.Options.Workers, default GOMAXPROCS)
// with no locks held. Cross-video operations — joint compression and
// reads that traverse duplicate/joint GOP references — acquire the
// involved video locks in sorted name order, which keeps the system
// deadlock-free. See internal/core/store.go for the full contract.
//
// Ingest is pipelined the same way: a streaming Writer hands each
// completed GOP to a bounded pool of encode workers (vss.WriteOptions
// EncodeWorkers, default Options.Workers, sharing the same store-wide CPU
// budget as reads) and commits encoded GOPs strictly in append order
// through a sequenced commit queue, so a single camera stream compresses
// on every core while readers still only ever observe a durable prefix of
// the appended frames. At most MaxInflightGOPs GOPs buffer in the
// pipeline before Append blocks; encode or commit errors surface — first
// in append order, deterministically — on a later Append or on
// Flush/Close, which drain the pipeline. Bulk ingest through WriteEncoded
// validates outside the video lock and commits in bounded chunks so it
// cannot starve concurrent readers of the same video. See
// internal/core/writer.go for the engine.
//
// # Serving
//
// The serving layer exposes the store over the network. Two pieces
// compose it:
//
// First, a streaming read path in the core (vss.System.ReadStream,
// internal/core/stream.go): the same plan/snapshot phase as Read, but
// output units — encoded GOPs for compressed reads, frame batches for raw
// — are yielded in order as the parallel decode pipeline produces them,
// with decode memory bounded by a small look-ahead window instead of the
// full ReadResult (passthrough bytes are still snapshotted up front; see
// internal/core/stream.go for the exact contract). context.Context is plumbed through both ReadStream and
// ReadContext, so a cancelled read stops decoding at the next GOP
// boundary (first-error-wins checks in the worker loops). Streamed bytes
// are identical to what Read returns; the trade is that streaming reads
// never cache-admit their result.
//
// Second, the vssd daemon (cmd/vssd, internal/server): HTTP endpoints for
// create/delete/stat/ls, GOP-level encoded writes, and streaming reads
// whose responses are chunk-framed and flushed as the pipeline produces
// them — a disconnected client cancels its in-flight decode work. Around
// the store it adds the production-shape concerns the library cannot
// express: an admission controller bounding in-flight reads with a
// bounded wait queue and per-client limits (429 beyond them), a
// byte-bounded LRU of hot encoded responses invalidated on writes, and a
// /metrics endpoint surfacing read statistics, cache hit rates, queue
// depths, and per-video deferred-compression levels. See examples/serving
// for an end-to-end walkthrough and internal/server's package comment for
// the endpoint and wire-format reference.
package repro
