// Quickstart: create a video, write synthetic traffic footage, and read
// it back in several spatial/temporal/physical configurations through the
// VSS public API.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/visualroad"
	"repro/vss"
)

func main() {
	dir, err := os.MkdirTemp("", "vss-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := vss.Open(dir, vss.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Generate 10 seconds of synthetic traffic video (240x136 @ 8 fps).
	const fps = 8
	frames := visualroad.Generate(visualroad.Config{Width: 240, Height: 136, FPS: fps, Seed: 1}, 10*fps)

	if err := sys.Create("intersection", 0); err != nil {
		log.Fatal(err)
	}
	if err := sys.Write("intersection", vss.WriteSpec{FPS: fps, Codec: vss.H264}, frames); err != nil {
		log.Fatal(err)
	}
	size, _ := sys.TotalBytes("intersection")
	fmt.Printf("wrote %d frames (%d bytes compressed)\n", len(frames), size)

	// 1. Read a temporal slice as decoded RGB frames.
	res, err := sys.Read("intersection", vss.ReadSpec{
		T: vss.Temporal{Start: 2, End: 5},
		P: vss.Physical{Format: vss.RGB},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw read: %d frames of %dx%d rgb\n", len(res.Frames), res.Width, res.Height)

	// 2. Read a downsampled thumbnail stream (cached for future reads).
	res, err = sys.Read("intersection", vss.ReadSpec{
		S: vss.Spatial{Width: 120, Height: 68},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thumbnail read: %d frames at %dx%d (cached: %v)\n",
		len(res.Frames), res.Width, res.Height, res.Stats.Admitted)

	// 3. Read a region of interest transcoded to hevc.
	roi := vss.Rect{X0: 60, Y0: 34, X1: 180, Y1: 102}
	res, err = sys.Read("intersection", vss.ReadSpec{
		S: vss.Spatial{ROI: &roi},
		T: vss.Temporal{Start: 0, End: 4},
		P: vss.Physical{Codec: vss.HEVC},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("roi+transcode read: %d hevc GOPs covering %d frames (plan: %s, %d fragment runs)\n",
		len(res.GOPs), res.FrameCount(), res.Stats.PlanMethod, res.Stats.PlanRuns)

	// 4. Repeat the thumbnail read: VSS now serves it from the cached
	// materialized view instead of re-decoding the original.
	res, err = sys.Read("intersection", vss.ReadSpec{
		S: vss.Spatial{Width: 120, Height: 68},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat thumbnail read: plan cost %.0f, decoded %d GOPs\n",
		res.Stats.PlanCost, res.Stats.GOPsDecoded)
}
