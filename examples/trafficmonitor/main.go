// Trafficmonitor runs the paper's end-to-end application (Section 6.4)
// on the public VSS API: an intersection monitor that (i) finds the
// frames containing automobiles, (ii) narrows them to vehicles of a
// queried color, and (iii) retrieves clips around the matches.
//
// In the paper the application builds its own index by running a
// detector over every decoded frame. Here phases (i) and (ii) are each
// ONE predicate read — the per-GOP feature summaries VSS computes at
// ingest make the storage layer answer content queries directly, and the
// planner decodes only the GOPs whose summary bounds admit a match. The
// same search is then repeated the old way (full scan + client-side
// AnalyzeFrames filter) to show what the pruning buys; the two must
// agree frame for frame.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/visualroad"
	"repro/vss"
)

const (
	width, height = 240, 136
	fps           = 8
	seconds       = 20
)

func main() {
	dir, err := os.MkdirTemp("", "vss-monitor-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := vss.Open(dir, vss.Options{GOPFrames: fps}) // one-second GOPs
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	frames := visualroad.Generate(visualroad.Config{Width: width, Height: height, FPS: fps, Seed: 7}, seconds*fps)
	if err := sys.Create("cam", -1); err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	if err := sys.Write("cam", vss.WriteSpec{FPS: fps, Codec: vss.H264, Quality: 90}, frames); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d frames (%.1fms) — summaries computed by the encode workers\n\n",
		len(frames), ms(time.Since(t0)))

	ctx := context.Background()

	// Phase 1: index. The paper's app decodes everything and runs the
	// detector per frame; with summaries this is a predicate read.
	vehicles, err := vss.ParsePredicate("count >= 1")
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	idx, err := sys.ReadWhere(ctx, "cam", vehicles, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index:  %7.1fms  %d frames with vehicles (decoded %d/%d GOPs, %d pruned)\n",
		ms(time.Since(t0)), len(idx.Matches), idx.Stats.GOPsDecoded, idx.Stats.GOPsConsidered, idx.Stats.GOPsSkipped)

	// Phase 2: search. "Find the red car" is a color term; the planner
	// prunes GOPs whose summary color histogram cannot contain it.
	red, err := vss.ParsePredicate("count >= 1 and color ~ 210,40,40 < 60")
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	hits, err := sys.ReadWhere(ctx, "cam", red, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search: %7.1fms  %d frames match 'red vehicle' (decoded %d/%d GOPs)\n",
		ms(time.Since(t0)), len(hits.Matches), hits.Stats.GOPsDecoded, hits.Stats.GOPsConsidered)

	// Phase 3: streaming retrieval — ±1.5s clips around each match,
	// merged when they overlap, served as ordinary reads.
	t0 = time.Now()
	clips := clipWindows(hits.Matches, 1.5, seconds)
	var clipFrames int
	for _, c := range clips {
		res, err := sys.Read("cam", vss.ReadSpec{T: vss.Temporal{Start: c[0], End: c[1]}})
		if err != nil {
			log.Fatal(err)
		}
		clipFrames += len(res.Frames)
	}
	fmt.Printf("clips:  %7.1fms  %d clips, %d frames retrieved\n\n", ms(time.Since(t0)), len(clips), clipFrames)

	// The old way: decode the whole video and filter client-side. The
	// matches must be identical — predicate pruning never changes
	// results, only how many GOPs pay for them.
	t0 = time.Now()
	full, err := sys.Read("cam", vss.ReadSpec{})
	if err != nil {
		log.Fatal(err)
	}
	var baseline []int
	for i := 0; i < len(full.Frames); i += fps {
		end := min(i+fps, len(full.Frames))
		for j, fi := range vss.AnalyzeFrames(full.Frames[i:end]) {
			if red.Match(fi) {
				baseline = append(baseline, i+j)
			}
		}
	}
	fmt.Printf("full scan + client-side filter: %.1fms for the same %d matches\n",
		ms(time.Since(t0)), len(baseline))
	if len(baseline) != len(hits.Matches) {
		log.Fatalf("parity violation: predicate read found %d matches, full scan %d", len(hits.Matches), len(baseline))
	}
	for i, m := range hits.Matches {
		if m.Index != baseline[i] {
			log.Fatalf("parity violation: match %d at frame %d, full scan says %d", i, m.Index, baseline[i])
		}
	}
	fmt.Println("parity: predicate read ≡ full scan, frame for frame")
}

// clipWindows turns match times into ±pad second windows clamped to the
// video, merging overlaps so contiguous activity becomes one clip.
func clipWindows(matches []vss.Match, pad, duration float64) [][2]float64 {
	var out [][2]float64
	for _, m := range matches {
		lo, hi := m.Time-pad, m.Time+pad
		if lo < 0 {
			lo = 0
		}
		if hi > duration {
			hi = duration
		}
		if n := len(out); n > 0 && lo <= out[n-1][1] {
			if hi > out[n-1][1] {
				out[n-1][1] = hi
			}
			continue
		}
		out = append(out, [2]float64{lo, hi})
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
