// Trafficmonitor runs the paper's end-to-end application (Section 6.4):
// an intersection monitor that (i) indexes video frames containing
// automobiles, (ii) searches the index for vehicles of a queried color,
// and (iii) retrieves streaming clips of the matches. It runs the same
// application against VSS and against an OpenCV-style local-filesystem
// variant and reports per-phase timings.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/app"
	"repro/internal/baseline"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/visualroad"
)

const (
	width, height = 240, 136
	fps           = 8
	seconds       = 20
)

func main() {
	frames := visualroad.Generate(visualroad.Config{Width: width, Height: height, FPS: fps, Seed: 7}, seconds*fps)
	fmt.Printf("generated %d frames of synthetic intersection footage\n\n", len(frames))

	runVSS(frames)
	runFS(frames)
}

func runVSS(frames []*frame.Frame) {
	dir, err := os.MkdirTemp("", "vss-monitor-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := core.Open(dir, core.Options{BudgetMultiple: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if err := s.Create("cam", -1); err != nil {
		log.Fatal(err)
	}
	if err := s.Write("cam", core.WriteSpec{FPS: fps, Codec: codec.H264, Quality: 90}, frames); err != nil {
		log.Fatal(err)
	}
	m := &app.Monitor{Backend: &app.VSSBackend{Store: s}, FPS: fps, IndexEvery: 4, ThumbW: 120, ThumbH: 68}
	phases(m, "VSS")
}

func runFS(frames []*frame.Frame) {
	dir, err := os.MkdirTemp("", "fs-monitor-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := baseline.NewLocalFS(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := fs.Write("cam", frames, codec.H264, 90, 30); err != nil {
		log.Fatal(err)
	}
	m := &app.Monitor{Backend: &app.FSBackend{FS: fs, FPS: fps}, FPS: fps, IndexEvery: 4, ThumbW: 120, ThumbH: 68}
	phases(m, "Local FS (OpenCV-style variant)")
}

func phases(m *app.Monitor, label string) {
	t0 := time.Now()
	index, err := m.Index("cam")
	if err != nil {
		log.Fatal(err)
	}
	tIndex := time.Since(t0)

	t0 = time.Now()
	matches := m.Search(index, [3]float64{210, 40, 40}) // find the red car
	tSearch := time.Since(t0)

	// The search phase in the paper re-reads cached low-resolution
	// frames; model that by repeating the thumbnail read before
	// retrieval.
	t0 = time.Now()
	if _, err := m.Backend.ReadLowRes("cam", m.ThumbW, m.ThumbH); err != nil {
		log.Fatal(err)
	}
	tSearch += time.Since(t0)

	t0 = time.Now()
	clips, err := m.Retrieve("cam", matches, 1.5, seconds)
	if err != nil {
		log.Fatal(err)
	}
	tStream := time.Since(t0)

	fmt.Printf("%s:\n", label)
	fmt.Printf("  indexing:  %8.1fms (%d indexed frames with vehicles)\n", ms(tIndex), len(index))
	fmt.Printf("  search:    %8.1fms (%d frames match 'red vehicle')\n", ms(tSearch), len(matches))
	fmt.Printf("  streaming: %8.1fms (%d clips retrieved)\n\n", ms(tStream), len(clips))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
