// Streamingwrite demonstrates VSS's non-blocking write path (Section 2):
// a camera goroutine appends frames through a streaming Writer while a
// reader concurrently queries prefixes of the video that are already
// durable — without waiting for the write to finish.
//
// Ingest is pipelined: vss.WriteOptions tunes it per Writer.
// EncodeWorkers bounds how many GOPs compress in parallel (0 defaults to
// the store's Options.Workers CPU budget; 1 encodes inline, serially) and
// MaxInflightGOPs bounds how many GOPs may buffer in the pipeline before
// Append blocks (0 defaults to 2*EncodeWorkers). Whatever the settings,
// GOPs commit strictly in append order, so the reader below still only
// ever sees a durable prefix of the stream; an encode failure would
// surface on a later Append or on Flush/Close, which drain the pipeline.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/visualroad"
	"repro/vss"
)

func main() {
	dir, err := os.MkdirTemp("", "vss-streaming-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := vss.Open(dir, vss.Options{GOPFrames: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const fps = 8
	const totalSeconds = 6
	frames := visualroad.Generate(visualroad.Config{Width: 160, Height: 96, FPS: fps, Seed: 4}, totalSeconds*fps)

	if err := sys.Create("live-cam", 0); err != nil {
		log.Fatal(err)
	}
	// Two encode workers, at most four GOPs in flight: one camera's GOPs
	// compress in parallel yet commit in order (see the package comment).
	w, err := sys.OpenWriterWith("live-cam", vss.WriteSpec{FPS: fps, Codec: vss.H264},
		vss.WriteOptions{EncodeWorkers: 2, MaxInflightGOPs: 4})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // camera: appends one GOP worth of frames per "tick"
		defer wg.Done()
		for i := 0; i < len(frames); i += 8 {
			if err := w.Append(frames[i : i+8]...); err != nil {
				log.Fatal(err)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	// Reader: repeatedly query the growing prefix.
	for tick := 0; tick < 10; tick++ {
		time.Sleep(25 * time.Millisecond)
		// Ask for everything durable so far; track growth via the store.
		for sec := totalSeconds; sec >= 1; sec-- {
			res, err := sys.Read("live-cam", vss.ReadSpec{T: vss.Temporal{Start: 0, End: float64(sec)}})
			if err != nil {
				continue // prefix not yet durable
			}
			fmt.Printf("t+%3dms: read prefix [0, %ds) -> %d frames\n", tick*25, sec, len(res.Frames))
			break
		}
	}
	wg.Wait()

	res, err := sys.Read("live-cam", vss.ReadSpec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final read after close: %d frames (%d seconds)\n", len(res.Frames), len(res.Frames)/fps)
}
