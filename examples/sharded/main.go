// Sharded-backend walkthrough: open a store whose GOPs are spread
// across multiple filesystem roots (one per disk in a real deployment)
// with 2-way replication, write a video, observe the placement, wipe one
// root to simulate a dead disk — reads keep working via failover — and
// run a maintenance scrub that restores full replication.
//
// The equivalent daemon deployment is:
//
//	vssd -store DIR -shards 3 -replicas 2 -maintain 30s
//	vssctl -store DIR -shards 3 -replicas 2 stat    # inspect, same flags
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/visualroad"
	"repro/vss"
)

func main() {
	dir, err := os.MkdirTemp("", "vss-sharded-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Three shard roots under one temp dir; in production each would be
	// a different disk (vss.ShardRoots derives the conventional layout
	// vssd's -shards flag uses). replicas=2 keeps every GOP on two
	// distinct roots: the primary its address hashes to, plus the next
	// root on the ring.
	roots := vss.ShardRoots(dir, 3)
	open := func() *vss.System {
		backend, err := vss.NewShardedBackend(roots, 2)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := vss.OpenWith(dir, vss.Options{}, backend)
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}
	sys := open()

	const fps = 8
	frames := visualroad.Generate(visualroad.Config{Width: 240, Height: 136, FPS: fps, Seed: 7}, 12*fps)
	if err := sys.Create("cam", 0); err != nil {
		log.Fatal(err)
	}
	if err := sys.Write("cam", vss.WriteSpec{FPS: fps, Codec: vss.H264}, frames); err != nil {
		log.Fatal(err)
	}

	// Placement is a stable hash of each GOP's (video, physical video,
	// sequence) address: the same roots always yield the same layout,
	// and with replicas=2 each GOP appears under two of them.
	countGOPs := func(root string) int {
		n := 0
		filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() && filepath.Ext(path) == ".gop" {
				n++
			}
			return nil
		})
		return n
	}
	for i, root := range roots {
		fmt.Printf("shard %d (%s): %d GOPs\n", i, filepath.Base(root), countGOPs(root))
	}

	res, err := sys.Read("cam", vss.ReadSpec{
		S: vss.Spatial{Width: 120, Height: 68},
		T: vss.Temporal{Start: 2, End: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.BackendStats()
	fmt.Printf("read %d frames at %dx%d through backend=%s (%d reads, %.1f KiB)\n",
		res.FrameCount(), res.Width, res.Height,
		st.Backend, st.Reads, float64(st.BytesRead)/1024)

	// Simulate losing a disk: wipe shard 0's contents behind the store's
	// back. Every GOP whose primary or secondary lived there still has a
	// surviving replica, so reads keep returning complete data — the
	// failover counter shows the detour.
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
	if err := os.RemoveAll(roots[0]); err != nil {
		log.Fatal(err)
	}
	sys = open()
	defer sys.Close()
	res, err = sys.Read("cam", vss.ReadSpec{})
	if err != nil {
		log.Fatal(err)
	}
	rep, _ := sys.ReplicationStats()
	fmt.Printf("after wiping shard 0: read %d frames (failovers=%d)\n",
		res.FrameCount(), rep.Failovers)

	// One maintenance pass scrubs the placements and re-copies the lost
	// replicas from the survivors: shard 0 fills back up and the store is
	// fully replicated again.
	if err := sys.Maintain(); err != nil {
		log.Fatal(err)
	}
	rep, _ = sys.ReplicationStats()
	fmt.Printf("scrub: checked=%d repaired=%d unrecoverable=%d; shard 0 holds %d GOPs again\n",
		rep.LastScrub.Checked, rep.LastScrub.Repaired, rep.LastScrub.Unrecoverable,
		countGOPs(roots[0]))
}
