// Sharded-backend walkthrough: open a store whose GOPs are spread
// across multiple filesystem roots (one per disk in a real deployment),
// write a video, observe the placement, and read it back — including a
// reopen, which must use the same roots in the same order.
//
// The equivalent daemon deployment is:
//
//	vssd -store DIR -shards 3            # conventional roots under DIR
//	vssctl -store DIR -shards 3 stat     # inspect with the same flags
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/visualroad"
	"repro/vss"
)

func main() {
	dir, err := os.MkdirTemp("", "vss-sharded-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Three shard roots under one temp dir; in production each would be
	// a different disk (vss.ShardRoots derives the conventional layout
	// vssd's -shards flag uses).
	roots := vss.ShardRoots(dir, 3)
	backend, err := vss.NewShardedBackend(roots)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := vss.OpenWith(dir, vss.Options{}, backend)
	if err != nil {
		log.Fatal(err)
	}

	const fps = 8
	frames := visualroad.Generate(visualroad.Config{Width: 240, Height: 136, FPS: fps, Seed: 7}, 12*fps)
	if err := sys.Create("cam", 0); err != nil {
		log.Fatal(err)
	}
	if err := sys.Write("cam", vss.WriteSpec{FPS: fps, Codec: vss.H264}, frames); err != nil {
		log.Fatal(err)
	}

	// Placement is a stable hash of each GOP's (video, physical video,
	// sequence) address: the same roots always yield the same layout.
	for i, root := range roots {
		n := 0
		filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() && filepath.Ext(path) == ".gop" {
				n++
			}
			return nil
		})
		fmt.Printf("shard %d (%s): %d GOPs\n", i, filepath.Base(root), n)
	}

	// Reads fan IO across the shards on the prefetch stage ahead of the
	// decode workers; a degraded shard would fail only its own GOPs.
	res, err := sys.Read("cam", vss.ReadSpec{
		S: vss.Spatial{Width: 120, Height: 68},
		T: vss.Temporal{Start: 2, End: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.BackendStats()
	fmt.Printf("read %d frames at %dx%d through backend=%s (%d reads, %.1f KiB)\n",
		res.FrameCount(), res.Width, res.Height,
		st.Backend, st.Reads, float64(st.BytesRead)/1024)

	// Reopen with the SAME roots in the SAME order: every GOP is found
	// again. (Different order or count would scatter reads to the wrong
	// shards — the root list is part of the store's identity.)
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
	backend, err = vss.NewShardedBackend(roots)
	if err != nil {
		log.Fatal(err)
	}
	sys, err = vss.OpenWith(dir, vss.Options{}, backend)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	res, err = sys.Read("cam", vss.ReadSpec{T: vss.Temporal{Start: 0, End: 4}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reopen: read %d frames\n", res.FrameCount())
}
