// Federated demonstrates the paper's second motivating scenario
// (Section 1): the same logical video consumed by multiple systems with
// different format requirements — a VDBMS reading low-resolution raw
// frames for ML inference, a vision system reading full-resolution hevc,
// and a mobile viewer requiring h264. VSS serves all three from one write,
// caching each materialization so repeat consumers get it at passthrough
// cost.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/visualroad"
	"repro/vss"
)

func main() {
	dir, err := os.MkdirTemp("", "vss-federated-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := vss.Open(dir, vss.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const fps = 8
	frames := visualroad.Generate(visualroad.Config{Width: 240, Height: 136, FPS: fps, Seed: 9}, 8*fps)
	// Unlimited budget: this example demonstrates multi-format caching;
	// see the trafficmonitor example and Figure 16 benches for budgeted
	// eviction behaviour.
	if err := sys.Create("highway", -1); err != nil {
		log.Fatal(err)
	}
	if err := sys.Write("highway", vss.WriteSpec{FPS: fps, Codec: vss.H264}, frames); err != nil {
		log.Fatal(err)
	}

	consumers := []struct {
		name string
		spec vss.ReadSpec
	}{
		{"VDBMS (raw 120x68 rgb for inference)", vss.ReadSpec{
			S: vss.Spatial{Width: 120, Height: 68},
			P: vss.Physical{Format: vss.RGB},
		}},
		{"vision system (full-res hevc)", vss.ReadSpec{
			P: vss.Physical{Codec: vss.HEVC},
		}},
		{"mobile viewer (h264, 2s highlight)", vss.ReadSpec{
			T: vss.Temporal{Start: 3, End: 5},
			P: vss.Physical{Codec: vss.H264, Quality: 70},
		}},
	}

	for round := 1; round <= 2; round++ {
		fmt.Printf("--- pass %d ---\n", round)
		for _, c := range consumers {
			res, err := sys.Read("highway", c.spec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-42s plan=%s cost=%10.0f frames=%d cached-now=%v\n",
				c.name, res.Stats.PlanMethod, res.Stats.PlanCost, res.FrameCount(), res.Stats.Admitted)
		}
	}
	fmt.Println("\npass 2 plan costs drop: each consumer's materialization was cached by pass 1")
}
