// Budgeteviction demonstrates VSS's storage budget and LRU_VSS eviction
// (Section 4 of the paper): a video is created with a tight budget, a
// stream of reads populates the cache past it, and the example shows
// which materialized views survive — the baseline-quality cover is never
// evicted, and recently used, hard-to-recreate views outlive redundant
// ones.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/visualroad"
	"repro/vss"
)

func main() {
	dir, err := os.MkdirTemp("", "vss-eviction-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := vss.Open(dir, vss.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const fps = 8
	frames := visualroad.Generate(visualroad.Config{Width: 240, Height: 136, FPS: fps, Seed: 11}, 12*fps)
	if err := sys.Create("cam", 0); err != nil { // default budget: 10x original
		log.Fatal(err)
	}
	if err := sys.Write("cam", vss.WriteSpec{FPS: fps, Codec: vss.H264}, frames); err != nil {
		log.Fatal(err)
	}
	v, _, err := sys.Store().Info("cam")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget: %d bytes (10x the original)\n\n", v.Budget)

	// A stream of varied reads overflows the budget several times.
	reads := []vss.ReadSpec{
		{T: vss.Temporal{Start: 0, End: 6}},                                                 // big raw view
		{T: vss.Temporal{Start: 2, End: 8}, P: vss.Physical{Codec: vss.HEVC}},               // hevc view
		{T: vss.Temporal{Start: 4, End: 10}},                                                // another raw view
		{T: vss.Temporal{Start: 2, End: 8}, P: vss.Physical{Codec: vss.HEVC}},               // re-touch the hevc view
		{T: vss.Temporal{Start: 6, End: 12}, P: vss.Physical{Codec: vss.H264, Quality: 60}}, // lossy view
	}
	for i, spec := range reads {
		res, err := sys.Read("cam", spec)
		if err != nil {
			log.Fatal(err)
		}
		used, _ := sys.TotalBytes("cam")
		fmt.Printf("read %d: frames=%d cached=%v stored=%d/%d bytes (%.0f%% of budget)\n",
			i+1, res.FrameCount(), res.Stats.Admitted, used, v.Budget, 100*float64(used)/float64(v.Budget))
	}

	fmt.Println("\nsurviving physical videos:")
	_, phys, _ := sys.Store().Info("cam")
	for _, p := range phys {
		tag := ""
		if p.Orig {
			tag = "  <- original: baseline cover, never evicted"
		}
		fmt.Printf("  %dx%d %s q=%d [%.0fs, %.0fs) %d GOPs, %d bytes%s\n",
			p.Width, p.Height, p.Codec, p.Quality, p.Start, p.End(), len(p.GOPs), p.Bytes(), tag)
	}
	used, _ := sys.TotalBytes("cam")
	if used > v.Budget {
		log.Fatalf("budget invariant violated: %d > %d", used, v.Budget)
	}
	fmt.Printf("\nfinal storage %d bytes respects the %d-byte budget\n", used, v.Budget)
}
