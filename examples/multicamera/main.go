// Multicamera demonstrates VSS's joint compression (Section 5.1): two
// overlapping camera streams are written as separate logical videos, the
// automatic candidate-discovery pipeline (histogram clustering + feature
// correspondence + homography estimation) finds the redundancy, and the
// overlapping regions are stored once. Both streams remain independently
// readable afterward.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/visualroad"
	"repro/vss"
)

func main() {
	dir, err := os.MkdirTemp("", "vss-multicam-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := vss.Open(dir, vss.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Two cameras watching the same intersection with 50% overlapping
	// fields of view and a mild perspective difference.
	const fps = 8
	cfg := visualroad.Config{
		Width: 240, Height: 136, FPS: fps, Seed: 3,
		Overlap: 0.5, Perspective: 0.4,
	}
	left, right := visualroad.GeneratePair(cfg, 6*fps)

	for name, frames := range map[string][]*vss.Frame{"cam-north": left, "cam-south": right} {
		if err := sys.Create(name, -1); err != nil {
			log.Fatal(err)
		}
		if err := sys.Write(name, vss.WriteSpec{FPS: fps, Codec: vss.H264, Quality: 90}, frames); err != nil {
			log.Fatal(err)
		}
	}
	before := totalSize(sys)
	fmt.Printf("separate storage: %d bytes\n", before)

	// Joint compression: discovery + compression across the whole store.
	stats, err := sys.JointCompress(vss.MergeMean)
	if err != nil {
		log.Fatal(err)
	}
	after := totalSize(sys)
	fmt.Printf("joint compression: scanned %d GOPs, proposed %d pairs, compressed %d (dups %d, aborted %d)\n",
		stats.Scanned, stats.Pairs, stats.Compressed, stats.Duplicates, stats.Aborted)
	fmt.Printf("joint storage: %d bytes (%.1f%% smaller)\n", after, 100*float64(before-after)/float64(before))

	// Both streams still read back normally; the right stream is
	// reconstructed through the stored homography.
	for _, name := range []string{"cam-north", "cam-south"} {
		res, err := sys.Read(name, vss.ReadSpec{T: vss.Temporal{Start: 1, End: 3}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read %s: %d frames of %dx%d\n", name, len(res.Frames), res.Width, res.Height)
	}
}

func totalSize(sys *vss.System) int64 {
	var total int64
	for _, name := range sys.Videos() {
		n, err := sys.TotalBytes(name)
		if err != nil {
			log.Fatal(err)
		}
		total += n
	}
	return total
}
