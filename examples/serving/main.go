// Serving walkthrough: start the vssd serving subsystem in-process, write
// a video over HTTP GOP by GOP, stream a read back while it decodes, and
// inspect the live metrics — the network-facing version of the quickstart.
//
// Everything here speaks the same wire protocol as the standalone daemon
// (`go run ./cmd/vssd -store DIR`), so each step translates directly:
//
//	PUT  /videos/{name}          create
//	POST /videos/{name}/gops     write encoded GOPs (framed body, ?fps=)
//	GET  /videos/{name}/read     streaming read (spec in query params)
//	GET  /metrics                live counters
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/codec"
	"repro/internal/server"
	"repro/internal/visualroad"
	"repro/vss"
)

func main() {
	dir, err := os.MkdirTemp("", "vss-serving-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Open a store and serve it. cmd/vssd does exactly this, plus
	// flags and signal handling.
	sys, err := vss.Open(dir, vss.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	srv := server.New(sys, server.Config{
		MaxInFlightReads: 8,
		CacheBytes:       32 << 20,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	fmt.Printf("serving on http://%s\n", ln.Addr())

	ctx := context.Background()
	c := &server.Client{Base: "http://" + ln.Addr().String(), Name: "walkthrough"}

	// 2. Create a video and write 8 seconds of synthetic footage over
	// HTTP, one encoded GOP per second — the cadence of a live camera
	// pushing pre-compressed segments.
	const fps = 8
	if err := c.Create(ctx, "lobby", 0); err != nil {
		log.Fatal(err)
	}
	frames := visualroad.Generate(visualroad.Config{Width: 96, Height: 64, FPS: fps, Seed: 3}, 8*fps)
	for i := 0; i < len(frames); i += fps {
		gop, _, err := codec.EncodeGOP(frames[i:i+fps], codec.H264, 85)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.WriteGOPs(ctx, "lobby", fps, [][]byte{gop}); err != nil {
			log.Fatal(err)
		}
	}
	stat, err := c.Stat(ctx, "lobby")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %.0fs of video (%d bytes across %d views)\n",
		stat.Duration, stat.Bytes, len(stat.Views))

	// 3. Stream a transcoded read. Chunks arrive as the parallel decode
	// pipeline produces them — the client is consuming GOP 1 while the
	// server still transcodes GOP 5 — and a dropped connection would
	// cancel the remaining work.
	hdr, next, stop, err := c.StreamingRead(ctx, "lobby", "start=1&end=7&codec=hevc")
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	total := 0
	for i := 0; ; i++ {
		chunk, err := next()
		if err == io.EOF {
			break // the terminator chunk: the stream is complete
		}
		if err != nil {
			// Anything else means the stream was truncated mid-flight (a
			// server error or cancellation) — never mistake it for EOF.
			log.Fatal(err)
		}
		total += len(chunk)
		fmt.Printf("  streamed GOP %d: %d bytes\n", i, len(chunk))
	}
	fmt.Printf("streamed %dx%d@%dfps %s, %d bytes total\n",
		hdr.Width, hdr.Height, hdr.FPS, hdr.Codec, total)

	// 4. Repeat the read: the hot-response LRU serves it without touching
	// the store. Both reads rode the adaptive response path — small GOPs
	// coalesce into one pooled buffer and flush on a byte/latency window
	// (the first chunk immediately, keeping time-to-first-frame bounded),
	// while 64KiB+ payloads go to the wire zero-copy. The wire bytes are
	// identical either way; only write boundaries move.
	hdr, gops, err := c.ReadAll(ctx, "lobby", "start=1&end=7&codec=hevc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat read: %d GOPs, cache hit = %v\n", len(gops), hdr.CacheHit)

	// 5. Live metrics: read counts, cache hit rate, admission gauges, and
	// the response-path section — flush coalescing, buffer-pool hit rate,
	// and time-to-first-byte quantiles (docs/METRICS.md documents every
	// field). The `streams` bench experiment (`go run ./cmd/vssbench -exp
	// streams`) drives this same path with hundreds of concurrent readers.
	m, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics: %d reads completed, %d cancelled, cache hit rate %.0f%%, %d GOPs decoded, queue depth %d\n",
		m.Reads.Completed, m.Reads.Cancelled, 100*m.Cache.HitRate,
		m.Reads.GOPsDecoded, m.Admission.QueueDepth)
	fmt.Printf("response path: %d flushes, %d coalesced chunks, pool hit rate %.0f%%, p99 TTFB %.1fms\n",
		m.Response.Flushes, m.Response.CoalescedChunks,
		100*m.Response.PoolHitRate, m.Response.TTFBP99Millis)
}
