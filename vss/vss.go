// Package vss is the public API of the VSS video storage system, a
// reproduction of "VSS: A Storage System for Video Analytics" (SIGMOD
// 2021). VSS is a storage manager designed to sit beneath a video DBMS or
// video processing application: callers create, write, read, and delete
// logical videos (Figure 1 of the paper), while VSS transparently manages
// GOP-granular physical layout, a cache of materialized views in multiple
// resolutions and codecs, solver-based minimal-cost read planning, joint
// compression of overlapping camera streams, deferred lossless
// compression, and compaction.
//
// Quickstart:
//
//	sys, _ := vss.Open(dir, vss.Options{})
//	defer sys.Close()
//	sys.Create("traffic", 0)
//	sys.Write("traffic", vss.WriteSpec{FPS: 30, Codec: vss.H264}, frames)
//	res, _ := sys.Read("traffic", vss.ReadSpec{
//	    S: vss.Spatial{Width: 960, Height: 540},
//	    T: vss.Temporal{Start: 20, End: 80},
//	    P: vss.Physical{Codec: vss.HEVC},
//	})
//
// # Concurrency
//
// A System is safe for concurrent use by multiple goroutines. Locking is
// per logical video: operations on different videos — Read, Write,
// WriteEncoded, Compact, Maintain, Delete — run fully in parallel, and
// operations on the same video serialize only around metadata; the
// CPU-heavy decode/convert/encode work of a Read executes outside any
// lock on a bounded worker pool (Options.Workers, default GOMAXPROCS).
// The practical contract:
//
//   - Any number of goroutines may call any System method concurrently,
//     including on the same video. Reads of a video being written see a
//     consistent prefix (whole GOPs).
//   - A read racing a Delete of its video either returns complete data
//     or ErrNotFound, never a partial result.
//   - Background maintenance (Maintain, StartBackground, JointCompress)
//     locks one video — or, for joint compression, one video pair — at a
//     time, so it never stalls traffic on other videos.
//   - A Writer handle is the one exception: it buffers frames internally
//     and must be confined to a single goroutine. Open one Writer per
//     producer; concurrent Writers on the same video are safe relative
//     to each other and to readers.
//
// # Pipelined ingest
//
// Within a single Writer, ingest itself is parallel: Append hands each
// completed GOP to a bounded pool of encode workers (WriteOptions
// EncodeWorkers, default Options.Workers) and returns without waiting for
// compression, so a one-camera stream ingests at multi-core speed. The
// pipeline's contract:
//
//   - Ordering: encoded GOPs commit strictly in append order, so readers
//     only ever observe a durable prefix of the appended frames — the
//     same prefix-visibility guarantee as serial ingest.
//   - Bounded memory: at most MaxInflightGOPs GOPs (default
//     2*EncodeWorkers) are in flight — encoding or awaiting commit —
//     before Append blocks for backpressure.
//   - Errors: because encoding is asynchronous, an encode or commit
//     failure may surface on a later Append or on Flush/Close, which
//     drain the pipeline and deterministically report the first error in
//     append order; the writer is then poisoned and GOPs after the
//     failure point are never committed.
//   - Flush drains the pipeline and persists any partial GOP: when it
//     returns nil, every appended frame is durable and readable. Close
//     does the same, then releases the pipeline's workers.
//   - Frame ownership: the writer borrows appended frames until the next
//     successful Flush (or Close) — complete GOPs are read by encode
//     workers after Append returns. Do not mutate or recycle a frame
//     buffer passed to Append before draining; allocate or Clone a fresh
//     frame per Append instead.
//   - EncodeWorkers: 1 restores the serial inline-encode path exactly
//     (deterministic profiling); whatever the setting, encode work shares
//     the store-wide Options.Workers CPU budget with the read pipeline.
//
// # Streaming reads and serving
//
// ReadStream yields a read's output incrementally — encoded GOPs for
// compressed reads, frame batches for raw reads — in order, as the
// parallel decode pipeline produces them, byte-identical to the batch
// Read. Both ReadStream and ReadContext accept a context.Context;
// cancelling it abandons the remaining decode work at the next GOP
// boundary, so a caller serving a network client stops burning CPU the
// moment the client disconnects. Streaming reads trade cache admission
// for bounded memory: their results are never admitted as materialized
// views.
//
// The vssd daemon (cmd/vssd, internal/server) serves a System over HTTP
// on top of ReadStream, adding admission control (bounded in-flight reads
// with queueing and per-client limits), a hot-response LRU, and live
// /metrics; see examples/serving for a walkthrough.
//
// # Storage backends
//
// The physical GOP store is pluggable behind the Backend interface
// (Options.Backend, or OpenWith). Three implementations ship:
//
//   - NewLocalBackend: one filesystem root, the paper's Figure 2 layout
//     (<root>/<video>/<phys>/<seq>.gop). The default, rooted at
//     <dir>/data.
//   - NewShardedBackend: N filesystem roots with each GOP placed by a
//     stable hash of its (video, physical video, sequence) address —
//     spread load across disks, with per-shard parallel IO and degraded
//     shards surfacing errors per GOP rather than store-wide. Root ORDER
//     is part of the store's identity: reopen with the same roots in the
//     same order (ShardRoots encodes the conventional layout vssd's
//     -shards flag uses).
//   - NewMemBackend: in-memory, for tests and IO-free benchmarking.
//
// # Replication
//
// NewShardedBackend with replicas R > 1 keeps every GOP on R distinct
// shards (its primary plus the R-1 ring successors), turning the sharded
// backend into a replicated store that survives the loss of a root:
//
//   - Writes fan out to all R replicas in parallel; the first success
//     makes the write durable, and shards that missed it are repaired
//     later rather than failing the write.
//   - Reads fail over through the replicas in placement order — past
//     missing copies, and past stale (wrong-sized) copies when the
//     catalog's expected size is known. Per-shard error counters demote
//     a repeatedly-failing (flapping) root to last resort until it
//     serves successfully again.
//   - Maintain runs a scrub pass that walks every placement and
//     re-copies missing or wrong-sized replicas from a healthy copy,
//     using the catalog's expected sizes as ground truth; ScrubStats
//     (checked/repaired/unrecoverable) and per-shard health are exposed
//     via System.ReplicationStats and the "replication" section of vssd
//     /metrics.
//
// Deleting one root's contents with replicas=2 therefore loses nothing:
// every GOP keeps serving from its surviving replica, and the next
// maintenance pass restores full replication. Raising -replicas on an
// existing store is safe (placements only extend); changing the root
// list is not. The vssd and vssctl daemons expose this as -replicas
// alongside -shards/-shard-roots.
//
// The catalog always lives on the local filesystem under <dir>/catalog.
// Whatever the backend, the read path fetches GOP bytes on an
// asynchronous IO-prefetch stage that runs ahead of the decode workers
// (bounded look-ahead, 2*Workers), so backend latency overlaps decode
// compute for both Read and ReadStream; System.BackendStats exposes
// per-backend read/write byte and latency counters (also served by vssd
// /metrics). See examples/sharded for a multi-root walkthrough.
package vss

import (
	"context"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/storage"
)

// Frame is a decoded video frame (see internal/frame for pixel layouts).
type Frame = frame.Frame

// Rect is a pixel rectangle used for regions of interest.
type Rect = frame.Rect

// PixelFormat selects a raw frame layout.
type PixelFormat = frame.PixelFormat

// Raw frame layouts.
const (
	RGB    = frame.RGB
	YUV420 = frame.YUV420
	YUV422 = frame.YUV422
	Gray   = frame.Gray
)

// Codec identifies a compression codec.
type Codec = codec.ID

// Supported codecs. LS is the JPEG-LS-style near-lossless codec: bit-exact
// at quality >= 97, error-bounded below, with no flate on either path. The
// set is open — codecs register with internal/codec's registry, and
// CodecNames reports what this build serves.
const (
	RawCodec = codec.Raw
	H264     = codec.H264
	HEVC     = codec.HEVC
	LS       = codec.LS
)

// CodecNames returns the registered codec names, pipe-joined (for flag
// help strings and error messages).
func CodecNames() string { return codec.Names() }

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int, format PixelFormat) *Frame { return frame.New(w, h, format) }

// Options configure a System; see core.Options for the full set of knobs
// (budget multiple, eviction weights, planner/baseline toggles, and
// Workers, which bounds the parallel read pipeline's CPU fan-out).
type Options = core.Options

// Spatial, Temporal, and Physical are the S/T/P parameter groups of the
// VSS API (Figure 1).
type (
	Spatial  = core.Spatial
	Temporal = core.Temporal
	Physical = core.Physical
)

// ReadSpec bundles read parameters; WriteSpec describes a write.
type (
	ReadSpec  = core.ReadSpec
	WriteSpec = core.WriteSpec
)

// WriteOptions tune a Writer's pipelined ingest engine: EncodeWorkers
// bounds the parallel GOP encoders (0 = Options.Workers, 1 = serial
// inline encoding) and MaxInflightGOPs bounds buffered GOPs before
// Append blocks (0 = 2*EncodeWorkers). See the package concurrency notes
// for the full pipeline contract.
type WriteOptions = core.WriteOptions

// ReadResult carries the frames or encoded GOPs a read produced.
type ReadResult = core.ReadResult

// ReadStats reports how a read was executed: plan method and cost, GOPs
// decoded, bytes touched, and whether the result was cache-admitted.
type ReadStats = core.ReadStats

// ReadStream is an in-order iterator over a streaming read's output; see
// System.ReadStream.
type ReadStream = core.ReadStream

// ReadBatch is one unit of a ReadStream: a run of decoded frames (raw
// reads) or one encoded GOP (compressed reads).
type ReadBatch = core.ReadBatch

// Predicate is a content predicate over frames — motion energy,
// detection count, and dominant-color terms combined with and/or. Build
// one with ParsePredicate; see System.ReadWhere.
type Predicate = core.Predicate

// FrameInfo is the per-frame content record predicates evaluate against;
// Detection is one detected vehicle within a frame.
type (
	FrameInfo = core.FrameInfo
	Detection = core.Detection
)

// GOPSummary is the per-GOP feature summary persisted at ingest; the
// predicate planner prunes GOPs whose summary bounds prove a predicate
// false without fetching or decoding them.
type GOPSummary = core.GOPSummary

// Match, QueryResult, QueryStats, QueryStream, and QueryBatch carry
// predicate-read results; see System.ReadWhere and System.ReadStreamWhere.
type (
	Match       = core.Match
	QueryResult = core.QueryResult
	QueryStats  = core.QueryStats
	QueryStream = core.QueryStream
	QueryBatch  = core.QueryBatch
)

// ParsePredicate parses the predicate language ("motion > 2 and count
// >= 1", "color ~ 200,40,40 < 60", ...); see the core package for the
// grammar. For every predicate p it returns, ParsePredicate(p.String())
// reproduces p — the round-trip the wire protocol relies on.
func ParsePredicate(s string) (Predicate, error) { return core.ParsePredicate(s) }

// AnalyzeFrames computes per-frame content records from decoded RGB-
// convertible frames — the same deterministic analysis ingest-time
// summarization and query-time predicate evaluation use, so filtering a
// full read with it reproduces ReadWhere's decisions exactly.
func AnalyzeFrames(frames []*Frame) []FrameInfo { return core.AnalyzeFrames(frames) }

// FrameWindow maps [t0, t1) to the half-open source frame index range
// predicate reads scan at the given frame rate.
func FrameWindow(fps int, t0, t1 float64) (int, int) { return core.FrameWindow(fps, t0, t1) }

// Writer is a streaming write handle; whole GOPs become readable as they
// are appended (non-blocking writes, prefix reads). A Writer must be
// confined to one goroutine, and frames passed to Append are borrowed by
// the ingest pipeline until the next Flush/Close; see the package
// concurrency notes.
type Writer = core.Writer

// MergeMode selects the joint-compression overlap merge function.
type MergeMode = core.MergeMode

// Merge functions for joint compression (Section 5.1 of the paper).
const (
	MergeUnprojected = core.MergeUnprojected
	MergeMean        = core.MergeMean
)

// JointStats summarizes a joint-compression sweep.
type JointStats = core.JointStats

// ErrNotFound and ErrExists are returned for unknown/duplicate videos;
// ErrInvalidSpec marks read parameters that can never be satisfied
// (match with errors.Is to distinguish caller mistakes from storage
// failures).
var (
	ErrNotFound    = core.ErrNotFound
	ErrExists      = core.ErrExists
	ErrInvalidSpec = core.ErrInvalidSpec
)

// Backend is the pluggable physical GOP store; see the package notes on
// storage backends. Implementations must be safe for concurrent use.
type Backend = storage.Backend

// BackendStats snapshots a backend's operation counters: reads/writes,
// bytes moved, and cumulative latency (mean latency = nanos/ops).
type BackendStats = storage.BackendStats

// ReplicationStats snapshots a replicated backend's placement config,
// read-failover count, per-shard health (error counters and demotion
// state), and the most recent scrub pass; see System.ReplicationStats.
type ReplicationStats = storage.ReplicationStats

// ScrubStats reports one scrub-repair pass over the replicated backend:
// addresses checked, replica copies repaired, addresses with no healthy
// source copy (unrecoverable), and orphaned files skipped.
type ScrubStats = storage.ScrubStats

// ShardHealthStats is one shard root's row in ReplicationStats.
type ShardHealthStats = storage.ShardHealthStats

// ClusterStats snapshots a routed vssd fleet's health: per-node errors
// and demotions, read failovers, write-repair journal depth, repair and
// scrub counters; see System.ClusterStats and internal/router.
type ClusterStats = storage.ClusterStats

// NodeHealthStats is one node's row in ClusterStats.
type NodeHealthStats = storage.NodeHealthStats

// NewLocalBackend opens (creating if necessary) a single-root localfs
// backend — the default physical layout, one directory tree under root.
func NewLocalBackend(root string) (Backend, error) { return storage.Open(root) }

// NewShardedBackend opens (creating if necessary) one localfs root per
// element of roots and places each GOP on replicas distinct shards
// chosen by a stable hash of its address (primary + ring successors).
// replicas <= 1 keeps a single copy; with more, writes fan out (first
// success is durable), reads fail over through the replicas, and
// Maintain's scrub pass repairs missing or stale copies — see the
// package notes on replication. Reopen with the same roots in the same
// order; raising replicas later is safe, reordering roots is not.
func NewShardedBackend(roots []string, replicas int) (Backend, error) {
	return storage.OpenShardedReplicated(roots, replicas)
}

// NewMemBackend returns an empty in-memory backend (contents do not
// survive the process).
func NewMemBackend() Backend { return storage.NewMem() }

// ShardRoots returns the conventional shard root directories for a
// store at dir: <dir>/data-shard0 .. data-shard{n-1}. It is how vssd's
// and vssctl's -shards flag derives roots, so independent processes
// agree on placement for the same count.
func ShardRoots(dir string, n int) []string { return core.ShardRoots(dir, n) }

// System is an open VSS store.
type System struct {
	store *core.Store
}

// Open opens (creating if necessary) a VSS store rooted at dir.
func Open(dir string, opts Options) (*System, error) {
	s, err := core.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	return &System{store: s}, nil
}

// OpenWith is Open with an explicit storage backend; it is shorthand
// for setting Options.Backend.
func OpenWith(dir string, opts Options, backend Backend) (*System, error) {
	opts.Backend = backend
	return Open(dir, opts)
}

// BackendStats snapshots the storage backend's read/write byte and
// latency counters. Safe for concurrent use.
func (s *System) BackendStats() BackendStats { return s.store.BackendStats() }

// ReplicationStats snapshots replica placement, read-failover, per-shard
// health, and scrub counters when the backend keeps redundant copies
// (NewShardedBackend with replicas > 1 — though any sharded backend
// reports). ok is false for backends with no replication machinery
// (localfs, mem). Safe for concurrent use; also served by vssd /metrics
// as the "replication" section.
func (s *System) ReplicationStats() (ReplicationStats, bool) {
	return s.store.ReplicationStats()
}

// ClusterStats snapshots routed-fleet health when the backend routes
// GOPs across remote vssd nodes (the vssrouterd daemon's cluster
// backend): per-node errors and demotions, read failovers, write-repair
// journal depth, repair and scrub counters. ok is false for local
// backends. Safe for concurrent use; also served by /metrics as the
// "cluster" section.
func (s *System) ClusterStats() (ClusterStats, bool) { return s.store.ClusterStats() }

// Backend exposes the system's (metrics-instrumented) storage backend —
// the GOP plane vssd serves over its /gops endpoints so a router fleet
// can use this node as a remote replica store.
func (s *System) Backend() Backend { return s.store.Backend() }

// RestoreCatalog rebuilds the metadata catalog of a (closed) store at
// dir from the snapshot a Maintain pass replicated into backend; see
// Options.SnapshotCatalog. force overwrites an existing catalog.
func RestoreCatalog(dir string, backend Backend, force bool) error {
	return core.RestoreCatalog(dir, backend, force)
}

// Close flushes metadata and closes the store.
func (s *System) Close() error { return s.store.Close() }

// Create registers a logical video. budgetBytes 0 applies the default
// budget (a multiple of the originally written size); negative is
// unlimited.
func (s *System) Create(name string, budgetBytes int64) error {
	return s.store.Create(name, budgetBytes)
}

// Delete removes a logical video and all of its physical data.
func (s *System) Delete(name string) error { return s.store.Delete(name) }

// Write stores frames as (or appended to) the video's original physical
// representation.
func (s *System) Write(name string, spec WriteSpec, frames []*Frame) error {
	return s.store.Write(name, spec, frames)
}

// WriteEncoded ingests already-compressed GOP bitstreams as-is.
func (s *System) WriteEncoded(name string, fps int, gops [][]byte) error {
	return s.store.WriteEncoded(name, fps, gops)
}

// OpenWriter starts a streaming write; frames become readable GOP by GOP.
// Ingest is pipelined with default WriteOptions (encode workers sized to
// Options.Workers); use OpenWriterWith to tune or disable the pipeline.
func (s *System) OpenWriter(name string, spec WriteSpec) (*Writer, error) {
	return s.store.OpenWriter(name, spec)
}

// OpenWriterWith starts a streaming write with explicit ingest-pipeline
// tuning.
func (s *System) OpenWriterWith(name string, spec WriteSpec, opts WriteOptions) (*Writer, error) {
	return s.store.OpenWriterWith(name, spec, opts)
}

// Read executes a read with spatial, temporal, and physical parameters,
// automatically selecting the cheapest combination of cached materialized
// views to answer it.
func (s *System) Read(name string, spec ReadSpec) (*ReadResult, error) {
	return s.store.Read(name, spec)
}

// ReadContext is Read with cancellation: when ctx is cancelled the read's
// remaining decode work is abandoned at the next GOP boundary and the
// context's error is returned.
func (s *System) ReadContext(ctx context.Context, name string, spec ReadSpec) (*ReadResult, error) {
	return s.store.ReadContext(ctx, name, spec)
}

// ReadStream begins a streaming read: planning runs synchronously, then
// output units — encoded GOPs for compressed reads, frame batches for raw
// reads — arrive from the returned stream's Next in order, as the parallel
// decode pipeline produces them, byte-identical to what Read would have
// returned all at once. Cancelling ctx (or calling Close) stops the
// remaining decode work; streaming reads never cache-admit their result.
// This is the read path the vssd serving daemon uses so a disconnected
// client stops consuming CPU.
func (s *System) ReadStream(ctx context.Context, name string, spec ReadSpec) (*ReadStream, error) {
	return s.store.ReadStream(ctx, name, spec)
}

// ReadWhere scans [t0, t1) of a video's original frames (t1 <= 0 means
// the end) and returns those matching pred, consulting the temporal
// index and the per-GOP summaries so GOPs that provably cannot match are
// never fetched or decoded. Matches carry RGB frames at source
// resolution, byte-identical to a full raw RGB read filtered with
// AnalyzeFrames. Safe for concurrent use.
func (s *System) ReadWhere(ctx context.Context, name string, pred Predicate, t0, t1 float64) (*QueryResult, error) {
	return s.store.ReadWhereContext(ctx, name, pred, t0, t1)
}

// ReadStreamWhere is ReadWhere with streaming delivery: Next yields the
// matches of one decoded GOP at a time while later candidates prefetch
// and decode ahead. Drain to io.EOF or Close the stream.
func (s *System) ReadStreamWhere(ctx context.Context, name string, pred Predicate, t0, t1 float64) (*QueryStream, error) {
	return s.store.ReadStreamWhere(ctx, name, pred, t0, t1)
}

// DeferredLevel reports the deferred-compression level the maintenance
// controller would apply to the video right now; 0 means inactive. Exposed
// for operational metrics (the vssd /metrics endpoint).
func (s *System) DeferredLevel(name string) int { return s.store.DeferredLevel(name) }

// Videos lists the logical videos in the store.
func (s *System) Videos() []string { return s.store.Videos() }

// TotalBytes reports the stored size of a video across all of its
// physical representations.
func (s *System) TotalBytes(name string) (int64, error) { return s.store.TotalBytes(name) }

// JointCompress runs joint-compression discovery and compression across
// all videos in the store (Section 5.1).
func (s *System) JointCompress(merge MergeMode) (JointStats, error) {
	return s.store.JointCompressAll(merge)
}

// Compact merges contiguous same-configuration cached views of a video
// (Section 5.3), returning the number of merges.
func (s *System) Compact(name string) (int, error) { return s.store.CompactVideo(name) }

// Maintain runs one pass of background maintenance (deferred compression
// and compaction) across all videos.
func (s *System) Maintain() error { return s.store.Maintain() }

// StartBackground runs Maintain on an interval until the returned stop
// function is called.
func (s *System) StartBackground(interval time.Duration) (stop func()) {
	return s.store.StartBackground(interval)
}

// Store exposes the underlying storage manager for experiments and
// advanced integrations (e.g. the benchmark harness).
func (s *System) Store() *core.Store { return s.store }
