package vss_test

import (
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/visualroad"
	"repro/vss"
)

func openSys(t *testing.T) *vss.System {
	t.Helper()
	sys, err := vss.Open(t.TempDir(), vss.Options{GOPFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

func genFrames(n int) []*vss.Frame {
	return visualroad.Generate(visualroad.Config{Width: 96, Height: 64, FPS: 8, Seed: 71}, n)
}

func TestPublicAPILifecycle(t *testing.T) {
	sys := openSys(t)
	if err := sys.Create("traffic", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write("traffic", vss.WriteSpec{FPS: 8, Codec: vss.H264}, genFrames(16)); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Read("traffic", vss.ReadSpec{
		S: vss.Spatial{Width: 48, Height: 32},
		T: vss.Temporal{Start: 0, End: 1},
		P: vss.Physical{Format: vss.RGB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 8 || res.Frames[0].Width != 48 {
		t.Errorf("read %d frames at width %d", len(res.Frames), res.Frames[0].Width)
	}
	if got := sys.Videos(); len(got) != 1 || got[0] != "traffic" {
		t.Errorf("videos %v", got)
	}
	if n, err := sys.TotalBytes("traffic"); err != nil || n <= 0 {
		t.Errorf("total bytes %d %v", n, err)
	}
	if err := sys.Delete("traffic"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Read("traffic", vss.ReadSpec{}); err != vss.ErrNotFound {
		t.Errorf("read after delete: %v", err)
	}
}

func TestPublicAPICompressedRead(t *testing.T) {
	sys := openSys(t)
	sys.Create("v", 0)
	if err := sys.Write("v", vss.WriteSpec{FPS: 8, Codec: vss.H264}, genFrames(16)); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Read("v", vss.ReadSpec{P: vss.Physical{Codec: vss.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GOPs) == 0 {
		t.Error("compressed read returned no GOPs")
	}
	if res.FrameCount() != 16 {
		t.Errorf("frame count %d", res.FrameCount())
	}
}

func TestPublicAPIStreamingWriter(t *testing.T) {
	sys := openSys(t)
	sys.Create("live", 0)
	w, err := sys.OpenWriter("live", vss.WriteSpec{FPS: 8, Codec: vss.H264})
	if err != nil {
		t.Fatal(err)
	}
	frames := genFrames(16)
	if err := w.Append(frames...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Read("live", vss.ReadSpec{})
	if err != nil || len(res.Frames) != 16 {
		t.Fatalf("read: %v %d", err, len(res.Frames))
	}
}

func TestPublicAPIPipelinedWriter(t *testing.T) {
	sys := openSys(t)
	sys.Create("live", 0)
	w, err := sys.OpenWriterWith("live", vss.WriteSpec{FPS: 8, Codec: vss.H264},
		vss.WriteOptions{EncodeWorkers: 3, MaxInflightGOPs: 5})
	if err != nil {
		t.Fatal(err)
	}
	frames := genFrames(40)
	for i := 0; i < len(frames); i += 8 {
		if err := w.Append(frames[i : i+8]...); err != nil {
			t.Fatal(err)
		}
	}
	// Flush drains the pipeline: everything appended must now be durable.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Read("live", vss.ReadSpec{})
	if err != nil || res.FrameCount() != 40 {
		t.Fatalf("read after flush: %v, %d frames", err, res.FrameCount())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIStreamingRead(t *testing.T) {
	sys := openSys(t)
	sys.Create("v", 0)
	if err := sys.Write("v", vss.WriteSpec{FPS: 8, Codec: vss.H264}, genFrames(24)); err != nil {
		t.Fatal(err)
	}
	st, err := sys.ReadStream(context.Background(), "v", vss.ReadSpec{P: vss.Physical{Codec: vss.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	total := 0
	for {
		batch, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += batch.FrameCount()
	}
	if total != 24 {
		t.Errorf("streamed %d frames, want 24", total)
	}
	if st.Stats().GOPsDecoded == 0 {
		t.Error("stream stats report no decoded GOPs")
	}
	// Cancellation: an already-cancelled context refuses to start.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.ReadStream(ctx, "v", vss.ReadSpec{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ReadStream on cancelled ctx: %v", err)
	}
	if _, err := sys.ReadContext(ctx, "v", vss.ReadSpec{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ReadContext on cancelled ctx: %v", err)
	}
}

func TestPublicAPIMaintenance(t *testing.T) {
	sys := openSys(t)
	sys.Create("v", 0)
	sys.Write("v", vss.WriteSpec{FPS: 8, Codec: vss.H264}, genFrames(16))
	if err := sys.Maintain(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Compact("v"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.JointCompress(vss.MergeUnprojected); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIBackends(t *testing.T) {
	dir := t.TempDir()
	roots := vss.ShardRoots(dir, 3)
	if len(roots) != 3 || roots[0] == roots[1] {
		t.Fatalf("shard roots %v", roots)
	}
	backend, err := vss.NewShardedBackend(roots, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vss.OpenWith(dir, vss.Options{GOPFrames: 8}, backend)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Create("cam", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write("cam", vss.WriteSpec{FPS: 8, Codec: vss.H264}, genFrames(16)); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Read("cam", vss.ReadSpec{T: vss.Temporal{Start: 0, End: 1}})
	if err != nil || len(res.Frames) != 8 {
		t.Fatalf("sharded read: %v, %d frames", err, len(res.Frames))
	}
	st := sys.BackendStats()
	if st.Backend != "sharded" || st.Writes == 0 || st.Reads == 0 || st.BytesRead == 0 {
		t.Errorf("backend stats %+v", st)
	}
	if err := sys.Maintain(); err != nil {
		t.Fatal(err)
	}
	rep, ok := sys.ReplicationStats()
	if !ok || rep.Shards != 3 || rep.Replicas != 2 || rep.Scrubs == 0 {
		t.Errorf("replication stats %+v ok=%v", rep, ok)
	}
	if rep.LastScrub.Checked == 0 || rep.LastScrub.Unrecoverable != 0 {
		t.Errorf("scrub stats %+v", rep.LastScrub)
	}

	memSys, err := vss.OpenWith(t.TempDir(), vss.Options{GOPFrames: 8}, vss.NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	defer memSys.Close()
	if err := memSys.Create("m", 0); err != nil {
		t.Fatal(err)
	}
	if err := memSys.Write("m", vss.WriteSpec{FPS: 8, Codec: vss.H264}, genFrames(8)); err != nil {
		t.Fatal(err)
	}
	if st := memSys.BackendStats(); st.Backend != "mem" {
		t.Errorf("mem backend stats %+v", st)
	}
	if _, ok := memSys.ReplicationStats(); ok {
		t.Error("mem backend reported replication stats")
	}
}
