package vss_test

import (
	"bytes"
	"testing"

	"repro/vss"
)

// TestCatalogSnapshotRestore exercises the catalog's disaster path: a
// store with SnapshotCatalog replicates its catalog into the backend on
// Maintain; RestoreCatalog then rebuilds a fresh store directory from
// that copy alone, and the rebuilt store serves the original frames.
func TestCatalogSnapshotRestore(t *testing.T) {
	backend := vss.NewMemBackend()
	sys, err := vss.OpenWith(t.TempDir(), vss.Options{GOPFrames: 8, SnapshotCatalog: true}, backend)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Create("traffic", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write("traffic", vss.WriteSpec{FPS: 8, Codec: vss.H264}, genFrames(16)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Maintain(); err != nil {
		t.Fatalf("maintain (snapshots catalog): %v", err)
	}
	want, err := sys.Read("traffic", vss.ReadSpec{P: vss.Physical{Format: vss.RGB}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// The store host is lost; only the backend survives. Rebuild.
	dir := t.TempDir()
	if err := vss.RestoreCatalog(dir, backend, false); err != nil {
		t.Fatalf("restore: %v", err)
	}
	sys2, err := vss.OpenWith(dir, vss.Options{GOPFrames: 8}, backend)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if got := sys2.Videos(); len(got) != 1 || got[0] != "traffic" {
		t.Fatalf("restored videos = %v", got)
	}
	got, err := sys2.Read("traffic", vss.ReadSpec{P: vss.Physical{Format: vss.RGB}})
	if err != nil {
		t.Fatalf("read from restored store: %v", err)
	}
	if len(got.Frames) != len(want.Frames) {
		t.Fatalf("restored store served %d frames, want %d", len(got.Frames), len(want.Frames))
	}
	for i := range got.Frames {
		if !bytes.Equal(got.Frames[i].Data, want.Frames[i].Data) {
			t.Fatalf("frame %d differs after restore", i)
		}
	}

	// A non-empty catalog refuses restore without force.
	if err := vss.RestoreCatalog(dir, backend, false); err == nil {
		t.Error("restore over an existing catalog succeeded without force")
	}
}

// TestRestoreCatalogWithoutSnapshot verifies the error path when the
// backend holds no snapshot.
func TestRestoreCatalogWithoutSnapshot(t *testing.T) {
	if err := vss.RestoreCatalog(t.TempDir(), vss.NewMemBackend(), false); err == nil {
		t.Fatal("restore from an empty backend succeeded")
	}
}
