package codec

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/frame"
	"repro/internal/quality"
)

// testScene generates n frames of a synthetic moving scene: a smooth
// gradient background with a moving bright square, the content class the
// predictive profiles are designed for.
func testScene(n, w, h int, seed int64) []*frame.Frame {
	rng := rand.New(rand.NewSource(seed))
	bgR, bgG, bgB := rng.Intn(128), rng.Intn(128), rng.Intn(128)
	frames := make([]*frame.Frame, n)
	for i := 0; i < n; i++ {
		f := frame.New(w, h, frame.RGB)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				f.SetRGB(x, y, u8(bgR+x/2), u8(bgG+y/2), u8(bgB+(x+y)/4))
			}
		}
		// A square moving 2px/frame with wraparound.
		sx := (i*2 + 5) % (w - 8)
		sy := h / 3
		for y := sy; y < sy+8 && y < h; y++ {
			for x := sx; x < sx+8 && x < w; x++ {
				f.SetRGB(x, y, 230, 40, 40)
			}
		}
		frames[i] = f
	}
	return frames
}

func u8(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// psnrVsOriginal decodes and measures mean PSNR against the originals
// (compared in YUV420 space, where the codec operates).
func psnrVsOriginal(t *testing.T, orig []*frame.Frame, data []byte) float64 {
	t.Helper()
	dec, _, err := DecodeGOP(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(orig) {
		t.Fatalf("decoded %d frames, want %d", len(dec), len(orig))
	}
	ref := make([]*frame.Frame, len(orig))
	for i, f := range orig {
		ref[i] = f.Convert(frame.YUV420)
	}
	p, err := quality.FramesPSNR(ref, dec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRawRoundTripExact(t *testing.T) {
	for _, pf := range []frame.PixelFormat{frame.RGB, frame.YUV420, frame.Gray} {
		frames := make([]*frame.Frame, 3)
		rng := rand.New(rand.NewSource(11))
		for i := range frames {
			frames[i] = frame.New(16, 12, pf)
			rng.Read(frames[i].Data)
		}
		data, st, err := EncodeGOP(frames, Raw, 0)
		if err != nil {
			t.Fatalf("%v: %v", pf, err)
		}
		if st.IFrames != 3 || st.PFrames != 0 {
			t.Errorf("%v: raw GOP stats %+v", pf, st)
		}
		dec, hd, err := DecodeGOP(data)
		if err != nil {
			t.Fatalf("%v: %v", pf, err)
		}
		if hd.PixFmt != pf {
			t.Errorf("%v: header pixfmt %v", pf, hd.PixFmt)
		}
		for i := range frames {
			for j := range frames[i].Data {
				if dec[i].Data[j] != frames[i].Data[j] {
					t.Fatalf("%v: frame %d byte %d mismatch", pf, i, j)
				}
			}
		}
	}
}

func TestLossyRoundTripQuality(t *testing.T) {
	frames := testScene(6, 64, 48, 1)
	for _, id := range []ID{H264, HEVC} {
		for _, q := range []int{60, 90, 100} {
			data, st, err := EncodeGOP(frames, id, q)
			if err != nil {
				t.Fatalf("%s q=%d: %v", id, q, err)
			}
			if st.IFrames != 1 || st.PFrames != 5 {
				t.Errorf("%s: GOP structure I=%d P=%d", id, st.IFrames, st.PFrames)
			}
			p := psnrVsOriginal(t, frames, data)
			minPSNR := 30.0
			if q == 100 {
				minPSNR = 45
			}
			if p < minPSNR {
				t.Errorf("%s q=%d: PSNR %.1f < %.1f", id, q, p, minPSNR)
			}
		}
	}
}

func TestQualityDialMonotone(t *testing.T) {
	frames := testScene(4, 64, 48, 2)
	for _, id := range []ID{H264, HEVC} {
		var prevPSNR float64
		var prevSize = 0
		for _, q := range []int{20, 50, 80, 100} {
			data, _, err := EncodeGOP(frames, id, q)
			if err != nil {
				t.Fatal(err)
			}
			p := psnrVsOriginal(t, frames, data)
			if p+0.5 < prevPSNR {
				t.Errorf("%s: PSNR decreased with quality: q=%d gives %.1f < %.1f", id, q, p, prevPSNR)
			}
			if len(data) < prevSize {
				t.Logf("%s: size %d at q=%d below previous %d (allowed, entropy coding)", id, len(data), q, prevSize)
			}
			prevPSNR, prevSize = p, len(data)
		}
	}
}

func TestHEVCBeatsH264OnRatio(t *testing.T) {
	// Moving content at matched quality: the hevc profile (motion search,
	// 2D intra) should produce a meaningfully smaller bitstream.
	frames := testScene(10, 96, 64, 3)
	h, _, err := EncodeGOP(frames, H264, 80)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := EncodeGOP(frames, HEVC, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) >= len(h) {
		t.Errorf("hevc (%d bytes) not smaller than h264 (%d bytes)", len(v), len(h))
	}
}

func TestHeaderWithoutDecode(t *testing.T) {
	frames := testScene(5, 32, 32, 4)
	data, _, err := EncodeGOP(frames, HEVC, 70)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := DecodeHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if hd.Codec != HEVC || hd.Width != 32 || hd.Height != 32 || hd.FrameCount != 5 {
		t.Errorf("header %+v", hd)
	}
	if hd.Quality != 70 {
		t.Errorf("quality %d", hd.Quality)
	}
	want := []FrameType{IFrame, PFrame, PFrame, PFrame, PFrame}
	for i, ft := range hd.FrameTypes {
		if ft != want[i] {
			t.Errorf("frame %d type %v, want %v", i, ft, want[i])
		}
	}
}

func TestDecodeRangeMatchesFullDecode(t *testing.T) {
	frames := testScene(8, 48, 32, 5)
	data, _, err := EncodeGOP(frames, H264, 85)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := DecodeGOP(data)
	if err != nil {
		t.Fatal(err)
	}
	part, _, err := DecodeRange(data, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 3 {
		t.Fatalf("range decode returned %d frames", len(part))
	}
	for i := 0; i < 3; i++ {
		for j := range part[i].Data {
			if part[i].Data[j] != full[3+i].Data[j] {
				t.Fatalf("range frame %d differs from full decode", i)
			}
		}
	}
}

func TestDecodeRangeBounds(t *testing.T) {
	frames := testScene(4, 32, 32, 6)
	data, _, _ := EncodeGOP(frames, H264, 80)
	if _, _, err := DecodeRange(data, -1, 2); err == nil {
		t.Error("negative from should error")
	}
	if _, _, err := DecodeRange(data, 3, 2); err == nil {
		t.Error("from > to should error")
	}
	got, _, err := DecodeRange(data, 2, -1)
	if err != nil || len(got) != 2 {
		t.Errorf("open-ended range: %v, %d frames", err, len(got))
	}
	got, _, err = DecodeRange(data, 0, 100)
	if err != nil || len(got) != 4 {
		t.Errorf("over-long range should clamp: %v, %d frames", err, len(got))
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, _, err := EncodeGOP(nil, H264, 80); err == nil {
		t.Error("empty GOP should error")
	}
	if _, _, err := EncodeGOP([]*frame.Frame{frame.New(8, 8, frame.RGB)}, "vp9", 80); err == nil {
		t.Error("unknown codec should error")
	}
	mixed := []*frame.Frame{frame.New(8, 8, frame.RGB), frame.New(16, 8, frame.RGB)}
	if _, _, err := EncodeGOP(mixed, H264, 80); err == nil {
		t.Error("mismatched dimensions should error")
	}
	odd := []*frame.Frame{frame.New(7, 7, frame.RGB)}
	if _, _, err := EncodeGOP(odd, H264, 80); err == nil {
		t.Error("odd dimensions should error for lossy codec")
	}
	if _, _, err := EncodeGOP(odd, Raw, 0); err != nil {
		t.Errorf("raw codec should accept odd dimensions: %v", err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := DecodeGOP([]byte("not a gop")); err == nil {
		t.Error("garbage should error")
	}
	frames := testScene(3, 32, 32, 7)
	data, _, _ := EncodeGOP(frames, H264, 80)
	if _, _, err := DecodeGOP(data[:len(data)/2]); err == nil {
		t.Error("truncated GOP should error")
	}
	// Corrupt the version byte.
	bad := append([]byte(nil), data...)
	bad[4] = 99
	if _, _, err := DecodeGOP(bad); err == nil {
		t.Error("bad version should error")
	}
}

func TestStatsBitsPerPixel(t *testing.T) {
	frames := testScene(5, 64, 48, 8)
	_, st, err := EncodeGOP(frames, H264, 80)
	if err != nil {
		t.Fatal(err)
	}
	if st.BitsPerPixel <= 0 || st.BitsPerPixel > 24 {
		t.Errorf("implausible bpp %f", st.BitsPerPixel)
	}
	_, rawSt, _ := EncodeGOP(frames, Raw, 0)
	if rawSt.BitsPerPixel < 23.9 {
		t.Errorf("raw rgb bpp %f, want ~24", rawSt.BitsPerPixel)
	}
	if st.BitsPerPixel >= rawSt.BitsPerPixel/2 {
		t.Errorf("compression too weak: %f vs raw %f", st.BitsPerPixel, rawSt.BitsPerPixel)
	}
}

func TestQuantizerMapping(t *testing.T) {
	if quantizer(100) != 1 {
		t.Errorf("quantizer(100) = %d, want 1", quantizer(100))
	}
	if quantizer(1) <= quantizer(50) {
		t.Error("lower quality must mean coarser quantizer")
	}
	if quantizer(-5) != quantizer(1) || quantizer(500) != quantizer(100) {
		t.Error("quantizer must clamp out-of-range quality")
	}
}

func TestYUV420InputAvoidsConversion(t *testing.T) {
	rgb := testScene(3, 32, 32, 9)
	yuv := make([]*frame.Frame, len(rgb))
	for i, f := range rgb {
		yuv[i] = f.Convert(frame.YUV420)
	}
	data, _, err := EncodeGOP(yuv, H264, 90)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecodeGOP(data)
	if err != nil {
		t.Fatal(err)
	}
	p, err := quality.FramesPSNR(yuv, dec)
	if err != nil {
		t.Fatal(err)
	}
	if p < 40 {
		t.Errorf("yuv420 round trip PSNR %.1f < 40", p)
	}
}

func TestSingleFrameGOP(t *testing.T) {
	frames := testScene(1, 32, 32, 10)
	data, st, err := EncodeGOP(frames, HEVC, 80)
	if err != nil {
		t.Fatal(err)
	}
	if st.IFrames != 1 || st.PFrames != 0 {
		t.Errorf("single-frame GOP stats %+v", st)
	}
	dec, _, err := DecodeGOP(data)
	if err != nil || len(dec) != 1 {
		t.Fatalf("decode: %v, %d frames", err, len(dec))
	}
}

func TestFrameTypeString(t *testing.T) {
	if IFrame.String() != "I" || PFrame.String() != "P" {
		t.Error("FrameType string")
	}
}

func TestIDValid(t *testing.T) {
	for _, id := range []ID{Raw, H264, HEVC} {
		if !id.Valid() {
			t.Errorf("%s should be valid", id)
		}
	}
	if ID("av1").Valid() {
		t.Error("av1 should not be valid")
	}
	if Raw.Compressed() || !H264.Compressed() || !HEVC.Compressed() {
		t.Error("Compressed() wrong")
	}
}

// TestEncodeGOPReconMatchesDecode pins the ReconEncoder contract: the
// reconstructed frames returned alongside the bitstream must be
// byte-identical to decoding that bitstream, and the bitstream itself must
// be identical to a plain EncodeGOP. The predictive profiles satisfy this
// from their closed prediction loop; ls exercises the decode-back
// fallback; raw exercises the lossless identity shortcut.
func TestEncodeGOPReconMatchesDecode(t *testing.T) {
	frames := testScene(9, 64, 48, 41)
	for _, tc := range []struct {
		id      ID
		quality int
	}{
		{H264, 85}, {HEVC, 70}, {LS, DefaultQuality}, {Raw, 100},
	} {
		enc := NewEncoder()
		plain, _, err := enc.EncodeGOP(frames, tc.id, tc.quality)
		if err != nil {
			t.Fatalf("%s: %v", tc.id, err)
		}
		data, recon, _, err := enc.EncodeGOPRecon(frames, tc.id, tc.quality)
		if err != nil {
			t.Fatalf("%s: %v", tc.id, err)
		}
		if !bytes.Equal(plain, data) {
			t.Errorf("%s: EncodeGOPRecon bitstream differs from EncodeGOP", tc.id)
		}
		if len(recon) != len(frames) {
			t.Fatalf("%s: %d recon frames, want %d", tc.id, len(recon), len(frames))
		}
		dec, _, err := DecodeGOP(data)
		if err != nil {
			t.Fatalf("%s: decode back: %v", tc.id, err)
		}
		for i := range dec {
			want := dec[i]
			got := recon[i]
			// Lossless codecs may return the inputs themselves; compare in
			// the stored pixel format either way.
			if got.Format != want.Format {
				got = got.Convert(want.Format)
			}
			if !bytes.Equal(got.Data, want.Data) {
				t.Errorf("%s: recon frame %d differs from decoded frame", tc.id, i)
			}
		}
	}
}
