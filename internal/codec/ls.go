package codec

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/frame"
)

// lsCodec is the "ls" codec: a JPEG-LS-style (LOCO-I) intra-only coder
// built for the deferred lossless tier and fast near-lossless reads. Each
// plane is coded sample-by-sample with the MED predictor (median edge
// detector over the left/top/top-left neighbors), a run mode that covers
// flat regions in a handful of bits, and Golomb-Rice residual coding —
// no flate anywhere on the path, which is what buys the >=2x encode and
// decode throughput over the flate-based lossless tier that the `codec`
// bench experiment pins.
//
// The Rice parameter adapts backward per row rather than per sample:
// both sides derive row y's k from the residual magnitudes they already
// (de)coded in row y-1, so no parameter bits hit the stream and the
// decoder's per-sample entropy cost is one trailing-zeros count plus
// shifts through a 64-bit accumulator. MED itself is branchless via the
// median identity med(a, b, a+b-c) = clamp(a+b-c, min(a,b), max(a,b)).
//
// The quality dial maps onto JPEG-LS's NEAR parameter: residuals are
// quantized to an error bound of ±NEAR per sample, with NEAR =
// quantizer(quality)/2, so quality >= 97 is NEAR=0 and bit-exact. That
// keeps ExpectedMSE's Q²/12 estimate valid (uniform error on [-NEAR,NEAR]
// has MSE NEAR²/3 ≈ Q²/12).
//
// Unlike the predictive profiles, ls codes frames in their NATIVE pixel
// format (RGB is deinterleaved into three full-resolution planes, the
// planar formats are coded plane by plane), so a raw cached view of any
// format round-trips bit-exactly at NEAR=0 — the property the deferred
// rewrite tier depends on. Every frame is an I-frame: zero look-back
// cost, and DecodeRange skips frames outside the requested window
// entirely.
type lsCodec struct{}

func init() { Register(lsCodec{}) }

func (lsCodec) Name() ID { return LS }

// lsNear maps the quality dial onto the near-lossless error bound.
func lsNear(quality int) int { return quantizer(quality) / 2 }

func (lsCodec) Lossless(quality int) bool {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	return lsNear(quality) == 0
}

const (
	// lsKDefault seeds the Rice parameter for each plane's first row.
	lsKDefault = 4
	// lsKMax caps the adaptive Rice parameter.
	lsKMax = 14
	// lsEscapeQ bounds the unary quotient; larger residuals escape to a
	// raw magnitude (zigzag of a byte residual is < 512, so 9 bits).
	lsEscapeQ = 24
	// lsEscBits is the escape payload width.
	lsEscBits = 9
	// lsMaxGamma bounds run-length gamma codes (runs never exceed a row).
	lsMaxGamma = 20
)

// lsNextK derives the next row's Rice parameter from the previous row's
// coded magnitudes: the smallest k with w<<k >= msum, i.e. k ≈ log2 of
// the mean magnitude over the row, the Rice-optimal choice for geometric
// residuals. Run-covered samples count in the denominator (both sides
// know w; no per-sample counter on the hot loop), which only biases k
// down on run-dominated rows where residuals are tiny anyway.
func lsNextK(w uint32, msum uint32) uint {
	k := uint(0)
	for w<<k < msum && k < lsKMax {
		k++
	}
	return k
}

// lsQuantize maps a residual onto its near-lossless index: the decoder
// reconstructs pred + index*(2*near+1), within ±near of the original.
func lsQuantize(r, near int) int {
	if near == 0 {
		return r
	}
	t := 2*near + 1
	if r > 0 {
		return (r + near) / t
	}
	return -((near - r) / t)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// lsWork is one worker's coding state: the bitstream accumulator, a
// reconstruction plane (NEAR>0 predicts from reconstructed samples), and
// deinterleave buffers for RGB input.
type lsWork struct {
	bw    bitWriter
	rec   []byte
	chans [3][]byte
}

// lsScratch is the per-Encoder scratch: one lsWork per encode worker.
type lsScratch struct {
	ws []lsWork
}

// lsWorkers picks the fan-out for a GOP: frames are independent
// payloads, so each can be coded by its own goroutine with byte-identical
// output regardless of worker count. VSL1's single flate stream has no
// such seam — this is where the lossless tier's decode gap opens on
// multicore hosts. One worker (or one frame) stays fully inline.
func lsWorkers(frames int) int {
	w := runtime.GOMAXPROCS(0)
	if w > frames {
		w = frames
	}
	if w < 1 {
		w = 1
	}
	return w
}

// lsParallel runs fn over [0, n) across the given number of workers,
// returning the first error. workers <= 1 runs inline.
func lsParallel(n, workers int, fn func(i, worker int) error) error {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i, 0); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
	)
	next.Store(-1)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i, wkr); err != nil {
					errOnce.Do(func() { first = err })
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	return first
}

func (lsCodec) EncodeGOP(e *Encoder, frames []*frame.Frame, quality int) ([]byte, Stats, error) {
	f0 := frames[0]
	if err := f0.Format.Validate(f0.Width, f0.Height); err != nil {
		return nil, Stats{}, fmt.Errorf("codec: ls: %w", err)
	}
	dims, interleaved := lsPlaneDims(f0.Format, f0.Width, f0.Height)
	if dims == nil {
		return nil, Stats{}, fmt.Errorf("codec: ls: unsupported pixel format %v", f0.Format)
	}
	sc := e.Scratch(LS, func() any { return new(lsScratch) }).(*lsScratch)
	near := lsNear(quality)
	workers := lsWorkers(len(frames))
	if len(sc.ws) < workers {
		sc.ws = make([]lsWork, workers)
	}

	types := make([]FrameType, len(frames))
	payloads := make([][]byte, len(frames))
	st := Stats{IFrames: len(frames)}
	for i := range types {
		types[i] = IFrame
	}
	err := lsParallel(len(frames), workers, func(i, wkr int) error {
		wk := &sc.ws[wkr]
		f := frames[i]
		wk.bw.reset()
		if interleaved {
			lsDeinterleave(f.Data, wk)
			for p := range dims {
				lsEncodePlane(&wk.bw, wk.chans[p], dims[p].w, dims[p].h, near, wk)
			}
		} else {
			off := 0
			for p := range dims {
				n := dims[p].w * dims[p].h
				lsEncodePlane(&wk.bw, f.Data[off:off+n], dims[p].w, dims[p].h, near, wk)
				off += n
			}
		}
		payloads[i] = wk.bw.finish()
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	data := writeContainer(LS, f0.Format, quality, f0.Width, f0.Height, types, payloads)
	st.Bytes = len(data)
	st.BitsPerPixel = float64(len(data)) * 8 / float64(f0.Width*f0.Height*len(frames))
	return data, st, nil
}

func (lsCodec) DecodeRange(data []byte, hd Header, from, to int) ([]*frame.Frame, error) {
	payloads, err := framePayloads(data, hd)
	if err != nil {
		return nil, err
	}
	if err := hd.PixFmt.Validate(hd.Width, hd.Height); err != nil {
		return nil, fmt.Errorf("codec: ls: %w", err)
	}
	dims, interleaved := lsPlaneDims(hd.PixFmt, hd.Width, hd.Height)
	if dims == nil {
		return nil, fmt.Errorf("codec: ls: unsupported pixel format %v", hd.PixFmt)
	}
	near := lsNear(hd.Quality)
	n := to - from
	workers := lsWorkers(n)
	var chans [][3][]byte
	if interleaved {
		chans = make([][3][]byte, workers)
		for w := range chans {
			for p := range dims {
				chans[w][p] = make([]byte, dims[p].w*dims[p].h)
			}
		}
	}
	out := make([]*frame.Frame, n)
	// Intra-only: frames outside [from, to) are skipped, not decoded, and
	// the requested frames decode independently across workers.
	err = lsParallel(n, workers, func(i, wkr int) error {
		f := frame.New(hd.Width, hd.Height, hd.PixFmt)
		d := lsDec{data: payloads[from+i]}
		if interleaved {
			for p := range dims {
				if err := lsDecodePlane(&d, chans[wkr][p], dims[p].w, dims[p].h, near); err != nil {
					return fmt.Errorf("codec: ls frame %d plane %d: %w", from+i, p, err)
				}
			}
			lsInterleave(f.Data, chans[wkr])
		} else {
			off := 0
			for p := range dims {
				pn := dims[p].w * dims[p].h
				if err := lsDecodePlane(&d, f.Data[off:off+pn], dims[p].w, dims[p].h, near); err != nil {
					return fmt.Errorf("codec: ls frame %d plane %d: %w", from+i, p, err)
				}
				off += pn
			}
		}
		out[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// lsPlaneDims returns the coded plane dimensions for a pixel format, and
// whether the format is interleaved (RGB, needing a deinterleave pass).
func lsPlaneDims(pf frame.PixelFormat, w, h int) ([]struct{ w, h int }, bool) {
	switch pf {
	case frame.RGB:
		d := struct{ w, h int }{w, h}
		return []struct{ w, h int }{d, d, d}, true
	case frame.YUV420:
		return []struct{ w, h int }{{w, h}, {w / 2, h / 2}, {w / 2, h / 2}}, false
	case frame.YUV422:
		return []struct{ w, h int }{{w, h}, {w / 2, h}, {w / 2, h}}, false
	case frame.Gray:
		return []struct{ w, h int }{{w, h}}, false
	default:
		return nil, false
	}
}

func lsDeinterleave(data []byte, sc *lsWork) {
	n := len(data) / 3
	for p := range sc.chans {
		if cap(sc.chans[p]) < n {
			sc.chans[p] = make([]byte, n)
		}
		sc.chans[p] = sc.chans[p][:n]
	}
	r, g, b := sc.chans[0], sc.chans[1], sc.chans[2]
	for i := 0; i < n; i++ {
		r[i] = data[3*i]
		g[i] = data[3*i+1]
		b[i] = data[3*i+2]
	}
}

func lsInterleave(data []byte, chans [3][]byte) {
	n := len(data) / 3
	r, g, b := chans[0], chans[1], chans[2]
	for i := 0; i < n; i++ {
		data[3*i] = r[i]
		data[3*i+1] = g[i]
		data[3*i+2] = b[i]
	}
}

// lsClamp255 clamps to [0, 255] without branches (v is near byte range).
func lsClamp255(v int) int {
	if uint(v) > 255 {
		if v < 0 {
			return 0
		}
		return 255
	}
	return v
}

// lsEncodePlane codes one plane. For near==0 the reconstruction equals
// the source, so prediction reads pix directly and the input is never
// written — concurrent encoders may share frames. For near>0 a scratch
// reconstruction plane carries the decoder-visible samples prediction
// must use.
//
// Row 0 is pure left-DPCM (no run mode); from row 1 on, a == b == c
// (reconstructed left, top, and top-left agreeing) enters run mode: the
// count of samples reproducible as `a` within ±near is Elias-gamma
// coded, then the interrupting sample (if the run stopped short of the
// row end) is coded against prediction a.
func lsEncodePlane(bw *bitWriter, pix []byte, w, h, near int, sc *lsWork) {
	ref := pix
	if near > 0 {
		if cap(sc.rec) < w*h {
			sc.rec = make([]byte, w*h)
		}
		ref = sc.rec[:w*h]
	}
	t := 2*near + 1
	k := uint(lsKDefault)

	// Row 0: left-DPCM from a mid-gray seed.
	var msum uint32
	pred := 128
	row := pix[:w]
	for x := 0; x < w; x++ {
		qr := lsQuantize(int(row[x])-pred, near)
		rv := lsClamp255(pred + qr*t)
		if near > 0 {
			ref[x] = byte(rv)
		}
		m := uint32(qr<<1) ^ uint32(int32(qr)>>31)
		bw.putGolomb(m, k)
		msum += m
		pred = rv
	}
	k = lsNextK(uint32(w), msum)

	for y := 1; y < h; y++ {
		row := pix[y*w : y*w+w]
		prev := ref[(y-1)*w : y*w]
		var recRow []byte
		if near > 0 {
			recRow = ref[y*w : y*w+w]
		}
		msum = 0
		a := int(prev[0])
		c := a
		for x := 0; x < w; x++ {
			b := int(prev[x])
			if a == b && c == b {
				run := 0
				av := byte(a)
				if near == 0 {
					for x+run < w && row[x+run] == av {
						run++
					}
				} else {
					for x+run < w && absInt(int(row[x+run])-a) <= near {
						recRow[x+run] = av
						run++
					}
				}
				bw.putGamma(uint32(run + 1))
				x += run
				if x >= w {
					break
				}
				// Interrupt sample, predicted from the run value a.
				b = int(prev[x])
				qr := lsQuantize(int(row[x])-a, near)
				rv := lsClamp255(a + qr*t)
				if near > 0 {
					recRow[x] = byte(rv)
				}
				m := uint32(qr<<1) ^ uint32(int32(qr)>>31)
				bw.putGolomb(m, k)
				msum += m
				c = b
				a = rv
				continue
			}
			// Branchless MED: clamp(a+b-c, min(a,b), max(a,b)).
			mn, mx := a, b
			if mx < mn {
				mn, mx = mx, mn
			}
			pred := a + b - c
			if pred < mn {
				pred = mn
			}
			if pred > mx {
				pred = mx
			}
			qr := lsQuantize(int(row[x])-pred, near)
			rv := lsClamp255(pred + qr*t)
			if near > 0 {
				recRow[x] = byte(rv)
			}
			m := uint32(qr<<1) ^ uint32(int32(qr)>>31)
			bw.putGolomb(m, k)
			msum += m
			c = b
			a = rv
		}
		k = lsNextK(uint32(w), msum)
	}
}

// lsDecodePlane mirrors lsEncodePlane, writing reconstructed samples
// into out (which doubles as the prediction context as it fills in).
// The Golomb read is inlined at each site: one branchless 8-byte refill,
// a trailing-zeros count for the unary quotient, and shifts — the whole
// per-sample entropy cost. NEAR=0 (the deferred tier's path) gets a
// dedicated loop: no reconstruction multiply or clamp on the serial
// prediction chain, and an unconditional refill while the cursor is 8+
// bytes from the stream end, so the refill branch never mispredicts.
func lsDecodePlane(d *lsDec, out []byte, w, h, near int) error {
	if near == 0 {
		return lsDecodePlaneLossless(d, out, w, h)
	}
	return lsDecodePlaneNear(d, out, w, h, near)
}

// lsDecodePlaneLossless is the NEAR=0 fast path. Valid streams always
// reconstruct in [0,255] (the encoder coded exact residuals), so byte
// truncation replaces clamping; corrupt streams decode to garbage but
// stay memory-safe behind the same truncation/run guards.
func lsDecodePlaneLossless(d *lsDec, out []byte, w, h int) error {
	k := uint(lsKDefault)
	data := d.data
	pos, acc, nb := d.pos, d.acc, d.nb
	fastEnd := len(data) - 8

	var msum uint32
	pred := 128
	row := out[:w]
	for x := 0; x < w; x++ {
		// --- inline golomb read ---
		if pos <= fastEnd {
			acc |= binary.LittleEndian.Uint64(data[pos:]) << nb
			pos += int((63 - nb) >> 3)
			nb |= 56
		} else if nb < 40 {
			for nb <= 56 && pos < len(data) {
				acc |= uint64(data[pos]) << nb
				pos++
				nb += 8
			}
		}
		q := uint(bits.TrailingZeros64(^acc))
		var m uint32
		if q < lsEscapeQ {
			total := q + 1 + k
			if total > nb {
				return errTruncated
			}
			m = uint32(q)<<k | uint32(acc>>(q+1))&(1<<k-1)
			acc >>= total
			nb -= total
		} else {
			if lsEscapeQ+1+lsEscBits > nb {
				return errTruncated
			}
			m = uint32(acc>>(lsEscapeQ+1)) & (1<<lsEscBits - 1)
			acc >>= lsEscapeQ + 1 + lsEscBits
			nb -= lsEscapeQ + 1 + lsEscBits
		}
		// --- end golomb ---
		v := int(int32(m>>1) ^ -int32(m&1))
		bv := byte(pred + v)
		row[x] = bv
		msum += m
		pred = int(bv)
	}
	k = lsNextK(uint32(w), msum)

	for y := 1; y < h; y++ {
		row := out[y*w:][:w]
		prev := out[(y-1)*w:][:w]
		km := uint32(1)<<k - 1
		msum = 0
		a := int(prev[0])
		c := a
		// Two-level loop: the inner loop codes regular samples and never
		// mutates x mid-body, so x stays a simple induction variable and
		// the compiler drops the row/prev bounds checks; run handling
		// (which jumps x by the run length) lives in the outer loop.
		x := 0
		for x < w {
			for ; x < w; x++ {
				b := int(prev[x])
				if (a^b)|(c^b) == 0 {
					break
				}
				mn, mx := a, b
				if mx < mn {
					mn, mx = mx, mn
				}
				pred := a + b - c
				if pred < mn {
					pred = mn
				}
				if pred > mx {
					pred = mx
				}
				// --- inline golomb read ---
				if pos <= fastEnd {
					acc |= binary.LittleEndian.Uint64(data[pos:]) << nb
					pos += int((63 - nb) >> 3)
					nb |= 56
				} else if nb < 40 {
					for nb <= 56 && pos < len(data) {
						acc |= uint64(data[pos]) << nb
						pos++
						nb += 8
					}
				}
				q := uint(bits.TrailingZeros64(^acc))
				var m uint32
				if q < lsEscapeQ {
					total := q + 1 + k
					if total > nb {
						return errTruncated
					}
					m = uint32(q)<<k | uint32(acc>>(q+1))&km
					acc >>= total
					nb -= total
				} else {
					if lsEscapeQ+1+lsEscBits > nb {
						return errTruncated
					}
					m = uint32(acc>>(lsEscapeQ+1)) & (1<<lsEscBits - 1)
					acc >>= lsEscapeQ + 1 + lsEscBits
					nb -= lsEscapeQ + 1 + lsEscBits
				}
				// --- end golomb ---
				v := int(int32(m>>1) ^ -int32(m&1))
				bv := byte(pred + v)
				row[x] = bv
				msum += m
				c = b
				a = int(bv)
			}
			if x >= w {
				break
			}
			{
				// Run mode: gamma-coded run of `a`, then an interrupt
				// sample predicted from a (unless the run hit row end).
				if pos <= fastEnd {
					acc |= binary.LittleEndian.Uint64(data[pos:]) << nb
					pos += int((63 - nb) >> 3)
					nb |= 56
				} else if nb < 40 {
					for nb <= 56 && pos < len(data) {
						acc |= uint64(data[pos]) << nb
						pos++
						nb += 8
					}
				}
				g := uint(bits.TrailingZeros64(^acc))
				if g > lsMaxGamma {
					return fmt.Errorf("codec: ls: corrupt run length")
				}
				if 2*g+1 > nb {
					return errTruncated
				}
				n := uint32(1)<<g | uint32(acc>>(g+1))&(1<<g-1)
				acc >>= 2*g + 1
				nb -= 2*g + 1
				run := int(n) - 1
				if run < 0 || run > w-x {
					return fmt.Errorf("codec: ls: run length %d exceeds row", run)
				}
				av := byte(a)
				seg := row[x : x+run]
				for i := range seg {
					seg[i] = av
				}
				x += run
				if x >= w {
					break
				}
				b := int(prev[x])
				// Interrupt sample, predicted from the run value a.
				if pos <= fastEnd {
					acc |= binary.LittleEndian.Uint64(data[pos:]) << nb
					pos += int((63 - nb) >> 3)
					nb |= 56
				} else if nb < 40 {
					for nb <= 56 && pos < len(data) {
						acc |= uint64(data[pos]) << nb
						pos++
						nb += 8
					}
				}
				q := uint(bits.TrailingZeros64(^acc))
				var m uint32
				if q < lsEscapeQ {
					total := q + 1 + k
					if total > nb {
						return errTruncated
					}
					m = uint32(q)<<k | uint32(acc>>(q+1))&km
					acc >>= total
					nb -= total
				} else {
					if lsEscapeQ+1+lsEscBits > nb {
						return errTruncated
					}
					m = uint32(acc>>(lsEscapeQ+1)) & (1<<lsEscBits - 1)
					acc >>= lsEscapeQ + 1 + lsEscBits
					nb -= lsEscapeQ + 1 + lsEscBits
				}
				v := int(int32(m>>1) ^ -int32(m&1))
				bv := byte(a + v)
				row[x] = bv
				msum += m
				c = b
				a = int(bv)
				x++
			}
		}
		k = lsNextK(uint32(w), msum)
	}
	d.pos, d.acc, d.nb = pos, acc, nb
	return nil
}

// lsDecodePlaneNear is the NEAR>0 path: reconstruction scales the coded
// index by 2*NEAR+1 and clamps, exactly as the encoder did.
func lsDecodePlaneNear(d *lsDec, out []byte, w, h, near int) error {
	t := 2*near + 1
	k := uint(lsKDefault)
	data := d.data
	pos, acc, nb := d.pos, d.acc, d.nb

	var msum uint32
	pred := 128
	row := out[:w]
	for x := 0; x < w; x++ {
		// --- inline golomb read ---
		if nb < 40 {
			if pos+8 <= len(data) {
				acc |= binary.LittleEndian.Uint64(data[pos:]) << nb
				pos += int((63 - nb) >> 3)
				nb |= 56
			} else {
				for nb <= 56 && pos < len(data) {
					acc |= uint64(data[pos]) << nb
					pos++
					nb += 8
				}
			}
		}
		q := uint(bits.TrailingZeros64(^acc))
		var m uint32
		if q < lsEscapeQ {
			total := q + 1 + k
			if total > nb {
				return errTruncated
			}
			m = uint32(q)<<k | uint32(acc>>(q+1))&(1<<k-1)
			acc >>= total
			nb -= total
		} else {
			if lsEscapeQ+1+lsEscBits > nb {
				return errTruncated
			}
			m = uint32(acc>>(lsEscapeQ+1)) & (1<<lsEscBits - 1)
			acc >>= lsEscapeQ + 1 + lsEscBits
			nb -= lsEscapeQ + 1 + lsEscBits
		}
		// --- end golomb ---
		v := int(int32(m>>1) ^ -int32(m&1))
		rv := lsClamp255(pred + v*t)
		row[x] = byte(rv)
		msum += m
		pred = rv
	}
	k = lsNextK(uint32(w), msum)

	for y := 1; y < h; y++ {
		row := out[y*w:][:w]
		prev := out[(y-1)*w:][:w]
		msum = 0
		a := int(prev[0])
		c := a
		for x := 0; x < w; x++ {
			b := int(prev[x])
			var pred int
			if a == b && c == b {
				// Run mode: gamma-coded run of `a`, then an interrupt
				// sample predicted from a (unless the run hit row end).
				if nb < 40 {
					if pos+8 <= len(data) {
						acc |= binary.LittleEndian.Uint64(data[pos:]) << nb
						pos += int((63 - nb) >> 3)
						nb |= 56
					} else {
						for nb <= 56 && pos < len(data) {
							acc |= uint64(data[pos]) << nb
							pos++
							nb += 8
						}
					}
				}
				g := uint(bits.TrailingZeros64(^acc))
				if g > lsMaxGamma {
					return fmt.Errorf("codec: ls: corrupt run length")
				}
				if 2*g+1 > nb {
					return errTruncated
				}
				n := uint32(1)<<g | uint32(acc>>(g+1))&(1<<g-1)
				acc >>= 2*g + 1
				nb -= 2*g + 1
				run := int(n) - 1
				if run < 0 || run > w-x {
					return fmt.Errorf("codec: ls: run length %d exceeds row", run)
				}
				av := byte(a)
				seg := row[x : x+run]
				for i := range seg {
					seg[i] = av
				}
				x += run
				if x >= w {
					break
				}
				b = int(prev[x])
				pred = a
			} else {
				mn, mx := a, b
				if mx < mn {
					mn, mx = mx, mn
				}
				pred = a + b - c
				if pred < mn {
					pred = mn
				}
				if pred > mx {
					pred = mx
				}
			}
			// --- inline golomb read ---
			if nb < 40 {
				if pos+8 <= len(data) {
					acc |= binary.LittleEndian.Uint64(data[pos:]) << nb
					pos += int((63 - nb) >> 3)
					nb |= 56
				} else {
					for nb <= 56 && pos < len(data) {
						acc |= uint64(data[pos]) << nb
						pos++
						nb += 8
					}
				}
			}
			q := uint(bits.TrailingZeros64(^acc))
			var m uint32
			if q < lsEscapeQ {
				total := q + 1 + k
				if total > nb {
					return errTruncated
				}
				m = uint32(q)<<k | uint32(acc>>(q+1))&(1<<k-1)
				acc >>= total
				nb -= total
			} else {
				if lsEscapeQ+1+lsEscBits > nb {
					return errTruncated
				}
				m = uint32(acc>>(lsEscapeQ+1)) & (1<<lsEscBits - 1)
				acc >>= lsEscapeQ + 1 + lsEscBits
				nb -= lsEscapeQ + 1 + lsEscBits
			}
			// --- end golomb ---
			v := int(int32(m>>1) ^ -int32(m&1))
			rv := lsClamp255(pred + v*t)
			row[x] = byte(rv)
			msum += m
			c = b
			a = rv
		}
		k = lsNextK(uint32(w), msum)
	}
	d.pos, d.acc, d.nb = pos, acc, nb
	return nil
}

// bitWriter packs bits LSB-first through a 64-bit accumulator, spilling
// 32 bits at a time. Callers keep single writes <= 32 bits, so the
// accumulator never overflows (w.n < 32 between calls).
type bitWriter struct {
	buf []byte
	acc uint64
	n   uint
}

func (w *bitWriter) reset() {
	w.buf = w.buf[:0]
	w.acc, w.n = 0, 0
}

// putBits appends the low n bits of v (n <= 32).
func (w *bitWriter) putBits(v uint64, n uint) {
	w.acc |= v << w.n
	w.n += n
	if w.n >= 32 {
		w.buf = append(w.buf, byte(w.acc), byte(w.acc>>8), byte(w.acc>>16), byte(w.acc>>24))
		w.acc >>= 32
		w.n -= 32
	}
}

// putGolomb emits magnitude m as Golomb-Rice with parameter k: the
// quotient in unary (ones, zero-terminated) then k remainder bits,
// escaping to a raw magnitude for heavy-tail residuals.
func (w *bitWriter) putGolomb(m uint32, k uint) {
	q := uint(m >> k)
	if q < lsEscapeQ {
		w.putBits(uint64(1)<<q-1, q+1)
		w.putBits(uint64(m)&(uint64(1)<<k-1), k)
	} else {
		w.putBits(uint64(1)<<lsEscapeQ-1, lsEscapeQ+1)
		w.putBits(uint64(m), lsEscBits)
	}
}

// putGamma writes n >= 1 in Elias-gamma flavored for this bit order:
// floor(log2 n) in unary (ones, zero-terminated), then the low bits of n.
func (w *bitWriter) putGamma(n uint32) {
	g := uint(bits.Len32(n)) - 1
	w.putBits(uint64(1)<<g-1, g+1)
	w.putBits(uint64(n)&(uint64(1)<<g-1), g)
}

// finish flushes the trailing bits and returns a copy of the payload
// (the internal buffer is reused across frames).
func (w *bitWriter) finish() []byte {
	for w.n > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		if w.n >= 8 {
			w.n -= 8
		} else {
			w.n = 0
		}
	}
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// lsDec is the decoder's bitstream cursor: LSB-first through a 64-bit
// accumulator, refilled 8 bytes at a time. The plane decoder keeps the
// fields in locals and writes them back on return.
type lsDec struct {
	data []byte
	pos  int
	acc  uint64
	nb   uint
}
