package codec

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/frame"
)

// yuvScene converts the standard test scene to YUV420, the format every
// registered codec accepts.
func yuvScene(n, w, h int, seed int64) []*frame.Frame {
	rgb := testScene(n, w, h, seed)
	out := make([]*frame.Frame, n)
	for i, f := range rgb {
		out[i] = f.Convert(frame.YUV420)
	}
	return out
}

// TestRegistryConformance runs every registered codec through the
// contract the registry promises: encode/decode roundtrip at full and
// reduced quality, subrange decode consistency with full decode, and
// byte-identity whenever the codec declares Lossless for the quality.
func TestRegistryConformance(t *testing.T) {
	frames := yuvScene(8, 64, 48, 11)
	for _, id := range Registered() {
		if !id.Valid() {
			t.Errorf("%s: registered codec fails Valid()", id)
		}
		c, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s: Lookup misses a registered codec", id)
		}
		for _, q := range []int{100, 60} {
			data, st, err := EncodeGOP(frames, id, q)
			if err != nil {
				t.Fatalf("%s q%d: encode: %v", id, q, err)
			}
			if st.Bytes != len(data) {
				t.Errorf("%s q%d: Stats.Bytes = %d, want %d", id, q, st.Bytes, len(data))
			}
			hd, err := DecodeHeader(data)
			if err != nil {
				t.Fatalf("%s q%d: header: %v", id, q, err)
			}
			if hd.Codec != id {
				t.Errorf("%s q%d: header tags %q", id, q, hd.Codec)
			}
			dec, _, err := DecodeGOP(data)
			if err != nil {
				t.Fatalf("%s q%d: decode: %v", id, q, err)
			}
			if len(dec) != len(frames) {
				t.Fatalf("%s q%d: decoded %d frames, want %d", id, q, len(dec), len(frames))
			}
			if c.Lossless(q) {
				for i := range frames {
					if !bytes.Equal(frames[i].Data, dec[i].Data) {
						t.Fatalf("%s q%d: Lossless codec not byte-identical at frame %d", id, q, i)
					}
				}
			}
			// Subrange decode must agree with the same frames of a full
			// decode (the registry's DecodeRange contract).
			sub, _, err := DecodeRange(data, 2, 5)
			if err != nil {
				t.Fatalf("%s q%d: subrange: %v", id, q, err)
			}
			for i, f := range sub {
				if !bytes.Equal(f.Data, dec[2+i].Data) {
					t.Fatalf("%s q%d: subrange frame %d differs from full decode", id, q, i)
				}
			}
		}
	}
}

// TestUnknownCodecTag covers both container generations: a v1 byte
// outside the legacy table and a v2 name with no registered codec must
// both fail with ErrUnknownCodec, as must encoding through an
// unregistered ID.
func TestUnknownCodecTag(t *testing.T) {
	frames := yuvScene(2, 16, 16, 3)
	if _, _, err := EncodeGOP(frames, ID("nope"), 80); !errors.Is(err, ErrUnknownCodec) {
		t.Errorf("encode unknown codec: err = %v, want ErrUnknownCodec", err)
	}

	// v1 container with an out-of-table codec byte.
	raw, _, err := EncodeGOP(frames, Raw, 100)
	if err != nil {
		t.Fatal(err)
	}
	if raw[4] != containerV1 {
		t.Fatalf("raw container version = %d, want v1", raw[4])
	}
	bad := append([]byte(nil), raw...)
	bad[5] = 9
	if _, err := DecodeHeader(bad); !errors.Is(err, ErrUnknownCodec) {
		t.Errorf("v1 unknown byte: err = %v, want ErrUnknownCodec", err)
	}

	// v2 container naming a codec nobody registered.
	ls, _, err := EncodeGOP(frames, LS, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ls[4] != containerV2 {
		t.Fatalf("ls container version = %d, want v2", ls[4])
	}
	bad = append([]byte(nil), ls...)
	if bad[5] != byte(len(LS)) || string(bad[6:6+len(LS)]) != string(LS) {
		t.Fatalf("unexpected v2 name layout")
	}
	bad[6], bad[7] = 'z', 'z'
	if _, err := DecodeHeader(bad); !errors.Is(err, ErrUnknownCodec) {
		t.Errorf("v2 unknown name header: err = %v, want ErrUnknownCodec", err)
	}
	if _, _, err := DecodeGOP(bad); !errors.Is(err, ErrUnknownCodec) {
		t.Errorf("v2 unknown name decode: err = %v, want ErrUnknownCodec", err)
	}
}

// TestV1ContainerBackwardCompat pins the bytes pre-registry stores wrote:
// the three original codecs still emit the v1 single-byte tag layout
// (byte-identical containers), and a hand-assembled v1 container decodes.
func TestV1ContainerBackwardCompat(t *testing.T) {
	frames := yuvScene(3, 32, 16, 5)
	for _, id := range []ID{Raw, H264, HEVC} {
		data, _, err := EncodeGOP(frames, id, 90)
		if err != nil {
			t.Fatal(err)
		}
		if data[4] != containerV1 {
			t.Errorf("%s: container version = %d, want v1 (pre-registry layout)", id, data[4])
		}
		if data[5] != legacyCodecByte[id] {
			t.Errorf("%s: legacy byte = %d, want %d", id, data[5], legacyCodecByte[id])
		}
	}

	// A v1 raw container assembled by hand (the untagged on-disk format
	// every pre-registry GOP has) must decode byte-identically.
	payloads := make([][]byte, len(frames))
	types := make([]FrameType, len(frames))
	for i, f := range frames {
		payloads[i] = f.Data
		types[i] = IFrame
	}
	data := writeContainer(Raw, frames[0].Format, 100, frames[0].Width, frames[0].Height, types, payloads)
	dec, hd, err := DecodeGOP(data)
	if err != nil {
		t.Fatal(err)
	}
	if hd.Codec != Raw {
		t.Fatalf("decoded codec = %q, want raw", hd.Codec)
	}
	for i := range frames {
		if !bytes.Equal(frames[i].Data, dec[i].Data) {
			t.Fatalf("v1 container frame %d not byte-identical", i)
		}
	}
}

// TestConcurrentEncodersShareFrames encodes the same frame slice from
// many goroutines (each with its own Encoder, as the writer pool does)
// and checks every output is byte-identical. Run under -race this pins
// the no-input-mutation guarantee, including ls's NEAR=0 path and its
// internal per-frame fan-out.
func TestConcurrentEncodersShareFrames(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // exercise the parallel paths even on 1-core hosts
	defer runtime.GOMAXPROCS(prev)

	frames := yuvScene(8, 64, 48, 17)
	for _, id := range []ID{Raw, LS, H264} {
		const workers = 4
		outs := make([][]byte, workers)
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				enc := NewEncoder()
				for rep := 0; rep < 3; rep++ {
					data, _, err := enc.EncodeGOP(frames, id, 100)
					if err != nil {
						errs <- fmt.Errorf("%s worker %d: %w", id, w, err)
						return
					}
					outs[w] = data
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		for w := 1; w < workers; w++ {
			if !bytes.Equal(outs[0], outs[w]) {
				t.Fatalf("%s: concurrent encoders produced different bytes", id)
			}
		}
	}
}

// TestRegisteredOrderAndNames pins the registry listing helpers the CLI
// surfaces lean on.
func TestRegisteredOrderAndNames(t *testing.T) {
	ids := Registered()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("Registered() not sorted: %v", ids)
		}
	}
	names := Names()
	for _, id := range ids {
		if !containsName(names, string(id)) {
			t.Errorf("Names() = %q missing %q", names, id)
		}
	}
	if !LS.Compressed() || Raw.Compressed() {
		t.Errorf("Compressed: ls=%v raw=%v, want true/false", LS.Compressed(), Raw.Compressed())
	}
}

func containsName(pipeJoined, name string) bool {
	start := 0
	for i := 0; i <= len(pipeJoined); i++ {
		if i == len(pipeJoined) || pipeJoined[i] == '|' {
			if pipeJoined[start:i] == name {
				return true
			}
			start = i + 1
		}
	}
	return false
}
