package codec

// Motion estimation for the hevc profile: per-block diamond search over the
// previous reconstructed luma plane. The h264 profile uses zero-motion
// prediction (searchRadius 0), mirroring the compute/ratio gap between the
// real codecs that the paper's cost model calibrates against.

// mv is a per-block motion vector in luma pixels.
type mv struct {
	dx, dy int
}

// estimateMotion returns one motion vector per block of the luma plane,
// reusing dst's backing array when it is large enough.
func estimateMotion(dst []mv, cur, ref plane, prof profile) []mv {
	bs := prof.blockSize
	bw := (cur.w + bs - 1) / bs
	bh := (cur.h + bs - 1) / bs
	n := bw * bh
	if cap(dst) < n {
		dst = make([]mv, n)
	}
	dst = dst[:n]
	if prof.searchRadius == 0 {
		clear(dst) // zero-motion profile
		return dst
	}
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			dst[by*bw+bx] = diamondSearch(cur, ref, bx*bs, by*bs, bs, prof.searchRadius)
		}
	}
	return dst
}

// diamondSearch finds a low-SAD motion vector for the block with top-left
// (x0, y0) using a coarse-to-fine diamond pattern bounded by radius.
func diamondSearch(cur, ref plane, x0, y0, bs, radius int) mv {
	best := mv{0, 0}
	bestSAD := blockSAD(cur, ref, x0, y0, bs, 0, 0, 1<<30)
	if bestSAD == 0 {
		return best
	}
	for step := radius; step >= 1; step /= 2 {
		improved := true
		for improved {
			improved = false
			for _, d := range [4]mv{{step, 0}, {-step, 0}, {0, step}, {0, -step}} {
				cand := mv{best.dx + d.dx, best.dy + d.dy}
				if cand.dx < -radius || cand.dx > radius || cand.dy < -radius || cand.dy > radius {
					continue
				}
				sad := blockSAD(cur, ref, x0, y0, bs, cand.dx, cand.dy, bestSAD)
				if sad < bestSAD {
					bestSAD, best = sad, cand
					improved = true
				}
			}
			if bestSAD == 0 {
				return best
			}
		}
	}
	return best
}

// blockSAD computes the sum of absolute differences between the current
// block and the reference block displaced by (dx, dy), early-exiting once
// the running sum exceeds limit.
func blockSAD(cur, ref plane, x0, y0, bs, dx, dy, limit int) int {
	sum := 0
	for y := y0; y < y0+bs && y < cur.h; y++ {
		row := y * cur.w
		ry := y + dy
		if ry < 0 {
			ry = 0
		}
		if ry >= ref.h {
			ry = ref.h - 1
		}
		rrow := ry * ref.w
		for x := x0; x < x0+bs && x < cur.w; x++ {
			rx := x + dx
			if rx < 0 {
				rx = 0
			}
			if rx >= ref.w {
				rx = ref.w - 1
			}
			d := int(cur.pix[row+x]) - int(ref.pix[rrow+rx])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum >= limit {
			return sum
		}
	}
	return sum
}

// appendMVs serializes motion vectors as offset bytes (mv+128) appended to
// dst. The stream is later deflate-compressed with the residuals, so runs
// of zero vectors cost almost nothing.
func appendMVs(dst []byte, mvs []mv, prof profile) []byte {
	if prof.searchRadius == 0 {
		return dst // zero-motion profiles carry no MV table
	}
	for _, m := range mvs {
		dst = append(dst, byte(m.dx+128), byte(m.dy+128))
	}
	return dst
}

// decodeMVs reads the MV table for a plane of the given luma dimensions,
// returning the vectors and the number of bytes consumed.
func decodeMVs(stream []byte, lumaW, lumaH int, prof profile) ([]mv, int, error) {
	bs := prof.blockSize
	bw := (lumaW + bs - 1) / bs
	bh := (lumaH + bs - 1) / bs
	n := bw * bh
	if prof.searchRadius == 0 {
		return make([]mv, n), 0, nil
	}
	if len(stream) < n*2 {
		return nil, 0, errTruncated
	}
	mvs := make([]mv, n)
	for i := 0; i < n; i++ {
		mvs[i] = mv{int(stream[i*2]) - 128, int(stream[i*2+1]) - 128}
	}
	return mvs, n * 2, nil
}
