package codec

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/frame"
)

// lsContent fills n frames of the given format with one of several
// content classes chosen to stress distinct codec paths: "noise" defeats
// the run mode entirely, "flat" is all run mode, "gradient" is all
// regular mode with small residuals, and "mixed" alternates flat bands
// with noisy bands so run interrupts and mode switches fire constantly.
func lsContent(t *testing.T, class string, pf frame.PixelFormat, n, w, h int, seed int64) []*frame.Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	frames := make([]*frame.Frame, n)
	for i := 0; i < n; i++ {
		f := frame.New(w, h, pf)
		switch class {
		case "noise":
			rng.Read(f.Data)
		case "flat":
			v := byte(rng.Intn(256))
			for j := range f.Data {
				f.Data[j] = v
			}
		case "gradient":
			for j := range f.Data {
				f.Data[j] = byte((j + i*3) / 7)
			}
		case "mixed":
			for j := range f.Data {
				if (j/97)%2 == 0 {
					f.Data[j] = 200
				} else {
					f.Data[j] = byte(rng.Intn(256))
				}
			}
		default:
			t.Fatalf("unknown content class %q", class)
		}
		frames[i] = f
	}
	return frames
}

// TestLSLosslessBitExact pins the codec's core promise: at any quality
// where Lossless reports true, decode returns the input bytes exactly,
// across every pixel format and content class.
func TestLSLosslessBitExact(t *testing.T) {
	c, ok := Lookup(LS)
	if !ok {
		t.Fatal("ls not registered")
	}
	if !c.Lossless(100) {
		t.Fatal("ls must be lossless at q100")
	}
	formats := []frame.PixelFormat{frame.Gray, frame.RGB, frame.YUV420, frame.YUV422}
	for _, pf := range formats {
		for _, class := range []string{"noise", "flat", "gradient", "mixed"} {
			frames := lsContent(t, class, pf, 4, 36, 28, int64(pf)*100+int64(len(class)))
			data, _, err := EncodeGOP(frames, LS, 100)
			if err != nil {
				t.Fatalf("%v/%s: encode: %v", pf, class, err)
			}
			dec, _, err := DecodeGOP(data)
			if err != nil {
				t.Fatalf("%v/%s: decode: %v", pf, class, err)
			}
			for i := range frames {
				if !bytes.Equal(frames[i].Data, dec[i].Data) {
					t.Fatalf("%v/%s: frame %d not byte-identical", pf, class, i)
				}
			}
		}
	}
}

// TestLSNearErrorBound checks the near-lossless contract: every decoded
// sample is within lsNear(quality) of the input, for qualities spanning
// the dial.
func TestLSNearErrorBound(t *testing.T) {
	for _, q := range []int{95, 80, 50, 20} {
		near := lsNear(q)
		if near <= 0 {
			t.Fatalf("q%d: expected a positive error bound, got %d", q, near)
		}
		for _, class := range []string{"noise", "gradient", "mixed"} {
			frames := lsContent(t, class, frame.YUV420, 3, 48, 32, int64(q))
			data, _, err := EncodeGOP(frames, LS, q)
			if err != nil {
				t.Fatalf("q%d/%s: encode: %v", q, class, err)
			}
			dec, _, err := DecodeGOP(data)
			if err != nil {
				t.Fatalf("q%d/%s: decode: %v", q, class, err)
			}
			for i := range frames {
				for j := range frames[i].Data {
					d := int(frames[i].Data[j]) - int(dec[i].Data[j])
					if d < 0 {
						d = -d
					}
					if d > near {
						t.Fatalf("q%d/%s: frame %d byte %d off by %d > NEAR=%d",
							q, class, i, j, d, near)
					}
				}
			}
		}
	}
}

// TestLSSubrangeDecode checks DecodeRange against a full decode: ls
// frames are independently coded, so any subrange must match the
// corresponding full-decode frames exactly. GOMAXPROCS is raised so the
// per-frame decode fan-out runs with multiple workers even on 1-core
// hosts — parallel decode must be byte-identical to serial.
func TestLSSubrangeDecode(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	frames := lsContent(t, "mixed", frame.YUV420, 8, 40, 24, 7)
	for _, q := range []int{100, 70} {
		data, _, err := EncodeGOP(frames, LS, q)
		if err != nil {
			t.Fatal(err)
		}
		full, _, err := DecodeGOP(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range [][2]int{{0, 1}, {3, 6}, {7, 8}, {0, 8}} {
			sub, _, err := DecodeRange(data, r[0], r[1])
			if err != nil {
				t.Fatalf("q%d [%d,%d): %v", q, r[0], r[1], err)
			}
			if len(sub) != r[1]-r[0] {
				t.Fatalf("q%d [%d,%d): got %d frames", q, r[0], r[1], len(sub))
			}
			for i, f := range sub {
				if !bytes.Equal(f.Data, full[r[0]+i].Data) {
					t.Fatalf("q%d [%d,%d): frame %d differs from full decode", q, r[0], r[1], i)
				}
			}
		}
	}
}

// TestLSCorruptStreams feeds the decoder truncated and bit-flipped
// containers: it must return an error or a valid frame set, never panic
// or read out of bounds. (Run with -race for the latter.)
func TestLSCorruptStreams(t *testing.T) {
	frames := lsContent(t, "mixed", frame.YUV420, 4, 32, 24, 13)
	data, _, err := EncodeGOP(frames, LS, 100)
	if err != nil {
		t.Fatal(err)
	}

	// Truncations at every length must not panic; most should error.
	for cut := len(data) - 1; cut >= 0; cut -= 17 {
		_, _, _ = DecodeGOP(data[:cut])
	}
	if _, _, err := DecodeGOP(data[:len(data)/2]); err == nil {
		t.Error("half-truncated container decoded without error")
	}

	// Single bit flips across the payload region must not panic.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 64; trial++ {
		bad := append([]byte(nil), data...)
		pos := 32 + rng.Intn(len(bad)-32)
		bad[pos] ^= 1 << uint(rng.Intn(8))
		_, _, _ = DecodeGOP(bad)
	}
}

// TestLSRatioBeatsRawOnStructuredContent sanity-checks compression: on
// gradient and flat content the ls stream must be much smaller than raw;
// on pure noise it must not blow up beyond a small constant overhead.
func TestLSRatioBeatsRawOnStructuredContent(t *testing.T) {
	for _, tc := range []struct {
		class   string
		maxFrac float64 // encoded bytes / raw bytes upper bound
	}{
		{"flat", 0.10},
		{"gradient", 0.40},
		{"noise", 1.20},
	} {
		frames := lsContent(t, tc.class, frame.YUV420, 4, 64, 48, 31)
		raw := 0
		for _, f := range frames {
			raw += len(f.Data)
		}
		data, _, err := EncodeGOP(frames, LS, 100)
		if err != nil {
			t.Fatal(err)
		}
		if frac := float64(len(data)) / float64(raw); frac > tc.maxFrac {
			t.Errorf("%s: encoded %.2fx of raw, want <= %.2fx", tc.class, frac, tc.maxFrac)
		}
	}
}
