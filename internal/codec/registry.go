package codec

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/frame"
)

// ErrUnknownCodec reports a codec name (or on-disk container tag) that no
// registered codec claims. Callers match it with errors.Is to distinguish
// "this build does not know the codec" from data corruption.
var ErrUnknownCodec = errors.New("codec: unknown codec")

// Codec is one registered compression implementation. The paper treats the
// codec as a pluggable physical parameter (its prototype delegates to
// FFmpeg/NVENC); this registry is the reproduction's version of that seam:
// the store, planner, wire protocol, and deferred-compression tier all
// dispatch through it, so adding a codec is one Register call away from
// being a first-class physical format (including, eventually, external or
// hardware encoders).
//
// Implementations must be stateless values — per-GOP scratch lives in the
// *Encoder passed to EncodeGOP (see Encoder.Scratch), which is the only
// mutable state and is never shared across goroutines.
type Codec interface {
	// Name returns the codec's ID (the physical parameter c, the wire
	// protocol's codec= value, and the container tag).
	Name() ID
	// Lossless reports whether encoding at the given quality round-trips
	// input frames bit-exactly (same pixel format, identical bytes).
	Lossless(quality int) bool
	// EncodeGOP encodes frames (validated: non-empty, uniform dims and
	// format, quality clamped to [1,100]) into a GOP container.
	EncodeGOP(e *Encoder, frames []*frame.Frame, quality int) ([]byte, Stats, error)
	// DecodeRange decodes frames [from, to) of a container this codec
	// produced; hd is its already-parsed header and from/to are validated.
	DecodeRange(data []byte, hd Header, from, to int) ([]*frame.Frame, error)
}

var (
	regMu    sync.RWMutex
	registry = map[ID]Codec{}
)

// Register adds a codec to the registry; it panics on a duplicate name
// (registration is an init-time, programmer-error path). After Register,
// the ID validates everywhere — resolve, wire protocol, container tags —
// with no switch to update.
func Register(c Codec) {
	id := c.Name()
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[id]; dup {
		panic("codec: duplicate registration of " + string(id))
	}
	registry[id] = c
}

// Lookup returns the registered codec with the given name.
func Lookup(id ID) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[id]
	return c, ok
}

// Registered lists every registered codec ID in sorted order (stable for
// help strings, calibration sweeps, and tests).
func Registered() []ID {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]ID, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Names returns the registered codec names joined for flag help text,
// e.g. "h264|hevc|ls|raw".
func Names() string {
	ids := Registered()
	s := ""
	for i, id := range ids {
		if i > 0 {
			s += "|"
		}
		s += string(id)
	}
	return s
}

// Valid reports whether the codec is registered in this build.
func (id ID) Valid() bool {
	_, ok := Lookup(id)
	return ok
}

// Compressed reports whether the codec produces a compressed bitstream —
// i.e. reads requesting it return GOP containers rather than raw frames.
// Derived from the registry (everything but raw), not a hard-coded list,
// so a newly registered codec is never misclassified by a stale switch.
func (id ID) Compressed() bool { return id != Raw && id.Valid() }
