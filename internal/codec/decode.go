package codec

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"

	"repro/internal/frame"
)

var errTruncated = errors.New("codec: truncated residual stream")

// residReader consumes the zigzag-coded residual stream.
type residReader struct {
	data []byte
	pos  int
}

func (r *residReader) next() (int, error) {
	if r.pos >= len(r.data) {
		return 0, errTruncated
	}
	b := r.data[r.pos]
	r.pos++
	var z uint32
	if b < 255 {
		z = uint32(b)
	} else {
		if r.pos+2 > len(r.data) {
			return 0, errTruncated
		}
		z = uint32(r.data[r.pos]) | uint32(r.data[r.pos+1])<<8
		r.pos += 2
	}
	return int(z>>1) ^ -int(z&1), nil
}

// DecodeRange reconstructs frames [from, to). Every frame from the GOP
// start through to-1 must be decoded because P-frames chain; only the
// requested window is materialized and returned. This asymmetry — paying
// for Δ dependencies you do not return — is exactly the look-back cost the
// planner's c_l models.
func (c lossyCodec) DecodeRange(data []byte, hd Header, from, to int) ([]*frame.Frame, error) {
	prof := c.prof
	q := quantizer(hd.Quality)
	payloads, err := framePayloads(data, hd)
	if err != nil {
		return nil, err
	}
	out := make([]*frame.Frame, 0, to-from)
	var recon [3]plane
	for i := 0; i < to; i++ {
		zr := flate.NewReader(bytes.NewReader(payloads[i]))
		stream, err := io.ReadAll(zr)
		zr.Close()
		if err != nil {
			return nil, fmt.Errorf("codec: frame %d entropy decode: %w", i, err)
		}
		rd := &residReader{data: stream}
		if hd.FrameTypes[i] == IFrame {
			next := [3]plane{}
			for p, dim := range planeDims(hd.Width, hd.Height) {
				next[p], err = decodeIntraPlane(rd, dim.w, dim.h, q, prof.intra2D)
				if err != nil {
					return nil, fmt.Errorf("codec: frame %d plane %d: %w", i, p, err)
				}
			}
			recon = next
		} else {
			if i == 0 {
				return nil, fmt.Errorf("codec: GOP begins with P-frame")
			}
			mvs, n, err := decodeMVs(stream, hd.Width, hd.Height, prof)
			if err != nil {
				return nil, fmt.Errorf("codec: frame %d MV table: %w", i, err)
			}
			rd.pos = n
			next := [3]plane{}
			for p, dim := range planeDims(hd.Width, hd.Height) {
				bs, scale := prof.blockSize, 1
				if p > 0 {
					bs, scale = bs/2, 2
				}
				next[p], err = decodeInterPlane(rd, recon[p], mvs, dim.w, dim.h, bs, scale, q)
				if err != nil {
					return nil, fmt.Errorf("codec: frame %d plane %d: %w", i, p, err)
				}
			}
			recon = next
		}
		if i >= from {
			out = append(out, assembleYUV420(hd.Width, hd.Height, recon))
		}
	}
	return out, nil
}

// planeDims returns the Y, U, V plane dimensions for a YUV420 frame.
func planeDims(w, h int) [3]struct{ w, h int } {
	return [3]struct{ w, h int }{{w, h}, {w / 2, h / 2}, {w / 2, h / 2}}
}

func decodeIntraPlane(rd *residReader, w, h, q int, intra2D bool) (plane, error) {
	rec := plane{w, h, make([]byte, w*h)}
	for y := 0; y < h; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			qr, err := rd.next()
			if err != nil {
				return rec, err
			}
			pred := intraPredict(rec, x, y, intra2D)
			rec.pix[row+x] = clampU8(pred + qr*q)
		}
	}
	return rec, nil
}

func decodeInterPlane(rd *residReader, ref plane, mvs []mv, w, h, bs, scale, q int) (plane, error) {
	rec := plane{w, h, make([]byte, w*h)}
	bw := (w + bs - 1) / bs
	for y := 0; y < h; y++ {
		row := y * w
		by := y / bs
		for x := 0; x < w; x++ {
			qr, err := rd.next()
			if err != nil {
				return rec, err
			}
			m := mvs[by*bw+x/bs]
			pred := refSample(ref, x+m.dx/scale, y+m.dy/scale)
			rec.pix[row+x] = clampU8(pred + qr*q)
		}
	}
	return rec, nil
}

func assembleYUV420(w, h int, planes [3]plane) *frame.Frame {
	f := frame.New(w, h, frame.YUV420)
	n := copy(f.Data, planes[0].pix)
	n += copy(f.Data[n:], planes[1].pix)
	copy(f.Data[n:], planes[2].pix)
	return f
}
