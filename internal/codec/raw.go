package codec

import (
	"fmt"

	"repro/internal/frame"
)

// rawCodec stores frames losslessly in their original pixel format.
// Raw GOPs have no inter-frame dependencies: every frame is independently
// decodable, so all frames are typed IFrame and look-back cost is zero.
type rawCodec struct{}

func init() { Register(rawCodec{}) }

func (rawCodec) Name() ID { return Raw }

func (rawCodec) Lossless(quality int) bool { return true }

func (rawCodec) EncodeGOP(e *Encoder, frames []*frame.Frame, quality int) ([]byte, Stats, error) {
	f0 := frames[0]
	types := make([]FrameType, len(frames))
	payloads := make([][]byte, len(frames))
	for i, f := range frames {
		types[i] = IFrame
		payloads[i] = f.Data
	}
	data := writeContainer(Raw, f0.Format, 100, f0.Width, f0.Height, types, payloads)
	st := Stats{Bytes: len(data), IFrames: len(frames)}
	st.BitsPerPixel = float64(len(data)) * 8 / float64(f0.Width*f0.Height*len(frames))
	return data, st, nil
}

func (rawCodec) DecodeRange(data []byte, hd Header, from, to int) ([]*frame.Frame, error) {
	payloads, err := framePayloads(data, hd)
	if err != nil {
		return nil, err
	}
	want := hd.PixFmt.Size(hd.Width, hd.Height)
	out := make([]*frame.Frame, 0, to-from)
	for i := from; i < to; i++ {
		if len(payloads[i]) != want {
			return nil, fmt.Errorf("codec: raw frame %d payload %d bytes, want %d", i, len(payloads[i]), want)
		}
		f := &frame.Frame{Width: hd.Width, Height: hd.Height, Format: hd.PixFmt, Data: make([]byte, want)}
		copy(f.Data, payloads[i])
		out = append(out, f)
	}
	return out, nil
}
