// Package codec implements the video compression substrate for VSS: a
// GOP-structured predictive codec written from scratch in pure Go.
//
// The paper's prototype delegates compression to FFmpeg/NVENC H.264 and
// HEVC encoders. This reproduction substitutes two profiles of a real (if
// simplified) codec that preserve the properties VSS's design depends on:
//
//   - GOPs are independently decodable: every GOP starts with an I-frame
//     and takes no references outside the GOP.
//   - Frames within a GOP form a dependency chain: P-frames reference the
//     previous reconstructed frame, so decoding frame k requires decoding
//     frames 0..k-1 of the GOP. This is what makes the paper's look-back
//     cost c_l real.
//   - Compression is lossy with a quality dial (quantization step), so the
//     PSNR-based quality model operates on genuine distortion.
//   - The two profiles trade compute for ratio the way H.264 and HEVC do:
//     "h264" uses 8x8 blocks, left-neighbor intra prediction, and
//     zero-motion inter prediction; "hevc" uses 16x16 blocks, left+top
//     intra prediction, and diamond motion search, producing smaller
//     bitstreams at higher encode cost.
//
// Pixel data is coded in YUV420 (as real codecs do); callers convert to and
// from their preferred formats with internal/frame. The "raw" codec stores
// frames losslessly in their original pixel format.
package codec

import (
	"encoding/binary"
	"fmt"

	"repro/internal/frame"
)

// ID names a compression codec (the physical parameter c in the VSS API).
type ID string

// Built-in codecs, registered in this package's init functions. The names
// intentionally match the paper's usage; the implementations are the
// from-scratch profiles described in the package comment, plus "ls" — the
// fast JPEG-LS-style near-lossless codec (see ls.go). Validity is a
// registry question (see registry.go), not a fixed list: external packages
// may Register additional codecs.
const (
	Raw  ID = "raw"
	H264 ID = "h264"
	HEVC ID = "hevc"
	LS   ID = "ls"
)

// DefaultQuality is the quality preset used when a write or read does not
// specify one. Quality ranges over [1, 100]; 100 is the finest quantizer.
const DefaultQuality = 80

// profile captures the per-codec coding parameters of the predictive
// (lossy) profiles. Each registered lossyCodec instance carries its own
// profile, so profile selection is registry-driven rather than a map keyed
// by a closed ID set.
type profile struct {
	blockSize    int  // inter-prediction block size
	searchRadius int  // motion search radius in pixels (0 = zero-MV only)
	intra2D      bool // average left+top intra prediction (vs left only)
	flateLevel   int  // entropy-coding effort
}

// quantizer maps the quality preset to the uniform quantization step.
// Quality 100 -> Q=1 (lossless residuals), quality 1 -> Q=26.
func quantizer(quality int) int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	return 1 + (100-quality)/4
}

// ExpectedMSE returns the analytic distortion of encoding at a quality
// preset: uniform quantization with step Q has error uniform on
// [-Q/2, Q/2], hence MSE ~= Q^2/12. For this codec the estimate tracks
// measured PSNR within ~0.5 dB across the quality range, so it plays the
// role of the paper's vbench-seeded bitrate->PSNR table; VSS still
// refines its estimator by periodically sampling exact PSNR.
func ExpectedMSE(quality int) float64 {
	q := float64(quantizer(quality))
	if q <= 1 {
		return 0 // residuals are stored exactly
	}
	return q * q / 12
}

// FrameType distinguishes independently decodable I-frames from P-frames
// that depend on their predecessor, the distinction the paper's look-back
// cost model draws between sets A (independent) and Δ−A (dependent).
type FrameType uint8

const (
	// IFrame is intra-coded: decodable with no reference to other frames.
	IFrame FrameType = iota
	// PFrame is inter-coded against the previous frame in the GOP.
	PFrame
)

func (t FrameType) String() string {
	if t == IFrame {
		return "I"
	}
	return "P"
}

// Header describes an encoded GOP without decoding its payload.
type Header struct {
	Codec      ID
	Width      int
	Height     int
	PixFmt     frame.PixelFormat // payload pixel format (yuv420 for lossy codecs)
	Quality    int
	FrameCount int
	FrameTypes []FrameType

	// tableOff is the byte offset of the frame table within the container
	// (version-dependent: v2 headers carry a variable-length codec name).
	// Set by DecodeHeader; framePayloads relies on it.
	tableOff int
}

// Stats summarizes an encode for the quality/cost models.
type Stats struct {
	Bytes        int     // encoded size including container framing
	BitsPerPixel float64 // mean bits per pixel (the paper's MBPP)
	IFrames      int
	PFrames      int
}

// Container versions. v1 tags the codec with a single byte from the fixed
// legacy table below; every GOP written before the registry existed is v1,
// and the three original codecs still write v1 so their bytes are
// identical to pre-registry builds. v2 tags the codec by name (one length
// byte + the name), so registered codecs need no entry in any table —
// that is what makes per-GOP codec tags open-ended.
const (
	gopMagic      = "VGOP"
	containerV1   = 1
	containerV2   = 2
	maxCodecName  = 32      // v2 name length bound (sanity, not a format limit)
	maxFrameCount = 1 << 20 // implausibility bound on the header frame count
)

// legacyCodecByte is the closed v1 tag table. Frozen: new codecs get v2
// name tags instead of new bytes.
var legacyCodecByte = map[ID]byte{Raw: 0, H264: 1, HEVC: 2}
var legacyCodecFromByte = map[byte]ID{0: Raw, 1: H264, 2: HEVC}

// EncodeGOP encodes a contiguous run of frames as one independently
// decodable GOP. All frames must share dimensions; lossy codecs convert
// input to YUV420 internally. quality is clamped to [1,100]; pass
// DefaultQuality for the system default. Raw GOPs ignore quality.
//
// Each call allocates fresh encoder scratch; loops that encode many GOPs
// (the ingest pipeline, transcoding reads) should hold an Encoder and call
// its EncodeGOP method instead.
func EncodeGOP(frames []*frame.Frame, codec ID, quality int) ([]byte, Stats, error) {
	return new(Encoder).EncodeGOP(frames, codec, quality)
}

// DecodeHeader parses only the container header. It is cheap: the read
// planner uses it to learn frame types and dimensions without paying
// decode cost. Unknown codec tags (a v1 byte outside the legacy table, or
// a v2 name with no registered codec) fail with ErrUnknownCodec.
func DecodeHeader(data []byte) (Header, error) {
	var hd Header
	if len(data) < 6 || string(data[:4]) != gopMagic {
		return hd, fmt.Errorf("codec: bad GOP magic")
	}
	var off int
	switch data[4] {
	case containerV1:
		if len(data) < 20 {
			return hd, fmt.Errorf("codec: truncated v1 header")
		}
		id, ok := legacyCodecFromByte[data[5]]
		if !ok {
			return hd, fmt.Errorf("codec: codec byte %d: %w", data[5], ErrUnknownCodec)
		}
		hd.Codec = id
		off = 6
	case containerV2:
		n := int(data[5])
		if n == 0 || n > maxCodecName || len(data) < 6+n+14 {
			return hd, fmt.Errorf("codec: bad v2 codec tag")
		}
		hd.Codec = ID(data[6 : 6+n])
		if !hd.Codec.Valid() {
			return hd, fmt.Errorf("codec: codec %q: %w", hd.Codec, ErrUnknownCodec)
		}
		off = 6 + n
	default:
		return hd, fmt.Errorf("codec: unsupported container version %d", data[4])
	}
	hd.PixFmt = frame.PixelFormat(data[off])
	hd.Quality = int(data[off+1])
	hd.Width = int(binary.LittleEndian.Uint32(data[off+2 : off+6]))
	hd.Height = int(binary.LittleEndian.Uint32(data[off+6 : off+10]))
	hd.FrameCount = int(binary.LittleEndian.Uint32(data[off+10 : off+14]))
	if hd.FrameCount < 0 || hd.FrameCount > maxFrameCount {
		return hd, fmt.Errorf("codec: implausible frame count %d", hd.FrameCount)
	}
	off += 14
	hd.tableOff = off
	// Walk the frame table to collect types without touching payloads.
	hd.FrameTypes = make([]FrameType, 0, hd.FrameCount)
	for i := 0; i < hd.FrameCount; i++ {
		if off+5 > len(data) {
			return hd, fmt.Errorf("codec: truncated frame table at frame %d", i)
		}
		hd.FrameTypes = append(hd.FrameTypes, FrameType(data[off]))
		n := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
		off += 5 + n
		if off > len(data) {
			return hd, fmt.Errorf("codec: truncated frame payload at frame %d", i)
		}
	}
	return hd, nil
}

// DecodeGOP decodes every frame in the GOP.
func DecodeGOP(data []byte) ([]*frame.Frame, Header, error) {
	return DecodeRange(data, 0, -1)
}

// DecodeRange decodes frames [from, to) of the GOP (to = -1 means to the
// end). Because P-frames chain, the decoder must reconstruct every frame
// from the GOP start up to `to` even when from > 0 — the look-back cost the
// paper models. The returned slice contains only frames in [from, to).
func DecodeRange(data []byte, from, to int) ([]*frame.Frame, Header, error) {
	hd, err := DecodeHeader(data)
	if err != nil {
		return nil, hd, err
	}
	if to < 0 || to > hd.FrameCount {
		to = hd.FrameCount
	}
	if from < 0 || from > to {
		return nil, hd, fmt.Errorf("codec: bad decode range [%d,%d) of %d", from, to, hd.FrameCount)
	}
	c, ok := Lookup(hd.Codec)
	if !ok {
		return nil, hd, fmt.Errorf("codec: %q: %w", hd.Codec, ErrUnknownCodec)
	}
	frames, err := c.DecodeRange(data, hd, from, to)
	return frames, hd, err
}

// writeContainer assembles the GOP container: header then (type, length,
// payload) per frame. Codecs with a legacy v1 byte write the v1 layout —
// byte-identical to pre-registry builds, so existing stored GOPs and new
// ones stay interchangeable — and everything else gets a v2 name tag.
func writeContainer(codec ID, pixfmt frame.PixelFormat, quality, w, h int, types []FrameType, payloads [][]byte) []byte {
	legacy, isLegacy := legacyCodecByte[codec]
	hdrLen := 20
	if !isLegacy {
		hdrLen = 6 + len(codec) + 14
	}
	total := hdrLen
	for _, p := range payloads {
		total += 5 + len(p)
	}
	out := make([]byte, 0, total)
	out = append(out, gopMagic...)
	if isLegacy {
		out = append(out, containerV1, legacy)
	} else {
		out = append(out, containerV2, byte(len(codec)))
		out = append(out, codec...)
	}
	out = append(out, byte(pixfmt), byte(quality))
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(w))
	out = append(out, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(h))
	out = append(out, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(payloads)))
	out = append(out, b4[:]...)
	for i, p := range payloads {
		out = append(out, byte(types[i]))
		binary.LittleEndian.PutUint32(b4[:], uint32(len(p)))
		out = append(out, b4[:]...)
		out = append(out, p...)
	}
	return out
}

// framePayloads iterates the container's frame table, returning per-frame
// payload slices (views into data). hd must come from DecodeHeader (its
// tableOff locates the table past the version-dependent header).
func framePayloads(data []byte, hd Header) ([][]byte, error) {
	off := hd.tableOff
	if off <= 0 {
		return nil, fmt.Errorf("codec: header missing table offset")
	}
	payloads := make([][]byte, 0, hd.FrameCount)
	for i := 0; i < hd.FrameCount; i++ {
		if off+5 > len(data) {
			return nil, fmt.Errorf("codec: truncated frame table")
		}
		n := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
		if off+5+n > len(data) {
			return nil, fmt.Errorf("codec: truncated frame payload")
		}
		payloads = append(payloads, data[off+5:off+5+n])
		off += 5 + n
	}
	return payloads, nil
}
