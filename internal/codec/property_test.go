package codec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/frame"
	"repro/internal/quality"
)

// TestGOPIndependence verifies the property VSS's whole design rests on:
// a GOP decodes identically regardless of what was encoded before or
// after it, because no data dependencies cross GOP boundaries.
func TestGOPIndependence(t *testing.T) {
	sceneA := testScene(8, 48, 32, 90)
	sceneB := testScene(8, 48, 32, 91)
	for _, id := range []ID{H264, HEVC} {
		// Encode B alone, and B after A (separate calls, as the writer
		// produces them).
		alone, _, err := EncodeGOP(sceneB, id, 80)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = EncodeGOP(sceneA, id, 80)
		if err != nil {
			t.Fatal(err)
		}
		after, _, err := EncodeGOP(sceneB, id, 80)
		if err != nil {
			t.Fatal(err)
		}
		if len(alone) != len(after) {
			t.Fatalf("%s: GOP encoding depends on encoder history", id)
		}
		for i := range alone {
			if alone[i] != after[i] {
				t.Fatalf("%s: byte %d differs across encodes", id, i)
			}
		}
	}
}

// TestDecodePrefixConsistency: decoding [0, k) yields the same frames as
// the prefix of a full decode, for every k — the invariant DecodeRange's
// look-back implementation relies on.
func TestDecodePrefixConsistency(t *testing.T) {
	frames := testScene(6, 48, 32, 92)
	data, _, err := EncodeGOP(frames, HEVC, 85)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := DecodeGOP(data)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= len(frames); k++ {
		part, _, err := DecodeRange(data, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			for j := range part[i].Data {
				if part[i].Data[j] != full[i].Data[j] {
					t.Fatalf("prefix decode [0,%d) frame %d differs", k, i)
				}
			}
		}
	}
}

// TestEncodeDecodePropertyRandomScenes: for arbitrary smooth scenes and
// quality presets, decode(encode(x)) preserves dimensions, frame count,
// and the analytic quality bound within a tolerance.
func TestEncodeDecodePropertyRandomScenes(t *testing.T) {
	prop := func(seed int64, q8 uint8) bool {
		qual := 50 + int(q8%51) // 50..100
		n := 3
		frames := testScene(n, 32, 24, seed)
		data, st, err := EncodeGOP(frames, H264, qual)
		if err != nil {
			return false
		}
		if st.BitsPerPixel <= 0 {
			return false
		}
		dec, hd, err := DecodeGOP(data)
		if err != nil || len(dec) != n {
			return false
		}
		if hd.Width != 32 || hd.Height != 24 || hd.Quality != qual {
			return false
		}
		ref := make([]*frame.Frame, n)
		for i, f := range frames {
			ref[i] = f.Convert(frame.YUV420)
		}
		p, err := quality.FramesPSNR(ref, dec)
		if err != nil {
			return false
		}
		// The analytic bound is MSE <= Q^2/12-ish; allow generous slack
		// for prediction drift on the moving content.
		bound := quality.PSNRFromMSE(ExpectedMSE(qual)*4 + 1)
		return p >= bound-6
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(93))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestExpectedMSEMonotone(t *testing.T) {
	prev := 1e18
	for q := 10; q <= 100; q += 10 {
		m := ExpectedMSE(q)
		if m > prev {
			t.Errorf("ExpectedMSE not monotone at q=%d: %f > %f", q, m, prev)
		}
		prev = m
	}
	if ExpectedMSE(100) != 0 {
		t.Error("quality 100 must be residual-lossless")
	}
}

// TestExpectedMSETracksMeasured cross-checks the analytic estimate against
// measured distortion — the property that lets it stand in for the
// paper's vbench-derived quality table.
func TestExpectedMSETracksMeasured(t *testing.T) {
	frames := testScene(6, 64, 48, 94)
	ref := make([]*frame.Frame, len(frames))
	for i, f := range frames {
		ref[i] = f.Convert(frame.YUV420)
	}
	for _, q := range []int{40, 60, 80} {
		data, _, err := EncodeGOP(frames, H264, q)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := DecodeGOP(data)
		if err != nil {
			t.Fatal(err)
		}
		measured, err := quality.FramesPSNR(ref, dec)
		if err != nil {
			t.Fatal(err)
		}
		predicted := quality.PSNRFromMSE(ExpectedMSE(q))
		diff := measured - predicted
		if diff < -3 || diff > 6 {
			t.Errorf("q=%d: predicted %.1f dB, measured %.1f dB", q, predicted, measured)
		}
	}
}
