package codec

import (
	"bytes"
	"compress/flate"
	"fmt"

	"repro/internal/frame"
)

// plane is a single 8-bit sample plane with its own dimensions (chroma
// planes are subsampled relative to luma).
type plane struct {
	w, h int
	pix  []byte
}

// yuvPlanes splits a YUV420 frame into its three planes.
func yuvPlanes(f *frame.Frame) [3]plane {
	ys := f.Width * f.Height
	cw, ch := f.Width/2, f.Height/2
	cs := cw * ch
	return [3]plane{
		{f.Width, f.Height, f.Data[:ys]},
		{cw, ch, f.Data[ys : ys+cs]},
		{cw, ch, f.Data[ys+cs : ys+2*cs]},
	}
}

// zigzagAppend writes one residual using the variable-length byte code:
// values with zigzag < 255 take one byte; larger values take three.
func zigzagAppend(buf []byte, r int) []byte {
	z := uint32(r<<1) ^ uint32(r>>31)
	if z < 255 {
		return append(buf, byte(z))
	}
	return append(buf, 255, byte(z), byte(z>>8))
}

// quantize rounds residual r to the nearest multiple of q and returns the
// quantized index.
func quantize(r, q int) int {
	if q <= 1 {
		return r
	}
	if r >= 0 {
		return (r + q/2) / q
	}
	return -((-r + q/2) / q)
}

// Encoder carries per-codec scratch state so repeated encodes reuse
// allocations instead of re-making them per GOP. The scratch itself is
// registry-driven: each codec materializes its own scratch type on first
// use via Scratch (the lossy profiles keep a deflate compressor and
// reconstruction planes there; ls keeps its bit writer and row buffers).
// The zero value is ready to use. An Encoder is NOT safe for concurrent
// use; pipelines allocate one per encode worker.
type Encoder struct {
	scratch map[ID]any
}

// NewEncoder returns an empty Encoder. Equivalent to new(Encoder); the
// constructor exists so call sites read naturally.
func NewEncoder() *Encoder { return &Encoder{} }

// Scratch returns the encoder's scratch value for a codec, calling mk to
// create it on first use. Codec implementations call this from EncodeGOP;
// the returned value is private to them.
func (e *Encoder) Scratch(id ID, mk func() any) any {
	if e.scratch == nil {
		e.scratch = make(map[ID]any, 1)
	}
	v, ok := e.scratch[id]
	if !ok {
		v = mk()
		e.scratch[id] = v
	}
	return v
}

// EncodeGOP encodes one GOP reusing the encoder's scratch buffers. It is
// the allocation-frugal form of the package-level EncodeGOP; semantics and
// output bytes are identical. Shared validation (non-empty GOP, uniform
// dimensions and format, quality clamping) happens here; the registered
// codec does the rest.
func (e *Encoder) EncodeGOP(frames []*frame.Frame, codec ID, quality int) ([]byte, Stats, error) {
	c, quality, err := validateGOP(frames, codec, quality)
	if err != nil {
		return nil, Stats{}, err
	}
	return c.EncodeGOP(e, frames, quality)
}

// ReconEncoder is an optional Codec extension. A codec whose encoder runs
// a closed prediction loop (reconstructing each frame exactly as the
// decoder will, to predict the next from decoded state rather than pristine
// input) already holds the decoder-identical frames when EncodeGOP
// returns; implementing ReconEncoder hands them to the caller instead of
// throwing them away. Ingest-time summarization uses this to analyze the
// exact pixels a later read will decode without paying a decode-back pass.
type ReconEncoder interface {
	// EncodeGOPRecon is EncodeGOP plus the reconstructed frames, one per
	// input frame, byte-identical to what DecodeGOP of the returned data
	// produces.
	EncodeGOPRecon(e *Encoder, frames []*frame.Frame, quality int) ([]byte, []*frame.Frame, Stats, error)
}

// EncodeGOPRecon encodes one GOP and also returns the reconstructed frames
// a decoder would produce from the encoded bytes. Codecs that implement
// ReconEncoder supply them from the encoder's own prediction loop; for a
// codec that is lossless at this quality the inputs round-trip bit-exactly
// and are returned as-is; anything else pays an explicit decode-back. A nil
// reconstruction with a nil error means the encode succeeded but the
// decode-back failed — callers treat the GOP as unanalyzable, not invalid.
func (e *Encoder) EncodeGOPRecon(frames []*frame.Frame, codec ID, quality int) ([]byte, []*frame.Frame, Stats, error) {
	c, quality, err := validateGOP(frames, codec, quality)
	if err != nil {
		return nil, nil, Stats{}, err
	}
	if rc, ok := c.(ReconEncoder); ok {
		return rc.EncodeGOPRecon(e, frames, quality)
	}
	data, st, err := c.EncodeGOP(e, frames, quality)
	if err != nil {
		return nil, nil, st, err
	}
	if c.Lossless(quality) {
		return data, frames, st, nil
	}
	recon, _, err := DecodeGOP(data)
	if err != nil {
		return data, nil, st, nil
	}
	return data, recon, st, nil
}

// validateGOP performs the shared pre-encode checks: non-empty GOP,
// uniform dimensions and format, known codec, quality clamped to [1,100].
func validateGOP(frames []*frame.Frame, codec ID, quality int) (Codec, int, error) {
	if len(frames) == 0 {
		return nil, 0, fmt.Errorf("codec: empty GOP")
	}
	c, ok := Lookup(codec)
	if !ok {
		return nil, 0, fmt.Errorf("codec: %q: %w", codec, ErrUnknownCodec)
	}
	w, h := frames[0].Width, frames[0].Height
	fmt0 := frames[0].Format
	for i, f := range frames {
		if f.Width != w || f.Height != h {
			return nil, 0, fmt.Errorf("codec: frame %d dimensions %dx%d differ from %dx%d", i, f.Width, f.Height, w, h)
		}
		if f.Format != fmt0 {
			return nil, 0, fmt.Errorf("codec: frame %d format %v differs from %v", i, f.Format, fmt0)
		}
	}
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	return c, quality, nil
}

// sizePlanes shapes a reconstruction plane triple for a w x h YUV420 frame,
// reusing backing arrays. Contents are left stale: every encode pass writes
// each sample before it is read.
func sizePlanes(ps *[3]plane, w, h int) {
	dims := [3][2]int{{w, h}, {w / 2, h / 2}, {w / 2, h / 2}}
	for p := range ps {
		need := dims[p][0] * dims[p][1]
		if cap(ps[p].pix) < need {
			ps[p].pix = make([]byte, need)
		}
		ps[p] = plane{dims[p][0], dims[p][1], ps[p].pix[:need]}
	}
}

// lossyCodec is one predictive profile ("h264" or "hevc") registered as a
// Codec. The id names it on the wire and in container tags; the profile
// carries its coding parameters.
type lossyCodec struct {
	id   ID
	prof profile
}

func init() {
	Register(lossyCodec{H264, profile{blockSize: 8, searchRadius: 0, intra2D: false, flateLevel: 4}})
	Register(lossyCodec{HEVC, profile{blockSize: 16, searchRadius: 3, intra2D: true, flateLevel: 6}})
}

func (c lossyCodec) Name() ID { return c.id }

// Lossless is false at every quality: even at quality 100 (exact
// residuals) inputs are converted to YUV420 first, so non-YUV420 frames do
// not round-trip bit-exactly.
func (c lossyCodec) Lossless(quality int) bool { return false }

// lossyScratch is the per-Encoder scratch of the predictive profiles: the
// deflate compressor (by far the largest allocation), the per-frame
// residual/MV stream, the deflate output buffer, ping-pong reconstruction
// planes, the motion vector table, a YUV conversion frame, and the
// quantizer table.
type lossyScratch struct {
	zw      *flate.Writer
	zwLevel int
	stream  []byte       // per-frame MV+residual stream
	comp    bytes.Buffer // per-frame deflate output
	rec     [2][3]plane  // ping-pong reconstructed frames (decoder mirror)
	mvs     []mv         // per-frame motion vector table
	yuv     *frame.Frame // pixel format conversion scratch
	qt      quantTab     // residual quantization lookup
}

// quantTab tabulates quantize(r, q) and its dequantized reconstruction
// delta for every residual r in [-255, 255], replacing two integer
// divisions per sample in the encode inner loops with array lookups. The
// entries are exactly quantize's results, so encoded bytes are unchanged.
type quantTab struct {
	q  int // the step the tables were built for (0 = unbuilt)
	qr [511]int16
	rq [511]int16
}

// build (re)fills the tables for quantization step q.
func (t *quantTab) build(q int) {
	if t.q == q {
		return
	}
	t.q = q
	for r := -255; r <= 255; r++ {
		qr := quantize(r, q)
		t.qr[r+255] = int16(qr)
		t.rq[r+255] = int16(qr * q)
	}
}

// deflate compresses one frame's stream into a fresh exactly-sized payload,
// reusing the scratch compressor and output buffer.
func (s *lossyScratch) deflate(stream []byte, level int) ([]byte, error) {
	s.comp.Reset()
	if s.zw == nil || s.zwLevel != level {
		zw, err := flate.NewWriter(&s.comp, level)
		if err != nil {
			return nil, fmt.Errorf("codec: %w", err)
		}
		s.zw, s.zwLevel = zw, level
	} else {
		s.zw.Reset(&s.comp)
	}
	if _, err := s.zw.Write(stream); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	if err := s.zw.Close(); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	out := make([]byte, s.comp.Len())
	copy(out, s.comp.Bytes())
	return out, nil
}

// EncodeGOP encodes frames with the predictive profile. Input frames are
// converted to YUV420; dimensions must be even (the storage layer
// guarantees this; synthetic generators emit even sizes, as real camera
// pipelines do).
func (c lossyCodec) EncodeGOP(e *Encoder, frames []*frame.Frame, quality int) ([]byte, Stats, error) {
	data, _, st, err := c.encode(e, frames, quality, false)
	return data, st, err
}

// EncodeGOPRecon implements ReconEncoder: the prediction loop is closed
// (every frame is encoded against reconstructed, not pristine, reference
// planes), so the reconstructions the loop maintains ARE the decoder's
// output and capturing them costs one plane copy per frame.
func (c lossyCodec) EncodeGOPRecon(e *Encoder, frames []*frame.Frame, quality int) ([]byte, []*frame.Frame, Stats, error) {
	return c.encode(e, frames, quality, true)
}

func (c lossyCodec) encode(e *Encoder, frames []*frame.Frame, quality int, capture bool) ([]byte, []*frame.Frame, Stats, error) {
	var st Stats
	w, h := frames[0].Width, frames[0].Height
	if w%2 != 0 || h%2 != 0 {
		return nil, nil, st, fmt.Errorf("codec: %s requires even dimensions, got %dx%d", c.id, w, h)
	}
	sc := e.Scratch(c.id, func() any { return new(lossyScratch) }).(*lossyScratch)
	prof := c.prof
	q := quantizer(quality)
	sc.qt.build(q)

	types := make([]FrameType, len(frames))
	payloads := make([][]byte, len(frames))
	var recon []*frame.Frame
	if capture {
		recon = make([]*frame.Frame, len(frames))
	}

	for i, f := range frames {
		src := f
		if f.Format != frame.YUV420 {
			src = f.ConvertInto(sc.yuv, frame.YUV420)
			sc.yuv = src
		}
		planes := yuvPlanes(src)
		// Reconstructed planes ping-pong: frame i predicts from the planes
		// frame i-1 reconstructed into the other buffer.
		cur := &sc.rec[i&1]
		sizePlanes(cur, w, h)
		stream := sc.stream[:0]
		if i == 0 {
			types[i] = IFrame
			st.IFrames++
			for p := 0; p < 3; p++ {
				stream = encodeIntraPlane(stream, planes[p], &sc.qt, prof.intra2D, cur[p])
			}
		} else {
			types[i] = PFrame
			st.PFrames++
			prev := sc.rec[(i+1)&1]
			// Motion vectors are estimated on luma and halved for chroma.
			sc.mvs = estimateMotion(sc.mvs, planes[0], prev[0], prof)
			stream = appendMVs(stream, sc.mvs, prof)
			for p := 0; p < 3; p++ {
				bs := prof.blockSize
				scale := 1
				if p > 0 {
					bs /= 2
					scale = 2
				}
				stream = encodeInterPlane(stream, planes[p], prev[p], sc.mvs, bs, scale, &sc.qt, cur[p])
			}
		}
		sc.stream = stream // keep the grown buffer for the next frame
		payload, err := sc.deflate(stream, prof.flateLevel)
		if err != nil {
			return nil, nil, st, err
		}
		payloads[i] = payload
		if capture {
			rf := frame.New(w, h, frame.YUV420)
			n := copy(rf.Data, cur[0].pix)
			n += copy(rf.Data[n:], cur[1].pix)
			copy(rf.Data[n:], cur[2].pix)
			recon[i] = rf
		}
	}

	data := writeContainer(c.id, frame.YUV420, quality, w, h, types, payloads)
	st.Bytes = len(data)
	st.BitsPerPixel = float64(len(data)) * 8 / float64(w*h*len(frames))
	return data, recon, st, nil
}

// encodeIntraPlane codes a plane with spatial DPCM prediction: each sample
// is predicted from its reconstructed left neighbor (h264 profile) or the
// average of left and top (hevc profile), quantized, and entropy coded.
// Residuals append to dst; the reconstruction the next frame predicts from
// is written into rec, which must already have the plane's dimensions.
func encodeIntraPlane(dst []byte, p plane, qt *quantTab, intra2D bool, rec plane) []byte {
	for y := 0; y < p.h; y++ {
		row := y * p.w
		for x := 0; x < p.w; x++ {
			pred := intraPredict(rec, x, y, intra2D)
			r := int(p.pix[row+x]) - pred
			dst = zigzagAppend(dst, int(qt.qr[r+255]))
			rec.pix[row+x] = clampU8(pred + int(qt.rq[r+255]))
		}
	}
	return dst
}

// intraPredict returns the spatial prediction for sample (x, y) given the
// already-reconstructed samples of the same plane.
func intraPredict(rec plane, x, y int, intra2D bool) int {
	left, top := -1, -1
	if x > 0 {
		left = int(rec.pix[y*rec.w+x-1])
	}
	if y > 0 {
		top = int(rec.pix[(y-1)*rec.w+x])
	}
	switch {
	case intra2D && left >= 0 && top >= 0:
		return (left + top + 1) / 2
	case left >= 0:
		return left
	case top >= 0:
		return top
	default:
		return 128
	}
}

// encodeInterPlane codes a plane against the previous reconstructed plane
// using per-block motion vectors (scaled down by `scale` for chroma).
// Residuals append to dst; the reconstruction is written into rec.
func encodeInterPlane(dst []byte, p, ref plane, mvs []mv, bs, scale int, qt *quantTab, rec plane) []byte {
	bw := (p.w + bs - 1) / bs
	for y := 0; y < p.h; y++ {
		row := y * p.w
		by := y / bs
		for x := 0; x < p.w; x++ {
			m := mvs[by*bw+x/bs]
			pred := refSample(ref, x+m.dx/scale, y+m.dy/scale)
			r := int(p.pix[row+x]) - pred
			dst = zigzagAppend(dst, int(qt.qr[r+255]))
			rec.pix[row+x] = clampU8(pred + int(qt.rq[r+255]))
		}
	}
	return dst
}

// refSample samples the reference plane with edge clamping.
func refSample(ref plane, x, y int) int {
	if x < 0 {
		x = 0
	}
	if x >= ref.w {
		x = ref.w - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= ref.h {
		y = ref.h - 1
	}
	return int(ref.pix[y*ref.w+x])
}

func clampU8(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
