package codec

import (
	"bytes"
	"compress/flate"
	"fmt"

	"repro/internal/frame"
)

// plane is a single 8-bit sample plane with its own dimensions (chroma
// planes are subsampled relative to luma).
type plane struct {
	w, h int
	pix  []byte
}

// yuvPlanes splits a YUV420 frame into its three planes.
func yuvPlanes(f *frame.Frame) [3]plane {
	ys := f.Width * f.Height
	cw, ch := f.Width/2, f.Height/2
	cs := cw * ch
	return [3]plane{
		{f.Width, f.Height, f.Data[:ys]},
		{cw, ch, f.Data[ys : ys+cs]},
		{cw, ch, f.Data[ys+cs : ys+2*cs]},
	}
}

// zigzagAppend writes one residual using the variable-length byte code:
// values with zigzag < 255 take one byte; larger values take three.
func zigzagAppend(buf []byte, r int) []byte {
	z := uint32(r<<1) ^ uint32(r>>31)
	if z < 255 {
		return append(buf, byte(z))
	}
	return append(buf, 255, byte(z), byte(z>>8))
}

// quantize rounds residual r to the nearest multiple of q and returns the
// quantized index.
func quantize(r, q int) int {
	if q <= 1 {
		return r
	}
	if r >= 0 {
		return (r + q/2) / q
	}
	return -((-r + q/2) / q)
}

// encodeLossyGOP encodes frames with one of the predictive profiles. Input
// frames are converted to YUV420; dimensions must be even (the storage
// layer guarantees this; synthetic generators emit even sizes, as real
// camera pipelines do).
func encodeLossyGOP(frames []*frame.Frame, codec ID, quality int) ([]byte, Stats, error) {
	var st Stats
	w, h := frames[0].Width, frames[0].Height
	if w%2 != 0 || h%2 != 0 {
		return nil, st, fmt.Errorf("codec: %s requires even dimensions, got %dx%d", codec, w, h)
	}
	prof := profiles[codec]
	q := quantizer(quality)

	types := make([]FrameType, len(frames))
	payloads := make([][]byte, len(frames))
	var recon [3]plane // reconstructed previous frame (decoder state mirror)

	for i, f := range frames {
		src := f
		if f.Format != frame.YUV420 {
			src = f.Convert(frame.YUV420)
		}
		planes := yuvPlanes(src)
		var stream []byte
		if i == 0 {
			types[i] = IFrame
			st.IFrames++
			next := [3]plane{}
			for p := 0; p < 3; p++ {
				var res []byte
				res, next[p] = encodeIntraPlane(planes[p], q, prof.intra2D)
				stream = append(stream, res...)
			}
			recon = next
		} else {
			types[i] = PFrame
			st.PFrames++
			// Motion vectors are estimated on luma and halved for chroma.
			mvs := estimateMotion(planes[0], recon[0], prof)
			stream = append(stream, encodeMVs(mvs, prof)...)
			next := [3]plane{}
			for p := 0; p < 3; p++ {
				bs := prof.blockSize
				scale := 1
				if p > 0 {
					bs /= 2
					scale = 2
				}
				var res []byte
				res, next[p] = encodeInterPlane(planes[p], recon[p], mvs, bs, scale, q)
				stream = append(stream, res...)
			}
			recon = next
		}
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, prof.flateLevel)
		if err != nil {
			return nil, st, fmt.Errorf("codec: %w", err)
		}
		if _, err := zw.Write(stream); err != nil {
			return nil, st, fmt.Errorf("codec: %w", err)
		}
		if err := zw.Close(); err != nil {
			return nil, st, fmt.Errorf("codec: %w", err)
		}
		payloads[i] = buf.Bytes()
	}

	data := writeContainer(codec, frame.YUV420, quality, w, h, types, payloads)
	st.Bytes = len(data)
	st.BitsPerPixel = float64(len(data)) * 8 / float64(w*h*len(frames))
	return data, st, nil
}

// encodeIntraPlane codes a plane with spatial DPCM prediction: each sample
// is predicted from its reconstructed left neighbor (h264 profile) or the
// average of left and top (hevc profile), quantized, and entropy coded.
// Returns the residual stream and the reconstructed plane the next frame
// predicts from.
func encodeIntraPlane(p plane, q int, intra2D bool) ([]byte, plane) {
	rec := plane{p.w, p.h, make([]byte, len(p.pix))}
	res := make([]byte, 0, len(p.pix))
	for y := 0; y < p.h; y++ {
		row := y * p.w
		for x := 0; x < p.w; x++ {
			pred := intraPredict(rec, x, y, intra2D)
			r := int(p.pix[row+x]) - pred
			qr := quantize(r, q)
			res = zigzagAppend(res, qr)
			rec.pix[row+x] = clampU8(pred + qr*q)
		}
	}
	return res, rec
}

// intraPredict returns the spatial prediction for sample (x, y) given the
// already-reconstructed samples of the same plane.
func intraPredict(rec plane, x, y int, intra2D bool) int {
	left, top := -1, -1
	if x > 0 {
		left = int(rec.pix[y*rec.w+x-1])
	}
	if y > 0 {
		top = int(rec.pix[(y-1)*rec.w+x])
	}
	switch {
	case intra2D && left >= 0 && top >= 0:
		return (left + top + 1) / 2
	case left >= 0:
		return left
	case top >= 0:
		return top
	default:
		return 128
	}
}

// encodeInterPlane codes a plane against the previous reconstructed plane
// using per-block motion vectors (scaled down by `scale` for chroma).
func encodeInterPlane(p, ref plane, mvs []mv, bs, scale, q int) ([]byte, plane) {
	rec := plane{p.w, p.h, make([]byte, len(p.pix))}
	res := make([]byte, 0, len(p.pix))
	bw := (p.w + bs - 1) / bs
	for y := 0; y < p.h; y++ {
		row := y * p.w
		by := y / bs
		for x := 0; x < p.w; x++ {
			m := mvs[by*bw+x/bs]
			pred := refSample(ref, x+m.dx/scale, y+m.dy/scale)
			r := int(p.pix[row+x]) - pred
			qr := quantize(r, q)
			res = zigzagAppend(res, qr)
			rec.pix[row+x] = clampU8(pred + qr*q)
		}
	}
	return res, rec
}

// refSample samples the reference plane with edge clamping.
func refSample(ref plane, x, y int) int {
	if x < 0 {
		x = 0
	}
	if x >= ref.w {
		x = ref.w - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= ref.h {
		y = ref.h - 1
	}
	return int(ref.pix[y*ref.w+x])
}

func clampU8(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
