package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one discrete labeled event inside a trace — a router failover
// hop, a retry — with its offset from the trace start.
type Span struct {
	Stage          string  `json:"stage"`
	Label          string  `json:"label,omitempty"`
	OffsetMillis   float64 `json:"offset_ms"`
	DurationMillis float64 `json:"duration_ms"`
	Err            string  `json:"err,omitempty"`
}

// StageTiming is one stage's accumulated time within a single trace.
type StageTiming struct {
	Count  int64   `json:"count"`
	Millis float64 `json:"ms"`
}

// TraceSnapshot is a finished trace in serializable form: the JSON
// element of /debug/traces.
type TraceSnapshot struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Video  string `json:"video,omitempty"`
	Detail string `json:"detail,omitempty"`
	Status int    `json:"status,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`

	Start          time.Time `json:"start"`
	DurationMillis float64   `json:"duration_ms"`
	TTFBMillis     float64   `json:"ttfb_ms,omitempty"`

	// Stages maps stage name → accumulated time; only observed stages
	// appear. Spans are the discrete events (failover hops); a request
	// generating more than the per-trace bound reports SpansDropped.
	Stages       map[string]StageTiming `json:"stages,omitempty"`
	Spans        []Span                 `json:"spans,omitempty"`
	SpansDropped int                    `json:"spans_dropped,omitempty"`
}

// StageSummary renders the observed stages in canonical order as
// "plan=0.4ms fetch=12.1ms decode=80.0ms" — the compact per-request log
// form.
func (s TraceSnapshot) StageSummary() string {
	if len(s.Stages) == 0 {
		return ""
	}
	var b []byte
	for i := Stage(0); i < numStages; i++ {
		st, ok := s.Stages[i.String()]
		if !ok {
			continue
		}
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, i.String()...)
		b = append(b, '=')
		b = appendMillis(b, st.Millis)
	}
	return string(b)
}

// appendMillis formats ms with two decimals without pulling fmt into
// the hot logging path.
func appendMillis(b []byte, ms float64) []byte {
	if ms < 0 {
		ms = 0
	}
	cent := int64(ms*100 + 0.5)
	b = appendInt(b, cent/100)
	b = append(b, '.')
	frac := cent % 100
	b = append(b, byte('0'+frac/10), byte('0'+frac%10))
	return append(b, "ms"...)
}

func appendInt(b []byte, v int64) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// SlowRing retains the N slowest recent request traces for
// /debug/traces. Add is called on every finished request, so the common
// case — a request faster than everything retained — must be cheap: one
// atomic load rejects it without taking the lock. Only requests slow
// enough to displace the current minimum pay the mutex and the O(N)
// eviction scan (N is small, default 64).
type SlowRing struct {
	capN    int
	mu      sync.Mutex
	entries []TraceSnapshot
	// floor is the admission threshold in microseconds: the retained
	// minimum once the ring is full, -1 (admit everything) before.
	floor atomic.Int64
}

// DefaultSlowTraces is the ring capacity when the serving layer does
// not configure one.
const DefaultSlowTraces = 64

// NewSlowRing builds a ring retaining the n slowest traces (n <= 0
// selects DefaultSlowTraces).
func NewSlowRing(n int) *SlowRing {
	if n <= 0 {
		n = DefaultSlowTraces
	}
	r := &SlowRing{capN: n}
	r.floor.Store(-1)
	return r
}

// Cap returns the ring's capacity.
func (r *SlowRing) Cap() int {
	if r == nil {
		return 0
	}
	return r.capN
}

// Add offers one finished trace. Traces no slower than the retained
// minimum of a full ring are rejected on the atomic fast path. The
// floor read is deliberately racy — a borderline trace may slip past a
// concurrent eviction and be re-judged under the lock; the ring is a
// diagnostic aid, not an exact order statistic. Nil-receiver safe.
func (r *SlowRing) Add(s TraceSnapshot) {
	if r == nil {
		return
	}
	us := int64(s.DurationMillis * 1000)
	if us <= r.floor.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) < r.capN {
		r.entries = append(r.entries, s)
		if len(r.entries) == r.capN {
			r.updateFloor()
		}
		return
	}
	min := 0
	for i := 1; i < len(r.entries); i++ {
		if r.entries[i].DurationMillis < r.entries[min].DurationMillis {
			min = i
		}
	}
	if s.DurationMillis > r.entries[min].DurationMillis {
		r.entries[min] = s
	}
	r.updateFloor()
}

// updateFloor recomputes the admission threshold. Caller holds mu.
func (r *SlowRing) updateFloor() {
	min := r.entries[0].DurationMillis
	for _, e := range r.entries[1:] {
		if e.DurationMillis < min {
			min = e.DurationMillis
		}
	}
	r.floor.Store(int64(min * 1000))
}

// Snapshot returns the retained traces, slowest first.
func (r *SlowRing) Snapshot() []TraceSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]TraceSnapshot(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurationMillis > out[j].DurationMillis })
	return out
}
