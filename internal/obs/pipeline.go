package obs

import (
	"context"
	"time"
)

// Pipeline aggregates per-stage latency histograms for one store's
// read/write path: every admission wait, plan, fetch, decode, encode,
// cache admission, and response flush lands in its stage's Hist. It is
// the source of the /metrics "pipeline" section. Nil-receiver safe, so
// un-wired paths can observe unconditionally.
type Pipeline struct {
	hists [numStages]Hist
}

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline { return &Pipeline{} }

// Observe records one stage duration. No-op on a nil pipeline.
func (p *Pipeline) Observe(st Stage, d time.Duration) {
	if p == nil || st >= numStages {
		return
	}
	p.hists[st].Observe(d)
}

// StageStats is one stage's row in a pipeline snapshot.
type StageStats struct {
	// Count is the number of observations (per GOP for fetch/decode/
	// encode, per request for admission).
	Count int64 `json:"count"`
	// TotalMillis is exact cumulative time; with Count it gives the
	// mean. The quantiles are power-of-two-bucket bounds, within 2x.
	TotalMillis float64 `json:"total_ms"`
	P50Millis   float64 `json:"p50_ms"`
	P99Millis   float64 `json:"p99_ms"`
}

// Snapshot returns every stage keyed by name. Unobserved stages are
// present with zero counts, so the snapshot shape is stable.
func (p *Pipeline) Snapshot() map[string]StageStats {
	out := make(map[string]StageStats, numStages)
	for i := range p.hists {
		h := &p.hists[i]
		out[Stage(i).String()] = StageStats{
			Count:       h.Count(),
			TotalMillis: h.TotalMillis(),
			P50Millis:   h.QuantileMillis(0.50),
			P99Millis:   h.QuantileMillis(0.99),
		}
	}
	return out
}

// Observe folds one stage duration into both a pipeline and the
// context's trace; either may be nil/absent. This is the one-liner hot
// paths call at a stage boundary.
func Observe(ctx context.Context, p *Pipeline, st Stage, d time.Duration) {
	p.Observe(st, d)
	FromContext(ctx).Observe(st, d)
}
