package obs

import (
	"context"
	"sync"
	"time"
)

// Pipeline aggregates per-stage latency histograms for one store's
// read/write path: every admission wait, plan, fetch, decode, encode,
// cache admission, and response flush lands in its stage's Hist. It is
// the source of the /metrics "pipeline" section. Nil-receiver safe, so
// un-wired paths can observe unconditionally.
//
// Encode and decode additionally break out per codec: ObserveCodec folds
// the duration into both the aggregate stage histogram and a
// "stage/codec" histogram (e.g. "decode/ls") created on first use. The
// codec set is open — whatever the registry serves shows up — so new
// codecs appear in /metrics without obs changes.
type Pipeline struct {
	hists [numStages]Hist

	mu      sync.Mutex
	byCodec map[string]*Hist // "decode/h264" -> hist; Hist is internally atomic
}

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline { return &Pipeline{} }

// Observe records one stage duration. No-op on a nil pipeline.
func (p *Pipeline) Observe(st Stage, d time.Duration) {
	if p == nil || st >= numStages {
		return
	}
	p.hists[st].Observe(d)
}

// ObserveCodec records one stage duration attributed to a codec: the
// aggregate stage histogram gets it (so stage totals stay complete) and
// so does the per-codec breakout. Empty codec degrades to Observe. No-op
// on a nil pipeline.
func (p *Pipeline) ObserveCodec(st Stage, codec string, d time.Duration) {
	p.Observe(st, d)
	if p == nil || st >= numStages || codec == "" {
		return
	}
	key := st.String() + "/" + codec
	p.mu.Lock()
	h, ok := p.byCodec[key]
	if !ok {
		if p.byCodec == nil {
			p.byCodec = make(map[string]*Hist, 4)
		}
		h = new(Hist)
		p.byCodec[key] = h
	}
	p.mu.Unlock()
	h.Observe(d)
}

// StageStats is one stage's row in a pipeline snapshot.
type StageStats struct {
	// Count is the number of observations (per GOP for fetch/decode/
	// encode, per request for admission).
	Count int64 `json:"count"`
	// TotalMillis is exact cumulative time; with Count it gives the
	// mean. The quantiles are power-of-two-bucket bounds, within 2x.
	TotalMillis float64 `json:"total_ms"`
	P50Millis   float64 `json:"p50_ms"`
	P99Millis   float64 `json:"p99_ms"`
}

// Snapshot returns every stage keyed by name, plus one "stage/codec" row
// per codec that has been observed. Unobserved stages are present with
// zero counts, so the snapshot shape is stable; per-codec rows appear as
// codecs are exercised (the Prometheus exposition derives metric names
// structurally, so new rows surface without exporter changes).
func (p *Pipeline) Snapshot() map[string]StageStats {
	out := make(map[string]StageStats, numStages)
	stat := func(h *Hist) StageStats {
		return StageStats{
			Count:       h.Count(),
			TotalMillis: h.TotalMillis(),
			P50Millis:   h.QuantileMillis(0.50),
			P99Millis:   h.QuantileMillis(0.99),
		}
	}
	for i := range p.hists {
		out[Stage(i).String()] = stat(&p.hists[i])
	}
	p.mu.Lock()
	for key, h := range p.byCodec {
		out[key] = stat(h)
	}
	p.mu.Unlock()
	return out
}

// Observe folds one stage duration into both a pipeline and the
// context's trace; either may be nil/absent. This is the one-liner hot
// paths call at a stage boundary.
func Observe(ctx context.Context, p *Pipeline, st Stage, d time.Duration) {
	p.Observe(st, d)
	FromContext(ctx).Observe(st, d)
}

// ObserveCodec is Observe with codec attribution: the pipeline gets the
// per-codec breakout, the trace gets the stage total (traces are
// per-request and stay codec-agnostic).
func ObserveCodec(ctx context.Context, p *Pipeline, st Stage, codec string, d time.Duration) {
	p.ObserveCodec(st, codec, d)
	FromContext(ctx).Observe(st, d)
}
