// Package obs is the zero-dependency observability core shared by every
// VSS layer: cheap trace/span primitives for following one request
// across processes, per-stage latency histograms for the read/write
// pipeline, a bounded ring of the slowest recent request traces, and a
// Prometheus text renderer for metrics snapshots.
//
// # Trace model
//
// A Trace follows one request. Its identity is a 16-hex-char ID minted
// at the serving edge (vssd or vssrouterd) — or resumed from the
// X-VSS-Trace wire header when an upstream already minted one — and
// echoed back in the response, so the same ID names the request at the
// client, the router, and every storage node a read touches.
//
// Stage timing is recorded two ways, matching how the pipeline behaves:
//
//   - Observe(stage, d) folds a duration into fixed per-stage atomic
//     accumulators (total nanos + count). Hot paths call it once per GOP
//     with no allocation and no lock, so a trace riding a 1024-stream
//     benchmark costs two atomic adds per observation.
//   - AddSpan records one discrete, labeled event — a router failover
//     hop, a retry — into a small bounded list under a mutex. These are
//     rare by construction; the bound keeps a pathological request from
//     growing its trace without limit.
//
// All Trace methods are nil-receiver safe: code instruments
// unconditionally and un-traced paths (benchmarks, internal reads) pay
// only a nil check. Traces travel on the context via WithTrace /
// FromContext; server.Client injects the ID into outgoing requests, so
// propagation needs no wiring beyond passing ctx.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the wire header carrying a trace ID between processes
// (client → router → storage node). Requests may send it to resume an
// upstream trace; responses echo the ID that was used.
const TraceHeader = "X-VSS-Trace"

// Stage identifies one timed stage of the read/write pipeline. The set
// is fixed and small so a Trace can hold one atomic accumulator per
// stage with no map or allocation.
type Stage uint8

const (
	// StageAdmission is time queued in the serving admission controller
	// before the read acquired an execution slot.
	StageAdmission Stage = iota
	// StagePlan is phase A of a read: resolve, plan, and snapshot under
	// the video lock (eager snapshot IO included when prefetch is off).
	StagePlan
	// StageFetch is a stored-GOP backend read — local disk, or the full
	// remote round trip including retries and router failover.
	StageFetch
	// StageDecode is GOP bitstream decode on the worker pool.
	StageDecode
	// StageEncode is output GOP encode (read transcode or ingest).
	StageEncode
	// StageCacheAdmit is phase C: re-locked cache admission of a read's
	// output as a materialized view.
	StageCacheAdmit
	// StageFlush is response write/flush cycles pushing bytes to the
	// client socket.
	StageFlush

	numStages
)

var stageNames = [numStages]string{
	"admission_wait",
	"plan",
	"fetch",
	"decode",
	"encode",
	"cache_admit",
	"flush",
}

// String returns the stage's snake_case name, as used in /metrics keys
// and trace snapshots.
func (st Stage) String() string {
	if int(st) < len(stageNames) {
		return stageNames[st]
	}
	return "unknown"
}

// StageNames lists every stage name in canonical order.
func StageNames() []string {
	out := make([]string, numStages)
	copy(out, stageNames[:])
	return out
}

// NewID mints a random 64-bit trace ID as 16 hex characters.
func NewID() string {
	var b [8]byte
	rand.Read(b[:]) // never fails per crypto/rand contract
	return hex.EncodeToString(b[:])
}

// maxSpans bounds a trace's discrete span list. Spans mark rare events
// (failover hops, retries); a request generating more than this is
// recorded truncated, with SpansDropped counting the overflow.
const maxSpans = 64

// stageAcc accumulates one stage's observations.
type stageAcc struct {
	nanos atomic.Int64
	count atomic.Int64
}

// Trace accumulates one request's timing. Create with StartTrace;
// methods are safe for concurrent use and on a nil receiver.
type Trace struct {
	id    string
	name  string // request kind: "read", "write", "gop_read"
	start time.Time

	stages [numStages]stageAcc

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// StartTrace begins a trace for one request. A non-empty id resumes a
// propagated upstream trace (the wire header's value); empty mints a
// fresh ID. name labels the request kind in snapshots and logs.
func StartTrace(id, name string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{id: id, name: name, start: time.Now()}
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns when the trace began.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Observe folds one stage duration into the trace's accumulators.
// No-op on a nil trace; two atomic adds otherwise.
func (t *Trace) Observe(st Stage, d time.Duration) {
	if t == nil || st >= numStages {
		return
	}
	if d < 0 {
		d = 0
	}
	t.stages[st].nanos.Add(int64(d))
	t.stages[st].count.Add(1)
}

// AddSpan records one discrete labeled event, e.g. a failover hop. The
// offset is taken from the span's own start time against the trace
// start. No-op on a nil trace; bounded by maxSpans.
func (t *Trace) AddSpan(st Stage, label string, start time.Time, d time.Duration, err error) {
	if t == nil {
		return
	}
	sp := Span{
		Stage:          st.String(),
		Label:          label,
		OffsetMillis:   millis(start.Sub(t.start)),
		DurationMillis: millis(d),
	}
	if err != nil {
		sp.Err = err.Error()
	}
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, sp)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Request carries the request-level outcome fields a serving layer
// knows when the request finishes.
type Request struct {
	Video  string
	Detail string // request detail: read query, GOP address
	Status int
	Bytes  int64
	TTFB   time.Duration
}

// Snapshot freezes the trace into its serializable form, with end as
// the request's finish time. A nil trace snapshots to the zero value.
func (t *Trace) Snapshot(req Request, end time.Time) TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	snap := TraceSnapshot{
		ID:             t.id,
		Name:           t.name,
		Video:          req.Video,
		Detail:         req.Detail,
		Status:         req.Status,
		Bytes:          req.Bytes,
		Start:          t.start,
		DurationMillis: millis(end.Sub(t.start)),
		TTFBMillis:     millis(req.TTFB),
	}
	for i := range t.stages {
		if n := t.stages[i].count.Load(); n > 0 {
			if snap.Stages == nil {
				snap.Stages = make(map[string]StageTiming, numStages)
			}
			snap.Stages[Stage(i).String()] = StageTiming{
				Count:  n,
				Millis: float64(t.stages[i].nanos.Load()) / 1e6,
			}
		}
	}
	t.mu.Lock()
	if len(t.spans) > 0 {
		snap.Spans = append([]Span(nil), t.spans...)
	}
	snap.SpansDropped = t.dropped
	t.mu.Unlock()
	return snap
}

func millis(d time.Duration) float64 {
	if d < 0 {
		return 0
	}
	return float64(d) / 1e6
}

// ctxKey keys the trace on a context.
type ctxKey struct{}

// WithTrace attaches a trace to a context. Attaching nil returns ctx
// unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil — safe to call
// methods on either way.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// TraceID returns the context's trace ID, or "".
func TraceID(ctx context.Context) string { return FromContext(ctx).ID() }
