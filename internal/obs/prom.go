package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromOpts configures the JSON → Prometheus mapping of WritePrometheus.
type PromOpts struct {
	// Labels maps a JSON path (segments joined with "_", no prefix)
	// whose object keys or array elements are DYNAMIC — video names,
	// cluster nodes — to the label name used for them. Children of a
	// labeled node keep the path of the node itself, so
	// {"videos": {"cam": {"bytes": 1}}} with Labels{"videos": "video"}
	// renders as vss_videos_bytes{video="cam"} 1.
	Labels map[string]string
	// NameFields lists, in priority order, the string fields tried as
	// the label value for elements of a labeled array (e.g. "addr" for
	// node_health rows). An element with none falls back to its index.
	NameFields []string
}

// WritePrometheus renders any JSON-marshalable value in the Prometheus
// text exposition format, one gauge sample per leaf:
//
//   - numbers become `prefix_<path> <value>`
//   - booleans become 1/0
//   - strings become info-style `prefix_<path>_info{value="..."} 1`
//   - maps/arrays at a PromOpts.Labels path become labeled series
//
// Deriving the exposition from the marshaled JSON — rather than a
// hand-maintained field list — makes coverage structural: a field added
// to the snapshot type appears in the Prometheus view by construction
// (the completeness test in internal/server pins this).
func WritePrometheus(w io.Writer, prefix string, v any, opts PromOpts) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var root any
	if err := json.Unmarshal(data, &root); err != nil {
		return err
	}
	pw := &promWriter{w: w, opts: opts}
	pw.walk(prefix, "", nil, root, false)
	return pw.err
}

type promWriter struct {
	w    io.Writer
	opts PromOpts
	err  error
}

// walk emits samples for v. name is the metric name so far (prefix
// included), rel the options-lookup path (prefix excluded), labels the
// accumulated `k="v"` pairs. labeled marks the direct child of a
// labeled node, whose own Labels match already fired — without it a
// map element under a labeled map would re-match the same path and
// label itself again.
func (pw *promWriter) walk(name, rel string, labels []string, v any, labeled bool) {
	if pw.err != nil {
		return
	}
	switch val := v.(type) {
	case map[string]any:
		if label, ok := pw.opts.Labels[rel]; ok && !labeled {
			for _, k := range sortedKeys(val) {
				pw.walk(name, rel, append(labels, label+`=`+quoteLabel(k)), val[k], true)
			}
			return
		}
		for _, k := range sortedKeys(val) {
			pw.walk(join(name, sanitizeName(k)), join(rel, k), labels, val[k], false)
		}
	case []any:
		label, ok := pw.opts.Labels[rel]
		if !ok {
			label = "index"
		}
		for i, el := range val {
			lv := strconv.Itoa(i)
			if obj, isObj := el.(map[string]any); isObj {
				for _, nf := range pw.opts.NameFields {
					if s, isStr := obj[nf].(string); isStr {
						lv = s
						break
					}
				}
			}
			pw.walk(name, rel, append(labels, label+`=`+quoteLabel(lv)), el, true)
		}
	case float64:
		pw.emit(name, labels, strconv.FormatFloat(val, 'g', -1, 64))
	case bool:
		if val {
			pw.emit(name, labels, "1")
		} else {
			pw.emit(name, labels, "0")
		}
	case string:
		pw.emit(name+"_info", append(labels, `value=`+quoteLabel(val)), "1")
	case nil:
		// JSON null: nothing to sample.
	}
}

func (pw *promWriter) emit(name string, labels []string, value string) {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
	_, pw.err = io.WriteString(pw.w, b.String())
}

func join(base, seg string) string {
	if base == "" {
		return seg
	}
	if seg == "" {
		return base
	}
	return base + "_" + seg
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sanitizeName maps an arbitrary JSON key onto the metric-name charset
// [a-zA-Z0-9_]. Dynamic keys (video names) should be routed to labels
// via PromOpts instead; this is the safety net for fixed keys.
func sanitizeName(s string) string {
	ok := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (c >= '0' && c <= '9' && i > 0) {
			continue
		}
		ok = false
		break
	}
	if ok && s != "" {
		return s
	}
	var b strings.Builder
	if s == "" || s[0] >= '0' && s[0] <= '9' {
		b.WriteByte('_')
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// quoteLabel renders a label value with Prometheus escaping (backslash,
// double quote, newline).
func quoteLabel(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\', '"':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
