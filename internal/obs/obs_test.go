package obs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != int(numStages) {
		t.Fatalf("StageNames returned %d names, want %d", len(names), numStages)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" || n == "unknown" {
			t.Fatalf("stage %d has bad name %q", i, n)
		}
		if seen[n] {
			t.Fatalf("duplicate stage name %q", n)
		}
		seen[n] = true
		if got := Stage(i).String(); got != n {
			t.Fatalf("Stage(%d).String() = %q, want %q", i, got, n)
		}
	}
	if got := numStages.String(); got != "unknown" {
		t.Fatalf("out-of-range stage String() = %q, want unknown", got)
	}
}

func TestNewID(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("NewID lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Fatalf("two IDs collided: %s", a)
	}
}

func TestStartTraceResumesID(t *testing.T) {
	tr := StartTrace("deadbeefdeadbeef", "read")
	if tr.ID() != "deadbeefdeadbeef" {
		t.Fatalf("resumed ID = %q", tr.ID())
	}
	minted := StartTrace("", "read")
	if minted.ID() == "" {
		t.Fatal("empty id should mint")
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil ID")
	}
	tr.Observe(StageFetch, time.Millisecond)
	tr.AddSpan(StageFetch, "x", time.Now(), time.Millisecond, nil)
	if snap := tr.Snapshot(Request{}, time.Now()); snap.ID != "" {
		t.Fatal("nil Snapshot should be zero value")
	}
	if !tr.Start().IsZero() {
		t.Fatal("nil Start")
	}
	ctx := WithTrace(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("WithTrace(nil) should not attach")
	}
	if TraceID(ctx) != "" {
		t.Fatal("TraceID of traceless ctx")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil ctx)")
	}
}

func TestTraceObserveAndSnapshot(t *testing.T) {
	tr := StartTrace("", "read")
	tr.Observe(StageFetch, 10*time.Millisecond)
	tr.Observe(StageFetch, 30*time.Millisecond)
	tr.Observe(StageDecode, 5*time.Millisecond)
	tr.Observe(StageDecode, -time.Second) // clamps to 0, still counts
	tr.AddSpan(StageFetch, "failover to node1", tr.Start().Add(2*time.Millisecond), 7*time.Millisecond, errors.New("boom"))

	snap := tr.Snapshot(Request{Video: "cam", Status: 200, Bytes: 42, TTFB: 3 * time.Millisecond}, tr.Start().Add(50*time.Millisecond))
	if snap.ID != tr.ID() || snap.Name != "read" || snap.Video != "cam" || snap.Status != 200 || snap.Bytes != 42 {
		t.Fatalf("snapshot fields wrong: %+v", snap)
	}
	if snap.DurationMillis != 50 || snap.TTFBMillis != 3 {
		t.Fatalf("durations wrong: %+v", snap)
	}
	f := snap.Stages["fetch"]
	if f.Count != 2 || f.Millis != 40 {
		t.Fatalf("fetch stage = %+v", f)
	}
	d := snap.Stages["decode"]
	if d.Count != 2 || d.Millis != 5 {
		t.Fatalf("decode stage = %+v", d)
	}
	if _, ok := snap.Stages["encode"]; ok {
		t.Fatal("unobserved stage should be absent from trace snapshot")
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	sp := snap.Spans[0]
	if sp.Stage != "fetch" || sp.Label != "failover to node1" || sp.Err != "boom" {
		t.Fatalf("span = %+v", sp)
	}
	if sp.OffsetMillis != 2 || sp.DurationMillis != 7 {
		t.Fatalf("span timing = %+v", sp)
	}
	sum := snap.StageSummary()
	if !strings.Contains(sum, "fetch=40.00ms") || !strings.Contains(sum, "decode=5.00ms") {
		t.Fatalf("StageSummary = %q", sum)
	}
	if strings.Index(sum, "fetch") > strings.Index(sum, "decode") {
		t.Fatalf("StageSummary not in canonical order: %q", sum)
	}
}

func TestTraceSpanBound(t *testing.T) {
	tr := StartTrace("", "read")
	for i := 0; i < maxSpans+5; i++ {
		tr.AddSpan(StageFetch, "hop", time.Now(), time.Millisecond, nil)
	}
	snap := tr.Snapshot(Request{}, time.Now())
	if len(snap.Spans) != maxSpans {
		t.Fatalf("spans = %d, want %d", len(snap.Spans), maxSpans)
	}
	if snap.SpansDropped != 5 {
		t.Fatalf("dropped = %d, want 5", snap.SpansDropped)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := StartTrace("", "read")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost on context")
	}
	if TraceID(ctx) != tr.ID() {
		t.Fatal("TraceID mismatch")
	}
}

func TestHist(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.QuantileMillis(0.5) != 0 {
		t.Fatal("empty hist should report zeros")
	}
	// 10 observations at ~1ms, 1 at ~100ms.
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)
	if h.Count() != 11 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.TotalMillis(); got != 110 {
		t.Fatalf("total = %v", got)
	}
	// p50 lands in the 1ms observation's bucket: 1000µs → bits.Len64=10,
	// upper bound 2^10µs = 1.024ms.
	if got := h.QuantileMillis(0.50); got != 1.024 {
		t.Fatalf("p50 = %v", got)
	}
	// p99 must land in the slow outlier's bucket (≥ 100ms upper bound).
	if got := h.QuantileMillis(0.99); got < 100 {
		t.Fatalf("p99 = %v, want >= 100", got)
	}
	// Negative durations clamp rather than corrupt.
	h.Observe(-time.Second)
	if h.Count() != 12 {
		t.Fatal("negative observation not counted")
	}
}

func TestPipelineSnapshotShape(t *testing.T) {
	p := NewPipeline()
	p.Observe(StageFetch, 2*time.Millisecond)
	snap := p.Snapshot()
	if len(snap) != int(numStages) {
		t.Fatalf("snapshot has %d stages, want %d (stable shape)", len(snap), numStages)
	}
	for _, name := range StageNames() {
		if _, ok := snap[name]; !ok {
			t.Fatalf("stage %q missing from snapshot", name)
		}
	}
	if snap["fetch"].Count != 1 || snap["fetch"].TotalMillis != 2 {
		t.Fatalf("fetch = %+v", snap["fetch"])
	}
	if snap["decode"].Count != 0 {
		t.Fatalf("decode = %+v", snap["decode"])
	}

	// Nil pipeline and out-of-range stage are no-ops.
	var nilP *Pipeline
	nilP.Observe(StageFetch, time.Millisecond)
	p.Observe(numStages, time.Millisecond)

	// Package-level Observe folds into pipeline and context trace.
	tr := StartTrace("", "read")
	ctx := WithTrace(context.Background(), tr)
	Observe(ctx, p, StageDecode, 4*time.Millisecond)
	if p.Snapshot()["decode"].Count != 1 {
		t.Fatal("package Observe missed pipeline")
	}
	if tr.Snapshot(Request{}, time.Now()).Stages["decode"].Count != 1 {
		t.Fatal("package Observe missed trace")
	}
	// And tolerates nil pipeline + traceless context.
	Observe(context.Background(), nil, StageDecode, time.Millisecond)
}

func TestSlowRingKeepsSlowest(t *testing.T) {
	r := NewSlowRing(4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for i := 1; i <= 10; i++ {
		r.Add(TraceSnapshot{ID: fmt.Sprintf("t%d", i), DurationMillis: float64(i)})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, want := range []float64{10, 9, 8, 7} {
		if got[i].DurationMillis != want {
			t.Fatalf("snapshot[%d] = %v, want %v (slowest first)", i, got[i].DurationMillis, want)
		}
	}
	// A fast request after the ring is full is rejected on the fast path.
	r.Add(TraceSnapshot{ID: "fast", DurationMillis: 1})
	if len(r.Snapshot()) != 4 || r.Snapshot()[3].DurationMillis != 7 {
		t.Fatal("fast request displaced a slow one")
	}
}

func TestSlowRingAdmitsZeroDurationBeforeFull(t *testing.T) {
	// The floor starts at -1, so zero-duration traces are admitted while
	// the ring is filling (atomic zero value would wrongly reject them).
	r := NewSlowRing(2)
	r.Add(TraceSnapshot{ID: "zero", DurationMillis: 0})
	if len(r.Snapshot()) != 1 {
		t.Fatal("zero-duration trace rejected before ring was full")
	}
}

func TestSlowRingNil(t *testing.T) {
	var r *SlowRing
	r.Add(TraceSnapshot{DurationMillis: 1})
	if r.Snapshot() != nil || r.Cap() != 0 {
		t.Fatal("nil ring should be inert")
	}
}

// TestSlowRingConcurrent hammers the ring from many goroutines; CI runs
// the suite under -race, so this doubles as the required race stress.
func TestSlowRingConcurrent(t *testing.T) {
	r := NewSlowRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				r.Add(TraceSnapshot{
					ID:             NewID(),
					DurationMillis: rng.Float64() * 1000,
				})
				if i%64 == 0 {
					r.Snapshot()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	got := r.Snapshot()
	if len(got) != 16 {
		t.Fatalf("retained %d, want 16", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].DurationMillis > got[i-1].DurationMillis {
			t.Fatal("snapshot not sorted slowest-first")
		}
	}
	// With 16000 uniform samples in [0,1000), the 16 slowest should all
	// be well above the median — sanity, not exactness (admission is
	// deliberately racy at the floor boundary).
	if got[len(got)-1].DurationMillis < 500 {
		t.Fatalf("suspiciously fast trace retained: %v", got[len(got)-1].DurationMillis)
	}
}

func TestPipelineObserveCodec(t *testing.T) {
	p := NewPipeline()
	p.ObserveCodec(StageDecode, "ls", 3*time.Millisecond)
	p.ObserveCodec(StageDecode, "ls", 5*time.Millisecond)
	p.ObserveCodec(StageDecode, "h264", 2*time.Millisecond)
	p.ObserveCodec(StageEncode, "ls", 7*time.Millisecond)

	snap := p.Snapshot()
	// The aggregate stage totals stay complete...
	if snap["decode"].Count != 3 || snap["decode"].TotalMillis != 10 {
		t.Fatalf("decode aggregate = %+v", snap["decode"])
	}
	// ...and each codec gets its breakout row.
	if snap["decode/ls"].Count != 2 || snap["decode/ls"].TotalMillis != 8 {
		t.Fatalf("decode/ls = %+v", snap["decode/ls"])
	}
	if snap["decode/h264"].Count != 1 {
		t.Fatalf("decode/h264 = %+v", snap["decode/h264"])
	}
	if snap["encode/ls"].Count != 1 {
		t.Fatalf("encode/ls = %+v", snap["encode/ls"])
	}

	// Empty codec degrades to the aggregate only; no "decode/" row.
	p.ObserveCodec(StageDecode, "", time.Millisecond)
	if _, ok := p.Snapshot()["decode/"]; ok {
		t.Fatal("empty codec created a breakout row")
	}

	// Nil pipeline and out-of-range stage are no-ops.
	var nilP *Pipeline
	nilP.ObserveCodec(StageDecode, "ls", time.Millisecond)
	p.ObserveCodec(numStages, "ls", time.Millisecond)

	// Package-level ObserveCodec folds into pipeline and context trace.
	tr := StartTrace("", "read")
	ctx := WithTrace(context.Background(), tr)
	ObserveCodec(ctx, p, StageDecode, "raw", 4*time.Millisecond)
	if p.Snapshot()["decode/raw"].Count != 1 {
		t.Fatal("package ObserveCodec missed the pipeline breakout")
	}
}
