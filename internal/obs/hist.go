package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a lock-free power-of-two-bucket latency histogram: bucket i
// counts observations in [2^i, 2^(i+1)) microseconds. Quantiles read
// the bucket upper bound, so they are exact to within 2x — plenty for
// p50/p99 gauges that must cost a few atomic ops per observation. It
// began life as the serving layer's TTFB histogram and is now the
// shared implementation behind every per-stage pipeline histogram.
type Hist struct {
	buckets [32]atomic.Int64
	count   atomic.Int64
	nanos   atomic.Int64 // cumulative observed time (exact, not bucketed)
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	i := bits.Len64(uint64(us))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.nanos.Add(int64(d))
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// TotalMillis returns the exact cumulative observed time.
func (h *Hist) TotalMillis() float64 { return float64(h.nanos.Load()) / 1e6 }

// QuantileMillis returns the q-quantile in milliseconds (0 if empty),
// exact to within 2x (the bucket upper bound).
func (h *Hist) QuantileMillis(q float64) float64 {
	var counts [32]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= target {
			return float64(uint64(1)<<uint(i)) / 1000 // bucket upper bound, µs→ms
		}
	}
	return float64(uint64(1)<<31) / 1000
}
