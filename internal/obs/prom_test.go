package obs

import (
	"strings"
	"testing"
)

func render(t *testing.T, v any, opts PromOpts) string {
	t.Helper()
	var b strings.Builder
	if err := WritePrometheus(&b, "vss", v, opts); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestPromScalars(t *testing.T) {
	out := render(t, map[string]any{
		"reads":   3,
		"ratio":   0.5,
		"healthy": true,
		"down":    false,
		"mode":    "cluster",
		"nothing": nil,
	}, PromOpts{})
	for _, want := range []string{
		"vss_reads 3\n",
		"vss_ratio 0.5\n",
		"vss_healthy 1\n",
		"vss_down 0\n",
		`vss_mode_info{value="cluster"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "nothing") {
		t.Fatalf("null leaf should emit nothing:\n%s", out)
	}
}

func TestPromNestedPath(t *testing.T) {
	out := render(t, map[string]any{
		"cache": map[string]any{"hits": 7, "misses": 2},
	}, PromOpts{})
	if !strings.Contains(out, "vss_cache_hits 7\n") || !strings.Contains(out, "vss_cache_misses 2\n") {
		t.Fatalf("nested paths wrong:\n%s", out)
	}
}

func TestPromLabeledMap(t *testing.T) {
	out := render(t, map[string]any{
		"videos": map[string]any{
			"cam-a": map[string]any{"bytes": 10},
			"cam-b": map[string]any{"bytes": 20},
		},
	}, PromOpts{Labels: map[string]string{"videos": "video"}})
	if !strings.Contains(out, `vss_videos_bytes{video="cam-a"} 10`+"\n") {
		t.Fatalf("labeled map sample missing:\n%s", out)
	}
	if !strings.Contains(out, `vss_videos_bytes{video="cam-b"} 20`+"\n") {
		t.Fatalf("labeled map sample missing:\n%s", out)
	}
	// Deterministic: sorted by key.
	if strings.Index(out, "cam-a") > strings.Index(out, "cam-b") {
		t.Fatalf("labeled map not sorted:\n%s", out)
	}
}

func TestPromLabeledArrayWithNameFields(t *testing.T) {
	v := map[string]any{
		"cluster": map[string]any{
			"node_health": []any{
				map[string]any{"addr": "http://n1", "healthy": true},
				map[string]any{"addr": "http://n2", "healthy": false},
			},
		},
	}
	out := render(t, v, PromOpts{
		Labels:     map[string]string{"cluster_node_health": "node"},
		NameFields: []string{"addr"},
	})
	if !strings.Contains(out, `vss_cluster_node_health_healthy{node="http://n1"} 1`+"\n") {
		t.Fatalf("array element label missing:\n%s", out)
	}
	if !strings.Contains(out, `vss_cluster_node_health_healthy{node="http://n2"} 0`+"\n") {
		t.Fatalf("array element label missing:\n%s", out)
	}
	// addr itself re-renders as an _info sample with both labels.
	if !strings.Contains(out, `vss_cluster_node_health_addr_info{node="http://n1",value="http://n1"} 1`+"\n") {
		t.Fatalf("string field inside labeled element missing:\n%s", out)
	}
}

func TestPromUnlabeledArrayFallsBackToIndex(t *testing.T) {
	out := render(t, map[string]any{"qs": []any{1.5, 2.5}}, PromOpts{})
	if !strings.Contains(out, `vss_qs{index="0"} 1.5`+"\n") || !strings.Contains(out, `vss_qs{index="1"} 2.5`+"\n") {
		t.Fatalf("index fallback wrong:\n%s", out)
	}
}

func TestPromEscaping(t *testing.T) {
	out := render(t, map[string]any{
		"videos": map[string]any{"we\"ird\\name\n": map[string]any{"bytes": 1}},
	}, PromOpts{Labels: map[string]string{"videos": "video"}})
	want := `vss_videos_bytes{video="we\"ird\\name\n"} 1` + "\n"
	if out != want {
		t.Fatalf("escaping wrong:\ngot  %q\nwant %q", out, want)
	}
}

func TestPromNameSanitization(t *testing.T) {
	out := render(t, map[string]any{"p99-ms": 4, "2xx": 9}, PromOpts{})
	if !strings.Contains(out, "vss_p99_ms 4\n") {
		t.Fatalf("dash not sanitized:\n%s", out)
	}
	if !strings.Contains(out, "vss__2xx 9\n") {
		t.Fatalf("digit-leading key not prefixed:\n%s", out)
	}
}

func TestPromStructInput(t *testing.T) {
	type inner struct {
		Count int64   `json:"count"`
		P50   float64 `json:"p50_ms"`
	}
	type snap struct {
		Pipeline map[string]inner `json:"pipeline"`
	}
	out := render(t, snap{Pipeline: map[string]inner{"fetch": {Count: 5, P50: 1.024}}}, PromOpts{})
	if !strings.Contains(out, "vss_pipeline_fetch_count 5\n") {
		t.Fatalf("struct walk wrong:\n%s", out)
	}
	if !strings.Contains(out, "vss_pipeline_fetch_p50_ms 1.024\n") {
		t.Fatalf("struct walk wrong:\n%s", out)
	}
}
