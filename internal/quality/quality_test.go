package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/frame"
)

func TestMSEIdentical(t *testing.T) {
	f := frame.New(8, 8, frame.RGB)
	m, err := MSE(f, f)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 {
		t.Errorf("MSE of identical frames = %f", m)
	}
	if p, _ := PSNR(f, f); p != InfPSNR {
		t.Errorf("PSNR of identical frames = %f, want %f", p, InfPSNR)
	}
}

func TestMSEKnownValue(t *testing.T) {
	a := frame.New(2, 2, frame.Gray)
	b := frame.New(2, 2, frame.Gray)
	b.Data[0] = 10 // one pixel differs by 10 across 4 pixels: MSE = 100/4
	m, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m != 25 {
		t.Errorf("MSE = %f, want 25", m)
	}
}

func TestMSEShapeMismatch(t *testing.T) {
	a := frame.New(4, 4, frame.Gray)
	b := frame.New(4, 5, frame.Gray)
	if _, err := MSE(a, b); err == nil {
		t.Error("expected shape mismatch error")
	}
	c := frame.New(4, 4, frame.RGB)
	if _, err := MSE(a, c); err == nil {
		t.Error("expected format mismatch error")
	}
}

func TestPSNRMonotoneInError(t *testing.T) {
	a := frame.New(8, 8, frame.Gray)
	prev := math.Inf(1)
	for _, noise := range []int{1, 5, 20, 80} {
		b := a.Clone()
		for i := range b.Data {
			b.Data[i] = byte(noise)
		}
		p, err := PSNR(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Errorf("PSNR not monotone: noise %d gave %f >= %f", noise, p, prev)
		}
		prev = p
	}
}

func TestPSNRMSEInverse(t *testing.T) {
	for _, mse := range []float64{0.5, 1, 10, 100, 1000} {
		p := PSNRFromMSE(mse)
		back := MSEFromPSNR(p)
		if math.Abs(back-mse)/mse > 1e-9 {
			t.Errorf("inverse mismatch: mse %f -> psnr %f -> %f", mse, p, back)
		}
	}
	if MSEFromPSNR(InfPSNR) != 0 {
		t.Error("MSEFromPSNR(InfPSNR) should be 0")
	}
}

func TestPSNR40dBNotion(t *testing.T) {
	// MSE that yields exactly 40dB: 255^2 / 10^4 = 6.50.
	p := PSNRFromMSE(6.50)
	if math.Abs(p-Lossless) > 0.01 {
		t.Errorf("PSNR(6.50) = %f, want ~40", p)
	}
}

func TestComposeMSEBoundHolds(t *testing.T) {
	// The paper's bound: MSE(f0,f2) <= 2*(MSE(f0,f1)+MSE(f1,f2)). Verify
	// empirically on random resampling chains.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		f0 := frame.New(32, 32, frame.Gray)
		for i := range f0.Data {
			f0.Data[i] = byte(rng.Intn(256))
		}
		f1 := f0.Resize(16, 16).Resize(32, 32) // lossy step 1
		f2 := f1.Resize(8, 8).Resize(32, 32)   // lossy step 2
		m01, _ := MSE(f0, f1)
		m12, _ := MSE(f1, f2)
		m02, _ := MSE(f0, f2)
		if bound := ComposeMSE(m01, m12); m02 > bound+1e-9 {
			t.Errorf("trial %d: bound violated: MSE02=%f > 2*(%f+%f)=%f", trial, m02, m01, m12, bound)
		}
	}
}

func TestComposeMSEBoundProperty(t *testing.T) {
	// Property form over arbitrary frame triples (not just resampling
	// chains): the bound follows from (a-c)^2 <= 2((a-b)^2 + (b-c)^2).
	rng := rand.New(rand.NewSource(8))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() *frame.Frame {
			f := frame.New(8, 8, frame.Gray)
			for i := range f.Data {
				f.Data[i] = byte(r.Intn(256))
			}
			return f
		}
		f0, f1, f2 := mk(), mk(), mk()
		m01, _ := MSE(f0, f1)
		m12, _ := MSE(f1, f2)
		m02, _ := MSE(f0, f2)
		return m02 <= ComposeMSE(m01, m12)+1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestComposeChain(t *testing.T) {
	if got := ComposeChain(nil); got != 0 {
		t.Errorf("empty chain = %f", got)
	}
	if got := ComposeChain([]float64{5}); got != 5 {
		t.Errorf("single chain = %f", got)
	}
	// ((5,3) -> 16, (16,2) -> 36)
	if got := ComposeChain([]float64{5, 3, 2}); got != 36 {
		t.Errorf("chain = %f, want 36", got)
	}
}

func TestFramesPSNR(t *testing.T) {
	a := []*frame.Frame{frame.New(4, 4, frame.Gray), frame.New(4, 4, frame.Gray)}
	b := []*frame.Frame{a[0].Clone(), a[1].Clone()}
	p, err := FramesPSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p != InfPSNR {
		t.Errorf("identical sequences PSNR = %f", p)
	}
	if _, err := FramesPSNR(a, b[:1]); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestEstimatorInterpolation(t *testing.T) {
	e := NewEstimator(map[float64]float64{1: 30, 3: 40})
	if got := e.Estimate(2); math.Abs(got-35) > 1e-9 {
		t.Errorf("midpoint = %f, want 35", got)
	}
	if got := e.Estimate(0.1); got != 30 {
		t.Errorf("below range = %f, want clamp to 30", got)
	}
	if got := e.Estimate(10); got != 40 {
		t.Errorf("above range = %f, want clamp to 40", got)
	}
}

func TestEstimatorDefaultMonotone(t *testing.T) {
	e := NewEstimator(nil)
	prev := -1.0
	for _, m := range []float64{0.01, 0.05, 0.1, 0.3, 0.7, 1.5, 3, 5} {
		p := e.Estimate(m)
		if p < prev {
			t.Errorf("default curve not monotone at mbpp=%f: %f < %f", m, p, prev)
		}
		prev = p
	}
}

func TestEstimatorObserveRefines(t *testing.T) {
	e := NewEstimator(map[float64]float64{1: 30})
	e.Observe(1.0, 40) // close to existing point: EMA update
	got := e.Estimate(1.0)
	if got <= 30 || got >= 40 {
		t.Errorf("EMA refinement = %f, want between 30 and 40", got)
	}
	n := e.Len()
	e.Observe(5.0, 45) // far away: inserts
	if e.Len() != n+1 {
		t.Errorf("expected insertion, len %d -> %d", n, e.Len())
	}
	e.Observe(0, 10) // invalid rate ignored
	if e.Len() != n+1 {
		t.Error("zero-mbpp observation should be ignored")
	}
}

func TestEstimatorConcurrentSafe(t *testing.T) {
	e := NewEstimator(nil)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			e.Observe(float64(i%10)+0.5, 35)
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		e.Estimate(float64(i % 10))
	}
	<-done
}
