// Package quality implements the VSS quality model u(f0, f) from Section
// 3.2 of the paper: mean-squared error and PSNR between frames, the
// compositional MSE bound that lets VSS reason about transitively resampled
// fragments without access to intermediate pixels, and the bitrate-based
// compression-error estimator (MBPP -> PSNR) refined by periodic exact
// sampling.
package quality

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/frame"
)

// Lossless is the PSNR (dB) at or above which the paper considers a
// fragment lossless (tau = 40 dB); NearLossless is the 30 dB near-lossless
// bound.
const (
	Lossless     = 40.0
	NearLossless = 30.0
)

// InfPSNR is the PSNR reported for identical content (MSE = 0). The paper's
// Table 2 reports values >300 dB for near-perfect recovery; we saturate at
// 350 to keep arithmetic finite.
const InfPSNR = 350.0

// MSE returns the mean-squared error between two frames of identical
// dimensions and format. It errors when shapes differ: VSS always compares
// a candidate against a reference resampled into the candidate's space.
func MSE(a, b *frame.Frame) (float64, error) {
	if a.Width != b.Width || a.Height != b.Height || a.Format != b.Format {
		return 0, fmt.Errorf("quality: shape mismatch %dx%d/%v vs %dx%d/%v",
			a.Width, a.Height, a.Format, b.Width, b.Height, b.Format)
	}
	if len(a.Data) == 0 {
		return 0, fmt.Errorf("quality: empty frame")
	}
	var sum uint64
	for i := range a.Data {
		d := int(a.Data[i]) - int(b.Data[i])
		sum += uint64(d * d)
	}
	return float64(sum) / float64(len(a.Data)), nil
}

// PSNRFromMSE converts MSE into peak signal-to-noise ratio with peak value
// I = 255, saturating at InfPSNR for identical content.
func PSNRFromMSE(mse float64) float64 {
	if mse <= 0 {
		return InfPSNR
	}
	p := 10 * math.Log10(255*255/mse)
	if p > InfPSNR {
		return InfPSNR
	}
	if p < 0 {
		return 0
	}
	return p
}

// MSEFromPSNR inverts PSNRFromMSE.
func MSEFromPSNR(psnr float64) float64 {
	if psnr >= InfPSNR {
		return 0
	}
	return 255 * 255 / math.Pow(10, psnr/10)
}

// PSNR returns the peak signal-to-noise ratio between two frames.
func PSNR(a, b *frame.Frame) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	return PSNRFromMSE(mse), nil
}

// FramesPSNR returns the mean PSNR across a sequence of frame pairs, the
// form used by Table 2 (recovered video vs originally written video).
func FramesPSNR(a, b []*frame.Frame) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("quality: sequence length mismatch %d vs %d", len(a), len(b))
	}
	var sum float64
	for i := range a {
		p, err := PSNR(a[i], b[i])
		if err != nil {
			return 0, err
		}
		sum += p
	}
	return sum / float64(len(a)), nil
}

// ComposeMSE bounds MSE(f0, f2) given MSE(f0, f1) and MSE(f1, f2) using the
// derivation in Section 3.2: MSE(f0,f2) <= 2*(MSE(f0,f1) + MSE(f1,f2)).
// This lets VSS track quality through chains of cached derivations without
// re-decoding the originals.
func ComposeMSE(mse01, mse12 float64) float64 {
	return 2 * (mse01 + mse12)
}

// ComposeChain folds ComposeMSE over a chain of per-step MSEs, bounding the
// end-to-end error of a transitively derived fragment.
func ComposeChain(mses []float64) float64 {
	if len(mses) == 0 {
		return 0
	}
	acc := mses[0]
	for _, m := range mses[1:] {
		acc = ComposeMSE(acc, m)
	}
	return acc
}

// Estimator maps mean bits per pixel (MBPP) to expected PSNR for a codec.
// The paper seeds this mapping from the vbench benchmark and refines it by
// periodically sampling compressed regions, decompressing them, and
// computing exact PSNR. Estimator is safe for concurrent use.
type Estimator struct {
	mu     sync.RWMutex
	points []ratePoint // sorted by mbpp ascending
}

type ratePoint struct {
	mbpp float64
	psnr float64
}

// DefaultRatePoints is the install-time seed table: a monotone
// rate-distortion curve in the regime our simulated codecs occupy. It plays
// the role of the paper's vbench-derived table and is replaced by exact
// samples as reads observe real (rate, PSNR) pairs.
var DefaultRatePoints = map[float64]float64{
	0.02: 24,
	0.05: 28,
	0.10: 31,
	0.25: 35,
	0.50: 39,
	1.00: 43,
	2.00: 47,
	4.00: 50,
}

// NewEstimator builds an estimator seeded with the given mbpp->psnr points
// (DefaultRatePoints if nil).
func NewEstimator(seed map[float64]float64) *Estimator {
	if seed == nil {
		seed = DefaultRatePoints
	}
	e := &Estimator{}
	for m, p := range seed {
		e.points = append(e.points, ratePoint{m, p})
	}
	sort.Slice(e.points, func(i, j int) bool { return e.points[i].mbpp < e.points[j].mbpp })
	return e
}

// Estimate returns the expected PSNR for content compressed at the given
// mean bits per pixel, interpolating piecewise-linearly between known
// points and clamping at the extremes.
func (e *Estimator) Estimate(mbpp float64) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	pts := e.points
	if len(pts) == 0 {
		return NearLossless
	}
	if mbpp <= pts[0].mbpp {
		return pts[0].psnr
	}
	if mbpp >= pts[len(pts)-1].mbpp {
		return pts[len(pts)-1].psnr
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].mbpp >= mbpp })
	lo, hi := pts[i-1], pts[i]
	t := (mbpp - lo.mbpp) / (hi.mbpp - lo.mbpp)
	return lo.psnr + t*(hi.psnr-lo.psnr)
}

// Observe records an exact (mbpp, psnr) sample, replacing the nearest seed
// point when one is close or inserting a new point otherwise. This is the
// paper's periodic-sampling refinement.
func (e *Estimator) Observe(mbpp, psnr float64) {
	if mbpp <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	const relTol = 0.15
	for i := range e.points {
		if math.Abs(e.points[i].mbpp-mbpp) <= relTol*e.points[i].mbpp {
			// Exponential moving average so noisy single samples do not
			// destabilize the curve.
			e.points[i].psnr = 0.7*e.points[i].psnr + 0.3*psnr
			e.points[i].mbpp = 0.7*e.points[i].mbpp + 0.3*mbpp
			return
		}
	}
	e.points = append(e.points, ratePoint{mbpp, psnr})
	sort.Slice(e.points, func(i, j int) bool { return e.points[i].mbpp < e.points[j].mbpp })
}

// Len reports the number of points currently backing the estimator.
func (e *Estimator) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.points)
}
