package baseline

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/frame"
)

// VStore models the staging behaviour of VStore (Xu et al., EuroSys 2019),
// the storage-system baseline of the paper's evaluation. VStore requires
// the workload's formats to be declared a priori; at write time it stages
// the entire video in every declared format, and reads are only possible
// from a staged format — there is no on-demand conversion, no ROI, and no
// partial staging ("even dedicated systems such as VStore transcode entire
// videos, even when only a few frames are needed").
type VStore struct {
	fs      *LocalFS
	formats []StageFormat
}

// StageFormat is one pre-declared staged representation.
type StageFormat struct {
	Name    string
	Codec   codec.ID
	Width   int // 0 = source resolution
	Height  int
	Quality int
}

// NewVStore creates a VStore-like baseline with the declared formats.
// Every write is staged into all of them.
func NewVStore(dir string, formats []StageFormat) (*VStore, error) {
	if len(formats) == 0 {
		return nil, fmt.Errorf("baseline: vstore requires a-priori staged formats")
	}
	fs, err := NewLocalFS(dir)
	if err != nil {
		return nil, err
	}
	return &VStore{fs: fs, formats: formats}, nil
}

func stageName(video, format string) string { return video + "@" + format }

// Write stages the frames in every declared format — the whole video,
// every time, which is VStore's defining cost.
func (v *VStore) Write(video string, frames []*frame.Frame, gopFrames int) error {
	for _, sf := range v.formats {
		staged := frames
		if sf.Width > 0 && sf.Height > 0 && (sf.Width != frames[0].Width || sf.Height != frames[0].Height) {
			staged = make([]*frame.Frame, len(frames))
			for i, f := range frames {
				staged[i] = f.Resize(sf.Width, sf.Height)
			}
		}
		q := sf.Quality
		if q == 0 {
			q = codec.DefaultQuality
		}
		if err := v.fs.Write(stageName(video, sf.Name), staged, sf.Codec, q, gopFrames); err != nil {
			return err
		}
	}
	return nil
}

// ReadGOPs reads a staged representation without decoding. It fails when
// the format was not declared up front — the inflexibility VSS removes.
func (v *VStore) ReadGOPs(video, format string) ([][]byte, error) {
	if !v.has(format) {
		return nil, fmt.Errorf("baseline: vstore format %q was not staged a priori", format)
	}
	return v.fs.ReadGOPs(stageName(video, format))
}

// ReadFrames decodes a staged representation.
func (v *VStore) ReadFrames(video, format string) ([]*frame.Frame, error) {
	if !v.has(format) {
		return nil, fmt.Errorf("baseline: vstore format %q was not staged a priori", format)
	}
	return v.fs.ReadFrames(stageName(video, format))
}

// Size sums the staged representations of a video.
func (v *VStore) Size(video string) (int64, error) {
	var total int64
	for _, sf := range v.formats {
		n, err := v.fs.Size(stageName(video, sf.Name))
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

func (v *VStore) has(format string) bool {
	for _, sf := range v.formats {
		if sf.Name == format {
			return true
		}
	}
	return false
}
