// Package baseline implements the two comparison systems of the paper's
// evaluation (Section 6): direct use of the local file system, and a
// VStore-like staging store. Both speak the same Frame/codec substrate as
// VSS so throughput comparisons are apples-to-apples.
package baseline

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/codec"
	"repro/internal/frame"
)

// LocalFS stores each video as a monolithic file of concatenated GOPs —
// the "Local FS" baseline. It supports writing in one format and reading
// back in that same format (or decoding to raw); it has no notion of
// caching, transcoding, ROI, or resolution change, which is exactly the
// gap VSS fills.
type LocalFS struct {
	dir string
}

// NewLocalFS creates a local-filesystem baseline rooted at dir.
func NewLocalFS(dir string) (*LocalFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return &LocalFS{dir: dir}, nil
}

func (l *LocalFS) path(name string) string { return filepath.Join(l.dir, name+".bin") }

// Write encodes frames into GOPs of gopFrames and appends them to the
// video's file.
func (l *LocalFS) Write(name string, frames []*frame.Frame, cd codec.ID, quality, gopFrames int) error {
	f, err := os.OpenFile(l.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	defer f.Close()
	for i := 0; i < len(frames); i += gopFrames {
		j := i + gopFrames
		if j > len(frames) {
			j = len(frames)
		}
		data, _, err := codec.EncodeGOP(frames[i:j], cd, quality)
		if err != nil {
			return err
		}
		var hdr [8]byte
		putU64(hdr[:], uint64(len(data)))
		if _, err := f.Write(hdr[:]); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if _, err := f.Write(data); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	return nil
}

// ReadGOPs returns the stored GOP bitstreams without decoding (the
// same-format read path).
func (l *LocalFS) ReadGOPs(name string) ([][]byte, error) {
	data, err := os.ReadFile(l.path(name))
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var out [][]byte
	for off := 0; off < len(data); {
		if off+8 > len(data) {
			return nil, fmt.Errorf("baseline: truncated GOP header")
		}
		n := int(getU64(data[off : off+8]))
		off += 8
		if off+n > len(data) {
			return nil, fmt.Errorf("baseline: truncated GOP payload")
		}
		out = append(out, data[off:off+n])
		off += n
	}
	return out, nil
}

// ReadFrames decodes the whole video to frames (the raw read path). The
// local FS must always decode from the start: it has no sub-file index.
func (l *LocalFS) ReadFrames(name string) ([]*frame.Frame, error) {
	gops, err := l.ReadGOPs(name)
	if err != nil {
		return nil, err
	}
	var out []*frame.Frame
	for _, g := range gops {
		frames, _, err := codec.DecodeGOP(g)
		if err != nil {
			return nil, err
		}
		out = append(out, frames...)
	}
	return out, nil
}

// ReadRange decodes only the frames in [from, to) — but, lacking an
// index, it must scan GOP headers from the start of the file, and it
// cannot skip decoding within a covering GOP.
func (l *LocalFS) ReadRange(name string, from, to int) ([]*frame.Frame, error) {
	gops, err := l.ReadGOPs(name)
	if err != nil {
		return nil, err
	}
	var out []*frame.Frame
	base := 0
	for _, g := range gops {
		hd, err := codec.DecodeHeader(g)
		if err != nil {
			return nil, err
		}
		lo, hi := base, base+hd.FrameCount
		if hi > from && lo < to {
			a, b := from-lo, to-lo
			if a < 0 {
				a = 0
			}
			if b > hd.FrameCount {
				b = hd.FrameCount
			}
			frames, _, err := codec.DecodeRange(g, a, b)
			if err != nil {
				return nil, err
			}
			out = append(out, frames...)
		}
		base = hi
		if base >= to {
			break
		}
	}
	return out, nil
}

// Size returns the on-disk size of a video.
func (l *LocalFS) Size(name string) (int64, error) {
	fi, err := os.Stat(l.path(name))
	if err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	return fi.Size(), nil
}

// Delete removes a video.
func (l *LocalFS) Delete(name string) error {
	return os.Remove(l.path(name))
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
