package baseline

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/visualroad"
)

func genFrames(n int) []*frame.Frame {
	return visualroad.Generate(visualroad.Config{Width: 64, Height: 48, FPS: 8, Seed: 61}, n)
}

func TestLocalFSRoundTrip(t *testing.T) {
	fs, err := NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	frames := genFrames(16)
	if err := fs.Write("v", frames, codec.H264, 85, 8); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFrames("v")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Errorf("read %d frames", len(got))
	}
	gops, err := fs.ReadGOPs("v")
	if err != nil || len(gops) != 2 {
		t.Errorf("gops: %v %d", err, len(gops))
	}
	if sz, err := fs.Size("v"); err != nil || sz <= 0 {
		t.Errorf("size: %v %d", err, sz)
	}
}

func TestLocalFSAppend(t *testing.T) {
	fs, _ := NewLocalFS(t.TempDir())
	frames := genFrames(16)
	fs.Write("v", frames[:8], codec.H264, 85, 8)
	fs.Write("v", frames[8:], codec.H264, 85, 8)
	got, err := fs.ReadFrames("v")
	if err != nil || len(got) != 16 {
		t.Errorf("append: %v %d", err, len(got))
	}
}

func TestLocalFSReadRange(t *testing.T) {
	fs, _ := NewLocalFS(t.TempDir())
	frames := genFrames(24)
	fs.Write("v", frames, codec.H264, 85, 8)
	got, err := fs.ReadRange("v", 10, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("range read %d frames", len(got))
	}
	// Range spanning GOP boundary.
	got, err = fs.ReadRange("v", 6, 18)
	if err != nil || len(got) != 12 {
		t.Errorf("spanning range: %v %d", err, len(got))
	}
}

func TestLocalFSErrors(t *testing.T) {
	fs, _ := NewLocalFS(t.TempDir())
	if _, err := fs.ReadFrames("missing"); err == nil {
		t.Error("missing video should error")
	}
	if _, err := fs.Size("missing"); err == nil {
		t.Error("missing size should error")
	}
	fs.Write("v", genFrames(4), codec.H264, 85, 4)
	if err := fs.Delete("v"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadGOPs("v"); err == nil {
		t.Error("deleted video still readable")
	}
}

func TestVStoreStagesAllFormats(t *testing.T) {
	vs, err := NewVStore(t.TempDir(), []StageFormat{
		{Name: "full-h264", Codec: codec.H264},
		{Name: "thumb-raw", Codec: codec.Raw, Width: 32, Height: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.Write("v", genFrames(8), 8); err != nil {
		t.Fatal(err)
	}
	full, err := vs.ReadFrames("v", "full-h264")
	if err != nil || len(full) != 8 {
		t.Fatalf("full: %v %d", err, len(full))
	}
	thumb, err := vs.ReadFrames("v", "thumb-raw")
	if err != nil {
		t.Fatal(err)
	}
	if thumb[0].Width != 32 || thumb[0].Height != 24 {
		t.Errorf("thumb %dx%d", thumb[0].Width, thumb[0].Height)
	}
	if sz, err := vs.Size("v"); err != nil || sz <= 0 {
		t.Errorf("size: %v %d", err, sz)
	}
}

func TestVStoreRejectsUnstagedFormat(t *testing.T) {
	vs, _ := NewVStore(t.TempDir(), []StageFormat{{Name: "h264", Codec: codec.H264}})
	vs.Write("v", genFrames(4), 4)
	if _, err := vs.ReadFrames("v", "hevc"); err == nil {
		t.Error("unstaged format read should fail (a-priori staging)")
	}
	if _, err := vs.ReadGOPs("v", "hevc"); err == nil {
		t.Error("unstaged gop read should fail")
	}
}

func TestVStoreRequiresFormats(t *testing.T) {
	if _, err := NewVStore(t.TempDir(), nil); err == nil {
		t.Error("vstore without declared formats should fail")
	}
}
