package datasets

import (
	"testing"
)

func TestAllDatasetsWellFormed(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("expected the paper's 7 datasets, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, d := range all {
		if seen[d.Name] {
			t.Errorf("duplicate dataset %s", d.Name)
		}
		seen[d.Name] = true
		if d.Width%2 != 0 || d.Height%2 != 0 {
			t.Errorf("%s: odd dimensions %dx%d break the lossy codec", d.Name, d.Width, d.Height)
		}
		if d.Frames < 60 || d.FPS <= 0 {
			t.Errorf("%s: implausible frames=%d fps=%d", d.Name, d.Frames, d.FPS)
		}
		if d.Overlap < 0 || d.Overlap > 0.95 {
			t.Errorf("%s: overlap %f", d.Name, d.Overlap)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("Waymo")
	if err != nil || d.Name != "Waymo" {
		t.Fatalf("ByName: %v %s", err, d.Name)
	}
	if d.Overlap != 0.15 {
		t.Errorf("Waymo overlap %f, want the paper's ~15%%", d.Overlap)
	}
	if _, err := ByName("kitti"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestGenerateRespectsCap(t *testing.T) {
	d, _ := ByName("VisualRoad-1K-30%")
	frames := d.Generate(10)
	if len(frames) != 10 {
		t.Errorf("capped generate returned %d frames", len(frames))
	}
	if frames[0].Width != d.Width || frames[0].Height != d.Height {
		t.Errorf("frame %dx%d", frames[0].Width, frames[0].Height)
	}
}

func TestGeneratePairOverlap(t *testing.T) {
	d, _ := ByName("VisualRoad-1K-50%")
	left, right := d.GeneratePair(2)
	if len(left) != 2 || len(right) != 2 {
		t.Fatalf("pair lengths %d/%d", len(left), len(right))
	}
	// Distinct cameras: frames must differ.
	same := true
	for i := range left[0].Data {
		if left[0].Data[i] != right[0].Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("left and right cameras produced identical frames")
	}
}

func TestResolutionClassGeometry(t *testing.T) {
	// The scaled classes must preserve the paper's 2x-per-step geometry so
	// per-resolution comparisons keep their relative meaning.
	oneK, _ := ByName("VisualRoad-1K-30%")
	twoK, _ := ByName("VisualRoad-2K-30%")
	fourK, _ := ByName("VisualRoad-4K-30%")
	if twoK.Width != 2*oneK.Width || fourK.Width != 4*oneK.Width {
		t.Errorf("width geometry broken: %d, %d, %d", oneK.Width, twoK.Width, fourK.Width)
	}
}
