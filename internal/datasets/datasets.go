// Package datasets defines the evaluation datasets of Table 1 as
// synthetic stand-ins. The paper evaluates on two real capture datasets
// (Oxford RobotCar stereo pairs with very high overlap, and a Waymo Open
// segment with ~15% overlap) plus five Visual Road configurations. The
// real footage is not redistributable and not required: every experiment
// consumes only the datasets' structural properties — resolution class,
// frame count, and inter-camera overlap — which these generators
// reproduce at CPU-friendly scale.
package datasets

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/visualroad"
)

// Dataset names one evaluation dataset.
type Dataset struct {
	Name string
	// Class is the paper's resolution label ("1K", "2K", "4K", or the
	// dataset's native class).
	Class string
	// Width, Height are the scaled working resolutions used here.
	Width, Height int
	// Frames is the scaled frame count.
	Frames int
	// FPS is the nominal frame rate.
	FPS int
	// Overlap is the horizontal overlap between the two cameras (0 for
	// single-stream use).
	Overlap float64
	// Perspective is the inter-camera perspective difference.
	Perspective float64
	// Seed fixes the generated content.
	Seed int64
}

// scale reduces the paper's frame counts so experiments finish on one
// CPU; all comparisons in the evaluation are relative, so shapes survive.
const frameScale = 0.002 // 108k frames -> ~216

// All returns the Table 1 datasets. The paper's resolutions map onto
// scaled equivalents (1K=240x136, 2K=480x272, 4K=960x544) with the same
// 2x-per-step geometry; frame counts scale by frameScale.
func All() []Dataset {
	return []Dataset{
		{Name: "Robotcar", Class: "1280x960", Width: 320, Height: 240, Frames: scaleFrames(7494), FPS: 30, Overlap: 0.8, Perspective: 0.3, Seed: 101},
		{Name: "Waymo", Class: "1920x1280", Width: 480, Height: 320, Frames: 120, FPS: 20, Overlap: 0.15, Perspective: 0.5, Seed: 102},
		{Name: "VisualRoad-1K-30%", Class: "1K", Width: 240, Height: 136, Frames: scaleFrames(108000), FPS: 30, Overlap: 0.30, Perspective: 0.4, Seed: 103},
		{Name: "VisualRoad-1K-50%", Class: "1K", Width: 240, Height: 136, Frames: scaleFrames(108000), FPS: 30, Overlap: 0.50, Perspective: 0.4, Seed: 104},
		{Name: "VisualRoad-1K-75%", Class: "1K", Width: 240, Height: 136, Frames: scaleFrames(108000), FPS: 30, Overlap: 0.75, Perspective: 0.4, Seed: 105},
		{Name: "VisualRoad-2K-30%", Class: "2K", Width: 480, Height: 272, Frames: scaleFrames(108000), FPS: 30, Overlap: 0.30, Perspective: 0.4, Seed: 106},
		{Name: "VisualRoad-4K-30%", Class: "4K", Width: 960, Height: 544, Frames: scaleFrames(108000), FPS: 30, Overlap: 0.30, Perspective: 0.4, Seed: 107},
	}
}

// ByName looks a dataset up.
func ByName(name string) (Dataset, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

func scaleFrames(n int) int {
	s := int(float64(n) * frameScale)
	if s < 60 {
		s = 60
	}
	return s
}

// Config converts the dataset into a Visual Road generator configuration.
func (d Dataset) Config() visualroad.Config {
	return visualroad.Config{
		Width:       d.Width,
		Height:      d.Height,
		FPS:         d.FPS,
		Seed:        d.Seed,
		Overlap:     d.Overlap,
		Perspective: d.Perspective,
	}
}

// Generate renders the single-camera (left) stream, optionally truncated
// to maxFrames (<= 0 means the dataset's full scaled length).
func (d Dataset) Generate(maxFrames int) []*frame.Frame {
	n := d.Frames
	if maxFrames > 0 && maxFrames < n {
		n = maxFrames
	}
	return visualroad.Generate(d.Config(), n)
}

// GeneratePair renders both camera streams.
func (d Dataset) GeneratePair(maxFrames int) (left, right []*frame.Frame) {
	n := d.Frames
	if maxFrames > 0 && maxFrames < n {
		n = maxFrames
	}
	return visualroad.GeneratePair(d.Config(), n)
}
