package app

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/visualroad"
)

const (
	testW, testH = 240, 136
	testFPS      = 8
	testFrames   = 48
)

func buildVSS(t *testing.T) *Monitor {
	t.Helper()
	s, err := core.Open(t.TempDir(), core.Options{GOPFrames: 8, BudgetMultiple: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	frames := visualroad.Generate(visualroad.Config{Width: testW, Height: testH, FPS: testFPS, Seed: 81}, testFrames)
	if err := s.Create("cam", -1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("cam", core.WriteSpec{FPS: testFPS, Codec: codec.H264, Quality: 90}, frames); err != nil {
		t.Fatal(err)
	}
	return &Monitor{Backend: &VSSBackend{Store: s}, FPS: testFPS, IndexEvery: 4, ThumbW: 120, ThumbH: 68}
}

func buildFS(t *testing.T) *Monitor {
	t.Helper()
	fs, err := baseline.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	frames := visualroad.Generate(visualroad.Config{Width: testW, Height: testH, FPS: testFPS, Seed: 81}, testFrames)
	if err := fs.Write("cam", frames, codec.H264, 90, 8); err != nil {
		t.Fatal(err)
	}
	return &Monitor{Backend: &FSBackend{FS: fs, FPS: testFPS}, FPS: testFPS, IndexEvery: 4, ThumbW: 120, ThumbH: 68}
}

func runPipeline(t *testing.T, m *Monitor) ([]IndexEntry, []Clip) {
	t.Helper()
	index, err := m.Index("cam")
	if err != nil {
		t.Fatal(err)
	}
	if len(index) == 0 {
		t.Fatal("indexing found no vehicles in the traffic scene")
	}
	matches := m.Search(index, [3]float64{210, 40, 40}) // red vehicle
	if len(matches) == 0 {
		t.Fatal("search found no red vehicles")
	}
	clips, err := m.Retrieve("cam", matches, 1.0, float64(testFrames)/float64(testFPS))
	if err != nil {
		t.Fatal(err)
	}
	if len(clips) == 0 {
		t.Fatal("no clips retrieved")
	}
	for _, c := range clips {
		if len(c.GOPs) == 0 {
			t.Error("clip missing encoded data")
		}
	}
	return index, clips
}

func TestPipelineOnVSS(t *testing.T) {
	m := buildVSS(t)
	runPipeline(t, m)
}

func TestPipelineOnFS(t *testing.T) {
	m := buildFS(t)
	runPipeline(t, m)
}

func TestBothBackendsAgreeOnIndex(t *testing.T) {
	// The two variants must index essentially the same content: same
	// sampled frames with detections (detector runs on slightly different
	// pixels after VSS's codec round trip, so allow small divergence).
	iv, _ := runPipeline(t, buildVSS(t))
	if_, _ := runPipeline(t, buildFS(t))
	diff := len(iv) - len(if_)
	if diff < 0 {
		diff = -diff
	}
	if diff > 2 {
		t.Errorf("index sizes diverge: vss=%d fs=%d", len(iv), len(if_))
	}
}

func TestSearchColorFilter(t *testing.T) {
	m := buildVSS(t)
	index, err := m.Index("cam")
	if err != nil {
		t.Fatal(err)
	}
	// A color far from every palette entry matches nothing.
	if got := m.Search(index, [3]float64{5, 250, 250}); len(got) != 0 {
		t.Errorf("implausible color matched %d entries", len(got))
	}
}

func TestRetrieveMergesOverlaps(t *testing.T) {
	m := buildVSS(t)
	index, _ := m.Index("cam")
	matches := m.Search(index, [3]float64{210, 40, 40})
	if len(matches) < 2 {
		t.Skip("need multiple matches")
	}
	clips, err := m.Retrieve("cam", matches, 2.0, float64(testFrames)/float64(testFPS))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(clips); i++ {
		if clips[i].Start < clips[i-1].End {
			t.Error("overlapping clips not merged")
		}
	}
}
