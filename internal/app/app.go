// Package app implements the end-to-end intersection-monitoring
// application of Section 6.4 of the paper: (i) an indexing phase that
// detects automobiles in every Nth frame, (ii) a search phase that finds
// indexed detections matching a queried vehicle color, and (iii) a
// streaming content-retrieval phase that extracts video clips around the
// matches. The same application logic runs against VSS or against the
// OpenCV-style local-filesystem variant, so the comparison isolates the
// storage manager.
package app

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/frame"
)

// IndexEntry records the detections of one sampled frame.
type IndexEntry struct {
	FrameIdx   int
	Detections []detect.Detection
}

// Clip is one retrieved video segment.
type Clip struct {
	Start, End float64 // seconds
	GOPs       [][]byte
	Frames     []*frame.Frame
}

// Backend abstracts the storage layer under the application.
type Backend interface {
	// ReadLowRes returns every frame at thumbnail resolution for
	// indexing.
	ReadLowRes(video string, w, h int) ([]*frame.Frame, error)
	// ReadClip retrieves [start, end) seconds as an h264 clip.
	ReadClip(video string, start, end float64) (Clip, error)
}

// VSSBackend serves the application from a VSS store.
type VSSBackend struct {
	Store *core.Store
}

// ReadLowRes reads the whole video at thumbnail resolution; VSS caches
// the result, so the search phase's repeat access is nearly free.
func (b *VSSBackend) ReadLowRes(video string, w, h int) ([]*frame.Frame, error) {
	res, err := b.Store.Read(video, core.ReadSpec{
		S: core.Spatial{Width: w, Height: h},
		P: core.Physical{Format: frame.RGB},
	})
	if err != nil {
		return nil, err
	}
	return res.Frames, nil
}

// ReadClip asks VSS for an h264 clip; the planner exploits any cached
// views covering the range.
func (b *VSSBackend) ReadClip(video string, start, end float64) (Clip, error) {
	res, err := b.Store.Read(video, core.ReadSpec{
		T: core.Temporal{Start: start, End: end},
		P: core.Physical{Codec: codec.H264},
	})
	if err != nil {
		return Clip{}, err
	}
	return Clip{Start: start, End: end, GOPs: res.GOPs}, nil
}

// FSBackend is the OpenCV-style variant: a monolithic file per video,
// full decode on every access, explicit transcode for clips.
type FSBackend struct {
	FS  *baseline.LocalFS
	FPS int
}

// ReadLowRes decodes the entire video and downsamples every frame — there
// is no cache to reuse.
func (b *FSBackend) ReadLowRes(video string, w, h int) ([]*frame.Frame, error) {
	frames, err := b.FS.ReadFrames(video)
	if err != nil {
		return nil, err
	}
	out := make([]*frame.Frame, len(frames))
	for i, f := range frames {
		rgb := f
		if f.Format != frame.RGB {
			rgb = f.Convert(frame.RGB)
		}
		out[i] = rgb.Resize(w, h)
	}
	return out, nil
}

// ReadClip decodes up to the clip and re-encodes it as h264. Like the
// paper's OpenCV variant, the monolithic file has no temporal index, so
// seeking decodes sequentially from the start of the stream (OpenCV's
// CAP_PROP_POS_FRAMES behaviour on indexless streams).
func (b *FSBackend) ReadClip(video string, start, end float64) (Clip, error) {
	from := int(start * float64(b.FPS))
	to := int(end * float64(b.FPS))
	all, err := b.FS.ReadFrames(video)
	if err != nil {
		return Clip{}, err
	}
	if from < 0 {
		from = 0
	}
	if to > len(all) {
		to = len(all)
	}
	frames := all[from:to]
	if len(frames) == 0 {
		return Clip{}, fmt.Errorf("app: empty clip [%f, %f)", start, end)
	}
	data, _, err := codec.EncodeGOP(frames, codec.H264, codec.DefaultQuality)
	if err != nil {
		return Clip{}, err
	}
	return Clip{Start: start, End: end, GOPs: [][]byte{data}}, nil
}

// Monitor is the application.
type Monitor struct {
	Backend Backend
	FPS     int
	// IndexEvery samples every Nth frame during indexing (paper: every
	// ten frames).
	IndexEvery int
	// ThumbW, ThumbH is the indexing resolution.
	ThumbW, ThumbH int
}

// Index runs the indexing phase: low-resolution read plus per-sampled-
// frame vehicle detection.
func (m *Monitor) Index(video string) ([]IndexEntry, error) {
	every := m.IndexEvery
	if every <= 0 {
		every = 10
	}
	frames, err := m.Backend.ReadLowRes(video, m.ThumbW, m.ThumbH)
	if err != nil {
		return nil, err
	}
	var entries []IndexEntry
	for i := 0; i < len(frames); i += every {
		dets := detect.Vehicles(frames[i])
		if len(dets) > 0 {
			entries = append(entries, IndexEntry{FrameIdx: i, Detections: dets})
		}
	}
	return entries, nil
}

// Search finds indexed frames containing a vehicle whose mean color is
// within distance 50 of the query (the paper's matching rule).
func (m *Monitor) Search(index []IndexEntry, color [3]float64) []IndexEntry {
	var out []IndexEntry
	for _, e := range index {
		for _, d := range e.Detections {
			if detect.ColorDistance(d.Color, color) <= 50 {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// Retrieve extracts clips of clipSeconds around each matched frame,
// merging overlapping requests.
func (m *Monitor) Retrieve(video string, matches []IndexEntry, clipSeconds float64, duration float64) ([]Clip, error) {
	var clips []Clip
	var lastEnd float64 = -1
	for _, e := range matches {
		t := float64(e.FrameIdx) / float64(m.FPS)
		start := t - clipSeconds/2
		if start < 0 {
			start = 0
		}
		end := start + clipSeconds
		if end > duration {
			end = duration
			start = end - clipSeconds
			if start < 0 {
				start = 0
			}
		}
		if start < lastEnd {
			continue // overlaps the previous clip
		}
		clip, err := m.Backend.ReadClip(video, start, end)
		if err != nil {
			return nil, err
		}
		clips = append(clips, clip)
		lastEnd = end
	}
	return clips, nil
}
