package detect

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/visualroad"
)

func TestDetectsVehiclesInScene(t *testing.T) {
	frames := visualroad.Generate(visualroad.Config{Width: 240, Height: 136, FPS: 8, Seed: 11, Vehicles: 6}, 1)
	dets := Vehicles(frames[0])
	if len(dets) < 2 {
		t.Fatalf("detected %d vehicles, want >= 2", len(dets))
	}
	for _, d := range dets {
		if d.Box.Empty() {
			t.Error("empty detection box")
		}
	}
}

func TestNoDetectionsOnEmptyRoad(t *testing.T) {
	frames := visualroad.Generate(visualroad.Config{Width: 240, Height: 136, FPS: 8, Seed: 12, Vehicles: 1}, 1)
	// Blank the frame to pure road gray: no vehicles must be found.
	f := frames[0]
	for i := 0; i < f.Width*f.Height; i++ {
		f.Data[i*3], f.Data[i*3+1], f.Data[i*3+2] = 70, 70, 74
	}
	if dets := Vehicles(f); len(dets) != 0 {
		t.Errorf("detected %d vehicles on blank road", len(dets))
	}
}

func TestDetectionColorMatchesDrawnVehicle(t *testing.T) {
	f := frame.New(64, 48, frame.RGB)
	for i := 0; i < 64*48; i++ {
		f.Data[i*3], f.Data[i*3+1], f.Data[i*3+2] = 70, 70, 74
	}
	// Draw a red "vehicle".
	for y := 20; y < 28; y++ {
		for x := 10; x < 26; x++ {
			f.SetRGB(x, y, 210, 40, 40)
		}
	}
	dets := Vehicles(f)
	if len(dets) != 1 {
		t.Fatalf("detections: %d", len(dets))
	}
	if d := ColorDistance(dets[0].Color, [3]float64{210, 40, 40}); d > 30 {
		t.Errorf("color distance %f", d)
	}
	if !dets[0].Box.Contains(frame.Rect{X0: 12, Y0: 22, X1: 24, Y1: 26}) {
		t.Errorf("box %+v misses the vehicle", dets[0].Box)
	}
}

func TestAspectFilterRejectsStripes(t *testing.T) {
	f := frame.New(128, 48, frame.RGB)
	// A 100x2 stripe in vehicle red: aspect 50, must be rejected.
	for y := 10; y < 12; y++ {
		for x := 10; x < 110; x++ {
			f.SetRGB(x, y, 210, 40, 40)
		}
	}
	if dets := Vehicles(f); len(dets) != 0 {
		t.Errorf("stripe detected as vehicle: %d", len(dets))
	}
}

func TestYUVInputConverted(t *testing.T) {
	frames := visualroad.Generate(visualroad.Config{Width: 240, Height: 136, FPS: 8, Seed: 13, Vehicles: 6}, 1)
	yuv := frames[0].Convert(frame.YUV420)
	if dets := Vehicles(yuv); len(dets) < 1 {
		t.Errorf("no detections through yuv conversion: %d", len(dets))
	}
}

// TestVehicleLUTMatchesExactTest sweeps the color cube and checks that the
// tri-state lookup table agrees with the exact palette-distance test on
// every color: lutIn and lutOut cells must be uniformly in or out, and the
// combined LUT-plus-fallback classification must equal isVehicleColor.
func TestVehicleLUTMatchesExactTest(t *testing.T) {
	lutOnce.Do(buildVehicleLUT)
	for r := 0; r < 256; r += 1 {
		for g := 0; g < 256; g += 3 {
			for b := 0; b < 256; b += 5 {
				exact := isVehicleColor(r, g, b)
				switch vehicleLUT[((r>>lutShift)*lutDim+(g>>lutShift))*lutDim+(b>>lutShift)] {
				case lutIn:
					if !exact {
						t.Fatalf("LUT says all-in but (%d,%d,%d) is not a vehicle color", r, g, b)
					}
				case lutOut:
					if exact {
						t.Fatalf("LUT says all-out but (%d,%d,%d) is a vehicle color", r, g, b)
					}
				}
			}
		}
	}
}

// BenchmarkVehicles measures the detector on a busy synthetic scene — the
// per-frame cost every ingest-time summarization pays.
func BenchmarkVehicles(b *testing.B) {
	frames := visualroad.Generate(visualroad.Config{Width: 240, Height: 136, FPS: 8, Seed: 11, Vehicles: 6}, 1)
	b.SetBytes(int64(len(frames[0].Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Vehicles(frames[0])
	}
}
