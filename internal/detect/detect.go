// Package detect implements the automobile detector used by the
// end-to-end application experiment (Section 6.4). The paper runs YOLOv4
// through OpenCV; this stdlib-only reproduction substitutes a color/shape
// blob detector over the synthetic Visual Road scenes — the storage-layer
// claims under evaluation depend only on the decode-heavy per-frame
// inference pattern, not on detector quality.
package detect

import (
	"math"
	"sort"

	"repro/internal/frame"
	"repro/internal/visualroad"
)

// Detection is one detected vehicle.
type Detection struct {
	Box frame.Rect
	// Color is the dominant RGB inside the box — the largest bin of a
	// coarse color histogram, matching the paper's search rule ("the
	// Euclidean distance between the largest bin and the search color").
	Color [3]float64
}

// minArea filters specks; maxAspect filters implausible shapes.
const (
	minArea   = 12
	maxAspect = 6.0
)

// Vehicles detects vehicle-colored blobs in an RGB frame via palette
// matching and connected components.
func Vehicles(f *frame.Frame) []Detection {
	src := f
	if f.Format != frame.RGB {
		src = f.Convert(frame.RGB)
	}
	w, h := src.Width, src.Height
	mask := make([]bool, w*h)
	for i := 0; i < w*h; i++ {
		r := int(src.Data[i*3])
		g := int(src.Data[i*3+1])
		b := int(src.Data[i*3+2])
		if isVehicleColor(r, g, b) {
			mask[i] = true
		}
	}
	labels := make([]int32, w*h)
	var boxes []frame.Rect
	var stack []int
	for i := 0; i < w*h; i++ {
		if !mask[i] || labels[i] != 0 {
			continue
		}
		label := int32(len(boxes) + 1)
		box := frame.Rect{X0: w, Y0: h, X1: 0, Y1: 0}
		stack = append(stack[:0], i)
		labels[i] = label
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			px, py := p%w, p/w
			if px < box.X0 {
				box.X0 = px
			}
			if py < box.Y0 {
				box.Y0 = py
			}
			if px+1 > box.X1 {
				box.X1 = px + 1
			}
			if py+1 > box.Y1 {
				box.Y1 = py + 1
			}
			for _, q := range [4]int{p - 1, p + 1, p - w, p + w} {
				if q < 0 || q >= w*h {
					continue
				}
				if (q == p-1 && px == 0) || (q == p+1 && px == w-1) {
					continue
				}
				if mask[q] && labels[q] == 0 {
					labels[q] = label
					stack = append(stack, q)
				}
			}
		}
		boxes = append(boxes, box)
	}
	var out []Detection
	for _, box := range boxes {
		if box.Area() < minArea {
			continue
		}
		aspect := float64(box.Dx()) / float64(box.Dy())
		if aspect > maxAspect || aspect < 1/maxAspect {
			continue
		}
		out = append(out, Detection{Box: box, Color: dominantColor(src, box)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Box.X0 < out[j].Box.X0 })
	return out
}

// isVehicleColor matches the saturated palette vehicles are drawn in,
// rejecting the scene's grays, greens, and sky blues.
func isVehicleColor(r, g, b int) bool {
	for _, p := range visualroad.VehiclePalette {
		dr, dg, db := r-int(p[0]), g-int(p[1]), b-int(p[2])
		if dr*dr+dg*dg+db*db < 48*48 {
			return true
		}
	}
	return false
}

// dominantColor computes a coarse 3D color histogram (4 levels per
// channel) over the box and returns the mean color of the fullest cell —
// the vehicle body color, undiluted by windows and wheels.
func dominantColor(f *frame.Frame, box frame.Rect) [3]float64 {
	const levels = 4
	var count [levels * levels * levels]int
	var sum [levels * levels * levels][3]float64
	for y := box.Y0; y < box.Y1; y++ {
		for x := box.X0; x < box.X1; x++ {
			i := (y*f.Width + x) * 3
			r, g, b := int(f.Data[i]), int(f.Data[i+1]), int(f.Data[i+2])
			cell := (r/64)*levels*levels + (g/64)*levels + b/64
			count[cell]++
			sum[cell][0] += float64(r)
			sum[cell][1] += float64(g)
			sum[cell][2] += float64(b)
		}
	}
	best := 0
	for c := 1; c < len(count); c++ {
		if count[c] > count[best] {
			best = c
		}
	}
	if count[best] == 0 {
		return [3]float64{}
	}
	return [3]float64{
		sum[best][0] / float64(count[best]),
		sum[best][1] / float64(count[best]),
		sum[best][2] / float64(count[best]),
	}
}

// ColorDistance returns the Euclidean distance between a detection's mean
// color and a query color; the end-to-end app considers a detection a
// match when this is <= 50 (Section 6.4).
func ColorDistance(c [3]float64, query [3]float64) float64 {
	var s float64
	for i := range c {
		d := c[i] - query[i]
		s += d * d
	}
	return math.Sqrt(s)
}
