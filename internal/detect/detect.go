// Package detect implements the automobile detector used by the
// end-to-end application experiment (Section 6.4). The paper runs YOLOv4
// through OpenCV; this stdlib-only reproduction substitutes a color/shape
// blob detector over the synthetic Visual Road scenes — the storage-layer
// claims under evaluation depend only on the decode-heavy per-frame
// inference pattern, not on detector quality.
package detect

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"

	"repro/internal/frame"
	"repro/internal/visualroad"
)

// Detection is one detected vehicle.
type Detection struct {
	Box frame.Rect
	// Color is the dominant RGB inside the box — the largest bin of a
	// coarse color histogram, matching the paper's search rule ("the
	// Euclidean distance between the largest bin and the search color").
	Color [3]float64
}

// minArea filters specks; maxAspect filters implausible shapes.
const (
	minArea   = 12
	maxAspect = 6.0
)

// detectScratch holds the per-call mask, candidate, and flood-fill
// buffers. Ingest summarization runs the detector on every frame written,
// so these are pooled instead of reallocated per frame. The mask needs no
// clearing between frames: it starts zeroed, the scan loop sets only
// matched pixels, and the flood fill consumes every one of them (each
// candidate is either a blob seed or swallowed by an earlier blob), so
// the mask is all-false again when Vehicles returns.
type detectScratch struct {
	mask  []bool
	cand  []int32
	stack []int
}

var scratchPool = sync.Pool{New: func() any { return new(detectScratch) }}

// grab returns a mask buffer of at least n entries (contents arbitrary).
func (s *detectScratch) grab(n int) {
	if cap(s.mask) < n {
		s.mask = make([]bool, n)
	}
	s.mask = s.mask[:n]
}

// Vehicles detects vehicle-colored blobs in an RGB frame via palette
// matching and connected components.
func Vehicles(f *frame.Frame) []Detection {
	src := f
	if f.Format != frame.RGB {
		src = f.Convert(frame.RGB)
	}
	w, h := src.Width, src.Height
	lutOnce.Do(buildVehicleLUT)
	sc := scratchPool.Get().(*detectScratch)
	defer scratchPool.Put(sc)
	sc.grab(w * h)
	mask := sc.mask
	data := src.Data[: 3*w*h : 3*w*h]
	cand := sc.cand[:0] // indices of matched pixels, ascending
	// One 4-byte load per pixel (the classification is the ingest hot
	// loop); the LUT index folds the three channel shifts into shift-mask
	// arithmetic on the loaded word. The last pixel has no 4th byte to
	// over-read, so it takes the byte-wise tail below.
	i, j := 0, 0
	for ; j+4 <= len(data); i, j = i+1, j+3 {
		x := binary.LittleEndian.Uint32(data[j:])
		v := vehicleLUT[(x&0xF8)<<7|(x>>6)&0x3E0|(x>>19)&0x1F]
		if v != lutOut && (v == lutIn || isVehicleColor(int(x&0xFF), int(x>>8&0xFF), int(x>>16&0xFF))) {
			mask[i] = true
			cand = append(cand, int32(i))
		}
	}
	for ; j < len(data); i, j = i+1, j+3 {
		r, g, b := int(data[j]), int(data[j+1]), int(data[j+2])
		v := vehicleLUT[((r>>lutShift)*lutDim+(g>>lutShift))*lutDim+(b>>lutShift)]
		if v != lutOut && (v == lutIn || isVehicleColor(r, g, b)) {
			mask[i] = true
			cand = append(cand, int32(i))
		}
	}
	// Connected components, seeded from the sparse candidate list instead
	// of rescanning the frame. The flood fill consumes mask entries (a
	// pixel is cleared when pushed), so the mask doubles as the visited
	// set and candidates swallowed by an earlier blob skip naturally.
	// Stack entries pack coordinates as py<<16|px, trading the pop-time
	// div/mod for one multiply.
	var boxes []frame.Rect
	stack := sc.stack[:0]
	for _, c := range cand {
		i := int(c)
		if !mask[i] {
			continue
		}
		box := frame.Rect{X0: w, Y0: h, X1: 0, Y1: 0}
		stack = append(stack[:0], i/w<<16|i%w)
		mask[i] = false
		for len(stack) > 0 {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			px, py := e&0xffff, e>>16
			p := py*w + px
			if px < box.X0 {
				box.X0 = px
			}
			if py < box.Y0 {
				box.Y0 = py
			}
			if px+1 > box.X1 {
				box.X1 = px + 1
			}
			if py+1 > box.Y1 {
				box.Y1 = py + 1
			}
			if px > 0 && mask[p-1] {
				mask[p-1] = false
				stack = append(stack, e-1)
			}
			if px < w-1 && mask[p+1] {
				mask[p+1] = false
				stack = append(stack, e+1)
			}
			if py > 0 && mask[p-w] {
				mask[p-w] = false
				stack = append(stack, e-1<<16)
			}
			if py < h-1 && mask[p+w] {
				mask[p+w] = false
				stack = append(stack, e+1<<16)
			}
		}
		boxes = append(boxes, box)
	}
	sc.cand, sc.stack = cand, stack // keep the grown buffers for the next frame
	var out []Detection
	for _, box := range boxes {
		if box.Area() < minArea {
			continue
		}
		aspect := float64(box.Dx()) / float64(box.Dy())
		if aspect > maxAspect || aspect < 1/maxAspect {
			continue
		}
		out = append(out, Detection{Box: box, Color: dominantColor(src, box)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Box.X0 < out[j].Box.X0 })
	return out
}

// isVehicleColor matches the saturated palette vehicles are drawn in,
// rejecting the scene's grays, greens, and sky blues.
func isVehicleColor(r, g, b int) bool {
	for _, p := range visualroad.VehiclePalette {
		dr, dg, db := r-int(p[0]), g-int(p[1]), b-int(p[2])
		if dr*dr+dg*dg+db*db < 48*48 {
			return true
		}
	}
	return false
}

// vehicleLUT pre-classifies the color cube against the palette in
// 8x8x8-wide cells so the per-pixel palette test is one table lookup
// almost everywhere. Cells are tri-state: every color in the cell matches
// some palette entry (lutIn), no color in the cell matches any (lutOut),
// or the cell straddles a palette sphere's surface and the pixel falls
// back to the exact distance test (lutEdge) — so the classification is
// exactly isVehicleColor, just cheaper. 8-wide cells keep the whole table
// at 32KB (L1-resident; 4-wide cells made a 256KB table whose random
// per-pixel accesses missed cache) while the palette spheres (radius 48)
// are still far coarser than a cell, so edge-cell fallbacks stay rare.
// Built once on first use.
const (
	lutShift = 3
	lutDim   = 256 >> lutShift
)

// The scan loop's shift-mask index derivation is specialized to 8-wide
// cells; this trips at compile time if lutShift changes without it.
var _ = [1]struct{}{}[lutShift-3]

const (
	lutOut = uint8(iota)
	lutIn
	lutEdge
)

var (
	vehicleLUT [lutDim * lutDim * lutDim]uint8
	lutOnce    sync.Once
)

func buildVehicleLUT() {
	const cw = 1 << lutShift // cell width per channel
	for ri := 0; ri < lutDim; ri++ {
		for gi := 0; gi < lutDim; gi++ {
			for bi := 0; bi < lutDim; bi++ {
				allIn, allOut := false, true
				for _, p := range visualroad.VehiclePalette {
					pal := [3]int{int(p[0]), int(p[1]), int(p[2])}
					lo3 := [3]int{ri * cw, gi * cw, bi * cw}
					minD, maxD := 0, 0
					for ch := 0; ch < 3; ch++ {
						lo, hi, t := lo3[ch], lo3[ch]+cw-1, pal[ch]
						switch {
						case t < lo:
							minD += (lo - t) * (lo - t)
						case t > hi:
							minD += (t - hi) * (t - hi)
						}
						dl, dh := t-lo, hi-t
						if dl < 0 {
							dl = -dl
						}
						if dh < 0 {
							dh = -dh
						}
						if dl < dh {
							dl = dh
						}
						maxD += dl * dl
					}
					if maxD < 48*48 {
						allIn = true
					}
					if minD < 48*48 {
						allOut = false
					}
				}
				v := lutEdge
				if allIn {
					v = lutIn
				} else if allOut {
					v = lutOut
				}
				vehicleLUT[(ri*lutDim+gi)*lutDim+bi] = v
			}
		}
	}
}

// dominantColor computes a coarse 3D color histogram (4 levels per
// channel) over the box and returns the mean color of the fullest cell —
// the vehicle body color, undiluted by windows and wheels.
func dominantColor(f *frame.Frame, box frame.Rect) [3]float64 {
	const levels = 4
	var count [levels * levels * levels]int
	var sum [levels * levels * levels][3]int
	for y := box.Y0; y < box.Y1; y++ {
		for x := box.X0; x < box.X1; x++ {
			i := (y*f.Width + x) * 3
			r, g, b := int(f.Data[i]), int(f.Data[i+1]), int(f.Data[i+2])
			cell := (r/64)*levels*levels + (g/64)*levels + b/64
			count[cell]++
			sum[cell][0] += r
			sum[cell][1] += g
			sum[cell][2] += b
		}
	}
	best := 0
	for c := 1; c < len(count); c++ {
		if count[c] > count[best] {
			best = c
		}
	}
	if count[best] == 0 {
		return [3]float64{}
	}
	return [3]float64{
		float64(sum[best][0]) / float64(count[best]),
		float64(sum[best][1]) / float64(count[best]),
		float64(sum[best][2]) / float64(count[best]),
	}
}

// ColorDistance returns the Euclidean distance between a detection's mean
// color and a query color; the end-to-end app considers a detection a
// match when this is <= 50 (Section 6.4).
func ColorDistance(c [3]float64, query [3]float64) float64 {
	var s float64
	for i := range c {
		d := c[i] - query[i]
		s += d * d
	}
	return math.Sqrt(s)
}
