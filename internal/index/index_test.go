package index

import (
	"testing"
)

func spans3() []Span {
	return []Span{
		{Seq: 0, Start: 0, End: 1},
		{Seq: 1, Start: 1, End: 3},
		{Seq: 2, Start: 3, End: 6},
	}
}

func TestNewTemporalValidates(t *testing.T) {
	if _, err := NewTemporal([]Span{{0, 1, 1}}); err == nil {
		t.Error("empty span should error")
	}
	if _, err := NewTemporal([]Span{{0, 0, 2}, {1, 1, 3}}); err == nil {
		t.Error("overlapping spans should error")
	}
	if _, err := NewTemporal(spans3()); err != nil {
		t.Errorf("valid spans: %v", err)
	}
	if _, err := NewTemporal(nil); err != nil {
		t.Errorf("empty index: %v", err)
	}
}

func TestAt(t *testing.T) {
	idx, _ := NewTemporal(spans3())
	cases := []struct {
		at   float64
		seq  int
		want bool
	}{
		{0, 0, true},
		{0.99, 0, true},
		{1, 1, true},
		{2.5, 1, true},
		{5.999, 2, true},
		{6, 0, false},
		{-0.1, 0, false},
	}
	for _, c := range cases {
		got, ok := idx.At(c.at)
		if ok != c.want {
			t.Errorf("At(%f) ok = %v, want %v", c.at, ok, c.want)
			continue
		}
		if ok && got.Seq != c.seq {
			t.Errorf("At(%f) = seq %d, want %d", c.at, got.Seq, c.seq)
		}
	}
}

func TestCovering(t *testing.T) {
	idx, _ := NewTemporal(spans3())
	got := idx.Covering(0.5, 3.5)
	if len(got) != 3 {
		t.Fatalf("covering [0.5,3.5): %d spans", len(got))
	}
	got = idx.Covering(1, 3)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("covering [1,3): %+v", got)
	}
	if got := idx.Covering(10, 20); got != nil {
		t.Errorf("out of range covering: %+v", got)
	}
	if got := idx.Covering(3, 3); got != nil {
		t.Errorf("empty interval covering: %+v", got)
	}
	// Boundary: [3, 3.0001) touches only span 2.
	got = idx.Covering(3, 3.0001)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Errorf("boundary covering: %+v", got)
	}
}

func TestBounds(t *testing.T) {
	idx, _ := NewTemporal(spans3())
	s, e := idx.Bounds()
	if s != 0 || e != 6 {
		t.Errorf("bounds [%f, %f)", s, e)
	}
	empty, _ := NewTemporal(nil)
	if s, e := empty.Bounds(); s != 0 || e != 0 {
		t.Errorf("empty bounds [%f, %f)", s, e)
	}
	if empty.Len() != 0 {
		t.Error("empty len")
	}
}

func TestTemporalGapAllowed(t *testing.T) {
	// Non-contiguous spans are legal (evicted middle GOPs leave gaps).
	idx, err := NewTemporal([]Span{{0, 0, 1}, {2, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := idx.At(3); ok {
		t.Error("gap time should not resolve")
	}
	got := idx.Covering(0, 10)
	if len(got) != 2 {
		t.Errorf("covering across gap: %+v", got)
	}
}

func TestFingerprints(t *testing.T) {
	fp, err := NewFingerprints(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Two tight groups of fragments.
	for i := 0; i < 4; i++ {
		if err := fp.Add(i, []float64{0.1 * float64(i%2), 0}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 14; i++ {
		fp.Add(i, []float64{5 + 0.1*float64(i%2), 0})
	}
	if fp.Len() != 8 {
		t.Errorf("len %d", fp.Len())
	}
	groups := fp.CandidateGroups(2)
	if len(groups) < 2 {
		t.Fatalf("groups: %v", groups)
	}
	for _, g := range groups {
		low, high := false, false
		for _, id := range g {
			if id < 10 {
				low = true
			} else {
				high = true
			}
		}
		if low && high {
			t.Error("candidate group mixes distant fragments")
		}
	}
	if err := fp.Add(0, []float64{0, 0}); err == nil {
		t.Error("duplicate id should error")
	}
	if v, ok := fp.Vector(1); !ok || len(v) != 2 {
		t.Error("vector lookup failed")
	}
	if _, ok := fp.Vector(999); ok {
		t.Error("missing vector reported present")
	}
}
