// Package index provides VSS's two index structures: the non-clustered
// temporal index that maps time to the GOP files containing the associated
// visual information (Figure 2 of the paper), and the fingerprint index
// used to find joint-compression candidates (Section 5.1.3).
package index

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
)

// Span maps a GOP (by sequence number within its physical video) to the
// half-open time interval [Start, End) it covers, in seconds on the
// logical video's timeline.
type Span struct {
	Seq   int
	Start float64
	End   float64
}

// Temporal is the per-physical-video time index. Spans are contiguous and
// ascending; lookup is binary search.
type Temporal struct {
	spans []Span
}

// NewTemporal builds a temporal index. Spans must be sorted by Start,
// non-empty intervals, and non-overlapping.
func NewTemporal(spans []Span) (*Temporal, error) {
	for i, s := range spans {
		if s.End <= s.Start {
			return nil, fmt.Errorf("index: span %d empty [%f, %f)", i, s.Start, s.End)
		}
		if i > 0 && s.Start < spans[i-1].End {
			return nil, fmt.Errorf("index: span %d overlaps predecessor", i)
		}
	}
	return &Temporal{spans: append([]Span(nil), spans...)}, nil
}

// Len returns the number of spans.
func (t *Temporal) Len() int { return len(t.spans) }

// At returns the span containing time `at`, if any.
func (t *Temporal) At(at float64) (Span, bool) {
	i := sort.Search(len(t.spans), func(i int) bool { return t.spans[i].End > at })
	if i < len(t.spans) && t.spans[i].Start <= at {
		return t.spans[i], true
	}
	return Span{}, false
}

// Covering returns the spans intersecting [t1, t2), in order.
func (t *Temporal) Covering(t1, t2 float64) []Span {
	if t2 <= t1 {
		return nil
	}
	i := sort.Search(len(t.spans), func(i int) bool { return t.spans[i].End > t1 })
	var out []Span
	for ; i < len(t.spans) && t.spans[i].Start < t2; i++ {
		out = append(out, t.spans[i])
	}
	return out
}

// Bounds returns the overall [start, end) covered by the index.
func (t *Temporal) Bounds() (float64, float64) {
	if len(t.spans) == 0 {
		return 0, 0
	}
	return t.spans[0].Start, t.spans[len(t.spans)-1].End
}

// Fingerprints is the incremental fingerprint index over video fragments:
// a BIRCH CF-tree of feature vectors (color histograms plus thumbnails,
// computed by internal/vision) keyed by caller-assigned fragment ids. VSS
// uses it to propose joint compression candidates without any camera
// metadata.
type Fingerprints struct {
	tree    *cluster.Tree
	vectors map[int][]float64
}

// NewFingerprints creates an index; threshold is the BIRCH radius bound in
// fingerprint space.
func NewFingerprints(threshold float64) (*Fingerprints, error) {
	tree, err := cluster.NewTree(threshold, 8)
	if err != nil {
		return nil, err
	}
	return &Fingerprints{tree: tree, vectors: make(map[int][]float64)}, nil
}

// Add inserts a fragment fingerprint.
func (f *Fingerprints) Add(id int, vec []float64) error {
	if _, dup := f.vectors[id]; dup {
		return fmt.Errorf("index: duplicate fragment id %d", id)
	}
	if _, err := f.tree.Insert(id, vec); err != nil {
		return err
	}
	f.vectors[id] = vec
	return nil
}

// Len reports the number of indexed fragments.
func (f *Fingerprints) Len() int { return len(f.vectors) }

// Vector returns the stored fingerprint for a fragment.
func (f *Fingerprints) Vector(id int) ([]float64, bool) {
	v, ok := f.vectors[id]
	return v, ok
}

// CandidateGroups returns clusters of fragment ids ordered tightest-first,
// restricted to clusters with at least minItems members. These are the
// groups within which VSS searches for overlapping pairs.
func (f *Fingerprints) CandidateGroups(minItems int) [][]int {
	if minItems < 2 {
		minItems = 2
	}
	var out [][]int
	for _, e := range f.tree.ClustersByRadius(minItems) {
		out = append(out, append([]int(nil), e.Items...))
	}
	return out
}
