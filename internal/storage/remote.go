package storage

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"time"
)

// NodeClient is the GOP-plane client surface of one vssd node: the wire
// operations Remote maps Backend calls onto. internal/server.Client
// implements it over the /gops endpoints; the interface lives here so
// this package never imports the server that is itself built on top of
// it. Implementations report missing GOPs with errors matching
// fs.ErrNotExist AND carrying an HTTPStatus() int of 404, and surface
// every other non-2xx response through HTTPStatus too — that is how
// Remote tells a client fault (never retried) from a transient transport
// or server failure (retried with backoff).
type NodeClient interface {
	// Addr identifies the node (its base URL) for health labels.
	Addr() string
	// Health probes the node's /healthz endpoint.
	Health(ctx context.Context) error
	GOPWrite(ctx context.Context, video, physDir string, seq int, data []byte) error
	GOPRead(ctx context.Context, video, physDir string, seq int) ([]byte, error)
	GOPStat(ctx context.Context, video, physDir string, seq int) (int64, error)
	GOPDelete(ctx context.Context, video, physDir string, seq int) error
	GOPLink(ctx context.Context, video, srcDir string, srcSeq int, dstVideo, dstDir string, dstSeq int) error
	GOPDeletePhysical(ctx context.Context, video, physDir string) error
	GOPDeleteVideo(ctx context.Context, video string) error
	GOPWalk(ctx context.Context, fn func(video, physDir string, seq int, size int64) error) error
}

// RemoteOptions tune a Remote backend's retry behavior.
type RemoteOptions struct {
	// Attempts is the total tries per operation (first call + retries)
	// for transient failures. 0 selects the default of 3; 1 disables
	// retries.
	Attempts int
	// Backoff is the wait before the first retry; each further retry
	// doubles it. 0 selects the default of 25ms.
	Backoff time.Duration
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 25 * time.Millisecond
	}
	return o
}

// Remote is a Backend that stores GOPs on one vssd node over the wire
// protocol, through a NodeClient with a keep-alive transport. It is the
// unit the router composes into a replicated fleet; on its own it turns
// any single vssd into network-attached GOP storage.
//
// Semantics relative to the Backend contract:
//
//   - Missing GOPs are normalized to errors matching fs.ErrNotExist,
//     whatever the client returned for the node's 404.
//   - Transient failures — transport errors (connection refused, reset,
//     timeout) and 5xx responses — are retried with exponential backoff
//     up to RemoteOptions.Attempts. 4xx responses are the caller's or
//     the protocol's fault and are never retried. Every wire operation
//     is idempotent (PUT/GET/DELETE of absolute addresses), so a retry
//     after an ambiguous failure is safe.
//   - Walk is NOT retried: the walk streams entries to fn as they
//     arrive, so a mid-stream retry would revisit addresses. A truncated
//     walk surfaces as an error instead.
type Remote struct {
	node NodeClient
	opts RemoteOptions
}

// NewRemote wraps one node client as a Backend.
func NewRemote(node NodeClient, opts RemoteOptions) *Remote {
	return &Remote{node: node, opts: opts.withDefaults()}
}

// Name identifies the backend kind.
func (r *Remote) Name() string { return "remote" }

// Addr returns the node's address (the client's base URL).
func (r *Remote) Addr() string { return r.node.Addr() }

// Ping probes the node's health endpoint (no retries — callers poll).
func (r *Remote) Ping(ctx context.Context) error { return r.node.Health(ctx) }

// httpStatus extracts the HTTP status carried by an error chain, or 0
// for transport-level errors that never got a response.
func httpStatus(err error) int {
	var sc interface{ HTTPStatus() int }
	if errors.As(err, &sc) {
		return sc.HTTPStatus()
	}
	return 0
}

// retryable reports whether an operation that failed with err may be
// re-sent: transport errors and 5xx yes, 4xx and cancellation no.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	code := httpStatus(err)
	return code == 0 || code >= 500
}

// normalize maps a wire error onto the Backend contract: 404 responses
// gain an fs.ErrNotExist chain if the client did not already provide one.
func normalize(err error) error {
	if err == nil || errors.Is(err, fs.ErrNotExist) {
		return err
	}
	if httpStatus(err) == 404 {
		return fmt.Errorf("%w: %w", fs.ErrNotExist, err)
	}
	return err
}

// retry runs op up to opts.Attempts times, backing off between tries,
// and normalizes the final error.
func (r *Remote) retry(op func() error) error {
	return r.retryCtx(context.Background(), op)
}

// retryCtx is retry with a caller context: the backoff wait aborts when
// ctx is done, returning the operation's own (normalized) error — the
// caller cares what the node said, not that it stopped waiting.
func (r *Remote) retryCtx(ctx context.Context, op func() error) error {
	backoff := r.opts.Backoff
	var err error
	for attempt := 0; attempt < r.opts.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return normalize(err)
			}
			backoff *= 2
		}
		if err = op(); err == nil || !retryable(err) {
			break
		}
	}
	return normalize(err)
}

func (r *Remote) WriteGOP(video, physDir string, seq int, data []byte) error {
	return r.retry(func() error {
		return r.node.GOPWrite(context.Background(), video, physDir, seq, data)
	})
}

func (r *Remote) ReadGOP(video, physDir string, seq int) ([]byte, error) {
	return r.ReadGOPContext(context.Background(), video, physDir, seq)
}

// ReadGOPContext is ReadGOP with the caller's context on the wire: the
// node client sees ctx (so a trace ID on it rides the request header,
// and cancellation aborts the HTTP round trip) and the retry backoff
// stops waiting when ctx is done.
func (r *Remote) ReadGOPContext(ctx context.Context, video, physDir string, seq int) ([]byte, error) {
	var data []byte
	err := r.retryCtx(ctx, func() error {
		var err error
		data, err = r.node.GOPRead(ctx, video, physDir, seq)
		return err
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

func (r *Remote) GOPSize(video, physDir string, seq int) (int64, error) {
	var n int64
	err := r.retry(func() error {
		var err error
		n, err = r.node.GOPStat(context.Background(), video, physDir, seq)
		return err
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

func (r *Remote) DeleteGOP(video, physDir string, seq int) error {
	return r.retry(func() error {
		return r.node.GOPDelete(context.Background(), video, physDir, seq)
	})
}

func (r *Remote) LinkGOP(video, srcDir string, srcSeq int, dstVideo, dstDir string, dstSeq int) error {
	return r.retry(func() error {
		return r.node.GOPLink(context.Background(), video, srcDir, srcSeq, dstVideo, dstDir, dstSeq)
	})
}

func (r *Remote) DeletePhysical(video, physDir string) error {
	return r.retry(func() error {
		return r.node.GOPDeletePhysical(context.Background(), video, physDir)
	})
}

func (r *Remote) DeleteVideo(video string) error {
	return r.retry(func() error {
		return r.node.GOPDeleteVideo(context.Background(), video)
	})
}

func (r *Remote) Walk(fn func(video, physDir string, seq int, size int64) error) error {
	// No retry: entries already delivered to fn cannot be taken back.
	return normalize(r.node.GOPWalk(context.Background(), fn))
}
