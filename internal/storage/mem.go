package storage

import (
	"fmt"
	"io/fs"
	"sort"
	"sync"
)

// Mem is an in-memory Backend: a map from GOP address to bytes. It
// exists for tests and IO-free benchmarking (the decode pipeline's
// compute ceiling), and as the simplest possible reference for the
// Backend contract. Contents do not survive the process.
type Mem struct {
	mu   sync.RWMutex
	gops map[memKey][]byte
}

type memKey struct {
	video string
	phys  string
	seq   int
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{gops: make(map[memKey][]byte)}
}

// sharedMems backs SharedMem: one Mem per key, for the lifetime of the
// process.
var (
	sharedMemMu sync.Mutex
	sharedMems  = map[string]*Mem{}
)

// SharedMem returns a process-wide in-memory backend for key (by
// convention the store directory), creating it on first use. It makes
// close-and-reopen cycles work under the mem backend the way they do on
// a filesystem — the data is still there — which is what lets an entire
// filesystem-oriented test suite run against Mem for backend parity.
func SharedMem(key string) *Mem {
	sharedMemMu.Lock()
	defer sharedMemMu.Unlock()
	m, ok := sharedMems[key]
	if !ok {
		m = NewMem()
		sharedMems[key] = m
	}
	return m
}

// Name identifies the backend kind.
func (m *Mem) Name() string { return "mem" }

func (m *Mem) WriteGOP(video, physDir string, seq int, data []byte) error {
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	m.gops[memKey{video, physDir, seq}] = cp
	m.mu.Unlock()
	return nil
}

func (m *Mem) ReadGOP(video, physDir string, seq int) ([]byte, error) {
	m.mu.RLock()
	data, ok := m.gops[memKey{video, physDir, seq}]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: mem %s/%s/%d.gop: %w", video, physDir, seq, fs.ErrNotExist)
	}
	// Return a copy: localfs hands every reader a fresh buffer, and read
	// bytes can flow to API callers verbatim (passthrough reads), whose
	// mutations must not reach back into the store — backend parity over
	// a copy-free fast path.
	return append([]byte(nil), data...), nil
}

func (m *Mem) GOPSize(video, physDir string, seq int) (int64, error) {
	m.mu.RLock()
	data, ok := m.gops[memKey{video, physDir, seq}]
	m.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("storage: mem %s/%s/%d.gop: %w", video, physDir, seq, fs.ErrNotExist)
	}
	return int64(len(data)), nil
}

func (m *Mem) DeleteGOP(video, physDir string, seq int) error {
	m.mu.Lock()
	delete(m.gops, memKey{video, physDir, seq})
	m.mu.Unlock()
	return nil
}

// LinkGOP copies the value reference: stored slices are never mutated
// in place (writes replace them, reads hand out copies), so source and
// destination share bytes exactly like a hard link, and deleting one
// never disturbs the other.
func (m *Mem) LinkGOP(video, srcDir string, srcSeq int, dstVideo, dstDir string, dstSeq int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.gops[memKey{video, srcDir, srcSeq}]
	if !ok {
		return fmt.Errorf("storage: mem %s/%s/%d.gop: %w", video, srcDir, srcSeq, fs.ErrNotExist)
	}
	m.gops[memKey{dstVideo, dstDir, dstSeq}] = data
	return nil
}

func (m *Mem) DeletePhysical(video, physDir string) error {
	m.mu.Lock()
	for k := range m.gops {
		if k.video == video && k.phys == physDir {
			delete(m.gops, k)
		}
	}
	m.mu.Unlock()
	return nil
}

func (m *Mem) DeleteVideo(video string) error {
	m.mu.Lock()
	for k := range m.gops {
		if k.video == video {
			delete(m.gops, k)
		}
	}
	m.mu.Unlock()
	return nil
}

// Walk visits a snapshot of the stored GOPs in deterministic
// (video, physDir, seq) order.
func (m *Mem) Walk(fn func(video, physDir string, seq int, size int64) error) error {
	m.mu.RLock()
	keys := make([]memKey, 0, len(m.gops))
	sizes := make(map[memKey]int64, len(m.gops))
	for k, v := range m.gops {
		keys = append(keys, k)
		sizes[k] = int64(len(v))
	}
	m.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.video != b.video {
			return a.video < b.video
		}
		if a.phys != b.phys {
			return a.phys < b.phys
		}
		return a.seq < b.seq
	})
	for _, k := range keys {
		if err := fn(k.video, k.phys, k.seq, sizes[k]); err != nil {
			return err
		}
	}
	return nil
}
