package storage

import "testing"

// TestShardedPlacementStable pins the property multi-process agreement
// rests on: shard placement is a pure function of the GOP address and
// the root list, so a store reopened with the same roots finds every
// GOP, and the GOPs do actually spread across shards.
func TestShardedPlacementStable(t *testing.T) {
	dir := t.TempDir()
	roots := []string{dir + "/s0", dir + "/s1", dir + "/s2"}
	s1, err := OpenSharded(roots)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	for seq := 0; seq < n; seq++ {
		if err := s1.WriteGOP("cam", "p000001-640x360r30.h264", seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	used := map[int]int{}
	for seq := 0; seq < n; seq++ {
		used[s1.shardOf("cam", "p000001-640x360r30.h264", seq)]++
	}
	if len(used) < 2 {
		t.Errorf("all %d GOPs landed on one shard: %v", n, used)
	}
	// Reopen (a second process) and read everything back.
	s2, err := OpenSharded(roots)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < n; seq++ {
		got, err := s2.ReadGOP("cam", "p000001-640x360r30.h264", seq)
		if err != nil || len(got) != 1 || got[0] != byte(seq) {
			t.Fatalf("seq %d after reopen: %v %v", seq, err, got)
		}
	}
}

// TestShardedDegradedShard verifies the failure model: a GOP on a dead
// shard errors per GOP while GOPs on healthy shards keep serving.
func TestShardedDegradedShard(t *testing.T) {
	dir := t.TempDir()
	roots := []string{dir + "/s0", dir + "/s1"}
	s, err := OpenSharded(roots)
	if err != nil {
		t.Fatal(err)
	}
	// Find two seqs on different shards.
	seqOn := map[int]int{} // shard -> seq
	for seq := 0; len(seqOn) < 2 && seq < 64; seq++ {
		sh := s.shardOf("v", "p1", seq)
		if _, ok := seqOn[sh]; !ok {
			seqOn[sh] = seq
		}
		if err := s.WriteGOP("v", "p1", seq, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Degrade shard 1 by replacing its tree behind the store's back.
	if err := s.shards[1].DeleteVideo("v"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadGOP("v", "p1", seqOn[1]); err == nil {
		t.Error("read from degraded shard succeeded")
	}
	if _, err := s.ReadGOP("v", "p1", seqOn[0]); err != nil {
		t.Errorf("healthy shard affected: %v", err)
	}
}
