package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// openReplicated builds the standard replication fixture: 4 roots under
// one temp dir, 2 copies of every GOP.
func openReplicated(t *testing.T) (*Sharded, []string) {
	t.Helper()
	dir := t.TempDir()
	roots := make([]string, 4)
	for i := range roots {
		roots[i] = filepath.Join(dir, fmt.Sprintf("root%d", i))
	}
	s, err := OpenShardedReplicated(roots, 2)
	if err != nil {
		t.Fatal(err)
	}
	return s, roots
}

// payload returns a deterministic per-seq GOP payload.
func payload(seq int) []byte {
	return bytes.Repeat([]byte{byte('a' + seq%23)}, 128+seq)
}

// wipeRoot deletes one root's contents (the dead-disk-swapped-for-empty
// scenario: the directory exists and is writable, its data is gone).
func wipeRoot(t *testing.T, root string) {
	t.Helper()
	if err := os.RemoveAll(root); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
}

func TestOpenShardedReplicatedValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenShardedReplicated([]string{dir + "/a"}, 2); err == nil {
		t.Error("2 replicas over 1 root succeeded")
	}
	s, err := OpenShardedReplicated([]string{dir + "/a", dir + "/b"}, 0)
	if err != nil || s.Replicas() != 1 {
		t.Errorf("replicas<1 not clamped to 1: %v %d", err, s.Replicas())
	}
}

// TestReplicatedPlacement pins the placement contract: R distinct shards,
// primary first, and the R=1 placement a prefix of the R=2 one (what
// makes raising -replicas on an existing store safe).
func TestReplicatedPlacement(t *testing.T) {
	s, _ := openReplicated(t)
	for seq := 0; seq < 64; seq++ {
		p := s.placement("v", "p1", seq)
		if len(p) != 2 || p[0] == p[1] {
			t.Fatalf("seq %d: placement %v", seq, p)
		}
		if p[0] != s.shardOf("v", "p1", seq) {
			t.Fatalf("seq %d: primary %d != shardOf %d", seq, p[0], s.shardOf("v", "p1", seq))
		}
		if p[1] != (p[0]+1)%s.Shards() {
			t.Fatalf("seq %d: successor %v", seq, p)
		}
	}
}

// TestReplicatedWriteFansOut verifies every write lands on both
// placement shards (shard-direct reads, not failover).
func TestReplicatedWriteFansOut(t *testing.T) {
	s, _ := openReplicated(t)
	for seq := 0; seq < 16; seq++ {
		if err := s.WriteGOP("v", "p1", seq, payload(seq)); err != nil {
			t.Fatal(err)
		}
		for _, i := range s.placement("v", "p1", seq) {
			got, err := s.shards[i].ReadGOP("v", "p1", seq)
			if err != nil || !bytes.Equal(got, payload(seq)) {
				t.Fatalf("seq %d replica on shard %d: %v", seq, i, err)
			}
		}
	}
}

// TestReplicatedReadFailover is the headline failure drill: with
// replicas=2 over 4 roots, wiping ANY single root leaves every GOP
// readable and byte-identical, with the detours visible in the failover
// counter and the wiped shard's error counter.
func TestReplicatedReadFailover(t *testing.T) {
	s, roots := openReplicated(t)
	const n = 40
	for seq := 0; seq < n; seq++ {
		if err := s.WriteGOP("v", "p1", seq, payload(seq)); err != nil {
			t.Fatal(err)
		}
	}
	wipeRoot(t, roots[1])
	for seq := 0; seq < n; seq++ {
		got, err := s.ReadGOP("v", "p1", seq)
		if err != nil || !bytes.Equal(got, payload(seq)) {
			t.Fatalf("seq %d after root wipe: %v", seq, err)
		}
		if sz, err := s.GOPSize("v", "p1", seq); err != nil || sz != int64(len(payload(seq))) {
			t.Fatalf("seq %d size after root wipe: %d %v", seq, sz, err)
		}
	}
	st := s.ReplicationStats()
	if st.Failovers == 0 {
		t.Error("no failovers recorded despite a wiped root")
	}
	if st.ShardHealth[1].Errors == 0 {
		t.Errorf("wiped shard not charged: %+v", st.ShardHealth)
	}
	for _, i := range []int{0, 2, 3} {
		if st.ShardHealth[i].Errors != 0 {
			t.Errorf("healthy shard %d charged: %+v", i, st.ShardHealth[i])
		}
	}
}

// TestReplicatedMissingGOPBlamesNobody: a GOP missing from EVERY replica
// is a legitimate miss (eviction races), not a shard failure — health
// counters must stay clean and the error chain must keep fs.ErrNotExist.
func TestReplicatedMissingGOPBlamesNobody(t *testing.T) {
	s, _ := openReplicated(t)
	if _, err := s.ReadGOP("v", "p1", 7); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing read error %v", err)
	}
	for i, h := range s.ReplicationStats().ShardHealth {
		if h.Errors != 0 {
			t.Errorf("shard %d charged for a genuinely-missing GOP: %+v", i, h)
		}
	}
}

// TestScrubRepairsWipedRoot wipes one root and verifies a scrub restores
// every lost replica: every address is back on both placement shards,
// byte-identical, with Unrecoverable == 0.
func TestScrubRepairsWipedRoot(t *testing.T) {
	s, roots := openReplicated(t)
	const n = 40
	for seq := 0; seq < n; seq++ {
		if err := s.WriteGOP("v", "p1", seq, payload(seq)); err != nil {
			t.Fatal(err)
		}
	}
	wipeRoot(t, roots[2])
	st, err := s.Scrub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checked != n || st.Unrecoverable != 0 || st.Repaired == 0 {
		t.Fatalf("scrub stats %+v", st)
	}
	for seq := 0; seq < n; seq++ {
		for _, i := range s.placement("v", "p1", seq) {
			got, err := s.shards[i].ReadGOP("v", "p1", seq)
			if err != nil || !bytes.Equal(got, payload(seq)) {
				t.Fatalf("seq %d replica on shard %d not restored: %v", seq, i, err)
			}
		}
	}
	if rep := s.ReplicationStats(); rep.Scrubs != 1 || rep.LastScrub != st {
		t.Errorf("replication stats did not record the scrub: %+v", rep)
	}
	// A second scrub finds nothing to do.
	st, err = s.Scrub(nil)
	if err != nil || st.Repaired != 0 || st.Unrecoverable != 0 {
		t.Errorf("second scrub not a no-op: %+v %v", st, err)
	}
}

// TestScrubRepairsShortReplica truncates one replica in place (torn by a
// dying disk, not by our atomic writes) and verifies the scrub re-copies
// it from the intact copy — largest-copy-wins when no oracle is given.
func TestScrubRepairsShortReplica(t *testing.T) {
	s, roots := openReplicated(t)
	want := payload(3)
	if err := s.WriteGOP("v", "p1", 3, want); err != nil {
		t.Fatal(err)
	}
	victim := s.placement("v", "p1", 3)[1]
	path := filepath.Join(roots[victim], "v", "p1", "3.gop")
	if err := os.Truncate(path, int64(len(want)/2)); err != nil {
		t.Fatal(err)
	}
	st, err := s.Scrub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repaired != 1 || st.Unrecoverable != 0 {
		t.Fatalf("scrub stats %+v", st)
	}
	got, err := s.shards[victim].ReadGOP("v", "p1", 3)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("short replica not repaired: %v (%d bytes, want %d)", err, len(got), len(want))
	}
}

// TestScrubOracleBeatsLargestCopy pins the divergence rule that protects
// rewrites: when a GOP was rewritten smaller (deferred lossless
// compression) and one replica missed the write, the catalog's expected
// size — not the larger stale copy — decides which replica is healthy.
func TestScrubOracleBeatsLargestCopy(t *testing.T) {
	s, _ := openReplicated(t)
	stale := bytes.Repeat([]byte{'S'}, 200)
	fresh := bytes.Repeat([]byte{'F'}, 80)
	if err := s.WriteGOP("v", "p1", 5, stale); err != nil {
		t.Fatal(err)
	}
	// The rewrite reaches only the primary; the successor keeps the
	// stale 200-byte copy.
	p := s.placement("v", "p1", 5)
	if err := s.shards[p[0]].WriteGOP("v", "p1", 5, fresh); err != nil {
		t.Fatal(err)
	}
	oracle := StaticSizes{GOPAddr{"v", "p1", 5}: int64(len(fresh))}
	st, err := s.Scrub(oracle)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repaired != 1 || st.Unrecoverable != 0 {
		t.Fatalf("scrub stats %+v", st)
	}
	for _, i := range p {
		got, err := s.shards[i].ReadGOP("v", "p1", 5)
		if err != nil || !bytes.Equal(got, fresh) {
			t.Fatalf("shard %d holds %d bytes after oracle scrub, want fresh copy: %v", i, len(got), err)
		}
	}

	// Without the oracle the stale copy would have won; with an oracle
	// that disclaims the address entirely, the file is an orphan and the
	// divergence is left alone.
	if err := s.shards[p[1]].WriteGOP("v", "p1", 5, stale); err != nil {
		t.Fatal(err)
	}
	st, err = s.Scrub(StaticSizes{})
	if err != nil || st.Orphans == 0 || st.Repaired != 0 {
		t.Fatalf("orphan scrub stats %+v %v", st, err)
	}
}

// TestScrubCountsTotalLoss: an address the oracle expects but NO shard
// holds must be counted unrecoverable — the walk can't see it, so only
// the oracle enumeration can report the loss.
func TestScrubCountsTotalLoss(t *testing.T) {
	s, _ := openReplicated(t)
	if err := s.WriteGOP("v", "p1", 0, payload(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteGOP("v", "p1", 1, payload(1)); err != nil {
		t.Fatal(err)
	}
	// Lose every copy of seq 1 behind the store's back.
	for _, i := range s.placement("v", "p1", 1) {
		if err := s.shards[i].DeleteGOP("v", "p1", 1); err != nil {
			t.Fatal(err)
		}
	}
	oracle := StaticSizes{
		{"v", "p1", 0}: int64(len(payload(0))),
		{"v", "p1", 1}: int64(len(payload(1))),
	}
	st, err := s.Scrub(oracle)
	if err != nil {
		t.Fatal(err)
	}
	if st.Unrecoverable != 1 || st.Checked != 2 {
		t.Fatalf("scrub stats %+v, want the lost address counted unrecoverable", st)
	}
}

// TestReadGOPExpectSkipsStaleReplica pins the failover rule that keeps
// reads working inside the rewrite-divergence window: when the primary
// holds a stale (wrong-sized) copy, a size-hinted read serves the fresh
// replica instead of failing, and when NO replica matches the hint the
// caller's expectation is presumed stale and the live bytes win.
func TestReadGOPExpectSkipsStaleReplica(t *testing.T) {
	s, _ := openReplicated(t)
	stale := bytes.Repeat([]byte{'S'}, 200)
	fresh := bytes.Repeat([]byte{'F'}, 80)
	if err := s.WriteGOP("v", "p1", 9, fresh); err != nil {
		t.Fatal(err)
	}
	p := s.placement("v", "p1", 9)
	// A rewrite that "missed" the successor: primary stale, successor fresh.
	if err := s.shards[p[0]].WriteGOP("v", "p1", 9, stale); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadGOPExpect("v", "p1", 9, int64(len(fresh)))
	if err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("expect-read served %d bytes, want the fresh replica: %v", len(got), err)
	}
	// Plain read would have served the stale primary.
	got, err = s.ReadGOP("v", "p1", 9)
	if err != nil || !bytes.Equal(got, stale) {
		t.Fatalf("plain read: %v (%d bytes)", err, len(got))
	}
	// A hint nothing matches falls back to the live bytes.
	got, err = s.ReadGOPExpect("v", "p1", 9, 999)
	if err != nil || len(got) == 0 {
		t.Fatalf("mismatched-hint read: %v (%d bytes)", err, len(got))
	}
	// A missing GOP still reports not-exist, without the fallback re-read.
	if _, err := s.ReadGOPExpect("v", "p1", 99, 10); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing expect-read error %v", err)
	}
}

// TestReplicatedDemotion drives one shard into repeated failure and
// checks it demotes to last resort, then re-promotes on its first
// success.
func TestReplicatedDemotion(t *testing.T) {
	s, roots := openReplicated(t)
	// Replace root 3 with a regular file: every operation that needs its
	// directory tree now fails with ENOTDIR (a real failure, unlike a
	// clean not-exist).
	if err := os.RemoveAll(roots[3]); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(roots[3], []byte("dead disk"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Find addresses placed on shard 3 and write until its streak passes
	// the demotion threshold. Writes still succeed: the other replica
	// takes them.
	wrote := 0
	for seq := 0; wrote < demoteAfter+1 && seq < 256; seq++ {
		if !contains(s.placement("v", "p1", seq), 3) {
			continue
		}
		if err := s.WriteGOP("v", "p1", seq, payload(seq)); err != nil {
			t.Fatalf("write with one dead shard: %v", err)
		}
		wrote++
	}
	st := s.ReplicationStats()
	if !st.ShardHealth[3].Demoted || st.ShardHealth[3].Errors < demoteAfter {
		t.Fatalf("dead shard not demoted: %+v", st.ShardHealth[3])
	}
	if err := s.readOrderCheck(); err != nil {
		t.Error(err)
	}
	// Heal the root; the first successful operation re-promotes it.
	if err := os.Remove(roots[3]); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(roots[3], 0o755); err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 256; seq++ {
		if contains(s.placement("v", "p2", seq), 3) {
			if err := s.WriteGOP("v", "p2", seq, payload(seq)); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if st := s.ReplicationStats(); st.ShardHealth[3].Demoted {
		t.Errorf("healed shard still demoted: %+v", st.ShardHealth[3])
	}
}

// readOrderCheck asserts demoted shards sort after healthy ones for a
// placement that includes shard 3 (helper for TestReplicatedDemotion).
func (s *Sharded) readOrderCheck() error {
	for seq := 0; seq < 256; seq++ {
		p := s.placement("v", "p1", seq)
		if !contains(p, 3) {
			continue
		}
		order := s.readOrder(p)
		if order[len(order)-1] != 3 {
			return fmt.Errorf("demoted shard 3 not last in read order %v (placement %v)", order, p)
		}
		return nil
	}
	return nil
}

// TestConcurrentScrubStress runs scrub passes against concurrent
// writers, readers, and deleters under the race detector: no data races,
// no torn reads (every successful read is some writer's complete
// payload), no spurious scrub failures.
func TestConcurrentScrubStress(t *testing.T) {
	s, _ := openReplicated(t)
	const (
		seqs     = 24
		rounds   = 30
		scrubs   = 10
		writers  = 3
		readers  = 3
		deleters = 1
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers+deleters+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for seq := 0; seq < seqs; seq++ {
					if err := s.WriteGOP("v", "p1", seq, payload(seq)); err != nil {
						errCh <- fmt.Errorf("write: %w", err)
						return
					}
				}
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for seq := 0; seq < seqs; seq++ {
					got, err := s.ReadGOP("v", "p1", seq)
					if err != nil {
						if errors.Is(err, fs.ErrNotExist) {
							continue // deleted under us
						}
						errCh <- fmt.Errorf("read: %w", err)
						return
					}
					if !bytes.Equal(got, payload(seq)) {
						errCh <- fmt.Errorf("seq %d: torn read (%d bytes)", seq, len(got))
						return
					}
				}
			}
		}()
	}
	for d := 0; d < deleters; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := s.DeleteGOP("v", "p1", r%seqs); err != nil {
					errCh <- fmt.Errorf("delete: %w", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrubs; i++ {
			if _, err := s.Scrub(nil); err != nil {
				errCh <- fmt.Errorf("scrub: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
