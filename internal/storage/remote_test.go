package storage_test

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
	"repro/vss"
)

// The wire client must satisfy the node-client surface Remote routes
// through.
var _ storage.NodeClient = (*server.Client)(nil)

// openRemote boots a real vssd node over an in-memory backend on a TCP
// listener and returns a Remote speaking the actual wire protocol to
// it — the conformance suite then exercises every /gops endpoint
// end to end.
func openRemote(t *testing.T) *storage.Remote {
	t.Helper()
	sys, err := vss.OpenWith(t.TempDir(), vss.Options{GOPFrames: 8}, vss.NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	ts := httptest.NewServer(server.New(sys, server.Config{}))
	t.Cleanup(ts.Close)
	client := &server.Client{Base: ts.URL, HTTP: ts.Client(), Name: "conformance"}
	return storage.NewRemote(client, storage.RemoteOptions{Attempts: 2, Backoff: time.Millisecond})
}

func TestRemoteConformance(t *testing.T) {
	storagetest.Conformance(t, openRemote(t))
}

func TestRemoteConcurrentWriteSameGOP(t *testing.T) {
	storagetest.ConcurrentWriteSameGOP(t, openRemote(t))
}

func TestRemotePing(t *testing.T) {
	r := openRemote(t)
	if err := r.Ping(context.Background()); err != nil {
		t.Fatalf("ping healthy node: %v", err)
	}
	if r.Name() != "remote" || r.Addr() == "" {
		t.Errorf("identity: name %q addr %q", r.Name(), r.Addr())
	}
}

// codeErr mimics the wire client's status-carrying errors.
type codeErr struct{ code int }

func (e *codeErr) Error() string   { return fmt.Sprintf("status %d", e.code) }
func (e *codeErr) HTTPStatus() int { return e.code }

// faultNode is a NodeClient whose reads fail a scripted number of times
// with a scripted error; every other operation succeeds vacuously.
type faultNode struct {
	mu    sync.Mutex
	calls int
	fails int   // reads to fail before succeeding
	err   error // the failure to return
}

func (f *faultNode) bump() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.fails {
		return f.err
	}
	return nil
}

func (f *faultNode) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *faultNode) Addr() string                                                   { return "fake" }
func (f *faultNode) Health(context.Context) error                                   { return nil }
func (f *faultNode) GOPWrite(_ context.Context, _, _ string, _ int, _ []byte) error { return f.bump() }
func (f *faultNode) GOPRead(_ context.Context, _, _ string, _ int) ([]byte, error) {
	if err := f.bump(); err != nil {
		return nil, err
	}
	return []byte("ok"), nil
}
func (f *faultNode) GOPStat(_ context.Context, _, _ string, _ int) (int64, error) {
	return 2, f.bump()
}
func (f *faultNode) GOPDelete(_ context.Context, _, _ string, _ int) error { return f.bump() }
func (f *faultNode) GOPLink(_ context.Context, _, _ string, _ int, _, _ string, _ int) error {
	return f.bump()
}
func (f *faultNode) GOPDeletePhysical(_ context.Context, _, _ string) error { return f.bump() }
func (f *faultNode) GOPDeleteVideo(_ context.Context, _ string) error       { return f.bump() }
func (f *faultNode) GOPWalk(_ context.Context, fn func(string, string, int, int64) error) error {
	return f.bump()
}

func remoteOver(n storage.NodeClient) *storage.Remote {
	return storage.NewRemote(n, storage.RemoteOptions{Attempts: 3, Backoff: time.Microsecond})
}

func TestRemoteRetriesTransportErrors(t *testing.T) {
	n := &faultNode{fails: 2, err: errors.New("connection reset")}
	if _, err := remoteOver(n).ReadGOP("v", "p", 0); err != nil {
		t.Fatalf("read after transient failures: %v", err)
	}
	if got := n.callCount(); got != 3 {
		t.Errorf("calls = %d, want 3 (two failures then success)", got)
	}
}

func TestRemoteRetries5xx(t *testing.T) {
	n := &faultNode{fails: 1, err: &codeErr{503}}
	if _, err := remoteOver(n).ReadGOP("v", "p", 0); err != nil {
		t.Fatalf("read after 503: %v", err)
	}
	if got := n.callCount(); got != 2 {
		t.Errorf("calls = %d, want 2", got)
	}
}

func TestRemoteNeverRetries4xx(t *testing.T) {
	n := &faultNode{fails: 1 << 30, err: &codeErr{400}}
	if _, err := remoteOver(n).ReadGOP("v", "p", 0); err == nil {
		t.Fatal("read with a 400-returning node succeeded")
	}
	if got := n.callCount(); got != 1 {
		t.Errorf("calls = %d, want 1 (4xx must not be retried)", got)
	}
}

func TestRemote404IsNotExist(t *testing.T) {
	n := &faultNode{fails: 1 << 30, err: &codeErr{404}}
	r := remoteOver(n)
	if _, err := r.ReadGOP("v", "p", 0); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("404 read error = %v, want fs.ErrNotExist chain", err)
	}
	if _, err := r.GOPSize("v", "p", 0); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("404 size error = %v, want fs.ErrNotExist chain", err)
	}
	if got := n.callCount(); got != 2 {
		t.Errorf("calls = %d, want 2 (one per operation, no retries)", got)
	}
}

func TestRemoteWalkNotRetried(t *testing.T) {
	n := &faultNode{fails: 1, err: errors.New("stream truncated")}
	err := remoteOver(n).Walk(func(string, string, int, int64) error { return nil })
	if err == nil {
		t.Fatal("truncated walk reported success")
	}
	if got := n.callCount(); got != 1 {
		t.Errorf("calls = %d, want 1 (walks must never be retried)", got)
	}
}
