package storage

import (
	"context"
	"sync/atomic"
	"time"
)

// BackendStats is a point-in-time snapshot of an Instrumented backend's
// counters, the storage section of operational metrics (the vssd
// /metrics endpoint serializes it as-is).
type BackendStats struct {
	// Backend is the wrapped backend's kind ("localfs", "sharded", "mem").
	Backend string `json:"backend"`
	// Reads / Writes count ReadGOP / WriteGOP calls; bytes and
	// cumulative latency cover the same calls, so mean latency is
	// nanos/ops and mean throughput is bytes/nanos.
	Reads        int64 `json:"reads"`
	Writes       int64 `json:"writes"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	ReadNanos    int64 `json:"read_nanos"`
	WriteNanos   int64 `json:"write_nanos"`
	// Deletes counts DeleteGOP/DeletePhysical/DeleteVideo; Links counts
	// LinkGOP.
	Deletes int64 `json:"deletes"`
	Links   int64 `json:"links"`
	// Errors counts failed operations of any kind.
	Errors int64 `json:"errors"`
}

// Instrumented wraps a Backend with atomic read/write byte and latency
// counters. All methods delegate; Stats snapshots the counters.
type Instrumented struct {
	b Backend

	reads, writes, deletes, links, errs atomic.Int64
	bytesRead, bytesWritten             atomic.Int64
	readNanos, writeNanos               atomic.Int64
}

// Instrument wraps b with counters. A nil b panics at first use, like
// any nil backend would.
func Instrument(b Backend) *Instrumented {
	if i, ok := b.(*Instrumented); ok {
		return i
	}
	return &Instrumented{b: b}
}

// Unwrap returns the underlying backend.
func (i *Instrumented) Unwrap() Backend { return i.b }

// Stats snapshots the counters.
func (i *Instrumented) Stats() BackendStats {
	return BackendStats{
		Backend:      i.b.Name(),
		Reads:        i.reads.Load(),
		Writes:       i.writes.Load(),
		BytesRead:    i.bytesRead.Load(),
		BytesWritten: i.bytesWritten.Load(),
		ReadNanos:    i.readNanos.Load(),
		WriteNanos:   i.writeNanos.Load(),
		Deletes:      i.deletes.Load(),
		Links:        i.links.Load(),
		Errors:       i.errs.Load(),
	}
}

func (i *Instrumented) note(err error) error {
	if err != nil {
		i.errs.Add(1)
	}
	return err
}

func (i *Instrumented) Name() string { return i.b.Name() }

func (i *Instrumented) WriteGOP(video, physDir string, seq int, data []byte) error {
	start := time.Now()
	err := i.b.WriteGOP(video, physDir, seq, data)
	i.writeNanos.Add(int64(time.Since(start)))
	i.writes.Add(1)
	if err == nil {
		i.bytesWritten.Add(int64(len(data)))
	}
	return i.note(err)
}

func (i *Instrumented) ReadGOP(video, physDir string, seq int) ([]byte, error) {
	start := time.Now()
	data, err := i.b.ReadGOP(video, physDir, seq)
	return i.countRead(data, err, start)
}

// countRead folds one read's outcome into the counters — the single
// accounting path shared by ReadGOP and ReadGOPExpect, so the two can
// never diverge in BackendStats.
func (i *Instrumented) countRead(data []byte, err error, start time.Time) ([]byte, error) {
	i.readNanos.Add(int64(time.Since(start)))
	i.reads.Add(1)
	if err == nil {
		i.bytesRead.Add(int64(len(data)))
	}
	return data, i.note(err)
}

// ReadGOPExpect forwards the size hint when the wrapped backend is an
// ExpectReader (a replicated backend fails over past wrong-sized
// replicas), falling back to a plain ReadGOP otherwise. Unlike
// SweepTemps this does NOT chase Unwrap: a user wrapper's ReadGOP
// behavior (latency injection, tracing) must not be bypassed on the
// read path — wrappers opt in by implementing ExpectReader themselves.
// Counted exactly like ReadGOP.
func (i *Instrumented) ReadGOPExpect(video, physDir string, seq int, want int64) ([]byte, error) {
	er, ok := i.b.(ExpectReader)
	if !ok {
		return i.ReadGOP(video, physDir, seq)
	}
	start := time.Now()
	data, err := er.ReadGOPExpect(video, physDir, seq, want)
	return i.countRead(data, err, start)
}

// ReadGOPContext forwards the caller context when the wrapped backend
// is a ContextReader, falling back to a plain ReadGOP. Same no-Unwrap
// discovery and shared accounting as ReadGOPExpect.
func (i *Instrumented) ReadGOPContext(ctx context.Context, video, physDir string, seq int) ([]byte, error) {
	cr, ok := i.b.(ContextReader)
	if !ok {
		return i.ReadGOP(video, physDir, seq)
	}
	start := time.Now()
	data, err := cr.ReadGOPContext(ctx, video, physDir, seq)
	return i.countRead(data, err, start)
}

// ReadGOPExpectContext forwards both the caller context and the size
// hint, degrading through the wrapped backend's capabilities the way
// ReadGOPExpectCtx does. Counted exactly like ReadGOP.
func (i *Instrumented) ReadGOPExpectContext(ctx context.Context, video, physDir string, seq int, want int64) ([]byte, error) {
	start := time.Now()
	data, err := ReadGOPExpectCtx(ctx, i.b, video, physDir, seq, want)
	return i.countRead(data, err, start)
}

func (i *Instrumented) GOPSize(video, physDir string, seq int) (int64, error) {
	n, err := i.b.GOPSize(video, physDir, seq)
	return n, i.note(err)
}

func (i *Instrumented) DeleteGOP(video, physDir string, seq int) error {
	i.deletes.Add(1)
	return i.note(i.b.DeleteGOP(video, physDir, seq))
}

func (i *Instrumented) LinkGOP(video, srcDir string, srcSeq int, dstVideo, dstDir string, dstSeq int) error {
	i.links.Add(1)
	return i.note(i.b.LinkGOP(video, srcDir, srcSeq, dstVideo, dstDir, dstSeq))
}

func (i *Instrumented) DeletePhysical(video, physDir string) error {
	i.deletes.Add(1)
	return i.note(i.b.DeletePhysical(video, physDir))
}

func (i *Instrumented) DeleteVideo(video string) error {
	i.deletes.Add(1)
	return i.note(i.b.DeleteVideo(video))
}

func (i *Instrumented) Walk(fn func(video, physDir string, seq int, size int64) error) error {
	return i.note(i.b.Walk(fn))
}

// SweepTemps forwards to the nearest backend in the wrap chain that
// stages writes through temp files, chasing Unwrap so user wrappers
// around a localfs/sharded backend do not silently disable crash-temp
// reclamation. Backends with no temps (mem) are a no-op.
func (i *Instrumented) SweepTemps(olderThan time.Duration) error {
	for b := i.b; b != nil; {
		if ts, ok := b.(TempSweeper); ok {
			return i.note(ts.SweepTemps(olderThan))
		}
		u, ok := b.(interface{ Unwrap() Backend })
		if !ok {
			break
		}
		b = u.Unwrap()
	}
	return nil
}
