package storage

// This file declares the cluster-plane types shared between the storage
// layer and the router subsystem (internal/router): the stats a routed
// fleet reports, the reporter interface metrics layers discover, and the
// reserved address under which the metadata catalog is snapshotted into
// the backend. They live here — not in internal/router — so core and
// internal/server can surface cluster metrics without importing the
// router (which imports internal/server for its node clients).

// CatalogSnapshotVideo is the reserved logical-video name under which
// core.Store.Maintain snapshots the metadata catalog into the backend
// (Options.SnapshotCatalog). It rides the backend's ordinary replicated
// write path — on a routed fleet every replica node holds a copy — and
// closes the catalog's single-point-of-failure: core.RestoreCatalog
// rebuilds a store's <dir>/catalog from it after the router host is
// lost. The leading dot keeps it out of any legal video namespace
// (core rejects video names beginning with a dot), and scrub passes
// skip it: Maintain rewrites it wholesale every pass, so repairing a
// divergent copy mid-pass would churn against the writer.
const CatalogSnapshotVideo = ".vss-catalog"

// CatalogSnapshotDir is the physical-video directory of the catalog
// snapshot GOP (seq 0 under it holds the snapshot.json bytes).
const CatalogSnapshotDir = "snapshot"

// NodeHealthStats is one node's row in ClusterStats — the cluster analog
// of ShardHealthStats, keyed by the node's base URL instead of a root
// path.
type NodeHealthStats struct {
	Addr string `json:"addr"`
	// Errors is the cumulative count of failed operations against this
	// node (reads, writes, deletes, repairs).
	Errors int64 `json:"errors"`
	// Demoted reports whether the node currently sits at the back of the
	// read failover order (consecutive failures, not yet followed by a
	// success).
	Demoted bool `json:"demoted"`
}

// ClusterStats is a point-in-time snapshot of a routed fleet: placement
// config, failover activity, the write-repair journal, repair-cycle
// counters, per-node health, and the most recent scrub pass. It is the
// cluster section of vssd /metrics when the serving store routes to
// remote nodes.
type ClusterStats struct {
	Nodes    int `json:"nodes"`
	Replicas int `json:"replicas"`
	// Failovers counts reads served by a non-primary replica node.
	Failovers int64 `json:"failovers"`
	// JournalDepth is the number of (GOP, node) repairs currently queued;
	// JournalDropped counts entries evicted without repair (journal full,
	// or an entry exceeding its attempt budget) — those copies wait for
	// the next full scrub instead.
	JournalDepth   int   `json:"journal_depth"`
	JournalDropped int64 `json:"journal_dropped"`
	// RepairCycles counts Repair passes; Repaired counts replica copies
	// the journal re-created; RepairFailures counts repair attempts that
	// failed and were re-queued.
	RepairCycles   int64 `json:"repair_cycles"`
	Repaired       int64 `json:"repaired"`
	RepairFailures int64 `json:"repair_failures"`
	// Scrubs counts completed full scrub passes; LastScrub reports the
	// most recent one (zero value if none has run).
	Scrubs     int64             `json:"scrubs"`
	LastScrub  ScrubStats        `json:"last_scrub"`
	NodeHealth []NodeHealthStats `json:"node_health"`
}

// ClusterReporter is implemented by backends that route GOPs across a
// fleet of nodes (internal/router's Cluster). Callers discover it through
// AsClusterReporter so metrics wrappers stay transparent, the way
// AsScrubber discovers Scrubber.
type ClusterReporter interface {
	ClusterStats() ClusterStats
}

// AsClusterReporter returns the nearest ClusterReporter in b's wrap chain
// (chasing Unwrap like errors.Unwrap), or nil when the backend is not a
// routed fleet.
func AsClusterReporter(b Backend) ClusterReporter {
	for b != nil {
		if cr, ok := b.(ClusterReporter); ok {
			return cr
		}
		u, ok := b.(interface{ Unwrap() Backend })
		if !ok {
			return nil
		}
		b = u.Unwrap()
	}
	return nil
}
