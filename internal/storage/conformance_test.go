package storage_test

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// backends lists every local Backend implementation under one constructor
// signature, so the conformance suite and cross-backend tests sweep all
// of them. The sharded constructor uses 3 roots — enough that addresses
// actually scatter; the replicated variant must be observationally
// identical to the others (Walk dedup, delete-all-replicas, link
// semantics) despite keeping every GOP twice. The remote backend runs the
// same suite over a live vssd node in remote_test.go, and the router's
// cluster backend in internal/router.
func backends(t *testing.T) map[string]func(t *testing.T) storage.Backend {
	t.Helper()
	return map[string]func(t *testing.T) storage.Backend{
		"localfs": func(t *testing.T) storage.Backend {
			s, err := storage.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"sharded": func(t *testing.T) storage.Backend {
			dir := t.TempDir()
			roots := []string{dir + "/s0", dir + "/s1", dir + "/s2"}
			s, err := storage.OpenSharded(roots)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"sharded-r2": func(t *testing.T) storage.Backend {
			dir := t.TempDir()
			roots := []string{dir + "/s0", dir + "/s1", dir + "/s2", dir + "/s3"}
			s, err := storage.OpenShardedReplicated(roots, 2)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"mem": func(t *testing.T) storage.Backend {
			return storage.NewMem()
		},
	}
}

// TestBackendConformance runs the shared semantic suite (storagetest)
// against every backend: all must be drop-in interchangeable behind the
// interface, including hard-link fallback behavior and fs.ErrNotExist
// error chains.
func TestBackendConformance(t *testing.T) {
	for name, newBackend := range backends(t) {
		t.Run(name, func(t *testing.T) {
			storagetest.Conformance(t, newBackend(t))
		})
	}
}

// TestBackendConcurrentWriteSameGOP races writers on one GOP address; see
// storagetest.ConcurrentWriteSameGOP.
func TestBackendConcurrentWriteSameGOP(t *testing.T) {
	for name, newBackend := range backends(t) {
		t.Run(name, func(t *testing.T) {
			storagetest.ConcurrentWriteSameGOP(t, newBackend(t))
		})
	}
}

// TestInstrumentedCounters checks the metrics wrapper counts ops, bytes,
// and errors.
func TestInstrumentedCounters(t *testing.T) {
	b := storage.Instrument(storage.NewMem())
	if err := b.WriteGOP("v", "p", 0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadGOP("v", "p", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadGOP("v", "p", 1); err == nil {
		t.Fatal("expected miss")
	}
	st := b.Stats()
	if st.Backend != "mem" || st.Writes != 1 || st.Reads != 2 ||
		st.BytesWritten != 100 || st.BytesRead != 100 || st.Errors != 1 {
		t.Errorf("stats %+v", st)
	}
}
