package storage

import (
	"errors"
	"fmt"
	"io/fs"
)

// This file implements the scrub-repair pass of the replicated sharded
// backend: walk every placement, find replicas that are missing or the
// wrong size, and re-copy them from a healthy copy. Scrub is what turns
// "first write success makes it durable" into full R-way replication
// again after a root flaps, is wiped, or is replaced, and it is what the
// store's background maintenance loop runs (core.Store.Maintain).

// GOPAddr is one GOP's logical address — the coordinate replication
// places, fails over, and scrubs in.
type GOPAddr struct {
	Video   string
	PhysDir string
	Seq     int
}

// ScrubStats reports one scrub pass. It is the replication section of
// operational metrics (vssd /metrics serializes it as-is).
type ScrubStats struct {
	// Checked counts distinct GOP addresses examined.
	Checked int64 `json:"checked"`
	// Repaired counts replica copies re-created or rewritten.
	Repaired int64 `json:"repaired"`
	// Unrecoverable counts addresses that needed repair but had no
	// readable source copy of the authoritative size — including
	// oracle-known addresses with no copy left on ANY shard. Nonzero
	// means data loss (or divergence the catalog no longer describes);
	// a GOP evicted while the scrub ran can transiently over-count it,
	// so the durable signal is a nonzero count across consecutive
	// passes.
	Unrecoverable int64 `json:"unrecoverable"`
	// Orphans counts GOP files the size oracle disclaimed (not in the
	// catalog): crash leftovers that replication does not maintain.
	Orphans int64 `json:"orphans"`
}

// SizeOracle answers what the metadata catalog expects of each GOP, so
// scrub repairs restore the bytes the catalog describes. Size should be
// LIVE (core answers from the catalog under the video's lock): scrub
// consults it immediately before destroying a divergent copy, so a GOP
// rewritten mid-scrub is judged against its current expected size, not
// a stale snapshot — without this, a rewrite whose replica fan-out
// partially failed could have its fresh copy "repaired" back to the
// stale one. All may be a snapshot; it is used only to enumerate
// catalog-known addresses with no surviving copy (total loss), where
// staleness at worst over-counts transiently. A nil oracle means
// largest-copy-wins over whatever the walk finds.
type SizeOracle interface {
	// Size returns a GOP's expected stored size, or ok == false for
	// addresses the catalog does not describe (orphans).
	Size(a GOPAddr) (int64, bool)
	// All enumerates every catalog-known address and its expected size.
	All() map[GOPAddr]int64
}

// StaticSizes is a SizeOracle over a fixed map, for tests and offline
// tools that have no live catalog.
type StaticSizes map[GOPAddr]int64

// Size looks the address up in the map.
func (m StaticSizes) Size(a GOPAddr) (int64, bool) {
	n, ok := m[a]
	return n, ok
}

// All returns the map itself.
func (m StaticSizes) All() map[GOPAddr]int64 { return m }

// ExpectReader is implemented by backends that can use a caller's
// expected-size hint to fail over past stale replicas (see
// Sharded.ReadGOPExpect). Callers discover it through the wrap chain
// the way AsScrubber does; Instrumented forwards it.
type ExpectReader interface {
	ReadGOPExpect(video, physDir string, seq int, want int64) ([]byte, error)
}

// ShardHealthStats is one shard's row in ReplicationStats.
type ShardHealthStats struct {
	Root string `json:"root"`
	// Errors is the cumulative count of failed operations against this
	// shard (reads, writes, deletes, repairs).
	Errors int64 `json:"errors"`
	// Demoted reports whether the shard currently sits at the back of
	// the read failover order (demoteAfter consecutive failures, not yet
	// followed by a success).
	Demoted bool `json:"demoted"`
}

// ReplicationStats is a point-in-time snapshot of the replicated
// backend's placement config, failover activity, per-shard health, and
// the most recent scrub pass.
type ReplicationStats struct {
	Shards   int `json:"shards"`
	Replicas int `json:"replicas"`
	// Failovers counts reads served by a non-primary replica.
	Failovers int64 `json:"failovers"`
	// Scrubs counts completed scrub passes; LastScrub reports the most
	// recent one (zero value if none has run).
	Scrubs      int64              `json:"scrubs"`
	LastScrub   ScrubStats         `json:"last_scrub"`
	ShardHealth []ShardHealthStats `json:"shard_health"`
}

// Scrubber is implemented by backends that keep redundant copies and can
// check and repair them. The replicated sharded backend is the one
// implementation; callers discover it through AsScrubber so metrics
// wrappers (Instrumented) and user shells stay transparent.
type Scrubber interface {
	// Scrub runs one check-and-repair pass; see Sharded.Scrub.
	Scrub(expect SizeOracle) (ScrubStats, error)
	// ReplicationStats snapshots replication health counters.
	ReplicationStats() ReplicationStats
}

// AsScrubber returns the nearest Scrubber in b's wrap chain (chasing
// Unwrap like errors.Unwrap), or nil when the backend keeps no replicas.
func AsScrubber(b Backend) Scrubber {
	for b != nil {
		if sc, ok := b.(Scrubber); ok {
			return sc
		}
		u, ok := b.(interface{ Unwrap() Backend })
		if !ok {
			return nil
		}
		b = u.Unwrap()
	}
	return nil
}

// ReplicationStats snapshots the backend's replication health: placement
// config, failover count, per-shard error counters and demotion state,
// and the last scrub pass. Safe for concurrent use.
func (s *Sharded) ReplicationStats() ReplicationStats {
	st := ReplicationStats{
		Shards:    len(s.shards),
		Replicas:  s.replicas,
		Failovers: s.failovers.Load(),
	}
	st.ShardHealth = make([]ShardHealthStats, len(s.shards))
	for i := range s.shards {
		st.ShardHealth[i] = ShardHealthStats{
			Root:    s.shards[i].Root(),
			Errors:  s.health[i].errors.Load(),
			Demoted: s.health[i].streak.Load() >= demoteAfter,
		}
	}
	s.scrubMu.Lock()
	st.Scrubs, st.LastScrub = s.scrubs, s.lastScrub
	s.scrubMu.Unlock()
	return st
}

// Scrub walks every stored GOP address, determines its authoritative
// size, and re-copies missing or wrong-sized replicas onto their
// placement shards from a healthy copy; see ScrubReplicas for the full
// semantics. The returned stats are also recorded for ReplicationStats.
func (s *Sharded) Scrub(expect SizeOracle) (ScrubStats, error) {
	stores := make([]Backend, len(s.shards))
	for i, sh := range s.shards {
		stores[i] = sh
	}
	st, err := ScrubReplicas(ReplicaSet{
		Stores:     stores,
		Placement:  s.placement,
		NoteResult: s.noteResult,
		ErrTag:     shardErr,
	}, expect)
	s.scrubMu.Lock()
	s.scrubs++
	s.lastScrub = st
	s.scrubMu.Unlock()
	return st, err
}

// ReplicaSet describes a group of replica stores to the generic
// scrub-repair engine (ScrubReplicas): the sharded backend's localfs
// roots, or the router's remote vssd nodes. Stores are indexed the way
// Placement's results index them.
type ReplicaSet struct {
	// Stores are the replica stores.
	Stores []Backend
	// Placement maps a GOP address to the stores holding its replicas,
	// primary first (the sharded/router FNV-1a ring).
	Placement func(video, physDir string, seq int) []int
	// NoteResult feeds one store operation's outcome into the owner's
	// health accounting (nil error = success). Optional.
	NoteResult func(store int, err error)
	// ErrTag decorates a per-store error with the store's identity; nil
	// selects a generic "store %d" tag. The error chain must be
	// preserved for errors.Is.
	ErrTag func(store int, err error) error
}

// ScrubReplicas is the scrub-repair engine shared by every replicated
// backend (Sharded across roots, the router's Cluster across nodes): it
// walks every stored GOP address, determines its authoritative size, and
// re-copies missing or wrong-sized replicas onto their placement stores
// from a healthy copy. The authoritative size is the oracle's (the
// catalog's expectation) when some copy actually has it; otherwise the
// largest stored copy wins — the heuristic for standalone use
// (expect == nil) and the graceful fallback when the catalog and every
// copy disagree (then consistent replicas are left alone rather than
// churned).
//
// The catalog snapshot address (CatalogSnapshotVideo) is skipped
// entirely: Maintain rewrites it wholesale every pass and the oracle
// never describes it, so "repairing" it would only churn against the
// writer.
//
// The engine is safe to run concurrently with reads and writes: repairs
// go through the same atomic per-store writes as foreground traffic, so
// readers never observe a torn GOP. Two races are tolerated and benign:
// a GOP evicted mid-scrub is skipped once every source read misses, and
// a repair can momentarily resurrect a just-deleted GOP file (the
// catalog no longer references it; the next scrub skips it as an orphan
// and DeletePhysical still reclaims it).
//
// The error joins per-store operational failures; a nonzero
// Unrecoverable count is reported in the stats, not as an error.
func ScrubReplicas(rs ReplicaSet, expect SizeOracle) (ScrubStats, error) {
	tag := rs.ErrTag
	if tag == nil {
		tag = func(i int, err error) error {
			if err == nil {
				return nil
			}
			return fmt.Errorf("store %d: %w", i, err)
		}
	}
	note := rs.NoteResult
	if note == nil {
		note = func(int, error) {}
	}

	type copyInfo struct {
		store int
		size  int64
	}
	copies := make(map[GOPAddr][]copyInfo)
	var errs []error
	for i, store := range rs.Stores {
		err := store.Walk(func(video, physDir string, seq int, size int64) error {
			if video == CatalogSnapshotVideo {
				return nil
			}
			a := GOPAddr{video, physDir, seq}
			copies[a] = append(copies[a], copyInfo{i, size})
			return nil
		})
		if err != nil {
			// A store whose tree cannot even be walked is degraded; keep
			// scrubbing the others — its GOPs repair FROM the healthy
			// stores, not from it.
			note(i, err)
			errs = append(errs, tag(i, err))
		}
	}

	var st ScrubStats
	for a, cs := range copies {
		st.Checked++
		var largest int64
		for _, c := range cs {
			if c.size > largest {
				largest = c.size
			}
		}
		want := largest
		trustOracle := false
		if expect != nil {
			w, ok := expect.Size(a)
			if !ok {
				st.Orphans++
				continue
			}
			// Trust the catalog only when some copy can actually supply
			// that size; otherwise fall back to largest-copy-wins so
			// consistent (if stale-sized) replicas are not counted lost.
			for _, c := range cs {
				if c.size == w {
					want, trustOracle = w, true
					break
				}
			}
		}
		have := make(map[int]int64, len(cs))
		for _, c := range cs {
			have[c.store] = c.size
		}
		var needs []int
		sources := make([]int, 0, len(cs))
		for _, i := range rs.Placement(a.Video, a.PhysDir, a.Seq) {
			if sz, ok := have[i]; ok && sz == want {
				sources = append(sources, i)
			} else {
				needs = append(needs, i)
			}
		}
		if len(needs) == 0 {
			continue
		}
		// Copies stranded on non-placement stores (an earlier replicas
		// setting) can still seed a repair.
		for _, c := range cs {
			if c.size == want && !contains(sources, c.store) && !contains(needs, c.store) {
				sources = append(sources, c.store)
			}
		}
		var data []byte
		found := false
		sawMissing := false
		for _, src := range sources {
			d, err := rs.Stores[src].ReadGOP(a.Video, a.PhysDir, a.Seq)
			if err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					sawMissing = true // likely deleted mid-scrub
				} else {
					note(src, err)
					errs = append(errs, tag(src, err))
				}
				continue
			}
			data, found = d, true
			break
		}
		if !found {
			if len(sources) > 0 && sawMissing {
				continue // every copy vanished: evicted mid-scrub, not lost
			}
			st.Unrecoverable++
			continue
		}
		// Re-confirm the live expectation immediately before any repair
		// write: a GOP rewritten (or evicted) since it was sized must not
		// have its fresh copies overwritten from a now-stale source — the
		// next pass sees the settled state and repairs correctly.
		if trustOracle {
			if w, ok := expect.Size(a); !ok || w != want {
				continue
			}
		}
		for _, i := range needs {
			if err := rs.Stores[i].WriteGOP(a.Video, a.PhysDir, a.Seq, data); err != nil {
				note(i, err)
				errs = append(errs, tag(i, err))
				continue
			}
			note(i, nil)
			st.Repaired++
		}
	}

	// Addresses the catalog expects but NO store holds: total loss —
	// the walk cannot see them, so they are enumerated from the oracle.
	// A live re-probe filters GOPs written after the walk; a GOP evicted
	// after the oracle snapshot still over-counts transiently (see the
	// Unrecoverable field doc).
	var known map[GOPAddr]int64
	if expect != nil {
		known = expect.All()
	}
	for a := range known {
		if _, held := copies[a]; held {
			continue
		}
		// Live-confirm the catalog still expects the address: eviction
		// may have removed it since the All() snapshot.
		if _, ok := expect.Size(a); !ok {
			continue
		}
		st.Checked++
		alive := false
		for _, i := range rs.Placement(a.Video, a.PhysDir, a.Seq) {
			if _, err := rs.Stores[i].GOPSize(a.Video, a.PhysDir, a.Seq); err == nil {
				alive = true
				break
			}
		}
		if !alive {
			st.Unrecoverable++
		}
	}

	return st, errors.Join(errs...)
}

// contains reports whether xs contains x (placements are tiny; linear
// scan beats a map).
func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
