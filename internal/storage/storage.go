// Package storage manages the on-disk layout of VSS physical video data.
// Following Figure 2 of the paper, each logical video owns a directory;
// each physical video (materialized view) is a subdirectory of GOP files:
//
//	<root>/<video>/p<id>-<WxH>r<fps>.<codec>/<seq>.gop
//
// GOP files are written atomically (temp file + rename) so a crash never
// exposes a torn GOP; the catalog (internal/catalog) is the source of
// truth for which GOPs exist. Hard links support compaction and
// duplicate-GOP deduplication without copying bytes.
package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Store provides file operations under a root directory.
type Store struct {
	root string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// PhysicalDirName renders the directory name for a physical video, e.g.
// "p000002-960x540r30.hevc".
func PhysicalDirName(id, w, h, fps int, codecName string) string {
	return fmt.Sprintf("p%06d-%dx%dr%d.%s", id, w, h, fps, codecName)
}

// gopPath returns the path of one GOP file.
func (s *Store) gopPath(video, physDir string, seq int) string {
	return filepath.Join(s.root, video, physDir, fmt.Sprintf("%d.gop", seq))
}

// WriteGOP atomically writes one GOP file.
func (s *Store) WriteGOP(video, physDir string, seq int, data []byte) error {
	path := s.gopPath(video, physDir, seq)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// ReadGOP reads one GOP file.
func (s *Store) ReadGOP(video, physDir string, seq int) ([]byte, error) {
	data, err := os.ReadFile(s.gopPath(video, physDir, seq))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return data, nil
}

// GOPSize returns the on-disk size of one GOP file.
func (s *Store) GOPSize(video, physDir string, seq int) (int64, error) {
	fi, err := os.Stat(s.gopPath(video, physDir, seq))
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	return fi.Size(), nil
}

// DeleteGOP removes one GOP file. Missing files are not an error: eviction
// and crash recovery may race.
func (s *Store) DeleteGOP(video, physDir string, seq int) error {
	err := os.Remove(s.gopPath(video, physDir, seq))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// LinkGOP hard-links a GOP into another physical video, the mechanism
// behind compaction (Section 5.3: "creating hard links from the second
// into the first") and duplicate-GOP pointers. Falls back to a copy on
// filesystems without hard links.
func (s *Store) LinkGOP(video, srcDir string, srcSeq int, dstVideo, dstDir string, dstSeq int) error {
	src := s.gopPath(video, srcDir, srcSeq)
	dst := s.gopPath(dstVideo, dstDir, dstSeq)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return s.WriteGOP(dstVideo, dstDir, dstSeq, data)
}

// DeletePhysical removes a physical video directory and its GOPs.
func (s *Store) DeletePhysical(video, physDir string) error {
	if err := os.RemoveAll(filepath.Join(s.root, video, physDir)); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// DeleteVideo removes a logical video directory entirely.
func (s *Store) DeleteVideo(video string) error {
	if err := os.RemoveAll(filepath.Join(s.root, video)); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// VideoSize returns the total bytes stored under a logical video,
// counting hard-linked files once per link (the paper's budget is an
// upper bound on storage, and link-sharing only reduces true usage).
func (s *Store) VideoSize(video string) (int64, error) {
	var total int64
	err := filepath.WalkDir(filepath.Join(s.root, video), func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		total += fi.Size()
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	return total, nil
}

// WriteBlob and ReadBlob store auxiliary per-physical-video artifacts
// (joint compression sidecars) under the physical directory.
func (s *Store) WriteBlob(video, physDir, name string, data []byte) error {
	path := filepath.Join(s.root, video, physDir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// ReadBlob reads an auxiliary artifact.
func (s *Store) ReadBlob(video, physDir, name string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.root, video, physDir, name))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return data, nil
}
