// Package storage manages the on-disk layout of VSS physical video data.
// Following Figure 2 of the paper, each logical video owns a directory;
// each physical video (materialized view) is a subdirectory of GOP files:
//
//	<root>/<video>/p<id>-<WxH>r<fps>.<codec>/<seq>.gop
//
// GOP files are written atomically (temp file + rename) so a crash never
// exposes a torn GOP; the catalog (internal/catalog) is the source of
// truth for which GOPs exist. Hard links support compaction and
// duplicate-GOP deduplication without copying bytes.
package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Store provides file operations under a root directory. It is the
// "localfs" Backend: the paper's single-root layout.
type Store struct {
	root string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &Store{root: dir}, nil
}

// TempSweeper is implemented by backends whose writes stage through
// on-disk temp files. Unique temp names (see atomicWrite) mean no later
// write ever renames a crash orphan away, so something must reclaim
// them; the store's background maintenance pass calls SweepTemps so the
// full-tree walk never sits on an open or foreground path.
type TempSweeper interface {
	// SweepTemps removes crash-orphaned temp files older than olderThan
	// (the age guard keeps a concurrent writer's live temp safe).
	SweepTemps(olderThan time.Duration) error
}

// SweepTemps removes crash-orphaned atomicWrite temp files anywhere
// under the root. Only temps older than olderThan are removed: a live
// atomicWrite's temp exists for milliseconds, so any realistic age
// threshold makes the sweep safe against concurrent writers.
func (s *Store) SweepTemps(olderThan time.Duration) error {
	cutoff := time.Now().Add(-olderThan)
	err := filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() || !isTempName(d.Name()) {
			return nil
		}
		fi, err := d.Info()
		if err != nil || fi.ModTime().After(cutoff) {
			return nil // vanished mid-walk, or possibly still being written
		}
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// isTempName reports whether a file name matches atomicWrite's
// ".<base>.tmp-<random>" temp pattern, or the legacy "<base>.tmp" shape
// earlier releases staged through (those relied on the next write
// renaming over the shared name, which unique temp names no longer do —
// the sweep is now the only path that reclaims either kind of crash
// orphan).
func isTempName(name string) bool {
	return (strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-")) ||
		strings.HasSuffix(name, ".tmp")
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Name identifies the backend kind.
func (s *Store) Name() string { return "localfs" }

// PhysicalDirName renders the directory name for a physical video, e.g.
// "p000002-960x540r30.hevc".
func PhysicalDirName(id, w, h, fps int, codecName string) string {
	return fmt.Sprintf("p%06d-%dx%dr%d.%s", id, w, h, fps, codecName)
}

// gopPath returns the path of one GOP file.
func (s *Store) gopPath(video, physDir string, seq int) string {
	return filepath.Join(s.root, video, physDir, fmt.Sprintf("%d.gop", seq))
}

// WriteGOP atomically writes one GOP file. The temp file gets a unique
// name (not a shared path+".tmp"), so two concurrent writers of the same
// GOP cannot interleave into a torn file: each writes its own temp and
// the renames race cleanly, last whole file wins.
func (s *Store) WriteGOP(video, physDir string, seq int, data []byte) error {
	return atomicWrite(s.gopPath(video, physDir, seq), data)
}

// atomicWrite writes path via a uniquely named temp file in the same
// directory plus a rename.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	tmp := f.Name()
	// CreateTemp makes mode-0600 files; restore the store's historical
	// 0644 (modulo umask via Chmod's exactness) so readers running as a
	// different user — backup jobs, a separate analytics uid — keep
	// working.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// ReadGOP reads one GOP file.
func (s *Store) ReadGOP(video, physDir string, seq int) ([]byte, error) {
	data, err := os.ReadFile(s.gopPath(video, physDir, seq))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return data, nil
}

// GOPSize returns the on-disk size of one GOP file.
func (s *Store) GOPSize(video, physDir string, seq int) (int64, error) {
	fi, err := os.Stat(s.gopPath(video, physDir, seq))
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	return fi.Size(), nil
}

// DeleteGOP removes one GOP file. Missing files are not an error: eviction
// and crash recovery may race.
func (s *Store) DeleteGOP(video, physDir string, seq int) error {
	err := os.Remove(s.gopPath(video, physDir, seq))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// LinkGOP hard-links a GOP into another physical video, the mechanism
// behind compaction (Section 5.3: "creating hard links from the second
// into the first") and duplicate-GOP pointers. Falls back to a copy on
// filesystems without hard links.
func (s *Store) LinkGOP(video, srcDir string, srcSeq int, dstVideo, dstDir string, dstSeq int) error {
	src := s.gopPath(video, srcDir, srcSeq)
	dst := s.gopPath(dstVideo, dstDir, dstSeq)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return s.WriteGOP(dstVideo, dstDir, dstSeq, data)
}

// DeletePhysical removes a physical video directory and its GOPs.
func (s *Store) DeletePhysical(video, physDir string) error {
	if err := os.RemoveAll(filepath.Join(s.root, video, physDir)); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// DeleteVideo removes a logical video directory entirely.
func (s *Store) DeleteVideo(video string) error {
	if err := os.RemoveAll(filepath.Join(s.root, video)); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// VideoSize returns the total bytes stored under a logical video,
// counting hard-linked files once per link (the paper's budget is an
// upper bound on storage, and link-sharing only reduces true usage).
func (s *Store) VideoSize(video string) (int64, error) {
	var total int64
	err := filepath.WalkDir(filepath.Join(s.root, video), func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		total += fi.Size()
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	return total, nil
}

// Walk visits every stored GOP file as (video, physDir, seq, size).
// Temp files and non-GOP artifacts are skipped.
func (s *Store) Walk(fn func(video, physDir string, seq int, size int64) error) error {
	err := filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(s.root, path)
		if err != nil {
			return err
		}
		parts := strings.Split(rel, string(filepath.Separator))
		if len(parts) != 3 || !strings.HasSuffix(parts[2], ".gop") {
			return nil
		}
		seq, err := strconv.Atoi(strings.TrimSuffix(parts[2], ".gop"))
		if err != nil {
			return nil // orphaned temp or foreign file
		}
		fi, err := d.Info()
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil // deleted mid-walk
			}
			return err
		}
		return fn(parts[0], parts[1], seq, fi.Size())
	})
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}
