package storage

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"sync"
	"sync/atomic"
	"time"
)

// Sharded distributes GOPs across N filesystem roots by a stable hash of
// the GOP's logical address (video, physDir, seq), optionally keeping R
// replicas of every GOP on R distinct shards. Every shard is an ordinary
// localfs Store, so a sharded deployment's on-disk layout is N
// independent Figure-2 trees; which shards hold a GOP is a pure function
// of its address, never of write order, so any process that opens the
// same roots in the same order sees the same placement.
//
// Replication (R > 1) places each GOP on its primary shard plus the
// R-1 ring successors:
//
//   - Writes fan out to every replica in parallel. The FIRST success
//     makes the write durable; shards that miss the write are repaired
//     by the next scrub pass (Scrub), so a briefly-degraded root costs
//     latency on its GOPs, not data.
//   - Reads (ReadGOP, GOPSize) fail over through the replicas in
//     placement order. Every per-shard failure feeds an error counter;
//     a shard failing repeatedly (demoteAfter consecutive errors) is
//     demoted to last resort in the failover order until an operation
//     against it succeeds again, so a flapping root stops taxing every
//     read that hashes to it.
//   - Scrub walks all placements and re-copies missing or wrong-sized
//     replicas from a healthy copy (see scrub.go), restoring full
//     replication after a root is wiped or replaced.
//
// Growing replicas on an existing store is safe: the primary shard of
// every address is unchanged (R placements extend the R-1 placements),
// so existing GOPs stay readable and the first scrub backfills the new
// replicas. Changing the number or order of roots is NOT safe — the root
// list is part of the store's identity.
//
// Failure model: with R = 1 a degraded shard (unmounted disk, bad
// permissions) surfaces errors only on operations whose GOPs hash to it —
// the store keeps serving every GOP on healthy shards. With R > 1 those
// operations keep working too, served by the surviving replicas.
// Whole-video operations (DeletePhysical, DeleteVideo, Walk) fan out to
// all shards and join errors.
type Sharded struct {
	shards   []*Store
	replicas int

	health    []shardHealth
	failovers atomic.Int64

	scrubMu   sync.Mutex
	scrubs    int64
	lastScrub ScrubStats
}

// shardHealth tracks one shard's failure counters. errors is cumulative
// (operational metrics); streak counts consecutive failures and resets on
// any success — it drives read-order demotion.
type shardHealth struct {
	errors atomic.Int64
	streak atomic.Int64
}

// demoteAfter is the consecutive-failure streak at which a shard is
// demoted to last resort in the read failover order. One success
// re-promotes it, so a recovered root returns to service without
// operator action.
const demoteAfter = 3

// OpenSharded creates (if needed) and opens one localfs store per root,
// with no replication (every GOP on exactly one shard). At least one
// root is required; the root ORDER is part of the store's identity —
// reopening with the same roots in a different order scatters reads to
// the wrong shards.
func OpenSharded(roots []string) (*Sharded, error) {
	return OpenShardedReplicated(roots, 1)
}

// OpenShardedReplicated is OpenSharded with R-way replication: each GOP
// is kept on replicas distinct shards (primary plus ring successors).
// replicas < 1 means 1; replicas must not exceed the number of roots.
func OpenShardedReplicated(roots []string, replicas int) (*Sharded, error) {
	if len(roots) == 0 {
		return nil, fmt.Errorf("storage: sharded backend needs at least one root")
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(roots) {
		return nil, fmt.Errorf("storage: %d replicas need %d distinct roots, have %d", replicas, replicas, len(roots))
	}
	shards := make([]*Store, len(roots))
	for i, root := range roots {
		s, err := Open(root)
		if err != nil {
			return nil, fmt.Errorf("storage: shard %d: %w", i, err)
		}
		shards[i] = s
	}
	return &Sharded{
		shards:   shards,
		replicas: replicas,
		health:   make([]shardHealth, len(roots)),
	}, nil
}

// Name identifies the backend kind.
func (s *Sharded) Name() string { return "sharded" }

// Shards returns the number of shard roots.
func (s *Sharded) Shards() int { return len(s.shards) }

// Replicas returns the number of copies kept of every GOP.
func (s *Sharded) Replicas() int { return s.replicas }

// shardOf maps a GOP address to its primary shard (stable FNV-1a hash).
func (s *Sharded) shardOf(video, physDir string, seq int) int {
	h := fnv.New32a()
	fmt.Fprintf(h, "%s\x00%s\x00%d", video, physDir, seq)
	return int(h.Sum32() % uint32(len(s.shards)))
}

// placement maps a GOP address to the shards that hold its replicas:
// the primary followed by its ring successors. The R = 1 placement is a
// prefix of every larger R's, which is what makes raising -replicas on
// an existing store safe.
func (s *Sharded) placement(video, physDir string, seq int) []int {
	p := make([]int, s.replicas)
	first := s.shardOf(video, physDir, seq)
	for i := range p {
		p[i] = (first + i) % len(s.shards)
	}
	return p
}

// readOrder returns the placement reordered for failover: healthy shards
// in placement order first, demoted shards (streak >= demoteAfter) last.
func (s *Sharded) readOrder(p []int) []int {
	if len(p) == 1 {
		return p
	}
	order := make([]int, 0, len(p))
	var demoted []int
	for _, i := range p {
		if s.health[i].streak.Load() >= demoteAfter {
			demoted = append(demoted, i)
		} else {
			order = append(order, i)
		}
	}
	return append(order, demoted...)
}

// noteOK records a successful operation against a shard, re-promoting it
// if it was demoted.
func (s *Sharded) noteOK(i int) { s.health[i].streak.Store(0) }

// noteErr records a failed operation against a shard.
func (s *Sharded) noteErr(i int) {
	s.health[i].errors.Add(1)
	s.health[i].streak.Add(1)
}

// shardErr tags an error with the shard it came from, so a degraded
// shard is identifiable per GOP. The chain (fs.ErrNotExist etc.) is
// preserved for errors.Is.
func shardErr(i int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("shard %d: %w", i, err)
}

// WriteGOP fans the write out to every replica in parallel. The first
// success makes the write durable: shards that failed are charged an
// error and their copies are re-created by the next scrub pass. Only
// when every replica fails does the write itself fail.
func (s *Sharded) WriteGOP(video, physDir string, seq int, data []byte) error {
	p := s.placement(video, physDir, seq)
	if len(p) == 1 {
		i := p[0]
		err := s.shards[i].WriteGOP(video, physDir, seq, data)
		s.noteResult(i, err)
		return shardErr(i, err)
	}
	errs := make([]error, len(p))
	var wg sync.WaitGroup
	for k, i := range p {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := s.shards[i].WriteGOP(video, physDir, seq, data)
			s.noteResult(i, err)
			errs[k] = shardErr(i, err)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			return nil
		}
	}
	return errors.Join(errs...)
}

// noteResult folds one shard operation's outcome into its health
// counters.
func (s *Sharded) noteResult(i int, err error) {
	if err == nil {
		s.noteOK(i)
	} else {
		s.noteErr(i)
	}
}

// errWrongSize marks a replica whose copy exists but is not the size
// the caller expects: stale after a rewrite that missed this shard.
// Like a missing replica, it is blamed on the shard only when another
// replica can actually serve the expected bytes — if every replica
// "mismatches", the caller's expectation is what's stale.
var errWrongSize = errors.New("storage: replica is not the expected size")

// readReplicas runs op against a GOP's replicas in failover order until
// one succeeds, returning the serving shard. Health accounting
// distinguishes a degraded replica from a genuinely-missing GOP: a
// fs.ErrNotExist (or wrong-size) result is charged to a shard only when
// ANOTHER replica turns out to have the bytes (the shard is out of
// sync) — if every replica reports not-exist the GOP is simply gone
// (evicted under a racing read) and nobody is blamed. Other failures
// always count.
func (s *Sharded) readReplicas(p []int, op func(shard int) error) (int, error) {
	if len(p) == 1 {
		i := p[0]
		err := op(i)
		if err == nil || errors.Is(err, fs.ErrNotExist) {
			// A plain miss on a replica-less store is indistinguishable
			// from legitimate eviction; don't poison the health counter.
			if err == nil {
				s.noteOK(i)
			}
			return i, shardErr(i, err)
		}
		s.noteErr(i)
		return -1, shardErr(i, err)
	}
	var errs []error
	var missing []int
	for _, i := range s.readOrder(p) {
		err := op(i)
		if err == nil {
			s.noteOK(i)
			for _, m := range missing {
				s.noteErr(m)
			}
			if i != p[0] {
				s.failovers.Add(1)
			}
			return i, nil
		}
		if errors.Is(err, fs.ErrNotExist) || errors.Is(err, errWrongSize) {
			missing = append(missing, i)
		} else {
			s.noteErr(i)
		}
		errs = append(errs, shardErr(i, err))
	}
	return -1, errors.Join(errs...)
}

// ReadGOP reads one GOP, failing over through its replicas; see
// readReplicas for the health accounting.
func (s *Sharded) ReadGOP(video, physDir string, seq int) ([]byte, error) {
	var data []byte
	_, err := s.readReplicas(s.placement(video, physDir, seq), func(i int) error {
		var err error
		data, err = s.shards[i].ReadGOP(video, physDir, seq)
		return err
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// ReadGOPExpect reads one GOP, failing over past replicas whose copy is
// not the expected size — the copy a rewrite left stale on a shard that
// missed the write. If NO replica has the expected size, the
// expectation itself is presumed stale (the GOP was legitimately
// rewritten after the caller snapshotted its metadata) and the read
// falls back to plain failover, so the caller's own staleness handling
// sees the live bytes. want < 0 means no expectation.
func (s *Sharded) ReadGOPExpect(video, physDir string, seq int, want int64) ([]byte, error) {
	if s.replicas == 1 || want < 0 {
		return s.ReadGOP(video, physDir, seq)
	}
	p := s.placement(video, physDir, seq)
	var data []byte
	_, err := s.readReplicas(p, func(i int) error {
		d, err := s.shards[i].ReadGOP(video, physDir, seq)
		if err != nil {
			return err
		}
		if int64(len(d)) != want {
			return fmt.Errorf("shard %d has %d bytes, want %d: %w", i, len(d), want, errWrongSize)
		}
		data = d
		return nil
	})
	if err == nil {
		return data, nil
	}
	if errors.Is(err, errWrongSize) {
		return s.ReadGOP(video, physDir, seq)
	}
	return nil, err
}

// GOPSize returns the stored size of one GOP from the first healthy
// replica in failover order.
func (s *Sharded) GOPSize(video, physDir string, seq int) (int64, error) {
	var n int64
	_, err := s.readReplicas(s.placement(video, physDir, seq), func(i int) error {
		var err error
		n, err = s.shards[i].GOPSize(video, physDir, seq)
		return err
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// DeleteGOP removes every replica of one GOP, in REVERSE placement
// order: a concurrent failover read racing the delete then either
// serves the still-present primary or finds every replica gone — it can
// never miss the primary yet hit a successor, which would charge the
// healthy primary a phantom out-of-sync error ("evictions blame
// nobody"). Missing replicas are not an error (eviction and crash
// recovery may race), but a replica that cannot be removed fails the
// delete — leaving it behind silently would let a later scrub resurrect
// the GOP.
func (s *Sharded) DeleteGOP(video, physDir string, seq int) error {
	var errs []error
	p := s.placement(video, physDir, seq)
	for k := len(p) - 1; k >= 0; k-- {
		i := p[k]
		err := s.shards[i].DeleteGOP(video, physDir, seq)
		s.noteResult(i, err)
		if err != nil {
			errs = append(errs, shardErr(i, err))
		}
	}
	return errors.Join(errs...)
}

// LinkGOP makes dst share src's bytes on every dst replica: a hard link
// where a dst replica's shard also holds a src replica (same
// filesystem), a copy otherwise — the same fallback a link-less
// filesystem gets. Like WriteGOP, the first replica success makes the
// link durable; scrub repairs stragglers.
func (s *Sharded) LinkGOP(video, srcDir string, srcSeq int, dstVideo, dstDir string, dstSeq int) error {
	onSrc := make(map[int]bool, s.replicas)
	for _, i := range s.placement(video, srcDir, srcSeq) {
		onSrc[i] = true
	}
	// The copy fallback reads the source once, via the normal failover
	// path, lazily — an all-local-links call never touches it.
	var data []byte
	var dataErr error
	fetched := false
	fetch := func() ([]byte, error) {
		if !fetched {
			fetched = true
			data, dataErr = s.ReadGOP(video, srcDir, srcSeq)
		}
		return data, dataErr
	}
	var errs []error
	ok := false
	for _, d := range s.placement(dstVideo, dstDir, dstSeq) {
		if onSrc[d] {
			err := s.shards[d].LinkGOP(video, srcDir, srcSeq, dstVideo, dstDir, dstSeq)
			if err == nil {
				s.noteOK(d)
				ok = true
				continue
			}
			if !errors.Is(err, fs.ErrNotExist) {
				s.noteErr(d)
			}
			// This shard's source replica may be missing or degraded; fall
			// through to copying from a healthy replica.
		}
		b, err := fetch()
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if err := s.shards[d].WriteGOP(dstVideo, dstDir, dstSeq, b); err != nil {
			s.noteErr(d)
			errs = append(errs, shardErr(d, err))
			continue
		}
		s.noteOK(d)
		ok = true
	}
	if ok {
		return nil
	}
	return errors.Join(errs...)
}

// fanOut runs fn against every shard in parallel and joins the errors.
func (s *Sharded) fanOut(fn func(i int, shard *Store) error) error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, shard := range s.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = shardErr(i, fn(i, shard))
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (s *Sharded) DeletePhysical(video, physDir string) error {
	return s.fanOut(func(_ int, shard *Store) error {
		return shard.DeletePhysical(video, physDir)
	})
}

func (s *Sharded) DeleteVideo(video string) error {
	return s.fanOut(func(_ int, shard *Store) error {
		return shard.DeleteVideo(video)
	})
}

// SweepTemps reclaims crash-orphaned temp files on every shard in
// parallel (see TempSweeper).
func (s *Sharded) SweepTemps(olderThan time.Duration) error {
	return s.fanOut(func(_ int, shard *Store) error {
		return shard.SweepTemps(olderThan)
	})
}

// Walk visits every GOP exactly once — under replication the same
// address (GOPAddr) exists on several shards, and only the first copy
// found (in shard order) is reported. Shards are walked sequentially
// (fn is not required to be concurrency-safe); within a shard, order is
// unspecified as per the Backend contract.
func (s *Sharded) Walk(fn func(video, physDir string, seq int, size int64) error) error {
	var seen map[GOPAddr]bool
	if s.replicas > 1 {
		seen = make(map[GOPAddr]bool)
	}
	for i, shard := range s.shards {
		err := shard.Walk(func(video, physDir string, seq int, size int64) error {
			if seen != nil {
				a := GOPAddr{video, physDir, seq}
				if seen[a] {
					return nil
				}
				seen[a] = true
			}
			return fn(video, physDir, seq, size)
		})
		if err != nil {
			return shardErr(i, err)
		}
	}
	return nil
}
