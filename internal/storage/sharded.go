package storage

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Sharded distributes GOPs across N filesystem roots by a stable hash of
// the GOP's logical address (video, physDir, seq). Every shard is an
// ordinary localfs Store, so a sharded deployment's on-disk layout is N
// independent Figure-2 trees; which shard holds a GOP is a pure function
// of its address, never of write order, so any process that opens the
// same roots in the same order sees the same placement.
//
// Failure model: a degraded shard (unmounted disk, bad permissions)
// surfaces errors only on operations whose GOPs hash to it — the store
// keeps serving every GOP on healthy shards. Whole-video operations
// (DeletePhysical, DeleteVideo, Walk) fan out to all shards in parallel
// and join errors.
type Sharded struct {
	shards []*Store
}

// OpenSharded creates (if needed) and opens one localfs store per root.
// At least one root is required; the root ORDER is part of the store's
// identity — reopening with the same roots in a different order scatters
// reads to the wrong shards.
func OpenSharded(roots []string) (*Sharded, error) {
	if len(roots) == 0 {
		return nil, fmt.Errorf("storage: sharded backend needs at least one root")
	}
	shards := make([]*Store, len(roots))
	for i, root := range roots {
		s, err := Open(root)
		if err != nil {
			return nil, fmt.Errorf("storage: shard %d: %w", i, err)
		}
		shards[i] = s
	}
	return &Sharded{shards: shards}, nil
}

// Name identifies the backend kind.
func (s *Sharded) Name() string { return "sharded" }

// Shards returns the number of shard roots.
func (s *Sharded) Shards() int { return len(s.shards) }

// shardOf maps a GOP address to its shard index (stable FNV-1a hash).
func (s *Sharded) shardOf(video, physDir string, seq int) int {
	h := fnv.New32a()
	fmt.Fprintf(h, "%s\x00%s\x00%d", video, physDir, seq)
	return int(h.Sum32() % uint32(len(s.shards)))
}

// shardErr tags an error with the shard it came from, so a degraded
// shard is identifiable per GOP. The chain (fs.ErrNotExist etc.) is
// preserved for errors.Is.
func shardErr(i int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("shard %d: %w", i, err)
}

func (s *Sharded) WriteGOP(video, physDir string, seq int, data []byte) error {
	i := s.shardOf(video, physDir, seq)
	return shardErr(i, s.shards[i].WriteGOP(video, physDir, seq, data))
}

func (s *Sharded) ReadGOP(video, physDir string, seq int) ([]byte, error) {
	i := s.shardOf(video, physDir, seq)
	data, err := s.shards[i].ReadGOP(video, physDir, seq)
	return data, shardErr(i, err)
}

func (s *Sharded) GOPSize(video, physDir string, seq int) (int64, error) {
	i := s.shardOf(video, physDir, seq)
	n, err := s.shards[i].GOPSize(video, physDir, seq)
	return n, shardErr(i, err)
}

func (s *Sharded) DeleteGOP(video, physDir string, seq int) error {
	i := s.shardOf(video, physDir, seq)
	return shardErr(i, s.shards[i].DeleteGOP(video, physDir, seq))
}

// LinkGOP hard-links when source and destination hash to the same shard
// (same filesystem); across shards it degrades to a copy, the same
// fallback a link-less filesystem gets.
func (s *Sharded) LinkGOP(video, srcDir string, srcSeq int, dstVideo, dstDir string, dstSeq int) error {
	si := s.shardOf(video, srcDir, srcSeq)
	di := s.shardOf(dstVideo, dstDir, dstSeq)
	if si == di {
		return shardErr(si, s.shards[si].LinkGOP(video, srcDir, srcSeq, dstVideo, dstDir, dstSeq))
	}
	data, err := s.shards[si].ReadGOP(video, srcDir, srcSeq)
	if err != nil {
		return shardErr(si, err)
	}
	return shardErr(di, s.shards[di].WriteGOP(dstVideo, dstDir, dstSeq, data))
}

// fanOut runs fn against every shard in parallel and joins the errors.
func (s *Sharded) fanOut(fn func(i int, shard *Store) error) error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, shard := range s.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = shardErr(i, fn(i, shard))
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (s *Sharded) DeletePhysical(video, physDir string) error {
	return s.fanOut(func(_ int, shard *Store) error {
		return shard.DeletePhysical(video, physDir)
	})
}

func (s *Sharded) DeleteVideo(video string) error {
	return s.fanOut(func(_ int, shard *Store) error {
		return shard.DeleteVideo(video)
	})
}

// SweepTemps reclaims crash-orphaned temp files on every shard in
// parallel (see TempSweeper).
func (s *Sharded) SweepTemps(olderThan time.Duration) error {
	return s.fanOut(func(_ int, shard *Store) error {
		return shard.SweepTemps(olderThan)
	})
}

// Walk visits every GOP on every shard. Shards are walked sequentially
// (fn is not required to be concurrency-safe); within the store, order
// is unspecified as per the Backend contract.
func (s *Sharded) Walk(fn func(video, physDir string, seq int, size int64) error) error {
	for i, shard := range s.shards {
		if err := shard.Walk(fn); err != nil {
			return shardErr(i, err)
		}
	}
	return nil
}
