// Package storagetest exports the storage backend conformance suite, so
// Backend implementations that live outside package storage — the remote
// backend exercised over a live vssd node, the router's cluster backend —
// can prove the same observable semantics as localfs/sharded/mem. The
// checks here ARE the Backend contract: error chains matching
// fs.ErrNotExist for missing GOPs, caller-owned read bytes, idempotent
// deletes, link-survives-source-delete, exactly-once Walk, and one
// complete winner under concurrent same-GOP writes.
package storagetest

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"testing"

	"repro/internal/storage"
)

// Conformance runs the shared semantic suite against one backend. The
// backend must be empty; the suite leaves data behind, so give each call
// a fresh instance.
func Conformance(t *testing.T, b storage.Backend) {
	t.Helper()
	if b.Name() == "" {
		t.Error("backend has no name")
	}

	// Write/read round trip, overwrite semantics, and size.
	payload := []byte("gop payload")
	if err := b.WriteGOP("v", "p1", 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadGOP("v", "p1", 0)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %v %q", err, got)
	}
	// Read bytes are the caller's: mutating them must not reach back
	// into the store (passthrough reads hand them to API clients).
	for i := range got {
		got[i] = 'z'
	}
	if again, err := b.ReadGOP("v", "p1", 0); err != nil || !bytes.Equal(again, payload) {
		t.Fatalf("caller mutation corrupted stored GOP: %v %q", err, again)
	}
	if err := b.WriteGOP("v", "p1", 0, []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.ReadGOP("v", "p1", 0); string(got) != "rewritten" {
		t.Errorf("overwrite not visible: %q", got)
	}
	if n, err := b.GOPSize("v", "p1", 0); err != nil || n != int64(len("rewritten")) {
		t.Errorf("size %d err %v", n, err)
	}

	// Missing GOPs must error with a chain matching fs.ErrNotExist (the
	// read path's stale-fetch detection depends on it).
	if _, err := b.ReadGOP("v", "p1", 99); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing read error %v, want fs.ErrNotExist chain", err)
	}
	if _, err := b.GOPSize("v", "p1", 99); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing size error %v, want fs.ErrNotExist chain", err)
	}

	// Delete is idempotent; missing deletes are not errors.
	if err := b.DeleteGOP("v", "p1", 0); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteGOP("v", "p1", 0); err != nil {
		t.Errorf("double delete: %v", err)
	}
	if _, err := b.ReadGOP("v", "p1", 0); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("deleted GOP still readable (err %v)", err)
	}

	// Link shares bytes; deleting the source must not disturb the target
	// (hard link on localfs, copy fallback elsewhere — same observable
	// semantics).
	if err := b.WriteGOP("v", "p1", 3, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	if err := b.LinkGOP("v", "p1", 3, "w", "p2", 0); err != nil {
		t.Fatal(err)
	}
	if got, err := b.ReadGOP("w", "p2", 0); err != nil || string(got) != "shared" {
		t.Fatalf("linked read: %v %q", err, got)
	}
	if err := b.DeleteGOP("v", "p1", 3); err != nil {
		t.Fatal(err)
	}
	if got, err := b.ReadGOP("w", "p2", 0); err != nil || string(got) != "shared" {
		t.Errorf("link target lost after source delete: %v %q", err, got)
	}
	if err := b.LinkGOP("v", "p1", 3, "w", "p2", 1); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("link from missing source error %v, want fs.ErrNotExist chain", err)
	}

	// DeletePhysical removes exactly one physical video's GOPs.
	for seq := 0; seq < 4; seq++ {
		if err := b.WriteGOP("v", "pA", seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteGOP("v", "pB", seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.DeletePhysical("v", "pA"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadGOP("v", "pA", 0); !errors.Is(err, fs.ErrNotExist) {
		t.Error("deleted physical still readable")
	}
	if _, err := b.ReadGOP("v", "pB", 0); err != nil {
		t.Errorf("unrelated physical removed: %v", err)
	}

	// Walk enumerates every (video, physDir, seq) exactly once with its
	// stored size.
	seen := map[string]int64{}
	err = b.Walk(func(video, physDir string, seq int, size int64) error {
		key := fmt.Sprintf("%s/%s/%d", video, physDir, seq)
		if _, dup := seen[key]; dup {
			return fmt.Errorf("walk visited %s twice", key)
		}
		seen[key] = size
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"w/p2/0": int64(len("shared")),
		"v/pB/0": 1, "v/pB/1": 1, "v/pB/2": 1, "v/pB/3": 1,
	}
	if len(seen) != len(want) {
		t.Errorf("walk saw %v, want keys %v", seen, want)
	}
	for k, sz := range want {
		if seen[k] != sz {
			t.Errorf("walk %s size %d, want %d", k, seen[k], sz)
		}
	}

	// DeleteVideo removes a logical video entirely and leaves others.
	if err := b.DeleteVideo("v"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadGOP("v", "pB", 0); !errors.Is(err, fs.ErrNotExist) {
		t.Error("deleted video still readable")
	}
	if got, err := b.ReadGOP("w", "p2", 0); err != nil || string(got) != "shared" {
		t.Errorf("unrelated video removed: %v %q", err, got)
	}
}

// ConcurrentWriteSameGOP regresses the temp-file collision: two writers
// racing on the same <seq>.gop used to share one path+".tmp" name and
// could interleave into a torn file or fail the rename. With unique temp
// names, the winner must always be one writer's complete payload.
func ConcurrentWriteSameGOP(t *testing.T, b storage.Backend) {
	t.Helper()
	const writers, rounds = 8, 25
	payloads := make([][]byte, writers)
	for i := range payloads {
		p := bytes.Repeat([]byte{byte('a' + i)}, 4096)
		payloads[i] = p
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := b.WriteGOP("v", "p1", 7, payloads[i]); err != nil {
					errs[i] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, err := b.ReadGOP("v", "p1", 7)
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	for _, p := range payloads {
		if bytes.Equal(got, p) {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("stored GOP is not any writer's payload (len %d, first byte %q)", len(got), got[:1])
	}
}
