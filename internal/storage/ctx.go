package storage

import "context"

// The Backend read methods are deliberately context-free: local
// filesystem reads have nothing useful to cancel, and keeping the
// interface small keeps nine implementations honest. Network-backed
// backends are different — a remote read should stop retrying when the
// caller is gone, and a request trace on the caller's context should
// ride the wire (server.Client injects the X-VSS-Trace header from it).
// ContextReader / ContextExpectReader are the optional capabilities
// those backends implement, discovered the same way ExpectReader is: a
// direct type assertion, no Unwrap chasing, so a user wrapper's read
// path is never bypassed — wrappers opt in by implementing the
// interface themselves (Instrumented does).

// ContextReader is implemented by backends whose reads honor a caller
// context (cancellation, trace propagation). Remote, Instrumented, and
// the router's Cluster implement it.
type ContextReader interface {
	ReadGOPContext(ctx context.Context, video, physDir string, seq int) ([]byte, error)
}

// ContextExpectReader combines a caller context with the expected-size
// hint of ExpectReader.
type ContextExpectReader interface {
	ReadGOPExpectContext(ctx context.Context, video, physDir string, seq int, want int64) ([]byte, error)
}

// ReadGOPCtx reads one GOP through b, passing ctx when b supports it
// and falling back to a plain ReadGOP otherwise.
func ReadGOPCtx(ctx context.Context, b Backend, video, physDir string, seq int) ([]byte, error) {
	if cr, ok := b.(ContextReader); ok {
		return cr.ReadGOPContext(ctx, video, physDir, seq)
	}
	return b.ReadGOP(video, physDir, seq)
}

// ReadGOPExpectCtx reads one GOP with an expected-size hint, preferring
// the richest capability b offers: context+hint, then hint, then
// context, then the plain read.
func ReadGOPExpectCtx(ctx context.Context, b Backend, video, physDir string, seq int, want int64) ([]byte, error) {
	switch r := b.(type) {
	case ContextExpectReader:
		return r.ReadGOPExpectContext(ctx, video, physDir, seq, want)
	case ExpectReader:
		return r.ReadGOPExpect(video, physDir, seq, want)
	case ContextReader:
		return r.ReadGOPContext(ctx, video, physDir, seq)
	default:
		return b.ReadGOP(video, physDir, seq)
	}
}
