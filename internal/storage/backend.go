package storage

// Backend is the physical GOP store abstraction. The paper's layout —
// one directory per logical video, one physical-video subdirectory per
// materialized view, one file per GOP — is a *logical* addressing scheme
// (video, physDir, seq); a Backend decides where those GOPs physically
// live. Three implementations ship:
//
//   - Store (localfs): one filesystem root, the paper's Figure 2 layout.
//   - Sharded: N filesystem roots with GOPs placed by a stable hash of
//     (video, physDir, seq), optionally R-way replicated (primary + ring
//     successors) with read failover and scrub-repair; per-shard IO runs
//     in parallel and a degraded shard surfaces errors per GOP — or, with
//     replicas, not at all while a healthy copy survives.
//   - Mem: an in-memory map, for tests and IO-free benchmarking.
//   - Remote: GOPs stored on one vssd node over the wire protocol
//     (remote.go); internal/router composes Remotes into a replicated
//     fleet with the same ring/failover/scrub idiom as Sharded.
//
// Every implementation must be safe for concurrent use and must report
// missing GOPs with errors that match errors.Is(err, fs.ErrNotExist), so
// callers can distinguish "evicted under me" races from real IO failures.
type Backend interface {
	// Name identifies the backend kind ("localfs", "sharded", "mem") for
	// metrics and operational labels.
	Name() string
	// WriteGOP atomically writes one GOP: readers never observe a torn
	// GOP, and concurrent writers of the same (video, physDir, seq) leave
	// one complete winner.
	WriteGOP(video, physDir string, seq int, data []byte) error
	// ReadGOP reads one GOP's bytes.
	ReadGOP(video, physDir string, seq int) ([]byte, error)
	// GOPSize returns the stored size of one GOP.
	GOPSize(video, physDir string, seq int) (int64, error)
	// DeleteGOP removes one GOP. Missing GOPs are not an error: eviction
	// and crash recovery may race.
	DeleteGOP(video, physDir string, seq int) error
	// LinkGOP makes dst share src's bytes — a hard link where the backend
	// supports it (compaction's zero-copy merge, Section 5.3), a copy
	// otherwise. Deleting src afterwards must not disturb dst.
	LinkGOP(video, srcDir string, srcSeq int, dstVideo, dstDir string, dstSeq int) error
	// DeletePhysical removes one physical video and all of its GOPs.
	DeletePhysical(video, physDir string) error
	// DeleteVideo removes a logical video's data entirely.
	DeleteVideo(video string) error
	// Walk visits every stored GOP. Order is unspecified; fn errors abort
	// the walk.
	Walk(fn func(video, physDir string, seq int, size int64) error) error
}
