package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriteReadGOP(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("gop payload")
	if err := s.WriteGOP("traffic", "p000001-640x360r30.h264", 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadGOP("traffic", "p000001-640x360r30.h264", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	sz, err := s.GOPSize("traffic", "p000001-640x360r30.h264", 0)
	if err != nil || sz != int64(len(data)) {
		t.Errorf("size %d err %v", sz, err)
	}
}

func TestWriteGOPAtomicNoTemp(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.WriteGOP("v", "p1", 0, []byte("x"))
	entries, _ := os.ReadDir(filepath.Join(s.Root(), "v", "p1"))
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Error("temp file left behind")
		}
	}
}

func TestReadMissing(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.ReadGOP("v", "p1", 7); err == nil {
		t.Error("missing GOP should error")
	}
	if _, err := s.GOPSize("v", "p1", 7); err == nil {
		t.Error("missing GOP size should error")
	}
}

func TestDeleteGOPIdempotent(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.WriteGOP("v", "p1", 0, []byte("x"))
	if err := s.DeleteGOP("v", "p1", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteGOP("v", "p1", 0); err != nil {
		t.Errorf("double delete: %v", err)
	}
}

func TestLinkGOP(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.WriteGOP("v", "p1", 3, []byte("shared"))
	if err := s.LinkGOP("v", "p1", 3, "v", "p2", 0); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadGOP("v", "p2", 0)
	if err != nil || string(got) != "shared" {
		t.Fatalf("linked read: %v %q", err, got)
	}
	// Deleting the source must not break the link target.
	s.DeleteGOP("v", "p1", 3)
	if _, err := s.ReadGOP("v", "p2", 0); err != nil {
		t.Errorf("link target lost after source delete: %v", err)
	}
}

func TestDeletePhysicalAndVideo(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.WriteGOP("v", "p1", 0, []byte("a"))
	s.WriteGOP("v", "p2", 0, []byte("b"))
	if err := s.DeletePhysical("v", "p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadGOP("v", "p1", 0); err == nil {
		t.Error("physical still readable")
	}
	if _, err := s.ReadGOP("v", "p2", 0); err != nil {
		t.Error("unrelated physical removed")
	}
	if err := s.DeleteVideo("v"); err != nil {
		t.Fatal(err)
	}
	if sz, _ := s.VideoSize("v"); sz != 0 {
		t.Errorf("deleted video size %d", sz)
	}
}

func TestVideoSize(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.WriteGOP("v", "p1", 0, make([]byte, 100))
	s.WriteGOP("v", "p1", 1, make([]byte, 50))
	s.WriteGOP("v", "p2", 0, make([]byte, 25))
	sz, err := s.VideoSize("v")
	if err != nil {
		t.Fatal(err)
	}
	if sz != 175 {
		t.Errorf("size %d, want 175", sz)
	}
	if sz, _ := s.VideoSize("missing"); sz != 0 {
		t.Errorf("missing video size %d", sz)
	}
}

func TestPhysicalDirName(t *testing.T) {
	got := PhysicalDirName(2, 960, 540, 30, "hevc")
	if got != "p000002-960x540r30.hevc" {
		t.Errorf("dir name %q", got)
	}
}

func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteGOP("v", "p1", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A crash mid-atomicWrite leaves a uniquely named temp; because no
	// later write reuses the name, the sweep must reclaim it.
	tmp := filepath.Join(dir, "v", "p1", ".0.gop.tmp-999999")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The age guard protects a concurrent writer's live temp: a fresh
	// temp survives an hour-threshold sweep.
	if err := s.SweepTemps(time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Errorf("fresh temp swept despite age guard: %v", err)
	}
	if err := s.SweepTemps(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("orphaned temp survived sweep (stat err %v)", err)
	}
	if got, err := s.ReadGOP("v", "p1", 0); err != nil || string(got) != "x" {
		t.Errorf("real GOP disturbed by sweep: %v %q", err, got)
	}
}
