package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/vss"
)

// obsTestServer boots a server with one written video and one served
// read, so every metrics section and pipeline stage has data.
func obsTestServer(t *testing.T) (*vss.System, *Client) {
	t.Helper()
	ctx := context.Background()
	sys, c := newTestServer(t, vss.Options{}, Config{CacheBytes: 1 << 20})
	if err := c.Create(ctx, "cam", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteGOPs(ctx, "cam", 8, encodeGOPs(t, testFootage(16, 48, 32, 8), 8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadAll(ctx, "cam", "codec=h264"); err != nil {
		t.Fatal(err)
	}
	return sys, c
}

// TestTraceEchoAndSlowRing pins the serving edge of the trace model: a
// propagated trace ID is resumed (not re-minted), echoed in the
// response header, and the finished request lands in /debug/traces with
// per-stage timings.
func TestTraceEchoAndSlowRing(t *testing.T) {
	_, c := obsTestServer(t)

	// A context trace makes the client send X-VSS-Trace, exactly like a
	// router forwarding a read would.
	const id = "feedfacecafebeef"
	ctx := obs.WithTrace(context.Background(), obs.StartTrace(id, "client"))
	// A spec the warm-up read did not cache, so this is a live read with
	// plan/fetch/decode stages, not a cache replay.
	resp, err := c.do(ctx, http.MethodGet, "/videos/cam/read?codec=h264&start=0&end=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != id {
		t.Fatalf("trace header echo = %q, want %q (propagated IDs must be resumed)", got, id)
	}

	dump, err := c.Traces(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if dump.Capacity != obs.DefaultSlowTraces {
		t.Errorf("capacity = %d, want default %d", dump.Capacity, obs.DefaultSlowTraces)
	}
	var found *obs.TraceSnapshot
	for i := range dump.Traces {
		if dump.Traces[i].ID == id {
			found = &dump.Traces[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("trace %s not in /debug/traces (%d retained)", id, len(dump.Traces))
	}
	if found.Name != "read" || found.Video != "cam" || found.Status != http.StatusOK {
		t.Errorf("trace = name %q video %q status %d, want read/cam/200",
			found.Name, found.Video, found.Status)
	}
	for _, stage := range []string{"plan", "decode", "flush"} {
		if found.Stages[stage].Count == 0 {
			t.Errorf("trace has no %s stage: %v", stage, found.Stages)
		}
	}
	if found.TTFBMillis <= 0 {
		t.Errorf("trace TTFB = %v, want > 0", found.TTFBMillis)
	}
}

// TestMetricsPipelineSection asserts the /metrics pipeline section is
// complete and reflects served work.
func TestMetricsPipelineSection(t *testing.T) {
	_, c := obsTestServer(t)
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range obs.StageNames() {
		if _, ok := snap.Pipeline[name]; !ok {
			t.Errorf("pipeline section missing stage %q", name)
		}
	}
	for _, name := range []string{"plan", "fetch", "decode", "flush"} {
		st := snap.Pipeline[name]
		if st.Count == 0 {
			t.Errorf("pipeline stage %q count = 0 after a served read", name)
		}
		if st.P99Millis < st.P50Millis {
			t.Errorf("stage %q p99 %.3f < p50 %.3f", name, st.P99Millis, st.P50Millis)
		}
	}
}

// promLine validates one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[^{}]*\})? -?[0-9.eE+-]+$`)

// TestPrometheusCoversSnapshot is the exposition-completeness gate:
// every leaf field of the JSON /metrics snapshot must surface as a
// Prometheus sample, and every emitted line must parse as the text
// format. The expected-name set is derived by an independent re-walk of
// the marshaled snapshot, so a walker regression that silently drops a
// section fails here.
func TestPrometheusCoversSnapshot(t *testing.T) {
	_, c := obsTestServer(t)
	ctx := context.Background()

	fetch := func(path, accept string) (*http.Response, string) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	_, jsonBody := fetch("/metrics", "")
	resp, promBody := fetch("/metrics?format=prometheus", "")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content type = %q", ct)
	}
	// Accept-header negotiation selects the same exposition.
	_, negotiated := fetch("/metrics", "application/openmetrics-text, text/plain;prometheus=1")
	if !strings.HasPrefix(negotiated, "vss_") {
		t.Errorf("Accept negotiation did not select Prometheus output: %q", negotiated[:min(len(negotiated), 60)])
	}

	// Every line parses as a sample.
	samples := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(promBody, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		samples[name] = true
	}

	// Independent re-walk of the snapshot document: collect the sample
	// name every leaf must have produced.
	var doc any
	if err := json.Unmarshal([]byte(jsonBody), &doc); err != nil {
		t.Fatal(err)
	}
	// Local name-mangling mirrors of the walker's rules, reimplemented
	// here so the test does not trivially agree with the code under test.
	joinSeg := func(base, seg string) string {
		if base == "" {
			return seg
		}
		return base + "_" + seg
	}
	sanitize := func(s string) string {
		out := []byte(s)
		for i, c := range out {
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
				continue
			}
			out[i] = '_'
		}
		if len(out) == 0 || out[0] >= '0' && out[0] <= '9' {
			out = append([]byte{'_'}, out...)
		}
		return string(out)
	}
	expected := map[string]bool{}
	var collect func(name, rel string, v any, labeled bool)
	collect = func(name, rel string, v any, labeled bool) {
		switch val := v.(type) {
		case map[string]any:
			if _, ok := promOpts.Labels[rel]; ok && !labeled {
				for _, sub := range val {
					collect(name, rel, sub, true)
				}
				return
			}
			for k, sub := range val {
				collect(joinSeg(name, sanitize(k)), joinSeg(rel, k), sub, false)
			}
		case []any:
			for _, el := range val {
				collect(name, rel, el, true)
			}
		case string:
			expected[name+"_info"] = true
		case bool, float64:
			expected[name] = true
		}
	}
	collect("vss", "", doc, false)

	if len(expected) == 0 {
		t.Fatal("snapshot walk produced no expected samples")
	}
	for name := range expected {
		if !samples[name] {
			t.Errorf("JSON snapshot field has no Prometheus sample: %s", name)
		}
	}
	// Spot-check the section the tentpole added.
	for _, want := range []string{"vss_pipeline_decode_p99_ms", "vss_pipeline_fetch_count"} {
		if !samples[want] {
			t.Errorf("missing expected pipeline sample %s", want)
		}
	}
}
