// Package server implements vssd's HTTP serving subsystem: the VSS store
// exposed over the network with the production-shape concerns the library
// cannot express — an admission controller that bounds in-flight reads
// (with a bounded wait queue and per-client limits), streaming read
// responses backed by core.ReadStream so a disconnected client cancels
// its in-flight decode work, a byte-bounded LRU of hot encoded responses,
// and a /metrics endpoint surfacing read statistics, cache hit rates,
// deferred-compression levels, and queue depths.
//
// # Endpoints
//
//	GET    /videos                 list videos
//	PUT    /videos/{name}          create (?budget=bytes; <0 unlimited)
//	DELETE /videos/{name}          delete
//	GET    /videos/{name}          metadata and physical-view summary
//	POST   /videos/{name}/gops     GOP-level encoded write (?fps=), body framed
//	GET    /videos/{name}/read     streaming read (spec in query parameters)
//	GET    /metrics                live metrics snapshot (JSON, or
//	                               Prometheus text with ?format=prometheus)
//	GET    /debug/traces           N slowest recent request traces (JSON)
//	POST   /maintain               run one maintenance pass
//	GET    /healthz                liveness probe (storage plane)
//
// plus the GOP storage plane under /gops — raw GOP bytes at backend
// addresses, used by the router fleet to treat this node as a remote
// replica store; see storageplane.go and docs/WIRE.md.
//
// # Wire format
//
// Binary bodies — the write request body and the read response body — are
// sequences of framed chunks: a 4-byte big-endian payload length followed
// by the payload. A read stream is terminated by a zero-length chunk; if
// the connection closes without one, the client knows the stream was
// truncated (server-side error or cancellation). For compressed reads
// each chunk is one encoded GOP; for raw reads each chunk is a batch of
// frames, concatenated in the pixel layout the response headers describe.
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/frame"
	"repro/internal/obs"
	"repro/vss"
)

// Config tunes the serving subsystem. The zero value selects defaults
// sized for a single-node deployment.
type Config struct {
	// MaxInFlightReads bounds concurrently executing reads (admitted past
	// the queue). 0 defaults to 2*GOMAXPROCS: enough to keep the store's
	// worker pool busy while bounding memory.
	MaxInFlightReads int
	// MaxQueuedReads bounds reads waiting for a slot before new arrivals
	// are rejected with 429. 0 defaults to 4*MaxInFlightReads.
	MaxQueuedReads int
	// MaxReadsPerClient bounds one client's in-flight + queued reads
	// (keyed by X-VSS-Client, falling back to the remote IP). 0 defaults
	// to MaxInFlightReads.
	MaxReadsPerClient int
	// CacheBytes bounds the hot-response LRU. 0 disables response
	// caching; the store's own materialized-view cache still applies.
	CacheBytes int64
	// SlowTraces bounds the slow-trace ring served by /debug/traces: the
	// N slowest recent requests with full per-stage breakdowns. 0
	// defaults to obs.DefaultSlowTraces.
	SlowTraces int
	// RequestLog enables one structured slog line per finished read
	// (trace ID, video, status, bytes, TTFB, stage breakdown) on the
	// default logger.
	RequestLog bool
	// DefaultCodec is the output codec applied to reads whose query omits
	// codec= entirely (an explicit codec=raw still means raw). Empty means
	// raw frames, the historical behavior. Must name a registered codec;
	// vssd validates the flag at startup.
	DefaultCodec vss.Codec
}

func (c Config) withDefaults() Config {
	if c.MaxInFlightReads <= 0 {
		c.MaxInFlightReads = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueuedReads <= 0 {
		c.MaxQueuedReads = 4 * c.MaxInFlightReads
	}
	if c.MaxReadsPerClient <= 0 {
		c.MaxReadsPerClient = c.MaxInFlightReads
	}
	return c
}

// Server serves one vss.System over HTTP. Create with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	sys   *vss.System
	cfg   Config
	adm   *admission
	cache *responseCache
	bufs  bufPool
	m     metrics
	mux   *http.ServeMux

	pipe   *obs.Pipeline // the store's per-stage histograms (never nil)
	traces *obs.SlowRing // N slowest recent traces, served by /debug/traces
	log    *slog.Logger  // per-request log, nil unless cfg.RequestLog
}

// New builds a Server around an open system.
func New(sys *vss.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		sys:    sys,
		cfg:    cfg,
		adm:    newAdmission(cfg.MaxInFlightReads, cfg.MaxQueuedReads, cfg.MaxReadsPerClient),
		cache:  newResponseCache(cfg.CacheBytes),
		mux:    http.NewServeMux(),
		pipe:   sys.Store().Pipeline(),
		traces: obs.NewSlowRing(cfg.SlowTraces),
	}
	if cfg.RequestLog {
		s.log = slog.Default()
	}
	s.mux.HandleFunc("GET /videos", s.handleList)
	s.mux.HandleFunc("GET /videos/{name}", s.handleStat)
	s.mux.HandleFunc("PUT /videos/{name}", s.handleCreate)
	s.mux.HandleFunc("DELETE /videos/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /videos/{name}/gops", s.handleWriteGOPs)
	s.mux.HandleFunc("GET /videos/{name}/read", s.handleRead)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("POST /maintain", s.handleMaintain)
	// Storage plane: the GOP-level endpoints a router fleet uses to treat
	// this node as a remote replica store (storageplane.go).
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("PUT /gops/{video}/{phys}/{seq}", s.handleGOPWrite)
	s.mux.HandleFunc("GET /gops/{video}/{phys}/{seq}", s.handleGOPRead)
	s.mux.HandleFunc("HEAD /gops/{video}/{phys}/{seq}", s.handleGOPRead)
	s.mux.HandleFunc("DELETE /gops/{video}/{phys}/{seq}", s.handleGOPDelete)
	s.mux.HandleFunc("POST /gops/{video}/{phys}/{seq}/link", s.handleGOPLink)
	s.mux.HandleFunc("DELETE /gops/{video}/{phys}", s.handleGOPDeletePhysical)
	s.mux.HandleFunc("DELETE /gops/{video}", s.handleGOPDeleteVideo)
	s.mux.HandleFunc("GET /gops", s.handleGOPWalk)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusFor maps a store error onto its response status code.
func statusFor(err error) int {
	switch {
	case errors.Is(err, vss.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, vss.ErrExists):
		return http.StatusConflict
	case errors.Is(err, vss.ErrInvalidSpec):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// httpError maps store errors onto status codes.
func httpError(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), statusFor(err))
}

// statusClientGone records "client closed request" (the nginx 499
// convention) in request logs and trace snapshots. It is never sent on
// the wire — there is no client left to send it to.
const statusClientGone = 499

// clientFault reports whether a read failure was the client's own doing —
// those map to 4xx and must not count toward server read-error metrics.
func clientFault(err error) bool {
	return errors.Is(err, vss.ErrNotFound) || errors.Is(err, vss.ErrInvalidSpec)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// clientKey identifies a client for per-client admission limits.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-VSS-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names := s.sys.Videos()
	sort.Strings(names)
	writeJSON(w, map[string][]string{"videos": names})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var budget int64
	if b := r.URL.Query().Get("budget"); b != "" {
		var err error
		if budget, err = strconv.ParseInt(b, 10, 64); err != nil {
			http.Error(w, "bad budget: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if err := s.sys.Create(name, budget); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.sys.Delete(name); err != nil {
		httpError(w, err)
		return
	}
	s.cache.removeVideo(name)
	w.WriteHeader(http.StatusNoContent)
}

// ViewStat summarizes one physical view in a stat response.
type ViewStat struct {
	ID       int    `json:"id"`
	Width    int    `json:"width"`
	Height   int    `json:"height"`
	FPS      int    `json:"fps"`
	Codec    string `json:"codec"`
	Quality  int    `json:"quality"`
	GOPs     int    `json:"gops"`
	Bytes    int64  `json:"bytes"`
	Original bool   `json:"original"`
}

// VideoStat is the stat response for one video.
type VideoStat struct {
	Name     string     `json:"name"`
	Duration float64    `json:"duration"`
	FPS      int        `json:"fps"`
	Width    int        `json:"width"`
	Height   int        `json:"height"`
	Budget   int64      `json:"budget"`
	Bytes    int64      `json:"bytes"`
	Views    []ViewStat `json:"views"`
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v, phys, err := s.sys.Store().Info(name)
	if err != nil {
		httpError(w, err)
		return
	}
	stat := VideoStat{
		Name: v.Name, Duration: v.Duration, FPS: v.FPS,
		Width: v.Width, Height: v.Height, Budget: v.Budget,
	}
	sort.Slice(phys, func(i, j int) bool { return phys[i].ID < phys[j].ID })
	for i := range phys {
		p := &phys[i]
		stat.Bytes += p.Bytes()
		stat.Views = append(stat.Views, ViewStat{
			ID: p.ID, Width: p.Width, Height: p.Height, FPS: p.FPS,
			Codec: string(p.Codec), Quality: p.Quality,
			GOPs: len(p.GOPs), Bytes: p.Bytes(), Original: p.Orig,
		})
	}
	writeJSON(w, stat)
}

// maxWriteBody caps a single GOP-write request (DoS hygiene; bulk loads
// should be split across requests anyway so commits interleave fairly).
const maxWriteBody = 1 << 30

func (s *Server) handleWriteGOPs(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	fps, err := strconv.Atoi(r.URL.Query().Get("fps"))
	if err != nil || fps <= 0 {
		http.Error(w, "fps query parameter required (positive integer)", http.StatusBadRequest)
		return
	}
	gops, err := readChunks(http.MaxBytesReader(w, r.Body, maxWriteBody))
	if err != nil {
		http.Error(w, "bad GOP framing: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(gops) == 0 {
		http.Error(w, "no GOPs in request body", http.StatusBadRequest)
		return
	}
	if err := s.sys.WriteEncoded(name, fps, gops); err != nil {
		httpError(w, err)
		return
	}
	// The video grew: cached responses for it are stale prefixes now.
	s.cache.invalidateVideo(name)
	s.m.writes.Add(1)
	s.m.gopsWritten.Add(int64(len(gops)))
	writeJSON(w, map[string]int{"gops": len(gops)})
}

// parseReadSpec builds a vss.ReadSpec from read query parameters, plus a
// canonical cache key suffix covering every parameter that affects bytes.
// def is the codec applied when the query has no codec= at all (the cache
// key embeds the resolved codec, so defaulted and explicit requests for
// the same codec share entries).
func parseReadSpec(q map[string][]string, def vss.Codec) (vss.ReadSpec, string, error) {
	get := func(k string) string {
		if v, ok := q[k]; ok && len(v) > 0 {
			return v[0]
		}
		return ""
	}
	var spec vss.ReadSpec
	var err error
	num := func(k string) float64 {
		s := get(k)
		if s == "" || err != nil {
			return 0
		}
		v, perr := strconv.ParseFloat(s, 64)
		if perr != nil {
			err = fmt.Errorf("bad %s: %v", k, perr)
		}
		return v
	}
	spec.T.Start = num("start")
	spec.T.End = num("end")
	spec.T.FPS = int(num("fps"))
	spec.S.Width = int(num("width"))
	spec.S.Height = int(num("height"))
	spec.P.Quality = int(num("quality"))
	spec.P.MinPSNR = num("minpsnr")
	if err != nil {
		return spec, "", err
	}
	if roi := get("roi"); roi != "" {
		parts := strings.Split(roi, ",")
		if len(parts) != 4 {
			return spec, "", fmt.Errorf("bad roi: want x0,y0,x1,y1")
		}
		var r vss.Rect
		for i, dst := range []*int{&r.X0, &r.Y0, &r.X1, &r.Y1} {
			v, perr := strconv.Atoi(strings.TrimSpace(parts[i]))
			if perr != nil {
				return spec, "", fmt.Errorf("bad roi: %v", perr)
			}
			*dst = v
		}
		spec.S.ROI = &r
	}
	cd, hasCodec := "", false
	if v, ok := q["codec"]; ok && len(v) > 0 {
		cd, hasCodec = v[0], true
	}
	if !hasCodec && def != "" && def != vss.RawCodec {
		cd = string(def)
	}
	if cd != "" && cd != "raw" {
		spec.P.Codec = vss.Codec(cd)
		// Validate here, not just in the store's resolve: the codec string
		// is embedded in the response-cache key, and the cache is consulted
		// before the store ever sees the spec — a free-form codec must not
		// reach either.
		if !spec.P.Codec.Valid() {
			return spec, "", fmt.Errorf("unknown codec %q", cd)
		}
	}
	if f := get("format"); f != "" {
		pf, perr := frame.ParsePixelFormat(f)
		if perr != nil {
			return spec, "", perr
		}
		spec.P.Format = pf
	}
	key := fmt.Sprintf("s=%g,e=%g,f=%d,w=%d,h=%d,c=%s,q=%d,p=%g,fmt=%d,roi=%v",
		spec.T.Start, spec.T.End, spec.T.FPS, spec.S.Width, spec.S.Height,
		spec.P.Codec, spec.P.Quality, spec.P.MinPSNR, spec.P.Format, spec.S.ROI)
	return spec, key, nil
}

// readObs accumulates one request's outcome for the slow-trace ring and
// the optional per-request log, finalized exactly once when the handler
// returns. A zero status means the success path ran to completion (200).
type readObs struct {
	s      *Server
	tr     *obs.Trace
	video  string
	detail string
	status int
	bytes  int64
	ttfb   time.Duration
}

// finish snapshots the trace into the slow ring and emits the request
// log line. The snapshot is taken once here, so ring and log agree.
func (ro *readObs) finish() {
	if ro.status == 0 {
		ro.status = http.StatusOK
	}
	snap := ro.tr.Snapshot(obs.Request{
		Video: ro.video, Detail: ro.detail,
		Status: ro.status, Bytes: ro.bytes, TTFB: ro.ttfb,
	}, time.Now())
	ro.s.traces.Add(snap)
	if ro.s.log != nil {
		ro.s.log.Info(snap.Name,
			"trace", snap.ID,
			"video", snap.Video,
			"detail", snap.Detail,
			"status", snap.Status,
			"bytes", snap.Bytes,
			"ttfb_ms", snap.TTFBMillis,
			"total_ms", snap.DurationMillis,
			"stages", snap.StageSummary(),
		)
	}
}

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	arrived := time.Now() // TTFB clock starts before admission queueing
	if where := r.URL.Query().Get("where"); where != "" {
		s.handleQuery(w, r, arrived, where)
		return
	}
	name := r.PathValue("name")
	spec, key, err := parseReadSpec(r.URL.Query(), s.cfg.DefaultCodec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Trace the request: resume an upstream-minted ID from the wire
	// header or mint a fresh one, echo it back, and ride the context so
	// every pipeline stage below (and every remote hop the storage layer
	// makes) folds into the same trace.
	tr := obs.StartTrace(r.Header.Get(obs.TraceHeader), "read")
	w.Header().Set(obs.TraceHeader, tr.ID())
	ctx := obs.WithTrace(r.Context(), tr)
	ro := &readObs{s: s, tr: tr, video: name, detail: key}
	defer ro.finish()

	// Admission: bound the reads in flight before touching the store.
	admStart := time.Now()
	release, err := s.adm.acquire(ctx, clientKey(r))
	obs.Observe(ctx, s.pipe, obs.StageAdmission, time.Since(admStart))
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull), errors.Is(err, errPerClientLimit):
			s.m.admissionRejected.Add(1)
			ro.status = http.StatusTooManyRequests
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		default: // client disconnected while queued
			s.m.admissionAborted.Add(1)
			ro.status = statusClientGone
		}
		return
	}
	defer release()
	s.m.readsStarted.Add(1)

	compressed := spec.P.Codec != "" && spec.P.Codec != vss.RawCodec
	// %q-quote the video name so the key is injective: names may contain
	// any of the spec-suffix characters, and a separator-only join would
	// let a crafted (name, spec) pair collide with another video's entry.
	cacheKey := fmt.Sprintf("%q|%s", name, key)
	var cacheGen uint64
	cacheable := compressed && s.cache.enabled()
	if cacheable {
		if e, ok := s.cache.get(cacheKey); ok {
			s.m.cacheHits.Add(1)
			s.replayCached(w, e, arrived, tr, ro)
			return
		}
		s.m.cacheMisses.Add(1)
		// Snapshot the invalidation generation BEFORE the read plans and
		// snapshots data, so a write landing mid-stream voids the insert.
		cacheGen = s.cache.generation(name)
	}

	// Stream the read: the request context is the read's context, so a
	// client that disconnects mid-stream cancels the remaining decode
	// work at the next GOP boundary.
	st, err := s.sys.ReadStream(ctx, name, spec)
	if err != nil {
		if !clientFault(err) {
			s.m.readErrors.Add(1)
		}
		ro.status = statusFor(err)
		httpError(w, err)
		return
	}
	defer st.Close()

	if !compressed && int64(spec.P.Format.Size(st.Width, st.Height)) > maxChunkBytes {
		// One frame must fit in one wire chunk; anything bigger (a >256MiB
		// frame needs an ~300-megapixel output) is an absurd request, not
		// a serving case.
		st.Close()
		ro.status = http.StatusBadRequest
		http.Error(w, "requested frame size exceeds the wire chunk limit", http.StatusBadRequest)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-VSS-Width", strconv.Itoa(st.Width))
	h.Set("X-VSS-Height", strconv.Itoa(st.Height))
	h.Set("X-VSS-FPS", strconv.Itoa(st.FPS))
	if compressed {
		h.Set("X-VSS-Codec", string(spec.P.Codec))
	} else {
		h.Set("X-VSS-Codec", "raw")
		h.Set("X-VSS-Format", spec.P.Format.String())
		h.Set("X-VSS-Frame-Bytes", strconv.Itoa(spec.P.Format.Size(st.Width, st.Height)))
	}
	flusher, _ := w.(http.Flusher)
	cw := s.bufs.get()
	cw.reset(w, flusher, func() {
		ro.ttfb = time.Since(arrived)
		s.m.ttfb.Observe(ro.ttfb)
	})
	cw.instrument(s.pipe, tr)
	defer func() {
		ro.bytes = cw.bytesOut
		s.m.bytesSent.Add(cw.bytesOut)
		s.m.flushes.Add(cw.flushes)
		s.m.flushCoalesced.Add(cw.coalesced)
		s.bufs.put(cw)
	}()

	// Accumulate compressed GOPs for a cache insert only while they could
	// possibly fit: with the cache disabled (or a response outgrowing it)
	// holding the full output would silently reinstate the ReadResult
	// memory footprint streaming exists to avoid. The chunkWriter never
	// retains batch.GOP (small GOPs are copied into its pooled buffer,
	// large ones written through), so the cache can safely keep it.
	var cached [][]byte
	var cachedBytes int64
	for {
		batch, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Distinguish "client went away" from a real read failure.
			// Before the first committed body byte an error response is
			// still possible; after it, the stream just ends without a
			// terminator chunk, so the client sees truncation, never
			// silent partial data.
			switch {
			case r.Context().Err() != nil:
				s.m.readsCancelled.Add(1)
				ro.status = statusClientGone
			case !cw.committed:
				cw.abort()
				s.m.readErrors.Add(1)
				ro.status = statusFor(err)
				httpError(w, err)
			default:
				s.m.readErrors.Add(1)
				ro.status = statusFor(err)
			}
			s.noteReadStats(st)
			return
		}
		var werr error
		if batch.GOP != nil {
			werr = cw.writeGOP(batch.GOP)
		} else {
			if len(batch.Frames) == 0 {
				continue // nothing to frame; zero-length chunks mean EOF
			}
			werr = cw.writeFrames(batch.Frames)
		}
		if werr != nil {
			s.m.readsCancelled.Add(1)
			ro.status = statusClientGone
			s.noteReadStats(st)
			return
		}
		if cacheable {
			cached = append(cached, batch.GOP)
			if cachedBytes += int64(len(batch.GOP)); cachedBytes > s.cache.maxBytes() {
				cacheable, cached = false, nil
			}
		}
	}
	if err := cw.finish(); err != nil { // clean-EOF terminator
		s.m.readsCancelled.Add(1)
		ro.status = statusClientGone
		s.noteReadStats(st)
		return
	}
	s.m.readsCompleted.Add(1)
	s.noteReadStats(st)
	if cacheable {
		s.cache.put(&cacheEntry{
			key: cacheKey, video: name, gops: cached,
			width: st.Width, height: st.Height, fps: st.FPS,
			codec: string(spec.P.Codec),
		}, cacheGen)
	}
}

// predicateExclusiveParams are the read parameters a predicate read
// rejects: where= scans the video's original frames and returns indexed
// RGB matches at source resolution, so transcode/resample/crop/format
// parameters have no meaning on it — failing loudly beats silently
// ignoring half the request.
var predicateExclusiveParams = []string{"codec", "width", "height", "fps", "quality", "minpsnr", "roi", "format"}

// handleQuery serves a predicate read (GET /videos/{name}/read?where=P):
// the wire framing matches a raw read except each chunk's payload is a
// 4-byte big-endian source frame index followed by one RGB frame (see
// docs/WIRE.md). Predicate responses are never response-cached — like
// raw reads, holding decoded frames is what streaming avoids.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, arrived time.Time, where string) {
	name := r.PathValue("name")
	q := r.URL.Query()
	for _, k := range predicateExclusiveParams {
		if q.Get(k) != "" {
			http.Error(w, fmt.Sprintf("where= cannot be combined with %s=", k), http.StatusBadRequest)
			return
		}
	}
	pred, err := vss.ParsePredicate(where)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var t0, t1 float64
	for _, p := range []struct {
		k   string
		dst *float64
	}{{"start", &t0}, {"end", &t1}} {
		if v := q.Get(p.k); v != "" {
			*p.dst, err = strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad %s: %v", p.k, err), http.StatusBadRequest)
				return
			}
		}
	}
	key := fmt.Sprintf("where=%s,s=%g,e=%g", pred, t0, t1)

	tr := obs.StartTrace(r.Header.Get(obs.TraceHeader), "query")
	w.Header().Set(obs.TraceHeader, tr.ID())
	ctx := obs.WithTrace(r.Context(), tr)
	ro := &readObs{s: s, tr: tr, video: name, detail: key}
	defer ro.finish()

	// Predicate reads ride the same admission controller as plain reads:
	// both decode GOPs on the shared worker pool, so both count against
	// the in-flight bound.
	admStart := time.Now()
	release, err := s.adm.acquire(ctx, clientKey(r))
	obs.Observe(ctx, s.pipe, obs.StageAdmission, time.Since(admStart))
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull), errors.Is(err, errPerClientLimit):
			s.m.admissionRejected.Add(1)
			ro.status = http.StatusTooManyRequests
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		default: // client disconnected while queued
			s.m.admissionAborted.Add(1)
			ro.status = statusClientGone
		}
		return
	}
	defer release()
	s.m.queriesStarted.Add(1)

	st, err := s.sys.ReadStreamWhere(ctx, name, pred, t0, t1)
	if err != nil {
		if !clientFault(err) {
			s.m.readErrors.Add(1)
		}
		ro.status = statusFor(err)
		httpError(w, err)
		return
	}
	defer st.Close()

	frameBytes := vss.RGB.Size(st.Width, st.Height)
	if int64(frameBytes)+matchIndexLen > maxChunkBytes {
		ro.status = http.StatusBadRequest
		http.Error(w, "frame size exceeds the wire chunk limit", http.StatusBadRequest)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-VSS-Width", strconv.Itoa(st.Width))
	h.Set("X-VSS-Height", strconv.Itoa(st.Height))
	h.Set("X-VSS-FPS", strconv.Itoa(st.FPS))
	h.Set("X-VSS-Codec", "raw")
	h.Set("X-VSS-Format", vss.RGB.String())
	h.Set("X-VSS-Frame-Bytes", strconv.Itoa(frameBytes))
	// Echo the canonical predicate so clients see exactly what was
	// evaluated (ParsePredicate(canonical) reproduces it).
	h.Set("X-VSS-Predicate", pred.String())

	flusher, _ := w.(http.Flusher)
	cw := s.bufs.get()
	cw.reset(w, flusher, func() {
		ro.ttfb = time.Since(arrived)
		s.m.ttfb.Observe(ro.ttfb)
	})
	cw.instrument(s.pipe, tr)
	defer func() {
		ro.bytes = cw.bytesOut
		s.m.bytesSent.Add(cw.bytesOut)
		s.m.flushes.Add(cw.flushes)
		s.m.flushCoalesced.Add(cw.coalesced)
		s.bufs.put(cw)
	}()

	for {
		batch, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			switch {
			case r.Context().Err() != nil:
				s.m.readsCancelled.Add(1)
				ro.status = statusClientGone
			case !cw.committed:
				cw.abort()
				s.m.readErrors.Add(1)
				ro.status = statusFor(err)
				httpError(w, err)
			default:
				s.m.readErrors.Add(1)
				ro.status = statusFor(err)
			}
			s.noteQueryStats(st)
			return
		}
		for _, m := range batch.Matches {
			if err := cw.writeMatch(uint32(m.Index), m.Frame.Data); err != nil {
				s.m.readsCancelled.Add(1)
				ro.status = statusClientGone
				s.noteQueryStats(st)
				return
			}
		}
	}
	if err := cw.finish(); err != nil { // clean-EOF terminator
		s.m.readsCancelled.Add(1)
		ro.status = statusClientGone
		s.noteQueryStats(st)
		return
	}
	s.m.queriesCompleted.Add(1)
	s.noteQueryStats(st)
}

// noteQueryStats folds one predicate read's QueryStats into the server
// counters (planning counters are valid even on error paths).
func (s *Server) noteQueryStats(st *vss.QueryStream) {
	qs := st.Stats()
	s.m.queryGOPsConsidered.Add(int64(qs.GOPsConsidered))
	s.m.queryGOPsSkipped.Add(int64(qs.GOPsSkipped))
	s.m.queryGOPsDecoded.Add(int64(qs.GOPsDecoded))
	s.m.queryFramesScanned.Add(int64(qs.FramesScanned))
	s.m.queryFramesMatched.Add(int64(qs.FramesMatched))
	s.m.gopsDecoded.Add(int64(qs.GOPsDecoded))
	s.m.bytesRead.Add(qs.BytesRead)
}

// replayCached serves a hot response from the LRU without touching the
// store. It rides the same coalescing chunkWriter as live reads — the
// hot path benefits most, since nothing throttles it but the wire — and
// the same trace, so cache hits show up in /debug/traces as
// flush-dominated requests with no plan/fetch/decode stages.
func (s *Server) replayCached(w http.ResponseWriter, e *cacheEntry, arrived time.Time, tr *obs.Trace, ro *readObs) {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-VSS-Width", strconv.Itoa(e.width))
	h.Set("X-VSS-Height", strconv.Itoa(e.height))
	h.Set("X-VSS-FPS", strconv.Itoa(e.fps))
	h.Set("X-VSS-Codec", e.codec)
	h.Set("X-VSS-Cache", "hit")
	flusher, _ := w.(http.Flusher)
	cw := s.bufs.get()
	cw.reset(w, flusher, func() {
		ro.ttfb = time.Since(arrived)
		s.m.ttfb.Observe(ro.ttfb)
	})
	cw.instrument(s.pipe, tr)
	defer func() {
		ro.bytes = cw.bytesOut
		s.m.bytesSent.Add(cw.bytesOut)
		s.m.flushes.Add(cw.flushes)
		s.m.flushCoalesced.Add(cw.coalesced)
		s.bufs.put(cw)
	}()
	for _, g := range e.gops {
		if err := cw.writeGOP(g); err != nil {
			s.m.readsCancelled.Add(1)
			ro.status = statusClientGone
			return
		}
	}
	if err := cw.finish(); err != nil {
		s.m.readsCancelled.Add(1)
		ro.status = statusClientGone
		return
	}
	s.m.readsCompleted.Add(1)
}

// noteReadStats folds a finished (or abandoned) stream's ReadStats into
// the aggregate metrics.
func (s *Server) noteReadStats(st *vss.ReadStream) {
	stats := st.Stats()
	s.m.gopsDecoded.Add(int64(stats.GOPsDecoded))
	s.m.bytesRead.Add(stats.BytesRead)
}

// promOpts maps the snapshot's dynamic-key maps and object arrays onto
// Prometheus labels: per-video rows become vss_videos_*{video="..."},
// cluster node-health rows vss_cluster_node_health_*{node="addr"}, and
// replication shard-health rows use the shard root as the label value.
var promOpts = obs.PromOpts{
	Labels: map[string]string{
		"videos":                   "video",
		"cluster_node_health":      "node",
		"replication_shard_health": "shard",
	},
	NameFields: []string{"addr", "root"},
}

// wantsProm reports whether the client asked for Prometheus text
// exposition: ?format=prometheus, or an Accept header naming it.
func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "prometheus")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metricsSnapshot()
	if wantsProm(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, "vss", snap, promOpts)
		return
	}
	writeJSON(w, snap)
}

// TraceDump is the JSON document served by /debug/traces.
type TraceDump struct {
	Capacity int                 `json:"capacity"`
	Traces   []obs.TraceSnapshot `json:"traces"`
}

// handleTraces serves the slow-trace ring: the N slowest recent
// requests, slowest first, each with its full span and stage breakdown.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.traces.Snapshot()
	if traces == nil {
		traces = []obs.TraceSnapshot{} // an empty ring serves [], not null
	}
	writeJSON(w, TraceDump{Capacity: s.traces.Cap(), Traces: traces})
}

// metricsSnapshot assembles the full point-in-time snapshot served by
// /metrics in both formats.
func (s *Server) metricsSnapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Reads: ReadMetrics{
			Started:     s.m.readsStarted.Load(),
			Completed:   s.m.readsCompleted.Load(),
			Cancelled:   s.m.readsCancelled.Load(),
			Errors:      s.m.readErrors.Load(),
			InFlight:    s.adm.inFlight(),
			GOPsDecoded: s.m.gopsDecoded.Load(),
			BytesRead:   s.m.bytesRead.Load(),
			BytesSent:   s.m.bytesSent.Load(),
		},
		Admission: AdmissionMetrics{
			MaxInFlight:  s.cfg.MaxInFlightReads,
			MaxQueued:    s.cfg.MaxQueuedReads,
			MaxPerClient: s.cfg.MaxReadsPerClient,
			QueueDepth:   s.adm.queueDepth(),
			Rejected:     s.m.admissionRejected.Load(),
			Aborted:      s.m.admissionAborted.Load(),
		},
		Writes: WriteMetrics{
			Writes:      s.m.writes.Load(),
			GOPsWritten: s.m.gopsWritten.Load(),
		},
		Predicate: PredicateMetrics{
			Queries:        s.m.queriesStarted.Load(),
			Completed:      s.m.queriesCompleted.Load(),
			GOPsConsidered: s.m.queryGOPsConsidered.Load(),
			GOPsSkipped:    s.m.queryGOPsSkipped.Load(),
			GOPsDecoded:    s.m.queryGOPsDecoded.Load(),
			FramesScanned:  s.m.queryFramesScanned.Load(),
			FramesMatched:  s.m.queryFramesMatched.Load(),
		},
		Pipeline: s.pipe.Snapshot(),
		Videos:   make(map[string]VideoMetrics),
		Storage:  s.sys.BackendStats(),
	}
	// A routed store reports the cluster section; the generic replication
	// section it also implements (nodes relabeled as shards) would repeat
	// the same counters, so it is suppressed in favor of the richer view.
	if cl, ok := s.sys.ClusterStats(); ok {
		snap.Cluster = &cl
	} else if rep, ok := s.sys.ReplicationStats(); ok {
		snap.Replication = &rep
	}
	hits, misses := s.m.cacheHits.Load(), s.m.cacheMisses.Load()
	entries, bytes, max := s.cache.stats()
	snap.Cache = CacheMetrics{Hits: hits, Misses: misses, Entries: entries, Bytes: bytes, MaxBytes: max}
	if hits+misses > 0 {
		snap.Cache.HitRate = float64(hits) / float64(hits+misses)
	}
	snap.Response = ResponseMetrics{
		BytesWritten:    s.m.bytesSent.Load(),
		Flushes:         s.m.flushes.Load(),
		CoalescedChunks: s.m.flushCoalesced.Load(),
		PoolHits:        s.bufs.hits.Load(),
		PoolMisses:      s.bufs.misses.Load(),
		TTFBP50Millis:   s.m.ttfb.QuantileMillis(0.50),
		TTFBP99Millis:   s.m.ttfb.QuantileMillis(0.99),
	}
	if t := snap.Response.PoolHits + snap.Response.PoolMisses; t > 0 {
		snap.Response.PoolHitRate = float64(snap.Response.PoolHits) / float64(t)
	}
	if snap.Predicate.GOPsConsidered > 0 {
		snap.Predicate.SkipRate = float64(snap.Predicate.GOPsSkipped) / float64(snap.Predicate.GOPsConsidered)
	}
	if snap.Predicate.FramesScanned > 0 {
		snap.Predicate.Selectivity = float64(snap.Predicate.FramesMatched) / float64(snap.Predicate.FramesScanned)
	}
	for _, name := range s.sys.Videos() {
		total, err := s.sys.TotalBytes(name)
		if err != nil {
			continue // deleted while we iterated
		}
		snap.Videos[name] = VideoMetrics{Bytes: total, DeferredLevel: s.sys.DeferredLevel(name)}
	}
	return snap
}

func (s *Server) handleMaintain(w http.ResponseWriter, r *http.Request) {
	if err := s.sys.Maintain(); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

// writeChunk writes one framed chunk: 4-byte big-endian length + payload.
// A nil payload writes the zero-length clean-EOF terminator.
func writeChunk(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// maxChunkBytes bounds a single framed chunk. Chunk lengths come off the
// wire, so they must be validated BEFORE allocation — a 4-byte request
// claiming a 4GiB chunk must cost nothing, not an OOM.
const maxChunkBytes = 1 << 28 // 256MiB; far beyond any real GOP or batch

// readChunks reads framed chunks until EOF or a zero-length terminator.
func readChunks(r io.Reader) ([][]byte, error) {
	var out [][]byte
	var hdr [4]byte
	for {
		_, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 {
			return out, nil
		}
		if n > maxChunkBytes {
			return nil, fmt.Errorf("chunk length %d exceeds limit %d", n, maxChunkBytes)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("truncated chunk: %w", err)
		}
		out = append(out, buf)
	}
}
