package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// This file implements the GOP storage plane: the endpoints a router
// fleet (internal/router) uses to treat this vssd node as one remote
// replica store. They map 1:1 onto storage.Backend — raw GOP bytes at
// logical addresses, below the video API — and route through the
// system's instrumented backend, so storage-plane traffic counts in the
// same /metrics storage section as the node's own. See docs/WIRE.md for
// the normative wire description.
//
//	GET    /healthz                          liveness + backend identity
//	PUT    /gops/{video}/{phys}/{seq}        store one GOP (raw body)
//	GET    /gops/{video}/{phys}/{seq}        fetch one GOP (raw body)
//	HEAD   /gops/{video}/{phys}/{seq}        stored size (X-VSS-GOP-Size)
//	DELETE /gops/{video}/{phys}/{seq}        remove one GOP (idempotent)
//	POST   /gops/{video}/{phys}/{seq}/link   link/copy to ?video&phys&seq
//	DELETE /gops/{video}/{phys}              remove one physical video
//	DELETE /gops/{video}                     remove one logical video
//	GET    /gops                             walk: framed JSON entries

// storageError maps backend errors onto status codes: a missing GOP is
// 404 (the remote backend turns it back into fs.ErrNotExist), anything
// else is the node's fault.
func storageError(w http.ResponseWriter, err error) {
	if errors.Is(err, fs.ErrNotExist) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// gopSeq parses the {seq} path value.
func gopSeq(r *http.Request) (int, bool) {
	seq, err := strconv.Atoi(r.PathValue("seq"))
	return seq, err == nil && seq >= 0
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"ok":      true,
		"backend": s.sys.BackendStats().Backend,
		"videos":  len(s.sys.Videos()),
	})
}

func (s *Server) handleGOPWrite(w http.ResponseWriter, r *http.Request) {
	seq, ok := gopSeq(r)
	if !ok {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	// One GOP per request, raw body: Content-Length plus TCP framing is
	// all the integrity the single-object plane needs (the batch ingest
	// endpoint is the one that frames chunks).
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxChunkBytes))
	if err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.sys.Backend().WriteGOP(r.PathValue("video"), r.PathValue("phys"), seq, data); err != nil {
		storageError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleGOPRead(w http.ResponseWriter, r *http.Request) {
	seq, ok := gopSeq(r)
	if !ok {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	video, phys := r.PathValue("video"), r.PathValue("phys")
	if r.Method == http.MethodHead {
		n, err := s.sys.Backend().GOPSize(video, phys, seq)
		if err != nil {
			storageError(w, err)
			return
		}
		w.Header().Set("X-VSS-GOP-Size", strconv.FormatInt(n, 10))
		w.WriteHeader(http.StatusOK)
		return
	}
	// Join the propagated trace (the router forwards its ID in the wire
	// header), so the node-local fetch shows up under the same trace ID
	// the client and router saw — and in this node's own slow ring.
	tr := obs.StartTrace(r.Header.Get(obs.TraceHeader), "gop_read")
	w.Header().Set(obs.TraceHeader, tr.ID())
	ctx := obs.WithTrace(r.Context(), tr)
	start := time.Now()
	data, err := storage.ReadGOPCtx(ctx, s.sys.Backend(), video, phys, seq)
	obs.Observe(ctx, s.pipe, obs.StageFetch, time.Since(start))
	status := http.StatusOK
	if err != nil {
		status = http.StatusInternalServerError
		if errors.Is(err, fs.ErrNotExist) {
			status = http.StatusNotFound
		}
	}
	defer func() {
		req := obs.Request{
			Video:  video,
			Detail: phys + "/" + strconv.Itoa(seq),
			Status: status,
			Bytes:  int64(len(data)),
		}
		snap := tr.Snapshot(req, time.Now())
		s.traces.Add(snap)
		if s.log != nil {
			s.log.Info(snap.Name,
				"trace", snap.ID, "video", snap.Video, "detail", snap.Detail,
				"status", snap.Status, "bytes", snap.Bytes,
				"total_ms", snap.DurationMillis, "stages", snap.StageSummary(),
			)
		}
	}()
	if err != nil {
		storageError(w, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-VSS-GOP-Size", strconv.FormatInt(int64(len(data)), 10))
	h.Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

func (s *Server) handleGOPDelete(w http.ResponseWriter, r *http.Request) {
	seq, ok := gopSeq(r)
	if !ok {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	if err := s.sys.Backend().DeleteGOP(r.PathValue("video"), r.PathValue("phys"), seq); err != nil {
		storageError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleGOPLink(w http.ResponseWriter, r *http.Request) {
	srcSeq, ok := gopSeq(r)
	if !ok {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	dstSeq, err := strconv.Atoi(q.Get("seq"))
	if err != nil || dstSeq < 0 || q.Get("video") == "" || q.Get("phys") == "" {
		http.Error(w, "link needs video, phys, and seq query parameters", http.StatusBadRequest)
		return
	}
	err = s.sys.Backend().LinkGOP(
		r.PathValue("video"), r.PathValue("phys"), srcSeq,
		q.Get("video"), q.Get("phys"), dstSeq)
	if err != nil {
		storageError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleGOPDeletePhysical(w http.ResponseWriter, r *http.Request) {
	if err := s.sys.Backend().DeletePhysical(r.PathValue("video"), r.PathValue("phys")); err != nil {
		storageError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleGOPDeleteVideo(w http.ResponseWriter, r *http.Request) {
	if err := s.sys.Backend().DeleteVideo(r.PathValue("video")); err != nil {
		storageError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// gopEntry is one walked GOP on the wire (GET /gops).
type gopEntry struct {
	Video string `json:"v"`
	Phys  string `json:"p"`
	Seq   int    `json:"s"`
	Size  int64  `json:"n"`
}

func (s *Server) handleGOPWalk(w http.ResponseWriter, r *http.Request) {
	// The walk streams one framed JSON chunk per GOP and ends with the
	// zero-length terminator — the read path's framing, reused so a
	// truncated enumeration (walk error mid-stream, dead node) can never
	// be mistaken for a complete one. Entries are buffered: a full tree
	// walk is thousands of tiny writes.
	w.Header().Set("Content-Type", "application/octet-stream")
	bw := bufio.NewWriterSize(w, 32<<10)
	err := s.sys.Backend().Walk(func(video, physDir string, seq int, size int64) error {
		payload, err := json.Marshal(gopEntry{Video: video, Phys: physDir, Seq: seq, Size: size})
		if err != nil {
			return err
		}
		return writeChunk(bw, payload)
	})
	if err != nil {
		// Body bytes may be committed; ending without a terminator is the
		// error signal.
		return
	}
	if err := writeChunk(bw, nil); err != nil {
		return
	}
	bw.Flush()
}
