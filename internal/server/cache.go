package server

import (
	"container/list"
	"sync"
)

// responseCache is a byte-bounded LRU of hot encoded read responses. It
// complements — not duplicates — the store's own materialized-view cache:
// the store caches decoded fragments as physical videos (paying admission
// and eviction policy), while this cache holds fully-assembled compressed
// responses so a repeated hot request skips planning and transcoding
// entirely. Only compressed reads are cached (raw responses are far too
// large to be worth pinning); entries for a video are invalidated whenever
// that video is written to or deleted.
type responseCache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recent
	items map[string]*list.Element
	// gens tracks invalidation generations per video, drawn from one
	// global monotonic epoch. A response assembled across a concurrent
	// write must not be inserted after that write's invalidation ran — it
	// would pin a stale prefix until the NEXT write — so put refuses
	// entries whose generation (snapshotted before the read began) is no
	// longer current. A video's entry is removed when the video is
	// deleted (removeVideo), so the map is bounded by LIVE videos, not by
	// every name ever served; generation() for an absent name returns the
	// global epoch, which has necessarily advanced past any snapshot
	// taken while the old entry existed.
	epoch uint64
	gens  map[string]uint64
}

// cacheEntry is one cached response: the encoded GOPs plus the output
// header the handler needs to replay them.
type cacheEntry struct {
	key    string
	video  string
	gops   [][]byte
	width  int
	height int
	fps    int
	codec  string
	bytes  int64
}

func newResponseCache(maxBytes int64) *responseCache {
	return &responseCache{
		max:   maxBytes,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		gens:  make(map[string]uint64),
	}
}

// enabled reports whether the cache stores anything at all.
func (c *responseCache) enabled() bool { return c.max > 0 }

// maxBytes returns the configured byte budget.
func (c *responseCache) maxBytes() int64 { return c.max }

// generation returns the video's current invalidation generation.
// Snapshot it before starting the read whose response you intend to put.
func (c *responseCache) generation(video string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.gens[video]; ok {
		return g
	}
	return c.epoch
}

// get returns the cached response for a key, refreshing its recency.
func (c *responseCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts a response, evicting least-recently-used entries to fit.
// Responses larger than the whole cache are dropped silently, as are
// responses whose video was invalidated since gen was snapshotted (the
// entry would be a stale prefix).
func (c *responseCache) put(e *cacheEntry, gen uint64) {
	e.bytes = 0
	for _, g := range e.gops {
		e.bytes += int64(len(g))
	}
	if c.max <= 0 || e.bytes > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.gens[e.video]
	if !ok {
		cur = c.epoch // video deleted since the snapshot: epoch advanced
	}
	if cur != gen {
		return
	}
	if el, ok := c.items[e.key]; ok {
		c.bytes -= el.Value.(*cacheEntry).bytes
		c.ll.Remove(el)
		delete(c.items, e.key)
	}
	for c.bytes+e.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		old := back.Value.(*cacheEntry)
		c.bytes -= old.bytes
		c.ll.Remove(back)
		delete(c.items, old.key)
	}
	c.items[e.key] = c.ll.PushFront(e)
	c.bytes += e.bytes
}

// invalidateVideo drops every cached response for a video and bumps its
// generation so in-flight reads that began before the write cannot
// re-insert stale entries. Called on writes so clients never see a stale
// prefix.
func (c *responseCache) invalidateVideo(video string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	c.gens[video] = c.epoch
	c.dropVideoLocked(video)
}

// removeVideo is invalidateVideo for a video that no longer exists: the
// entries are dropped, the epoch advances (so pending inserts are
// refused), and the gens entry is released — a long-running daemon must
// not retain state for every video name ever served.
func (c *responseCache) removeVideo(video string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	delete(c.gens, video)
	c.dropVideoLocked(video)
}

// dropVideoLocked evicts every entry for a video. Caller holds c.mu.
func (c *responseCache) dropVideoLocked(video string) {
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.video == video {
			c.bytes -= e.bytes
			c.ll.Remove(el)
			delete(c.items, e.key)
		}
		el = next
	}
}

// stats reports current occupancy.
func (c *responseCache) stats() (entries int, bytes int64, max int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.max
}
