package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"testing"

	"repro/vss"
)

// TestQueryWireParity pins the predicate read's HTTP surface to the
// in-process API: the same matches, in order, with byte-identical frame
// payloads, arrive through server.Client as System.ReadWhere returns
// locally — so the router and remote-storage layers, which only see the
// wire, inherit predicate reads unchanged.
func TestQueryWireParity(t *testing.T) {
	ctx := context.Background()
	sys, c := newTestServer(t, vss.Options{}, Config{})

	const n, w, h, fps = 48, 48, 32, 8
	frames := testFootage(n, w, h, fps)
	if err := sys.Create("cam", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write("cam", vss.WriteSpec{FPS: fps, Codec: vss.H264}, frames); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		pred   string
		t0, t1 float64
	}{
		{"count >= 1", 0, 0},
		{"motion > 0.05 and count >= 1", 0, 0},
		{"count >= 1", 1.5, 4.5},
		{"count = 0 or motion > 10", 0, 0},
	} {
		pred, err := vss.ParsePredicate(tc.pred)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.ReadWhere(ctx, "cam", pred, tc.t0, tc.t1)
		if err != nil {
			t.Fatal(err)
		}
		hdr, got, err := c.Query(ctx, "cam", tc.pred, tc.t0, tc.t1)
		if err != nil {
			t.Fatalf("Query(%q): %v", tc.pred, err)
		}
		if hdr.Width != w || hdr.Height != h || hdr.FPS != fps {
			t.Errorf("%q: header geometry %dx%d@%d", tc.pred, hdr.Width, hdr.Height, hdr.FPS)
		}
		if hdr.Codec != "raw" || hdr.Format != vss.RGB || hdr.FrameBytes != w*h*3 {
			t.Errorf("%q: header codec=%q format=%v frameBytes=%d", tc.pred, hdr.Codec, hdr.Format, hdr.FrameBytes)
		}
		if len(got) != len(want.Matches) {
			t.Fatalf("%q: wire returned %d matches, local %d", tc.pred, len(got), len(want.Matches))
		}
		for i, m := range got {
			if m.Index != want.Matches[i].Index {
				t.Fatalf("%q: match %d index %d, want %d", tc.pred, i, m.Index, want.Matches[i].Index)
			}
			if !bytes.Equal(m.Data, want.Matches[i].Frame.Data) {
				t.Errorf("%q: match %d payload differs from local read", tc.pred, i)
			}
		}
	}
}

// TestQueryParamValidation pins the request-surface rules: where= rejects
// every transcode/resample parameter, malformed predicates and bounds,
// and unknown videos, each with the right status.
func TestQueryParamValidation(t *testing.T) {
	sys, c := newTestServer(t, vss.Options{}, Config{})
	if err := sys.Create("cam", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write("cam", vss.WriteSpec{FPS: 8, Codec: vss.H264}, testFootage(16, 48, 32, 8)); err != nil {
		t.Fatal(err)
	}

	get := func(name, query string) int {
		t.Helper()
		resp, err := c.HTTP.Get(c.Base + "/videos/" + url.PathEscape(name) + "/read?" + query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	base := url.Values{"where": {"count >= 1"}}.Encode()
	for _, bad := range predicateExclusiveParams {
		if code := get("cam", base+"&"+bad+"=1"); code != http.StatusBadRequest {
			t.Errorf("where combined with %s=: status %d, want 400", bad, code)
		}
	}
	for query, want := range map[string]int{
		url.Values{"where": {"speed > 2"}}.Encode():                                http.StatusBadRequest,
		url.Values{"where": {"count >= 1"}, "start": {"x"}}.Encode():               http.StatusBadRequest,
		url.Values{"where": {"count >= 1"}, "end": {"nan"}}.Encode():               http.StatusBadRequest,
		url.Values{"where": {"count >= 1"}, "start": {"5"}, "end": {"1"}}.Encode(): http.StatusBadRequest,
	} {
		if code := get("cam", query); code != want {
			t.Errorf("query %q: status %d, want %d", query, code, want)
		}
	}
	if code := get("nosuch", base); code != http.StatusNotFound {
		t.Errorf("unknown video: status %d, want 404", code)
	}

	// The canonical predicate is echoed back for observability.
	resp, err := c.HTTP.Get(c.Base + "/videos/cam/read?" + url.Values{"where": {"count>=1 and motion>0"}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-VSS-Predicate"); got != "count >= 1 and motion > 0" {
		t.Errorf("X-VSS-Predicate %q", got)
	}
}

// TestQueryMetrics verifies predicate reads surface in the /metrics
// predicate section: query counts, planner skip counters, and scan
// selectivity all move.
func TestQueryMetrics(t *testing.T) {
	ctx := context.Background()
	sys, c := newTestServer(t, vss.Options{}, Config{})
	if err := sys.Create("cam", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write("cam", vss.WriteSpec{FPS: 8, Codec: vss.H264}, testFootage(64, 48, 32, 8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(ctx, "cam", "count >= 1", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(ctx, "cam", "motion > 1000", 0, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := c.HTTP.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	p := snap.Predicate
	if p.Queries != 2 || p.Completed != 2 {
		t.Errorf("queries %d/%d completed, want 2/2", p.Queries, p.Completed)
	}
	if p.GOPsConsidered != 16 { // 8 candidate GOPs per query
		t.Errorf("gops_considered %d, want 16", p.GOPsConsidered)
	}
	// motion > 1000 is refuted by every summary: all its GOPs skip.
	if p.GOPsSkipped < 8 {
		t.Errorf("gops_skipped %d, want >= 8", p.GOPsSkipped)
	}
	if p.GOPsDecoded+p.GOPsSkipped != p.GOPsConsidered {
		t.Errorf("decoded %d + skipped %d != considered %d", p.GOPsDecoded, p.GOPsSkipped, p.GOPsConsidered)
	}
	if p.FramesScanned == 0 || p.SkipRate <= 0 {
		t.Errorf("frames_scanned %d, skip_rate %g", p.FramesScanned, p.SkipRate)
	}

	// The Prometheus exposition carries the same section.
	resp2, err := c.HTTP.Get(c.Base + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"vss_predicate_queries", "vss_predicate_gops_skipped"} {
		if !bytes.Contains(buf.Bytes(), []byte(metric)) {
			t.Errorf("prometheus exposition missing %s", metric)
		}
	}
}
