package server

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts the operator debug listener behind -debug-addr:
// net/http/pprof on its own mux and port, isolated from the serving mux
// so profiling can never be reached through the public API (and a
// profile download cannot occupy a serving connection). It returns the
// bound address; the listener serves until process exit.
func ServeDebug(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}
