package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/frame"
	"repro/internal/obs"
)

// Client is a minimal Go client for the vssd wire protocol, used by the
// examples, the serving benchmark, and the smoke tests. It is not a
// public SDK — external callers can speak the protocol with any HTTP
// client — but it keeps the framing logic in one place.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:7744".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
	// Name optionally identifies this client for per-client admission
	// limits (sent as X-VSS-Client).
	Name string
}

// defaultClient is the fallback HTTP client. http.DefaultTransport caps
// idle connections per host at 2, so a benchmark (or any fan-out caller)
// driving hundreds of concurrent streams through one vssd would tear
// down and re-dial almost every connection; this transport keeps them
// alive so steady-state serving pays the handshake once.
var defaultClient = func() *http.Client {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 1024
	t.MaxIdleConnsPerHost = 512
	return &http.Client{Transport: t}
}()

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return nil, err
	}
	if c.Name != "" {
		req.Header.Set("X-VSS-Client", c.Name)
	}
	// Propagate an active trace so the remote hop joins it: this is how
	// one trace ID follows a read across processes (client → router →
	// storage node).
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	return c.http().Do(req)
}

// StatusError is a non-2xx server response. It keeps the HTTP status
// code machine-readable so callers can tell a definitive server verdict
// (4xx: retrying cannot help) from a node fault (5xx / transport
// errors); storage.Remote keys its retry policy on HTTPStatus. A 404
// unwraps to fs.ErrNotExist so missing-GOP probes compose with
// errors.Is like every other storage.Backend.
type StatusError struct {
	Code   int    // HTTP status code, e.g. 404
	Status string // HTTP status line, e.g. "404 Not Found"
	Msg    string // response body (truncated)
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %s: %s", e.Status, e.Msg)
}

// HTTPStatus returns the response status code.
func (e *StatusError) HTTPStatus() int { return e.Code }

// Unwrap maps 404 onto fs.ErrNotExist.
func (e *StatusError) Unwrap() error {
	if e.Code == http.StatusNotFound {
		return fs.ErrNotExist
	}
	return nil
}

// errorFrom drains a failed response into a *StatusError.
func errorFrom(resp *http.Response) error {
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return &StatusError{
		Code:   resp.StatusCode,
		Status: resp.Status,
		Msg:    string(bytes.TrimSpace(msg)),
	}
}

// Create registers a video.
func (c *Client) Create(ctx context.Context, name string, budget int64) error {
	path := "/videos/" + url.PathEscape(name)
	if budget != 0 {
		path += "?budget=" + strconv.FormatInt(budget, 10)
	}
	resp, err := c.do(ctx, http.MethodPut, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return errorFrom(resp)
	}
	return nil
}

// Delete removes a video.
func (c *Client) Delete(ctx context.Context, name string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/videos/"+url.PathEscape(name), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return errorFrom(resp)
	}
	return nil
}

// WriteGOPs appends already-encoded GOPs to a video. Empty GOPs are
// rejected up front: a zero-length chunk is the wire terminator, so
// framing one would silently truncate the batch server-side.
func (c *Client) WriteGOPs(ctx context.Context, name string, fps int, gops [][]byte) error {
	var body bytes.Buffer
	for i, g := range gops {
		if len(g) == 0 {
			return fmt.Errorf("empty GOP at index %d (zero-length chunks terminate the stream)", i)
		}
		if err := writeChunk(&body, g); err != nil {
			return err
		}
	}
	path := fmt.Sprintf("/videos/%s/gops?fps=%d", url.PathEscape(name), fps)
	resp, err := c.do(ctx, http.MethodPost, path, &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errorFrom(resp)
	}
	return nil
}

// arenaSlab sizes chunkArena slabs: big enough to hold dozens of typical
// encoded GOPs per allocation, small enough that a pinned slab is cheap.
const arenaSlab = 1 << 20

// chunkArena carves small chunk payloads out of slab allocations so a
// stream of many GOPs costs one allocation per slab instead of one per
// chunk. Returned slices are full-length with capped capacity, so caller
// appends can never alias a neighbor. The trade-off: any retained chunk
// pins its whole slab, which is fine for the streaming consumption the
// client exists for. Chunks near or above the slab size get their own
// allocation. Not safe for concurrent use.
type chunkArena struct {
	slab []byte
}

func (a *chunkArena) alloc(n int) []byte {
	if n >= arenaSlab/4 {
		return make([]byte, n)
	}
	if len(a.slab) < n {
		a.slab = make([]byte, arenaSlab)
	}
	b := a.slab[:n:n]
	a.slab = a.slab[n:]
	return b
}

// ReadHeader describes a streaming read response.
type ReadHeader struct {
	Width, Height, FPS int
	Codec              string
	Format             frame.PixelFormat // raw reads
	FrameBytes         int               // raw reads: bytes per frame payload
	CacheHit           bool
}

// StreamingRead issues a read and returns the response header plus a
// chunk iterator. next returns io.EOF after the terminator chunk; a
// closed connection without a terminator surfaces as an error, so
// truncated streams are never mistaken for complete ones. Callers must
// drain next to io.EOF or call stop.
func (c *Client) StreamingRead(ctx context.Context, name, query string) (hdr ReadHeader, next func() ([]byte, error), stop func(), err error) {
	path := "/videos/" + url.PathEscape(name) + "/read"
	if query != "" {
		path += "?" + query
	}
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return hdr, nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return hdr, nil, nil, errorFrom(resp)
	}
	h := resp.Header
	hdr.Width, _ = strconv.Atoi(h.Get("X-VSS-Width"))
	hdr.Height, _ = strconv.Atoi(h.Get("X-VSS-Height"))
	hdr.FPS, _ = strconv.Atoi(h.Get("X-VSS-FPS"))
	hdr.Codec = h.Get("X-VSS-Codec")
	hdr.FrameBytes, _ = strconv.Atoi(h.Get("X-VSS-Frame-Bytes"))
	hdr.CacheHit = h.Get("X-VSS-Cache") == "hit"
	if f := h.Get("X-VSS-Format"); f != "" {
		hdr.Format, _ = frame.ParsePixelFormat(f)
	}
	var sawEOF bool
	var arena chunkArena // per-stream: next is not safe for concurrent use anyway
	next = func() ([]byte, error) {
		if sawEOF {
			return nil, io.EOF
		}
		var lenHdr [4]byte
		if _, err := io.ReadFull(resp.Body, lenHdr[:]); err != nil {
			return nil, fmt.Errorf("stream truncated before terminator: %w", err)
		}
		n := binary.BigEndian.Uint32(lenHdr[:])
		if n == 0 {
			sawEOF = true
			resp.Body.Close()
			return nil, io.EOF
		}
		if n > maxChunkBytes {
			// Validate before allocating: the length came off the wire.
			return nil, fmt.Errorf("chunk length %d exceeds limit %d", n, maxChunkBytes)
		}
		buf := arena.alloc(int(n))
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			return nil, fmt.Errorf("stream truncated mid-chunk: %w", err)
		}
		return buf, nil
	}
	return hdr, next, func() { resp.Body.Close() }, nil
}

// QueryMatch is one predicate-read match off the wire: the source frame
// index and its RGB pixel payload.
type QueryMatch struct {
	Index int
	Data  []byte
}

// Query issues a predicate read (where=pred over [t0, t1); t1 <= 0
// means the video end) and drains the stream, returning the response
// header and the matches in frame order. Each wire chunk carries one
// match — a 4-byte big-endian source frame index followed by one RGB
// frame of exactly hdr.FrameBytes — so malformed chunk lengths are
// rejected rather than mis-split.
func (c *Client) Query(ctx context.Context, name, pred string, t0, t1 float64) (ReadHeader, []QueryMatch, error) {
	q := url.Values{"where": {pred}}
	if t0 != 0 {
		q.Set("start", strconv.FormatFloat(t0, 'g', -1, 64))
	}
	if t1 != 0 {
		q.Set("end", strconv.FormatFloat(t1, 'g', -1, 64))
	}
	hdr, next, stop, err := c.StreamingRead(ctx, name, q.Encode())
	if err != nil {
		return hdr, nil, err
	}
	defer stop()
	var matches []QueryMatch
	for {
		chunk, err := next()
		if err == io.EOF {
			return hdr, matches, nil
		}
		if err != nil {
			return hdr, nil, err
		}
		if len(chunk) != 4+hdr.FrameBytes {
			return hdr, nil, fmt.Errorf("match chunk is %d bytes, want 4+%d", len(chunk), hdr.FrameBytes)
		}
		matches = append(matches, QueryMatch{
			Index: int(binary.BigEndian.Uint32(chunk)),
			Data:  chunk[4:],
		})
	}
}

// ReadAll issues a read and drains the whole stream, returning the raw
// chunk payloads (GOPs for compressed reads, frame batches for raw).
func (c *Client) ReadAll(ctx context.Context, name, query string) (ReadHeader, [][]byte, error) {
	hdr, next, stop, err := c.StreamingRead(ctx, name, query)
	if err != nil {
		return hdr, nil, err
	}
	defer stop()
	var chunks [][]byte
	for {
		chunk, err := next()
		if err == io.EOF {
			return hdr, chunks, nil
		}
		if err != nil {
			return hdr, nil, err
		}
		chunks = append(chunks, chunk)
	}
}

// Metrics fetches and decodes the /metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var snap MetricsSnapshot
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, errorFrom(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return snap, err
	}
	return snap, json.Unmarshal(data, &snap)
}

// Traces fetches and decodes the /debug/traces slow-trace dump.
func (c *Client) Traces(ctx context.Context) (TraceDump, error) {
	var dump TraceDump
	resp, err := c.do(ctx, http.MethodGet, "/debug/traces", nil)
	if err != nil {
		return dump, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return dump, errorFrom(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return dump, err
	}
	return dump, json.Unmarshal(data, &dump)
}

// Stat fetches a video's metadata.
func (c *Client) Stat(ctx context.Context, name string) (VideoStat, error) {
	var stat VideoStat
	resp, err := c.do(ctx, http.MethodGet, "/videos/"+url.PathEscape(name), nil)
	if err != nil {
		return stat, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return stat, errorFrom(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return stat, err
	}
	return stat, json.Unmarshal(data, &stat)
}

// Maintain triggers one maintenance pass.
func (c *Client) Maintain(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodPost, "/maintain", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errorFrom(resp)
	}
	return nil
}
