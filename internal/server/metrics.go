package server

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/vss"
)

// metrics is the server's live counter registry. Every field is updated
// with atomics on the request path and read wholesale by the /metrics
// endpoint; gauges (queue depth, in-flight reads, cache occupancy) are
// sampled from their owning components at snapshot time instead of being
// double-counted here.
type metrics struct {
	readsStarted   atomic.Int64
	readsCompleted atomic.Int64
	readsCancelled atomic.Int64 // client disconnected mid-stream
	readErrors     atomic.Int64

	admissionRejected atomic.Int64 // 429s: queue full or per-client limit
	admissionAborted  atomic.Int64 // client gave up while queued

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	gopsDecoded atomic.Int64 // aggregated ReadStats across served reads
	bytesRead   atomic.Int64 // stored bytes touched by served reads
	bytesSent   atomic.Int64 // payload bytes written to clients

	flushes        atomic.Int64 // socket write/flush cycles on the read path
	flushCoalesced atomic.Int64 // chunks that rode a later flush instead of their own
	ttfb           obs.Hist     // request arrival → first committed body byte

	writes      atomic.Int64
	gopsWritten atomic.Int64

	// Predicate-read (where=) counters, aggregated core.QueryStats.
	queriesStarted      atomic.Int64
	queriesCompleted    atomic.Int64
	queryGOPsConsidered atomic.Int64
	queryGOPsSkipped    atomic.Int64
	queryGOPsDecoded    atomic.Int64
	queryFramesScanned  atomic.Int64
	queryFramesMatched  atomic.Int64
}

// ReadMetrics is the reads section of a metrics snapshot.
type ReadMetrics struct {
	Started   int64 `json:"started"`
	Completed int64 `json:"completed"`
	Cancelled int64 `json:"cancelled"`
	Errors    int64 `json:"errors"`
	InFlight  int64 `json:"in_flight"`
	// Aggregated core.ReadStats across every served read.
	GOPsDecoded int64 `json:"gops_decoded"`
	BytesRead   int64 `json:"bytes_read"`
	BytesSent   int64 `json:"bytes_sent"`
}

// AdmissionMetrics is the admission-controller section of a snapshot.
type AdmissionMetrics struct {
	MaxInFlight  int   `json:"max_in_flight"`
	MaxQueued    int   `json:"max_queued"`
	MaxPerClient int   `json:"max_per_client"`
	QueueDepth   int64 `json:"queue_depth"`
	Rejected     int64 `json:"rejected"`
	Aborted      int64 `json:"aborted"`
}

// CacheMetrics is the response-cache section of a snapshot.
type CacheMetrics struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Entries  int     `json:"entries"`
	Bytes    int64   `json:"bytes"`
	MaxBytes int64   `json:"max_bytes"`
}

// ResponseMetrics is the response-path section of a snapshot: the
// adaptive-flush chunk writer and its buffer pool.
type ResponseMetrics struct {
	// BytesWritten is every wire byte the read path produced (chunk
	// headers included) — the same counter as reads.bytes_sent, repeated
	// here so the response section is self-contained.
	BytesWritten int64 `json:"bytes_written"`
	// Flushes counts socket write/flush cycles; CoalescedChunks counts
	// chunks that were buffered into a later flush instead of paying for
	// their own. coalesced/(coalesced+flushes) ≈ how hard the adaptive
	// window is working.
	Flushes         int64 `json:"flushes"`
	CoalescedChunks int64 `json:"coalesced_chunks"`
	// Pool hit rate for the recycled response buffers; a miss allocates.
	PoolHits    int64   `json:"pool_hits"`
	PoolMisses  int64   `json:"pool_misses"`
	PoolHitRate float64 `json:"pool_hit_rate"`
	// Time-to-first-byte quantiles (request arrival, before admission
	// queueing, to the first committed body byte), from a power-of-two
	// histogram: exact to within 2x.
	TTFBP50Millis float64 `json:"ttfb_p50_ms"`
	TTFBP99Millis float64 `json:"ttfb_p99_ms"`
}

// WriteMetrics is the writes section of a snapshot.
type WriteMetrics struct {
	Writes      int64 `json:"writes"`
	GOPsWritten int64 `json:"gops_written"`
}

// PredicateMetrics is the predicate-reads (where=) section of a
// snapshot: how many GOPs the planner considered, how many the summary
// bounds pruned without decoding, and the exact-scan outcome.
type PredicateMetrics struct {
	Queries   int64 `json:"queries"`
	Completed int64 `json:"completed"`
	// GOPsConsidered counts candidate GOPs overlapping query intervals;
	// GOPsSkipped are those the per-GOP summary bounds pruned without a
	// fetch or decode; GOPsDecoded actually decoded.
	GOPsConsidered int64 `json:"gops_considered"`
	GOPsSkipped    int64 `json:"gops_skipped"`
	GOPsDecoded    int64 `json:"gops_decoded"`
	// FramesScanned/FramesMatched count exact per-frame predicate
	// evaluations and hits.
	FramesScanned int64 `json:"frames_scanned"`
	FramesMatched int64 `json:"frames_matched"`
	// SkipRate is skipped/considered; Selectivity is matched/scanned.
	SkipRate    float64 `json:"skip_rate"`
	Selectivity float64 `json:"selectivity"`
}

// VideoMetrics is one video's row in the store section of a snapshot.
type VideoMetrics struct {
	Bytes int64 `json:"bytes"`
	// DeferredLevel is the deferred-compression level the maintenance
	// controller would apply right now (0 = inactive).
	DeferredLevel int `json:"deferred_level"`
}

// MetricsSnapshot is the JSON document served by /metrics.
type MetricsSnapshot struct {
	Reads     ReadMetrics      `json:"reads"`
	Admission AdmissionMetrics `json:"admission"`
	Cache     CacheMetrics     `json:"cache"`
	Response  ResponseMetrics  `json:"response"`
	Writes    WriteMetrics     `json:"writes"`
	Predicate PredicateMetrics `json:"predicate"`
	// Pipeline is the per-stage read/write pipeline latency section:
	// count, total time, and p50/p99 per stage (admission wait, plan,
	// fetch, decode, encode, cache admit, flush), from the store's shared
	// power-of-two histograms. Every stage is always present, even at
	// count 0, so dashboards see a stable shape.
	Pipeline map[string]obs.StageStats `json:"pipeline"`
	Videos   map[string]VideoMetrics   `json:"videos"`
	// Storage is the backend section: which backend kind serves the
	// store plus its cumulative read/write byte and latency counters
	// (vss.BackendStats, sampled at snapshot time).
	Storage vss.BackendStats `json:"storage"`
	// Replication is present only for backends with replication
	// machinery — any sharded store, including -shards with the default
	// replicas=1 (then failovers stay 0 and no scrubs run): placement
	// config, read-failover count, per-shard error counters and
	// demotion state, and the most recent scrub pass
	// (vss.ReplicationStats, sampled at snapshot time).
	Replication *vss.ReplicationStats `json:"replication,omitempty"`
	// Cluster is present only when the store routes GOPs across remote
	// vssd nodes (the vssrouterd daemon): per-node error counters and
	// demotion state, read failovers, write-repair journal depth, and
	// repair/scrub counters (vss.ClusterStats, sampled at snapshot
	// time).
	Cluster *vss.ClusterStats `json:"cluster,omitempty"`
}
