package server

import (
	"encoding/binary"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frame"
	"repro/internal/obs"
)

// Response-path tuning. The serving loop used to copy every batch into a
// fresh payload buffer and Flush() per GOP; small-GOP streams spent more
// time in the HTTP plumbing than on their own bytes. The chunkWriter
// below coalesces small chunks into one pooled buffer and flushes on a
// byte/latency threshold, while large payloads skip the copy entirely.
const (
	// flushThreshold is the buffered-byte level that forces a flush; one
	// socket write then carries many coalesced GOPs.
	flushThreshold = 128 << 10
	// flushInterval bounds how stale a buffered chunk may get before a
	// flush, so a slow producer still delivers frames at bounded latency
	// even when the byte threshold is never reached.
	flushInterval = 25 * time.Millisecond
	// bypassThreshold is the payload size at which copying into the
	// coalescing buffer stops paying for itself: the buffered bytes (plus
	// this chunk's header) are flushed and the payload goes to the wire
	// directly from the caller's buffer — zero-copy passthrough for
	// already-encoded GOPs and raw frame batches.
	bypassThreshold = 64 << 10
	// chunkBufCap sizes pooled buffers: the flush threshold plus room for
	// one maximal coalesced chunk and its header, so an append never
	// regrows a pooled buffer.
	chunkBufCap = flushThreshold + bypassThreshold + chunkHeaderLen
	// chunkHeaderLen is the wire framing overhead per chunk.
	chunkHeaderLen = 4
)

// bufPool recycles chunkWriters (and, through them, their coalescing
// buffers) across requests. It is per-Server rather than package-level so
// concurrent test servers do not share hit-rate accounting.
type bufPool struct {
	pool   sync.Pool
	hits   atomic.Int64
	misses atomic.Int64
}

// get returns a chunkWriter ready for reset. Steady-state serving hits
// the pool; a miss allocates the one buffer the request will use.
func (p *bufPool) get() *chunkWriter {
	if v := p.pool.Get(); v != nil {
		p.hits.Add(1)
		return v.(*chunkWriter)
	}
	p.misses.Add(1)
	return &chunkWriter{buf: make([]byte, 0, chunkBufCap)}
}

// put recycles a chunkWriter, dropping every per-request reference but
// keeping the buffer's capacity.
func (p *bufPool) put(cw *chunkWriter) {
	buf := cw.buf[:0]
	*cw = chunkWriter{buf: buf}
	p.pool.Put(cw)
}

// chunkWriter frames a read response: chunks are coalesced into one
// pooled buffer and flushed adaptively (immediately for the first chunk,
// then on flushThreshold bytes or flushInterval elapsed), while payloads
// of bypassThreshold bytes or more are written straight from the caller's
// buffer. The wire bytes are identical to unbuffered per-chunk writes —
// only the write/flush boundaries move.
type chunkWriter struct {
	w       io.Writer
	flusher http.Flusher
	buf     []byte

	committed bool // has any byte reached w?
	lastFlush time.Time
	onFirst   func() // fires when the first byte is committed (TTFB)

	// Per-request stats, folded into server metrics when the request ends.
	bytesOut  int64
	flushes   int64
	coalesced int64 // chunks that stayed buffered past their own write

	// Flush-stage observability, armed by instrument (both may stay nil;
	// bufPool.put's struct reset clears them with everything else).
	pipe *obs.Pipeline
	tr   *obs.Trace
}

// reset arms a pooled chunkWriter for one request. onFirst may be nil.
func (cw *chunkWriter) reset(w io.Writer, flusher http.Flusher, onFirst func()) {
	cw.w = w
	cw.flusher = flusher
	cw.onFirst = onFirst
}

// instrument points the writer at the pipeline's flush-stage histogram
// and the request's trace. Optional — an un-instrumented writer pays
// only nil checks.
func (cw *chunkWriter) instrument(pipe *obs.Pipeline, tr *obs.Trace) {
	cw.pipe = pipe
	cw.tr = tr
}

// observeFlush folds one write/flush cycle's duration into the flush
// stage.
func (cw *chunkWriter) observeFlush(t0 time.Time) {
	if cw.pipe == nil && cw.tr == nil {
		return
	}
	d := time.Since(t0)
	cw.pipe.Observe(obs.StageFlush, d)
	cw.tr.Observe(obs.StageFlush, d)
}

// appendHeader appends one chunk's length framing to the buffer.
func (cw *chunkWriter) appendHeader(n int) {
	var hdr [chunkHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	cw.buf = append(cw.buf, hdr[:]...)
}

// flush writes the buffered bytes and pushes them past the HTTP layer.
func (cw *chunkWriter) flush() error {
	t0 := time.Now()
	if len(cw.buf) > 0 {
		n, err := cw.w.Write(cw.buf)
		cw.bytesOut += int64(n)
		cw.buf = cw.buf[:0]
		cw.noteCommit()
		if err != nil {
			return err
		}
	}
	if cw.flusher != nil {
		cw.flusher.Flush()
	}
	cw.flushes++
	cw.lastFlush = time.Now()
	cw.observeFlush(t0)
	return nil
}

func (cw *chunkWriter) noteCommit() {
	if !cw.committed {
		cw.committed = true
		if cw.onFirst != nil {
			cw.onFirst()
		}
	}
}

// maybeFlush applies the adaptive policy after a chunk lands in the
// buffer: the first chunk flushes immediately (bounded time-to-first-
// frame), later ones coalesce until the byte or latency threshold.
func (cw *chunkWriter) maybeFlush() error {
	if !cw.committed || len(cw.buf) >= flushThreshold ||
		time.Since(cw.lastFlush) >= flushInterval {
		return cw.flush()
	}
	cw.coalesced++
	return nil
}

// writeGOP frames one encoded GOP.
func (cw *chunkWriter) writeGOP(gop []byte) error {
	if len(gop) >= bypassThreshold {
		return cw.bypass(gop)
	}
	cw.appendHeader(len(gop))
	cw.buf = append(cw.buf, gop...)
	return cw.maybeFlush()
}

// bypass writes one chunk zero-copy: the pending buffer plus this chunk's
// header go out first, then the payload directly from its owner's buffer.
func (cw *chunkWriter) bypass(payload []byte) error {
	t0 := time.Now()
	cw.appendHeader(len(payload))
	n, err := cw.w.Write(cw.buf)
	cw.bytesOut += int64(n)
	cw.buf = cw.buf[:0]
	cw.noteCommit()
	if err != nil {
		return err
	}
	n, err = cw.w.Write(payload)
	cw.bytesOut += int64(n)
	if err != nil {
		return err
	}
	if cw.flusher != nil {
		cw.flusher.Flush()
	}
	cw.flushes++
	cw.lastFlush = time.Now()
	cw.observeFlush(t0)
	return nil
}

// writeFrames frames a batch of raw frames, splitting at whole-frame
// boundaries so no chunk exceeds maxChunkBytes (the caller guarantees a
// single frame fits). Small batches coalesce like GOPs; typical raw
// batches are megabytes and take the zero-copy path frame by frame.
func (cw *chunkWriter) writeFrames(frames []*frame.Frame) error {
	for len(frames) > 0 {
		var chunkBytes int64
		n := 0
		for _, f := range frames {
			if n > 0 && chunkBytes+int64(len(f.Data)) > maxChunkBytes {
				break
			}
			chunkBytes += int64(len(f.Data))
			n++
		}
		if chunkBytes < bypassThreshold {
			cw.appendHeader(int(chunkBytes))
			for _, f := range frames[:n] {
				cw.buf = append(cw.buf, f.Data...)
			}
			if err := cw.maybeFlush(); err != nil {
				return err
			}
		} else {
			t0 := time.Now()
			cw.appendHeader(int(chunkBytes))
			wn, err := cw.w.Write(cw.buf)
			cw.bytesOut += int64(wn)
			cw.buf = cw.buf[:0]
			cw.noteCommit()
			if err != nil {
				return err
			}
			for _, f := range frames[:n] {
				wn, err = cw.w.Write(f.Data)
				cw.bytesOut += int64(wn)
				if err != nil {
					return err
				}
			}
			if cw.flusher != nil {
				cw.flusher.Flush()
			}
			cw.flushes++
			cw.lastFlush = time.Now()
			cw.observeFlush(t0)
		}
		frames = frames[n:]
	}
	return nil
}

// writeMatch frames one predicate-read match: the chunk payload is a
// 4-byte big-endian source frame index followed by the frame's pixels
// (matchIndexLen extra bytes per chunk vs a plain raw frame). Large
// frames take the zero-copy path with only the index prefix buffered.
func (cw *chunkWriter) writeMatch(index uint32, payload []byte) error {
	var idx [matchIndexLen]byte
	binary.BigEndian.PutUint32(idx[:], index)
	if matchIndexLen+len(payload) >= bypassThreshold {
		t0 := time.Now()
		cw.appendHeader(matchIndexLen + len(payload))
		cw.buf = append(cw.buf, idx[:]...)
		n, err := cw.w.Write(cw.buf)
		cw.bytesOut += int64(n)
		cw.buf = cw.buf[:0]
		cw.noteCommit()
		if err != nil {
			return err
		}
		n, err = cw.w.Write(payload)
		cw.bytesOut += int64(n)
		if err != nil {
			return err
		}
		if cw.flusher != nil {
			cw.flusher.Flush()
		}
		cw.flushes++
		cw.lastFlush = time.Now()
		cw.observeFlush(t0)
		return nil
	}
	cw.appendHeader(matchIndexLen + len(payload))
	cw.buf = append(cw.buf, idx[:]...)
	cw.buf = append(cw.buf, payload...)
	return cw.maybeFlush()
}

// matchIndexLen is the per-match frame-index prefix inside a predicate
// read's chunk payload.
const matchIndexLen = 4

// finish appends the clean-EOF terminator and flushes everything left.
func (cw *chunkWriter) finish() error {
	cw.appendHeader(0)
	return cw.flush()
}

// abort discards buffered-but-unwritten bytes (an error response is still
// possible if nothing was committed).
func (cw *chunkWriter) abort() { cw.buf = cw.buf[:0] }

// The power-of-two latency histogram that used to live here (as
// latencyHist) is now obs.Hist: it grew from the TTFB gauge into the
// shared implementation behind every per-stage pipeline histogram.
