package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// admission bounds the reads the server executes concurrently. It is the
// serving-layer analogue of the store's bounded worker pool: the pool
// bounds CPU fan-out per read, admission bounds how many reads contend
// for it at all. Requests beyond MaxInFlight wait in a bounded queue
// (FIFO by semaphore fairness-ish: Go channels are unordered under
// contention, which is acceptable here); requests beyond the queue — or
// beyond a single client's per-client allowance — are rejected
// immediately so an aggressive client degrades into 429s instead of
// tying up every slot.
type admission struct {
	slots     chan struct{} // capacity = max in-flight reads
	maxQueued int64
	perClient int

	queued atomic.Int64 // current waiters (gauge)

	mu      sync.Mutex
	clients map[string]int // in-flight + queued reads per client key
}

// Admission rejection reasons, surfaced as 429s by the handler.
var (
	errQueueFull      = errors.New("server: read queue full")
	errPerClientLimit = errors.New("server: per-client read limit reached")
)

func newAdmission(maxInFlight, maxQueued, perClient int) *admission {
	return &admission{
		slots:     make(chan struct{}, maxInFlight),
		maxQueued: int64(maxQueued),
		perClient: perClient,
		clients:   make(map[string]int),
	}
}

// acquire admits one read for the given client key, blocking in the queue
// when every slot is busy. It returns a release function on success. On
// failure the error is errQueueFull / errPerClientLimit (reject, no
// waiting) or the context's error (the client gave up while queued).
func (a *admission) acquire(ctx context.Context, client string) (release func(), err error) {
	a.mu.Lock()
	if a.clients[client] >= a.perClient {
		a.mu.Unlock()
		return nil, errPerClientLimit
	}
	a.clients[client]++
	a.mu.Unlock()
	done := func() {
		a.mu.Lock()
		if a.clients[client]--; a.clients[client] == 0 {
			delete(a.clients, client)
		}
		a.mu.Unlock()
	}

	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots; done() }, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueued {
		a.queued.Add(-1)
		done()
		return nil, errQueueFull
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots; done() }, nil
	case <-ctx.Done():
		done()
		return nil, context.Cause(ctx)
	}
}

// queueDepth reports the current number of queued (waiting) reads.
func (a *admission) queueDepth() int64 { return a.queued.Load() }

// inFlight reports the current number of admitted, running reads.
func (a *admission) inFlight() int64 { return int64(len(a.slots)) }
