package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/visualroad"
	"repro/vss"
)

// newTestServer opens a fresh system and serves it over a real TCP
// listener (streaming/backpressure behavior needs real connections, not
// httptest.ResponseRecorder).
func newTestServer(t *testing.T, opts vss.Options, cfg Config) (*vss.System, *Client) {
	t.Helper()
	if opts.GOPFrames == 0 {
		opts.GOPFrames = 8
	}
	sys, err := vss.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	ts := httptest.NewServer(New(sys, cfg))
	t.Cleanup(ts.Close)
	return sys, &Client{Base: ts.URL, HTTP: ts.Client()}
}

// testFootage generates deterministic synthetic frames.
func testFootage(n, w, h, fps int) []*frame.Frame {
	return visualroad.Generate(visualroad.Config{Width: w, Height: h, FPS: fps, Seed: 42}, n)
}

// pinnedReadQuery is a raw read upscaled to 768x768: with 96 source
// frames that is ~170MB of output — far more than kernel socket buffers
// can absorb even fully autotuned — so a handler serving it to a client
// that stops consuming is guaranteed to block on write backpressure,
// pinning its admission slot. The stream's bounded look-ahead means the
// server only ever computes a few of those frames.
const pinnedReadQuery = "format=rgb&width=768&height=768"

// encodeGOPs chops frames into encoded GOPs of the given size.
func encodeGOPs(t *testing.T, frames []*frame.Frame, gop int) [][]byte {
	t.Helper()
	var gops [][]byte
	for i := 0; i < len(frames); i += gop {
		end := i + gop
		if end > len(frames) {
			end = len(frames)
		}
		data, _, err := codec.EncodeGOP(frames[i:end], codec.H264, 85)
		if err != nil {
			t.Fatal(err)
		}
		gops = append(gops, data)
	}
	return gops
}

// TestHTTPRoundtrip exercises the full lifecycle over HTTP: create, GOP
// write, stat, compressed + raw streaming reads, metrics, delete.
func TestHTTPRoundtrip(t *testing.T) {
	ctx := context.Background()
	sys, c := newTestServer(t, vss.Options{}, Config{CacheBytes: 1 << 20})

	const fps = 8
	frames := testFootage(32, 48, 32, fps)
	if err := c.Create(ctx, "cam", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteGOPs(ctx, "cam", fps, encodeGOPs(t, frames, 8)); err != nil {
		t.Fatal(err)
	}

	stat, err := c.Stat(ctx, "cam")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Duration != 4 || stat.FPS != fps || len(stat.Views) != 1 {
		t.Fatalf("stat = %+v", stat)
	}

	// Compressed streaming read matches the library's batch read.
	hdr, gops, err := c.ReadAll(ctx, "cam", "codec=h264")
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Codec != "h264" || hdr.Width != 48 || hdr.Height != 32 || hdr.FPS != fps {
		t.Fatalf("read header = %+v", hdr)
	}
	res, err := sys.Read("cam", vss.ReadSpec{P: vss.Physical{Codec: vss.H264}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gops) != len(res.GOPs) {
		t.Fatalf("HTTP read returned %d GOPs, library %d", len(gops), len(res.GOPs))
	}
	for i := range gops {
		if !bytes.Equal(gops[i], res.GOPs[i]) {
			t.Fatalf("GOP %d differs between HTTP and library read", i)
		}
	}

	// Raw streaming read: reassemble frames from the chunked payloads and
	// compare byte-for-byte against the library.
	hdr, chunks, err := c.ReadAll(ctx, "cam", "start=1&end=3&format=rgb")
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Codec != "raw" || hdr.Format != frame.RGB || hdr.FrameBytes != 48*32*3 {
		t.Fatalf("raw read header = %+v", hdr)
	}
	var raw []byte
	for _, ch := range chunks {
		raw = append(raw, ch...)
	}
	rres, err := sys.Read("cam", vss.ReadSpec{T: vss.Temporal{Start: 1, End: 3}, P: vss.Physical{Format: vss.RGB}})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, f := range rres.Frames {
		want = append(want, f.Data...)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("raw HTTP read differs from library read (%d vs %d bytes)", len(raw), len(want))
	}

	// Second compressed read hits the response cache.
	hdr, gops2, err := c.ReadAll(ctx, "cam", "codec=h264")
	if err != nil {
		t.Fatal(err)
	}
	if !hdr.CacheHit {
		t.Error("repeated compressed read did not hit the response cache")
	}
	if hdr.Codec != "h264" || hdr.Width != 48 || hdr.Height != 32 || hdr.FPS != fps {
		t.Errorf("cached response header = %+v, want same contract as a miss", hdr)
	}
	for i := range gops2 {
		if !bytes.Equal(gops2[i], gops[i]) {
			t.Fatalf("cached GOP %d differs from original", i)
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reads.Completed < 3 || m.Cache.Hits != 1 || m.Cache.Misses < 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Writes.GOPsWritten != 4 {
		t.Errorf("gops written = %d, want 4", m.Writes.GOPsWritten)
	}
	if _, ok := m.Videos["cam"]; !ok {
		t.Error("metrics missing per-video section")
	}

	if err := c.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, "cam"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat(ctx, "cam"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("stat after delete: %v, want 404", err)
	}
}

// TestWriteInvalidatesCache verifies appended GOPs evict stale cached
// responses (a cached end=0 read would otherwise miss the new suffix).
func TestWriteInvalidatesCache(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, vss.Options{}, Config{CacheBytes: 1 << 20})
	const fps = 8
	frames := testFootage(32, 48, 32, fps)
	if err := c.Create(ctx, "cam", 0); err != nil {
		t.Fatal(err)
	}
	gops := encodeGOPs(t, frames, 8)
	if err := c.WriteGOPs(ctx, "cam", fps, gops[:2]); err != nil {
		t.Fatal(err)
	}
	_, first, err := c.ReadAll(ctx, "cam", "codec=h264")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteGOPs(ctx, "cam", fps, gops[2:]); err != nil {
		t.Fatal(err)
	}
	hdr, second, err := c.ReadAll(ctx, "cam", "codec=h264")
	if err != nil {
		t.Fatal(err)
	}
	if hdr.CacheHit {
		t.Error("read after append served a stale cached response")
	}
	if len(second) <= len(first) {
		t.Errorf("read after append returned %d GOPs, want > %d", len(second), len(first))
	}
}

// TestDisconnectCancelsRead verifies the acceptance criterion: a client
// that disconnects mid-stream cancels its in-flight decode work,
// observably via the cancellation metric.
func TestDisconnectCancelsRead(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, vss.Options{Workers: 1}, Config{})
	const fps = 8
	frames := testFootage(96, 128, 96, fps)
	if err := c.Create(ctx, "cam", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteGOPs(ctx, "cam", fps, encodeGOPs(t, frames, 8)); err != nil {
		t.Fatal(err)
	}

	// An upscaled raw read is ~170MB — far beyond anything socket buffers
	// can absorb (autotuned kernel buffers reach tens of MB) — so the
	// handler is guaranteed to still be streaming (or blocked on write
	// backpressure) when we read one chunk and drop the connection. The
	// stream's look-ahead window bounds what the server actually computes.
	_, next, stop, err := c.StreamingRead(ctx, "cam", pinnedReadQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := next(); err != nil {
		t.Fatal(err)
	}
	stop() // disconnect mid-stream

	deadline := time.Now().Add(10 * time.Second)
	for {
		m, err := c.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Reads.Cancelled >= 1 {
			if m.Reads.Completed != 0 {
				t.Errorf("disconnected read counted as completed: %+v", m.Reads)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never observed the disconnect: %+v", m.Reads)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAdmissionBoundsReads verifies in-flight bounding: with one slot and
// no queue, a second concurrent read is rejected with 429 while the first
// is pinned in flight by an unconsumed stream.
func TestAdmissionBoundsReads(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, vss.Options{Workers: 1},
		Config{MaxInFlightReads: 1, MaxQueuedReads: 1, MaxReadsPerClient: 8})
	const fps = 8
	frames := testFootage(96, 128, 96, fps)
	if err := c.Create(ctx, "cam", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteGOPs(ctx, "cam", fps, encodeGOPs(t, frames, 8)); err != nil {
		t.Fatal(err)
	}

	// Pin the only slot: an upscaled raw read is ~170MB, so after one
	// chunk the handler is blocked on write backpressure and its admission
	// slot stays held until we drain or drop the connection. Metrics
	// requests bypass admission; a second read must queue; a third gets
	// 429.
	_, next, stop, err := c.StreamingRead(ctx, "cam", pinnedReadQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, err := next(); err != nil {
		t.Fatal(err)
	}

	// Fill the queue with a second read from another goroutine.
	queued := make(chan error, 1)
	go func() {
		qctx, qcancel := context.WithCancel(ctx)
		defer qcancel()
		_, _, qstop, err := (&Client{Base: c.Base, HTTP: c.HTTP, Name: "q"}).StreamingRead(qctx, "cam", "codec=hevc&quality=61")
		if err == nil {
			qstop()
		}
		queued <- err
	}()

	// Wait until the second read is actually queued.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m, err := c.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Admission.QueueDepth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second read never queued: %+v", m.Admission)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Queue full: a third read is rejected immediately with 429.
	_, _, _, err = (&Client{Base: c.Base, HTTP: c.HTTP, Name: "r"}).StreamingRead(ctx, "cam", "codec=hevc&quality=62")
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("third concurrent read: %v, want 429", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Admission.Rejected < 1 {
		t.Errorf("no admission rejection recorded: %+v", m.Admission)
	}

	// Drain the pinned stream; the queued read should then complete.
	stop()
	if err := <-queued; err != nil {
		t.Fatalf("queued read after slot freed: %v", err)
	}
}

// TestPerClientLimit verifies one client cannot hold every slot.
func TestPerClientLimit(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, vss.Options{Workers: 1},
		Config{MaxInFlightReads: 8, MaxQueuedReads: 8, MaxReadsPerClient: 1})
	const fps = 8
	frames := testFootage(96, 128, 96, fps)
	if err := c.Create(ctx, "cam", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteGOPs(ctx, "cam", fps, encodeGOPs(t, frames, 8)); err != nil {
		t.Fatal(err)
	}
	greedy := &Client{Base: c.Base, HTTP: c.HTTP, Name: "greedy"}
	// Pin via a ~170MB upscaled raw read (write backpressure holds the
	// slot; see pinnedReadQuery).
	_, next, stop, err := greedy.StreamingRead(ctx, "cam", pinnedReadQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, err := next(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := greedy.StreamingRead(ctx, "cam", "codec=hevc&quality=61"); err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("second read from limited client: %v, want 429", err)
	}
	// A different client is unaffected.
	if _, _, err := (&Client{Base: c.Base, HTTP: c.HTTP, Name: "other"}).ReadAll(ctx, "cam", "codec=h264"); err != nil {
		t.Fatalf("other client read: %v", err)
	}
}

// TestConcurrentReadersVsPipelinedWriter is the satellite race-stress
// test: HTTP readers hammer prefix reads while a pipelined writer appends
// GOPs to the same video. Run under -race (CI does); correctness bar is
// that every read returns a consistent prefix with no errors.
func TestConcurrentReadersVsPipelinedWriter(t *testing.T) {
	ctx := context.Background()
	sys, c := newTestServer(t, vss.Options{GOPFrames: 8, BudgetMultiple: -1}, Config{CacheBytes: 1 << 20})
	const fps = 8
	frames := testFootage(96, 48, 32, fps)

	if err := c.Create(ctx, "cam", -1); err != nil {
		t.Fatal(err)
	}
	w, err := sys.OpenWriterWith("cam", vss.WriteSpec{FPS: fps, Codec: vss.H264, Quality: 85},
		vss.WriteOptions{EncodeWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Seed two seconds so readers always have a valid window, and flush so
	// duration metadata is visible.
	if err := w.Append(frames[:16]...); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	stopWriting := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		for i := 16; i < len(frames); i += 8 {
			select {
			case <-stopWriting:
				return
			default:
			}
			if err := w.Append(frames[i : i+8]...); err != nil {
				writerDone <- err
				return
			}
			if err := w.Flush(); err != nil {
				writerDone <- err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Distinct client keys: the server releases a slot only after
			// the handler returns, which can lag the client's next request
			// — a shared key would trip the per-client limit spuriously.
			cl := &Client{Base: c.Base, HTTP: c.HTTP, Name: fmt.Sprintf("reader-%d", r)}
			for i := 0; i < 8; i++ {
				query := "start=0&end=1&codec=h264"
				if i%2 == 1 {
					query = "start=1&end=2&format=rgb"
				}
				hdr, chunks, err := cl.ReadAll(ctx, "cam", query)
				if err != nil {
					errs <- err
					return
				}
				if len(chunks) == 0 || hdr.Width != 48 {
					errs <- io.ErrUnexpectedEOF
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stopWriting)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		t.Fatalf("reader: %v", err)
	default:
	}
}

// TestCacheGenerationGuard unit-tests the stale-prefix guard: a response
// assembled before an invalidation must not be inserted after it.
func TestCacheGenerationGuard(t *testing.T) {
	c := newResponseCache(1 << 20)
	gen := c.generation("v")
	entry := func() *cacheEntry {
		return &cacheEntry{key: "v|spec", video: "v", gops: [][]byte{{1, 2, 3}}, codec: "h264"}
	}
	// A write lands (invalidation) while the read was streaming: refused.
	c.invalidateVideo("v")
	c.put(entry(), gen)
	if _, ok := c.get("v|spec"); ok {
		t.Fatal("stale-generation entry was cached")
	}
	// A fresh read against the current generation: accepted, then dropped
	// by the next invalidation.
	c.put(entry(), c.generation("v"))
	if _, ok := c.get("v|spec"); !ok {
		t.Fatal("current-generation entry was not cached")
	}
	c.invalidateVideo("v")
	if _, ok := c.get("v|spec"); ok {
		t.Fatal("entry survived invalidation")
	}

	// Delete + recreate: the gens entry is released (no per-name leak),
	// yet a put snapshotted before the delete is still refused, and an
	// unrelated video's churn does not void inserts for a live video.
	gen = c.generation("v")
	c.removeVideo("v")
	if len(c.gens) != 0 {
		t.Fatalf("gens retained %d entries after removeVideo", len(c.gens))
	}
	c.put(entry(), gen)
	if _, ok := c.get("v|spec"); ok {
		t.Fatal("pre-delete snapshot was cached after delete/recreate")
	}
	c.invalidateVideo("v") // recreated video's first write
	genV := c.generation("v")
	c.invalidateVideo("other") // unrelated churn
	c.put(entry(), genV)
	if _, ok := c.get("v|spec"); !ok {
		t.Fatal("unrelated video churn voided a live video's insert")
	}
}

// TestOversizedChunkRejected verifies wire-length validation: a framed
// length far beyond the limit must be rejected before any allocation.
func TestOversizedChunkRejected(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, vss.Options{}, Config{})
	if err := c.Create(ctx, "cam", 0); err != nil {
		t.Fatal(err)
	}
	body := []byte{0xFF, 0xFF, 0xFF, 0xFF} // claims a 4GiB-1 chunk
	resp, err := c.HTTP.Post(c.Base+"/videos/cam/gops?fps=8", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized chunk length: %d, want 400", resp.StatusCode)
	}
}

// TestBadRequests covers parameter validation paths.
func TestBadRequests(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, vss.Options{}, Config{})
	if err := c.Create(ctx, "cam", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteGOPs(ctx, "cam", 8, encodeGOPs(t, testFootage(8, 48, 32, 8), 8)); err != nil {
		t.Fatal(err)
	}
	// Spec mistakes — whether caught at parse time or by the store's
	// resolve — are the client's fault and must map to 400, not 500 (and
	// must not count as server read errors).
	for _, q := range []string{"start=bogus", "roi=1,2,3", "format=h264", "codec=mp5", "start=5&end=3", "width=-4"} {
		if _, _, err := c.ReadAll(ctx, "cam", q); err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("read with %q: %v, want 400", q, err)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reads.Errors != 0 {
		t.Errorf("client spec mistakes counted as %d server read errors", m.Reads.Errors)
	}
	if _, _, err := c.ReadAll(ctx, "ghost", ""); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("read of missing video: %v, want 404", err)
	}
	// Write without fps, and with a garbage body.
	resp, err := c.HTTP.Post(c.Base+"/videos/cam/gops", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("write without fps: %d, want 400", resp.StatusCode)
	}
}
