package server

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/obs"
)

// countingDiscard is a flushable sink that only tallies bytes, so alloc
// measurements see the chunkWriter alone.
type countingDiscard struct {
	n       int64
	flushes int
}

func (d *countingDiscard) Write(p []byte) (int, error) { d.n += int64(len(p)); return len(p), nil }
func (d *countingDiscard) Flush()                      { d.flushes++ }

// TestChunkWriterAllocs is the pooled-buffer regression tripwire: once a
// chunkWriter is armed, streaming GOPs through it must not allocate —
// coalescing happens inside the pooled buffer, flushes reuse it, and
// bypass writes go straight from the caller's buffer.
func TestChunkWriterAllocs(t *testing.T) {
	var pool bufPool
	small := bytes.Repeat([]byte{7}, 4<<10)           // coalesces
	large := bytes.Repeat([]byte{9}, bypassThreshold) // zero-copy bypass
	sink := &countingDiscard{}
	cw := pool.get()
	cw.reset(sink, sink, nil)
	defer pool.put(cw)

	perGOP := testing.AllocsPerRun(200, func() {
		if err := cw.writeGOP(small); err != nil {
			t.Fatal(err)
		}
	})
	if perGOP > 0 {
		t.Errorf("small-GOP hot path allocates %.2f/op, want 0", perGOP)
	}
	perGOP = testing.AllocsPerRun(200, func() {
		if err := cw.writeGOP(large); err != nil {
			t.Fatal(err)
		}
	})
	if perGOP > 0 {
		t.Errorf("bypass hot path allocates %.2f/op, want 0", perGOP)
	}
}

// TestChunkArenaAllocs pins the client-side slab arena: carving small
// chunks must amortize to far below one allocation per chunk.
func TestChunkArenaAllocs(t *testing.T) {
	var arena chunkArena
	per := testing.AllocsPerRun(512, func() {
		buf := arena.alloc(4 << 10)
		if len(buf) != 4<<10 {
			t.Fatal("bad alloc length")
		}
	})
	if per > 0.1 {
		t.Errorf("arena allocates %.3f/chunk for 4KiB chunks, want amortized < 0.1", per)
	}
}

// TestChunkArenaNoAliasing verifies a caller appending to one carved
// chunk cannot scribble over the next chunk's bytes.
func TestChunkArenaNoAliasing(t *testing.T) {
	var arena chunkArena
	a := arena.alloc(8)
	copy(a, "aaaaaaaa")
	a = append(a, 'X') // must reallocate, not spill into b's slab region
	b := arena.alloc(8)
	copy(b, "bbbbbbbb")
	if string(a[:8]) != "aaaaaaaa" || string(b) != "bbbbbbbb" {
		t.Fatalf("arena chunks alias: a=%q b=%q", a, b)
	}
}

// naiveFraming is the reference wire encoding: every chunk written and
// flushed individually, the pre-coalescing behavior.
func naiveFraming(gops [][]byte, frameBatches [][]*frame.Frame) []byte {
	var buf bytes.Buffer
	for _, g := range gops {
		writeChunk(&buf, g)
	}
	for _, fr := range frameBatches {
		var total int
		for _, f := range fr {
			total += len(f.Data)
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(total))
		buf.Write(hdr[:])
		for _, f := range fr {
			buf.Write(f.Data)
		}
	}
	writeChunk(&buf, nil)
	return buf.Bytes()
}

// TestChunkWriterWireEquivalence drives randomized chunk sequences across
// the coalesce/bypass boundary and asserts the wire bytes are identical
// to per-chunk framing — flush windows move write boundaries, never
// payload bytes.
func TestChunkWriterWireEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		var gops [][]byte
		for i := 0; i < 1+rng.Intn(40); i++ {
			// Sizes straddle bypassThreshold so both paths interleave.
			n := 1 + rng.Intn(2*bypassThreshold)
			g := make([]byte, n)
			rng.Read(g)
			gops = append(gops, g)
		}
		var fb [][]*frame.Frame
		for i := 0; i < rng.Intn(3); i++ {
			var batch []*frame.Frame
			for k := 0; k < 1+rng.Intn(4); k++ {
				f := frame.New(32+rng.Intn(64), 16+rng.Intn(32), frame.Gray)
				rng.Read(f.Data)
				batch = append(batch, f)
			}
			fb = append(fb, batch)
		}

		var pool bufPool
		var got bytes.Buffer
		cw := pool.get()
		cw.reset(&got, nil, nil)
		for _, g := range gops {
			if err := cw.writeGOP(g); err != nil {
				t.Fatal(err)
			}
		}
		for _, batch := range fb {
			if err := cw.writeFrames(batch); err != nil {
				t.Fatal(err)
			}
		}
		if err := cw.finish(); err != nil {
			t.Fatal(err)
		}
		if want := naiveFraming(gops, fb); !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("trial %d: coalesced wire bytes differ from per-chunk framing (%d vs %d bytes)",
				trial, got.Len(), len(want))
		}
		if cw.bytesOut != int64(got.Len()) {
			t.Fatalf("trial %d: bytesOut %d, wrote %d", trial, cw.bytesOut, got.Len())
		}
		pool.put(cw)
	}
}

// TestChunkWriterFirstChunkFlushes pins the TTFB bound: the first chunk
// must reach the wire immediately, not wait for the byte threshold.
func TestChunkWriterFirstChunkFlushes(t *testing.T) {
	var pool bufPool
	sink := &countingDiscard{}
	cw := pool.get()
	fired := false
	cw.reset(sink, sink, func() { fired = true })
	if err := cw.writeGOP([]byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if sink.n == 0 || sink.flushes == 0 || !fired {
		t.Fatalf("first chunk not committed: wrote %d bytes, %d flushes, onFirst=%v",
			sink.n, sink.flushes, fired)
	}
	// Subsequent small chunks coalesce instead of flushing.
	flushesAfterFirst := sink.flushes
	for i := 0; i < 3; i++ {
		if err := cw.writeGOP([]byte("tiny")); err != nil {
			t.Fatal(err)
		}
	}
	if sink.flushes != flushesAfterFirst {
		t.Errorf("small chunks flushed eagerly: %d flushes, want %d", sink.flushes, flushesAfterFirst)
	}
	if cw.coalesced != 3 {
		t.Errorf("coalesced = %d, want 3", cw.coalesced)
	}
	pool.put(cw)
}

// TestLatencyHistQuantiles sanity-checks the power-of-two histogram
// behind the TTFB gauge (now obs.Hist): the quantile must land within
// its 2x bucket of the true value.
func TestLatencyHistQuantiles(t *testing.T) {
	var h obs.Hist
	for i := 0; i < 50; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		h.Observe(900 * time.Millisecond)
	}
	p50, p99 := h.QuantileMillis(0.50), h.QuantileMillis(0.99)
	if p50 < 1 || p50 > 2.1 {
		t.Errorf("p50 = %.2fms, want ~1-2ms", p50)
	}
	if p99 < 900 || p99 > 2100 {
		t.Errorf("p99 = %.2fms, want within 2x of 900ms", p99)
	}
}
