package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// This file is the client side of the GOP storage plane
// (storageplane.go): the methods that make *Client satisfy
// storage.NodeClient, so storage.Remote (and through it the router
// fleet) can use a vssd node as one replica store. Failed responses are
// *StatusError, which is what Remote's retry policy and fs.ErrNotExist
// normalization key on.

// gopPath builds the /gops path for one GOP address.
func gopPath(video, physDir string, seq int) string {
	return "/gops/" + url.PathEscape(video) + "/" + url.PathEscape(physDir) + "/" + strconv.Itoa(seq)
}

// Addr identifies the node for health stats and error messages.
func (c *Client) Addr() string { return c.Base }

// Health probes GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errorFrom(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// GOPWrite stores one GOP on the node.
func (c *Client) GOPWrite(ctx context.Context, video, physDir string, seq int, data []byte) error {
	resp, err := c.do(ctx, http.MethodPut, gopPath(video, physDir, seq), bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return errorFrom(resp)
	}
	return nil
}

// GOPRead fetches one GOP's bytes.
func (c *Client) GOPRead(ctx context.Context, video, physDir string, seq int) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, gopPath(video, physDir, seq), nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, errorFrom(resp)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	// The header is the server's claim about what it stored; a mismatch
	// means the body was cut short without the transport noticing.
	if want, err := strconv.Atoi(resp.Header.Get("X-VSS-GOP-Size")); err == nil && want != len(data) {
		return nil, fmt.Errorf("gop read truncated: got %d bytes, node advertised %d", len(data), want)
	}
	return data, nil
}

// GOPStat returns one GOP's stored size without reading it.
func (c *Client) GOPStat(ctx context.Context, video, physDir string, seq int) (int64, error) {
	resp, err := c.do(ctx, http.MethodHead, gopPath(video, physDir, seq), nil)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// HEAD responses have no body, so errorFrom yields an empty Msg —
		// the status line still carries the code Remote needs.
		return 0, errorFrom(resp)
	}
	n, err := strconv.ParseInt(resp.Header.Get("X-VSS-GOP-Size"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad X-VSS-GOP-Size header: %w", err)
	}
	return n, nil
}

// GOPDelete removes one GOP (idempotent on the server).
func (c *Client) GOPDelete(ctx context.Context, video, physDir string, seq int) error {
	resp, err := c.do(ctx, http.MethodDelete, gopPath(video, physDir, seq), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return errorFrom(resp)
	}
	return nil
}

// GOPLink links or copies a stored GOP to a new address on the node.
func (c *Client) GOPLink(ctx context.Context, video, srcDir string, srcSeq int, dstVideo, dstDir string, dstSeq int) error {
	q := url.Values{}
	q.Set("video", dstVideo)
	q.Set("phys", dstDir)
	q.Set("seq", strconv.Itoa(dstSeq))
	path := gopPath(video, srcDir, srcSeq) + "/link?" + q.Encode()
	resp, err := c.do(ctx, http.MethodPost, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return errorFrom(resp)
	}
	return nil
}

// GOPDeletePhysical removes every GOP of one physical video.
func (c *Client) GOPDeletePhysical(ctx context.Context, video, physDir string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/gops/"+url.PathEscape(video)+"/"+url.PathEscape(physDir), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return errorFrom(resp)
	}
	return nil
}

// GOPDeleteVideo removes every GOP stored under one logical video.
func (c *Client) GOPDeleteVideo(ctx context.Context, video string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/gops/"+url.PathEscape(video), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return errorFrom(resp)
	}
	return nil
}

// GOPWalk enumerates every GOP on the node. The stream is framed like a
// read response — one JSON entry per chunk, zero-length terminator — so
// a walk cut off by a dying node is an error, never a silently short
// listing.
func (c *Client) GOPWalk(ctx context.Context, fn func(video, physDir string, seq int, size int64) error) error {
	resp, err := c.do(ctx, http.MethodGet, "/gops", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errorFrom(resp)
	}
	var lenHdr [4]byte
	buf := make([]byte, 0, 256)
	for {
		if _, err := io.ReadFull(resp.Body, lenHdr[:]); err != nil {
			return fmt.Errorf("walk truncated before terminator: %w", err)
		}
		n := binary.BigEndian.Uint32(lenHdr[:])
		if n == 0 {
			return nil
		}
		if n > maxChunkBytes {
			return fmt.Errorf("walk chunk length %d exceeds limit %d", n, maxChunkBytes)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			return fmt.Errorf("walk truncated mid-entry: %w", err)
		}
		var e gopEntry
		if err := json.Unmarshal(buf, &e); err != nil {
			return fmt.Errorf("bad walk entry: %w", err)
		}
		if err := fn(e.Video, e.Phys, e.Seq, e.Size); err != nil {
			return err
		}
	}
}
