// Package visualroad synthesizes the video workloads used by the paper's
// evaluation. The paper generates data with the Visual Road benchmark (a
// CARLA-based simulator); this stdlib-only reproduction renders a
// deterministic procedural traffic scene: a panoramic world containing a
// road, lane markings, textured buildings, and moving vehicles, sampled by
// one or two cameras whose horizontal overlap (and optional perspective
// difference and rotation) is configurable.
//
// The generator preserves the workload properties the experiments need:
// controlled overlap percentage between camera pairs, strong temporal
// redundancy for inter-frame codecs, feature-rich texture for homography
// estimation, and detectable "vehicles" for the end-to-end application.
package visualroad

import (
	"math/rand"

	"repro/internal/frame"
	"repro/internal/vision"
)

// Config parameterizes a scenario.
type Config struct {
	// Width, Height are the per-camera output resolution.
	Width, Height int
	// FPS is the nominal frame rate (affects vehicle motion per frame).
	FPS int
	// Seed makes the world deterministic.
	Seed int64
	// Overlap is the fraction of horizontal field shared by the two
	// cameras (e.g. 0.3 for the paper's "30%" datasets).
	Overlap float64
	// Perspective tilts the right camera's image plane; 0 keeps the pair
	// related by pure translation. Values around 0.2-1.0 are realistic.
	Perspective float64
	// Vehicles is the number of cars in the world (default 6).
	Vehicles int
	// RotateEvery pans the cameras every N frames (dynamic cameras per
	// Section 5.1.2); 0 keeps them static.
	RotateEvery int
}

func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = 240
	}
	if c.Height == 0 {
		c.Height = 136
	}
	if c.FPS == 0 {
		c.FPS = 30
	}
	if c.Vehicles == 0 {
		c.Vehicles = 6
	}
	if c.Overlap < 0 {
		c.Overlap = 0
	}
	if c.Overlap > 0.95 {
		c.Overlap = 0.95
	}
	return c
}

func clamp8(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// vehicle is one moving car.
type vehicle struct {
	lane    int
	x       float64 // world position
	speed   float64 // pixels per frame
	w, h    int
	r, g, b byte
}

// World is a procedural panoramic scene.
type World struct {
	cfg        Config
	worldW     int
	background *frame.Frame
	vehicles   []vehicle
	laneY      []int
}

// VehiclePalette lists the saturated colors vehicles are drawn in; the
// detector (internal/detect) keys on these.
var VehiclePalette = [][3]byte{
	{210, 40, 40},   // red
	{40, 60, 200},   // blue
	{230, 200, 40},  // yellow
	{40, 180, 70},   // green
	{230, 230, 230}, // white
	{150, 60, 190},  // purple
}

// NewWorld builds the panoramic world backing a scenario. The panorama is
// wide enough for two cameras at the configured overlap.
func NewWorld(cfg Config) *World {
	cfg = cfg.withDefaults()
	worldW := cfg.Width*2 - int(float64(cfg.Width)*cfg.Overlap)
	if worldW < cfg.Width {
		worldW = cfg.Width
	}
	// Margin so vehicles enter and exit smoothly and dynamic cameras can
	// pan.
	worldW += cfg.Width / 2
	w := &World{cfg: cfg, worldW: worldW}
	w.renderBackground()
	w.placeVehicles()
	return w
}

// WorldWidth returns the panorama width in pixels.
func (w *World) WorldWidth() int { return w.worldW }

// renderBackground draws the static scene: sky, buildings with window
// grids (texture for feature detection), road, and lane markings.
func (w *World) renderBackground() {
	cfg := w.cfg
	h := cfg.Height
	bg := frame.New(w.worldW, h, frame.RGB)
	rng := rand.New(rand.NewSource(cfg.Seed))

	skyH := h * 30 / 100
	roadTop := h * 55 / 100
	// Per-world tint: distinct scenes (different seeds) have visibly
	// different palettes, as real locations do; the fingerprint index
	// relies on this to cluster only related cameras together.
	tintR := byte(rng.Intn(40))
	tintG := byte(rng.Intn(40))
	tintB := byte(rng.Intn(30))
	for y := 0; y < h; y++ {
		for x := 0; x < w.worldW; x++ {
			switch {
			case y < skyH: // sky gradient
				bg.SetRGB(x, y, clamp8(100+y*2+int(tintR)), clamp8(140+y+int(tintG)), clamp8(225+int(tintB)))
			case y < roadTop: // ground strip
				bg.SetRGB(x, y, 80+tintR, 110+tintG, 80+tintB)
			default: // road
				bg.SetRGB(x, y, 60+tintR, 60+tintG, 64+tintB)
			}
		}
	}
	// Buildings: textured blocks along the skyline.
	for bx := 0; bx < w.worldW; {
		bw := 14 + rng.Intn(26)
		bh := skyH/2 + rng.Intn(roadTop-skyH/2-4)
		base := byte(90 + rng.Intn(110))
		top := roadTop - bh
		for y := top; y < roadTop; y++ {
			for x := bx; x < bx+bw && x < w.worldW; x++ {
				c := base
				// Window grid provides corners for the vision pipeline.
				if (x-bx)%5 < 2 && (y-top)%6 < 3 {
					c = byte(30 + rng.Intn(40))
				}
				bg.SetRGB(x, y, c, c, byte(int(c)*9/10))
			}
		}
		bx += bw + 2 + rng.Intn(8)
	}
	// Lane markings.
	laneCount := 3
	w.laneY = w.laneY[:0]
	for l := 0; l < laneCount; l++ {
		ly := roadTop + (h-roadTop)*(2*l+1)/(2*laneCount)
		w.laneY = append(w.laneY, ly)
		if l > 0 {
			my := roadTop + (h-roadTop)*l/laneCount
			for x := 0; x < w.worldW; x++ {
				if (x/8)%2 == 0 {
					bg.SetRGB(x, my, 220, 220, 200)
				}
			}
		}
	}
	w.background = bg
}

// placeVehicles seeds the moving cars.
func (w *World) placeVehicles() {
	rng := rand.New(rand.NewSource(w.cfg.Seed + 1))
	scale := w.cfg.Height / 34
	if scale < 1 {
		scale = 1
	}
	for i := 0; i < w.cfg.Vehicles; i++ {
		pal := VehiclePalette[i%len(VehiclePalette)]
		lane := i % len(w.laneY)
		speed := (0.5 + rng.Float64()*1.5) * float64(w.cfg.Width) / float64(w.cfg.FPS*4)
		if lane%2 == 1 {
			speed = -speed
		}
		w.vehicles = append(w.vehicles, vehicle{
			lane:  lane,
			x:     rng.Float64() * float64(w.worldW),
			speed: speed,
			w:     8 * scale,
			h:     4 * scale,
			r:     pal[0], g: pal[1], b: pal[2],
		})
	}
}

// Panorama renders the whole world at frame t.
func (w *World) Panorama(t int) *frame.Frame {
	f := w.background.Clone()
	for _, v := range w.vehicles {
		x := int(v.x + v.speed*float64(t))
		x = ((x % w.worldW) + w.worldW) % w.worldW
		y := w.laneY[v.lane] - v.h/2
		drawVehicle(f, x, y, v)
		// Wraparound copy when straddling the world edge.
		if x+v.w > w.worldW {
			drawVehicle(f, x-w.worldW, y, v)
		}
	}
	return f
}

// drawVehicle renders a car body with darker windows and wheels.
func drawVehicle(f *frame.Frame, x0, y0 int, v vehicle) {
	for y := y0; y < y0+v.h; y++ {
		if y < 0 || y >= f.Height {
			continue
		}
		for x := x0; x < x0+v.w; x++ {
			if x < 0 || x >= f.Width {
				continue
			}
			r, g, b := v.r, v.g, v.b
			// Window band.
			if y-y0 < v.h/3 && x-x0 > v.w/5 && x-x0 < v.w*4/5 {
				r, g, b = 40, 50, 60
			}
			// Wheels.
			if y-y0 >= v.h-v.h/4 && ((x-x0 < v.w/4) || (x-x0 >= v.w*3/4)) {
				r, g, b = 20, 20, 20
			}
			f.SetRGB(x, y, r, g, b)
		}
	}
}

// CameraOffsets returns the left and right camera world offsets at frame
// t, honoring dynamic panning.
func (w *World) CameraOffsets(t int) (int, int) {
	cfg := w.cfg
	pan := 0
	if cfg.RotateEvery > 0 {
		pan = (t / cfg.RotateEvery) % (cfg.Width / 4)
	}
	left := pan
	right := pan + cfg.Width - int(float64(cfg.Width)*cfg.Overlap)
	if right+cfg.Width > w.worldW {
		right = w.worldW - cfg.Width
	}
	return left, right
}

// RightHomography returns the ground-truth transform from left-camera
// coordinates to right-camera coordinates at frame t. The right camera is
// rendered through this transform's inverse, so alignment is exact by
// construction. Tests use it to validate the estimated homography; VSS
// itself never sees it.
func (w *World) RightHomography(t int) vision.Homography {
	l, r := w.CameraOffsets(t)
	base := vision.Homography{1, 0, float64(l - r), 0, 1, 0, 0, 0, 1}
	if w.cfg.Perspective == 0 {
		return base
	}
	p := w.cfg.Perspective * 2e-4
	persp := vision.Homography{1, 0, 0, 0, 1, 0, p, 0, 1}
	return persp.Mul(base)
}

// LeftFrame renders the left camera at frame t.
func (w *World) LeftFrame(t int) *frame.Frame {
	l, _ := w.CameraOffsets(t)
	pano := w.Panorama(t)
	out, _ := pano.Crop(frame.Rect{X0: l, Y0: 0, X1: l + w.cfg.Width, Y1: w.cfg.Height})
	return out
}

// RightFrame renders the right camera at frame t, applying the configured
// perspective difference: right pixel (u, v) samples the panorama at
// T_l · H_gt^{-1} · (u, v), where H_gt is the declared ground-truth
// left-to-right transform and T_l shifts left-camera coordinates into
// panorama coordinates.
func (w *World) RightFrame(t int) *frame.Frame {
	l, r := w.CameraOffsets(t)
	pano := w.Panorama(t)
	if w.cfg.Perspective == 0 {
		out, _ := pano.Crop(frame.Rect{X0: r, Y0: 0, X1: r + w.cfg.Width, Y1: w.cfg.Height})
		return out
	}
	hInv, err := w.RightHomography(t).Inverse()
	if err != nil {
		out, _ := pano.Crop(frame.Rect{X0: r, Y0: 0, X1: r + w.cfg.Width, Y1: w.cfg.Height})
		return out
	}
	shift := vision.Homography{1, 0, float64(l), 0, 1, 0, 0, 0, 1}
	return vision.WarpClamp(pano, shift.Mul(hInv), w.cfg.Width, w.cfg.Height)
}

// Pair renders n frames from both cameras.
func (w *World) Pair(n int) (left, right []*frame.Frame) {
	left = make([]*frame.Frame, n)
	right = make([]*frame.Frame, n)
	for t := 0; t < n; t++ {
		left[t] = w.LeftFrame(t)
		right[t] = w.RightFrame(t)
	}
	return left, right
}

// Generate renders n frames from the left camera only — the single-stream
// workload generator.
func Generate(cfg Config, n int) []*frame.Frame {
	w := NewWorld(cfg)
	out := make([]*frame.Frame, n)
	for t := 0; t < n; t++ {
		out[t] = w.LeftFrame(t)
	}
	return out
}

// GeneratePair renders n frames from both cameras.
func GeneratePair(cfg Config, n int) (left, right []*frame.Frame) {
	return NewWorld(cfg).Pair(n)
}
