package visualroad

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/quality"
	"repro/internal/vision"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Width: 64, Height: 48, FPS: 8, Seed: 5}
	a := Generate(cfg, 4)
	b := Generate(cfg, 4)
	for i := range a {
		m, err := quality.MSE(a[i], b[i])
		if err != nil || m != 0 {
			t.Fatalf("frame %d not deterministic: %v %f", i, err, m)
		}
	}
}

func TestGenerateDimensions(t *testing.T) {
	frames := Generate(Config{Width: 80, Height: 60, FPS: 8, Seed: 1}, 3)
	if len(frames) != 3 {
		t.Fatalf("got %d frames", len(frames))
	}
	for _, f := range frames {
		if f.Width != 80 || f.Height != 60 || f.Format != frame.RGB {
			t.Fatalf("frame %dx%d %v", f.Width, f.Height, f.Format)
		}
	}
}

func TestSceneHasMotion(t *testing.T) {
	frames := Generate(Config{Width: 96, Height: 64, FPS: 8, Seed: 2}, 8)
	m, err := quality.MSE(frames[0], frames[7])
	if err != nil {
		t.Fatal(err)
	}
	if m < 1 {
		t.Errorf("frames 0 and 7 nearly identical (MSE %f): no motion", m)
	}
}

func TestSceneHasFeatures(t *testing.T) {
	f := Generate(Config{Width: 128, Height: 96, FPS: 8, Seed: 3}, 1)[0]
	kps := vision.DetectKeypoints(f, 100)
	if len(kps) < 30 {
		t.Errorf("scene yields only %d keypoints; homography estimation needs texture", len(kps))
	}
}

func TestPairOverlapPureTranslation(t *testing.T) {
	cfg := Config{Width: 96, Height: 64, FPS: 8, Seed: 4, Overlap: 0.5}
	w := NewWorld(cfg)
	l, r := w.Pair(1)
	// With 50% overlap and no perspective, the right half of the left
	// frame equals the left half of the right frame.
	shift := 96 - int(96*0.5)
	var diff int
	for y := 0; y < 64; y++ {
		for x := shift; x < 96; x++ {
			lr, lg, lb := l[0].AtRGB(x, y)
			rr, rg, rb := r[0].AtRGB(x-shift, y)
			diff += abs(int(lr)-int(rr)) + abs(int(lg)-int(rg)) + abs(int(lb)-int(rb))
		}
	}
	if avg := float64(diff) / float64(64*(96-shift)*3); avg > 1 {
		t.Errorf("overlap regions differ (mean abs %f)", avg)
	}
}

func TestGroundTruthHomographyAligns(t *testing.T) {
	cfg := Config{Width: 96, Height: 64, FPS: 8, Seed: 6, Overlap: 0.4, Perspective: 0.5}
	w := NewWorld(cfg)
	l, r := w.Pair(1)
	h := w.RightHomography(0)
	// Warping the right frame through H should reproduce the overlapping
	// part of the left frame.
	warped, mask := vision.Warp(r[0], h, 96, 64)
	var sum float64
	var n int
	for y := 8; y < 56; y++ {
		for x := 60; x < 92; x++ { // inside the overlap
			i := y*96 + x
			if !mask[i] {
				continue
			}
			for c := 0; c < 3; c++ {
				d := float64(int(warped.Data[i*3+c]) - int(l[0].Data[i*3+c]))
				sum += d * d
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("no overlap pixels")
	}
	if mse := sum / float64(n); mse > 60 {
		t.Errorf("ground-truth homography misaligns: MSE %f", mse)
	}
}

func TestDynamicCameraPans(t *testing.T) {
	cfg := Config{Width: 96, Height: 64, FPS: 8, Seed: 7, Overlap: 0.5, RotateEvery: 2}
	w := NewWorld(cfg)
	l0, _ := w.CameraOffsets(0)
	l4, _ := w.CameraOffsets(4)
	if l0 == l4 {
		t.Error("dynamic camera did not pan")
	}
	static := NewWorld(Config{Width: 96, Height: 64, FPS: 8, Seed: 7, Overlap: 0.5})
	s0, _ := static.CameraOffsets(0)
	s4, _ := static.CameraOffsets(4)
	if s0 != s4 {
		t.Error("static camera moved")
	}
}

func TestOverlapClamped(t *testing.T) {
	w := NewWorld(Config{Width: 64, Height: 48, Overlap: 2.0, Seed: 8})
	l, r := w.CameraOffsets(0)
	if r < l {
		t.Error("cameras out of order after clamping")
	}
	if w.WorldWidth() < 64 {
		t.Error("world narrower than a camera")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
