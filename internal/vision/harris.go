package vision

import (
	"math"
	"sort"

	"repro/internal/frame"
)

// Keypoint is a detected interest point with its descriptor: a normalized
// spatial patch characterizing the "interesting region", playing the role
// of the paper's SIFT features.
type Keypoint struct {
	X, Y     int
	Response float64
	Desc     []float32
}

// DescSize is the descriptor edge length: descriptors are DescSize^2
// samples taken on a 2px grid around the keypoint.
const DescSize = 8

// descSupport is the half-width of the image patch a descriptor covers.
const descSupport = DescSize // 2px spacing * DescSize / 2 * 2

// DetectKeypoints finds up to maxN Harris corners in the frame (converted
// to grayscale as needed) and computes a descriptor for each. Keypoints too
// close to the border to support a descriptor are discarded.
func DetectKeypoints(f *frame.Frame, maxN int) []Keypoint {
	gray := f
	if f.Format != frame.Gray {
		gray = f.Convert(frame.Gray)
	}
	w, h := gray.Width, gray.Height
	if w < 2*descSupport+3 || h < 2*descSupport+3 {
		return nil
	}
	resp := harrisResponse(gray)

	// Non-maximum suppression over a 5x5 neighborhood, skipping a border
	// wide enough to extract descriptors.
	border := descSupport + 1
	type cand struct {
		x, y int
		r    float64
	}
	var cands []cand
	for y := border; y < h-border; y++ {
		for x := border; x < w-border; x++ {
			r := resp[y*w+x]
			if r <= 0 {
				continue
			}
			isMax := true
			for dy := -2; dy <= 2 && isMax; dy++ {
				for dx := -2; dx <= 2; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					if resp[(y+dy)*w+x+dx] > r {
						isMax = false
						break
					}
				}
			}
			if isMax {
				cands = append(cands, cand{x, y, r})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].r > cands[j].r })
	if maxN > 0 && len(cands) > maxN {
		cands = cands[:maxN]
	}
	kps := make([]Keypoint, 0, len(cands))
	for _, c := range cands {
		desc := describe(gray, c.x, c.y)
		if desc == nil {
			continue
		}
		kps = append(kps, Keypoint{X: c.x, Y: c.y, Response: c.r, Desc: desc})
	}
	return kps
}

// harrisResponse computes the Harris corner response R = det(M) - k tr(M)^2
// with a 3x3 box-filtered structure tensor and Sobel gradients.
func harrisResponse(gray *frame.Frame) []float64 {
	w, h := gray.Width, gray.Height
	pix := gray.Data
	ix := make([]float64, w*h)
	iy := make([]float64, w*h)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			i := y*w + x
			// Sobel kernels.
			gx := -int(pix[i-w-1]) + int(pix[i-w+1]) +
				-2*int(pix[i-1]) + 2*int(pix[i+1]) +
				-int(pix[i+w-1]) + int(pix[i+w+1])
			gy := -int(pix[i-w-1]) - 2*int(pix[i-w]) - int(pix[i-w+1]) +
				int(pix[i+w-1]) + 2*int(pix[i+w]) + int(pix[i+w+1])
			ix[i] = float64(gx) / 8
			iy[i] = float64(gy) / 8
		}
	}
	resp := make([]float64, w*h)
	const k = 0.05
	for y := 2; y < h-2; y++ {
		for x := 2; x < w-2; x++ {
			var sxx, syy, sxy float64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					i := (y+dy)*w + x + dx
					sxx += ix[i] * ix[i]
					syy += iy[i] * iy[i]
					sxy += ix[i] * iy[i]
				}
			}
			det := sxx*syy - sxy*sxy
			tr := sxx + syy
			resp[y*w+x] = det - k*tr*tr
		}
	}
	return resp
}

// describe extracts a normalized DescSize x DescSize patch sampled at 2px
// spacing, zero-meaned and scaled to unit L2 norm. Normalization buys
// invariance to brightness and contrast shifts between cameras.
func describe(gray *frame.Frame, cx, cy int) []float32 {
	w := gray.Width
	desc := make([]float32, DescSize*DescSize)
	var mean float64
	idx := 0
	for dy := -DescSize / 2; dy < DescSize/2; dy++ {
		for dx := -DescSize / 2; dx < DescSize/2; dx++ {
			v := float64(gray.Data[(cy+dy*2)*w+cx+dx*2])
			desc[idx] = float32(v)
			mean += v
			idx++
		}
	}
	mean /= float64(len(desc))
	var norm float64
	for i := range desc {
		d := float64(desc[i]) - mean
		desc[i] = float32(d)
		norm += d * d
	}
	norm = math.Sqrt(norm)
	if norm < 1e-6 {
		return nil // flat patch: not a usable descriptor
	}
	for i := range desc {
		desc[i] = float32(float64(desc[i]) / norm)
	}
	return desc
}

// DescDistance returns the squared Euclidean distance between descriptors.
func DescDistance(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i] - b[i])
		s += d * d
	}
	return s
}
