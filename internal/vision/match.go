package vision

import "math/rand"

// Match pairs keypoint indices between two keypoint sets.
type Match struct {
	A, B int
	Dist float64
}

// DefaultLoweRatio is the nearest/second-nearest distance ratio below
// which a match is considered unambiguous, per Lowe [32] as used in
// Section 5.1.3 of the paper ("disambiguates using Lowe's ratio").
const DefaultLoweRatio = 0.8

// MatchKeypoints matches descriptors from a to b by brute-force nearest
// neighbor, keeping only unambiguous matches: the best distance must be
// below ratio^2 times the second best (squared distances), and each target
// keypoint may be claimed at most once (ties keep the closer match). This
// implements the paper's rejection of ambiguous correspondences.
func MatchKeypoints(a, b []Keypoint, ratio float64) []Match {
	if ratio <= 0 {
		ratio = DefaultLoweRatio
	}
	r2 := ratio * ratio
	var matches []Match
	claimed := make(map[int]int) // b index -> matches index
	for i := range a {
		best, second := -1, -1
		bestD, secondD := 1e18, 1e18
		for j := range b {
			d := DescDistance(a[i].Desc, b[j].Desc)
			if d < bestD {
				second, secondD = best, bestD
				best, bestD = j, d
			} else if d < secondD {
				second, secondD = j, d
			}
		}
		_ = second
		if best < 0 || bestD > r2*secondD {
			continue // ambiguous or no candidates
		}
		if prev, ok := claimed[best]; ok {
			if matches[prev].Dist <= bestD {
				continue
			}
			// Replace the earlier, worse claim.
			matches[prev] = Match{A: i, B: best, Dist: bestD}
			continue
		}
		claimed[best] = len(matches)
		matches = append(matches, Match{A: i, B: best, Dist: bestD})
	}
	return matches
}

// RANSACResult carries a robustly estimated homography and its support.
type RANSACResult struct {
	H       Homography
	Inliers []Match
}

// RANSACHomography robustly estimates the homography mapping keypoints of
// a onto keypoints of b from the given matches. iters RANSAC rounds sample
// minimal 4-match subsets; inliers are matches whose reprojection error is
// below threshold pixels. The final model is re-estimated by least squares
// over the best inlier set. Returns ok=false when no model with at least
// minInliers support exists — the "no homography found" branch of
// Algorithm 1.
func RANSACHomography(a, b []Keypoint, matches []Match, iters int, threshold float64, minInliers int, rng *rand.Rand) (RANSACResult, bool) {
	if minInliers < 4 {
		minInliers = 4
	}
	if len(matches) < minInliers {
		return RANSACResult{}, false
	}
	if iters <= 0 {
		iters = 200
	}
	if threshold <= 0 {
		threshold = 3
	}
	t2 := threshold * threshold
	bestInliers := []int(nil)
	for it := 0; it < iters; it++ {
		idx := sample4(len(matches), rng)
		src := make([]Point, 4)
		dst := make([]Point, 4)
		for k, mi := range idx {
			m := matches[mi]
			src[k] = Point{float64(a[m.A].X), float64(a[m.A].Y)}
			dst[k] = Point{float64(b[m.B].X), float64(b[m.B].Y)}
		}
		h, err := EstimateHomography(src, dst)
		if err != nil {
			continue
		}
		var inliers []int
		for mi, m := range matches {
			x, y := h.Apply(float64(a[m.A].X), float64(a[m.A].Y))
			dx := x - float64(b[m.B].X)
			dy := y - float64(b[m.B].Y)
			if dx*dx+dy*dy <= t2 {
				inliers = append(inliers, mi)
			}
		}
		if len(inliers) > len(bestInliers) {
			bestInliers = inliers
		}
	}
	if len(bestInliers) < minInliers {
		return RANSACResult{}, false
	}
	// Refine on all inliers.
	src := make([]Point, len(bestInliers))
	dst := make([]Point, len(bestInliers))
	out := make([]Match, len(bestInliers))
	for k, mi := range bestInliers {
		m := matches[mi]
		src[k] = Point{float64(a[m.A].X), float64(a[m.A].Y)}
		dst[k] = Point{float64(b[m.B].X), float64(b[m.B].Y)}
		out[k] = m
	}
	h, err := EstimateHomography(src, dst)
	if err != nil {
		return RANSACResult{}, false
	}
	return RANSACResult{H: h, Inliers: out}, true
}

// sample4 draws 4 distinct indices in [0, n).
func sample4(n int, rng *rand.Rand) [4]int {
	var out [4]int
	for i := 0; i < 4; i++ {
	retry:
		v := rng.Intn(n)
		for j := 0; j < i; j++ {
			if out[j] == v {
				goto retry
			}
		}
		out[i] = v
	}
	return out
}
