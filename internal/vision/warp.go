package vision

import (
	"repro/internal/frame"
)

// Warp resamples src through the homography: the output pixel (x, y) takes
// the value of src at H·(x, y, 1), dehomogenized — the `transform` function
// of Algorithm 1, implemented with bilinear sampling. The returned mask
// marks output pixels whose source coordinates fell inside src; pixels
// outside are left black and masked false.
//
// src must be RGB or Gray.
func Warp(src *frame.Frame, h Homography, outW, outH int) (*frame.Frame, []bool) {
	bpp := 1
	if src.Format == frame.RGB {
		bpp = 3
	}
	out := frame.New(outW, outH, src.Format)
	mask := make([]bool, outW*outH)
	for y := 0; y < outH; y++ {
		for x := 0; x < outW; x++ {
			sx, sy := h.Apply(float64(x), float64(y))
			if sx < 0 || sy < 0 || sx > float64(src.Width-1) || sy > float64(src.Height-1) {
				continue
			}
			mask[y*outW+x] = true
			x0, y0 := int(sx), int(sy)
			fx, fy := sx-float64(x0), sy-float64(y0)
			x1, y1 := x0+1, y0+1
			if x1 >= src.Width {
				x1 = src.Width - 1
			}
			if y1 >= src.Height {
				y1 = src.Height - 1
			}
			for c := 0; c < bpp; c++ {
				p00 := float64(src.Data[(y0*src.Width+x0)*bpp+c])
				p01 := float64(src.Data[(y0*src.Width+x1)*bpp+c])
				p10 := float64(src.Data[(y1*src.Width+x0)*bpp+c])
				p11 := float64(src.Data[(y1*src.Width+x1)*bpp+c])
				top := p00 + (p01-p00)*fx
				bot := p10 + (p11-p10)*fx
				v := top + (bot-top)*fy
				out.Data[(y*outW+x)*bpp+c] = clampU8(int(v + 0.5))
			}
		}
	}
	return out, mask
}

// WarpClamp is Warp with edge-clamped sampling: output pixels whose
// source coordinates fall outside src take the nearest edge value instead
// of black. Scene generators use it to avoid artificial black borders;
// joint compression uses Warp, whose mask distinguishes invalid regions.
func WarpClamp(src *frame.Frame, h Homography, outW, outH int) *frame.Frame {
	bpp := 1
	if src.Format == frame.RGB {
		bpp = 3
	}
	out := frame.New(outW, outH, src.Format)
	for y := 0; y < outH; y++ {
		for x := 0; x < outW; x++ {
			sx, sy := h.Apply(float64(x), float64(y))
			if sx < 0 {
				sx = 0
			}
			if sy < 0 {
				sy = 0
			}
			if sx > float64(src.Width-1) {
				sx = float64(src.Width - 1)
			}
			if sy > float64(src.Height-1) {
				sy = float64(src.Height - 1)
			}
			x0, y0 := int(sx), int(sy)
			fx, fy := sx-float64(x0), sy-float64(y0)
			x1, y1 := x0+1, y0+1
			if x1 >= src.Width {
				x1 = src.Width - 1
			}
			if y1 >= src.Height {
				y1 = src.Height - 1
			}
			for c := 0; c < bpp; c++ {
				p00 := float64(src.Data[(y0*src.Width+x0)*bpp+c])
				p01 := float64(src.Data[(y0*src.Width+x1)*bpp+c])
				p10 := float64(src.Data[(y1*src.Width+x0)*bpp+c])
				p11 := float64(src.Data[(y1*src.Width+x1)*bpp+c])
				top := p00 + (p01-p00)*fx
				bot := p10 + (p11-p10)*fx
				v := top + (bot-top)*fy
				out.Data[(y*outW+x)*bpp+c] = clampU8(int(v + 0.5))
			}
		}
	}
	return out
}

func clampU8(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
