package vision

import (
	"math"

	"repro/internal/frame"
)

// ColorHistogram computes a normalized per-channel color histogram with
// `bins` buckets per channel (3*bins values for RGB, bins for Gray). These
// are the fingerprints VSS clusters to prune the joint-compression pair
// search (Section 5.1.3): fragments with very different histograms are
// unlikely to overlap.
func ColorHistogram(f *frame.Frame, bins int) []float64 {
	if bins <= 0 {
		bins = 8
	}
	src := f
	if f.Format != frame.RGB && f.Format != frame.Gray {
		src = f.Convert(frame.RGB)
	}
	var channels int
	if src.Format == frame.RGB {
		channels = 3
	} else {
		channels = 1
	}
	hist := make([]float64, channels*bins)
	step := 256 / bins
	n := src.Width * src.Height
	for i := 0; i < n; i++ {
		for c := 0; c < channels; c++ {
			v := int(src.Data[i*channels+c]) / step
			if v >= bins {
				v = bins - 1
			}
			hist[c*bins+v]++
		}
	}
	total := float64(n)
	for i := range hist {
		hist[i] /= total
	}
	return hist
}

// HistogramDistance returns the Euclidean distance between two histograms
// of equal length.
func HistogramDistance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Fingerprint produces a compact feature vector robustly characterizing a
// frame: its color histogram concatenated with a coarse luma thumbnail.
// The thumbnail term separates frames that share a palette but differ in
// composition; the histogram term is cheap and dominates clustering.
func Fingerprint(f *frame.Frame, bins, thumb int) []float64 {
	if thumb <= 0 {
		thumb = 4
	}
	hist := ColorHistogram(f, bins)
	small := f.Convert(frame.Gray).Resize(thumb, thumb)
	out := make([]float64, 0, len(hist)+thumb*thumb)
	out = append(out, hist...)
	for _, v := range small.Data {
		out = append(out, float64(v)/255)
	}
	return out
}
