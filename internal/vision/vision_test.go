package vision

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/frame"
)

func TestHomographyIdentity(t *testing.T) {
	h := Identity()
	x, y := h.Apply(12.5, -3)
	if x != 12.5 || y != -3 {
		t.Errorf("identity apply = (%f, %f)", x, y)
	}
	if d := h.DistanceFromIdentity(); d != 0 {
		t.Errorf("identity distance = %f", d)
	}
}

func TestHomographyTranslationAndInverse(t *testing.T) {
	h := Homography{1, 0, 10, 0, 1, -5, 0, 0, 1}
	x, y := h.Apply(1, 2)
	if x != 11 || y != -3 {
		t.Errorf("translate = (%f, %f)", x, y)
	}
	inv, err := h.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	x, y = inv.Apply(11, -3)
	if math.Abs(x-1) > 1e-9 || math.Abs(y-2) > 1e-9 {
		t.Errorf("inverse = (%f, %f)", x, y)
	}
}

func TestHomographyMulComposition(t *testing.T) {
	a := Homography{1, 0, 1, 0, 1, 2, 0, 0, 1} // translate (1,2)
	b := Homography{2, 0, 0, 0, 2, 0, 0, 0, 1} // scale 2
	ab := a.Mul(b)                             // scale then translate
	x, y := ab.Apply(3, 4)
	if x != 7 || y != 10 {
		t.Errorf("composition = (%f, %f), want (7, 10)", x, y)
	}
}

func TestHomographyInverseSingular(t *testing.T) {
	var h Homography // all zeros
	if _, err := h.Inverse(); err == nil {
		t.Error("expected singular error")
	}
}

func TestHomographyRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		h := Homography{
			1 + rng.Float64()*0.2, rng.Float64() * 0.1, rng.Float64() * 20,
			rng.Float64() * 0.1, 1 + rng.Float64()*0.2, rng.Float64() * 20,
			rng.Float64() * 1e-4, rng.Float64() * 1e-4, 1,
		}
		inv, err := h.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		x0, y0 := rng.Float64()*100, rng.Float64()*100
		x1, y1 := h.Apply(x0, y0)
		x2, y2 := inv.Apply(x1, y1)
		if math.Abs(x2-x0) > 1e-6 || math.Abs(y2-y0) > 1e-6 {
			t.Errorf("round trip (%f,%f) -> (%f,%f)", x0, y0, x2, y2)
		}
	}
}

func TestEstimateHomographyExact(t *testing.T) {
	want := Homography{1.1, 0.02, 5, -0.01, 0.95, -3, 1e-4, -2e-4, 1}
	src := []Point{{0, 0}, {100, 0}, {0, 80}, {100, 80}, {50, 40}}
	dst := make([]Point, len(src))
	for i, p := range src {
		x, y := want.Apply(p.X, p.Y)
		dst[i] = Point{x, y}
	}
	got, err := EstimateHomography(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range src {
		gx, gy := got.Apply(p.X, p.Y)
		if math.Abs(gx-dst[i].X) > 1e-6 || math.Abs(gy-dst[i].Y) > 1e-6 {
			t.Errorf("point %d: (%f, %f) want (%f, %f)", i, gx, gy, dst[i].X, dst[i].Y)
		}
	}
}

func TestEstimateHomographyDegenerate(t *testing.T) {
	if _, err := EstimateHomography([]Point{{0, 0}}, []Point{{0, 0}}); err == nil {
		t.Error("too few points should error")
	}
	// Collinear points are degenerate.
	src := []Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	if _, err := EstimateHomography(src, src); err == nil {
		t.Error("collinear points should error")
	}
}

func TestDistanceFromIdentityScaleInvariant(t *testing.T) {
	h := Identity()
	scaled := h
	for i := range scaled {
		scaled[i] *= 5
	}
	if d := scaled.DistanceFromIdentity(); d > 1e-9 {
		t.Errorf("scaled identity should normalize, distance = %f", d)
	}
}

// texturedFrame produces a frame with a random blocky texture that gives
// strong, matchable corners.
func texturedFrame(rng *rand.Rand, w, h int) *frame.Frame {
	f := frame.New(w, h, frame.Gray)
	for by := 0; by < h; by += 8 {
		for bx := 0; bx < w; bx += 8 {
			v := byte(rng.Intn(256))
			for y := by; y < by+8 && y < h; y++ {
				for x := bx; x < bx+8 && x < w; x++ {
					f.Data[y*w+x] = v
				}
			}
		}
	}
	return f
}

func TestDetectKeypointsFindsCorners(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := texturedFrame(rng, 96, 96)
	kps := DetectKeypoints(f, 50)
	if len(kps) < 10 {
		t.Fatalf("found only %d keypoints on textured frame", len(kps))
	}
	for _, kp := range kps {
		if len(kp.Desc) != DescSize*DescSize {
			t.Fatalf("descriptor length %d", len(kp.Desc))
		}
	}
}

func TestDetectKeypointsFlatFrame(t *testing.T) {
	f := frame.New(64, 64, frame.Gray)
	if kps := DetectKeypoints(f, 50); len(kps) != 0 {
		t.Errorf("flat frame produced %d keypoints", len(kps))
	}
}

func TestDetectKeypointsTinyFrame(t *testing.T) {
	f := frame.New(8, 8, frame.Gray)
	if kps := DetectKeypoints(f, 50); kps != nil {
		t.Errorf("tiny frame should yield nil, got %d", len(kps))
	}
}

func TestDescriptorBrightnessInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := texturedFrame(rng, 64, 64)
	brighter := f.Clone()
	for i := range brighter.Data {
		v := int(brighter.Data[i]) + 40
		if v > 255 {
			v = 255
		}
		brighter.Data[i] = byte(v)
	}
	a := DetectKeypoints(f, 20)
	b := DetectKeypoints(brighter, 20)
	if len(a) == 0 || len(b) == 0 {
		t.Skip("no keypoints detected")
	}
	matches := MatchKeypoints(a, b, DefaultLoweRatio)
	if len(matches) < len(a)/3 {
		t.Errorf("brightness shift broke matching: %d matches of %d keypoints", len(matches), len(a))
	}
}

func TestMatchKeypointsSelfIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := texturedFrame(rng, 96, 96)
	kps := DetectKeypoints(f, 30)
	if len(kps) < 5 {
		t.Skip("not enough keypoints")
	}
	matches := MatchKeypoints(kps, kps, 0.99)
	correct := 0
	for _, m := range matches {
		if m.A == m.B {
			correct++
		}
	}
	if correct < len(kps)*2/3 {
		t.Errorf("self matching found %d/%d identity matches", correct, len(kps))
	}
}

func TestMatchClaimsUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	f := texturedFrame(rng, 96, 96)
	kps := DetectKeypoints(f, 30)
	matches := MatchKeypoints(kps, kps, 0.99)
	seen := map[int]bool{}
	for _, m := range matches {
		if seen[m.B] {
			t.Fatalf("target keypoint %d claimed twice", m.B)
		}
		seen[m.B] = true
	}
}

func TestRANSACRecoversTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	// Build synthetic keypoints related by a pure translation, plus
	// outliers.
	var a, b []Keypoint
	var matches []Match
	desc := func(seed int64) []float32 {
		r := rand.New(rand.NewSource(seed))
		d := make([]float32, DescSize*DescSize)
		for i := range d {
			d[i] = r.Float32()
		}
		return d
	}
	for i := 0; i < 30; i++ {
		x, y := rng.Intn(200), rng.Intn(200)
		d := desc(int64(i))
		a = append(a, Keypoint{X: x, Y: y, Desc: d})
		if i < 22 {
			b = append(b, Keypoint{X: x + 15, Y: y - 7, Desc: d}) // inlier
		} else {
			b = append(b, Keypoint{X: rng.Intn(200), Y: rng.Intn(200), Desc: d}) // outlier
		}
		matches = append(matches, Match{A: i, B: i})
	}
	res, ok := RANSACHomography(a, b, matches, 300, 2, 10, rng)
	if !ok {
		t.Fatal("RANSAC failed")
	}
	x, y := res.H.Apply(100, 100)
	if math.Abs(x-115) > 1 || math.Abs(y-93) > 1 {
		t.Errorf("recovered transform maps (100,100) -> (%f, %f), want (115, 93)", x, y)
	}
	if len(res.Inliers) < 20 {
		t.Errorf("only %d inliers", len(res.Inliers))
	}
}

func TestRANSACRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	var a, b []Keypoint
	var matches []Match
	for i := 0; i < 20; i++ {
		a = append(a, Keypoint{X: rng.Intn(100), Y: rng.Intn(100)})
		b = append(b, Keypoint{X: rng.Intn(100), Y: rng.Intn(100)})
		matches = append(matches, Match{A: i, B: i})
	}
	if _, ok := RANSACHomography(a, b, matches, 100, 1.0, 15, rng); ok {
		t.Error("pure noise should not yield a 15-inlier model")
	}
	if _, ok := RANSACHomography(a, b, matches[:3], 100, 1.0, 4, rng); ok {
		t.Error("3 matches cannot support a homography")
	}
}

func TestWarpIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	f := texturedFrame(rng, 32, 32)
	out, mask := Warp(f, Identity(), 32, 32)
	for i := range f.Data {
		if out.Data[i] != f.Data[i] {
			t.Fatalf("identity warp changed pixel %d", i)
		}
		if !mask[i] {
			t.Fatalf("identity warp masked pixel %d", i)
		}
	}
}

func TestWarpTranslationMask(t *testing.T) {
	f := frame.New(16, 16, frame.Gray)
	for i := range f.Data {
		f.Data[i] = 200
	}
	// Output (x, y) samples f at (x+8, y): the right half has no source.
	h := Homography{1, 0, 8, 0, 1, 0, 0, 0, 1}
	out, mask := Warp(f, h, 16, 16)
	if !mask[0] || out.Data[0] != 200 {
		t.Error("left half should be valid")
	}
	if mask[15] {
		t.Error("right edge should be masked out")
	}
}

func TestWarpRGB(t *testing.T) {
	f := frame.New(16, 16, frame.RGB)
	f.SetRGB(5, 5, 10, 20, 30)
	h := Homography{1, 0, 5, 0, 1, 5, 0, 0, 1}
	out, _ := Warp(f, h, 8, 8)
	r, g, b := out.AtRGB(0, 0)
	if r != 10 || g != 20 || b != 30 {
		t.Errorf("warped pixel (%d,%d,%d)", r, g, b)
	}
}

func TestWarpInverseRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	f := texturedFrame(rng, 64, 64)
	h := Homography{1, 0, 5, 0, 1, 3, 0, 0, 1}
	inv, _ := h.Inverse()
	warped, _ := Warp(f, h, 64, 64)
	back, mask := Warp(warped, inv, 64, 64)
	// Interior pixels covered in both directions must match.
	var diff, n int
	for y := 8; y < 56; y++ {
		for x := 8; x < 56; x++ {
			i := y*64 + x
			if !mask[i] {
				continue
			}
			n++
			d := int(back.Data[i]) - int(f.Data[i])
			if d < 0 {
				d = -d
			}
			diff += d
		}
	}
	if n == 0 {
		t.Fatal("no valid pixels")
	}
	if avg := float64(diff) / float64(n); avg > 2 {
		t.Errorf("mean abs diff %f after warp round trip", avg)
	}
}

func TestColorHistogramNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	f := frame.New(32, 32, frame.RGB)
	rng.Read(f.Data)
	hist := ColorHistogram(f, 8)
	if len(hist) != 24 {
		t.Fatalf("rgb histogram length %d", len(hist))
	}
	var sum float64
	for _, v := range hist {
		sum += v
	}
	if math.Abs(sum-3) > 1e-9 { // one unit mass per channel
		t.Errorf("histogram mass %f, want 3", sum)
	}
}

func TestHistogramDistance(t *testing.T) {
	f := frame.New(16, 16, frame.RGB)
	g := f.Clone()
	for i := range g.Data {
		g.Data[i] = 255
	}
	ha, hb := ColorHistogram(f, 8), ColorHistogram(g, 8)
	if HistogramDistance(ha, ha) != 0 {
		t.Error("distance to self should be 0")
	}
	if HistogramDistance(ha, hb) < 1 {
		t.Error("black vs white should be far apart")
	}
}

func TestFingerprintShape(t *testing.T) {
	f := frame.New(32, 32, frame.RGB)
	fp := Fingerprint(f, 8, 4)
	if len(fp) != 24+16 {
		t.Errorf("fingerprint length %d, want 40", len(fp))
	}
	for _, v := range fp {
		if v < 0 || v > 1.0001 {
			t.Errorf("fingerprint value %f out of [0,1]", v)
		}
	}
}

func TestColorHistogramGray(t *testing.T) {
	f := frame.New(16, 16, frame.Gray)
	hist := ColorHistogram(f, 4)
	if len(hist) != 4 {
		t.Fatalf("gray histogram length %d", len(hist))
	}
	if hist[0] != 1 {
		t.Errorf("all-black gray frame: bin0 = %f", hist[0])
	}
}
