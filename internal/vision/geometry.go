// Package vision implements the computer-vision substrate VSS's joint
// compression optimization depends on (Section 5.1 of the paper): keypoint
// detection and description, Lowe-ratio feature matching, robust homography
// estimation (normalized DLT inside RANSAC), perspective warping, and the
// color-histogram fingerprints used for candidate clustering.
//
// The paper's prototype uses OpenCV (SIFT features per Lowe [31, 32]).
// This stdlib-only reproduction substitutes Harris corners with normalized
// patch descriptors — a simpler pipeline with the same structure and the
// same failure modes (bad homographies are detected downstream by the
// quality model and joint compression is aborted).
package vision

import (
	"fmt"
	"math"
)

// Point is a 2D image coordinate.
type Point struct {
	X, Y float64
}

// Homography is a row-major 3x3 projective transform. Applying H to a
// point (x, y) yields homogeneous coordinates that are dehomogenized by the
// third component, exactly the `transform` function of Algorithm 1.
type Homography [9]float64

// Identity returns the identity transform.
func Identity() Homography {
	return Homography{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// Apply maps the point (x, y) through the homography.
func (h Homography) Apply(x, y float64) (float64, float64) {
	w := h[6]*x + h[7]*y + h[8]
	if w == 0 {
		return math.Inf(1), math.Inf(1)
	}
	return (h[0]*x + h[1]*y + h[2]) / w, (h[3]*x + h[4]*y + h[5]) / w
}

// Mul returns the composition h∘o (apply o first, then h).
func (h Homography) Mul(o Homography) Homography {
	var out Homography
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += h[r*3+k] * o[k*3+c]
			}
			out[r*3+c] = s
		}
	}
	return out
}

// Inverse returns the inverse transform. Projective transforms used by VSS
// are invertible; a singular matrix yields an error, which joint
// compression treats as "no homography found".
func (h Homography) Inverse() (Homography, error) {
	a, b, c := h[0], h[1], h[2]
	d, e, f := h[3], h[4], h[5]
	g, i, j := h[6], h[7], h[8]
	det := a*(e*j-f*i) - b*(d*j-f*g) + c*(d*i-e*g)
	if math.Abs(det) < 1e-12 {
		return Homography{}, fmt.Errorf("vision: singular homography")
	}
	inv := Homography{
		e*j - f*i, c*i - b*j, b*f - c*e,
		f*g - d*j, a*j - c*g, c*d - a*f,
		d*i - e*g, b*g - a*i, a*e - b*d,
	}
	for k := range inv {
		inv[k] /= det
	}
	return inv, nil
}

// Normalize scales the homography so h[8] = 1 when possible, giving a
// canonical form for comparisons such as the duplicate-frame check.
func (h Homography) Normalize() Homography {
	if h[8] == 0 || h[8] == 1 {
		return h
	}
	var out Homography
	for i := range h {
		out[i] = h[i] / h[8]
	}
	return out
}

// DistanceFromIdentity returns ||H - I||_2 (Frobenius), the quantity
// Algorithm 1 compares against ε to detect duplicate frames.
func (h Homography) DistanceFromIdentity() float64 {
	n := h.Normalize()
	id := Identity()
	var s float64
	for i := range n {
		d := n[i] - id[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// solveLinear solves the n x n system A x = b in place using Gaussian
// elimination with partial pivoting. A is row-major.
func solveLinear(a []float64, b []float64, n int) ([]float64, error) {
	for col := 0; col < n; col++ {
		// Pivot selection.
		pivot := col
		best := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("vision: singular linear system")
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				a[col*n+c], a[pivot*n+c] = a[pivot*n+c], a[col*n+c]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		// Eliminate below.
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			factor := a[r*n+col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r*n+c] -= factor * a[col*n+c]
			}
			b[r] -= factor * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r*n+c] * x[c]
		}
		x[r] = s / a[r*n+r]
	}
	return x, nil
}

// EstimateHomography computes the homography mapping src[i] -> dst[i] by
// normalized direct linear transform. At least 4 correspondences are
// required; with more, the least-squares solution is returned (via the
// normal equations of the 2n x 8 DLT system with h33 fixed to 1).
func EstimateHomography(src, dst []Point) (Homography, error) {
	if len(src) != len(dst) || len(src) < 4 {
		return Homography{}, fmt.Errorf("vision: need >= 4 correspondences, got %d/%d", len(src), len(dst))
	}
	// Hartley normalization: translate centroids to origin, scale mean
	// distance to sqrt(2). Dramatically improves conditioning.
	tSrc, nSrc := normalizePoints(src)
	tDst, nDst := normalizePoints(dst)

	// Build normal equations AtA h = Atb for the 8 unknowns.
	ata := make([]float64, 64)
	atb := make([]float64, 8)
	var row [8]float64
	accumulate := func(row []float64, rhs float64) {
		for i := 0; i < 8; i++ {
			if row[i] == 0 {
				continue
			}
			for j := 0; j < 8; j++ {
				ata[i*8+j] += row[i] * row[j]
			}
			atb[i] += row[i] * rhs
		}
	}
	for k := range nSrc {
		x, y := nSrc[k].X, nSrc[k].Y
		u, v := nDst[k].X, nDst[k].Y
		// u = (h0 x + h1 y + h2) / (h6 x + h7 y + 1)
		row = [8]float64{x, y, 1, 0, 0, 0, -u * x, -u * y}
		accumulate(row[:], u)
		row = [8]float64{0, 0, 0, x, y, 1, -v * x, -v * y}
		accumulate(row[:], v)
	}
	h8, err := solveLinear(ata, atb, 8)
	if err != nil {
		return Homography{}, err
	}
	hn := Homography{h8[0], h8[1], h8[2], h8[3], h8[4], h8[5], h8[6], h8[7], 1}

	// Denormalize: H = tDst^-1 * Hn * tSrc.
	tDstInv, err := tDst.Inverse()
	if err != nil {
		return Homography{}, err
	}
	return tDstInv.Mul(hn).Mul(tSrc).Normalize(), nil
}

// normalizePoints returns the similarity transform T and the transformed
// points such that the centroid is at the origin with mean distance √2.
func normalizePoints(pts []Point) (Homography, []Point) {
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	cx /= float64(len(pts))
	cy /= float64(len(pts))
	var meanDist float64
	for _, p := range pts {
		meanDist += math.Hypot(p.X-cx, p.Y-cy)
	}
	meanDist /= float64(len(pts))
	s := math.Sqrt2
	if meanDist > 1e-12 {
		s = math.Sqrt2 / meanDist
	}
	t := Homography{s, 0, -s * cx, 0, s, -s * cy, 0, 0, 1}
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{s * (p.X - cx), s * (p.Y - cy)}
	}
	return t, out
}
