// Package smt implements the small constraint optimizer VSS uses to select
// materialized-view fragments for read execution (Section 3.1 of the
// paper). The paper embeds fragment selection into Z3; this stdlib-only
// reproduction provides an equivalent weighted boolean optimizer:
// DPLL-style branch-and-bound with forced-assignment propagation and an
// admissible lower bound, returning certified-optimal solutions for the
// same encoding (exactly-one choice groups, implication and exclusion
// constraints, linear costs plus non-negative pairwise interaction costs
// that model look-back dependencies between adjacent choices).
//
// The solver is deliberately general — the read planner (internal/core) is
// just one client; tests encode unrelated problems against it.
package smt

import (
	"errors"
	"fmt"
	"math"
)

// Var identifies a boolean decision variable.
type Var int

// ErrNodeBudget is returned when optimization exceeds the node budget;
// callers fall back to a heuristic (the paper's greedy baseline).
var ErrNodeBudget = errors.New("smt: node budget exhausted")

// ErrUnsat is returned when the constraints admit no assignment.
var ErrUnsat = errors.New("smt: unsatisfiable")

// Solver accumulates variables, constraints, and objective terms, then
// minimizes. Every variable must belong to exactly one ExactlyOne group;
// this matches the planner's encoding (one fragment choice per time slice)
// and keeps the search space well-defined.
type Solver struct {
	names   []string
	groups  [][]Var   // exactly-one groups, branched in order
	groupOf []int     // var -> group index (-1 = ungrouped)
	unary   []float64 // selection cost per var
	pair    map[[2]Var]float64
	implies [][]Var // v true -> all of implies[v] true
	forbids [][]Var // v true -> all of forbids[v] false

	// NodeBudget bounds branch-and-bound nodes; 0 means DefaultNodeBudget.
	NodeBudget int
}

// DefaultNodeBudget bounds the search for pathological inputs; read plans
// are small (tens of groups) and never approach it.
const DefaultNodeBudget = 2_000_000

// New returns an empty solver.
func New() *Solver {
	return &Solver{pair: make(map[[2]Var]float64)}
}

// Bool introduces a fresh variable. The name is used in diagnostics only.
func (s *Solver) Bool(name string) Var {
	v := Var(len(s.names))
	s.names = append(s.names, name)
	s.groupOf = append(s.groupOf, -1)
	s.unary = append(s.unary, 0)
	s.implies = append(s.implies, nil)
	s.forbids = append(s.forbids, nil)
	return v
}

// NumVars reports the number of declared variables.
func (s *Solver) NumVars() int { return len(s.names) }

// ExactlyOne constrains exactly one of vars to be true. Groups are
// branched in the order they are declared; clients should declare them in
// the order that makes pairwise costs apply to already-decided variables
// (temporal order, for the read planner).
func (s *Solver) ExactlyOne(vars ...Var) error {
	if len(vars) == 0 {
		return errors.New("smt: empty exactly-one group")
	}
	g := len(s.groups)
	for _, v := range vars {
		if int(v) >= len(s.groupOf) {
			return fmt.Errorf("smt: unknown variable %d", v)
		}
		if s.groupOf[v] != -1 {
			return fmt.Errorf("smt: variable %s already grouped", s.names[v])
		}
		s.groupOf[v] = g
	}
	s.groups = append(s.groups, append([]Var(nil), vars...))
	return nil
}

// Cost adds c to the objective when v is selected.
func (s *Solver) Cost(v Var, c float64) { s.unary[v] += c }

// PairCost adds c to the objective when both a and b are selected. c must
// be non-negative: the lower bound assumes interaction costs only add.
func (s *Solver) PairCost(a, b Var, c float64) error {
	if c < 0 {
		return fmt.Errorf("smt: negative pair cost %f", c)
	}
	if a == b {
		return fmt.Errorf("smt: pair cost requires distinct variables")
	}
	if a > b {
		a, b = b, a
	}
	s.pair[[2]Var{a, b}] += c
	return nil
}

// Implies requires b to be true whenever a is true.
func (s *Solver) Implies(a, b Var) { s.implies[a] = append(s.implies[a], b) }

// Forbid disallows a and b from both being true.
func (s *Solver) Forbid(a, b Var) {
	s.forbids[a] = append(s.forbids[a], b)
	s.forbids[b] = append(s.forbids[b], a)
}

// Solution is an optimal assignment.
type Solution struct {
	Cost     float64
	Selected []Var // the true variables, one per group, in group order
	Nodes    int   // branch-and-bound nodes explored (diagnostics)
}

// IsSelected reports whether v is true in the solution.
func (sol *Solution) IsSelected(v Var) bool {
	for _, u := range sol.Selected {
		if u == v {
			return true
		}
	}
	return false
}

// Minimize finds the minimum-cost assignment satisfying all constraints.
func (s *Solver) Minimize() (*Solution, error) {
	for v, g := range s.groupOf {
		if g == -1 {
			return nil, fmt.Errorf("smt: variable %s belongs to no exactly-one group", s.names[v])
		}
	}
	if len(s.groups) == 0 {
		return &Solution{}, nil
	}
	budget := s.NodeBudget
	if budget <= 0 {
		budget = DefaultNodeBudget
	}

	// Precompute per-group minimum unary cost for the admissible bound:
	// suffixMin[i] = sum over groups i.. of min unary cost in the group.
	suffixMin := make([]float64, len(s.groups)+1)
	for i := len(s.groups) - 1; i >= 0; i-- {
		mn := math.Inf(1)
		for _, v := range s.groups[i] {
			if s.unary[v] < mn {
				mn = s.unary[v]
			}
		}
		suffixMin[i] = suffixMin[i+1] + mn
	}

	// Adjacency view of pairwise costs for O(degree) marginal-cost updates.
	pairAdj := make([][]pairTerm, len(s.names))
	for key, c := range s.pair {
		pairAdj[key[0]] = append(pairAdj[key[0]], pairTerm{key[1], c})
		pairAdj[key[1]] = append(pairAdj[key[1]], pairTerm{key[0], c})
	}

	st := &searchState{
		s:        s,
		budget:   budget,
		suffix:   suffixMin,
		pairAdj:  pairAdj,
		bestCost: math.Inf(1),
		value:    make([]int8, len(s.names)), // 0 unknown, 1 true, -1 false
		chosen:   make([]Var, len(s.groups)),
	}
	st.branch(0, 0)
	if st.err != nil {
		return nil, st.err
	}
	if math.IsInf(st.bestCost, 1) {
		return nil, ErrUnsat
	}
	return &Solution{Cost: st.bestCost, Selected: st.best, Nodes: st.nodes}, nil
}

type pairTerm struct {
	other Var
	c     float64
}

type searchState struct {
	s        *Solver
	budget   int
	nodes    int
	suffix   []float64
	pairAdj  [][]pairTerm
	bestCost float64
	best     []Var
	value    []int8
	chosen   []Var
	err      error
}

// branch explores group g with accumulated cost acc.
func (st *searchState) branch(g int, acc float64) {
	if st.err != nil {
		return
	}
	if acc+st.suffix[g] >= st.bestCost {
		return // admissible bound: remaining groups cost at least suffix[g]
	}
	if g == len(st.s.groups) {
		st.bestCost = acc
		st.best = append(st.best[:0:0], st.chosen...)
		return
	}
	for _, v := range st.s.groups[g] {
		st.nodes++
		if st.nodes > st.budget {
			st.err = ErrNodeBudget
			return
		}
		if st.value[v] == -1 {
			continue // excluded by an earlier choice
		}
		// A forced-true variable elsewhere in this group means v (which is
		// not it) cannot be chosen: exactly-one would be violated.
		if forced := st.forcedInGroup(g); forced >= 0 && forced != int(v) {
			continue
		}
		trail, cost, ok := st.assign(v)
		if ok {
			st.chosen[g] = v
			st.branch(g+1, acc+cost)
		}
		st.undo(trail)
		if st.err != nil {
			return
		}
	}
}

// forcedInGroup returns the variable already forced true in group g, or -1.
func (st *searchState) forcedInGroup(g int) int {
	for _, v := range st.s.groups[g] {
		if st.value[v] == 1 {
			return int(v)
		}
	}
	return -1
}

// assign sets v true, propagates implications and exclusions, and returns
// the trail of touched variables, the marginal cost (unary + pairwise with
// already-true variables), and whether the assignment is consistent.
func (st *searchState) assign(v Var) ([]Var, float64, bool) {
	var trail []Var
	var cost float64
	var queue []Var
	setTrue := func(u Var) bool {
		switch st.value[u] {
		case 1:
			return true
		case -1:
			return false
		}
		// Charge pairwise terms against variables that became true before
		// u; each pair is charged exactly once, when its second endpoint
		// turns true.
		for _, pt := range st.pairAdj[u] {
			if st.value[pt.other] == 1 {
				cost += pt.c
			}
		}
		st.value[u] = 1
		trail = append(trail, u)
		cost += st.s.unary[u]
		queue = append(queue, u)
		return true
	}
	ok := setTrue(v)
	for ok && len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range st.s.implies[u] {
			if !setTrue(w) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		for _, w := range st.s.forbids[u] {
			if st.value[w] == 1 {
				ok = false
				break
			}
			if st.value[w] == 0 {
				st.value[w] = -1
				trail = append(trail, w)
			}
		}
	}
	return trail, cost, ok
}

func (st *searchState) undo(trail []Var) {
	for _, v := range trail {
		st.value[v] = 0
	}
}
