package smt

import (
	"math"
	"math/rand"
	"testing"
)

func TestSingleGroupPicksCheapest(t *testing.T) {
	s := New()
	a, b, c := s.Bool("a"), s.Bool("b"), s.Bool("c")
	if err := s.ExactlyOne(a, b, c); err != nil {
		t.Fatal(err)
	}
	s.Cost(a, 5)
	s.Cost(b, 2)
	s.Cost(c, 9)
	sol, err := s.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 2 || !sol.IsSelected(b) {
		t.Errorf("cost %f selected %v", sol.Cost, sol.Selected)
	}
}

func TestPairCostChangesOptimum(t *testing.T) {
	// Two groups; unary optimum (a1, b1) carries a large interaction cost,
	// so the solver must switch one choice.
	s := New()
	a1, a2 := s.Bool("a1"), s.Bool("a2")
	b1, b2 := s.Bool("b1"), s.Bool("b2")
	s.ExactlyOne(a1, a2)
	s.ExactlyOne(b1, b2)
	s.Cost(a1, 1)
	s.Cost(a2, 2)
	s.Cost(b1, 1)
	s.Cost(b2, 2)
	if err := s.PairCost(a1, b1, 10); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 3 {
		t.Errorf("cost %f, want 3 (avoid the interaction)", sol.Cost)
	}
	if sol.IsSelected(a1) && sol.IsSelected(b1) {
		t.Error("selected the penalized pair")
	}
}

func TestPairCostChargedOnce(t *testing.T) {
	s := New()
	a := s.Bool("a")
	b := s.Bool("b")
	s.ExactlyOne(a)
	s.ExactlyOne(b)
	s.PairCost(a, b, 7)
	s.Cost(a, 1)
	s.Cost(b, 2)
	sol, err := s.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 10 {
		t.Errorf("cost %f, want 1+2+7=10", sol.Cost)
	}
}

func TestImpliesPropagates(t *testing.T) {
	// Choosing a1 forces b1 even though b2 is cheaper.
	s := New()
	a1, a2 := s.Bool("a1"), s.Bool("a2")
	b1, b2 := s.Bool("b1"), s.Bool("b2")
	s.ExactlyOne(a1, a2)
	s.ExactlyOne(b1, b2)
	s.Cost(a1, 0)
	s.Cost(a2, 100)
	s.Cost(b1, 50)
	s.Cost(b2, 0)
	s.Implies(a1, b1)
	sol, err := s.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	// Options: a1 forces b1 => 0+50 = 50; or a2 with b2 => 100. Optimum 50.
	if sol.Cost != 50 || !sol.IsSelected(b1) {
		t.Errorf("cost %f selected %v", sol.Cost, sol.Selected)
	}
}

func TestImplicationChainWithPairCosts(t *testing.T) {
	// Implication fires transitively and pair costs charged once even when
	// both endpoints become true in the same propagation batch.
	s := New()
	a := s.Bool("a")
	b := s.Bool("b")
	c := s.Bool("c")
	s.ExactlyOne(a)
	s.ExactlyOne(b)
	s.ExactlyOne(c)
	s.Implies(a, b)
	s.Implies(a, c)
	s.PairCost(b, c, 5)
	s.Cost(a, 1)
	sol, err := s.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 6 {
		t.Errorf("cost %f, want 1+5", sol.Cost)
	}
}

func TestForbidExcludes(t *testing.T) {
	s := New()
	a1, a2 := s.Bool("a1"), s.Bool("a2")
	b1, b2 := s.Bool("b1"), s.Bool("b2")
	s.ExactlyOne(a1, a2)
	s.ExactlyOne(b1, b2)
	s.Cost(a1, 0)
	s.Cost(a2, 10)
	s.Cost(b1, 0)
	s.Cost(b2, 10)
	s.Forbid(a1, b1)
	sol, err := s.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 10 {
		t.Errorf("cost %f, want 10", sol.Cost)
	}
	if sol.IsSelected(a1) && sol.IsSelected(b1) {
		t.Error("forbidden pair selected")
	}
}

func TestUnsat(t *testing.T) {
	s := New()
	a := s.Bool("a")
	b := s.Bool("b")
	s.ExactlyOne(a)
	s.ExactlyOne(b)
	s.Forbid(a, b)
	if _, err := s.Minimize(); err != ErrUnsat {
		t.Errorf("err = %v, want ErrUnsat", err)
	}
}

func TestUngroupedVariableRejected(t *testing.T) {
	s := New()
	s.Bool("floating")
	if _, err := s.Minimize(); err == nil {
		t.Error("ungrouped variable should be rejected")
	}
}

func TestDoubleGroupingRejected(t *testing.T) {
	s := New()
	a := s.Bool("a")
	if err := s.ExactlyOne(a); err != nil {
		t.Fatal(err)
	}
	if err := s.ExactlyOne(a); err == nil {
		t.Error("double grouping should error")
	}
	if err := s.ExactlyOne(); err == nil {
		t.Error("empty group should error")
	}
}

func TestNegativePairCostRejected(t *testing.T) {
	s := New()
	a, b := s.Bool("a"), s.Bool("b")
	if err := s.PairCost(a, b, -1); err == nil {
		t.Error("negative pair cost should error")
	}
	if err := s.PairCost(a, a, 1); err == nil {
		t.Error("self pair cost should error")
	}
}

func TestEmptySolver(t *testing.T) {
	s := New()
	sol, err := s.Minimize()
	if err != nil || sol.Cost != 0 {
		t.Errorf("empty solver: %v, cost %f", err, sol.Cost)
	}
}

func TestNodeBudgetExhaustion(t *testing.T) {
	s := New()
	// 12 groups x 4 vars with random interactions; budget of 3 nodes must
	// trip immediately.
	rng := rand.New(rand.NewSource(41))
	var prev []Var
	for g := 0; g < 12; g++ {
		var vars []Var
		for k := 0; k < 4; k++ {
			v := s.Bool("v")
			s.Cost(v, rng.Float64())
			vars = append(vars, v)
		}
		s.ExactlyOne(vars...)
		for _, p := range prev {
			for _, v := range vars {
				s.PairCost(p, v, rng.Float64())
			}
		}
		prev = vars
	}
	s.NodeBudget = 3
	if _, err := s.Minimize(); err != ErrNodeBudget {
		t.Errorf("err = %v, want ErrNodeBudget", err)
	}
}

// bruteForce enumerates every combination for cross-checking.
func bruteForce(groups [][]Var, unary map[Var]float64, pair map[[2]Var]float64) float64 {
	best := math.Inf(1)
	var rec func(g int, sel []Var, acc float64)
	rec = func(g int, sel []Var, acc float64) {
		if g == len(groups) {
			if acc < best {
				best = acc
			}
			return
		}
		for _, v := range groups[g] {
			c := unary[v]
			for _, u := range sel {
				k := [2]Var{u, v}
				if u > v {
					k = [2]Var{v, u}
				}
				c += pair[k]
			}
			rec(g+1, append(sel, v), acc+c)
		}
	}
	rec(0, nil, 0)
	return best
}

func TestMatchesBruteForceRandom(t *testing.T) {
	// Property: on random chain-structured instances (the planner's
	// shape), the solver equals exhaustive enumeration.
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		s := New()
		nGroups := 2 + rng.Intn(4)
		var groups [][]Var
		unary := map[Var]float64{}
		pair := map[[2]Var]float64{}
		var prev []Var
		for g := 0; g < nGroups; g++ {
			var vars []Var
			n := 1 + rng.Intn(3)
			for k := 0; k < n; k++ {
				v := s.Bool("v")
				c := math.Round(rng.Float64()*20) / 2
				s.Cost(v, c)
				unary[v] = c
				vars = append(vars, v)
			}
			s.ExactlyOne(vars...)
			groups = append(groups, vars)
			for _, p := range prev {
				for _, v := range vars {
					if rng.Intn(2) == 0 {
						c := math.Round(rng.Float64()*10) / 2
						s.PairCost(p, v, c)
						k := [2]Var{p, v}
						if p > v {
							k = [2]Var{v, p}
						}
						pair[k] += c
					}
				}
			}
			prev = vars
		}
		want := bruteForce(groups, unary, pair)
		sol, err := s.Minimize()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(sol.Cost-want) > 1e-9 {
			t.Errorf("trial %d: solver %f, brute force %f", trial, sol.Cost, want)
		}
	}
}

func TestSolutionOnePerGroup(t *testing.T) {
	s := New()
	for g := 0; g < 5; g++ {
		a, b := s.Bool("a"), s.Bool("b")
		s.ExactlyOne(a, b)
		s.Cost(a, float64(g))
		s.Cost(b, float64(5-g))
	}
	sol, err := s.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Selected) != 5 {
		t.Errorf("selected %d vars, want 5", len(sol.Selected))
	}
	if sol.Nodes <= 0 {
		t.Error("node count not reported")
	}
}
