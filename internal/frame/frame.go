// Package frame provides the raw video frame representation used throughout
// VSS: pixel formats, plane layout, format conversion, resampling, and
// region-of-interest cropping.
//
// A Frame is a single decoded picture. VSS stores frames on disk inside GOP
// containers (see internal/codec and internal/storage); this package only
// concerns itself with in-memory pixel data.
package frame

import (
	"fmt"
)

// PixelFormat identifies the physical layout of pixel data within a frame.
// These correspond to the physical parameter l in the VSS API (Figure 1 of
// the paper): e.g. yuv420, yuv422.
type PixelFormat uint8

const (
	// RGB is 8-bit interleaved red/green/blue, 3 bytes per pixel.
	RGB PixelFormat = iota
	// YUV420 is planar 8-bit Y'CbCr with 2x2 chroma subsampling
	// (1.5 bytes per pixel). Width and height must be even.
	YUV420
	// YUV422 is planar 8-bit Y'CbCr with 2x1 chroma subsampling
	// (2 bytes per pixel). Width must be even.
	YUV422
	// Gray is a single 8-bit luma plane (1 byte per pixel).
	Gray
)

// String returns the conventional short name for the format.
func (f PixelFormat) String() string {
	switch f {
	case RGB:
		return "rgb"
	case YUV420:
		return "yuv420"
	case YUV422:
		return "yuv422"
	case Gray:
		return "gray"
	default:
		return fmt.Sprintf("PixelFormat(%d)", uint8(f))
	}
}

// ParsePixelFormat converts a format name (as produced by String) back into
// a PixelFormat.
func ParsePixelFormat(s string) (PixelFormat, error) {
	switch s {
	case "rgb":
		return RGB, nil
	case "yuv420":
		return YUV420, nil
	case "yuv422":
		return YUV422, nil
	case "gray":
		return Gray, nil
	default:
		return 0, fmt.Errorf("frame: unknown pixel format %q", s)
	}
}

// BytesPerPixelNum and BytesPerPixelDen express the storage cost of one
// pixel in this format as the ratio num/den (e.g. YUV420 is 3/2).
func (f PixelFormat) bytesPerPixel() (num, den int) {
	switch f {
	case RGB:
		return 3, 1
	case YUV420:
		return 3, 2
	case YUV422:
		return 2, 1
	case Gray:
		return 1, 1
	default:
		return 0, 1
	}
}

// Size returns the number of bytes required to store a w x h frame in this
// format.
func (f PixelFormat) Size(w, h int) int {
	num, den := f.bytesPerPixel()
	return w * h * num / den
}

// Validate reports whether a frame of dimensions w x h is representable in
// this format (chroma subsampling constrains parity).
func (f PixelFormat) Validate(w, h int) error {
	if w <= 0 || h <= 0 {
		return fmt.Errorf("frame: invalid dimensions %dx%d", w, h)
	}
	switch f {
	case YUV420:
		if w%2 != 0 || h%2 != 0 {
			return fmt.Errorf("frame: yuv420 requires even dimensions, got %dx%d", w, h)
		}
	case YUV422:
		if w%2 != 0 {
			return fmt.Errorf("frame: yuv422 requires even width, got %d", w)
		}
	}
	return nil
}

// Frame is a single decoded video frame. Data is laid out according to
// Format:
//
//	RGB:    interleaved r,g,b triples, row major, w*h*3 bytes
//	YUV420: Y plane (w*h), then U plane (w/2*h/2), then V plane (w/2*h/2)
//	YUV422: Y plane (w*h), then U plane (w/2*h), then V plane (w/2*h)
//	Gray:   single plane, w*h bytes
type Frame struct {
	Width  int
	Height int
	Format PixelFormat
	Data   []byte
}

// New allocates a zeroed frame of the given dimensions and format. It
// panics if the dimensions are invalid for the format; callers that accept
// external input should call Validate first.
func New(w, h int, format PixelFormat) *Frame {
	if err := format.Validate(w, h); err != nil {
		panic(err)
	}
	return &Frame{Width: w, Height: h, Format: format, Data: make([]byte, format.Size(w, h))}
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	d := make([]byte, len(f.Data))
	copy(d, f.Data)
	return &Frame{Width: f.Width, Height: f.Height, Format: f.Format, Data: d}
}

// Pixels returns the number of pixels in the frame; the paper's cost model
// scales transcode cost by this quantity (|f| in c_t = α·|f|).
func (f *Frame) Pixels() int { return f.Width * f.Height }

// planes returns the byte offsets of the Y/U/V planes for planar formats.
func (f *Frame) planes() (y, u, v []byte) {
	switch f.Format {
	case YUV420:
		ySize := f.Width * f.Height
		cSize := (f.Width / 2) * (f.Height / 2)
		return f.Data[:ySize], f.Data[ySize : ySize+cSize], f.Data[ySize+cSize : ySize+2*cSize]
	case YUV422:
		ySize := f.Width * f.Height
		cSize := (f.Width / 2) * f.Height
		return f.Data[:ySize], f.Data[ySize : ySize+cSize], f.Data[ySize+cSize : ySize+2*cSize]
	case Gray:
		return f.Data, nil, nil
	default:
		return nil, nil, nil
	}
}

// SetRGB sets the pixel at (x, y) for an RGB frame. It is a convenience for
// generators and tests; bulk operations should index Data directly.
func (f *Frame) SetRGB(x, y int, r, g, b byte) {
	i := (y*f.Width + x) * 3
	f.Data[i], f.Data[i+1], f.Data[i+2] = r, g, b
}

// AtRGB returns the pixel at (x, y) for an RGB frame.
func (f *Frame) AtRGB(x, y int) (r, g, b byte) {
	i := (y*f.Width + x) * 3
	return f.Data[i], f.Data[i+1], f.Data[i+2]
}

// Rect is an axis-aligned pixel rectangle [X0,X1) x [Y0,Y1) used to express
// regions of interest (the spatial parameter S in the VSS API).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// FullRect returns the rectangle covering an entire w x h frame.
func FullRect(w, h int) Rect { return Rect{0, 0, w, h} }

// Dx and Dy return the rectangle's width and height.
func (r Rect) Dx() int { return r.X1 - r.X0 }

// Dy returns the rectangle's height.
func (r Rect) Dy() int { return r.Y1 - r.Y0 }

// Empty reports whether the rectangle contains no pixels.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Area returns the number of pixels covered by the rectangle.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.Dx() * r.Dy()
}

// Intersect returns the intersection of two rectangles (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{max(r.X0, o.X0), max(r.Y0, o.Y0), min(r.X1, o.X1), min(r.Y1, o.Y1)}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Contains reports whether o lies entirely within r.
func (r Rect) Contains(o Rect) bool {
	return r.X0 <= o.X0 && r.Y0 <= o.Y0 && r.X1 >= o.X1 && r.Y1 >= o.Y1
}

// In reports whether the point (x, y) lies within the rectangle.
func (r Rect) In(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Crop extracts the sub-frame covered by r. The source frame must be RGB or
// Gray (VSS converts planar formats before cropping to avoid chroma-parity
// complications, matching how ROI reads are executed on decoded frames).
func (f *Frame) Crop(r Rect) (*Frame, error) {
	r = r.Intersect(FullRect(f.Width, f.Height))
	if r.Empty() {
		return nil, fmt.Errorf("frame: empty crop %+v of %dx%d frame", r, f.Width, f.Height)
	}
	switch f.Format {
	case RGB:
		out := New(r.Dx(), r.Dy(), RGB)
		for y := r.Y0; y < r.Y1; y++ {
			src := (y*f.Width + r.X0) * 3
			dst := (y - r.Y0) * r.Dx() * 3
			copy(out.Data[dst:dst+r.Dx()*3], f.Data[src:src+r.Dx()*3])
		}
		return out, nil
	case Gray:
		out := New(r.Dx(), r.Dy(), Gray)
		for y := r.Y0; y < r.Y1; y++ {
			src := y*f.Width + r.X0
			dst := (y - r.Y0) * r.Dx()
			copy(out.Data[dst:dst+r.Dx()], f.Data[src:src+r.Dx()])
		}
		return out, nil
	default:
		rgb := f.Convert(RGB)
		return rgb.Crop(r)
	}
}

// Paste copies src into f at offset (x0, y0), clipping to f's bounds. Both
// frames must share the same format and it must be RGB or Gray.
func (f *Frame) Paste(src *Frame, x0, y0 int) error {
	if f.Format != src.Format {
		return fmt.Errorf("frame: paste format mismatch %v != %v", f.Format, src.Format)
	}
	var bpp int
	switch f.Format {
	case RGB:
		bpp = 3
	case Gray:
		bpp = 1
	default:
		return fmt.Errorf("frame: paste unsupported for %v", f.Format)
	}
	for y := 0; y < src.Height; y++ {
		ty := y0 + y
		if ty < 0 || ty >= f.Height {
			continue
		}
		sx0, tx0 := 0, x0
		if tx0 < 0 {
			sx0, tx0 = -tx0, 0
		}
		n := src.Width - sx0
		if tx0+n > f.Width {
			n = f.Width - tx0
		}
		if n <= 0 {
			continue
		}
		si := (y*src.Width + sx0) * bpp
		di := (ty*f.Width + tx0) * bpp
		copy(f.Data[di:di+n*bpp], src.Data[si:si+n*bpp])
	}
	return nil
}

func clampU8(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
