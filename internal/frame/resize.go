package frame

// Resize returns the frame resampled to tw x th using bilinear
// interpolation. Resampling is one of the two quality-loss mechanisms VSS
// tracks (the other is lossy compression); callers record the resulting MSE
// via internal/quality.
//
// Planar sources are converted through RGB, matching the decode pipeline:
// VSS resamples decoded pictures, not compressed bitstreams.
func (f *Frame) Resize(tw, th int) *Frame {
	if tw == f.Width && th == f.Height {
		return f.Clone()
	}
	switch f.Format {
	case RGB:
		return f.resizeInterleaved(tw, th, 3)
	case Gray:
		return f.resizeInterleaved(tw, th, 1)
	default:
		return f.Convert(RGB).resizeInterleaved(tw, th, 3).Convert(f.Format)
	}
}

// resizeInterleaved performs bilinear resampling over an interleaved buffer
// with bpp bytes per pixel. Fixed-point 16.16 arithmetic keeps the inner
// loop free of float conversions.
func (f *Frame) resizeInterleaved(tw, th, bpp int) *Frame {
	out := New(tw, th, f.Format)
	const shift = 16
	const one = 1 << shift
	// Scale factors map output pixel centers onto source coordinates.
	sx := ((f.Width - 1) << shift) / maxInt(tw-1, 1)
	sy := ((f.Height - 1) << shift) / maxInt(th-1, 1)
	for oy := 0; oy < th; oy++ {
		fy := oy * sy
		y0 := fy >> shift
		wy := fy & (one - 1)
		y1 := y0 + 1
		if y1 >= f.Height {
			y1 = f.Height - 1
		}
		row0 := y0 * f.Width * bpp
		row1 := y1 * f.Width * bpp
		outRow := oy * tw * bpp
		for ox := 0; ox < tw; ox++ {
			fx := ox * sx
			x0 := fx >> shift
			wx := fx & (one - 1)
			x1 := x0 + 1
			if x1 >= f.Width {
				x1 = f.Width - 1
			}
			for c := 0; c < bpp; c++ {
				p00 := int(f.Data[row0+x0*bpp+c])
				p01 := int(f.Data[row0+x1*bpp+c])
				p10 := int(f.Data[row1+x0*bpp+c])
				p11 := int(f.Data[row1+x1*bpp+c])
				top := p00 + ((p01-p00)*wx)>>shift
				bot := p10 + ((p11-p10)*wx)>>shift
				out.Data[outRow+ox*bpp+c] = clampU8(top + ((bot-top)*wy)>>shift)
			}
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
