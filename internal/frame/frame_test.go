package frame

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomFrame(rng *rand.Rand, w, h int, format PixelFormat) *Frame {
	f := New(w, h, format)
	rng.Read(f.Data)
	return f
}

func TestPixelFormatSize(t *testing.T) {
	cases := []struct {
		format PixelFormat
		w, h   int
		want   int
	}{
		{RGB, 4, 4, 48},
		{YUV420, 4, 4, 24},
		{YUV422, 4, 4, 32},
		{Gray, 4, 4, 16},
		{RGB, 1920, 1080, 1920 * 1080 * 3},
		{YUV420, 1920, 1080, 1920 * 1080 * 3 / 2},
	}
	for _, c := range cases {
		if got := c.format.Size(c.w, c.h); got != c.want {
			t.Errorf("%v.Size(%d,%d) = %d, want %d", c.format, c.w, c.h, got, c.want)
		}
	}
}

func TestPixelFormatValidate(t *testing.T) {
	if err := YUV420.Validate(3, 4); err == nil {
		t.Error("YUV420 should reject odd width")
	}
	if err := YUV420.Validate(4, 3); err == nil {
		t.Error("YUV420 should reject odd height")
	}
	if err := YUV422.Validate(3, 3); err == nil {
		t.Error("YUV422 should reject odd width")
	}
	if err := YUV422.Validate(4, 3); err != nil {
		t.Errorf("YUV422 should accept odd height: %v", err)
	}
	if err := RGB.Validate(0, 4); err == nil {
		t.Error("should reject zero width")
	}
	if err := RGB.Validate(3, 3); err != nil {
		t.Errorf("RGB should accept odd dims: %v", err)
	}
}

func TestParsePixelFormatRoundTrip(t *testing.T) {
	for _, f := range []PixelFormat{RGB, YUV420, YUV422, Gray} {
		got, err := ParsePixelFormat(f.String())
		if err != nil {
			t.Fatalf("ParsePixelFormat(%q): %v", f.String(), err)
		}
		if got != f {
			t.Errorf("round trip %v -> %v", f, got)
		}
	}
	if _, err := ParsePixelFormat("h264"); err == nil {
		t.Error("expected error for unknown format")
	}
}

func TestNewAllocatesCorrectSize(t *testing.T) {
	f := New(16, 8, YUV420)
	if len(f.Data) != YUV420.Size(16, 8) {
		t.Errorf("data size %d, want %d", len(f.Data), YUV420.Size(16, 8))
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for odd yuv420 dimensions")
		}
	}()
	New(3, 3, YUV420)
}

func TestCloneIsDeep(t *testing.T) {
	f := New(4, 4, RGB)
	g := f.Clone()
	g.Data[0] = 99
	if f.Data[0] == 99 {
		t.Error("clone shares data with original")
	}
}

func TestSetAtRGB(t *testing.T) {
	f := New(8, 8, RGB)
	f.SetRGB(3, 5, 10, 20, 30)
	r, g, b := f.AtRGB(3, 5)
	if r != 10 || g != 20 || b != 30 {
		t.Errorf("got (%d,%d,%d)", r, g, b)
	}
}

func TestRGBGrayRoundTripIsClose(t *testing.T) {
	// A gray ramp should survive rgb->gray->rgb almost exactly.
	f := New(16, 1, RGB)
	for x := 0; x < 16; x++ {
		v := byte(x * 16)
		f.SetRGB(x, 0, v, v, v)
	}
	back := f.Convert(Gray).Convert(RGB)
	for x := 0; x < 16; x++ {
		r, _, _ := back.AtRGB(x, 0)
		want := int(x * 16)
		if abs(int(r)-want) > 3 {
			t.Errorf("x=%d: got %d want ~%d", x, r, want)
		}
	}
}

func TestRGBYUVRoundTripQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, format := range []PixelFormat{YUV420, YUV422} {
		f := randomSmooth(rng, 32, 32)
		back := f.Convert(format).Convert(RGB)
		// Smooth content through chroma subsampling should stay close.
		var sum float64
		for i := range f.Data {
			d := float64(int(f.Data[i]) - int(back.Data[i]))
			sum += d * d
		}
		mse := sum / float64(len(f.Data))
		if mse > 40 {
			t.Errorf("%v round trip MSE = %.1f, want < 40", format, mse)
		}
	}
}

// randomSmooth builds a low-frequency RGB frame (random gradients), the
// natural content class for chroma subsampling.
func randomSmooth(rng *rand.Rand, w, h int) *Frame {
	f := New(w, h, RGB)
	r0, g0, b0 := rng.Intn(200), rng.Intn(200), rng.Intn(200)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.SetRGB(x, y, clampU8(r0+x), clampU8(g0+y), clampU8(b0+(x+y)/2))
		}
	}
	return f
}

func TestConvertSameFormatIsCopy(t *testing.T) {
	f := New(4, 4, RGB)
	g := f.Convert(RGB)
	g.Data[0] = 77
	if f.Data[0] == 77 {
		t.Error("Convert to same format must return an independent copy")
	}
}

func TestConvertOddDimensionsToPlanar(t *testing.T) {
	f := New(5, 5, RGB)
	g := f.Convert(YUV420)
	if g.Width != 4 || g.Height != 4 {
		t.Errorf("odd rgb -> yuv420 should crop to even, got %dx%d", g.Width, g.Height)
	}
	h := f.Convert(YUV422)
	if h.Width != 4 || h.Height != 5 {
		t.Errorf("odd rgb -> yuv422 got %dx%d, want 4x5", h.Width, h.Height)
	}
}

func TestRectOps(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	want := Rect{5, 5, 10, 10}
	if got != want {
		t.Errorf("intersect = %+v, want %+v", got, want)
	}
	if got.Area() != 25 {
		t.Errorf("area = %d, want 25", got.Area())
	}
	if !a.Contains(Rect{1, 1, 9, 9}) {
		t.Error("contains failed")
	}
	if a.Contains(b) {
		t.Error("contains should fail for partial overlap")
	}
	empty := a.Intersect(Rect{20, 20, 30, 30})
	if !empty.Empty() || empty.Area() != 0 {
		t.Errorf("disjoint intersect should be empty, got %+v", empty)
	}
	if !a.In(0, 0) || a.In(10, 10) {
		t.Error("In boundary semantics wrong")
	}
}

func TestCropRGB(t *testing.T) {
	f := New(8, 8, RGB)
	f.SetRGB(3, 3, 255, 0, 0)
	c, err := f.Crop(Rect{2, 2, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Width != 4 || c.Height != 4 {
		t.Fatalf("crop dims %dx%d", c.Width, c.Height)
	}
	r, _, _ := c.AtRGB(1, 1)
	if r != 255 {
		t.Errorf("cropped pixel r=%d, want 255", r)
	}
}

func TestCropClipsToBounds(t *testing.T) {
	f := New(8, 8, Gray)
	c, err := f.Crop(Rect{4, 4, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if c.Width != 4 || c.Height != 4 {
		t.Errorf("clipped crop dims %dx%d, want 4x4", c.Width, c.Height)
	}
	if _, err := f.Crop(Rect{100, 100, 200, 200}); err == nil {
		t.Error("fully out-of-bounds crop should error")
	}
}

func TestCropPlanarGoesThroughRGB(t *testing.T) {
	f := New(8, 8, YUV420)
	c, err := f.Crop(Rect{1, 1, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Format != RGB {
		t.Errorf("planar crop should produce rgb, got %v", c.Format)
	}
}

func TestPasteRoundTrip(t *testing.T) {
	dst := New(8, 8, RGB)
	src := New(3, 3, RGB)
	for i := range src.Data {
		src.Data[i] = 200
	}
	if err := dst.Paste(src, 2, 2); err != nil {
		t.Fatal(err)
	}
	r, _, _ := dst.AtRGB(3, 3)
	if r != 200 {
		t.Errorf("paste center r=%d", r)
	}
	r, _, _ = dst.AtRGB(1, 1)
	if r != 0 {
		t.Errorf("paste leaked outside region r=%d", r)
	}
}

func TestPasteClips(t *testing.T) {
	dst := New(4, 4, Gray)
	src := New(4, 4, Gray)
	for i := range src.Data {
		src.Data[i] = 9
	}
	if err := dst.Paste(src, -2, -2); err != nil {
		t.Fatal(err)
	}
	if dst.Data[0] != 9 {
		t.Error("clipped paste missing top-left content")
	}
	if err := dst.Paste(src, 100, 100); err != nil {
		t.Fatal(err) // fully clipped paste is a no-op, not an error
	}
}

func TestPasteFormatMismatch(t *testing.T) {
	dst := New(4, 4, RGB)
	src := New(2, 2, Gray)
	if err := dst.Paste(src, 0, 0); err == nil {
		t.Error("expected format mismatch error")
	}
}

func TestResizeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := randomFrame(rng, 16, 12, RGB)
	g := f.Resize(16, 12)
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatal("identity resize changed data")
		}
	}
	g.Data[0] ^= 1
	if f.Data[0] == g.Data[0] {
		t.Error("identity resize must return a copy")
	}
}

func TestResizeConstantStaysConstant(t *testing.T) {
	f := New(16, 16, RGB)
	for i := range f.Data {
		f.Data[i] = 123
	}
	g := f.Resize(7, 5)
	for i := range g.Data {
		if g.Data[i] != 123 {
			t.Fatalf("resize of constant frame produced %d at %d", g.Data[i], i)
		}
	}
}

func TestResizeDownUpIsClose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randomSmooth(rng, 64, 64)
	g := f.Resize(32, 32).Resize(64, 64)
	var sum float64
	for i := range f.Data {
		d := float64(int(f.Data[i]) - int(g.Data[i]))
		sum += d * d
	}
	if mse := sum / float64(len(f.Data)); mse > 16 {
		t.Errorf("down/up MSE %.2f too high for smooth content", mse)
	}
}

func TestResizePlanarPreservesFormat(t *testing.T) {
	f := New(16, 16, YUV420)
	g := f.Resize(8, 8)
	if g.Format != YUV420 || g.Width != 8 || g.Height != 8 {
		t.Errorf("got %v %dx%d", g.Format, g.Width, g.Height)
	}
}

func TestResizePropertyDimensions(t *testing.T) {
	// Property: output dimensions always match the request for RGB/Gray.
	prop := func(w8, h8, tw8, th8 uint8) bool {
		w, h := int(w8%30)+1, int(h8%30)+1
		tw, th := int(tw8%30)+1, int(th8%30)+1
		f := New(w, h, Gray)
		g := f.Resize(tw, th)
		return g.Width == tw && g.Height == th && len(g.Data) == tw*th
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCropPropertyContainedValues(t *testing.T) {
	// Property: every pixel in a crop equals the source pixel it came from.
	rng := rand.New(rand.NewSource(4))
	prop := func(x0, y0, dx, dy uint8) bool {
		f := randomFrame(rng, 20, 20, Gray)
		r := Rect{int(x0 % 15), int(y0 % 15), int(x0%15) + int(dx%5) + 1, int(y0%15) + int(dy%5) + 1}
		c, err := f.Crop(r)
		if err != nil {
			return false
		}
		for y := 0; y < c.Height; y++ {
			for x := 0; x < c.Width; x++ {
				if c.Data[y*c.Width+x] != f.Data[(y+r.Y0)*20+(x+r.X0)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
