package frame

// Color conversion uses the BT.601 studio-swing matrix, the same transform
// family used by the codecs VSS simulates. Conversions between subsampled
// chroma formats pass through per-pixel YUV with box filtering on the chroma
// planes.

// rgbToYUV converts a single pixel.
func rgbToYUV(r, g, b byte) (y, u, v byte) {
	ri, gi, bi := int(r), int(g), int(b)
	yy := (77*ri + 150*gi + 29*bi) >> 8
	uu := ((-43*ri - 85*gi + 128*bi) >> 8) + 128
	vv := ((128*ri - 107*gi - 21*bi) >> 8) + 128
	return clampU8(yy), clampU8(uu), clampU8(vv)
}

// yuvToRGB converts a single pixel.
func yuvToRGB(y, u, v byte) (r, g, b byte) {
	yi := int(y)
	ui := int(u) - 128
	vi := int(v) - 128
	rr := yi + ((359 * vi) >> 8)
	gg := yi - ((88*ui + 183*vi) >> 8)
	bb := yi + ((454 * ui) >> 8)
	return clampU8(rr), clampU8(gg), clampU8(bb)
}

// Convert returns the frame converted to the target pixel format. The
// original frame is unmodified; if the format already matches, a deep copy
// is returned so callers may mutate the result freely.
func (f *Frame) Convert(target PixelFormat) *Frame {
	if f.Format == target {
		return f.Clone()
	}
	switch f.Format {
	case RGB:
		switch target {
		case Gray:
			return f.rgbToGray()
		default:
			return f.rgbToPlanar(target)
		}
	case Gray:
		// Promote gray to RGB first, then onward if needed.
		rgb := f.grayToRGB()
		if target == RGB {
			return rgb
		}
		return rgb.Convert(target)
	default: // planar YUV source
		rgb := f.planarToRGB()
		if target == RGB {
			return rgb
		}
		return rgb.Convert(target)
	}
}

func (f *Frame) rgbToGray() *Frame {
	out := New(f.Width, f.Height, Gray)
	for i, j := 0, 0; i < len(f.Data); i, j = i+3, j+1 {
		y, _, _ := rgbToYUV(f.Data[i], f.Data[i+1], f.Data[i+2])
		out.Data[j] = y
	}
	return out
}

func (f *Frame) grayToRGB() *Frame {
	out := New(f.Width, f.Height, RGB)
	for i, j := 0, 0; i < len(f.Data); i, j = i+1, j+3 {
		out.Data[j], out.Data[j+1], out.Data[j+2] = f.Data[i], f.Data[i], f.Data[i]
	}
	return out
}

// rgbToPlanar converts RGB to YUV420 or YUV422. Odd trailing rows/columns
// are unreachable because Validate enforces parity at allocation time.
func (f *Frame) rgbToPlanar(target PixelFormat) *Frame {
	// Frames with odd dimensions cannot be represented in subsampled
	// formats; pad by cropping to even dimensions first.
	w, h := f.Width, f.Height
	if target == YUV420 && (w%2 != 0 || h%2 != 0) {
		c, _ := f.Crop(Rect{0, 0, w &^ 1, h &^ 1})
		return c.rgbToPlanar(target)
	}
	if target == YUV422 && w%2 != 0 {
		c, _ := f.Crop(Rect{0, 0, w &^ 1, h})
		return c.rgbToPlanar(target)
	}
	out := New(w, h, target)
	yp, up, vp := out.planes()
	// Full-resolution Y plane plus accumulators for chroma box filtering.
	cw := w / 2
	var ch int
	if target == YUV420 {
		ch = h / 2
	} else {
		ch = h
	}
	uAcc := make([]int, cw*ch)
	vAcc := make([]int, cw*ch)
	cnt := make([]int, cw*ch)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := (y*w + x) * 3
			yy, uu, vv := rgbToYUV(f.Data[i], f.Data[i+1], f.Data[i+2])
			yp[y*w+x] = yy
			cx := x / 2
			cy := y
			if target == YUV420 {
				cy = y / 2
			}
			ci := cy*cw + cx
			uAcc[ci] += int(uu)
			vAcc[ci] += int(vv)
			cnt[ci]++
		}
	}
	for i := range uAcc {
		up[i] = clampU8(uAcc[i] / cnt[i])
		vp[i] = clampU8(vAcc[i] / cnt[i])
	}
	return out
}

func (f *Frame) planarToRGB() *Frame {
	out := New(f.Width, f.Height, RGB)
	yp, up, vp := f.planes()
	cw := f.Width / 2
	for y := 0; y < f.Height; y++ {
		cy := y
		if f.Format == YUV420 {
			cy = y / 2
		}
		for x := 0; x < f.Width; x++ {
			ci := cy*cw + x/2
			r, g, b := yuvToRGB(yp[y*f.Width+x], up[ci], vp[ci])
			i := (y*f.Width + x) * 3
			out.Data[i], out.Data[i+1], out.Data[i+2] = r, g, b
		}
	}
	return out
}
