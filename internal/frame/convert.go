package frame

// Color conversion uses the BT.601 studio-swing matrix, the same transform
// family used by the codecs VSS simulates. Conversions between subsampled
// chroma formats pass through per-pixel YUV with box filtering on the chroma
// planes.

// rgbToYUV converts a single pixel.
func rgbToYUV(r, g, b byte) (y, u, v byte) {
	ri, gi, bi := int(r), int(g), int(b)
	yy := (77*ri + 150*gi + 29*bi) >> 8
	uu := ((-43*ri - 85*gi + 128*bi) >> 8) + 128
	vv := ((128*ri - 107*gi - 21*bi) >> 8) + 128
	return clampU8(yy), clampU8(uu), clampU8(vv)
}

// yuvToRGB converts a single pixel.
func yuvToRGB(y, u, v byte) (r, g, b byte) {
	yi := int(y)
	ui := int(u) - 128
	vi := int(v) - 128
	rr := yi + ((359 * vi) >> 8)
	gg := yi - ((88*ui + 183*vi) >> 8)
	bb := yi + ((454 * ui) >> 8)
	return clampU8(rr), clampU8(gg), clampU8(bb)
}

// Convert returns the frame converted to the target pixel format. The
// original frame is unmodified; if the format already matches, a deep copy
// is returned so callers may mutate the result freely.
func (f *Frame) Convert(target PixelFormat) *Frame {
	return f.ConvertInto(nil, target)
}

// ConvertInto is Convert with caller-provided destination storage: when
// dst's Data has enough capacity for the converted frame, it is reshaped
// and overwritten instead of allocating. Encode workers use it to recycle
// one conversion scratch frame across GOPs. dst may be nil; f must not
// share storage with dst. Multi-hop conversions (gray/planar -> non-RGB)
// reuse dst for the final hop only.
func (f *Frame) ConvertInto(dst *Frame, target PixelFormat) *Frame {
	if f.Format == target {
		out := reshape(dst, f.Width, f.Height, target)
		copy(out.Data, f.Data)
		return out
	}
	switch f.Format {
	case RGB:
		switch target {
		case Gray:
			return f.rgbToGray(dst)
		default:
			return f.rgbToPlanar(target, dst)
		}
	case Gray:
		// Promote gray to RGB first, then onward if needed.
		if target == RGB {
			return f.grayToRGB(dst)
		}
		return f.grayToRGB(nil).ConvertInto(dst, target)
	default: // planar YUV source
		if target == RGB {
			return f.planarToRGB(dst)
		}
		return f.planarToRGB(nil).ConvertInto(dst, target)
	}
}

// reshape returns dst re-dimensioned for a w x h frame in format when its
// backing array is large enough, or a fresh frame otherwise.
func reshape(dst *Frame, w, h int, format PixelFormat) *Frame {
	need := format.Size(w, h)
	if dst == nil || cap(dst.Data) < need {
		return New(w, h, format)
	}
	dst.Width, dst.Height, dst.Format = w, h, format
	dst.Data = dst.Data[:need]
	return dst
}

func (f *Frame) rgbToGray(dst *Frame) *Frame {
	out := reshape(dst, f.Width, f.Height, Gray)
	for i, j := 0, 0; i < len(f.Data); i, j = i+3, j+1 {
		y, _, _ := rgbToYUV(f.Data[i], f.Data[i+1], f.Data[i+2])
		out.Data[j] = y
	}
	return out
}

func (f *Frame) grayToRGB(dst *Frame) *Frame {
	out := reshape(dst, f.Width, f.Height, RGB)
	for i, j := 0, 0; i < len(f.Data); i, j = i+1, j+3 {
		out.Data[j], out.Data[j+1], out.Data[j+2] = f.Data[i], f.Data[i], f.Data[i]
	}
	return out
}

// rgbToPlanar converts RGB to YUV420 or YUV422 by walking 2x2 (or 2x1)
// pixel blocks directly, so the chroma box filter needs no accumulator
// arrays. Dimensions are even after the crop below, so every block is
// full and the filter divides by a constant.
func (f *Frame) rgbToPlanar(target PixelFormat, dst *Frame) *Frame {
	// Frames with odd dimensions cannot be represented in subsampled
	// formats; pad by cropping to even dimensions first.
	w, h := f.Width, f.Height
	if target == YUV420 && (w%2 != 0 || h%2 != 0) {
		c, _ := f.Crop(Rect{0, 0, w &^ 1, h &^ 1})
		return c.rgbToPlanar(target, dst)
	}
	if target == YUV422 && w%2 != 0 {
		c, _ := f.Crop(Rect{0, 0, w &^ 1, h})
		return c.rgbToPlanar(target, dst)
	}
	out := reshape(dst, w, h, target)
	yp, up, vp := out.planes()
	cw := w / 2
	rows := 1 // source rows per chroma sample
	if target == YUV420 {
		rows = 2
	}
	for cy := 0; cy*rows < h; cy++ {
		for cx := 0; cx < cw; cx++ {
			var uSum, vSum int
			for dy := 0; dy < rows; dy++ {
				y := cy*rows + dy
				for dx := 0; dx < 2; dx++ {
					x := cx*2 + dx
					i := (y*w + x) * 3
					yy, uu, vv := rgbToYUV(f.Data[i], f.Data[i+1], f.Data[i+2])
					yp[y*w+x] = yy
					uSum += int(uu)
					vSum += int(vv)
				}
			}
			ci := cy*cw + cx
			n := rows * 2
			up[ci] = clampU8(uSum / n)
			vp[ci] = clampU8(vSum / n)
		}
	}
	return out
}

func (f *Frame) planarToRGB(dst *Frame) *Frame {
	out := reshape(dst, f.Width, f.Height, RGB)
	yp, up, vp := f.planes()
	w := f.Width
	cw := w / 2
	// The chroma contributions to R, G, and B depend only on (u, v), which
	// 2 (422) or 4 (420) luma samples share — so each chroma row's
	// contributions are computed once and reused across its pixels. The
	// arithmetic per sample is exactly yuvToRGB's; output bytes are
	// identical to the per-pixel form.
	rc := make([]int16, cw)
	gc := make([]int16, cw)
	bc := make([]int16, cw)
	lastCY := -1
	for y := 0; y < f.Height; y++ {
		cy := y
		if f.Format == YUV420 {
			cy = y / 2
		}
		if cy != lastCY {
			urow := up[cy*cw : cy*cw+cw]
			vrow := vp[cy*cw : cy*cw+cw]
			for i := range urow {
				ui := int(urow[i]) - 128
				vi := int(vrow[i]) - 128
				rc[i] = int16((359 * vi) >> 8)
				gc[i] = int16((88*ui + 183*vi) >> 8)
				bc[i] = int16((454 * ui) >> 8)
			}
			lastCY = cy
		}
		yrow := yp[y*w : y*w+w]
		orow := out.Data[y*w*3 : y*w*3+w*3]
		for x := 0; x < w; x++ {
			yi := int(yrow[x])
			ci := x >> 1
			i := x * 3
			orow[i] = clampU8(yi + int(rc[ci]))
			orow[i+1] = clampU8(yi - int(gc[ci]))
			orow[i+2] = clampU8(yi + int(bc[ci]))
		}
	}
	return out
}
