package core

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/quality"
)

func TestOpenWriterValidation(t *testing.T) {
	s := newStore(t, Options{})
	if err := s.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenWriter("v", WriteSpec{FPS: 0, Codec: codec.H264}); err == nil {
		t.Error("zero fps accepted")
	}
	if _, err := s.OpenWriter("v", WriteSpec{FPS: 8, Codec: "av1"}); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := s.OpenWriter("missing", WriteSpec{FPS: 8, Codec: codec.H264}); err != ErrNotFound {
		t.Error("missing video accepted")
	}
	// Empty codec defaults to raw.
	w, err := s.OpenWriter("v", WriteSpec{FPS: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(frame.New(32, 24, frame.RGB)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, phys, _ := s.Info("v")
	if phys[0].Codec != codec.Raw {
		t.Errorf("default codec %s", phys[0].Codec)
	}
}

func TestWriterRejectsDimensionChange(t *testing.T) {
	s := newStore(t, Options{})
	s.Create("v", 0)
	w, _ := s.OpenWriter("v", WriteSpec{FPS: 8, Codec: codec.H264})
	if err := w.Append(frame.New(32, 24, frame.RGB)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(frame.New(64, 48, frame.RGB)); err == nil {
		t.Error("dimension change mid-stream accepted")
	}
}

func TestWriterRawBlockSizing(t *testing.T) {
	// A raw write with a tiny block cap must split GOPs by bytes.
	s := newStore(t, Options{RawBlockBytes: int64(frame.RGB.Size(32, 24)) * 2, GOPFrames: 30})
	if err := s.Create("v", -1); err != nil {
		t.Fatal(err)
	}
	frames := make([]*frame.Frame, 6)
	for i := range frames {
		frames[i] = frame.New(32, 24, frame.RGB)
	}
	if err := s.Write("v", WriteSpec{FPS: 2, Codec: codec.Raw}, frames); err != nil {
		t.Fatal(err)
	}
	_, phys, _ := s.Info("v")
	if len(phys[0].GOPs) != 3 { // 2 frames per block
		t.Errorf("raw GOPs %d, want 3", len(phys[0].GOPs))
	}
}

func TestWriterSingleFrameBlocksForHugeFrames(t *testing.T) {
	// Frames above the block cap are stored one per GOP (the paper: "a
	// single frame for resolutions that exceed this threshold").
	s := newStore(t, Options{RawBlockBytes: 100, GOPFrames: 30})
	if err := s.Create("v", -1); err != nil {
		t.Fatal(err)
	}
	frames := []*frame.Frame{frame.New(32, 24, frame.RGB), frame.New(32, 24, frame.RGB)}
	if err := s.Write("v", WriteSpec{FPS: 2, Codec: codec.Raw}, frames); err != nil {
		t.Fatal(err)
	}
	_, phys, _ := s.Info("v")
	if len(phys[0].GOPs) != 2 {
		t.Errorf("GOPs %d, want one per frame", len(phys[0].GOPs))
	}
}

func TestWriteEncodedValidation(t *testing.T) {
	s := newStore(t, Options{})
	s.Create("v", 0)
	if err := s.WriteEncoded("v", 8, nil); err == nil {
		t.Error("empty encoded write accepted")
	}
	if err := s.WriteEncoded("v", 8, [][]byte{[]byte("junk")}); err == nil {
		t.Error("junk GOP accepted")
	}
	good, _, _ := codec.EncodeGOP(scene(4, 32, 32, 95), codec.H264, 80)
	bad, _, _ := codec.EncodeGOP(scene(4, 64, 48, 96), codec.H264, 80)
	if err := s.WriteEncoded("v", 8, [][]byte{good, bad}); err == nil {
		t.Error("mixed-resolution encoded write accepted")
	}
	if err := s.WriteEncoded("missing", 8, [][]byte{good}); err != ErrNotFound {
		t.Errorf("missing video: %v", err)
	}
}

// TestWriterCloseAfterFailedAppend pins the poisoned-writer contract:
// once an Append fails, Close must return that stored error — not attempt
// another flush of the dead buffer and report something else.
func TestWriterCloseAfterFailedAppend(t *testing.T) {
	s := newStore(t, Options{})
	if err := s.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriter("v", WriteSpec{FPS: 8, Codec: codec.H264})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(frame.New(32, 24, frame.RGB)); err != nil {
		t.Fatal(err)
	}
	appendErr := w.Append(frame.New(64, 48, frame.RGB))
	if appendErr == nil {
		t.Fatal("dimension change accepted")
	}
	if err := w.Close(); err != appendErr {
		t.Errorf("Close returned %v, want the stored append error %v", err, appendErr)
	}
	// The writer stays poisoned with the same error after Close.
	if err := w.Append(frame.New(32, 24, frame.RGB)); err != appendErr {
		t.Errorf("Append after failed Close returned %v, want %v", err, appendErr)
	}
	// The buffered pre-failure partial GOP must not have been committed by
	// the failing Close.
	_, phys, err := s.Info("v")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(phys[0].GOPs); n != 0 {
		t.Errorf("poisoned writer committed %d GOPs on Close", n)
	}
}

// TestWriterPipelineSurfacesEncodeError drives the asynchronous failure
// path: a GOP that cannot be encoded (odd dimensions under a compressed
// codec) is dispatched to the pipeline, and the error must surface on
// drain (Flush/Close) as the writer's sticky error with nothing committed
// after the failure point.
func TestWriterPipelineSurfacesEncodeError(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 2})
	if err := s.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriterWith("v", WriteSpec{FPS: 8, Codec: codec.H264},
		WriteOptions{EncodeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Odd dimensions pass the writer's shape check (it only compares
	// against the first frame) but fail inside the lossy encoder.
	for i := 0; i < 6; i++ {
		if err := w.Append(frame.New(33, 25, frame.RGB)); err != nil {
			// Backpressure may surface the error on a later Append; that
			// is allowed by the contract.
			break
		}
	}
	flushErr := w.Flush()
	if flushErr == nil {
		t.Fatal("pipeline swallowed the encode error")
	}
	if err := w.Close(); err != flushErr {
		t.Errorf("Close returned %v, want the stored pipeline error %v", err, flushErr)
	}
	_, phys, err := s.Info("v")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(phys[0].GOPs); n != 0 {
		t.Errorf("%d GOPs committed past an encode failure", n)
	}
}

// TestWriterPipelinedOrdering checks that a heavily parallel writer still
// commits GOPs in append order: the stored video must play back as the
// exact appended sequence.
func TestWriterPipelinedOrdering(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 4, Workers: 8})
	if err := s.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	frames := scene(40, 64, 48, 11)
	w, err := s.OpenWriterWith("v", WriteSpec{FPS: 8, Codec: codec.H264},
		WriteOptions{EncodeWorkers: 8, MaxInflightGOPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(frames...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, phys, err := s.Info("v")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(phys[0].GOPs); n != 10 {
		t.Fatalf("GOPs %d, want 10", n)
	}
	res, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameCount() != 40 {
		t.Fatalf("read %d frames, want 40", res.FrameCount())
	}
	p, err := quality.FramesPSNR(frames, res.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if p < 18 {
		t.Errorf("decoded PSNR %.1f dB: GOPs committed out of order or corrupted", p)
	}
}

// TestWriteEncodedChunkedCommit exercises the bounded-chunk commit path of
// WriteEncoded with more GOPs than one chunk.
func TestWriteEncodedChunkedCommit(t *testing.T) {
	s := newStore(t, Options{})
	if err := s.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	n := writeEncodedChunk*2 + 3
	gops := make([][]byte, n)
	for i := range gops {
		data, _, err := codec.EncodeGOP(scene(4, 32, 32, int64(200+i)), codec.H264, 80)
		if err != nil {
			t.Fatal(err)
		}
		gops[i] = data
	}
	if err := s.WriteEncoded("v", 8, gops); err != nil {
		t.Fatal(err)
	}
	_, phys, err := s.Info("v")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(phys[0].GOPs); got != n {
		t.Fatalf("GOPs %d, want %d", got, n)
	}
	res, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameCount() != 4*n {
		t.Errorf("read %d frames, want %d", res.FrameCount(), 4*n)
	}
}

func TestWriterMultipleFlushes(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 4})
	s.Create("v", 0)
	w, _ := s.OpenWriter("v", WriteSpec{FPS: 4, Codec: codec.H264})
	frames := scene(10, 32, 32, 97)
	for _, f := range frames {
		if err := w.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil { // idempotent with empty buffer
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Read("v", ReadSpec{})
	if err != nil || len(res.Frames) != 10 {
		t.Fatalf("read: %v, %d frames", err, len(res.Frames))
	}
	// GOP structure: 4+4+2.
	_, phys, _ := s.Info("v")
	if len(phys[0].GOPs) != 3 {
		t.Errorf("GOPs %d, want 3", len(phys[0].GOPs))
	}
}
