package core

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/frame"
)

func TestOpenWriterValidation(t *testing.T) {
	s := newStore(t, Options{})
	if err := s.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenWriter("v", WriteSpec{FPS: 0, Codec: codec.H264}); err == nil {
		t.Error("zero fps accepted")
	}
	if _, err := s.OpenWriter("v", WriteSpec{FPS: 8, Codec: "av1"}); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := s.OpenWriter("missing", WriteSpec{FPS: 8, Codec: codec.H264}); err != ErrNotFound {
		t.Error("missing video accepted")
	}
	// Empty codec defaults to raw.
	w, err := s.OpenWriter("v", WriteSpec{FPS: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(frame.New(32, 24, frame.RGB)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, phys, _ := s.Info("v")
	if phys[0].Codec != codec.Raw {
		t.Errorf("default codec %s", phys[0].Codec)
	}
}

func TestWriterRejectsDimensionChange(t *testing.T) {
	s := newStore(t, Options{})
	s.Create("v", 0)
	w, _ := s.OpenWriter("v", WriteSpec{FPS: 8, Codec: codec.H264})
	if err := w.Append(frame.New(32, 24, frame.RGB)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(frame.New(64, 48, frame.RGB)); err == nil {
		t.Error("dimension change mid-stream accepted")
	}
}

func TestWriterRawBlockSizing(t *testing.T) {
	// A raw write with a tiny block cap must split GOPs by bytes.
	s := newStore(t, Options{RawBlockBytes: int64(frame.RGB.Size(32, 24)) * 2, GOPFrames: 30})
	if err := s.Create("v", -1); err != nil {
		t.Fatal(err)
	}
	frames := make([]*frame.Frame, 6)
	for i := range frames {
		frames[i] = frame.New(32, 24, frame.RGB)
	}
	if err := s.Write("v", WriteSpec{FPS: 2, Codec: codec.Raw}, frames); err != nil {
		t.Fatal(err)
	}
	_, phys, _ := s.Info("v")
	if len(phys[0].GOPs) != 3 { // 2 frames per block
		t.Errorf("raw GOPs %d, want 3", len(phys[0].GOPs))
	}
}

func TestWriterSingleFrameBlocksForHugeFrames(t *testing.T) {
	// Frames above the block cap are stored one per GOP (the paper: "a
	// single frame for resolutions that exceed this threshold").
	s := newStore(t, Options{RawBlockBytes: 100, GOPFrames: 30})
	if err := s.Create("v", -1); err != nil {
		t.Fatal(err)
	}
	frames := []*frame.Frame{frame.New(32, 24, frame.RGB), frame.New(32, 24, frame.RGB)}
	if err := s.Write("v", WriteSpec{FPS: 2, Codec: codec.Raw}, frames); err != nil {
		t.Fatal(err)
	}
	_, phys, _ := s.Info("v")
	if len(phys[0].GOPs) != 2 {
		t.Errorf("GOPs %d, want one per frame", len(phys[0].GOPs))
	}
}

func TestWriteEncodedValidation(t *testing.T) {
	s := newStore(t, Options{})
	s.Create("v", 0)
	if err := s.WriteEncoded("v", 8, nil); err == nil {
		t.Error("empty encoded write accepted")
	}
	if err := s.WriteEncoded("v", 8, [][]byte{[]byte("junk")}); err == nil {
		t.Error("junk GOP accepted")
	}
	good, _, _ := codec.EncodeGOP(scene(4, 32, 32, 95), codec.H264, 80)
	bad, _, _ := codec.EncodeGOP(scene(4, 64, 48, 96), codec.H264, 80)
	if err := s.WriteEncoded("v", 8, [][]byte{good, bad}); err == nil {
		t.Error("mixed-resolution encoded write accepted")
	}
	if err := s.WriteEncoded("missing", 8, [][]byte{good}); err != ErrNotFound {
		t.Errorf("missing video: %v", err)
	}
}

func TestWriterMultipleFlushes(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 4})
	s.Create("v", 0)
	w, _ := s.OpenWriter("v", WriteSpec{FPS: 4, Codec: codec.H264})
	frames := scene(10, 32, 32, 97)
	for _, f := range frames {
		if err := w.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil { // idempotent with empty buffer
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Read("v", ReadSpec{})
	if err != nil || len(res.Frames) != 10 {
		t.Fatalf("read: %v, %d frames", err, len(res.Frames))
	}
	// GOP structure: 4+4+2.
	_, phys, _ := s.Info("v")
	if len(phys[0].GOPs) != 3 {
		t.Errorf("GOPs %d, want 3", len(phys[0].GOPs))
	}
}
