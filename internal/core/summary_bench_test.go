package core

import (
	"testing"

	"repro/internal/visualroad"
)

// BenchmarkSummarizeGOP measures ingest-time summarization of one GOP of
// a busy synthetic scene — the per-GOP cost every write with summaries
// enabled pays on top of encoding.
func BenchmarkSummarizeGOP(b *testing.B) {
	frames := visualroad.Generate(visualroad.Config{Width: 240, Height: 136, FPS: 8, Seed: 11, Vehicles: 6}, 8)
	var bytes int64
	for _, f := range frames {
		bytes += int64(len(f.Data))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if summarizeFrames(frames) == nil {
			b.Fatal("nil summary")
		}
	}
}
