package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/lossless"
	"repro/internal/quality"
	"repro/internal/vision"
)

// This file implements joint physical video compression (Section 5.1):
// pairs of GOPs from different logical videos whose cameras overlap are
// stored as three streams — the left remainder, a single merged overlap,
// and the right remainder — recoverable through the homography that
// relates the two camera planes (Algorithm 1 of the paper).
//
// Locking: joint compression is a cross-video mutation, so every entry
// point locks both videos through Store.withVideos (sorted-order
// acquisition). Reads of joint GOPs go through the snapshot path in
// reader.go and never take locks during reconstruction.

// MergeMode selects how overlapping pixels are combined.
type MergeMode string

const (
	// MergeUnprojected favors the unprojected (left) frame: the left
	// recovers losslessly, the right takes the projection error.
	MergeUnprojected MergeMode = "unprojected"
	// MergeMean averages the two frames, balancing recovered quality.
	MergeMean MergeMode = "mean"
)

// DupEpsilon is ε in Algorithm 1's duplicate check ‖H − I‖ ≤ ε: a
// homography this close to identity marks the GOPs as near-identical, and
// the right GOP is replaced with a pointer.
const DupEpsilon = 0.1

// JointResult describes the outcome of jointly compressing one GOP pair.
type JointResult struct {
	Compressed  bool
	Duplicate   bool
	BytesBefore int64
	BytesAfter  int64
	LeftPSNR    float64
	RightPSNR   float64
}

// jointPair holds the decoded state for one pair under compression.
type jointPair struct {
	vL, vR *VideoMeta
	pL, pR *PhysMeta
	gL, gR *GOPMeta
	fL, fR []*frame.Frame // decoded RGB
}

// JointCompressPair applies Algorithm 1 to one pair of GOPs identified by
// global references. The left/right role assignment may be swapped
// internally if the homography indicates the reverse ordering. Safe for
// concurrent use; it locks both videos for the duration.
func (s *Store) JointCompressPair(left, right GOPRef, merge MergeMode) (JointResult, error) {
	var res JointResult
	err := s.withVideos([]string{left.Video, right.Video}, func(held map[string]*videoState) error {
		var err error
		res, err = s.jointCompressPairHeld(held, left, right, merge)
		return err
	})
	return res, err
}

// jointCompressPairHeld runs Algorithm 1 with both videos' locks held.
func (s *Store) jointCompressPairHeld(held map[string]*videoState, left, right GOPRef, merge MergeMode) (JointResult, error) {
	var res JointResult
	if merge != MergeUnprojected && merge != MergeMean {
		return res, fmt.Errorf("core: unknown merge mode %q", merge)
	}
	if left.Video == right.Video {
		return res, fmt.Errorf("core: joint compression applies to different logical videos")
	}
	pair, err := s.loadPair(held, left, right)
	if err != nil {
		return res, err
	}
	if pair == nil {
		return res, nil // ineligible (already joint/dup)
	}
	res.BytesBefore = pair.gL.Bytes + pair.gR.Bytes

	// Mixed resolutions: upscale the lower-resolution side (Section
	// 5.1.2), remembering the original size for recovery.
	upscaledRight := false
	if pair.pL.Width*pair.pL.Height > pair.pR.Width*pair.pR.Height {
		for i, f := range pair.fR {
			pair.fR[i] = f.Resize(pair.pL.Width, pair.pL.Height)
		}
		upscaledRight = true
	} else if pair.pR.Width*pair.pR.Height > pair.pL.Width*pair.pL.Height {
		// Keep "left" the unprojected frame; swap roles instead of
		// upscaling the left.
		return s.jointCompressPairHeld(held, right, left, merge)
	}
	_ = upscaledRight

	h, ok := s.estimateHomography(pair.fL[0], pair.fR[0])
	if !ok {
		return res, nil // no homography found: abort silently (Algorithm 1)
	}
	// Reversed orientation: the "left" frame is actually to the right.
	if tx := translationX(h); tx > 0 {
		return s.jointCompressPairHeld(held, right, left, merge)
	}
	if h.DistanceFromIdentity() <= DupEpsilon {
		return s.markDuplicateHeld(pair, left)
	}
	return s.compressPairWithH(pair, h, merge)
}

// translationX extracts the effective x translation of the homography at
// the frame center (H maps left coords to right coords; negative means the
// right frame's content lies to the right).
func translationX(h vision.Homography) float64 {
	x, _ := h.Apply(0, 0)
	return x
}

// loadPair resolves and decodes both GOPs to RGB. Returns nil if either is
// ineligible for joint compression. Caller holds both videos' locks.
func (s *Store) loadPair(held map[string]*videoState, left, right GOPRef) (*jointPair, error) {
	vsL, pL, gL, err := resolveRefIn(held, left)
	if err != nil {
		return nil, err
	}
	vsR, pR, gR, err := resolveRefIn(held, right)
	if err != nil {
		return nil, err
	}
	if gL.Joint != nil || gR.Joint != nil || gL.DupOf != nil || gR.DupOf != nil {
		return nil, nil
	}
	if gL.Frames != gR.Frames {
		return nil, nil // temporal misalignment: not a joint candidate
	}
	dataL, err := s.readGOP(context.Background(), vsL.meta.Name, pL.Dir, gL.Seq, gL.Bytes)
	if err != nil {
		return nil, err
	}
	fL, _, _, err := decodeSnap(gopSnap{data: dataL, losslessLevel: gL.Lossless}, 0, -1)
	if err != nil {
		return nil, err
	}
	dataR, err := s.readGOP(context.Background(), vsR.meta.Name, pR.Dir, gR.Seq, gR.Bytes)
	if err != nil {
		return nil, err
	}
	fR, _, _, err := decodeSnap(gopSnap{data: dataR, losslessLevel: gR.Lossless}, 0, -1)
	if err != nil {
		return nil, err
	}
	toRGB := func(fs []*frame.Frame) []*frame.Frame {
		out := make([]*frame.Frame, len(fs))
		for i, f := range fs {
			if f.Format == frame.RGB {
				out[i] = f
			} else {
				out[i] = f.Convert(frame.RGB)
			}
		}
		return out
	}
	return &jointPair{vL: vsL.meta, vR: vsR.meta, pL: pL, pR: pR, gL: gL, gR: gR, fL: toRGB(fL), fR: toRGB(fR)}, nil
}

// estimateHomography runs the feature pipeline: Harris keypoints, Lowe
// matching, RANSAC homography mapping left-frame coordinates onto
// right-frame coordinates.
func (s *Store) estimateHomography(fL, fR *frame.Frame) (vision.Homography, bool) {
	// 300 keypoints and a tight reprojection threshold: small-overlap
	// pairs (e.g. Waymo's ~15%) only share a narrow strip, so the match
	// pool must be deep enough to find correspondences there, and the
	// recovered-quality gate downstream is sensitive to small homography
	// bias.
	kL := vision.DetectKeypoints(fL, 300)
	kR := vision.DetectKeypoints(fR, 300)
	matches := vision.MatchKeypoints(kL, kR, vision.DefaultLoweRatio)
	rng := rand.New(rand.NewSource(42)) // deterministic RANSAC
	resRANSAC, ok := vision.RANSACHomography(kL, kR, matches, 800, 1.5, 12, rng)
	if !ok {
		return vision.Homography{}, false
	}
	return resRANSAC.H, true
}

// markDuplicateHeld replaces the right GOP with a pointer to the left
// (the near-identity duplicate short-circuit of Algorithm 1). Caller
// holds both videos' locks.
func (s *Store) markDuplicateHeld(pair *jointPair, left GOPRef) (JointResult, error) {
	res := JointResult{Duplicate: true, BytesBefore: pair.gL.Bytes + pair.gR.Bytes}
	if err := s.files.DeleteGOP(pair.vR.Name, pair.pR.Dir, pair.gR.Seq); err != nil {
		return res, err
	}
	pair.gR.DupOf = &left
	pair.gR.Bytes = 0
	// The right GOP now decodes to the LEFT GOP's pixels; its summary no
	// longer describes what a predicate read would scan. Maintain backfills
	// a fresh one from the deduplicated bytes.
	pair.gR.Summary = nil
	res.BytesAfter = pair.gL.Bytes
	res.Compressed = true
	res.LeftPSNR = quality.InfPSNR
	res.RightPSNR = quality.InfPSNR
	if err := s.savePhys(pair.vR.Name, pair.pR); err != nil {
		return res, err
	}
	return res, nil
}

// splits computes the even-aligned partition columns: xf is the left-frame
// column where the right frame's left edge lands; xg is the right-frame
// column where the left frame's right edge lands.
func splits(h vision.Homography, wL, hL, wR, hR int) (xf, xg int, ok bool) {
	hInv, err := h.Inverse()
	if err != nil {
		return 0, 0, false
	}
	minXf := float64(wL)
	for _, y := range []float64{0, float64(hR) / 2, float64(hR - 1)} {
		x, _ := hInv.Apply(0, y)
		if x < minXf {
			minXf = x
		}
	}
	maxXg := 0.0
	for _, y := range []float64{0, float64(hL) / 2, float64(hL - 1)} {
		x, _ := h.Apply(float64(wL-1), y)
		if x > maxXg {
			maxXg = x
		}
	}
	xf = int(minXf) &^ 1
	xg = (int(maxXg+1) + 1) &^ 1
	if xg > wR {
		xg = wR &^ 1
	}
	if xf <= 0 || xf >= wL || xg <= 0 || xg > wR {
		return 0, 0, false // no usable horizontal overlap
	}
	return xf, xg, true
}

// compressPairWithH performs the per-frame partition/merge/verify/encode
// loop of Algorithm 1. Caller holds both videos' locks.
func (s *Store) compressPairWithH(pair *jointPair, h vision.Homography, merge MergeMode) (JointResult, error) {
	res := JointResult{BytesBefore: pair.gL.Bytes + pair.gR.Bytes}
	wL, hL := pair.fL[0].Width, pair.fL[0].Height
	wR, hR := pair.fR[0].Width, pair.fR[0].Height
	xf, xg, ok := splits(h, wL, hL, wR, hR)
	if !ok {
		return res, nil
	}
	hInv, err := h.Inverse()
	if err != nil {
		return res, nil
	}

	n := len(pair.fL)
	leftFrames := make([]*frame.Frame, 0, n)
	overlapFrames := make([]*frame.Frame, 0, n)
	rightFrames := make([]*frame.Frame, 0, n)
	var sumL, sumR float64
	reestimated := false

	for i := 0; i < n; i++ {
		fl, fr := pair.fL[i], pair.fR[i]
		lf, of, rf := partitionPair(fl, fr, h, xf, xg, merge)
		// Verify: reconstruct both frames and check recovered quality
		// (Section 5.1.2's guard against outdated or bad homographies).
		recL := reconstructLeft(lf, of, wL, hL)
		recR := reconstructRight(rf, of, hInv, xf, xg, wR, hR)
		psnrL, _ := quality.PSNR(fl, recL)
		psnrR, _ := quality.PSNR(fr, recR)
		if psnrL < s.opts.JointMinPSNR || psnrR < s.opts.JointMinPSNR {
			if !reestimated {
				// Re-estimate the homography from the failing frame. The
				// split columns change with it, so the whole GOP restarts:
				// all frames of a stream must share dimensions.
				if h2, ok2 := s.estimateHomography(fl, fr); ok2 {
					if xf2, xg2, ok3 := splits(h2, wL, hL, wR, hR); ok3 {
						h, xf, xg = h2, xf2, xg2
						if hInv2, err := h.Inverse(); err == nil {
							hInv = hInv2
						}
						reestimated = true
						leftFrames = leftFrames[:0]
						overlapFrames = overlapFrames[:0]
						rightFrames = rightFrames[:0]
						sumL, sumR = 0, 0
						i = -1
						continue
					}
				}
				reestimated = true
			}
			return res, nil // abort joint compression for this pair
		}
		sumL += psnrL
		sumR += psnrR
		leftFrames = append(leftFrames, lf)
		overlapFrames = append(overlapFrames, of)
		rightFrames = append(rightFrames, rf)
	}

	// Encode the three streams with the left side's physical parameters.
	enc := func(frames []*frame.Frame, p *PhysMeta) ([]byte, error) {
		data, _, err := codec.EncodeGOP(frames, p.Codec, p.Quality)
		return data, err
	}
	leftData, err := enc(leftFrames, pair.pL)
	if err != nil {
		return res, err
	}
	overlapData, err := enc(overlapFrames, pair.pL)
	if err != nil {
		return res, err
	}
	rightData, err := enc(rightFrames, pair.pR)
	if err != nil {
		return res, err
	}

	// Persist: the left file carries [left | overlap]; the right file
	// carries only the remainder.
	leftFile := packJointStreams(leftData, overlapData)
	if err := s.files.WriteGOP(pair.vL.Name, pair.pL.Dir, pair.gL.Seq, leftFile); err != nil {
		return res, err
	}
	rightFile := packJointStreams(rightData)
	if err := s.files.WriteGOP(pair.vR.Name, pair.pR.Dir, pair.gR.Seq, rightFile); err != nil {
		return res, err
	}
	leftRef := GOPRef{pair.vL.Name, pair.pL.ID, pair.gL.Seq}
	rightRef := GOPRef{pair.vR.Name, pair.pR.ID, pair.gR.Seq}
	pair.gL.Joint = &GOPJoint{Role: "left", Partner: rightRef, H: h, SplitL: xf, SplitR: xg, Merge: string(merge)}
	pair.gR.Joint = &GOPJoint{Role: "right", Partner: leftRef, H: h, SplitL: xf, SplitR: xg, Merge: string(merge)}
	pair.gL.Bytes = int64(len(leftFile))
	pair.gR.Bytes = int64(len(rightFile))
	// Joint reconstruction changes both GOPs' decoded pixels (merged
	// overlap, re-encode), so the ingest-time summaries are no longer
	// sound bounds; drop them and let Maintain backfill.
	pair.gL.Summary = nil
	pair.gR.Summary = nil
	if err := s.savePhys(pair.vL.Name, pair.pL); err != nil {
		return res, err
	}
	if err := s.savePhys(pair.vR.Name, pair.pR); err != nil {
		return res, err
	}
	res.Compressed = true
	res.BytesAfter = pair.gL.Bytes + pair.gR.Bytes
	res.LeftPSNR = sumL / float64(n)
	res.RightPSNR = sumR / float64(n)
	return res, nil
}

// partitionPair splits one frame pair into left, merged-overlap, and right
// subframes (the `partition` function of Algorithm 1).
func partitionPair(fl, fr *frame.Frame, h vision.Homography, xf, xg int, merge MergeMode) (left, overlap, right *frame.Frame) {
	wL, hL := fl.Width, fl.Height
	wR := fr.Width
	left, _ = fl.Crop(frame.Rect{X0: 0, Y0: 0, X1: xf, Y1: hL})
	ovL, _ := fl.Crop(frame.Rect{X0: xf, Y0: 0, X1: wL, Y1: hL})
	if merge == MergeMean {
		// Project the right frame into left space and average where valid.
		warped, mask := vision.Warp(fr, h, wL, hL)
		for y := 0; y < hL; y++ {
			for x := xf; x < wL; x++ {
				if !mask[y*wL+x] {
					continue
				}
				for c := 0; c < 3; c++ {
					li := (y*ovL.Width + (x - xf)) * 3
					wi := (y*wL + x) * 3
					ovL.Data[li+c] = byte((int(ovL.Data[li+c]) + int(warped.Data[wi+c]) + 1) / 2)
				}
			}
		}
	}
	right, _ = fr.Crop(frame.Rect{X0: xg, Y0: 0, X1: wR, Y1: fr.Height})
	return left, ovL, right
}

// reconstructLeft reassembles the left frame from its two streams.
func reconstructLeft(left, overlap *frame.Frame, w, h int) *frame.Frame {
	out := frame.New(w, h, frame.RGB)
	l := left
	if l.Format != frame.RGB {
		l = l.Convert(frame.RGB)
	}
	o := overlap
	if o.Format != frame.RGB {
		o = o.Convert(frame.RGB)
	}
	out.Paste(l, 0, 0)
	out.Paste(o, l.Width, 0)
	return out
}

// reconstructRight reassembles the right frame: its stored remainder plus
// the overlap warped back through the inverse homography.
func reconstructRight(right, overlap *frame.Frame, hInv vision.Homography, xf, xg, w, h int) *frame.Frame {
	out := frame.New(w, h, frame.RGB)
	r := right
	if r.Format != frame.RGB {
		r = r.Convert(frame.RGB)
	}
	o := overlap
	if o.Format != frame.RGB {
		o = o.Convert(frame.RGB)
	}
	// Place the overlap into a full left-space canvas at column xf, then
	// warp into right space.
	leftSpace := frame.New(xf+o.Width, o.Height, frame.RGB)
	leftSpace.Paste(o, xf, 0)
	warped, mask := vision.Warp(leftSpace, hInv, w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < xg && x < w; x++ {
			i := y*w + x
			if !mask[i] {
				continue
			}
			copy(out.Data[i*3:i*3+3], warped.Data[i*3:i*3+3])
		}
	}
	out.Paste(r, xg, 0)
	return out
}

// packJointStreams frames one or two encoded streams into a single file:
// u32 count, then (u32 length, payload) per stream.
func packJointStreams(streams ...[]byte) []byte {
	total := 4
	for _, s := range streams {
		total += 4 + len(s)
	}
	out := make([]byte, 0, total)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(streams)))
	out = append(out, b4[:]...)
	for _, s := range streams {
		binary.LittleEndian.PutUint32(b4[:], uint32(len(s)))
		out = append(out, b4[:]...)
		out = append(out, s...)
	}
	return out
}

// unpackJointStreams reverses packJointStreams.
func unpackJointStreams(data []byte) ([][]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("core: truncated joint container")
	}
	n := int(binary.LittleEndian.Uint32(data[:4]))
	if n < 1 || n > 4 {
		return nil, fmt.Errorf("core: implausible joint stream count %d", n)
	}
	off := 4
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("core: truncated joint container")
		}
		l := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 4
		if off+l > len(data) {
			return nil, fmt.Errorf("core: truncated joint stream")
		}
		out = append(out, data[off:off+l])
		off += l
	}
	return out, nil
}

// decodeJointSnap reconstructs the frames of a snapshotted jointly
// compressed GOP (either role), reversing the partition applied at
// compression time. Pure function of the snapshot — safe on the worker
// pool. Returns the reconstructed frames, the number of GOP streams
// decoded, and the codec of the primary stream (for per-codec metrics).
func decodeJointSnap(snap gopSnap) ([]*frame.Frame, int, codec.ID, error) {
	j := snap.joint
	data := snap.data
	if lossless.IsCompressed(data) {
		var err error
		if data, err = lossless.Decompress(data); err != nil {
			return nil, 0, "", err
		}
	}
	streams, err := unpackJointStreams(data)
	if err != nil {
		return nil, 0, "", err
	}
	if j.Role == "left" {
		if len(streams) != 2 {
			return nil, 0, "", fmt.Errorf("core: left joint GOP has %d streams", len(streams))
		}
		leftFrames, hd, err := codec.DecodeGOP(streams[0])
		if err != nil {
			return nil, 0, hd.Codec, err
		}
		overlapFrames, _, err := codec.DecodeGOP(streams[1])
		if err != nil {
			return nil, 0, hd.Codec, err
		}
		out := make([]*frame.Frame, len(leftFrames))
		for i := range leftFrames {
			out[i] = reconstructLeft(leftFrames[i], overlapFrames[i], snap.width, snap.height)
		}
		return out, 2, hd.Codec, nil
	}
	// Right role: the overlap stream lives in the partner's file,
	// snapshotted alongside ours.
	partnerData := snap.partner
	if partnerData == nil {
		return nil, 0, "", fmt.Errorf("core: right joint GOP snapshot missing partner stream")
	}
	if lossless.IsCompressed(partnerData) {
		if partnerData, err = lossless.Decompress(partnerData); err != nil {
			return nil, 0, "", err
		}
	}
	partnerStreams, err := unpackJointStreams(partnerData)
	if err != nil {
		return nil, 0, "", err
	}
	if len(partnerStreams) != 2 {
		return nil, 0, "", fmt.Errorf("core: joint partner has %d streams", len(partnerStreams))
	}
	rightFrames, hd, err := codec.DecodeGOP(streams[0])
	if err != nil {
		return nil, 0, hd.Codec, err
	}
	overlapFrames, _, err := codec.DecodeGOP(partnerStreams[1])
	if err != nil {
		return nil, 0, hd.Codec, err
	}
	hInv, err := j.H.Inverse()
	if err != nil {
		return nil, 0, hd.Codec, err
	}
	out := make([]*frame.Frame, len(rightFrames))
	for i := range rightFrames {
		out[i] = reconstructRight(rightFrames[i], overlapFrames[i], hInv, j.SplitL, j.SplitR, snap.width, snap.height)
	}
	return out, 2, hd.Codec, nil
}
