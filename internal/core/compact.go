package core

// This file implements physical video compaction (Section 5.3): pairs of
// cached views with contiguous time ranges and identical spatial/physical
// configurations are merged by hard-linking the GOPs of the second into
// the first, reducing the number of fragments a read must consider.
// Compaction is a single-video mutation and runs under that video's lock.

// CompactVideo merges contiguous same-configuration physical videos of
// one logical video and returns the number of merges performed. Safe for
// concurrent use.
func (s *Store) CompactVideo(video string) (int, error) {
	vs := s.acquire(video)
	if vs == nil {
		return 0, ErrNotFound
	}
	defer vs.mu.Unlock()
	return s.compactLocked(vs)
}

// compactLocked runs merges to a fixed point. Caller holds the video's
// lock.
func (s *Store) compactLocked(vs *videoState) (int, error) {
	merges := 0
	for {
		a, b := s.findCompactablePairLocked(vs)
		if a == nil {
			return merges, nil
		}
		if err := s.mergeLocked(vs, a, b); err != nil {
			return merges, err
		}
		merges++
	}
}

// compatible reports whether two physical videos share a configuration
// that permits merging.
func compatible(a, b *PhysMeta) bool {
	return a.Codec == b.Codec && a.Width == b.Width && a.Height == b.Height &&
		a.FPS == b.FPS && a.Quality == b.Quality && a.PixFmt == b.PixFmt &&
		nrectClose(a.ROI, b.ROI) && !a.Orig && !b.Orig
}

// mergeable further requires plain GOPs: joint-compressed and duplicate
// pages carry cross-video references that a rename would dangle.
func mergeable(p *PhysMeta) bool {
	for i := range p.GOPs {
		if p.GOPs[i].Joint != nil || p.GOPs[i].DupOf != nil {
			return false
		}
	}
	return len(p.GOPs) > 0
}

// findCompactablePairLocked returns (a, b) where b starts exactly where a
// ends, or (nil, nil). Caller holds the video's lock.
func (s *Store) findCompactablePairLocked(vs *videoState) (*PhysMeta, *PhysMeta) {
	for _, a := range vs.phys {
		if !mergeable(a) {
			continue
		}
		aEnd := a.End()
		// a must be internally contiguous: a hole would break the merged
		// frame numbering.
		if len(coverage(a)) != 1 {
			continue
		}
		for _, b := range vs.phys {
			if a.ID == b.ID || !compatible(a, b) || !mergeable(b) {
				continue
			}
			if len(coverage(b)) != 1 {
				continue
			}
			if b.Start > aEnd-timeEps && b.Start < aEnd+timeEps {
				return a, b
			}
		}
	}
	return nil, nil
}

// mergeLocked appends b's GOPs to a via hard links and removes b. Caller
// holds the video's lock.
func (s *Store) mergeLocked(vs *videoState, a, b *PhysMeta) error {
	v := vs.meta
	frameOffset := 0
	for i := range a.GOPs {
		g := &a.GOPs[i]
		if g.StartFrame+g.Frames > frameOffset {
			frameOffset = g.StartFrame + g.Frames
		}
	}
	nextSeq := len(a.GOPs)
	for i := range b.GOPs {
		g := b.GOPs[i]
		if err := s.files.LinkGOP(v.Name, b.Dir, g.Seq, v.Name, a.Dir, nextSeq); err != nil {
			return err
		}
		a.GOPs = append(a.GOPs, GOPMeta{
			Seq:        nextSeq,
			StartFrame: frameOffset + g.StartFrame,
			Frames:     g.Frames,
			Bytes:      g.Bytes,
			Lossless:   g.Lossless,
			LRU:        g.LRU,
		})
		nextSeq++
	}
	// The merged view's quality bound is the weaker of the two.
	if b.MSE > a.MSE {
		a.MSE = b.MSE
	}
	if err := s.savePhys(v.Name, a); err != nil {
		return err
	}
	return s.dropPhysLocked(vs, b)
}
