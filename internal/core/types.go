// Package core implements the VSS storage manager — the paper's primary
// contribution. It coordinates the substrates (codec, catalog, storage,
// index, cost, quality, vision, cluster, smt) to provide the four-operation
// API of Figure 1: create, delete, write, and read over logical videos,
// with spatial, temporal, and physical parameters.
//
// Responsibilities, following the paper:
//
//   - Arrange written video on disk as sequences of independently
//     decodable GOPs (Section 2).
//   - Answer reads from a minimal-cost subset of cached materialized
//     views, selected by a solver over transcode + look-back costs and
//     gated by a PSNR quality model (Section 3).
//   - Cache read results as new physical videos and evict GOP "pages"
//     with the LRU_VSS policy under a per-video storage budget
//     (Section 4).
//   - Reduce storage with joint compression of overlapping streams,
//     deferred lossless compression, and compaction (Section 5).
package core

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/vision"
)

// NRect is a rectangle in normalized [0,1] coordinates relative to the
// full frame of a logical video. Regions of interest are stored normalized
// so they compose across the differing resolutions of physical videos.
type NRect struct {
	X0, Y0, X1, Y1 float64
}

// FullNRect covers the entire frame.
func FullNRect() NRect { return NRect{0, 0, 1, 1} }

// IsFull reports whether the rect covers (essentially) the whole frame.
func (r NRect) IsFull() bool {
	return r.X0 <= 1e-9 && r.Y0 <= 1e-9 && r.X1 >= 1-1e-9 && r.Y1 >= 1-1e-9
}

// Contains reports whether o lies within r (with a small tolerance for
// rounding through pixel space).
func (r NRect) Contains(o NRect) bool {
	const eps = 1e-6
	return r.X0 <= o.X0+eps && r.Y0 <= o.Y0+eps && r.X1 >= o.X1-eps && r.Y1 >= o.Y1-eps
}

// Empty reports whether the rect contains no area.
func (r NRect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Pixels converts the normalized rect to a pixel rect at a resolution.
func (r NRect) Pixels(w, h int) frame.Rect {
	return frame.Rect{
		X0: int(r.X0*float64(w) + 0.5),
		Y0: int(r.Y0*float64(h) + 0.5),
		X1: int(r.X1*float64(w) + 0.5),
		Y1: int(r.Y1*float64(h) + 0.5),
	}
}

// Normalize converts a pixel rect at a resolution into normalized space.
func Normalize(r frame.Rect, w, h int) NRect {
	return NRect{
		X0: float64(r.X0) / float64(w),
		Y0: float64(r.Y0) / float64(h),
		X1: float64(r.X1) / float64(w),
		Y1: float64(r.Y1) / float64(h),
	}
}

// Spatial carries the S parameters of a read or write: output resolution
// and region of interest.
type Spatial struct {
	// Width, Height select the output resolution; zero means the source
	// resolution.
	Width, Height int
	// ROI selects a region of interest in pixel coordinates at the
	// requested resolution; nil means the full frame.
	ROI *frame.Rect
}

// Temporal carries the T parameters: the half-open interval [Start, End)
// in seconds and the output frame rate.
type Temporal struct {
	Start float64
	// End of the interval; <= 0 means the end of the video.
	End float64
	// FPS resamples the output frame rate; zero keeps the source rate.
	FPS int
}

// Physical carries the P parameters: frame layout, compression codec, and
// quality.
type Physical struct {
	// Codec selects the output compression; codec.Raw returns decoded
	// frames.
	Codec codec.ID
	// Format is the pixel layout for raw output (default YUV420).
	Format frame.PixelFormat
	// Quality is the encode quality preset for compressed output
	// (1..100; 0 means codec.DefaultQuality).
	Quality int
	// MinPSNR is the quality cutoff ε: fragments whose expected quality
	// (vs the originally written video) falls below it are not used.
	// Zero means the system default (40 dB, "lossless").
	MinPSNR float64
}

// ReadSpec bundles the parameters of a read operation.
type ReadSpec struct {
	S Spatial
	T Temporal
	P Physical
}

// WriteSpec describes how written frames are to be stored.
type WriteSpec struct {
	FPS     int
	Codec   codec.ID
	Quality int // 0 = codec.DefaultQuality
}

// GOPRef names one stored GOP globally.
type GOPRef struct {
	Video string `json:"video"`
	Phys  int    `json:"phys"`
	Seq   int    `json:"seq"`
}

// GOPJoint records that a GOP participates in joint compression
// (Section 5.1). The left GOP owns the merged overlap stream; the right
// GOP stores only its non-overlapping remainder plus the transform needed
// to recover its overlap from the partner.
type GOPJoint struct {
	Role    string            `json:"role"` // "left" or "right"
	Partner GOPRef            `json:"partner"`
	H       vision.Homography `json:"h"`       // left-frame coords -> right-frame coords
	SplitL  int               `json:"split_l"` // left columns [SplitL, W) are in the overlap stream
	SplitR  int               `json:"split_r"` // right columns [0, SplitR) recover from the overlap
	Merge   string            `json:"merge"`   // "unprojected" or "mean"
}

// GOPMeta is the catalog record for one GOP "page".
type GOPMeta struct {
	Seq        int       `json:"seq"`
	StartFrame int       `json:"start_frame"` // offset within the physical video
	Frames     int       `json:"frames"`
	Bytes      int64     `json:"bytes"`
	Lossless   int       `json:"lossless,omitempty"` // deferred-compression level (0 = plain)
	LRU        int64     `json:"lru"`                // last-use tick
	Joint      *GOPJoint `json:"joint,omitempty"`
	DupOf      *GOPRef   `json:"dup_of,omitempty"` // near-identical duplicate pointer
	// Summary is the GOP's feature summary for predicate-read planning
	// (summary.go). nil means unknown — pre-summary stores, decode-back
	// failures, or GOPs whose decoded bytes were changed by joint
	// compression or duplicate elision; predicate reads decode such GOPs
	// conservatively and Maintain backfills them.
	Summary *GOPSummary `json:"summary,omitempty"`
}

// PhysMeta is the catalog record for a physical video (materialized view).
type PhysMeta struct {
	ID      int               `json:"id"`
	Dir     string            `json:"dir"`
	Width   int               `json:"width"`
	Height  int               `json:"height"`
	FPS     int               `json:"fps"`
	Codec   codec.ID          `json:"codec"`
	PixFmt  frame.PixelFormat `json:"pixfmt"`
	Quality int               `json:"quality"`
	ROI     NRect             `json:"roi"`   // region of the source frame this view covers
	Start   float64           `json:"start"` // position on the logical timeline (seconds)
	MSE     float64           `json:"mse"`   // accumulated MSE bound vs the original
	Orig    bool              `json:"orig"`
	GOPs    []GOPMeta         `json:"gops"`
}

// End returns the end time of the physical video on the logical timeline.
func (p *PhysMeta) End() float64 {
	frames := 0
	for _, g := range p.GOPs {
		if g.StartFrame+g.Frames > frames {
			frames = g.StartFrame + g.Frames
		}
	}
	return p.Start + float64(frames)/float64(p.FPS)
}

// Bytes returns the total stored size of the physical video.
func (p *PhysMeta) Bytes() int64 {
	var total int64
	for _, g := range p.GOPs {
		total += g.Bytes
	}
	return total
}

// gopSpan returns the time interval covered by GOP g.
func (p *PhysMeta) gopSpan(g *GOPMeta) (float64, float64) {
	fps := float64(p.FPS)
	return p.Start + float64(g.StartFrame)/fps, p.Start + float64(g.StartFrame+g.Frames)/fps
}

// VideoMeta is the catalog record for a logical video.
type VideoMeta struct {
	Name     string  `json:"name"`
	Budget   int64   `json:"budget"` // bytes; 0 = unlimited
	NextPhys int     `json:"next_phys"`
	Clock    int64   `json:"clock"` // LRU tick counter
	Original int     `json:"original"`
	FPS      int     `json:"fps"`
	Width    int     `json:"width"`
	Height   int     `json:"height"`
	Duration float64 `json:"duration"`
}

func physKey(video string, id int) string { return fmt.Sprintf("%s/%06d", video, id) }
