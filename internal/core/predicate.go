package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file implements the predicate language of predicate reads — the
// paper's "frames with motion > t over [t0,t1]" analytics queries as a
// first-class read mode. A predicate has two evaluations:
//
//   - Match(FrameInfo): the exact per-frame truth, applied to every
//     frame of every decoded candidate GOP.
//   - CanMatch(*GOPSummary): a sound GOP-level over-approximation
//     consulted by the query planner. CanMatch returns false only when
//     the summary bounds PROVE no frame of the GOP can satisfy the
//     predicate; a nil summary always reports true (conservative full
//     decode).
//
// Grammar (keywords case-insensitive; `and` binds tighter than `or`):
//
//	pred  := or
//	or    := and { "or" and }
//	and   := term { "and" term }
//	term  := "(" pred ")" | cmp
//	cmp   := "motion" relop number
//	       | "count"  relop number
//	       | "color" "~" r "," g "," b [ "<" distance ]
//	relop := "<" | "<=" | ">" | ">=" | "=" | "=="
//
// A color term matches a frame containing at least one detection whose
// dominant color lies within Euclidean distance `distance` (default 50,
// the application-level match threshold) of the queried RGB color.
//
// String renders the canonical form, and ParsePredicate(p.String())
// reproduces p exactly — the round-trip the wire protocol, the response
// cache key, and FuzzPredicateParse all rely on.

// Predicate is a content predicate over video frames. Implementations
// form a closed set (comparisons plus and/or); build one with
// ParsePredicate.
type Predicate interface {
	// Match reports the exact per-frame truth.
	Match(fi FrameInfo) bool
	// CanMatch reports whether any frame of a GOP with this summary
	// could satisfy the predicate. A false result is a proof; nil is
	// always true.
	CanMatch(s *GOPSummary) bool
	// String renders the canonical form ParsePredicate accepts.
	String() string

	// isPredicate keeps the implementation set closed: CanMatch
	// soundness is an invariant of this package, not something callers
	// can extend.
	isPredicate()
}

// relop is a comparison operator.
type relop int

const (
	opLT relop = iota
	opLE
	opGT
	opGE
	opEQ
)

func (o relop) String() string {
	return [...]string{"<", "<=", ">", ">=", "="}[o]
}

// cmp applies the operator to a measured value.
func (o relop) cmp(v, bound float64) bool {
	switch o {
	case opLT:
		return v < bound
	case opLE:
		return v <= bound
	case opGT:
		return v > bound
	case opGE:
		return v >= bound
	default:
		return v == bound
	}
}

// rangeCanMatch reports whether any value in [lo, hi] satisfies `x op
// bound` — the interval test all scalar summary bounds prune through.
func (o relop) rangeCanMatch(lo, hi, bound float64) bool {
	switch o {
	case opLT:
		return lo < bound
	case opLE:
		return lo <= bound
	case opGT:
		return hi > bound
	case opGE:
		return hi >= bound
	default:
		return lo <= bound && bound <= hi
	}
}

// motionPred is `motion relop v`.
type motionPred struct {
	op relop
	v  float64
}

func (p motionPred) Match(fi FrameInfo) bool { return p.op.cmp(fi.Motion, p.v) }
func (p motionPred) CanMatch(s *GOPSummary) bool {
	return s == nil || p.op.rangeCanMatch(s.MinMotion, s.MaxMotion, p.v)
}
func (p motionPred) String() string {
	return fmt.Sprintf("motion %s %s", p.op, formatNum(p.v))
}
func (p motionPred) isPredicate() {}

// countPred is `count relop v`.
type countPred struct {
	op relop
	v  float64
}

func (p countPred) Match(fi FrameInfo) bool { return p.op.cmp(float64(fi.Count()), p.v) }
func (p countPred) CanMatch(s *GOPSummary) bool {
	return s == nil || p.op.rangeCanMatch(float64(s.MinCount), float64(s.MaxCount), p.v)
}
func (p countPred) String() string {
	return fmt.Sprintf("count %s %s", p.op, formatNum(p.v))
}
func (p countPred) isPredicate() {}

// defaultColorDistance is the match threshold when a color term omits
// `< distance` — the same cutoff the traffic-monitor application uses.
const defaultColorDistance = 50

// colorPred is `color ~ r,g,b < dist`: some detection within dist.
type colorPred struct {
	rgb  [3]float64
	dist float64
}

func (p colorPred) Match(fi FrameInfo) bool {
	for _, d := range fi.Detections {
		if ColorDistance(d.Color, p.rgb) <= p.dist {
			return true
		}
	}
	return false
}

func (p colorPred) CanMatch(s *GOPSummary) bool {
	if s == nil {
		return true
	}
	if s.MaxCount == 0 {
		return false // no detections anywhere in the GOP
	}
	// Any occupied histogram cell whose nearest point is within range
	// may hold a matching detection. cellMinDistance lower-bounds the
	// true distance, so skipping requires every cell to be provably out
	// of range.
	for bits, cell := s.ColorBits, uint(0); bits != 0; bits, cell = bits>>1, cell+1 {
		if bits&1 != 0 && cellMinDistance(cell, p.rgb) <= p.dist {
			return true
		}
	}
	return false
}

func (p colorPred) String() string {
	return fmt.Sprintf("color ~ %s,%s,%s < %s",
		formatNum(p.rgb[0]), formatNum(p.rgb[1]), formatNum(p.rgb[2]), formatNum(p.dist))
}
func (p colorPred) isPredicate() {}

// andPred / orPred combine predicates. Both prune soundly: a conjunction
// cannot match a GOP where either side cannot; a disjunction cannot
// match only where neither side can.
type andPred struct{ l, r Predicate }

func (p andPred) Match(fi FrameInfo) bool     { return p.l.Match(fi) && p.r.Match(fi) }
func (p andPred) CanMatch(s *GOPSummary) bool { return p.l.CanMatch(s) && p.r.CanMatch(s) }
func (p andPred) String() string {
	return fmt.Sprintf("%s and %s", parenOr(p.l), parenOr(p.r))
}
func (p andPred) isPredicate() {}

type orPred struct{ l, r Predicate }

func (p orPred) Match(fi FrameInfo) bool     { return p.l.Match(fi) || p.r.Match(fi) }
func (p orPred) CanMatch(s *GOPSummary) bool { return p.l.CanMatch(s) || p.r.CanMatch(s) }
func (p orPred) String() string              { return fmt.Sprintf("%s or %s", p.l, p.r) }
func (p orPred) isPredicate()                {}

// parenOr parenthesizes or-children of an and, preserving precedence in
// the canonical form.
func parenOr(p Predicate) string {
	if _, ok := p.(orPred); ok {
		return "(" + p.String() + ")"
	}
	return p.String()
}

// formatNum renders a number with the shortest exact representation, so
// canonical forms round-trip through the parser bit-for-bit.
func formatNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParsePredicate parses the predicate language. It never panics on any
// input (FuzzPredicateParse pins this), and for every predicate p it
// returns, ParsePredicate(p.String()) reproduces p.
func ParsePredicate(s string) (Predicate, error) {
	p := &predParser{toks: tokenizePred(s)}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok != "" {
		return nil, fmt.Errorf("core: unexpected %q after predicate", tok)
	}
	return pred, nil
}

// tokenizePred splits the input into keywords, operators, and numbers.
func tokenizePred(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '~':
			toks = append(toks, string(c))
			i++
		case c == '<' || c == '>' || c == '=':
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n\r(),~<>=", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

type predParser struct {
	toks []string
	pos  int
}

func (p *predParser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *predParser) next() string {
	tok := p.peek()
	if tok != "" {
		p.pos++
	}
	return tok
}

func (p *predParser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orPred{left, right}
	}
	return left, nil
}

func (p *predParser) parseAnd() (Predicate, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "and") {
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = andPred{left, right}
	}
	return left, nil
}

func (p *predParser) parseTerm() (Predicate, error) {
	switch tok := p.next(); {
	case tok == "(":
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("core: missing ')' in predicate")
		}
		return pred, nil
	case strings.EqualFold(tok, "motion"):
		op, v, err := p.parseCmpTail("motion")
		if err != nil {
			return nil, err
		}
		return motionPred{op, v}, nil
	case strings.EqualFold(tok, "count"):
		op, v, err := p.parseCmpTail("count")
		if err != nil {
			return nil, err
		}
		return countPred{op, v}, nil
	case strings.EqualFold(tok, "color"):
		return p.parseColorTail()
	case tok == "":
		return nil, fmt.Errorf("core: empty predicate")
	default:
		return nil, fmt.Errorf("core: unexpected %q in predicate (want motion, count, color, or '(')", tok)
	}
}

func (p *predParser) parseCmpTail(field string) (relop, float64, error) {
	op, err := parseRelop(p.next())
	if err != nil {
		return 0, 0, fmt.Errorf("core: %s: %w", field, err)
	}
	v, err := p.parseNumber(field)
	if err != nil {
		return 0, 0, err
	}
	return op, v, nil
}

func (p *predParser) parseColorTail() (Predicate, error) {
	if p.next() != "~" {
		return nil, fmt.Errorf("core: color requires '~ r,g,b'")
	}
	var rgb [3]float64
	for ch := 0; ch < 3; ch++ {
		if ch > 0 {
			if p.next() != "," {
				return nil, fmt.Errorf("core: color requires three comma-separated channels")
			}
		}
		v, err := p.parseNumber("color")
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 255 {
			return nil, fmt.Errorf("core: color channel %v out of range [0,255]", v)
		}
		rgb[ch] = v
	}
	dist := float64(defaultColorDistance)
	if p.peek() == "<" {
		p.next()
		v, err := p.parseNumber("color distance")
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("core: negative color distance")
		}
		dist = v
	}
	return colorPred{rgb: rgb, dist: dist}, nil
}

func (p *predParser) parseNumber(field string) (float64, error) {
	tok := p.next()
	if tok == "" {
		return 0, fmt.Errorf("core: %s: missing number", field)
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("core: %s: bad number %q", field, tok)
	}
	return v, nil
}

func parseRelop(tok string) (relop, error) {
	switch tok {
	case "<":
		return opLT, nil
	case "<=":
		return opLE, nil
	case ">":
		return opGT, nil
	case ">=":
		return opGE, nil
	case "=", "==":
		return opEQ, nil
	default:
		return 0, fmt.Errorf("core: bad comparison operator %q", tok)
	}
}
