package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// RestoreCatalog rebuilds the metadata catalog of a store at dir from
// the snapshot a Maintain pass replicated into backend
// (Options.SnapshotCatalog): the disaster-recovery path for a router
// host whose local disk — catalog included — is lost while the GOP bytes
// live on the fleet. After it returns, Open(dir, ...) over the same
// backend serves every video the snapshot knew about; GOPs written after
// the last snapshot are orphans the next scrub reports.
//
// An existing catalog at dir is never overwritten unless force is set:
// restoring an older snapshot over live metadata is itself data loss.
// The store at dir must not be open.
func RestoreCatalog(dir string, backend storage.Backend, force bool) error {
	catDir := filepath.Join(dir, "catalog")
	if !force {
		entries, err := os.ReadDir(catDir)
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("core: restore catalog: %w", err)
		}
		if len(entries) > 0 {
			return fmt.Errorf("core: restore catalog: %s already holds a catalog (use force to overwrite)", catDir)
		}
	}
	data, err := backend.ReadGOP(storage.CatalogSnapshotVideo, storage.CatalogSnapshotDir, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("core: restore catalog: backend holds no catalog snapshot (was the store maintained with SnapshotCatalog?): %w", err)
		}
		return fmt.Errorf("core: restore catalog: %w", err)
	}
	return catalog.Restore(catDir, data)
}
