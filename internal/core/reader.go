package core

import (
	"fmt"
	"math"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/lossless"
	"repro/internal/quality"
)

// ReadStats reports how a read was executed.
type ReadStats struct {
	PlanCost    float64
	PlanRuns    int
	PlanMethod  string
	GOPsDecoded int
	BytesRead   int64
	Admitted    bool // result cached as a new physical video
}

// ReadResult is the answer to a read operation. Raw reads return decoded
// Frames in the requested layout; compressed reads return encoded GOPs.
type ReadResult struct {
	Frames []*frame.Frame
	GOPs   [][]byte
	Width  int // output frame width (of the ROI region)
	Height int
	FPS    int
	Stats  ReadStats
}

// FrameCount returns the number of output frames.
func (r *ReadResult) FrameCount() int {
	if len(r.Frames) > 0 {
		return len(r.Frames)
	}
	n := 0
	for _, g := range r.GOPs {
		if hd, err := codec.DecodeHeader(g); err == nil {
			n += hd.FrameCount
		}
	}
	return n
}

// Read executes a read operation per Section 3: it resolves the request,
// selects a minimal-cost fragment set over the cached materialized views,
// decodes and converts the data, optionally caches the result, and returns
// it in the requested spatial/temporal/physical configuration.
func (s *Store) Read(video string, spec ReadSpec) (*ReadResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.videos[video]
	if !ok {
		return nil, ErrNotFound
	}
	r, err := s.resolve(v, spec)
	if err != nil {
		return nil, err
	}
	// One LRU tick per read operation: every page the read touches shares
	// the same sequence number, so the position and redundancy offsets of
	// LRU_VSS break ties within an operation (Section 4).
	s.tick(v)
	plan, err := s.plan(v, r)
	if err != nil {
		return nil, err
	}

	out := &ReadResult{Width: r.roiW, Height: r.roiH, FPS: r.outFPS}
	out.Stats.PlanCost = plan.Cost
	out.Stats.PlanRuns = plan.Runs
	out.Stats.PlanMethod = plan.Method

	var parentMSE float64
	for _, st := range plan.steps {
		if m := useMSE(st.phys, r); m > parentMSE {
			parentMSE = m
		}
	}

	var frames []*frame.Frame
	var encoded [][]byte
	var mbpp float64
	if r.codec.Compressed() {
		// Mixed execution: runs whose fragment already matches the output
		// configuration are served as stored bitstreams (no decode); only
		// the remainder is transcoded. This is where the planner's cost
		// savings become wall-clock savings (Figures 10 and 12).
		encoded, mbpp, err = s.executeCompressed(v, r, plan, &out.Stats)
		if err != nil {
			return nil, err
		}
		out.GOPs = encoded
	} else {
		frames, err = s.executePlan(v, r, plan, &out.Stats)
		if err != nil {
			return nil, err
		}
		outFmt := frame.PixelFormat(r.pixfmt)
		conv := make([]*frame.Frame, len(frames))
		for i, f := range frames {
			if f.Format == outFmt {
				conv[i] = f
			} else {
				conv[i] = f.Convert(outFmt)
			}
		}
		out.Frames = conv
	}

	if admitted, err := s.admitLocked(v, r, plan, frames, encoded, parentMSE, mbpp); err != nil {
		return nil, err
	} else {
		out.Stats.Admitted = admitted
	}
	if !r.codec.Compressed() {
		// Uncompressed reads drive deferred compression (Section 5.2).
		if err := s.deferredPressureLocked(v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// executeCompressed serves a compressed-output read with mixed execution:
// runs of the plan whose fragment is already in the output configuration
// are emitted as stored bitstreams without decoding (whole aligned GOPs)
// — only run edges and format-mismatched runs pay decode + re-encode.
// This is why VSS's same-format reads stay within a small constant of the
// raw file system (Figure 14), and why a populated cache cuts long-read
// time (Figure 10) rather than only planner cost.
func (s *Store) executeCompressed(v *VideoMeta, r resolvedSpec, plan *Plan, stats *ReadStats) ([][]byte, float64, error) {
	type runSeg struct {
		phys *PhysMeta
		a, b float64
	}
	var runs []runSeg
	for _, st := range plan.steps {
		if n := len(runs); n > 0 && runs[n-1].phys.ID == st.phys.ID {
			runs[n-1].b = st.b
			continue
		}
		runs = append(runs, runSeg{st.phys, st.a, st.b})
	}

	var gops [][]byte
	var totalBytes, totalPixels int64
	var pending []*frame.Frame
	flush := func() error {
		for i := 0; i < len(pending); i += s.opts.GOPFrames {
			j := i + s.opts.GOPFrames
			if j > len(pending) {
				j = len(pending)
			}
			data, _, err := codec.EncodeGOP(pending[i:j], r.codec, r.quality)
			if err != nil {
				return err
			}
			gops = append(gops, data)
			totalBytes += int64(len(data))
			totalPixels += int64(r.roiW * r.roiH * (j - i))
		}
		pending = pending[:0]
		return nil
	}

	touched := map[int]*PhysMeta{}
	for _, rn := range runs {
		p := rn.phys
		touched[p.ID] = p
		if matchesOutput(p, r) {
			fps := float64(p.FPS)
			for i := range p.GOPs {
				g := &p.GOPs[i]
				ga, gb := p.gopSpan(g)
				if gb <= rn.a+timeEps || ga >= rn.b-timeEps {
					continue
				}
				aligned := ga >= rn.a-timeEps && gb <= rn.b+timeEps &&
					g.Joint == nil && g.DupOf == nil && g.Lossless == 0
				if aligned {
					if err := flush(); err != nil {
						return nil, 0, err
					}
					data, err := s.files.ReadGOP(v.Name, p.Dir, g.Seq)
					if err != nil {
						return nil, 0, err
					}
					stats.BytesRead += int64(len(data))
					totalBytes += int64(len(data))
					totalPixels += int64(r.roiW * r.roiH * g.Frames)
					gops = append(gops, data)
					g.LRU = v.Clock
					continue
				}
				// Partial or indirect GOP: decode only the needed frames.
				from := int(math.Round((rn.a - ga) * fps))
				if from < 0 {
					from = 0
				}
				to := g.Frames - int(math.Round((gb-rn.b)*fps))
				if to > g.Frames {
					to = g.Frames
				}
				if to <= from {
					continue
				}
				fr, err := s.decodeGOPRangeLocked(v, p, g, from, to, stats)
				if err != nil {
					return nil, 0, err
				}
				g.LRU = v.Clock
				for _, f := range fr {
					cf, err := s.convertFrame(f, p, r)
					if err != nil {
						return nil, 0, err
					}
					pending = append(pending, cf)
				}
			}
			continue
		}
		// Format mismatch: transcode the run.
		fr, err := s.assembleRun(v, p, rn.a, rn.b, r, stats)
		if err != nil {
			return nil, 0, err
		}
		pending = append(pending, fr...)
	}
	if err := flush(); err != nil {
		return nil, 0, err
	}
	for _, p := range touched {
		if err := s.savePhys(v.Name, p); err != nil {
			return nil, 0, err
		}
	}
	if err := s.saveVideo(v); err != nil {
		return nil, 0, err
	}
	var mbpp float64
	if totalPixels > 0 {
		mbpp = float64(totalBytes) * 8 / float64(totalPixels)
	}
	return gops, mbpp, nil
}

// assembleRun decodes and converts the output frames for one plan run.
func (s *Store) assembleRun(v *VideoMeta, p *PhysMeta, a, b float64, r resolvedSpec, stats *ReadStats) ([]*frame.Frame, error) {
	nOut := int(math.Round((b - a) * float64(r.outFPS)))
	if nOut < 1 {
		nOut = 1
	}
	decoded := make(map[int][]*frame.Frame)
	out := make([]*frame.Frame, 0, nOut)
	for k := 0; k < nOut; k++ {
		tk := a + (float64(k)+0.5)/float64(r.outFPS)
		local := int((tk - p.Start) * float64(p.FPS))
		g := gopContaining(p, local)
		if g == nil {
			return nil, fmt.Errorf("core: no GOP for t=%f in phys %d", tk, p.ID)
		}
		gf, ok := decoded[g.Seq]
		if !ok {
			var err error
			gf, err = s.decodeGOPLocked(v, p, g, stats)
			if err != nil {
				return nil, err
			}
			decoded[g.Seq] = gf
			g.LRU = v.Clock
		}
		idx := local - g.StartFrame
		if idx < 0 {
			idx = 0
		}
		if idx >= len(gf) {
			idx = len(gf) - 1
		}
		f, err := s.convertFrame(gf[idx], p, r)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// executePlan decodes the planned fragments and assembles output frames
// in RGB at the requested ROI resolution (the raw-output path).
func (s *Store) executePlan(v *VideoMeta, r resolvedSpec, plan *Plan, stats *ReadStats) ([]*frame.Frame, error) {
	var out []*frame.Frame
	seen := map[int]bool{}
	for i := 0; i < len(plan.steps); {
		// Group contiguous steps on the same fragment into one run.
		j := i
		for j+1 < len(plan.steps) && plan.steps[j+1].phys.ID == plan.steps[i].phys.ID {
			j++
		}
		st := plan.steps[i]
		fr, err := s.assembleRun(v, st.phys, st.a, plan.steps[j].b, r, stats)
		if err != nil {
			return nil, err
		}
		out = append(out, fr...)
		seen[st.phys.ID] = true
		i = j + 1
	}
	for _, stp := range plan.steps {
		if seen[stp.phys.ID] {
			seen[stp.phys.ID] = false
			if err := s.savePhys(v.Name, stp.phys); err != nil {
				return nil, err
			}
		}
	}
	if err := s.saveVideo(v); err != nil {
		return nil, err
	}
	return out, nil
}

// gopContaining finds the GOP holding a local frame index.
func gopContaining(p *PhysMeta, local int) *GOPMeta {
	for i := range p.GOPs {
		g := &p.GOPs[i]
		if local >= g.StartFrame && local < g.StartFrame+g.Frames {
			return g
		}
	}
	// Tolerate edge rounding: return the last GOP if local is just past
	// the end.
	if n := len(p.GOPs); n > 0 && local >= p.GOPs[n-1].StartFrame {
		return &p.GOPs[n-1]
	}
	return nil
}

// decodeGOPLocked loads and decodes one GOP, resolving duplicate pointers,
// deferred-compression wrappers, and joint-compression reconstruction.
func (s *Store) decodeGOPLocked(v *VideoMeta, p *PhysMeta, g *GOPMeta, stats *ReadStats) ([]*frame.Frame, error) {
	if g.DupOf != nil {
		dv, dp, dg, err := s.resolveRef(*g.DupOf)
		if err != nil {
			return nil, err
		}
		return s.decodeGOPLocked(dv, dp, dg, stats)
	}
	if g.Joint != nil {
		return s.decodeJointGOPLocked(v, p, g, stats)
	}
	data, err := s.files.ReadGOP(v.Name, p.Dir, g.Seq)
	if err != nil {
		return nil, err
	}
	stats.BytesRead += int64(len(data))
	if g.Lossless > 0 || lossless.IsCompressed(data) {
		data, err = lossless.Decompress(data)
		if err != nil {
			return nil, err
		}
	}
	frames, _, err := codec.DecodeGOP(data)
	if err != nil {
		return nil, err
	}
	stats.GOPsDecoded++
	return frames, nil
}

// decodeGOPRangeLocked decodes only frames [from, to) of a GOP, paying the
// real look-back cost for mid-GOP entry. Joint and duplicate GOPs fall
// back to full reconstruction.
func (s *Store) decodeGOPRangeLocked(v *VideoMeta, p *PhysMeta, g *GOPMeta, from, to int, stats *ReadStats) ([]*frame.Frame, error) {
	if g.DupOf != nil || g.Joint != nil {
		frames, err := s.decodeGOPLocked(v, p, g, stats)
		if err != nil {
			return nil, err
		}
		if to < 0 || to > len(frames) {
			to = len(frames)
		}
		if from < 0 || from > to {
			return nil, fmt.Errorf("core: bad GOP range [%d,%d)", from, to)
		}
		return frames[from:to], nil
	}
	data, err := s.files.ReadGOP(v.Name, p.Dir, g.Seq)
	if err != nil {
		return nil, err
	}
	stats.BytesRead += int64(len(data))
	if g.Lossless > 0 || lossless.IsCompressed(data) {
		data, err = lossless.Decompress(data)
		if err != nil {
			return nil, err
		}
	}
	frames, _, err := codec.DecodeRange(data, from, to)
	if err != nil {
		return nil, err
	}
	stats.GOPsDecoded++
	return frames, nil
}

// resolveRef resolves a GOPRef to live metadata.
func (s *Store) resolveRef(ref GOPRef) (*VideoMeta, *PhysMeta, *GOPMeta, error) {
	v, ok := s.videos[ref.Video]
	if !ok {
		return nil, nil, nil, fmt.Errorf("core: dangling GOP ref to video %s", ref.Video)
	}
	p := s.physByID(ref.Video, ref.Phys)
	if p == nil {
		return nil, nil, nil, fmt.Errorf("core: dangling GOP ref to phys %d", ref.Phys)
	}
	for i := range p.GOPs {
		if p.GOPs[i].Seq == ref.Seq {
			return v, p, &p.GOPs[i], nil
		}
	}
	return nil, nil, nil, fmt.Errorf("core: dangling GOP ref to seq %d", ref.Seq)
}

// convertFrame maps a decoded source frame into the requested output
// space: RGB conversion, ROI crop, and resolution resampling.
func (s *Store) convertFrame(src *frame.Frame, p *PhysMeta, r resolvedSpec) (*frame.Frame, error) {
	rgb := src
	if src.Format != frame.RGB {
		rgb = src.Convert(frame.RGB)
	}
	// Map the requested normalized ROI into p's pixel space (p may itself
	// be an ROI view of the source frame).
	pw, ph := float64(p.Width), float64(p.Height)
	rx := (r.roi.X0 - p.ROI.X0) / (p.ROI.X1 - p.ROI.X0)
	ry := (r.roi.Y0 - p.ROI.Y0) / (p.ROI.Y1 - p.ROI.Y0)
	rx1 := (r.roi.X1 - p.ROI.X0) / (p.ROI.X1 - p.ROI.X0)
	ry1 := (r.roi.Y1 - p.ROI.Y0) / (p.ROI.Y1 - p.ROI.Y0)
	crop := frame.Rect{
		X0: int(rx*pw + 0.5), Y0: int(ry*ph + 0.5),
		X1: int(rx1*pw + 0.5), Y1: int(ry1*ph + 0.5),
	}
	if crop.Dx() < 1 {
		crop.X1 = crop.X0 + 1
	}
	if crop.Dy() < 1 {
		crop.Y1 = crop.Y0 + 1
	}
	cropped := rgb
	if crop != frame.FullRect(p.Width, p.Height) {
		var err error
		cropped, err = rgb.Crop(crop)
		if err != nil {
			return nil, err
		}
	}
	if cropped.Width != r.roiW || cropped.Height != r.roiH {
		cropped = cropped.Resize(r.roiW, r.roiH)
	}
	return cropped, nil
}

// encodeOutput packs output frames into GOPs with the requested codec,
// returning the encoded GOPs and the mean bits per pixel.
func (s *Store) encodeOutput(frames []*frame.Frame, r resolvedSpec) ([][]byte, float64, error) {
	var gops [][]byte
	var bytes, pixels int64
	for i := 0; i < len(frames); i += s.opts.GOPFrames {
		j := i + s.opts.GOPFrames
		if j > len(frames) {
			j = len(frames)
		}
		data, st, err := codec.EncodeGOP(frames[i:j], r.codec, r.quality)
		if err != nil {
			return nil, 0, err
		}
		gops = append(gops, data)
		bytes += int64(st.Bytes)
		pixels += int64(r.roiW * r.roiH * (j - i))
	}
	mbpp := float64(bytes) * 8 / float64(pixels)
	return gops, mbpp, nil
}

// estimateStepMSE estimates the quality loss introduced by this read's
// compression step (Section 3.2). The primary estimate is the codec's
// analytic quantizer distortion (our substitute for the vbench-seeded
// MBPP->PSNR table); the sampling-refined estimator serves as a secondary
// signal once enough exact observations accumulate.
func (s *Store) estimateStepMSE(r resolvedSpec, mbpp float64) float64 {
	if !r.codec.Compressed() {
		return 0
	}
	step := codec.ExpectedMSE(r.quality)
	if est := quality.MSEFromPSNR(s.est.Estimate(mbpp)); est > step && s.est.Len() > len(quality.DefaultRatePoints)+4 {
		// The refined estimator has seen enough real samples to override
		// the analytic bound when it reports worse quality.
		step = est
	}
	return step
}

// resampleMSE measures the round-trip error of the resolution change from
// src (a source-resolution RGB frame) to the output resolution.
func resampleMSE(src *frame.Frame, outW, outH int) float64 {
	if src.Width == outW && src.Height == outH {
		return 0
	}
	down := src.Resize(outW, outH)
	back := down.Resize(src.Width, src.Height)
	m, err := quality.MSE(src, back)
	if err != nil {
		return 0
	}
	return m
}
