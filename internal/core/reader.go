package core

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/lossless"
	"repro/internal/obs"
	"repro/internal/quality"
)

// This file implements the read path (Section 3) as a three-phase
// pipeline so concurrent reads of different videos — and the CPU work of
// a single read — run in parallel:
//
//	Phase A (video lock held): resolve the request, pick the minimal-cost
//	  plan, and snapshot the decode RECIPE of every stored GOP the plan
//	  touches (chasing duplicate/joint references through the held lock
//	  set), registering one fetch descriptor per stored GOP to read.
//	Phase B (no locks): an asynchronous IO-prefetch stage reads GOP bytes
//	  from the storage backend ahead of the decode workers (bounded
//	  look-ahead, 2*Workers), overlapping backend IO with decode; the
//	  workers decode, crop/resize/convert, and re-encode on the store's
//	  bounded worker pool, fanning out per GOP and per output chunk and
//	  joining in frame order.
//	Phase C (video lock re-acquired): cache admission, eviction, and
//	  deferred-compression pressure against the video's current state.
//
// Deferring the byte reads out of phase A is what lets disk (or shard)
// IO overlap with compute — the pre-prefetch design read every byte
// synchronously under the video lock. The price is a race: between
// phase A and the fetch, maintenance may evict, jointly compress, or
// lossless-recompress a planned GOP. The prefetch stage detects this
// per GOP (the file is gone, or its size no longer matches the metadata
// snapshot) and falls back to re-snapshotting that one GOP under the
// lock, where metadata is authoritative; Options.DisablePrefetch
// restores the fully-eager phase A. Passthrough GOPs (stored bitstreams
// emitted as-is, no decode) are still snapshotted eagerly in phase A:
// they have no compute to overlap with, and keeping them consistent
// under the lock preserves the byte-identical stream/batch contract.
//
// Phase C revalidates admission against whatever the video looks like
// by then.

// ReadStats reports how a read was executed.
type ReadStats struct {
	PlanCost    float64
	PlanRuns    int
	PlanMethod  string
	GOPsDecoded int
	BytesRead   int64
	Admitted    bool // result cached as a new physical video
}

// ReadResult is the answer to a read operation. Raw reads return decoded
// Frames in the requested layout; compressed reads return encoded GOPs.
type ReadResult struct {
	Frames []*frame.Frame
	GOPs   [][]byte
	Width  int // output frame width (of the ROI region)
	Height int
	FPS    int
	Stats  ReadStats
}

// FrameCount returns the number of output frames.
func (r *ReadResult) FrameCount() int {
	if len(r.Frames) > 0 {
		return len(r.Frames)
	}
	n := 0
	for _, g := range r.GOPs {
		if hd, err := codec.DecodeHeader(g); err == nil {
			n += hd.FrameCount
		}
	}
	return n
}

// physSnap copies the immutable-for-this-read fields of a PhysMeta that
// frame conversion needs, so phase B never touches shared metadata.
type physSnap struct {
	width  int
	height int
	roi    NRect
}

func snapPhys(p *PhysMeta) physSnap {
	return physSnap{width: p.Width, height: p.Height, roi: p.ROI}
}

// gopFetch is one deferred backend read: phase A records the GOP's
// address and expected size under the video lock, the prefetch stage of
// phase B performs the read. ready is closed once data/err is set.
type gopFetch struct {
	video, dir string
	seq        int
	want       int64 // stored size per the metadata snapshot (staleness check)

	ready  chan struct{}
	data   []byte
	err    error
	window chan struct{} // look-ahead tokens, released as fetches are consumed
	bytes  *atomic.Int64 // the read's BytesRead accumulator
}

// wait blocks until the fetch completes (or ctx is cancelled), releases
// the fetch's look-ahead token, and returns the bytes.
func (f *gopFetch) wait(ctx context.Context) ([]byte, error) {
	select {
	case <-f.ready:
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
	select {
	case <-f.window:
	default:
	}
	return f.data, f.err
}

// gopSnap carries the decode recipe of one GOP plus its stored bytes —
// captured eagerly under the video lock in phase A (prefetch disabled,
// passthrough, re-snapshots) or resolved from fetch descriptors by the
// prefetch stage of phase B.
type gopSnap struct {
	data          []byte
	fetch         *gopFetch // non-nil: data arrives via the prefetch stage
	losslessLevel int
	joint         *GOPJoint
	partner       []byte    // partner container bytes for right-role joint GOPs
	partnerFetch  *gopFetch // non-nil: partner arrives via the prefetch stage
	width, height int       // physical resolution (joint reconstruction canvas)
}

// decodeJob is one GOP decode executed on the worker pool. from/to bound
// the returned frames ([from, to); to = -1 means to the end). The batch
// path (executeJob) runs every job eagerly via runJobsPrepared (resolve
// in the prepare hook, decode under the CPU slot); the streaming path
// (ReadStream) decodes lazily through once, on the first unit that needs
// the GOP, and drops frames once refs units have consumed them.
type decodeJob struct {
	snap     gopSnap
	key      jobKey        // identity for the stale-fetch re-snapshot fallback
	bytes    *atomic.Int64 // BytesRead accumulator for re-snapshot reads
	from, to int
	frames   []*frame.Frame
	decoded  int      // GOP streams decoded, for ReadStats
	codecID  codec.ID // codec the bytes decoded through, for per-codec metrics

	once   sync.Once    // streaming: lazy decode guard
	runErr error        // streaming: result of the once'd run
	refs   atomic.Int32 // streaming: units still needing frames
}

func (j *decodeJob) decode(snap gopSnap) error {
	frames, decoded, id, err := decodeSnap(snap, j.from, j.to)
	j.frames, j.decoded, j.codecID = frames, decoded, id
	return err
}

// decodeResolved decodes the resolved snapshot. When the bytes came from
// a prefetched fetch, a decode failure retries once from a fresh
// under-lock snapshot: an in-place rewrite that lands on the same byte
// count slips past fetchStale's size check, and the retry converts that
// razor-thin race into a correct read instead of a spurious decode
// error. Genuine corruption still surfaces — eagerly snapshotted bytes
// never retry, and a retry that decodes no better reports the failure.
func (j *decodeJob) decodeResolved(ctx context.Context, snap gopSnap, s *Store) error {
	err := j.decode(snap)
	if err == nil || (snap.fetch == nil && snap.partnerFetch == nil) {
		return err
	}
	fresh, rerr := s.resnapshotGOP(ctx, j.key, j.bytes)
	if rerr != nil {
		return err // the original decode error, not the retry's
	}
	return j.decode(fresh)
}

// fetchStale reports whether a prefetched read raced a metadata change
// and must be retried under the video lock: the file vanished (eviction
// or compaction won) or its size no longer matches the phase-A snapshot
// (joint compression or deferred lossless rewrote it in place).
func fetchStale(err error, got int, want int64) bool {
	if err != nil {
		return errors.Is(err, fs.ErrNotExist)
	}
	return int64(got) != want
}

// resolve materializes the job's snapshot: wait for the prefetched
// bytes, or — when the fetch proves stale — re-snapshot this one GOP
// under the video lock, which re-resolves its current recipe
// (duplicate/joint/lossless state may all have changed) and reads its
// bytes while nothing can move them.
func (j *decodeJob) resolve(ctx context.Context, s *Store) (gopSnap, error) {
	snap := j.snap
	if snap.fetch != nil {
		data, err := snap.fetch.wait(ctx)
		if err != nil || fetchStale(err, len(data), snap.fetch.want) {
			// Any early exit must consume (and discard) the partner fetch
			// too: its look-ahead token has to return to the window, or a
			// run of failing joint GOPs (a degraded shard erroring with
			// something other than ENOENT) would shrink the window until
			// the fetchers wedge.
			if snap.partnerFetch != nil {
				snap.partnerFetch.wait(ctx) //nolint:errcheck
			}
			if fetchStale(err, len(data), snap.fetch.want) {
				return s.resnapshotGOP(ctx, j.key, j.bytes)
			}
			return gopSnap{}, err
		}
		snap.data = data
	}
	if snap.partnerFetch != nil {
		data, err := snap.partnerFetch.wait(ctx)
		if fetchStale(err, len(data), snap.partnerFetch.want) {
			return s.resnapshotGOP(ctx, j.key, j.bytes)
		}
		if err != nil {
			return gopSnap{}, err
		}
		snap.partner = data
	}
	return snap, nil
}

// frameSrc names one output frame of a transcoded segment: a frame of a
// decoded GOP plus the conversion parameters into output space.
type frameSrc struct {
	job *decodeJob
	idx int // index into job.frames
	p   physSnap
}

// readSeg is one ordered segment of the output: either a stored bitstream
// emitted as-is (mixed execution's no-decode path) or a run of frames to
// transcode.
type readSeg struct {
	pass       []byte // non-nil: passthrough stored GOP (compressed output)
	passFrames int
	srcs       []frameSrc
}

// readJob is the fully snapshotted execution state of one read, handed
// from phase A to phase B.
type readJob struct {
	r         resolvedSpec
	gopFrames int
	jobs      []*decodeJob
	segs      []readSeg
	fetches   []*gopFetch  // backend reads for the prefetch stage, plan order
	bytesRead atomic.Int64 // stored bytes fetched by phase B

	// Phase B outputs.
	outFrames []*frame.Frame // raw path: RGB frames at ROI resolution
	outConv   []*frame.Frame // raw path: frames in the requested layout
	outGOPs   [][]byte       // compressed path
	sampleRef []*frame.Frame // compressed path: source frames of sampleGOP
	sampleGOP []byte         // compressed path: one re-encoded GOP for PSNR sampling
	mbpp      float64
	decoded   int // GOPs decoded
}

// readBuilder accumulates the readJob during phase A, deduplicating
// decode work per stored GOP.
type readBuilder struct {
	s       *Store
	held    map[string]*videoState
	vs      *videoState
	r       resolvedSpec
	stats   *ReadStats
	c       *snapCollector
	jobs    map[jobKey]*decodeJob
	order   []*decodeJob
	segs    []readSeg
	touched map[int]*PhysMeta
}

// snapCollector threads the snapshot policy of one read through
// snapshotGOP: eager reads GOP bytes immediately under the video lock
// (counting into stats — the pre-prefetch behavior, used when prefetch
// is disabled and by stale-fetch re-snapshots); otherwise each stored
// GOP registers a fetch descriptor for the phase-B prefetch stage. ctx
// is the read's request context, carried to eager backend reads
// (cancellation + trace propagation on network backends).
type snapCollector struct {
	ctx     context.Context
	stats   *ReadStats
	eager   bool
	bytes   *atomic.Int64 // phase-B BytesRead accumulator, shared with fetches
	fetches []*gopFetch
}

// fetchFor registers one deferred backend read.
func (c *snapCollector) fetchFor(video, dir string, seq int, want int64) *gopFetch {
	f := &gopFetch{
		video: video, dir: dir, seq: seq, want: want,
		ready: make(chan struct{}), bytes: c.bytes,
	}
	c.fetches = append(c.fetches, f)
	return f
}

type jobKey struct {
	video    string
	phys     int
	seq      int
	from, to int
}

// Read executes a read operation per Section 3: it resolves the request,
// selects a minimal-cost fragment set over the cached materialized views,
// decodes and converts the data in parallel on the worker pool, optionally
// caches the result, and returns it in the requested spatial/temporal/
// physical configuration. Safe for concurrent use; reads of different
// videos do not serialize.
func (s *Store) Read(video string, spec ReadSpec) (*ReadResult, error) {
	return s.ReadContext(context.Background(), video, spec)
}

// ReadContext is Read with cancellation: when ctx is cancelled the read's
// remaining decode/convert/encode work is abandoned promptly (workers stop
// between GOP-granular tasks) and the context's error is returned. An
// already-cancelled context performs no decode work at all. Cancellation
// after the compute phase does not interrupt cache admission, which is
// metadata-only and must not be torn.
func (s *Store) ReadContext(ctx context.Context, video string, spec ReadSpec) (*ReadResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	out, err := s.readOnce(ctx, video, spec, s.opts.DisablePrefetch)
	if errors.Is(err, errDanglingRef) && !s.opts.DisablePrefetch {
		// The prefetch stage lost a race the eager design could not lose:
		// a planned GOP was evicted (and is not merely rewritten) between
		// phase A and its fetch. The video itself is intact — a fresh
		// plan reads it from the surviving views — so retry once with the
		// pre-prefetch eager snapshot, which reads every byte under the
		// lock and is immune by construction.
		return s.readOnce(ctx, video, spec, true)
	}
	return out, err
}

// readOnce runs one full read attempt (phases A, B, C). eager selects
// the under-lock byte snapshot instead of the prefetch stage.
func (s *Store) readOnce(ctx context.Context, video string, spec ReadSpec, eager bool) (*ReadResult, error) {
	var (
		out       *ReadResult
		job       *readJob
		fragIDs   []int
		parentMSE float64
		vsA       *videoState // generation witness for phase C
	)
	// Phase A under the video lock (expanding to partner videos when the
	// plan touches duplicate/joint GOPs).
	planStart := time.Now()
	err := s.withVideos([]string{video}, func(held map[string]*videoState) error {
		var err error
		vsA = held[video]
		out, job, fragIDs, parentMSE, err = s.prepareRead(ctx, held, held[video], spec, eager)
		return err
	})
	obs.Observe(ctx, s.pipe, obs.StagePlan, time.Since(planStart))
	if err != nil {
		return nil, err
	}

	// Phase B: IO prefetch + CPU-heavy decode/convert/encode, no locks
	// held.
	if err := s.executeJob(ctx, job); err != nil {
		return nil, err
	}
	out.Stats.GOPsDecoded += job.decoded
	out.Stats.BytesRead += job.bytesRead.Load()
	r := job.r
	if r.codec.Compressed() {
		out.GOPs = job.outGOPs
	} else {
		out.Frames = job.outConv
	}

	// Phase C: admission and maintenance against the video's current
	// state. The video may have been deleted — or deleted and recreated
	// under the same name — while we computed; in either case the data we
	// read is not this video's anymore, so skip admission but still
	// return it.
	vs := s.acquire(video)
	if vs == nil {
		return out, nil
	}
	defer vs.mu.Unlock()
	if vs != vsA {
		return out, nil
	}
	admitStart := time.Now()
	admitted, err := s.admitLocked(vs, job, fragIDs, parentMSE)
	obs.Observe(ctx, s.pipe, obs.StageCacheAdmit, time.Since(admitStart))
	if err != nil {
		return nil, err
	}
	out.Stats.Admitted = admitted
	if !r.codec.Compressed() {
		// Uncompressed reads drive deferred compression (Section 5.2).
		if err := s.deferredPressureLocked(vs); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// withVideos runs fn with the named videos locked (sorted order),
// expanding the lock set and retrying when fn chases a duplicate/joint
// reference into a video outside the set. Primary videos must exist;
// referenced videos that do not exist surface as dangling-ref errors.
func (s *Store) withVideos(primary []string, fn func(held map[string]*videoState) error) error {
	need := make(map[string]bool, len(primary))
	for _, n := range primary {
		need[n] = true
	}
	for {
		held := s.acquireSet(need)
		var err error
		for _, n := range primary {
			if held[n] == nil {
				err = ErrNotFound
			}
		}
		if err == nil {
			err = fn(held)
		}
		s.releaseSet(held)
		if nv, ok := err.(errVideosNeeded); ok {
			progress := false
			for _, n := range nv.names {
				if !need[n] {
					need[n] = true
					progress = true
				}
			}
			if progress {
				continue
			}
			return fmt.Errorf("%w into missing video %v", errDanglingRef, nv.names)
		}
		return err
	}
}

// prepareRead is phase A: plan the read and snapshot everything phase B
// needs (byte reads included when eager, fetch descriptors otherwise).
// Caller holds the locks in held, which must include vs. ctx reaches
// eager backend reads only — phase A itself is not cancellable
// mid-plan (its metadata writes must not be torn).
func (s *Store) prepareRead(ctx context.Context, held map[string]*videoState, vs *videoState, spec ReadSpec, eager bool) (*ReadResult, *readJob, []int, float64, error) {
	v := vs.meta
	r, err := s.resolve(v, spec)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	// One LRU tick per read operation: every page the read touches shares
	// the same sequence number, so the position and redundancy offsets of
	// LRU_VSS break ties within an operation (Section 4).
	s.tick(v)
	plan, err := s.plan(vs, r)
	if err != nil {
		return nil, nil, nil, 0, err
	}

	out := &ReadResult{Width: r.roiW, Height: r.roiH, FPS: r.outFPS}
	out.Stats.PlanCost = plan.Cost
	out.Stats.PlanRuns = plan.Runs
	out.Stats.PlanMethod = plan.Method

	var parentMSE float64
	for _, st := range plan.steps {
		if m := useMSE(st.phys, r); m > parentMSE {
			parentMSE = m
		}
	}

	job := &readJob{r: r, gopFrames: s.opts.GOPFrames}
	b := &readBuilder{
		s: s, held: held, vs: vs, r: r, stats: &out.Stats,
		c:       &snapCollector{ctx: ctx, stats: &out.Stats, eager: eager, bytes: &job.bytesRead},
		jobs:    make(map[jobKey]*decodeJob),
		touched: make(map[int]*PhysMeta),
	}
	if r.codec.Compressed() {
		err = b.buildCompressed(plan)
	} else {
		err = b.buildRaw(plan)
	}
	if err != nil {
		return nil, nil, nil, 0, err
	}
	// Persist the LRU touches made while building the snapshot.
	for _, p := range b.touched {
		if err := s.savePhys(v.Name, p); err != nil {
			return nil, nil, nil, 0, err
		}
	}
	if err := s.saveVideo(v); err != nil {
		return nil, nil, nil, 0, err
	}
	job.jobs, job.segs, job.fetches = b.order, b.segs, b.c.fetches
	return out, job, plan.Fragments(), parentMSE, nil
}

// jobFor returns the (deduplicated) decode job for frames [from, to) of a
// stored GOP, snapshotting its bytes on first use.
func (b *readBuilder) jobFor(vs *videoState, p *PhysMeta, g *GOPMeta, from, to int) (*decodeJob, error) {
	key := jobKey{vs.meta.Name, p.ID, g.Seq, from, to}
	if j, ok := b.jobs[key]; ok {
		return j, nil
	}
	snap, err := b.s.snapshotGOP(b.held, vs, p, g, b.c)
	if err != nil {
		return nil, err
	}
	j := &decodeJob{snap: snap, key: key, bytes: b.c.bytes, from: from, to: to}
	b.jobs[key] = j
	b.order = append(b.order, j)
	return j, nil
}

// appendSrcs merges transcoded frames into the trailing transcode
// segment, mirroring the original pending-frame accumulation across runs.
func (b *readBuilder) appendSrcs(srcs []frameSrc) {
	if len(srcs) == 0 {
		return
	}
	if n := len(b.segs); n > 0 && b.segs[n-1].pass == nil {
		b.segs[n-1].srcs = append(b.segs[n-1].srcs, srcs...)
		return
	}
	b.segs = append(b.segs, readSeg{srcs: srcs})
}

// buildCompressed plans mixed execution for compressed output: runs of
// the plan whose fragment is already in the output configuration are
// emitted as stored bitstreams without decoding (whole aligned GOPs) —
// only run edges and format-mismatched runs pay decode + re-encode. This
// is why VSS's same-format reads stay within a small constant of the raw
// file system (Figure 14), and why a populated cache cuts long-read time
// (Figure 10) rather than only planner cost.
func (b *readBuilder) buildCompressed(plan *Plan) error {
	type runSeg struct {
		phys *PhysMeta
		a, b float64
	}
	var runs []runSeg
	for _, st := range plan.steps {
		if n := len(runs); n > 0 && runs[n-1].phys.ID == st.phys.ID {
			runs[n-1].b = st.b
			continue
		}
		runs = append(runs, runSeg{st.phys, st.a, st.b})
	}

	v := b.vs.meta
	for _, rn := range runs {
		p := rn.phys
		b.touched[p.ID] = p
		if !matchesOutput(p, b.r) {
			// Format mismatch: transcode the run.
			srcs, err := b.runSrcs(p, rn.a, rn.b)
			if err != nil {
				return err
			}
			b.appendSrcs(srcs)
			continue
		}
		fps := float64(p.FPS)
		for i := range p.GOPs {
			g := &p.GOPs[i]
			ga, gb := p.gopSpan(g)
			if gb <= rn.a+timeEps || ga >= rn.b-timeEps {
				continue
			}
			aligned := ga >= rn.a-timeEps && gb <= rn.b+timeEps &&
				g.Joint == nil && g.DupOf == nil && g.Lossless == 0
			if aligned {
				data, err := b.s.readGOP(b.c.ctx, v.Name, p.Dir, g.Seq, g.Bytes)
				if err != nil {
					return err
				}
				b.stats.BytesRead += int64(len(data))
				b.segs = append(b.segs, readSeg{pass: data, passFrames: g.Frames})
				g.LRU = v.Clock
				continue
			}
			// Partial or indirect GOP: decode only the needed frames.
			from := int(math.Round((rn.a - ga) * fps))
			if from < 0 {
				from = 0
			}
			to := g.Frames - int(math.Round((gb-rn.b)*fps))
			if to > g.Frames {
				to = g.Frames
			}
			if to <= from {
				continue
			}
			job, err := b.jobFor(b.vs, p, g, from, to)
			if err != nil {
				return err
			}
			g.LRU = v.Clock
			srcs := make([]frameSrc, 0, to-from)
			for k := 0; k < to-from; k++ {
				srcs = append(srcs, frameSrc{job: job, idx: k, p: snapPhys(p)})
			}
			b.appendSrcs(srcs)
		}
	}
	return nil
}

// buildRaw plans the raw-output path: every planned run is transcoded.
func (b *readBuilder) buildRaw(plan *Plan) error {
	for i := 0; i < len(plan.steps); {
		// Group contiguous steps on the same fragment into one run.
		j := i
		for j+1 < len(plan.steps) && plan.steps[j+1].phys.ID == plan.steps[i].phys.ID {
			j++
		}
		st := plan.steps[i]
		b.touched[st.phys.ID] = st.phys
		srcs, err := b.runSrcs(st.phys, st.a, plan.steps[j].b)
		if err != nil {
			return err
		}
		b.appendSrcs(srcs)
		i = j + 1
	}
	return nil
}

// runSrcs maps one plan run to frame sources: for each output frame it
// locates the covering GOP, registers a (deduplicated) full-GOP decode
// job, and records the frame index plus conversion parameters.
func (b *readBuilder) runSrcs(p *PhysMeta, a, bEnd float64) ([]frameSrc, error) {
	r := b.r
	nOut := int(math.Round((bEnd - a) * float64(r.outFPS)))
	if nOut < 1 {
		nOut = 1
	}
	v := b.vs.meta
	srcs := make([]frameSrc, 0, nOut)
	for k := 0; k < nOut; k++ {
		tk := a + (float64(k)+0.5)/float64(r.outFPS)
		local := int((tk - p.Start) * float64(p.FPS))
		g := gopContaining(p, local)
		if g == nil {
			return nil, fmt.Errorf("core: no GOP for t=%f in phys %d", tk, p.ID)
		}
		job, err := b.jobFor(b.vs, p, g, 0, -1)
		if err != nil {
			return nil, err
		}
		g.LRU = v.Clock
		idx := local - g.StartFrame
		if idx < 0 {
			idx = 0
		}
		if idx >= g.Frames {
			idx = g.Frames - 1
		}
		srcs = append(srcs, frameSrc{job: job, idx: idx, p: snapPhys(p)})
	}
	return srcs, nil
}

// snapshotGOP captures the decode recipe of one GOP, resolving duplicate
// pointers and joint partners through the held lock set. Bytes are read
// immediately (eager collector) or registered as fetch descriptors for
// the prefetch stage. Returns errVideosNeeded when a reference escapes
// the set.
func (s *Store) snapshotGOP(held map[string]*videoState, vs *videoState, p *PhysMeta, g *GOPMeta, c *snapCollector) (gopSnap, error) {
	if g.DupOf != nil {
		dvs, dp, dg, err := resolveRefIn(held, *g.DupOf)
		if err != nil {
			return gopSnap{}, err
		}
		return s.snapshotGOP(held, dvs, dp, dg, c)
	}
	// For right-role joint GOPs, resolve the partner BEFORE any IO so a
	// missing lock costs nothing.
	var partnerP *PhysMeta
	var partnerG *GOPMeta
	if g.Joint != nil && g.Joint.Role == "right" {
		var err error
		_, partnerP, partnerG, err = resolveRefIn(held, g.Joint.Partner)
		if err != nil {
			return gopSnap{}, err
		}
	}
	snap := gopSnap{losslessLevel: g.Lossless, width: p.Width, height: p.Height}
	if c.eager {
		data, err := s.readGOP(c.ctx, vs.meta.Name, p.Dir, g.Seq, g.Bytes)
		if err != nil {
			return gopSnap{}, err
		}
		c.stats.BytesRead += int64(len(data))
		snap.data = data
	} else {
		snap.fetch = c.fetchFor(vs.meta.Name, p.Dir, g.Seq, g.Bytes)
	}
	if g.Joint != nil {
		j := *g.Joint
		snap.joint = &j
		if partnerP != nil {
			if c.eager {
				pdata, err := s.readGOP(c.ctx, j.Partner.Video, partnerP.Dir, j.Partner.Seq, partnerG.Bytes)
				if err != nil {
					return gopSnap{}, err
				}
				c.stats.BytesRead += int64(len(pdata))
				snap.partner = pdata
			} else {
				snap.partnerFetch = c.fetchFor(j.Partner.Video, partnerP.Dir, j.Partner.Seq, partnerG.Bytes)
			}
		}
	}
	return snap, nil
}

// resnapshotGOP re-snapshots one GOP under its video's lock after the
// prefetch stage found the stored bytes changed identity between
// planning and fetch (evicted, jointly compressed, or lossless-
// recompressed). The job key addresses the GOP as the plan saw it;
// duplicate and joint references are re-chased from current metadata,
// so the returned snapshot is internally consistent whatever happened
// in between. A GOP that is truly gone surfaces as a dangling-ref error.
func (s *Store) resnapshotGOP(ctx context.Context, key jobKey, bytes *atomic.Int64) (gopSnap, error) {
	var snap gopSnap
	var stats ReadStats
	c := &snapCollector{ctx: ctx, stats: &stats, eager: true}
	err := s.withVideos([]string{key.video}, func(held map[string]*videoState) error {
		vs := held[key.video]
		p := vs.byID(key.phys)
		if p == nil {
			return fmt.Errorf("%w: phys %d of %s", errDanglingRef, key.phys, key.video)
		}
		g := findGOP(p, key.seq)
		if g == nil {
			return fmt.Errorf("%w: seq %d of %s/%d", errDanglingRef, key.seq, key.video, key.phys)
		}
		var err error
		snap, err = s.snapshotGOP(held, vs, p, g, c)
		return err
	})
	if err != nil {
		return gopSnap{}, err
	}
	if bytes != nil {
		bytes.Add(stats.BytesRead)
	}
	return snap, nil
}

// startPrefetch launches the asynchronous IO stage of phase B: fetchers
// issue backend reads in plan order, running at most 2*Workers fetched-
// but-unconsumed GOPs ahead of the decode workers — the same look-ahead
// discipline that bounds streaming reads. Fetchers need no CPU-pool
// slot (they only block on IO), so backend reads overlap decode work
// slot-for-slot. They exit when every fetch is issued or ctx is
// cancelled; waiters observe cancellation through their own ctx select,
// so no fetch is ever waited on forever.
func (s *Store) startPrefetch(ctx context.Context, fetches []*gopFetch) {
	if len(fetches) == 0 {
		return
	}
	window := make(chan struct{}, 2*s.opts.Workers)
	for _, f := range fetches {
		f.window = window
	}
	workers := s.opts.Workers
	if workers > len(fetches) {
		workers = len(fetches)
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fetches) {
					return
				}
				f := fetches[i]
				select {
				case window <- struct{}{}:
				case <-ctx.Done():
					f.err = context.Cause(ctx)
					close(f.ready)
					return
				}
				f.data, f.err = s.readGOP(ctx, f.video, f.dir, f.seq, f.want)
				if f.err == nil && f.bytes != nil {
					f.bytes.Add(int64(len(f.data)))
				}
				close(f.ready)
			}
		}()
	}
}

// decodeSnap decodes frames [from, to) of a snapshotted GOP. It is a pure
// function of the snapshot — callable without any lock. The returned ID is
// the codec the stored bytes actually decoded through (which per-codec
// pipeline metrics attribute time to); it can differ from the physical
// video's nominal codec when the deferred tier has rewritten a raw GOP
// through the fast lossless codec.
func decodeSnap(snap gopSnap, from, to int) ([]*frame.Frame, int, codec.ID, error) {
	if snap.joint != nil {
		frames, decoded, id, err := decodeJointSnap(snap)
		if err != nil {
			return nil, decoded, id, err
		}
		if to < 0 || to > len(frames) {
			to = len(frames)
		}
		if from < 0 || from > to {
			return nil, decoded, id, fmt.Errorf("core: bad GOP range [%d,%d)", from, to)
		}
		return frames[from:to], decoded, id, nil
	}
	data := snap.data
	// Deferred-lossless state is sniffed from the bytes, not the metadata
	// level: flate-era entries carry the VSL1 block framing, while GOPs the
	// deferred tier rewrote through the ls codec are plain containers that
	// decode directly.
	if lossless.IsCompressed(data) {
		var err error
		data, err = lossless.Decompress(data)
		if err != nil {
			return nil, 0, "", err
		}
	}
	frames, hd, err := codec.DecodeRange(data, from, to)
	if err != nil {
		return nil, 0, hd.Codec, err
	}
	return frames, 1, hd.Codec, nil
}

// executeJob is phase B: run every decode job on the worker pool, convert
// each output frame into the requested space, and (for compressed output)
// re-encode — all outside any lock, joined in frame order. Cancelling ctx
// stops workers between tasks; see runJobs for the first-error-wins
// contract.
func (s *Store) executeJob(ctx context.Context, job *readJob) error {
	// 0. Launch the IO-prefetch stage ahead of the decode workers; the
	// deferred cancel tears the fetchers down if decode fails early.
	dctx := ctx
	if len(job.fetches) > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithCancel(ctx)
		defer cancel()
		s.startPrefetch(dctx, job.fetches)
	}

	// 1. Decode every needed GOP in parallel. The fetch wait runs in the
	// prepare hook — outside the task's CPU slot — so a decode stalled on
	// backend IO never occupies the pool (the same discipline the
	// streaming path applies before acquireSlot).
	snaps := make([]gopSnap, len(job.jobs))
	if err := s.runJobsPrepared(dctx, len(job.jobs),
		func(i int) error {
			var err error
			snaps[i], err = job.jobs[i].resolve(dctx, s)
			return err
		},
		func(i int) error {
			start := time.Now()
			err := job.jobs[i].decodeResolved(dctx, snaps[i], s)
			obs.ObserveCodec(ctx, s.pipe, obs.StageDecode, string(job.jobs[i].codecID), time.Since(start))
			return err
		},
	); err != nil {
		return err
	}
	for _, j := range job.jobs {
		job.decoded += j.decoded
	}

	// 2. Convert every transcoded frame in parallel.
	type convTask struct{ seg, i int }
	var tasks []convTask
	for si := range job.segs {
		for i := range job.segs[si].srcs {
			tasks = append(tasks, convTask{si, i})
		}
	}
	converted := make([][]*frame.Frame, len(job.segs))
	for si := range job.segs {
		converted[si] = make([]*frame.Frame, len(job.segs[si].srcs))
	}
	if err := s.runJobs(ctx, len(tasks), func(ti int) error {
		t := tasks[ti]
		src := job.segs[t.seg].srcs[t.i]
		if len(src.job.frames) == 0 {
			return fmt.Errorf("core: decoded GOP is empty")
		}
		idx := src.idx
		if idx >= len(src.job.frames) {
			idx = len(src.job.frames) - 1
		}
		f, err := convertFrame(src.job.frames[idx], src.p, job.r)
		if err != nil {
			return err
		}
		converted[t.seg][t.i] = f
		return nil
	}); err != nil {
		return err
	}

	if !job.r.codec.Compressed() {
		return s.assembleRaw(ctx, job, converted)
	}
	return s.assembleCompressed(ctx, job, converted)
}

// assembleRaw joins converted frames in order and produces the output in
// the requested pixel layout (conversion parallelized per frame).
func (s *Store) assembleRaw(ctx context.Context, job *readJob, converted [][]*frame.Frame) error {
	var frames []*frame.Frame
	for si := range converted {
		frames = append(frames, converted[si]...)
	}
	job.outFrames = frames
	outFmt := frame.PixelFormat(job.r.pixfmt)
	conv := make([]*frame.Frame, len(frames))
	if err := s.runJobs(ctx, len(frames), func(i int) error {
		if frames[i].Format == outFmt {
			conv[i] = frames[i]
		} else {
			conv[i] = frames[i].Convert(outFmt)
		}
		return nil
	}); err != nil {
		return err
	}
	job.outConv = conv
	return nil
}

// assembleCompressed interleaves passthrough bitstreams with re-encoded
// frame runs, encoding output GOPs in parallel and preserving order.
func (s *Store) assembleCompressed(ctx context.Context, job *readJob, converted [][]*frame.Frame) error {
	r := job.r
	type encodeChunk struct {
		frames []*frame.Frame
		outPos int
	}
	var (
		chunks  []encodeChunk
		outGOPs [][]byte
		pending []*frame.Frame
	)
	var totalBytes, totalPixels int64
	flush := func() {
		for i := 0; i < len(pending); i += job.gopFrames {
			j := i + job.gopFrames
			if j > len(pending) {
				j = len(pending)
			}
			chunks = append(chunks, encodeChunk{frames: pending[i:j], outPos: len(outGOPs)})
			outGOPs = append(outGOPs, nil)
		}
		pending = nil
	}
	for si := range job.segs {
		seg := &job.segs[si]
		if seg.pass != nil {
			flush()
			outGOPs = append(outGOPs, seg.pass)
			totalBytes += int64(len(seg.pass))
			totalPixels += int64(r.roiW * r.roiH * seg.passFrames)
			continue
		}
		pending = append(pending, converted[si]...)
	}
	flush()

	sizes := make([]int64, len(chunks))
	if err := s.runJobs(ctx, len(chunks), func(i int) error {
		start := time.Now()
		data, _, err := codec.EncodeGOP(chunks[i].frames, r.codec, r.quality)
		obs.ObserveCodec(ctx, s.pipe, obs.StageEncode, string(r.codec), time.Since(start))
		if err != nil {
			return err
		}
		outGOPs[chunks[i].outPos] = data
		sizes[i] = int64(len(data))
		return nil
	}); err != nil {
		return err
	}
	for i, c := range chunks {
		totalBytes += sizes[i]
		totalPixels += int64(r.roiW * r.roiH * len(c.frames))
	}
	job.outGOPs = outGOPs
	if len(chunks) > 0 {
		// Keep one (source frames, encoded GOP) pair so admission can
		// periodically measure exact PSNR and refine the MBPP->PSNR
		// estimator (Section 3.2). Passthrough GOPs have no reference.
		job.sampleRef = chunks[0].frames
		job.sampleGOP = outGOPs[chunks[0].outPos]
	}
	if totalPixels > 0 {
		job.mbpp = float64(totalBytes) * 8 / float64(totalPixels)
	}
	return nil
}

// gopContaining finds the GOP holding a local frame index.
func gopContaining(p *PhysMeta, local int) *GOPMeta {
	for i := range p.GOPs {
		g := &p.GOPs[i]
		if local >= g.StartFrame && local < g.StartFrame+g.Frames {
			return g
		}
	}
	// Tolerate edge rounding: return the last GOP if local is just past
	// the end.
	if n := len(p.GOPs); n > 0 && local >= p.GOPs[n-1].StartFrame {
		return &p.GOPs[n-1]
	}
	return nil
}

// convertFrame maps a decoded source frame into the requested output
// space: RGB conversion, ROI crop, and resolution resampling. Pure
// function — safe on the worker pool.
func convertFrame(src *frame.Frame, p physSnap, r resolvedSpec) (*frame.Frame, error) {
	rgb := src
	if src.Format != frame.RGB {
		rgb = src.Convert(frame.RGB)
	}
	// Map the requested normalized ROI into p's pixel space (p may itself
	// be an ROI view of the source frame).
	pw, ph := float64(p.width), float64(p.height)
	rx := (r.roi.X0 - p.roi.X0) / (p.roi.X1 - p.roi.X0)
	ry := (r.roi.Y0 - p.roi.Y0) / (p.roi.Y1 - p.roi.Y0)
	rx1 := (r.roi.X1 - p.roi.X0) / (p.roi.X1 - p.roi.X0)
	ry1 := (r.roi.Y1 - p.roi.Y0) / (p.roi.Y1 - p.roi.Y0)
	crop := frame.Rect{
		X0: int(rx*pw + 0.5), Y0: int(ry*ph + 0.5),
		X1: int(rx1*pw + 0.5), Y1: int(ry1*ph + 0.5),
	}
	if crop.Dx() < 1 {
		crop.X1 = crop.X0 + 1
	}
	if crop.Dy() < 1 {
		crop.Y1 = crop.Y0 + 1
	}
	cropped := rgb
	if crop != frame.FullRect(p.width, p.height) {
		var err error
		cropped, err = rgb.Crop(crop)
		if err != nil {
			return nil, err
		}
	}
	if cropped.Width != r.roiW || cropped.Height != r.roiH {
		cropped = cropped.Resize(r.roiW, r.roiH)
	}
	return cropped, nil
}

// estimateStepMSE estimates the quality loss introduced by this read's
// compression step (Section 3.2). The primary estimate is the codec's
// analytic quantizer distortion (our substitute for the vbench-seeded
// MBPP->PSNR table); the sampling-refined estimator serves as a secondary
// signal once enough exact observations accumulate.
func (s *Store) estimateStepMSE(r resolvedSpec, mbpp float64) float64 {
	if !r.codec.Compressed() {
		return 0
	}
	step := codec.ExpectedMSE(r.quality)
	if est := quality.MSEFromPSNR(s.est.Estimate(mbpp)); est > step && s.est.Len() > len(quality.DefaultRatePoints)+4 {
		// The refined estimator has seen enough real samples to override
		// the analytic bound when it reports worse quality.
		step = est
	}
	return step
}

// resampleMSE measures the round-trip error of the resolution change from
// src (a source-resolution RGB frame) to the output resolution.
func resampleMSE(src *frame.Frame, outW, outH int) float64 {
	if src.Width == outW && src.Height == outH {
		return 0
	}
	down := src.Resize(outW, outH)
	back := down.Resize(src.Width, src.Height)
	m, err := quality.MSE(src, back)
	if err != nil {
		return 0
	}
	return m
}
