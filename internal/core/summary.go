package core

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/detect"
	"repro/internal/frame"
)

// This file implements the per-GOP feature summaries behind predicate
// reads: at ingest the encode workers analyze each GOP's reconstructed
// frames (motion energy, vehicle detections, dominant colors) and persist
// a small summary next to the GOP's catalog record. At query time the
// planner consults the summary bounds to skip GOPs that provably cannot
// contain a matching frame — the incremental-view-maintenance idea of
// answering queries from write-time state instead of rescanning.
//
// Soundness contract: every bound in a GOPSummary is computed from the
// SAME per-frame analysis (analyzeRGB) that exact predicate evaluation
// uses at query time, over the SAME reconstructed pixels a query decodes.
// Summaries are therefore exact over-approximations — a predicate pruned
// by summary bounds is false on every frame of the GOP. Any transform
// that can change a GOP's decoded bytes (joint compression, duplicate
// elision) clears its summary; Maintain backfills cleared or pre-summary
// GOPs incrementally, and a GOP without a summary is never pruned.

// Detection is one detected vehicle: its bounding box and dominant color.
type Detection = detect.Detection

// ColorDistance is the Euclidean distance between two RGB colors, the
// metric predicate color terms use.
func ColorDistance(c, query [3]float64) float64 { return detect.ColorDistance(c, query) }

// FrameInfo is the per-frame content record predicates evaluate against.
type FrameInfo struct {
	// Motion is the mean absolute per-byte difference between this
	// frame and the previous frame of its GOP, measured in RGB space
	// (0..255). The first frame of every GOP has Motion 0: summaries
	// must be recomputable from a single GOP's bytes, so motion never
	// reaches across a GOP boundary.
	Motion float64
	// Detections are the frame's detected vehicles, in detect.Vehicles
	// order (left to right).
	Detections []Detection
}

// Count returns the number of detections, the value of predicate `count`
// terms.
func (fi FrameInfo) Count() int { return len(fi.Detections) }

// AnalyzeFrames computes the per-frame content records for one GOP's
// decoded frames. It is a pure, deterministic function of the pixel data;
// ingest-time summarization, query-time exact evaluation, and client-side
// filtering of a raw RGB read all agree because they all run through it.
func AnalyzeFrames(frames []*frame.Frame) []FrameInfo {
	_, infos := analyzeRGB(frames)
	return infos
}

// analyzeRGB converts each frame to RGB (a no-op for RGB input) and
// computes its FrameInfo. The RGB conversions are returned so callers
// that also deliver frames (ReadWhere) convert exactly once — and with
// the same frame.Convert the raw read path uses, keeping predicate
// results byte-identical to a full raw RGB read.
func analyzeRGB(frames []*frame.Frame) ([]*frame.Frame, []FrameInfo) {
	rgb := make([]*frame.Frame, len(frames))
	for i, f := range frames {
		if f.Format == frame.RGB {
			rgb[i] = f
		} else {
			rgb[i] = f.Convert(frame.RGB)
		}
	}
	infos := make([]FrameInfo, len(frames))
	for i := range rgb {
		if i > 0 {
			infos[i].Motion = meanAbsDiff(rgb[i-1].Data, rgb[i].Data)
		}
		infos[i].Detections = detect.Vehicles(rgb[i])
	}
	return rgb, infos
}

// meanAbsDiff is the mean absolute byte difference between two equal-size
// pixel buffers (motion energy). Static regions dominate surveillance
// footage, so 8-byte words are compared first and only differing words pay
// the per-byte loop; the sum is exactly the naive per-byte result.
func meanAbsDiff(a, b []byte) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	// abs(d) is computed branchlessly ((d^m)-m with m the sign mask):
	// which bytes differ is data-dependent noise, so a sign branch here
	// mispredicts constantly on moving content.
	var sum int64
	i := 0
	for ; i+8 <= n; i += 8 {
		if binary.LittleEndian.Uint64(a[i:]) == binary.LittleEndian.Uint64(b[i:]) {
			continue
		}
		for j := i; j < i+8; j++ {
			d := int64(a[j]) - int64(b[j])
			m := d >> 63
			sum += (d ^ m) - m
		}
	}
	for ; i < n; i++ {
		d := int64(a[i]) - int64(b[i])
		m := d >> 63
		sum += (d ^ m) - m
	}
	return float64(sum) / float64(n)
}

// colorLevels quantizes each RGB channel into colorLevels buckets for the
// summary's dominant-color histogram (the same 4-level grid the detector's
// dominant-color estimate uses).
const colorLevels = 4

// colorCell maps a color to its histogram cell index in [0, 64).
func colorCell(c [3]float64) uint {
	cell := uint(0)
	for _, v := range c {
		lvl := int(v) * colorLevels / 256
		if lvl < 0 {
			lvl = 0
		}
		if lvl >= colorLevels {
			lvl = colorLevels - 1
		}
		cell = cell*colorLevels + uint(lvl)
	}
	return cell
}

// cellMinDistance returns the minimum Euclidean distance from query to any
// color inside histogram cell: 0 when the query lies in the cell, else the
// distance to the cell cube's nearest face. It lower-bounds ColorDistance
// for every detection color the cell covers, which is what makes pruning
// on it sound.
func cellMinDistance(cell uint, query [3]float64) float64 {
	const width = 256.0 / colorLevels
	var sum float64
	for ch := 2; ch >= 0; ch-- {
		lvl := float64(cell % colorLevels)
		cell /= colorLevels
		lo, hi := lvl*width, (lvl+1)*width
		q := query[ch]
		switch {
		case q < lo:
			sum += (lo - q) * (lo - q)
		case q > hi:
			sum += (q - hi) * (q - hi)
		}
	}
	return math.Sqrt(sum)
}

// GOPSummary is the persisted feature summary of one GOP: exact bounds
// over its frames' FrameInfo values plus a dominant-color histogram
// bitmap. All bounds are inclusive.
type GOPSummary struct {
	MinMotion float64 // lowest per-frame motion energy (always 0: frame 0)
	MaxMotion float64 // highest per-frame motion energy
	MinCount  int     // fewest detections in any frame
	MaxCount  int     // most detections in any frame
	// ColorBits has bit colorCell(c) set for every detection color c in
	// the GOP (4x4x4 RGB histogram).
	ColorBits uint64
}

// Summarize folds per-frame records into a GOP summary. Returns nil for
// an empty GOP.
func Summarize(infos []FrameInfo) *GOPSummary {
	if len(infos) == 0 {
		return nil
	}
	s := &GOPSummary{MinMotion: math.Inf(1), MinCount: int(math.MaxInt32)}
	for _, fi := range infos {
		s.MinMotion = math.Min(s.MinMotion, fi.Motion)
		s.MaxMotion = math.Max(s.MaxMotion, fi.Motion)
		n := fi.Count()
		if n < s.MinCount {
			s.MinCount = n
		}
		if n > s.MaxCount {
			s.MaxCount = n
		}
		for _, d := range fi.Detections {
			s.ColorBits |= 1 << colorCell(d.Color)
		}
	}
	return s
}

// summarizeFrames analyzes and folds in one step (ingest, backfill). The
// analysis is identical to analyzeRGB — same frame.Convert, same detector
// — but the RGB conversions are not delivered anywhere, so they go through
// two ping-pong scratch frames (current plus the predecessor motion needs)
// instead of materializing one allocation per frame.
func summarizeFrames(frames []*frame.Frame) *GOPSummary {
	if len(frames) == 0 {
		return nil
	}
	var scratch [2]*frame.Frame
	infos := make([]FrameInfo, len(frames))
	var prev *frame.Frame
	for i, f := range frames {
		cur := f
		if f.Format != frame.RGB {
			cur = f.ConvertInto(scratch[i&1], frame.RGB)
			scratch[i&1] = cur
		}
		if i > 0 {
			infos[i].Motion = meanAbsDiff(prev.Data, cur.Data)
		}
		infos[i].Detections = detect.Vehicles(cur)
		prev = cur
	}
	return Summarize(infos)
}

// The persisted encoding of a GOPSummary: a fixed-layout versioned record
// with a trailing checksum, so a corrupt catalog value is rejected by
// DecodeSummary instead of silently mispruning reads.
//
//	[0]     magic 'F' (feature summary)
//	[1]     version (1)
//	[2:10]  MinMotion, float64 bits, big endian
//	[10:18] MaxMotion
//	[18:22] MinCount, uint32 big endian
//	[22:26] MaxCount
//	[26:34] ColorBits
//	[34:38] CRC-32 (IEEE) of bytes [0:34]
const (
	summaryMagic   = 'F'
	summaryVersion = 1
	summaryLen     = 38
)

// EncodeSummary serializes a summary in the persisted binary format.
func EncodeSummary(s *GOPSummary) []byte {
	b := make([]byte, summaryLen)
	b[0] = summaryMagic
	b[1] = summaryVersion
	binary.BigEndian.PutUint64(b[2:], math.Float64bits(s.MinMotion))
	binary.BigEndian.PutUint64(b[10:], math.Float64bits(s.MaxMotion))
	binary.BigEndian.PutUint32(b[18:], uint32(s.MinCount))
	binary.BigEndian.PutUint32(b[22:], uint32(s.MaxCount))
	binary.BigEndian.PutUint64(b[26:], s.ColorBits)
	binary.BigEndian.PutUint32(b[34:], crc32.ChecksumIEEE(b[:34]))
	return b
}

// DecodeSummary parses the persisted binary format. It never panics:
// corrupt input — wrong length, magic, version, checksum, or values that
// violate the summary invariants — returns an error, and the caller
// treats the GOP as summaryless (conservative full decode).
func DecodeSummary(b []byte) (*GOPSummary, error) {
	if len(b) != summaryLen {
		return nil, fmt.Errorf("core: summary length %d, want %d", len(b), summaryLen)
	}
	if b[0] != summaryMagic {
		return nil, fmt.Errorf("core: bad summary magic 0x%02x", b[0])
	}
	if b[1] != summaryVersion {
		return nil, fmt.Errorf("core: unknown summary version %d", b[1])
	}
	if got, want := crc32.ChecksumIEEE(b[:34]), binary.BigEndian.Uint32(b[34:]); got != want {
		return nil, fmt.Errorf("core: summary checksum mismatch")
	}
	s := &GOPSummary{
		MinMotion: math.Float64frombits(binary.BigEndian.Uint64(b[2:])),
		MaxMotion: math.Float64frombits(binary.BigEndian.Uint64(b[10:])),
		MinCount:  int(binary.BigEndian.Uint32(b[18:])),
		MaxCount:  int(binary.BigEndian.Uint32(b[22:])),
		ColorBits: binary.BigEndian.Uint64(b[26:]),
	}
	if math.IsNaN(s.MinMotion) || math.IsInf(s.MinMotion, 0) ||
		math.IsNaN(s.MaxMotion) || math.IsInf(s.MaxMotion, 0) {
		return nil, fmt.Errorf("core: summary motion bounds not finite")
	}
	if s.MinMotion < 0 || s.MinMotion > s.MaxMotion {
		return nil, fmt.Errorf("core: summary motion bounds inverted")
	}
	if s.MinCount < 0 || s.MinCount > s.MaxCount {
		return nil, fmt.Errorf("core: summary count bounds inverted")
	}
	if s.MaxCount == 0 && s.ColorBits != 0 {
		return nil, fmt.Errorf("core: summary has colors without detections")
	}
	return s, nil
}

// MarshalJSON persists the summary through the binary codec (base64 in
// the catalog's JSON rows), so the catalog round-trips through the same
// validated format DecodeSummary guards.
func (s *GOPSummary) MarshalJSON() ([]byte, error) {
	enc := base64.StdEncoding.EncodeToString(EncodeSummary(s))
	return []byte(fmt.Sprintf("%q", enc)), nil
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (s *GOPSummary) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("core: summary JSON must be a string")
	}
	raw, err := base64.StdEncoding.DecodeString(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	dec, err := DecodeSummary(raw)
	if err != nil {
		return err
	}
	*s = *dec
	return nil
}
