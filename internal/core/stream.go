package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/obs"
)

// This file implements the streaming read path: the same plan/snapshot
// phase as Read, but phase B yields output units — encoded GOPs for
// compressed reads, frame batches for raw reads — in order, as the
// parallel decode pipeline produces them, instead of buffering the full
// ReadResult. It exists for the serving layer: a network client can start
// consuming the first GOP while later GOPs still decode, and a client that
// disconnects cancels the remaining decode work instead of paying for an
// answer nobody will read.
//
// Differences from the batch path, by design:
//
//   - Raw streaming reads never cache-admit their result and no stream
//     drives deferred compression: admission needs the whole output in
//     memory, which for decoded frames is exactly what streaming avoids.
//     Compressed streams are the exception: their output GOPs are small
//     (roughly the response size), so the stream buffers them — bounded
//     by Options.StreamAdmitBytes — and admits the result as a
//     materialized view on clean EOF, exactly as a batch Read would.
//     That is what keeps a serving layer's hot transcode windows from
//     re-paying decode + re-encode on every request: the second read of
//     an admitted window plans as pure passthrough. A serving layer that
//     wants whole-response reuse still caches encoded responses itself
//     (see internal/server).
//   - Decode memory is bounded twice over: at most ~2*Workers units are
//     produced ahead of the consumer, and the IO-prefetch stage fetches
//     at most 2*Workers stored GOPs ahead of the decode workers (see
//     startPrefetch in reader.go); a decoded GOP's frames are released
//     once the last unit that references them has been produced.
//     Passthrough bytes are the exception: phase A snapshots aligned
//     same-format GOPs emitted as-is under the video lock, so a pure-
//     passthrough read holds its encoded response up front — compressed
//     bytes, roughly the response size, orders of magnitude smaller than
//     the decoded frames the look-ahead window bounds. They carry no
//     decode work to overlap with, and keeping them consistent under the
//     lock preserves the byte-identical stream/batch contract.
//   - Output bytes are identical to Read: units are chunked exactly the
//     way assembleRaw/assembleCompressed chunk, and conversion/encoding
//     goes through the same pure functions.

// ReadBatch is one in-order unit of a streaming read's output: a run of
// decoded frames in the requested layout (raw reads) or a single encoded
// GOP (compressed reads).
type ReadBatch struct {
	Frames []*frame.Frame
	GOP    []byte
}

// FrameCount returns the number of frames the batch carries.
func (b *ReadBatch) FrameCount() int {
	if len(b.Frames) > 0 {
		return len(b.Frames)
	}
	if len(b.GOP) > 0 {
		if hd, err := codec.DecodeHeader(b.GOP); err == nil {
			return hd.FrameCount
		}
	}
	return 0
}

// streamUnit is one ordered output unit and its precomputed work: either a
// passthrough stored bitstream or a run of frame sources to transcode.
type streamUnit struct {
	pass   []byte       // non-nil: stored GOP emitted as-is, no CPU work
	srcs   []frameSrc   // transcode run (chunked to one output GOP)
	jobs   []*decodeJob // distinct decode jobs srcs depend on
	frames int          // output frames this unit carries (admission mbpp)

	batch *ReadBatch
	err   error
	done  chan struct{} // closed when batch/err is set
}

// errStreamClosed is the cancel cause installed by ReadStream.Close.
var errStreamClosed = errors.New("core: read stream closed")

// ReadStream is an in-order iterator over the output of a streaming read.
// Call Next until it returns io.EOF (or another error), then — or at any
// earlier point — Close. Next and Stats must be called from one goroutine;
// Close is safe to call from any goroutine (e.g. a connection watchdog)
// and cancels the remaining work.
type ReadStream struct {
	// Width, Height, FPS describe the output configuration, as in
	// ReadResult (valid immediately, before the first Next).
	Width  int
	Height int
	FPS    int

	s       *Store
	ctx     context.Context
	cancel  context.CancelCauseFunc
	r       resolvedSpec
	job     *readJob // fetch descriptors + BytesRead accumulator
	units   []*streamUnit
	next    int           // consumer cursor
	claim   atomic.Int64  // worker claim counter
	ahead   chan struct{} // bounds units materialized ahead of the consumer
	decoded atomic.Int64
	stats   ReadStats
	err     error // terminal consumer-side state (io.EOF or failure)

	// Cache-admission state for compressed streams (consumer goroutine
	// only). admitCap <= 0 means admission is off — disabled by options,
	// raw output, or an output that outgrew the bound mid-stream.
	video       string
	vsA         *videoState // phase-A generation witness, as in readOnce
	fragIDs     []int
	parentMSE   float64
	admitCap    int64
	admitGOPs   [][]byte
	admitBytes  int64
	admitFrames int
}

// ReadStream begins a streaming read. The plan/snapshot phase (phase A of
// the read pipeline) runs synchronously under the video lock, so a non-nil
// error here has the same meaning as from Read; the CPU-heavy work then
// runs on the store's worker pool as the caller iterates. Cancelling ctx —
// or calling Close — abandons the remaining decode work at the next GOP
// boundary. Safe for concurrent use.
//
// One contract difference from Read: if eviction under extreme budget
// pressure deletes a planned GOP between planning and its prefetch (a
// race the per-GOP re-snapshot cannot repair when the data is truly
// gone), a batch Read silently retries with a fresh plan, but a stream —
// which may already have delivered units of the old plan — surfaces the
// dangling-ref error to the consumer, who retries the request. Rewritten
// GOPs (joint compression, deferred lossless) are repaired in place on
// both paths.
func (s *Store) ReadStream(ctx context.Context, video string, spec ReadSpec) (*ReadStream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	var (
		out       *ReadResult
		job       *readJob
		fragIDs   []int
		parentMSE float64
		vsA       *videoState
	)
	planStart := time.Now()
	err := s.withVideos([]string{video}, func(held map[string]*videoState) error {
		var err error
		vsA = held[video]
		out, job, fragIDs, parentMSE, err = s.prepareRead(ctx, held, held[video], spec, s.opts.DisablePrefetch)
		return err
	})
	obs.Observe(ctx, s.pipe, obs.StagePlan, time.Since(planStart))
	if err != nil {
		return nil, err
	}

	st := &ReadStream{
		Width: out.Width, Height: out.Height, FPS: out.FPS,
		s: s, r: job.r, job: job, stats: out.Stats,
		video: video, vsA: vsA, fragIDs: fragIDs, parentMSE: parentMSE,
	}
	if job.r.codec.Compressed() && !s.opts.DisableCache && s.opts.StreamAdmitBytes > 0 {
		st.admitCap = s.opts.StreamAdmitBytes
	}
	st.ctx, st.cancel = context.WithCancelCause(ctx)
	st.units = buildStreamUnits(job)
	for _, u := range st.units {
		for _, j := range u.jobs {
			j.refs.Add(1)
		}
	}
	// The IO-prefetch stage runs ahead of the stream's decode workers
	// exactly as it does for batch reads; its fetchers stop when the
	// stream context is cancelled (Close, error, or EOF).
	s.startPrefetch(st.ctx, job.fetches)
	workers := s.opts.Workers
	if workers > len(st.units) {
		workers = len(st.units)
	}
	st.ahead = make(chan struct{}, 2*s.opts.Workers)
	for w := 0; w < workers; w++ {
		go st.worker()
	}
	return st, nil
}

// buildStreamUnits chunks a snapshotted readJob into ordered output units,
// mirroring the batch path's assembly exactly: passthrough segments emit
// as-is, and runs of transcoded frames are cut into GOPFrames-sized chunks
// with pending frames carried across adjacent transcode segments — so a
// compressed stream's GOPs are byte-identical to Read's GOPs, in the same
// order.
func buildStreamUnits(job *readJob) []*streamUnit {
	var units []*streamUnit
	var pending []frameSrc
	flush := func() {
		for i := 0; i < len(pending); i += job.gopFrames {
			j := i + job.gopFrames
			if j > len(pending) {
				j = len(pending)
			}
			units = append(units, newStreamUnit(pending[i:j]))
		}
		pending = nil
	}
	for si := range job.segs {
		seg := &job.segs[si]
		if seg.pass != nil {
			flush()
			units = append(units, &streamUnit{pass: seg.pass, frames: seg.passFrames, done: make(chan struct{})})
			continue
		}
		pending = append(pending, seg.srcs...)
	}
	flush()
	return units
}

// newStreamUnit builds a transcode unit, deduplicating its decode jobs.
func newStreamUnit(srcs []frameSrc) *streamUnit {
	u := &streamUnit{srcs: srcs, frames: len(srcs), done: make(chan struct{})}
	seen := make(map[*decodeJob]bool, len(srcs))
	for _, src := range srcs {
		if !seen[src.job] {
			seen[src.job] = true
			u.jobs = append(u.jobs, src.job)
		}
	}
	return u
}

// worker claims units in order and produces them. Claims happen strictly
// in increasing index order, so when a worker observes cancellation every
// unit before the first unclaimed index is guaranteed to complete — that
// is what lets Next surface errors in stream order.
func (st *ReadStream) worker() {
	for {
		// Backpressure: don't run ahead of the consumer by more than the
		// ahead window. Tokens are released by Next as units are consumed.
		select {
		case st.ahead <- struct{}{}:
		case <-st.ctx.Done():
			return
		}
		i := int(st.claim.Add(1)) - 1
		if i >= len(st.units) {
			return
		}
		u := st.units[i]
		u.batch, u.err = st.produce(u)
		if u.err != nil {
			st.cancel(u.err) // stops other workers at their next claim
		}
		close(u.done)
	}
}

// acquireSlot takes one slot of the store's worker pool, giving up if the
// stream is cancelled while waiting — a dead stream must not consume CPU
// slots it hasn't acquired yet. Callers release with <-st.s.workSem.
func (st *ReadStream) acquireSlot() error {
	select {
	case st.s.workSem <- struct{}{}:
		return nil
	case <-st.ctx.Done():
		return context.Cause(st.ctx)
	}
}

// produce computes one unit's output: lazy deduplicated GOP decode, frame
// conversion, and (for compressed output) re-encode, all on the worker
// pool's CPU budget.
func (st *ReadStream) produce(u *streamUnit) (*ReadBatch, error) {
	if u.pass != nil {
		return &ReadBatch{GOP: u.pass}, nil
	}
	s := st.s
	for _, j := range u.jobs {
		j.once.Do(func() {
			// Wait for the prefetched bytes BEFORE taking a CPU slot: a
			// unit stalled on IO must not occupy the pool.
			snap, err := j.resolve(st.ctx, s)
			if err != nil {
				j.runErr = err
				return
			}
			if j.runErr = st.acquireSlot(); j.runErr != nil {
				return
			}
			start := time.Now()
			j.runErr = j.decodeResolved(st.ctx, snap, s)
			obs.ObserveCodec(st.ctx, s.pipe, obs.StageDecode, string(j.codecID), time.Since(start))
			<-s.workSem
			if j.runErr == nil {
				st.decoded.Add(int64(j.decoded))
			}
		})
		if j.runErr != nil {
			return nil, j.runErr
		}
	}

	// Convert (and maybe encode) under one pool slot; parallelism comes
	// from units racing each other, bounded by the pool.
	if err := st.acquireSlot(); err != nil {
		return nil, err
	}
	defer func() { <-s.workSem }()
	frames := make([]*frame.Frame, 0, len(u.srcs))
	for _, src := range u.srcs {
		if err := context.Cause(st.ctx); err != nil {
			return nil, err
		}
		if len(src.job.frames) == 0 {
			return nil, fmt.Errorf("core: decoded GOP is empty")
		}
		idx := src.idx
		if idx >= len(src.job.frames) {
			idx = len(src.job.frames) - 1
		}
		f, err := convertFrame(src.job.frames[idx], src.p, st.r)
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}

	var batch *ReadBatch
	if st.r.codec.Compressed() {
		start := time.Now()
		data, _, err := codec.EncodeGOP(frames, st.r.codec, st.r.quality)
		obs.ObserveCodec(st.ctx, s.pipe, obs.StageEncode, string(st.r.codec), time.Since(start))
		if err != nil {
			return nil, err
		}
		batch = &ReadBatch{GOP: data}
	} else {
		outFmt := frame.PixelFormat(st.r.pixfmt)
		conv := make([]*frame.Frame, len(frames))
		for i, f := range frames {
			if f.Format == outFmt {
				conv[i] = f
			} else {
				conv[i] = f.Convert(outFmt)
			}
		}
		batch = &ReadBatch{Frames: conv}
	}
	// Release decoded source frames once the last unit that needs them has
	// been produced, keeping streaming memory bounded.
	for _, j := range u.jobs {
		if j.refs.Add(-1) == 0 {
			j.frames = nil
		}
	}
	return batch, nil
}

// Next returns the next output unit in stream order, io.EOF after the
// last one, or the first error (in stream order) the read hit. After a
// non-EOF error the stream is dead and Next keeps returning that error.
func (st *ReadStream) Next() (*ReadBatch, error) {
	if st.err != nil {
		if st.err == io.EOF {
			return nil, io.EOF
		}
		return nil, st.err
	}
	if st.next >= len(st.units) {
		st.maybeAdmit()
		st.finish(io.EOF)
		return nil, io.EOF
	}
	u := st.units[st.next]
	// Prefer a completed unit over cancellation: an error at a later unit
	// cancels the stream context, but every earlier CLAIMED unit still
	// runs to completion, and its output is still valid — so on
	// cancellation, give up on this unit only if no worker claimed it
	// (then nobody will close done). Claims are ordered, so claim > next
	// means exactly that this unit was claimed.
	select {
	case <-u.done:
	case <-st.ctx.Done():
		if int(st.claim.Load()) > st.next {
			<-u.done // claimed units always complete; deliver in order
			break
		}
		st.finish(context.Cause(st.ctx))
		return nil, st.err
	}
	if u.err != nil {
		st.finish(u.err)
		return nil, st.err
	}
	st.next++
	select {
	case <-st.ahead: // free one backpressure token
	default:
	}
	batch := u.batch
	u.batch = nil
	if st.admitCap > 0 && batch.GOP != nil {
		// Buffer the encoded GOP for EOF admission. The slice is shared
		// with the consumer, never copied: admission writes it out as-is.
		st.admitGOPs = append(st.admitGOPs, batch.GOP)
		st.admitBytes += int64(len(batch.GOP))
		st.admitFrames += u.frames
		if st.admitBytes > st.admitCap {
			// Outgrew the bound: stream on without admitting.
			st.admitCap, st.admitGOPs = 0, nil
		}
	}
	return batch, nil
}

// maybeAdmit runs the batch path's phase C for a compressed stream that
// reached clean EOF with its whole encoded output buffered: re-acquire
// the video, verify it is still the one phase A planned against, and
// cache-admit the output as a materialized view. Failures are swallowed —
// the stream already delivered its bytes; admission is an optimization,
// not part of the read's contract.
func (st *ReadStream) maybeAdmit() {
	if st.admitCap <= 0 || len(st.admitGOPs) == 0 {
		return
	}
	st.admitCap = 0 // idempotence: admit at most once
	s := st.s
	vs := s.acquire(st.video)
	if vs == nil {
		return
	}
	defer vs.mu.Unlock()
	if vs != st.vsA {
		return // deleted (or deleted and recreated) while streaming
	}
	job := &readJob{r: st.r, outGOPs: st.admitGOPs}
	if pixels := int64(st.r.roiW) * int64(st.r.roiH) * int64(st.admitFrames); pixels > 0 {
		job.mbpp = float64(st.admitBytes) * 8 / float64(pixels)
	}
	admitStart := time.Now()
	admitted, err := s.admitLocked(vs, job, st.fragIDs, st.parentMSE)
	obs.Observe(st.ctx, s.pipe, obs.StageCacheAdmit, time.Since(admitStart))
	if err == nil && admitted {
		st.stats.Admitted = true
	}
	st.admitGOPs = nil
}

// finish records the stream's terminal state and stops the workers.
func (st *ReadStream) finish(err error) {
	if st.err == nil {
		st.err = err
		st.cancel(err)
	}
}

// Close cancels any remaining work. It is safe to call from any goroutine,
// multiple times, and after Next has returned io.EOF (where it is a
// no-op). It never blocks on in-flight decode work.
func (st *ReadStream) Close() error {
	st.cancel(errStreamClosed)
	return nil
}

// Stats reports the read's execution statistics. Plan fields are valid
// immediately; GOPsDecoded and BytesRead grow as the stream progresses
// (prefetched GOP bytes count once fetched). Admitted becomes true only
// after a compressed stream reached clean EOF and its buffered output was
// cache-admitted (see Options.StreamAdmitBytes); raw streams never admit.
func (st *ReadStream) Stats() ReadStats {
	stats := st.stats
	stats.GOPsDecoded = int(st.decoded.Load())
	stats.BytesRead += st.job.bytesRead.Load()
	return stats
}
