package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/codec"
	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/storage"
)

// Options configure a Store. The zero value selects the paper's prototype
// defaults; ablation flags exist to reproduce the paper's baselines
// (greedy planning in Figure 10, ordinary LRU in Figures 12/16, deferred
// compression off in Figure 12).
type Options struct {
	// CostModel supplies the transcode α table; nil uses cost.Default().
	// Pass a Calibrate()d model to reproduce install-time calibration.
	CostModel *cost.Model
	// BudgetMultiple sets each video's default storage budget as a
	// multiple of its originally written size (paper default 10). <0
	// means unlimited.
	BudgetMultiple float64
	// MinPSNR is the default read quality cutoff ε in dB (paper: 40).
	MinPSNR float64
	// GOPFrames is the GOP length for compressed writes (paper: codecs
	// typically use 30-300; prototype default 30).
	GOPFrames int
	// RawBlockBytes caps uncompressed GOP blocks (paper: 25MB, one rgb 4K
	// frame). Frames larger than this are stored one per block.
	RawBlockBytes int64
	// Gamma and Zeta weight the position and redundancy terms of LRU_VSS
	// (paper: γ=2, ζ=1).
	Gamma, Zeta float64
	// DeferredThreshold is the fraction of the budget above which
	// deferred compression activates (paper: 25%).
	DeferredThreshold float64
	// JointMinPSNR is the recovered-quality threshold below which joint
	// compression of a GOP pair is aborted (paper: 24 dB).
	JointMinPSNR float64
	// Workers bounds the store-wide pool of CPU workers that runs the
	// parallel GOP decode/convert/encode pipeline inside Read. The pool
	// is shared by every concurrent read so total CPU fan-out stays
	// bounded regardless of client count. 0 selects GOMAXPROCS; 1 makes
	// read execution fully serial (useful for deterministic profiling).
	Workers int
	// Backend selects the physical GOP store. nil selects the default
	// single-root localfs backend under <dir>/data — unless the
	// VSS_BACKEND environment variable overrides it ("mem", "sharded:N"
	// for N roots under <dir>, or "sharded:N:R" for N roots with R-way
	// replication; the hook that lets CI run the whole suite against
	// another backend without code changes). Pass storage.OpenSharded /
	// storage.OpenShardedReplicated roots for multi-disk deployments or
	// storage.NewMem for IO-free operation; the vss package re-exports
	// constructors. The catalog always lives on the local filesystem
	// under <dir>/catalog regardless of backend.
	Backend storage.Backend
	// SnapshotCatalog replicates the metadata catalog into the storage
	// backend on every Maintain pass: the catalog is snapshotted (WAL
	// folded in), then written as a GOP under the reserved
	// storage.CatalogSnapshotVideo address, riding the backend's normal
	// write path — on a replicated backend every replica holds a copy.
	// This closes the catalog's single-point-of-failure for deployments
	// whose GOP bytes outlive the store directory (the router daemon
	// fronting a vssd fleet): RestoreCatalog rebuilds <dir>/catalog from
	// the backend copy. Pointless (and off by default) when the backend
	// lives under <dir> anyway.
	SnapshotCatalog bool
	// DisablePrefetch reverts GOP fetch to the synchronous under-lock
	// snapshot of the pre-prefetch read path: stored bytes are read in
	// phase A while the video lock is held instead of on the asynchronous
	// IO-prefetch stage that overlaps backend reads with decode. Exists
	// for the io benchmark's baseline and for debugging.
	DisablePrefetch bool
	// StreamAdmitBytes bounds the encoded output a compressed streaming
	// read may buffer for cache admission. A stream whose output fits
	// admits it as a materialized view on clean EOF — exactly as a batch
	// Read would — so repeated hot transcode windows become passthrough;
	// one that outgrows the bound streams on without admitting, keeping
	// streaming memory bounded. 0 selects the default (64MB); <0 disables
	// stream admission entirely (the pre-PR6 behavior). Raw streams never
	// admit: holding decoded frames is what streaming exists to avoid.
	StreamAdmitBytes int64

	// DisableSummaries turns off per-GOP feature summarization entirely
	// — at ingest and during Maintain backfill. Predicate reads still
	// work — every GOP is decoded conservatively, as on a pre-summary
	// store — but the planner can no longer skip non-matching GOPs.
	// Escape hatch for ingest paths where any analysis cost matters more
	// than query speed. (Uncompressed ingest already defers
	// summarization to Maintain on its own; see encodeForIngest.)
	DisableSummaries bool

	// GreedyPlanner selects the dependency-naive greedy baseline instead
	// of the solver (Section 6.1 comparison).
	GreedyPlanner bool
	// OrdinaryLRU disables the position/redundancy offsets of LRU_VSS.
	OrdinaryLRU bool
	// DisableCache turns off caching of read results.
	DisableCache bool
	// DisableDeferred turns off deferred compression.
	DisableDeferred bool
	// QualitySampleEvery controls how often cached compressed GOPs are
	// decoded back to refine the MBPP->PSNR estimator (paper: periodic
	// sampling). Every Nth cached GOP; 0 uses the default of 16.
	QualitySampleEvery int
}

func (o Options) withDefaults() Options {
	if o.CostModel == nil {
		o.CostModel = cost.Default()
	}
	if o.BudgetMultiple == 0 {
		o.BudgetMultiple = 10
	}
	if o.MinPSNR == 0 {
		o.MinPSNR = quality.Lossless
	}
	if o.GOPFrames == 0 {
		o.GOPFrames = 30
	}
	if o.RawBlockBytes == 0 {
		o.RawBlockBytes = 25 << 20
	}
	if o.Gamma == 0 {
		o.Gamma = 2
	}
	if o.Zeta == 0 {
		o.Zeta = 1
	}
	if o.DeferredThreshold == 0 {
		o.DeferredThreshold = 0.25
	}
	if o.JointMinPSNR == 0 {
		// The paper aborts below 24 dB; its own Table 2 reports
		// recovered-right quality of exactly 24 dB on high-overlap data.
		// Our synthetic warps land ~1 dB lower in the same regime, so the
		// default bound scales to 22 to keep those pairs admissible (see
		// EXPERIMENTS.md).
		o.JointMinPSNR = 22
	}
	if o.QualitySampleEvery == 0 {
		o.QualitySampleEvery = 16
	}
	if o.StreamAdmitBytes == 0 {
		o.StreamAdmitBytes = 64 << 20
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// videoState bundles one logical video's mutable state with the lock that
// guards it. It is the unit of concurrency in the store: operations on
// different videos proceed fully in parallel, operations on the same video
// serialize on vs.mu.
//
// Locking contract: vs.mu guards meta, the phys map, and every PhysMeta /
// GOPMeta reachable from it. The registry entry (Store.videos[name]) is
// guarded by Store.mu; acquire a videoState only through Store.acquire or
// Store.acquireSet so delete/recreate races are handled.
type videoState struct {
	mu   sync.Mutex
	meta *VideoMeta
	phys map[int]*PhysMeta // id -> meta
}

// totalBytes sums the stored size of the video. Caller holds vs.mu.
func (vs *videoState) totalBytes() int64 {
	var total int64
	for _, p := range vs.phys {
		total += p.Bytes()
	}
	return total
}

// byID returns a physical video record, or nil. Caller holds vs.mu.
func (vs *videoState) byID(id int) *PhysMeta { return vs.phys[id] }

// original returns the originally written physical video (m0), or nil.
// Caller holds vs.mu.
func (vs *videoState) original() *PhysMeta {
	if vs.meta.Original < 0 {
		return nil
	}
	return vs.phys[vs.meta.Original]
}

// Store is the VSS storage manager instance rooted at a directory.
//
// Concurrency model (two-tier locking):
//
//   - Store.mu is the short-lived registry lock. It guards only the
//     videos map (which logical videos exist and their videoState
//     identity). It is never held while blocking on a per-video lock or
//     doing IO or CPU work.
//   - Each videoState.mu serializes metadata mutation for one video.
//     Reads and writes to different videos never contend.
//   - Cross-video operations (joint compression, reads that chase
//     duplicate/joint references) lock every involved video in sorted
//     name order via acquireSet, which makes deadlock impossible.
//   - The CPU-heavy decode/convert/encode work of a read runs OUTSIDE
//     any lock on a bounded worker pool (workSem, sized Options.Workers):
//     the read snapshots the GOP bytes it needs while holding the video
//     lock, releases it, computes, and re-acquires only for admission.
//
// The catalog (internal/catalog) and file store (internal/storage) are
// internally safe for concurrent use.
type Store struct {
	dir   string
	opts  Options
	files *storage.Instrumented // metrics-wrapped Options.Backend
	cat   *catalog.DB
	est   *quality.Estimator
	pipe  *obs.Pipeline // per-stage latency histograms (never nil)

	mu     sync.Mutex // registry lock; see concurrency model above
	videos map[string]*videoState

	workSem chan struct{} // bounded worker pool for read execution

	sampleMu      sync.Mutex // guards sampleCounter (est locks itself)
	sampleCounter int
}

// ErrNotFound is returned for operations on unknown videos.
var ErrNotFound = errors.New("core: video not found")

// ErrExists is returned when creating a video that already exists.
var ErrExists = errors.New("core: video already exists")

// ErrInvalidSpec marks read parameters the store can never satisfy
// (unknown codec, interval outside the video, bad resolution/ROI/fps).
// Serving layers match it to distinguish a client's bad request from a
// real storage failure.
var ErrInvalidSpec = errors.New("core: invalid read spec")

// errVideosNeeded reports that an operation under a lock set followed a
// duplicate/joint reference into a video whose lock is not held. The
// caller expands its set and retries.
type errVideosNeeded struct{ names []string }

func (e errVideosNeeded) Error() string {
	return fmt.Sprintf("core: operation needs locks on %v", e.names)
}

// errDanglingRef marks a GOP reference whose target no longer exists
// (evicted, deleted, or replaced between operations). Sweeps that tolerate
// concurrent churn match it with errors.Is and skip the work item.
var errDanglingRef = errors.New("core: dangling GOP ref")

// Open opens (creating if necessary) a VSS store in dir.
func Open(dir string, opts Options) (*Store, error) {
	backend, err := backendFor(dir, opts.Backend)
	if err != nil {
		return nil, err
	}
	cat, err := catalog.Open(filepath.Join(dir, "catalog"))
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:    dir,
		opts:   opts.withDefaults(),
		files:  storage.Instrument(backend),
		cat:    cat,
		est:    quality.NewEstimator(nil),
		pipe:   obs.NewPipeline(),
		videos: make(map[string]*videoState),
	}
	s.workSem = make(chan struct{}, s.opts.Workers)
	if err := s.load(); err != nil {
		cat.Close()
		return nil, err
	}
	return s, nil
}

// backendFor resolves the effective storage backend: an explicit
// Options.Backend wins; otherwise the VSS_BACKEND environment variable
// may redirect the default ("mem" for a process-shared in-memory store,
// "sharded:N" for N roots under dir — the hook CI uses to run the test
// suite against other backends); otherwise localfs under <dir>/data.
func backendFor(dir string, explicit storage.Backend) (storage.Backend, error) {
	if explicit != nil {
		return explicit, nil
	}
	switch env := os.Getenv("VSS_BACKEND"); {
	case env == "" || env == "localfs":
		return storage.Open(filepath.Join(dir, "data"))
	case env == "mem":
		return storage.SharedMem(dir), nil
	case strings.HasPrefix(env, "sharded:"):
		spec := strings.TrimPrefix(env, "sharded:")
		nStr, rStr, hasR := strings.Cut(spec, ":")
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("core: bad VSS_BACKEND %q: want sharded:N[:R] with N >= 1", env)
		}
		replicas := 1
		if hasR {
			replicas, err = strconv.Atoi(rStr)
			if err != nil || replicas < 1 || replicas > n {
				return nil, fmt.Errorf("core: bad VSS_BACKEND %q: want sharded:N:R with 1 <= R <= N", env)
			}
		}
		return storage.OpenShardedReplicated(ShardRoots(dir, n), replicas)
	default:
		return nil, fmt.Errorf("core: unknown VSS_BACKEND %q", env)
	}
}

// ShardRoots returns the conventional shard root directories for a store
// at dir: <dir>/data-shard0 .. data-shard{n-1}. Using the convention (in
// vssd, vssctl, and the env hook) keeps independent processes agreeing
// on placement for the same -shards count.
func ShardRoots(dir string, n int) []string {
	roots := make([]string, n)
	for i := range roots {
		roots[i] = filepath.Join(dir, fmt.Sprintf("data-shard%d", i))
	}
	return roots
}

// BackendStats snapshots the storage backend's operation counters
// (reads/writes, bytes, cumulative latency). Safe for concurrent use.
func (s *Store) BackendStats() storage.BackendStats { return s.files.Stats() }

// Backend exposes the store's (metrics-instrumented) storage backend:
// the GOP plane a vssd node serves over its /gops endpoints, so a router
// fleet can use this store as a remote replica. Operations through it
// count in BackendStats like the store's own.
func (s *Store) Backend() storage.Backend { return s.files }

// ClusterStats snapshots routed-fleet health (per-node errors and
// demotions, write-repair journal depth, repair and scrub counters) when
// the backend routes GOPs across remote nodes (internal/router). ok is
// false for local backends. Safe for concurrent use.
func (s *Store) ClusterStats() (storage.ClusterStats, bool) {
	cr := storage.AsClusterReporter(s.files)
	if cr == nil {
		return storage.ClusterStats{}, false
	}
	return cr.ClusterStats(), true
}

// ReplicationStats snapshots replica placement, read-failover, per-shard
// health, and scrub counters when the backend keeps redundant copies
// (the replicated sharded backend). ok is false for backends with no
// replication (localfs, mem). Safe for concurrent use.
func (s *Store) ReplicationStats() (storage.ReplicationStats, bool) {
	sc := storage.AsScrubber(s.files)
	if sc == nil {
		return storage.ReplicationStats{}, false
	}
	return sc.ReplicationStats(), true
}

// scrub runs one replication scrub pass when the backend keeps
// redundant copies, feeding it the catalog's expected GOP sizes so a
// repair always restores the bytes the metadata describes: a stale
// replica (a write that missed a flapping shard) can never win over the
// copy the catalog points at, whatever their relative sizes. A backend
// with replication machinery but a single copy per GOP (sharded at
// replicas=1) is skipped — there is nothing to repair from, and the
// full-tree walk plus catalog snapshot would tax every Maintain for
// nothing.
func (s *Store) scrub() error {
	sc := storage.AsScrubber(s.files)
	if sc == nil || sc.ReplicationStats().Replicas < 2 {
		return nil
	}
	_, err := sc.Scrub(s.sizeOracle())
	return err
}

// sizeOracle builds the scrub's storage.SizeOracle: Size answers LIVE
// from the in-memory catalog under the video's lock (so a repair is
// always judged against the GOP's current expected bytes — a rewrite
// landing mid-scrub can never have its fresh copies overwritten from a
// stale source), while All snapshots every known address for the
// total-loss enumeration. Duplicate GOPs are excluded: their bytes live
// at the target address and they own no file for the scrub to check.
func (s *Store) sizeOracle() storage.SizeOracle { return liveOracle{s} }

type liveOracle struct{ s *Store }

// Size reports the catalog's current expected size of one GOP.
func (o liveOracle) Size(a storage.GOPAddr) (int64, bool) {
	vs := o.s.acquire(a.Video)
	if vs == nil {
		return 0, false
	}
	defer vs.mu.Unlock()
	for _, p := range vs.phys {
		if p.Dir != a.PhysDir {
			continue
		}
		for i := range p.GOPs {
			if g := &p.GOPs[i]; g.Seq == a.Seq {
				if g.DupOf != nil {
					return 0, false
				}
				return g.Bytes, true
			}
		}
		return 0, false
	}
	return 0, false
}

// All snapshots every catalog-known GOP's expected size, locking one
// video at a time so the walk never stalls store-wide traffic.
func (o liveOracle) All() map[storage.GOPAddr]int64 {
	want := make(map[storage.GOPAddr]int64)
	for _, name := range o.s.videoNames() {
		vs := o.s.acquire(name)
		if vs == nil {
			continue // deleted while we iterated
		}
		for _, p := range vs.phys {
			for i := range p.GOPs {
				if g := &p.GOPs[i]; g.DupOf == nil {
					want[storage.GOPAddr{Video: name, PhysDir: p.Dir, Seq: g.Seq}] = g.Bytes
				}
			}
		}
		vs.mu.Unlock()
	}
	return want
}

// Pipeline exposes the store's per-stage latency histograms for the
// serving layer's /metrics pipeline section.
func (s *Store) Pipeline() *obs.Pipeline { return s.pipe }

// readGOP fetches one stored GOP's bytes, passing the catalog's
// expected size so a replicated backend can fail over past a replica
// whose copy is stale (a rewrite that missed its shard) instead of
// serving bytes the caller will reject. want < 0 means no expectation.
// ctx reaches network-backed backends (cancellation, trace header); the
// fetch is timed into the pipeline's fetch stage and any trace on ctx.
func (s *Store) readGOP(ctx context.Context, video, physDir string, seq int, want int64) ([]byte, error) {
	start := time.Now()
	data, err := s.files.ReadGOPExpectContext(ctx, video, physDir, seq, want)
	obs.Observe(ctx, s.pipe, obs.StageFetch, time.Since(start))
	return data, err
}

// load hydrates the in-memory metadata cache from the catalog. It runs
// before the store is published, so no locking is needed.
func (s *Store) load() error {
	// Finish any deletion that crashed mid-teardown (see Delete): the
	// tombstone means the video's files may already be partially gone, so
	// the catalog rows must not be trusted.
	for _, name := range s.cat.Keys("deleting") {
		if err := s.teardownVideo(name, nil); err != nil {
			return err
		}
	}
	for _, name := range s.cat.Keys("videos") {
		var v VideoMeta
		if _, err := s.cat.Get("videos", name, &v); err != nil {
			return err
		}
		s.videos[name] = &videoState{meta: &v, phys: make(map[int]*PhysMeta)}
	}
	for _, key := range s.cat.Keys("phys") {
		var p PhysMeta
		if _, err := s.cat.Get("phys", key, &p); err != nil {
			return err
		}
		// Key layout is "<video>/<id>"; the video name may itself contain
		// any character except the path separator, so split on the final
		// slash.
		i := strings.LastIndexByte(key, '/')
		if i < 0 {
			return fmt.Errorf("core: bad phys key %q: missing video/id separator", key)
		}
		video := key[:i]
		id, err := strconv.Atoi(key[i+1:])
		if err != nil {
			return fmt.Errorf("core: bad phys key %q: %v", key, err)
		}
		vs := s.videos[video]
		if vs == nil {
			// Orphaned physical record (video deleted mid-crash): drop the
			// catalog row AND its GOP directory, or the crash leaks the
			// orphan's disk space forever (no later operation ever visits a
			// physical video that is not in the catalog). Cleanup is
			// best-effort — a degraded shard must not make the whole store
			// unopenable — so on failure the row is KEPT and the reclaim
			// retries on the next (healthy) open.
			if err := s.files.DeletePhysical(video, p.Dir); err == nil {
				s.cat.Delete("phys", key)
			}
			continue
		}
		vs.phys[id] = &p
	}
	return nil
}

// lookup returns the registry entry for a name (unlocked), or nil.
func (s *Store) lookup(name string) *videoState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.videos[name]
}

// acquire locks the named video's state and returns it, or nil if the
// video does not exist. The registry identity is rechecked after locking
// so a concurrent Delete (or delete+recreate) cannot hand out a stale
// state. Callers must vs.mu.Unlock() when done.
func (s *Store) acquire(name string) *videoState {
	for {
		vs := s.lookup(name)
		if vs == nil {
			return nil
		}
		vs.mu.Lock()
		if s.lookup(name) == vs {
			return vs
		}
		vs.mu.Unlock()
	}
}

// acquireSet locks the named videos in sorted order, returning a map of
// the states it locked. Videos that do not exist are absent from the
// result (callers decide whether that is an error). Sorted acquisition is
// the global lock order; every multi-video operation must go through this
// helper to stay deadlock-free.
func (s *Store) acquireSet(names map[string]bool) map[string]*videoState {
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	held := make(map[string]*videoState, len(sorted))
	for _, n := range sorted {
		if vs := s.acquire(n); vs != nil {
			held[n] = vs
		}
	}
	return held
}

// releaseSet unlocks every state in a set returned by acquireSet.
func (s *Store) releaseSet(held map[string]*videoState) {
	for _, vs := range held {
		vs.mu.Unlock()
	}
}

// Close flushes metadata and closes the store. In-flight operations on
// other goroutines fail once the catalog is closed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cat.Close()
}

// Create registers a new logical video. budgetBytes of 0 applies the
// default multiple-of-original budget once the first write lands; a
// negative value means unlimited. Safe for concurrent use.
func (s *Store) Create(name string, budgetBytes int64) error {
	if name == "" || name != filepath.Base(name) || name[0] == '.' {
		return fmt.Errorf("core: invalid video name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.videos[name]; ok {
		return ErrExists
	}
	v := &VideoMeta{Name: name, Budget: budgetBytes, Original: -1}
	if err := s.cat.Put("videos", name, v); err != nil {
		return err
	}
	s.videos[name] = &videoState{meta: v, phys: make(map[int]*PhysMeta)}
	return nil
}

// Delete removes a logical video and all physical data. It takes the
// video's lock first (waiting out in-flight operations), writes a
// catalog tombstone, tears down files then catalog rows, and unregisters
// the name only after teardown completes. Consequences:
//
//   - Concurrent operations observe either the full video or ErrNotFound,
//     and a concurrent Create of the same name gets ErrExists until the
//     old data is fully gone (it can never adopt, then lose, the dying
//     video's directory).
//   - A crash mid-teardown is self-healing: load() finishes any deletion
//     whose tombstone survives, so the catalog never describes GOP files
//     that are gone.
func (s *Store) Delete(name string) error {
	vs := s.acquire(name)
	if vs == nil {
		return ErrNotFound
	}
	defer vs.mu.Unlock()
	if err := s.cat.Put("deleting", name, true); err != nil {
		return err
	}
	if err := s.teardownVideo(name, vs.phys); err != nil {
		return err
	}
	// Unregister last: waiters blocked on vs.mu recheck registry identity
	// after we release and report ErrNotFound.
	s.mu.Lock()
	delete(s.videos, name)
	s.mu.Unlock()
	return nil
}

// teardownVideo removes a video's files, catalog rows, and tombstone, in
// that order. Called by Delete and by load's crash recovery.
func (s *Store) teardownVideo(name string, phys map[int]*PhysMeta) error {
	if err := s.files.DeleteVideo(name); err != nil {
		return err
	}
	if phys != nil {
		for id := range phys {
			if err := s.cat.Delete("phys", physKey(name, id)); err != nil {
				return err
			}
		}
	} else {
		// Recovery path: sweep every phys row prefixed by the video name.
		for _, key := range s.cat.Keys("phys") {
			if i := strings.LastIndexByte(key, '/'); i >= 0 && key[:i] == name {
				if err := s.cat.Delete("phys", key); err != nil {
					return err
				}
			}
		}
	}
	if err := s.cat.Delete("videos", name); err != nil {
		return err
	}
	return s.cat.Delete("deleting", name)
}

// Videos lists the logical videos in the store.
func (s *Store) Videos() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.videos))
	for name := range s.videos {
		out = append(out, name)
	}
	return out
}

// videoNames snapshots the registry (sorted) for iteration without
// holding any lock across per-video work.
func (s *Store) videoNames() []string {
	names := s.Videos()
	sort.Strings(names)
	return names
}

// Info returns a copy of the video's metadata and its physical views.
func (s *Store) Info(name string) (VideoMeta, []PhysMeta, error) {
	vs := s.acquire(name)
	if vs == nil {
		return VideoMeta{}, nil, ErrNotFound
	}
	defer vs.mu.Unlock()
	var phys []PhysMeta
	for _, p := range vs.phys {
		cp := *p
		cp.GOPs = append([]GOPMeta(nil), p.GOPs...)
		phys = append(phys, cp)
	}
	return *vs.meta, phys, nil
}

// TotalBytes returns the stored size of a logical video per the catalog.
func (s *Store) TotalBytes(name string) (int64, error) {
	vs := s.acquire(name)
	if vs == nil {
		return 0, ErrNotFound
	}
	defer vs.mu.Unlock()
	return vs.totalBytes(), nil
}

// savePhys persists a physical video record. Caller holds the video lock.
func (s *Store) savePhys(video string, p *PhysMeta) error {
	return s.cat.Put("phys", physKey(video, p.ID), p)
}

// saveVideo persists a video record. Caller holds the video lock.
func (s *Store) saveVideo(v *VideoMeta) error {
	return s.cat.Put("videos", v.Name, v)
}

// tick advances and returns the video's LRU clock. Caller holds the video
// lock.
func (s *Store) tick(v *VideoMeta) int64 {
	v.Clock++
	return v.Clock
}

// allocPhys reserves the next physical-video ID. Caller holds the video
// lock.
func (s *Store) allocPhys(v *VideoMeta) int {
	id := v.NextPhys
	v.NextPhys++
	return id
}

// Estimator exposes the MBPP->PSNR estimator (for tests and experiments).
func (s *Store) Estimator() *quality.Estimator { return s.est }

// Options returns the effective options.
func (s *Store) Options() Options { return s.opts }

// resolveRefIn resolves a GOPRef against a held lock set. Returns
// errVideosNeeded when the target video's lock is not held.
func resolveRefIn(held map[string]*videoState, ref GOPRef) (*videoState, *PhysMeta, *GOPMeta, error) {
	vs := held[ref.Video]
	if vs == nil {
		return nil, nil, nil, errVideosNeeded{names: []string{ref.Video}}
	}
	p := vs.byID(ref.Phys)
	if p == nil {
		return nil, nil, nil, fmt.Errorf("%w: phys %d of %s", errDanglingRef, ref.Phys, ref.Video)
	}
	for i := range p.GOPs {
		if p.GOPs[i].Seq == ref.Seq {
			return vs, p, &p.GOPs[i], nil
		}
	}
	return nil, nil, nil, fmt.Errorf("%w: seq %d of %s/%d", errDanglingRef, ref.Seq, ref.Video, ref.Phys)
}

// runJobs executes n tasks on the store's bounded worker pool and returns
// the accumulated errors. It must be called WITHOUT any video lock held:
// tasks are CPU-bound and may outnumber pool slots. At most
// min(n, Workers) goroutines are spawned, pulling task indices from a
// shared counter; the semaphore is re-acquired per task so concurrent
// reads interleave fairly on the pool rather than running to completion
// one at a time.
//
// Cancellation is first-error-wins: each worker checks ctx before
// claiming its next task, so a cancelled read stops consuming CPU at the
// next task boundary (an in-flight GOP decode finishes, then the worker
// exits). The context's cause is folded into the returned error alongside
// any task errors that already occurred.
func (s *Store) runJobs(ctx context.Context, n int, run func(i int) error) error {
	return s.runJobsPrepared(ctx, n, nil, run)
}

// runJobsPrepared is runJobs with an optional prepare hook that executes
// BEFORE the task's semaphore slot is acquired. Work that blocks on IO —
// waiting out a prefetched GOP fetch — belongs in prepare, so a task
// stalled on the backend never occupies a CPU slot another read could
// use. A prepare error records as the task's error and skips run.
func (s *Store) runJobsPrepared(ctx context.Context, n int, prepare, run func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := cap(s.workSem)
	if workers > n {
		workers = n
	}
	errs := make([]error, n+1)
	var next atomic.Int64
	var bailed atomic.Bool // some worker abandoned tasks due to cancellation
	var wg sync.WaitGroup
	// A non-cancellable context (Done() == nil: Read's default) skips the
	// per-task cancellation branch entirely, keeping the batch path free.
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if done != nil {
					select {
					case <-done:
						bailed.Store(true)
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if prepare != nil {
					if errs[i] = prepare(i); errs[i] != nil {
						continue
					}
				}
				// The semaphore wait can be long on a loaded pool; bail out
				// of it (and don't run the task) once cancelled, so a dead
				// read stops consuming CPU slots it hasn't acquired yet.
				if done != nil {
					select {
					case s.workSem <- struct{}{}:
					case <-done:
						bailed.Store(true)
						return
					}
				} else {
					s.workSem <- struct{}{}
				}
				errs[i] = run(i)
				<-s.workSem
			}
		}()
	}
	wg.Wait()
	if bailed.Load() {
		errs[n] = context.Cause(ctx) // recorded once, not per worker
	}
	return errors.Join(errs...)
}

// effectiveQuality returns the encode quality preset for a spec.
func effectiveQuality(q int) int {
	if q <= 0 {
		return codec.DefaultQuality
	}
	return q
}
