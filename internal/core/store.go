package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/catalog"
	"repro/internal/codec"
	"repro/internal/cost"
	"repro/internal/quality"
	"repro/internal/storage"
)

// Options configure a Store. The zero value selects the paper's prototype
// defaults; ablation flags exist to reproduce the paper's baselines
// (greedy planning in Figure 10, ordinary LRU in Figures 12/16, deferred
// compression off in Figure 12).
type Options struct {
	// CostModel supplies the transcode α table; nil uses cost.Default().
	// Pass a Calibrate()d model to reproduce install-time calibration.
	CostModel *cost.Model
	// BudgetMultiple sets each video's default storage budget as a
	// multiple of its originally written size (paper default 10). <0
	// means unlimited.
	BudgetMultiple float64
	// MinPSNR is the default read quality cutoff ε in dB (paper: 40).
	MinPSNR float64
	// GOPFrames is the GOP length for compressed writes (paper: codecs
	// typically use 30-300; prototype default 30).
	GOPFrames int
	// RawBlockBytes caps uncompressed GOP blocks (paper: 25MB, one rgb 4K
	// frame). Frames larger than this are stored one per block.
	RawBlockBytes int64
	// Gamma and Zeta weight the position and redundancy terms of LRU_VSS
	// (paper: γ=2, ζ=1).
	Gamma, Zeta float64
	// DeferredThreshold is the fraction of the budget above which
	// deferred compression activates (paper: 25%).
	DeferredThreshold float64
	// JointMinPSNR is the recovered-quality threshold below which joint
	// compression of a GOP pair is aborted (paper: 24 dB).
	JointMinPSNR float64

	// GreedyPlanner selects the dependency-naive greedy baseline instead
	// of the solver (Section 6.1 comparison).
	GreedyPlanner bool
	// OrdinaryLRU disables the position/redundancy offsets of LRU_VSS.
	OrdinaryLRU bool
	// DisableCache turns off caching of read results.
	DisableCache bool
	// DisableDeferred turns off deferred compression.
	DisableDeferred bool
	// QualitySampleEvery controls how often cached compressed GOPs are
	// decoded back to refine the MBPP->PSNR estimator (paper: periodic
	// sampling). Every Nth cached GOP; 0 uses the default of 16.
	QualitySampleEvery int
}

func (o Options) withDefaults() Options {
	if o.CostModel == nil {
		o.CostModel = cost.Default()
	}
	if o.BudgetMultiple == 0 {
		o.BudgetMultiple = 10
	}
	if o.MinPSNR == 0 {
		o.MinPSNR = quality.Lossless
	}
	if o.GOPFrames == 0 {
		o.GOPFrames = 30
	}
	if o.RawBlockBytes == 0 {
		o.RawBlockBytes = 25 << 20
	}
	if o.Gamma == 0 {
		o.Gamma = 2
	}
	if o.Zeta == 0 {
		o.Zeta = 1
	}
	if o.DeferredThreshold == 0 {
		o.DeferredThreshold = 0.25
	}
	if o.JointMinPSNR == 0 {
		// The paper aborts below 24 dB; its own Table 2 reports
		// recovered-right quality of exactly 24 dB on high-overlap data.
		// Our synthetic warps land ~1 dB lower in the same regime, so the
		// default bound scales to 22 to keep those pairs admissible (see
		// EXPERIMENTS.md).
		o.JointMinPSNR = 22
	}
	if o.QualitySampleEvery == 0 {
		o.QualitySampleEvery = 16
	}
	return o
}

// Store is the VSS storage manager instance rooted at a directory.
type Store struct {
	opts  Options
	files *storage.Store
	cat   *catalog.DB
	est   *quality.Estimator

	mu     sync.Mutex
	videos map[string]*VideoMeta
	phys   map[string]map[int]*PhysMeta // video -> id -> meta

	sampleCounter int
}

// ErrNotFound is returned for operations on unknown videos.
var ErrNotFound = errors.New("core: video not found")

// ErrExists is returned when creating a video that already exists.
var ErrExists = errors.New("core: video already exists")

// Open opens (creating if necessary) a VSS store in dir.
func Open(dir string, opts Options) (*Store, error) {
	files, err := storage.Open(filepath.Join(dir, "data"))
	if err != nil {
		return nil, err
	}
	cat, err := catalog.Open(filepath.Join(dir, "catalog"))
	if err != nil {
		return nil, err
	}
	s := &Store{
		opts:   opts.withDefaults(),
		files:  files,
		cat:    cat,
		est:    quality.NewEstimator(nil),
		videos: make(map[string]*VideoMeta),
		phys:   make(map[string]map[int]*PhysMeta),
	}
	if err := s.load(); err != nil {
		cat.Close()
		return nil, err
	}
	return s, nil
}

// load hydrates the in-memory metadata cache from the catalog.
func (s *Store) load() error {
	for _, name := range s.cat.Keys("videos") {
		var v VideoMeta
		if _, err := s.cat.Get("videos", name, &v); err != nil {
			return err
		}
		s.videos[name] = &v
		s.phys[name] = make(map[int]*PhysMeta)
	}
	for _, key := range s.cat.Keys("phys") {
		var p PhysMeta
		if _, err := s.cat.Get("phys", key, &p); err != nil {
			return err
		}
		var video string
		var id int
		if _, err := fmt.Sscanf(key, "%s", &video); err != nil {
			return fmt.Errorf("core: bad phys key %q", key)
		}
		// Key layout is "<video>/<id>"; split on the final slash.
		for i := len(key) - 1; i >= 0; i-- {
			if key[i] == '/' {
				video = key[:i]
				if _, err := fmt.Sscanf(key[i+1:], "%d", &id); err != nil {
					return fmt.Errorf("core: bad phys key %q", key)
				}
				break
			}
		}
		if s.phys[video] == nil {
			// Orphaned physical record (video deleted mid-crash): drop it.
			s.cat.Delete("phys", key)
			continue
		}
		s.phys[video][id] = &p
	}
	return nil
}

// Close flushes metadata and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cat.Close()
}

// Create registers a new logical video. budgetBytes of 0 applies the
// default multiple-of-original budget once the first write lands; a
// negative value means unlimited.
func (s *Store) Create(name string, budgetBytes int64) error {
	if name == "" || name != filepath.Base(name) || name[0] == '.' {
		return fmt.Errorf("core: invalid video name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.videos[name]; ok {
		return ErrExists
	}
	v := &VideoMeta{Name: name, Budget: budgetBytes, Original: -1}
	if err := s.cat.Put("videos", name, v); err != nil {
		return err
	}
	s.videos[name] = v
	s.phys[name] = make(map[int]*PhysMeta)
	return nil
}

// Delete removes a logical video and all physical data.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.videos[name]
	if !ok {
		return ErrNotFound
	}
	for id := range s.phys[name] {
		if err := s.cat.Delete("phys", physKey(name, id)); err != nil {
			return err
		}
	}
	if err := s.cat.Delete("videos", v.Name); err != nil {
		return err
	}
	delete(s.videos, name)
	delete(s.phys, name)
	return s.files.DeleteVideo(name)
}

// Videos lists the logical videos in the store.
func (s *Store) Videos() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.videos))
	for name := range s.videos {
		out = append(out, name)
	}
	return out
}

// Info returns a copy of the video's metadata and its physical views.
func (s *Store) Info(name string) (VideoMeta, []PhysMeta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.videos[name]
	if !ok {
		return VideoMeta{}, nil, ErrNotFound
	}
	var phys []PhysMeta
	for _, p := range s.phys[name] {
		phys = append(phys, *p)
	}
	return *v, phys, nil
}

// TotalBytes returns the stored size of a logical video per the catalog.
func (s *Store) TotalBytes(name string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.videos[name]; !ok {
		return 0, ErrNotFound
	}
	return s.totalBytesLocked(name), nil
}

func (s *Store) totalBytesLocked(name string) int64 {
	var total int64
	for _, p := range s.phys[name] {
		total += p.Bytes()
	}
	return total
}

// savePhys persists a physical video record.
func (s *Store) savePhys(video string, p *PhysMeta) error {
	return s.cat.Put("phys", physKey(video, p.ID), p)
}

// saveVideo persists a video record.
func (s *Store) saveVideo(v *VideoMeta) error {
	return s.cat.Put("videos", v.Name, v)
}

// tick advances and returns the video's LRU clock.
func (s *Store) tick(v *VideoMeta) int64 {
	v.Clock++
	return v.Clock
}

// allocPhys reserves the next physical-video ID.
func (s *Store) allocPhys(v *VideoMeta) int {
	id := v.NextPhys
	v.NextPhys++
	return id
}

// Estimator exposes the MBPP->PSNR estimator (for tests and experiments).
func (s *Store) Estimator() *quality.Estimator { return s.est }

// Options returns the effective options.
func (s *Store) Options() Options { return s.opts }

// physByID returns the physical video record, or nil.
func (s *Store) physByID(video string, id int) *PhysMeta {
	m := s.phys[video]
	if m == nil {
		return nil
	}
	return m[id]
}

// originalOf returns the originally written physical video (m0).
func (s *Store) originalOf(name string) *PhysMeta {
	v := s.videos[name]
	if v == nil || v.Original < 0 {
		return nil
	}
	return s.physByID(name, v.Original)
}

// effectiveQuality returns the encode quality preset for a spec.
func effectiveQuality(q int) int {
	if q <= 0 {
		return codec.DefaultQuality
	}
	return q
}
