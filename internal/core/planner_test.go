package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/codec"
	"repro/internal/frame"
)

func TestNRectOps(t *testing.T) {
	full := FullNRect()
	if !full.IsFull() {
		t.Error("full rect not full")
	}
	half := NRect{0, 0, 0.5, 1}
	if half.IsFull() {
		t.Error("half rect reported full")
	}
	if !full.Contains(half) {
		t.Error("full must contain half")
	}
	if half.Contains(full) {
		t.Error("half cannot contain full")
	}
	if (NRect{0.3, 0.3, 0.3, 0.8}).Empty() != true {
		t.Error("zero-width rect not empty")
	}
}

func TestNRectPixelRoundTrip(t *testing.T) {
	// Property: normalizing a pixel rect and converting back recovers it.
	prop := func(x0, y0, dx, dy uint8) bool {
		w, h := 640, 480
		r := frame.Rect{
			X0: int(x0) % 320, Y0: int(y0) % 240,
		}
		r.X1 = r.X0 + int(dx)%300 + 1
		r.Y1 = r.Y0 + int(dy)%200 + 1
		back := Normalize(r, w, h).Pixels(w, h)
		return back == r
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoverageMergesContiguousGOPs(t *testing.T) {
	p := &PhysMeta{FPS: 4, Start: 0, GOPs: []GOPMeta{
		{Seq: 0, StartFrame: 0, Frames: 8},
		{Seq: 1, StartFrame: 8, Frames: 8},
		{Seq: 3, StartFrame: 24, Frames: 8}, // hole: seq 2 evicted
	}}
	spans := coverage(p)
	if len(spans) != 2 {
		t.Fatalf("coverage %v", spans)
	}
	if spans[0].a != 0 || spans[0].b != 4 {
		t.Errorf("first span [%f, %f)", spans[0].a, spans[0].b)
	}
	if spans[1].a != 6 || spans[1].b != 8 {
		t.Errorf("second span [%f, %f)", spans[1].a, spans[1].b)
	}
	if !covers(spans, 0.5, 3.5) {
		t.Error("covers within first span failed")
	}
	if covers(spans, 3, 7) {
		t.Error("covers across the hole should fail")
	}
}

func TestPhysMetaEndAndBytes(t *testing.T) {
	p := &PhysMeta{FPS: 8, Start: 2, GOPs: []GOPMeta{
		{StartFrame: 0, Frames: 16, Bytes: 100},
		{StartFrame: 16, Frames: 8, Bytes: 50},
	}}
	if p.End() != 5 { // 2s + 24/8
		t.Errorf("end %f", p.End())
	}
	if p.Bytes() != 150 {
		t.Errorf("bytes %d", p.Bytes())
	}
}

func TestIntervalsForPartitionsAtTransitions(t *testing.T) {
	mk := func(start float64, frames int) *PhysMeta {
		return &PhysMeta{FPS: 4, Start: start, GOPs: []GOPMeta{{StartFrame: 0, Frames: frames}}}
	}
	// m0 covers [0, 10); cached views cover [3, 6) and [7, 9.5).
	cands := []*PhysMeta{mk(0, 40), mk(3, 12), mk(7, 10)}
	ivs := intervalsFor(cands, 2, 8)
	// Expected transition points within (2, 8): 3, 6, 7 -> intervals
	// [2,3) [3,6) [6,7) [7,8).
	if len(ivs) != 4 {
		t.Fatalf("intervals %v", ivs)
	}
	wantStarts := []float64{2, 3, 6, 7}
	for i, iv := range ivs {
		if iv[0] != wantStarts[i] {
			t.Errorf("interval %d starts at %f, want %f", i, iv[0], wantStarts[i])
		}
	}
}

func TestEntryLookbackZeroAtGOPBoundary(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(16, 64, 48, 70), 4, codec.H264)
	_, phys, _ := s.Info("v")
	p := &phys[0]
	if lb := s.entryLookback(p, 0); lb != 0 {
		t.Errorf("lookback at GOP start = %f", lb)
	}
	if lb := s.entryLookback(p, 2.0); lb != 0 { // GOPFrames=8 at 4fps = 2s GOPs
		t.Errorf("lookback at second GOP boundary = %f", lb)
	}
	mid := s.entryLookback(p, 1.0) // 4 frames into an 8-frame GOP
	if mid <= 0 {
		t.Errorf("mid-GOP lookback = %f, want > 0", mid)
	}
	deeper := s.entryLookback(p, 1.75) // 7 frames in
	if deeper <= mid {
		t.Errorf("deeper entry (%f) should cost more than mid (%f)", deeper, mid)
	}
}

func TestEntryLookbackRawIsFree(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(8, 64, 48, 71), 4, codec.Raw)
	_, phys, _ := s.Info("v")
	if lb := s.entryLookback(&phys[0], 1.25); lb != 0 {
		t.Errorf("raw lookback = %f", lb)
	}
}

func TestUseMSEUpsamplePenalty(t *testing.T) {
	small := &PhysMeta{Width: 32, Height: 24, ROI: FullNRect()}
	big := &PhysMeta{Width: 128, Height: 96, ROI: FullNRect()}
	r := resolvedSpec{roi: FullNRect(), roiW: 128, roiH: 96}
	if useMSE(small, r) <= useMSE(big, r) {
		t.Error("upsampling a small view must carry a quality penalty")
	}
	// Downsampling carries no penalty.
	rSmall := resolvedSpec{roi: FullNRect(), roiW: 32, roiH: 24}
	if useMSE(big, rSmall) != 0 {
		t.Errorf("downsample penalty = %f, want 0", useMSE(big, rSmall))
	}
}

func TestPlanPrefersPassthroughFragment(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(32, 64, 48, 72), 4, codec.H264)
	// Cache a full-range hevc copy.
	if _, err := s.Read("v", ReadSpec{P: Physical{Codec: codec.HEVC}}); err != nil {
		t.Fatal(err)
	}
	// Re-plan the same read: the single cheapest plan must be the cached
	// hevc view (passthrough), not the original.
	res, err := s.Read("v", ReadSpec{P: Physical{Codec: codec.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanRuns != 1 {
		t.Errorf("plan runs %d", res.Stats.PlanRuns)
	}
	if res.Stats.GOPsDecoded != 0 {
		t.Errorf("passthrough plan decoded %d GOPs", res.Stats.GOPsDecoded)
	}
}

func TestEvictionNeverExceedsBudgetProperty(t *testing.T) {
	// Property: after any random sequence of reads, stored bytes respect
	// the budget.
	s := newStore(t, Options{BudgetMultiple: 2})
	writeVideo(t, s, "v", scene(32, 64, 48, 73), 4, codec.H264)
	v, _, _ := s.Info("v")
	rng := rand.New(rand.NewSource(74))
	for i := 0; i < 12; i++ {
		t1 := float64(rng.Intn(6))
		spec := ReadSpec{T: Temporal{Start: t1, End: t1 + 1 + float64(rng.Intn(2))}}
		switch rng.Intn(3) {
		case 0:
			spec.P.Codec = codec.HEVC
		case 1:
			spec.S = Spatial{Width: 32, Height: 24}
		}
		if _, err := s.Read("v", spec); err != nil {
			t.Fatal(err)
		}
		total, err := s.TotalBytes("v")
		if err != nil {
			t.Fatal(err)
		}
		if total > v.Budget {
			t.Fatalf("read %d: stored %d exceeds budget %d", i, total, v.Budget)
		}
	}
}

func TestGopContainingEdges(t *testing.T) {
	p := &PhysMeta{FPS: 4, GOPs: []GOPMeta{
		{Seq: 0, StartFrame: 0, Frames: 8},
		{Seq: 1, StartFrame: 8, Frames: 8},
	}}
	if g := gopContaining(p, 0); g == nil || g.Seq != 0 {
		t.Error("frame 0 lookup")
	}
	if g := gopContaining(p, 8); g == nil || g.Seq != 1 {
		t.Error("boundary frame lookup")
	}
	if g := gopContaining(p, 16); g == nil || g.Seq != 1 {
		t.Error("past-the-end should clamp to last GOP")
	}
	empty := &PhysMeta{FPS: 4}
	if g := gopContaining(empty, 0); g != nil {
		t.Error("empty phys should return nil")
	}
}

func TestResolveDefaults(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(16, 64, 48, 75), 4, codec.H264)
	vs := s.acquire("v")
	r, err := s.resolve(vs.meta, ReadSpec{})
	vs.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if r.t1 != 0 || r.t2 != 4 || r.outW != 64 || r.outH != 48 || r.outFPS != 4 {
		t.Errorf("defaults %+v", r)
	}
	if r.codec != codec.Raw {
		t.Errorf("default codec %s", r.codec)
	}
	if r.minPSNR != s.opts.MinPSNR {
		t.Errorf("default min psnr %f", r.minPSNR)
	}
}
