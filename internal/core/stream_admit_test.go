package core

import (
	"bytes"
	"context"
	"io"
	"testing"

	"repro/internal/codec"
)

// drainGOPs consumes a compressed stream to EOF and returns its GOPs.
func drainGOPs(t *testing.T, st *ReadStream) [][]byte {
	t.Helper()
	var gops [][]byte
	for _, b := range collect(t, st) {
		if b.GOP == nil {
			t.Fatal("compressed stream produced a non-GOP batch")
		}
		gops = append(gops, b.GOP)
	}
	return gops
}

// TestStreamAdmitsTranscodedView verifies the serving-gap fix: a
// compressed transcode stream cache-admits its output on clean EOF, so
// the second stream of the same spec plans as pure passthrough (no decode
// work) and yields byte-identical GOPs — as does a batch Read.
func TestStreamAdmitsTranscodedView(t *testing.T) {
	s := newStore(t, Options{BudgetMultiple: -1})
	writeVideo(t, s, "v", scene(48, 64, 48, 7), 8, codec.H264)

	spec := ReadSpec{P: Physical{Codec: codec.HEVC}}
	st, err := s.ReadStream(context.Background(), "v", spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	first := drainGOPs(t, st)
	if !st.Stats().Admitted {
		t.Fatal("transcode stream did not cache-admit its output")
	}
	if st.Stats().GOPsDecoded == 0 {
		t.Fatal("first transcode stream reported no decode work")
	}

	st2, err := s.ReadStream(context.Background(), "v", spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	second := drainGOPs(t, st2)
	if got := st2.Stats().GOPsDecoded; got != 0 {
		t.Errorf("second stream decoded %d GOPs, want 0 (passthrough of the admitted view)", got)
	}
	if st2.Stats().Admitted {
		t.Error("passthrough stream re-admitted an existing view")
	}
	if len(first) != len(second) {
		t.Fatalf("second stream yielded %d GOPs, first %d", len(second), len(first))
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("GOP %d differs between pre- and post-admission streams", i)
		}
	}

	// The batch path agrees byte-for-byte after admission.
	res, err := s.Read("v", spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GOPs) != len(first) {
		t.Fatalf("batch read yielded %d GOPs, stream %d", len(res.GOPs), len(first))
	}
	for i := range first {
		if !bytes.Equal(first[i], res.GOPs[i]) {
			t.Fatalf("GOP %d differs between stream and batch after admission", i)
		}
	}
}

// TestStreamAdmitDisabled verifies the opt-out: with StreamAdmitBytes < 0
// no stream admits, and with a bound smaller than the output the stream
// delivers everything but admits nothing.
func TestStreamAdmitDisabled(t *testing.T) {
	for _, tc := range []struct {
		name  string
		bytes int64
	}{{"disabled", -1}, {"outgrown", 16}} {
		t.Run(tc.name, func(t *testing.T) {
			s := newStore(t, Options{BudgetMultiple: -1, StreamAdmitBytes: tc.bytes})
			writeVideo(t, s, "v", scene(24, 48, 32, 5), 8, codec.H264)

			spec := ReadSpec{P: Physical{Codec: codec.HEVC}}
			st, err := s.ReadStream(context.Background(), "v", spec)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if gops := drainGOPs(t, st); len(gops) == 0 {
				t.Fatal("stream yielded no GOPs")
			}
			if st.Stats().Admitted {
				t.Fatal("stream admitted despite the bound")
			}
			st2, err := s.ReadStream(context.Background(), "v", spec)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			drainGOPs(t, st2)
			if st2.Stats().GOPsDecoded == 0 {
				t.Error("second stream decoded nothing — something admitted anyway")
			}
		})
	}
}

// TestStreamAdmitSkipsPassthrough verifies a same-format stream (already
// served entirely by one view in the output configuration) does not admit
// a duplicate view.
func TestStreamAdmitSkipsPassthrough(t *testing.T) {
	s := newStore(t, Options{BudgetMultiple: -1})
	writeVideo(t, s, "v", scene(24, 48, 32, 5), 8, codec.H264)

	st, err := s.ReadStream(context.Background(), "v", ReadSpec{P: Physical{Codec: codec.H264}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for {
		if _, err := st.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().Admitted {
		t.Fatal("pure passthrough stream admitted a duplicate view")
	}
}
