package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
	"repro/internal/frame"
)

// collect drains a stream to completion.
func collect(t *testing.T, st *ReadStream) []*ReadBatch {
	t.Helper()
	var out []*ReadBatch
	for {
		b, err := st.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("stream Next: %v", err)
		}
		out = append(out, b)
	}
}

// TestStreamMatchesBatchRaw verifies that a raw streaming read yields the
// same frames, byte-identical and in the same order, as the batch Read.
func TestStreamMatchesBatchRaw(t *testing.T) {
	s := newStore(t, Options{DisableCache: true, BudgetMultiple: -1})
	writeVideo(t, s, "v", scene(48, 64, 48, 7), 8, codec.H264)

	spec := ReadSpec{T: Temporal{Start: 1, End: 5}, P: Physical{Format: frame.RGB}}
	st, err := s.ReadStream(context.Background(), "v", spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var streamed []*frame.Frame
	for _, b := range collect(t, st) {
		if b.GOP != nil {
			t.Fatal("raw stream produced an encoded GOP")
		}
		streamed = append(streamed, b.Frames...)
	}

	res, err := s.Read("v", spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Frames) {
		t.Fatalf("stream yielded %d frames, batch %d", len(streamed), len(res.Frames))
	}
	for i := range streamed {
		if streamed[i].Format != res.Frames[i].Format ||
			!bytes.Equal(streamed[i].Data, res.Frames[i].Data) {
			t.Fatalf("frame %d differs between stream and batch", i)
		}
	}
	if st.Width != res.Width || st.Height != res.Height || st.FPS != res.FPS {
		t.Fatalf("stream header %dx%d@%d, batch %dx%d@%d",
			st.Width, st.Height, st.FPS, res.Width, res.Height, res.FPS)
	}
	if got, want := st.Stats().GOPsDecoded, res.Stats.GOPsDecoded; got != want {
		t.Errorf("stream decoded %d GOPs, batch %d", got, want)
	}
	if st.Stats().Admitted {
		t.Error("streaming read reported cache admission")
	}
}

// TestStreamMatchesBatchCompressed verifies byte-identical GOPs for both a
// transcode (hevc) and a same-format passthrough (h264) compressed read.
func TestStreamMatchesBatchCompressed(t *testing.T) {
	for _, cd := range []codec.ID{codec.HEVC, codec.H264} {
		t.Run(string(cd), func(t *testing.T) {
			s := newStore(t, Options{DisableCache: true, BudgetMultiple: -1})
			writeVideo(t, s, "v", scene(48, 64, 48, 7), 8, codec.H264)

			spec := ReadSpec{P: Physical{Codec: cd}}
			st, err := s.ReadStream(context.Background(), "v", spec)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			var gops [][]byte
			for _, b := range collect(t, st) {
				if b.Frames != nil {
					t.Fatal("compressed stream produced raw frames")
				}
				gops = append(gops, b.GOP)
			}

			res, err := s.Read("v", spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(gops) != len(res.GOPs) {
				t.Fatalf("stream yielded %d GOPs, batch %d", len(gops), len(res.GOPs))
			}
			for i := range gops {
				if !bytes.Equal(gops[i], res.GOPs[i]) {
					t.Fatalf("GOP %d differs between stream and batch", i)
				}
			}
		})
	}
}

// TestStreamCancelledContext verifies that an already-cancelled context
// fails fast: ReadStream refuses to start and ReadContext performs no
// decode work (the satellite first-error-wins check in the worker loop).
func TestStreamCancelledContext(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(16, 32, 24, 3), 8, codec.H264)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ReadStream(ctx, "v", ReadSpec{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadStream on cancelled ctx: %v, want context.Canceled", err)
	}
	if _, err := s.ReadContext(ctx, "v", ReadSpec{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadContext on cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestRunJobsCancelled unit-tests the worker-loop context check directly:
// with an already-cancelled context no task runs, and the context's cause
// is the reported error.
func TestRunJobsCancelled(t *testing.T) {
	s := newStore(t, Options{Workers: 4})
	ctx, cancel := context.WithCancelCause(context.Background())
	boom := errors.New("boom")
	cancel(boom)
	var ran atomic.Int64
	err := s.runJobs(ctx, 16, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("runJobs error %v, want cause %v", err, boom)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d tasks ran on a cancelled context, want 0", n)
	}
	// A live context runs everything.
	if err := s.runJobs(context.Background(), 16, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 16 {
		t.Fatalf("%d tasks ran, want 16", n)
	}
}

// TestStreamClose verifies that closing a stream mid-iteration stops it:
// the next Next returns the close error, and workers wind down without
// panicking or leaking (the race detector covers the latter).
func TestStreamClose(t *testing.T) {
	s := newStore(t, Options{Workers: 2})
	writeVideo(t, s, "v", scene(64, 64, 48, 5), 8, codec.H264)

	st, err := s.ReadStream(context.Background(), "v", ReadSpec{P: Physical{Codec: codec.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	for {
		_, err := st.Next()
		if err == nil {
			continue // completed units may still drain in order; keep going
		}
		if err == io.EOF || errors.Is(err, errStreamClosed) {
			break
		}
		t.Fatalf("Next after Close: %v", err)
	}
	// Close is idempotent and safe after the stream ended.
	st.Close()
}

// TestStreamPropagatesParentCancel verifies that cancelling the caller's
// context mid-stream surfaces promptly as the stream error.
func TestStreamPropagatesParentCancel(t *testing.T) {
	s := newStore(t, Options{Workers: 1})
	writeVideo(t, s, "v", scene(64, 64, 48, 5), 8, codec.H264)

	ctx, cancel := context.WithCancel(context.Background())
	st, err := s.ReadStream(ctx, "v", ReadSpec{P: Physical{Codec: codec.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	sawCancel := false
	for i := 0; i < 1000; i++ {
		_, err := st.Next()
		if errors.Is(err, context.Canceled) {
			sawCancel = true
			break
		}
		if err == io.EOF {
			break // the stream finished before the cancel landed; fine
		}
		if err != nil {
			t.Fatalf("Next after parent cancel: %v", err)
		}
	}
	if !sawCancel {
		t.Log("stream drained before cancellation was observed (timing-dependent)")
	}
}
