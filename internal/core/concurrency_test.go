package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
	"repro/internal/quality"
)

// This file stress-tests the two-tier locking architecture: reads, writes,
// maintenance, compaction, joint compression, and deletes racing across
// multiple videos. Run with -race (CI does) to validate the locking
// contracts documented in store.go.

// TestConcurrentReadWriteMaintain hammers every public mutation path at
// once across several videos. Correctness bar: no data race, no deadlock,
// and every read that succeeds returns intact frames.
func TestConcurrentReadWriteMaintain(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 8, BudgetMultiple: 4})
	const nVideos = 3
	names := make([]string, nVideos)
	for i := range names {
		names[i] = fmt.Sprintf("cam-%d", i)
		writeVideo(t, s, names[i], scene(24, 64, 48, int64(100+i)), 8, codec.H264)
	}

	specs := []ReadSpec{
		{},
		{S: Spatial{Width: 32, Height: 24}},
		{T: Temporal{Start: 1, End: 2}},
		{P: Physical{Codec: codec.HEVC, Quality: 70, MinPSNR: 20}},
		{S: Spatial{Width: 32, Height: 24}, P: Physical{Codec: codec.H264, Quality: 80, MinPSNR: 20}},
	}

	var wg sync.WaitGroup
	var readErr, writeErr, maintErr atomic.Value
	const itersPerWorker = 6

	// Readers: every video, varied specs, all at once.
	for vi := 0; vi < nVideos; vi++ {
		for si := range specs {
			wg.Add(1)
			go func(name string, spec ReadSpec) {
				defer wg.Done()
				for it := 0; it < itersPerWorker; it++ {
					res, err := s.Read(name, spec)
					if err != nil {
						readErr.Store(fmt.Errorf("read %s: %w", name, err))
						return
					}
					if res.FrameCount() == 0 {
						readErr.Store(fmt.Errorf("read %s: empty result", name))
						return
					}
				}
			}(names[vi], specs[si])
		}
	}

	// Writers: stream more GOPs onto every video while it is being read.
	for vi := 0; vi < nVideos; vi++ {
		wg.Add(1)
		go func(name string, seed int64) {
			defer wg.Done()
			w, err := s.OpenWriter(name, WriteSpec{FPS: 8, Codec: codec.H264})
			if err != nil {
				writeErr.Store(err)
				return
			}
			defer w.Close()
			for it := 0; it < itersPerWorker; it++ {
				if err := w.Append(scene(8, 64, 48, seed)...); err != nil {
					writeErr.Store(fmt.Errorf("append %s: %w", name, err))
					return
				}
			}
			if err := w.Flush(); err != nil {
				writeErr.Store(fmt.Errorf("flush %s: %w", name, err))
			}
		}(names[vi], int64(100+vi))
	}

	// Background maintenance, compaction, and catalog readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < itersPerWorker*2; it++ {
			if err := s.Maintain(); err != nil {
				maintErr.Store(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < itersPerWorker*2; it++ {
			for _, name := range names {
				if _, err := s.CompactVideo(name); err != nil {
					maintErr.Store(err)
					return
				}
				if _, _, err := s.Info(name); err != nil {
					maintErr.Store(err)
					return
				}
				if _, err := s.TotalBytes(name); err != nil {
					maintErr.Store(err)
					return
				}
			}
		}
	}()

	// Create/delete churn on a video nobody else uses: registry traffic
	// must not disturb per-video work.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < itersPerWorker; it++ {
			if err := s.Create("scratch", -1); err != nil {
				maintErr.Store(err)
				return
			}
			if err := s.Write("scratch", WriteSpec{FPS: 8, Codec: codec.Raw}, scene(8, 32, 24, 7)); err != nil {
				maintErr.Store(err)
				return
			}
			if err := s.Delete("scratch"); err != nil {
				maintErr.Store(err)
				return
			}
		}
	}()

	wg.Wait()
	for _, v := range []atomic.Value{readErr, writeErr, maintErr} {
		if err, ok := v.Load().(error); ok {
			t.Fatal(err)
		}
	}

	// The store must still be coherent: a full read of each video round-
	// trips through whatever mix of views the race left behind.
	for i, name := range names {
		res, err := s.Read(name, ReadSpec{})
		if err != nil {
			t.Fatalf("final read %s: %v", name, err)
		}
		want := 24 + itersPerWorker*8 // initial scene + streamed appends
		if res.FrameCount() != want {
			t.Errorf("%s: %d frames after churn, want %d", name, res.FrameCount(), want)
		}
		ref := scene(24, 64, 48, int64(100+i))
		p, err := quality.FramesPSNR(ref[:8], res.Frames[:8])
		if err != nil {
			t.Fatal(err)
		}
		// A single synthetic-codec encode lands near 24-25 dB on this
		// scene; corruption (mixed-up frames, torn GOPs) lands far below.
		if p < 18 {
			t.Errorf("%s: decoded prefix PSNR %.1f dB, content corrupted", name, p)
		}
	}
}

// TestConcurrentReadsOfDeletedVideo checks the delete/read race contract:
// a read either completes with data or fails with ErrNotFound — never a
// partial result or an internal error.
func TestConcurrentReadsOfDeletedVideo(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 8})
	writeVideo(t, s, "v", scene(16, 64, 48, 5), 8, codec.H264)

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				res, err := s.Read("v", ReadSpec{})
				if errors.Is(err, ErrNotFound) {
					return
				}
				if err != nil {
					errc <- err
					return
				}
				if res.FrameCount() != 16 {
					errc <- fmt.Errorf("partial read: %d frames", res.FrameCount())
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Delete("v"); err != nil {
			errc <- err
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestParallelReadsDifferentVideos verifies the headline invariant of the
// architecture: reads of different videos do not serialize on a global
// lock. It cannot assert wall-clock overlap portably, but it drives many
// simultaneous readers through distinct per-video locks and checks every
// result, which under -race proves the paths are actually concurrent.
func TestParallelReadsDifferentVideos(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 8})
	const nVideos = 4
	for i := 0; i < nVideos; i++ {
		writeVideo(t, s, fmt.Sprintf("v%d", i), scene(16, 64, 48, int64(i)), 8, codec.H264)
	}
	var wg sync.WaitGroup
	errc := make(chan error, nVideos*4)
	for i := 0; i < nVideos*4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("v%d", i%nVideos)
			res, err := s.Read(name, ReadSpec{})
			if err != nil {
				errc <- err
				return
			}
			if res.FrameCount() != 16 {
				errc <- fmt.Errorf("%s: got %d frames", name, res.FrameCount())
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPipelinedWriterPrefixReaders races one pipelined writer against
// concurrent readers of the same video and asserts the ingest pipeline's
// ordering guarantee: every successful read observes a durable GOP prefix
// — a whole number of GOPs, never shrinking, with the newest GOP holding
// the frames that were appended at that position. Run with -race (CI
// does).
func TestPipelinedWriterPrefixReaders(t *testing.T) {
	const (
		gop     = 8
		nGOPs   = 12
		readers = 4
	)
	s := newStore(t, Options{GOPFrames: gop, Workers: 8, BudgetMultiple: -1})
	if err := s.Create("live", -1); err != nil {
		t.Fatal(err)
	}
	ref := scene(gop*nGOPs, 64, 48, 33)

	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	writerDone := make(chan struct{})

	wg.Add(1)
	go func() { // camera: pipelined ingest, one GOP per Append
		defer wg.Done()
		defer close(writerDone)
		w, err := s.OpenWriterWith("live", WriteSpec{FPS: 8, Codec: codec.H264},
			WriteOptions{EncodeWorkers: 4, MaxInflightGOPs: 6})
		if err != nil {
			errc <- err
			return
		}
		for i := 0; i < len(ref); i += gop {
			if err := w.Append(ref[i : i+gop]...); err != nil {
				errc <- fmt.Errorf("append: %w", err)
				return
			}
		}
		if err := w.Close(); err != nil {
			errc <- fmt.Errorf("close: %w", err)
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				res, err := s.Read("live", ReadSpec{})
				if err != nil {
					// Nothing durable yet; the read plan has no GOPs.
					continue
				}
				n := res.FrameCount()
				if n%gop != 0 {
					errc <- fmt.Errorf("read observed %d frames: not a whole-GOP prefix", n)
					return
				}
				if n < last {
					errc <- fmt.Errorf("prefix shrank from %d to %d frames", last, n)
					return
				}
				last = n
				if n == 0 {
					continue
				}
				// The newest visible GOP must hold the frames appended at
				// that position: out-of-order commits would land far below
				// the codec's ~24 dB single-encode fidelity.
				p, err := quality.FramesPSNR(ref[n-gop:n], res.Frames[n-gop:n])
				if err != nil {
					errc <- err
					return
				}
				if p < 18 {
					errc <- fmt.Errorf("GOP at frames [%d,%d) PSNR %.1f dB: prefix holds wrong data", n-gop, n, p)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	res, err := s.Read("live", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameCount() != len(ref) {
		t.Fatalf("final read %d frames, want %d", res.FrameCount(), len(ref))
	}
	p, err := quality.FramesPSNR(ref, res.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if p < 18 {
		t.Errorf("final PSNR %.1f dB, content corrupted", p)
	}
}

// TestWorkersOptionSerialExecution pins the Workers=1 degenerate case: the
// pipeline must produce identical results with no parallelism.
func TestWorkersOptionSerialExecution(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 8, Workers: 1})
	writeVideo(t, s, "v", scene(16, 64, 48, 9), 8, codec.H264)
	res, err := s.Read("v", ReadSpec{S: Spatial{Width: 32, Height: 24}})
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameCount() != 16 || res.Width != 32 || res.Height != 24 {
		t.Fatalf("serial pipeline result %dx%d, %d frames", res.Width, res.Height, res.FrameCount())
	}
	if s.Options().Workers != 1 {
		t.Errorf("Workers option not preserved: %d", s.Options().Workers)
	}
}
