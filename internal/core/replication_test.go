package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/storage"
)

// openReplicatedStore opens a store over 4 shard roots with 2-way
// replication under dir (fresh backend handle per call, like a process
// restart).
func openReplicatedStore(t *testing.T, dir string) *Store {
	t.Helper()
	backend, err := storage.OpenShardedReplicated(ShardRoots(dir, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{GOPFrames: 8, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// wipeRoot empties one shard root in place (dead disk swapped for an
// empty one).
func wipeRoot(t *testing.T, root string) {
	t.Helper()
	if err := os.RemoveAll(root); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
}

// replicaCounts returns, per GOP address, how many roots hold a copy.
func replicaCounts(t *testing.T, dir string) map[string]int {
	t.Helper()
	counts := make(map[string]int)
	for _, root := range ShardRoots(dir, 4) {
		shard, err := storage.Open(root)
		if err != nil {
			t.Fatal(err)
		}
		err = shard.Walk(func(video, physDir string, seq int, size int64) error {
			counts[fmt.Sprintf("%s/%s/%d", video, physDir, seq)]++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return counts
}

// TestReplicatedStoreSurvivesRootLoss is the PR's acceptance drill end
// to end through the full store: with replicas=2 over 4 roots, deleting
// one root's contents leaves every read byte-identical to the healthy
// read, and one Maintain pass (which scrubs with the catalog as the
// size oracle) restores full 2-way replication with nothing
// unrecoverable.
func TestReplicatedStoreSurvivesRootLoss(t *testing.T) {
	dir := t.TempDir()
	s := openReplicatedStore(t, dir)
	writeVideo(t, s, "v", scene(24, 64, 48, 91), 4, codec.H264)

	healthy, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	healthyEnc, err := s.Read("v", ReadSpec{P: Physical{Codec: codec.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Every address must start fully replicated (writes fan out).
	for addr, n := range replicaCounts(t, dir) {
		if n != 2 {
			t.Fatalf("%s has %d replicas before the wipe, want 2", addr, n)
		}
	}

	wipeRoot(t, filepath.Join(dir, "data-shard0"))
	s = openReplicatedStore(t, dir)
	defer s.Close()

	degradedRaw, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatalf("read with one root wiped: %v", err)
	}
	if len(degradedRaw.Frames) != len(healthy.Frames) {
		t.Fatalf("degraded read: %d frames, healthy %d", len(degradedRaw.Frames), len(healthy.Frames))
	}
	for i := range healthy.Frames {
		if !bytes.Equal(degradedRaw.Frames[i].Data, healthy.Frames[i].Data) {
			t.Fatalf("frame %d differs between healthy and degraded read", i)
		}
	}
	degradedEnc, err := s.Read("v", ReadSpec{P: Physical{Codec: codec.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	if len(degradedEnc.GOPs) != len(healthyEnc.GOPs) {
		t.Fatalf("degraded encoded read: %d GOPs, healthy %d", len(degradedEnc.GOPs), len(healthyEnc.GOPs))
	}
	for i := range healthyEnc.GOPs {
		if !bytes.Equal(degradedEnc.GOPs[i], healthyEnc.GOPs[i]) {
			t.Fatalf("encoded GOP %d differs between healthy and degraded read", i)
		}
	}

	// One maintenance pass restores full replication.
	if err := s.Maintain(); err != nil {
		t.Fatalf("maintain with one root wiped: %v", err)
	}
	rep, ok := s.ReplicationStats()
	if !ok {
		t.Fatal("replicated store reports no replication stats")
	}
	if rep.LastScrub.Unrecoverable != 0 || rep.LastScrub.Repaired == 0 || rep.LastScrub.Checked == 0 {
		t.Fatalf("scrub stats %+v", rep.LastScrub)
	}
	if rep.Failovers == 0 {
		t.Error("degraded reads recorded no failovers")
	}
	for addr, n := range replicaCounts(t, dir) {
		if n != 2 {
			t.Errorf("%s has %d replicas after scrub, want 2", addr, n)
		}
	}
}

// TestReplicatedScrubVsTraffic races Maintain's scrub against foreground
// reads and a concurrent writer under the race detector: replication
// maintenance must never corrupt or stall live traffic.
func TestReplicatedScrubVsTraffic(t *testing.T) {
	dir := t.TempDir()
	s := openReplicatedStore(t, dir)
	defer s.Close()
	writeVideo(t, s, "v", scene(16, 64, 48, 92), 4, codec.H264)
	wipeRoot(t, filepath.Join(dir, "data-shard1"))

	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := s.Read("v", ReadSpec{})
				if err != nil {
					t.Errorf("read during scrub: %v", err)
					return
				}
				if len(res.Frames) != 16 {
					t.Errorf("read during scrub: %d frames", len(res.Frames))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		writeVideo(t, s, "w", scene(16, 64, 48, 93), 4, codec.H264)
	}()
	for i := 0; i < 3; i++ {
		if err := s.Maintain(); err != nil {
			t.Errorf("maintain during traffic: %v", err)
		}
	}
	wg.Wait()
}
