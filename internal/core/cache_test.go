package core

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/lossless"
	"repro/internal/quality"
)

func TestRedundancyCountsHigherQualityCovers(t *testing.T) {
	s := newStore(t, Options{BudgetMultiple: -1})
	writeVideo(t, s, "v", scene(16, 64, 48, 80), 4, codec.H264)
	// Two cached views over the same range: one near-lossless, one lossy.
	if _, err := s.Read("v", ReadSpec{P: Physical{Codec: codec.HEVC, Quality: 95}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("v", ReadSpec{P: Physical{Codec: codec.HEVC, Quality: 40, MinPSNR: 20}}); err != nil {
		t.Fatal(err)
	}
	vs := s.acquire("v")
	defer vs.mu.Unlock()
	var hiQ, loQ *PhysMeta
	for _, p := range vs.phys {
		switch p.Quality {
		case 95:
			hiQ = p
		case 40:
			loQ = p
		}
	}
	if hiQ == nil || loQ == nil {
		t.Fatal("views not cached")
	}
	// The lossy view has two better covers (original + q95); the q95 view
	// has one (original).
	if r := s.redundancyLocked(vs, loQ, &loQ.GOPs[0]); r < 2 {
		t.Errorf("lossy view redundancy %d, want >= 2", r)
	}
	rHi := s.redundancyLocked(vs, hiQ, &hiQ.GOPs[0])
	rLo := s.redundancyLocked(vs, loQ, &loQ.GOPs[0])
	if rHi >= rLo {
		t.Errorf("higher-quality view should have lower redundancy: %d vs %d", rHi, rLo)
	}
}

func TestBaselineGuardProtectsLastCover(t *testing.T) {
	s := newStore(t, Options{BudgetMultiple: -1})
	writeVideo(t, s, "v", scene(16, 64, 48, 81), 4, codec.H264)
	vs := s.acquire("v")
	defer vs.mu.Unlock()
	orig := vs.original()
	// The original is the only lossless cover: every page is protected.
	for i := range orig.GOPs {
		if !s.isLastQualityCoverLocked(vs, orig, &orig.GOPs[i]) {
			t.Errorf("original GOP %d not protected", i)
		}
	}
}

func TestMatchesOutputQualitySensitivity(t *testing.T) {
	p := &PhysMeta{Codec: codec.HEVC, Width: 64, Height: 48, FPS: 4, Quality: 80, ROI: FullNRect()}
	r := resolvedSpec{codec: codec.HEVC, roiW: 64, roiH: 48, outFPS: 4, roi: FullNRect(), quality: 80}
	if !matchesOutput(p, r) {
		t.Error("exact config should match")
	}
	r.quality = 60
	if matchesOutput(p, r) {
		t.Error("different quality must not match for compressed output")
	}
	// Raw output ignores the quality preset.
	p2 := &PhysMeta{Codec: codec.Raw, Width: 64, Height: 48, FPS: 4, Quality: 80, ROI: FullNRect()}
	r2 := resolvedSpec{codec: codec.Raw, roiW: 64, roiH: 48, outFPS: 4, roi: FullNRect(), quality: 10}
	if !matchesOutput(p2, r2) {
		t.Error("raw output should match regardless of quality preset")
	}
}

func TestDeferredCompressionRoundTripsThroughReads(t *testing.T) {
	s := newStore(t, Options{BudgetMultiple: 40, DeferredThreshold: 0.01, GOPFrames: 8})
	writeVideo(t, s, "v", scene(16, 64, 48, 82), 4, codec.H264)
	// Cache raw views, force compression, read back, verify content.
	before, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Maintain(); err != nil {
			t.Fatal(err)
		}
	}
	after, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := quality.FramesPSNR(before.Frames, after.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if p < quality.Lossless {
		t.Errorf("deferred compression must be lossless: PSNR %.1f", p)
	}
}

func TestDeferredLevelScalesWithPressure(t *testing.T) {
	// LevelForBudget drives the controller; verify the mapping contract
	// against the store's reported level.
	s := newStore(t, Options{GOPFrames: 8, DeferredThreshold: 0.1})
	writeVideo(t, s, "v", scene(16, 64, 48, 83), 4, codec.Raw)
	lvl := s.DeferredLevel("v")
	vs := s.acquire("v")
	used := vs.totalBytes()
	budget := vs.meta.Budget
	vs.mu.Unlock()
	if budget <= 0 {
		t.Fatal("budget unset")
	}
	want := 0
	if float64(used) >= 0.1*float64(budget) {
		want = lossless.LevelForBudget(1 - float64(used)/float64(budget))
	}
	if lvl != want {
		t.Errorf("DeferredLevel = %d, want %d (used %d of %d)", lvl, want, used, budget)
	}
	if s.DeferredLevel("missing") != 0 {
		t.Error("missing video should report level 0")
	}
}

func TestIncompressibleGOPMarkedNotRetried(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 4, BudgetMultiple: 2, DeferredThreshold: 0.01})
	// Random frames are incompressible; deferred compression should mark
	// them and move on rather than rewriting files.
	frames := scene(8, 64, 48, 84)
	for _, f := range frames {
		for i := range f.Data {
			f.Data[i] = byte((i*2654435761 + 12345) >> 7) // pseudo-noise
		}
	}
	writeVideo(t, s, "v", frames, 4, codec.Raw)
	for i := 0; i < 6; i++ {
		if err := s.Maintain(); err != nil {
			t.Fatal(err)
		}
	}
	_, phys, _ := s.Info("v")
	marked := 0
	for _, p := range phys {
		for _, g := range p.GOPs {
			if g.Lossless == -1 {
				marked++
			}
		}
	}
	if marked == 0 {
		t.Skip("noise compressed after all (flate found structure)")
	}
	// A marked GOP must still read back correctly.
	if _, err := s.Read("v", ReadSpec{T: Temporal{Start: 0, End: 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionRejectsJointAndOriginal(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 8})
	writeVideo(t, s, "v", scene(16, 64, 48, 85), 4, codec.H264)
	// Only the original exists: nothing to compact (originals excluded).
	n, err := s.CompactVideo("v")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("compacted %d pairs with only the original present", n)
	}
	if _, err := s.CompactVideo("missing"); err != ErrNotFound {
		t.Errorf("missing video: %v", err)
	}
}

// TestLegacyFlateBlockGOPStillReads pins backward compatibility with
// stores written before the ls codec: the deferred tier used to wrap
// raw GOP containers in VSL1 flate blocks, and those bytes are still on
// disk in old stores. Rewrite a cached raw GOP the old way — flate
// block, Lossless level set in the catalog — and the read path must
// inflate it transparently and return the same frames.
func TestLegacyFlateBlockGOPStillReads(t *testing.T) {
	s := newStore(t, Options{BudgetMultiple: 60, DeferredThreshold: 0.01, GOPFrames: 8, DisableDeferred: true})
	writeVideo(t, s, "v", scene(16, 64, 48, 91), 4, codec.H264)
	before, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite one cached raw GOP exactly as the pre-registry deferred
	// tier did: lossless.Compress over the container bytes.
	vs := s.acquire("v")
	if vs == nil {
		t.Fatal("video vanished")
	}
	rewrote := false
	for _, p := range vs.phys {
		if p.Codec != codec.Raw || len(p.GOPs) == 0 || rewrote {
			continue
		}
		g := &p.GOPs[0]
		data, err := s.files.ReadGOP("v", p.Dir, g.Seq)
		if err != nil {
			vs.mu.Unlock()
			t.Fatal(err)
		}
		block, err := lossless.Compress(data, 7)
		if err != nil {
			vs.mu.Unlock()
			t.Fatal(err)
		}
		if err := s.files.WriteGOP("v", p.Dir, g.Seq, block); err != nil {
			vs.mu.Unlock()
			t.Fatal(err)
		}
		g.Lossless = 7
		g.Bytes = int64(len(block))
		if err := s.savePhys("v", p); err != nil {
			vs.mu.Unlock()
			t.Fatal(err)
		}
		rewrote = true
	}
	vs.mu.Unlock()
	if !rewrote {
		t.Fatal("no cached raw view to rewrite; read did not populate the cache")
	}

	after, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Frames) != len(before.Frames) {
		t.Fatalf("read %d frames, want %d", len(after.Frames), len(before.Frames))
	}
	for i := range before.Frames {
		if !bytes.Equal(before.Frames[i].Data, after.Frames[i].Data) {
			t.Fatalf("frame %d changed through the legacy flate block", i)
		}
	}
}
