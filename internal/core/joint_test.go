package core

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/quality"
	"repro/internal/visualroad"
)

// writePair generates an overlapping camera pair and writes both streams.
func writePair(t *testing.T, s *Store, cfg visualroad.Config, n int) {
	t.Helper()
	left, right := visualroad.GeneratePair(cfg, n)
	for name, frames := range map[string][]*frame.Frame{"cam-left": left, "cam-right": right} {
		if err := s.Create(name, -1); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(name, WriteSpec{FPS: cfg.FPS, Codec: codec.H264, Quality: 90}, frames); err != nil {
			t.Fatal(err)
		}
	}
}

func pairCfg(overlap, perspective float64, seed int64) visualroad.Config {
	return visualroad.Config{Width: 128, Height: 96, FPS: 8, Seed: seed, Overlap: overlap, Perspective: perspective}
}

func TestJointCompressPairReducesStorage(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 8})
	writePair(t, s, pairCfg(0.5, 0, 21), 8)

	before, _ := s.TotalBytes("cam-left")
	beforeR, _ := s.TotalBytes("cam-right")
	res, err := s.JointCompressPair(
		GOPRef{"cam-left", 0, 0}, GOPRef{"cam-right", 0, 0}, MergeUnprojected)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compressed {
		t.Fatal("pair not compressed")
	}
	if res.Duplicate {
		t.Fatal("50% overlap pair misdetected as duplicate")
	}
	if res.BytesAfter >= res.BytesBefore {
		t.Errorf("joint %d bytes >= separate %d", res.BytesAfter, res.BytesBefore)
	}
	after, _ := s.TotalBytes("cam-left")
	afterR, _ := s.TotalBytes("cam-right")
	if after+afterR >= before+beforeR {
		t.Errorf("total storage did not shrink: %d -> %d", before+beforeR, after+afterR)
	}
}

func TestJointRecoveredQuality(t *testing.T) {
	for _, merge := range []MergeMode{MergeUnprojected, MergeMean} {
		s := newStore(t, Options{GOPFrames: 8})
		cfg := pairCfg(0.5, 0.4, 22)
		left, right := visualroad.GeneratePair(cfg, 8)
		for name, frames := range map[string][]*frame.Frame{"cam-left": left, "cam-right": right} {
			if err := s.Create(name, -1); err != nil {
				t.Fatal(err)
			}
			if err := s.Write(name, WriteSpec{FPS: cfg.FPS, Codec: codec.H264, Quality: 90}, frames); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.JointCompressPair(GOPRef{"cam-left", 0, 0}, GOPRef{"cam-right", 0, 0}, merge)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Compressed {
			t.Fatalf("%s: not compressed", merge)
		}
		// Table 2's finding: both recoveries at least near the joint
		// minimum; unprojected left is essentially lossless.
		if res.LeftPSNR < 30 || res.RightPSNR < 24 {
			t.Errorf("%s: recovered PSNR L=%.1f R=%.1f", merge, res.LeftPSNR, res.RightPSNR)
		}
		if merge == MergeUnprojected && res.LeftPSNR < 40 {
			t.Errorf("unprojected left PSNR %.1f, want lossless grade", res.LeftPSNR)
		}

		// Reads through the joint representation must still work, for
		// both roles.
		for _, name := range []string{"cam-left", "cam-right"} {
			out, err := s.Read(name, ReadSpec{T: Temporal{Start: 0, End: 1}})
			if err != nil {
				t.Fatalf("%s read: %v", name, err)
			}
			if len(out.Frames) != 8 {
				t.Fatalf("%s read %d frames", name, len(out.Frames))
			}
		}
		// Recovered right content matches the source to joint tolerance.
		out, _ := s.Read("cam-right", ReadSpec{T: Temporal{Start: 0, End: 1}})
		ref := make([]*frame.Frame, len(right))
		for i, f := range right {
			ref[i] = f.Convert(frame.YUV420).Convert(frame.RGB)
		}
		p, err := quality.FramesPSNR(ref[:len(out.Frames)], out.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if p < 22 {
			t.Errorf("%s: right read-back PSNR %.1f", merge, p)
		}
	}
}

func TestJointDuplicateDetection(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 8})
	// Identical cameras: overlap 0.95 clamps both to nearly the same
	// window — make them exactly identical by writing the same frames.
	frames := visualroad.Generate(pairCfg(0, 0, 23), 8)
	for _, name := range []string{"dup-a", "dup-b"} {
		if err := s.Create(name, -1); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(name, WriteSpec{FPS: 8, Codec: codec.H264, Quality: 90}, frames); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.JointCompressPair(GOPRef{"dup-a", 0, 0}, GOPRef{"dup-b", 0, 0}, MergeUnprojected)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate {
		t.Fatal("identical GOPs not detected as duplicates")
	}
	// The duplicate's bytes collapse to a pointer.
	if res.BytesAfter >= res.BytesBefore {
		t.Errorf("duplicate did not save space: %d -> %d", res.BytesBefore, res.BytesAfter)
	}
	// Reads of the deduplicated video still work.
	out, err := s.Read("dup-b", ReadSpec{T: Temporal{Start: 0, End: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Frames) != 8 {
		t.Errorf("dup read %d frames", len(out.Frames))
	}
}

func TestJointAbortsOnDisjointViews(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 8})
	// Two unrelated scenes: no homography should survive verification.
	a := visualroad.Generate(visualroad.Config{Width: 128, Height: 96, FPS: 8, Seed: 31}, 8)
	b := visualroad.Generate(visualroad.Config{Width: 128, Height: 96, FPS: 8, Seed: 99, Vehicles: 2}, 8)
	for name, frames := range map[string][]*frame.Frame{"scene-a": a, "scene-b": b} {
		if err := s.Create(name, -1); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(name, WriteSpec{FPS: 8, Codec: codec.H264, Quality: 90}, frames); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.JointCompressPair(GOPRef{"scene-a", 0, 0}, GOPRef{"scene-b", 0, 0}, MergeUnprojected)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed {
		t.Error("disjoint scenes should not joint-compress")
	}
	// Both videos remain intact.
	for _, name := range []string{"scene-a", "scene-b"} {
		if _, err := s.Read(name, ReadSpec{T: Temporal{Start: 0, End: 1}}); err != nil {
			t.Errorf("%s unreadable after aborted joint compression: %v", name, err)
		}
	}
}

func TestJointCompressAllPipeline(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 8})
	writePair(t, s, pairCfg(0.5, 0, 24), 16) // 2 GOPs per stream
	st, err := s.JointCompressAll(MergeUnprojected)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 4 {
		t.Errorf("scanned %d GOPs, want 4", st.Scanned)
	}
	if st.Pairs == 0 {
		t.Fatal("discovery proposed no pairs for the overlapping streams")
	}
	if st.Compressed == 0 {
		t.Error("no pairs compressed")
	}
	if st.BytesAfter >= st.BytesBefore {
		t.Errorf("sweep did not reduce storage: %d -> %d", st.BytesBefore, st.BytesAfter)
	}
	// Everything still readable.
	for _, name := range []string{"cam-left", "cam-right"} {
		out, err := s.Read(name, ReadSpec{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out.Frames) != 16 {
			t.Errorf("%s read %d frames", name, len(out.Frames))
		}
	}
}

func TestJointSameVideoRejected(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 8})
	writeVideo(t, s, "v", scene(16, 64, 48, 25), 8, codec.H264)
	if _, err := s.JointCompressPair(GOPRef{"v", 0, 0}, GOPRef{"v", 0, 1}, MergeUnprojected); err == nil {
		t.Error("joint compression within one logical video should be rejected")
	}
	if _, err := s.JointCompressPair(GOPRef{"v", 0, 0}, GOPRef{"nope", 0, 0}, MergeUnprojected); err == nil {
		t.Error("dangling ref should error")
	}
	if _, err := s.JointCompressPair(GOPRef{"v", 0, 0}, GOPRef{"v", 0, 1}, MergeMode("max")); err == nil {
		t.Error("unknown merge mode should error")
	}
}

func TestFindJointCandidatesSkipsUnrelated(t *testing.T) {
	s := newStore(t, Options{GOPFrames: 8})
	writePair(t, s, pairCfg(0.5, 0, 26), 8)
	// Add an unrelated dark scene; it should not pair with the cameras.
	dark := scene(8, 128, 96, 27)
	for _, f := range dark {
		for i := range f.Data {
			f.Data[i] /= 4
		}
	}
	if err := s.Create("unrelated", -1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("unrelated", WriteSpec{FPS: 8, Codec: codec.H264, Quality: 90}, dark); err != nil {
		t.Fatal(err)
	}
	pairs, scanned, err := s.FindJointCandidates()
	if err != nil {
		t.Fatal(err)
	}
	if scanned != 3 {
		t.Errorf("scanned %d", scanned)
	}
	for _, pc := range pairs {
		if pc.A.Video == "unrelated" || pc.B.Video == "unrelated" {
			t.Errorf("unrelated video proposed for joint compression: %+v", pc)
		}
	}
}
