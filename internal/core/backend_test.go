package core

import (
	"bytes"
	"context"
	"errors"
	"io/fs"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/storage"
)

// TestShardedBackendEndToEnd drives the full read/write path over the
// sharded backend: GOPs must actually scatter across roots, concurrent
// readers must see complete data (race-detector coverage for per-shard
// parallel IO under the prefetch stage), and a reopen with the same
// roots must find every GOP.
func TestShardedBackendEndToEnd(t *testing.T) {
	dir := t.TempDir()
	open := func() *Store {
		backend, err := storage.OpenSharded(ShardRoots(dir, 3))
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{GOPFrames: 8, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	writeVideo(t, s, "v", scene(24, 64, 48, 81), 4, codec.H264)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Read("v", ReadSpec{})
			if err != nil {
				t.Errorf("concurrent sharded read: %v", err)
				return
			}
			if len(res.Frames) != 24 {
				t.Errorf("concurrent sharded read returned %d frames, want 24", len(res.Frames))
			}
		}()
	}
	wg.Wait()

	// The original's three GOPs must not all sit on one shard-root.
	used := map[int]bool{}
	for i, root := range ShardRoots(dir, 3) {
		shard, err := storage.Open(root)
		if err != nil {
			t.Fatal(err)
		}
		err = shard.Walk(func(video, physDir string, seq int, size int64) error {
			used[i] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(used) < 2 {
		t.Errorf("all GOPs landed on one shard root: %v", used)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open()
	defer s2.Close()
	res, err := s2.Read("v", ReadSpec{})
	if err != nil || len(res.Frames) != 24 {
		t.Fatalf("read after sharded reopen: %v, %d frames", err, len(res.Frames))
	}
}

// TestPrefetchDisabledEquivalence pins the IO-prefetch stage to the
// eager baseline: the same store read with and without prefetch must
// produce byte-identical output (frames and encoded GOPs), and both
// must report the same stored bytes touched.
func TestPrefetchDisabledEquivalence(t *testing.T) {
	dir := t.TempDir()
	seed, err := Open(dir, Options{GOPFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	writeVideo(t, seed, "v", scene(24, 64, 48, 82), 4, codec.H264)
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	readBoth := func(disable bool) (*ReadResult, *ReadResult) {
		s, err := Open(dir, Options{GOPFrames: 8, DisableCache: true, DisablePrefetch: disable})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		raw, err := s.Read("v", ReadSpec{})
		if err != nil {
			t.Fatal(err)
		}
		enc, err := s.Read("v", ReadSpec{P: Physical{Codec: codec.HEVC}})
		if err != nil {
			t.Fatal(err)
		}
		return raw, enc
	}
	rawPre, encPre := readBoth(false)
	rawEager, encEager := readBoth(true)

	if len(rawPre.Frames) != len(rawEager.Frames) {
		t.Fatalf("frame count %d vs %d", len(rawPre.Frames), len(rawEager.Frames))
	}
	for i := range rawPre.Frames {
		if !bytes.Equal(rawPre.Frames[i].Data, rawEager.Frames[i].Data) {
			t.Fatalf("frame %d differs between prefetch and eager read", i)
		}
	}
	if len(encPre.GOPs) != len(encEager.GOPs) {
		t.Fatalf("GOP count %d vs %d", len(encPre.GOPs), len(encEager.GOPs))
	}
	for i := range encPre.GOPs {
		if !bytes.Equal(encPre.GOPs[i], encEager.GOPs[i]) {
			t.Fatalf("encoded GOP %d differs between prefetch and eager read", i)
		}
	}
	if encPre.Stats.BytesRead != encEager.Stats.BytesRead {
		t.Errorf("BytesRead %d (prefetch) vs %d (eager)", encPre.Stats.BytesRead, encEager.Stats.BytesRead)
	}
}

// TestResnapshotGOP exercises the stale-fetch fallback directly: a live
// GOP re-snapshots to decodable bytes under the lock, a vanished one
// surfaces as a dangling reference.
func TestResnapshotGOP(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(8, 64, 48, 83), 4, codec.H264)
	_, phys, err := s.Info("v")
	if err != nil {
		t.Fatal(err)
	}
	key := jobKey{video: "v", phys: phys[0].ID, seq: 0}
	snap, err := s.resnapshotGOP(context.Background(), key, nil)
	if err != nil {
		t.Fatal(err)
	}
	frames, _, _, err := decodeSnap(snap, 0, -1)
	if err != nil || len(frames) == 0 {
		t.Fatalf("re-snapshotted GOP not decodable: %v (%d frames)", err, len(frames))
	}
	if _, err := s.resnapshotGOP(context.Background(), jobKey{video: "v", phys: 99, seq: 0}, nil); !errors.Is(err, errDanglingRef) {
		t.Errorf("missing phys error %v, want dangling ref", err)
	}
	if _, err := s.resnapshotGOP(context.Background(), jobKey{video: "ghost", phys: 0, seq: 0}, nil); err == nil {
		t.Error("missing video re-snapshot succeeded")
	}
}

func TestFetchStale(t *testing.T) {
	cases := []struct {
		err  error
		got  int
		want int64
		out  bool
	}{
		{nil, 10, 10, false},
		{nil, 10, 11, true},                      // rewritten in place (joint/lossless)
		{fs.ErrNotExist, 0, 10, true},            // evicted
		{errors.New("io failure"), 0, 10, false}, // real failures surface, no retry
	}
	for i, c := range cases {
		if got := fetchStale(c.err, c.got, c.want); got != c.out {
			t.Errorf("case %d: fetchStale=%v want %v", i, got, c.out)
		}
	}
}

// TestMemBackendEndToEnd runs write/read/delete against the in-memory
// backend through the full store, the configuration the CI parity job
// runs the whole core suite under.
func TestMemBackendEndToEnd(t *testing.T) {
	s, err := Open(t.TempDir(), Options{GOPFrames: 8, Backend: storage.NewMem()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	writeVideo(t, s, "v", scene(16, 64, 48, 84), 4, codec.H264)
	res, err := s.Read("v", ReadSpec{T: Temporal{Start: 1, End: 3}})
	if err != nil || len(res.Frames) != 8 {
		t.Fatalf("mem-backend read: %v, %d frames", err, len(res.Frames))
	}
	if err := s.Delete("v"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("v", ReadSpec{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted video read error %v", err)
	}
	if st := s.BackendStats(); st.Backend != "mem" || st.Reads == 0 || st.Writes == 0 {
		t.Errorf("backend stats %+v", st)
	}
}
