package core

import (
	"math/rand"
	"testing"

	"repro/internal/codec"
)

// TestSolverNeverWorseThanGreedyProperty randomizes cache states and read
// requests and checks the central §3.1 claim: the SMT plan's modeled cost
// never exceeds the dependency-naive greedy plan's cost for the same
// state and request.
func TestSolverNeverWorseThanGreedyProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized ablation in -short mode")
	}
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		dir := t.TempDir()
		s, err := Open(dir, Options{GOPFrames: 8, BudgetMultiple: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Create("v", -1); err != nil {
			t.Fatal(err)
		}
		if err := s.Write("v", WriteSpec{FPS: 4, Codec: codec.H264}, scene(48, 64, 48, int64(trial))); err != nil {
			t.Fatal(err)
		}
		// Random cache state.
		for i := 0; i < 6; i++ {
			t1 := float64(rng.Intn(9))
			spec := ReadSpec{T: Temporal{Start: t1, End: t1 + 1 + float64(rng.Intn(3))}}
			switch rng.Intn(3) {
			case 0:
				spec.P.Codec = codec.HEVC
			case 1:
				spec.P.Codec = codec.H264
				spec.P.Quality = 70
			}
			if _, err := s.Read("v", spec); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()

		// Compare planners on the frozen state across several requests.
		for probe := 0; probe < 4; probe++ {
			t1 := float64(rng.Intn(8))
			req := ReadSpec{T: Temporal{Start: t1, End: t1 + 2 + float64(rng.Intn(3))}, P: Physical{Codec: codec.HEVC}}
			var costs [2]float64
			for i, greedy := range []bool{false, true} {
				m, err := Open(dir, Options{GOPFrames: 8, DisableCache: true, DisableDeferred: true, GreedyPlanner: greedy})
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Read("v", req)
				m.Close()
				if err != nil {
					t.Fatal(err)
				}
				costs[i] = res.Stats.PlanCost
			}
			if costs[0] > costs[1]+1e-6 {
				t.Errorf("trial %d probe %d: solver cost %.0f exceeds greedy %.0f", trial, probe, costs[0], costs[1])
			}
		}
	}
}
