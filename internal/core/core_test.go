package core

import (
	"math/rand"
	"testing"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/quality"
)

// scene synthesizes n frames of moving traffic-like content at w x h.
func scene(n, w, h int, seed int64) []*frame.Frame {
	rng := rand.New(rand.NewSource(seed))
	base := frame.New(w, h, frame.RGB)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base.SetRGB(x, y, byte(60+x*120/w), byte(80+y*100/h), byte((x*7+y*3)%160))
		}
	}
	// Static texture blocks make the scene feature-rich.
	for b := 0; b < 12; b++ {
		bx, by := rng.Intn(w-8), rng.Intn(h-8)
		c := byte(rng.Intn(200))
		for y := by; y < by+6; y++ {
			for x := bx; x < bx+6; x++ {
				base.SetRGB(x, y, c, 255-c, c/2)
			}
		}
	}
	out := make([]*frame.Frame, n)
	for i := 0; i < n; i++ {
		f := base.Clone()
		cx := (i*3 + 4) % (w - 10)
		for y := h / 2; y < h/2+6 && y < h; y++ {
			for x := cx; x < cx+8; x++ {
				f.SetRGB(x, y, 220, 30, 30)
			}
		}
		out[i] = f
	}
	return out
}

// newStore opens a store in a temp dir with small GOPs for fast tests.
func newStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.GOPFrames == 0 {
		opts.GOPFrames = 8
	}
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// writeVideo creates a video and writes a scene into it.
func writeVideo(t *testing.T, s *Store, name string, frames []*frame.Frame, fps int, cd codec.ID) {
	t.Helper()
	if err := s.Create(name, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(name, WriteSpec{FPS: fps, Codec: cd}, frames); err != nil {
		t.Fatal(err)
	}
}

func TestCreateDeleteSemantics(t *testing.T) {
	s := newStore(t, Options{})
	if err := s.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("v", 0); err != ErrExists {
		t.Errorf("duplicate create: %v", err)
	}
	if err := s.Create("", 0); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.Create("../escape", 0); err == nil {
		t.Error("path traversal name accepted")
	}
	if err := s.Delete("v"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("v"); err != ErrNotFound {
		t.Errorf("double delete: %v", err)
	}
	if _, err := s.Read("v", ReadSpec{}); err != ErrNotFound {
		t.Errorf("read after delete: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newStore(t, Options{})
	frames := scene(16, 64, 48, 1)
	writeVideo(t, s, "v", frames, 4, codec.H264)

	res, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 16 {
		t.Fatalf("read %d frames, want 16", len(res.Frames))
	}
	if res.Width != 64 || res.Height != 48 || res.FPS != 4 {
		t.Errorf("output %dx%d@%d", res.Width, res.Height, res.FPS)
	}
	// Quality must be near-lossless at the default encode quality.
	ref := make([]*frame.Frame, len(frames))
	for i, f := range frames {
		ref[i] = f.Convert(frame.YUV420).Convert(frame.RGB)
	}
	p, err := quality.FramesPSNR(ref, res.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if p < 30 {
		t.Errorf("round trip PSNR %.1f < 30", p)
	}
}

func TestReadTemporalSubrange(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(32, 64, 48, 2), 4, codec.H264)
	res, err := s.Read("v", ReadSpec{T: Temporal{Start: 2, End: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 12 { // 3 seconds at 4 fps
		t.Errorf("read %d frames, want 12", len(res.Frames))
	}
}

func TestReadOutsideIntervalErrors(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(8, 64, 48, 3), 4, codec.H264)
	if _, err := s.Read("v", ReadSpec{T: Temporal{Start: 1, End: 10}}); err == nil {
		t.Error("read past end should error (paper: reads outside m0 error)")
	}
	if _, err := s.Read("v", ReadSpec{T: Temporal{Start: -1, End: 1}}); err == nil {
		t.Error("negative start should error")
	}
	if _, err := s.Read("v", ReadSpec{T: Temporal{Start: 1.5, End: 1.5}}); err == nil {
		t.Error("empty interval should error")
	}
}

func TestReadResolutionChange(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(8, 64, 48, 4), 4, codec.H264)
	res, err := s.Read("v", ReadSpec{S: Spatial{Width: 32, Height: 24}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Width != 32 || res.Height != 24 {
		t.Errorf("output %dx%d", res.Width, res.Height)
	}
	if res.Frames[0].Width != 32 {
		t.Errorf("frame width %d", res.Frames[0].Width)
	}
}

func TestReadROI(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(8, 64, 48, 5), 4, codec.H264)
	roi := frame.Rect{X0: 16, Y0: 12, X1: 48, Y1: 36}
	res, err := s.Read("v", ReadSpec{S: Spatial{ROI: &roi}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Width != 32 || res.Height != 24 {
		t.Errorf("ROI output %dx%d, want 32x24", res.Width, res.Height)
	}
}

func TestReadTranscode(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(8, 64, 48, 6), 4, codec.H264)
	res, err := s.Read("v", ReadSpec{P: Physical{Codec: codec.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GOPs) == 0 {
		t.Fatal("no encoded output")
	}
	hd, err := codec.DecodeHeader(res.GOPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if hd.Codec != codec.HEVC {
		t.Errorf("output codec %s", hd.Codec)
	}
	if res.FrameCount() != 8 {
		t.Errorf("frame count %d", res.FrameCount())
	}
}

func TestReadFPSDownsample(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(16, 64, 48, 7), 8, codec.H264)
	res, err := s.Read("v", ReadSpec{T: Temporal{FPS: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 4 { // 2 seconds at 2 fps
		t.Errorf("read %d frames, want 4", len(res.Frames))
	}
	if _, err := s.Read("v", ReadSpec{T: Temporal{FPS: 100}}); err == nil {
		t.Error("fps above source should error")
	}
}

func TestRawFormatOutput(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(8, 64, 48, 8), 4, codec.H264)
	res, err := s.Read("v", ReadSpec{P: Physical{Format: frame.RGB}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames[0].Format != frame.RGB {
		t.Errorf("format %v", res.Frames[0].Format)
	}
	res, err = s.Read("v", ReadSpec{P: Physical{Format: frame.YUV422}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames[0].Format != frame.YUV422 {
		t.Errorf("format %v", res.Frames[0].Format)
	}
}

func TestCachePopulatedAndUsed(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(32, 64, 48, 9), 4, codec.H264)

	// First read converts; its result should be admitted.
	res1, err := s.Read("v", ReadSpec{T: Temporal{Start: 2, End: 6}, P: Physical{Codec: codec.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Stats.Admitted {
		t.Fatal("conversion result not cached")
	}
	// Second identical read must be served from the cached view (pure
	// passthrough, much cheaper plan).
	res2, err := s.Read("v", ReadSpec{T: Temporal{Start: 2, End: 6}, P: Physical{Codec: codec.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Admitted {
		t.Error("identical repeat read should not duplicate the cache")
	}
	if res2.Stats.PlanCost >= res1.Stats.PlanCost {
		t.Errorf("cached plan cost %.0f not below first read %.0f", res2.Stats.PlanCost, res1.Stats.PlanCost)
	}
	_, phys, _ := s.Info("v")
	if len(phys) != 2 {
		t.Errorf("expected original + 1 cached view, got %d", len(phys))
	}
}

func TestCacheMixedPlanAcrossViews(t *testing.T) {
	// Reproduces the paper's Figure 3 scenario: cached mid-range views in
	// the requested format should be stitched with the original.
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(40, 64, 48, 10), 4, codec.H264)
	// Cache [3, 6) as hevc.
	if _, err := s.Read("v", ReadSpec{T: Temporal{Start: 3, End: 6}, P: Physical{Codec: codec.HEVC}}); err != nil {
		t.Fatal(err)
	}
	// Read [2, 8) as hevc: plan should use the cached hevc view in the
	// middle (passthrough) and the original elsewhere.
	res, err := s.Read("v", ReadSpec{T: Temporal{Start: 2, End: 8}, P: Physical{Codec: codec.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanRuns < 2 {
		t.Errorf("expected a multi-fragment plan, got %d runs", res.Stats.PlanRuns)
	}
	if res.FrameCount() != 24 {
		t.Errorf("frame count %d, want 24", res.FrameCount())
	}
}

func TestGreedyPlannerCostsNoLess(t *testing.T) {
	mk := func(greedy bool) float64 {
		s := newStore(t, Options{GreedyPlanner: greedy})
		writeVideo(t, s, "v", scene(40, 64, 48, 11), 4, codec.H264)
		for _, iv := range [][2]float64{{3, 6}, {7, 9}} {
			if _, err := s.Read("v", ReadSpec{T: Temporal{Start: iv[0], End: iv[1]}, P: Physical{Codec: codec.HEVC}}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.Read("v", ReadSpec{T: Temporal{Start: 2, End: 10}, P: Physical{Codec: codec.HEVC}})
		if err != nil {
			t.Fatal(err)
		}
		// Re-plan the same spec to measure planned cost (the first full
		// read may itself have been admitted, changing state; use the
		// reported plan cost of the read we executed).
		return res.Stats.PlanCost
	}
	smtCost := mk(false)
	greedyCost := mk(true)
	if smtCost > greedyCost+1e-6 {
		t.Errorf("solver cost %.0f exceeds greedy cost %.0f", smtCost, greedyCost)
	}
}

func TestStreamingWriterPrefixRead(t *testing.T) {
	s := newStore(t, Options{})
	if err := s.Create("live", 0); err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenWriter("live", WriteSpec{FPS: 4, Codec: codec.H264})
	if err != nil {
		t.Fatal(err)
	}
	frames := scene(24, 64, 48, 12)
	// Append 2.5 GOPs worth (GOPFrames=8): two GOPs land, partial buffers.
	if err := w.Append(frames[:20]...); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil { // flush the partial GOP
		t.Fatal(err)
	}
	res, err := s.Read("live", ReadSpec{T: Temporal{Start: 0, End: 5}})
	if err != nil {
		t.Fatalf("prefix read while streaming: %v", err)
	}
	if len(res.Frames) != 20 {
		t.Errorf("prefix read %d frames, want 20", len(res.Frames))
	}
	if err := w.Append(frames[20:]...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(frames[0]); err == nil {
		t.Error("append after close should error")
	}
	res, err = s.Read("live", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 24 {
		t.Errorf("full read %d frames, want 24", len(res.Frames))
	}
}

func TestNoOverwritePolicy(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(8, 64, 48, 13), 4, codec.H264)
	// Appending in the same configuration extends the video.
	if err := s.Write("v", WriteSpec{FPS: 4, Codec: codec.H264}, scene(8, 64, 48, 14)); err != nil {
		t.Fatal(err)
	}
	v, _, _ := s.Info("v")
	if v.Duration != 4 {
		t.Errorf("duration %f, want 4", v.Duration)
	}
	// A different configuration is rejected.
	if err := s.Write("v", WriteSpec{FPS: 8, Codec: codec.H264}, scene(8, 64, 48, 15)); err == nil {
		t.Error("fps change should be rejected")
	}
	if err := s.Write("v", WriteSpec{FPS: 4, Codec: codec.HEVC}, scene(8, 64, 48, 16)); err == nil {
		t.Error("codec change should be rejected")
	}
	if err := s.Write("v", WriteSpec{FPS: 4, Codec: codec.H264}, scene(4, 32, 32, 17)); err == nil {
		t.Error("resolution change should be rejected")
	}
}

func TestWriteEncodedIngest(t *testing.T) {
	s := newStore(t, Options{})
	if err := s.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	frames := scene(16, 64, 48, 18)
	var gops [][]byte
	for i := 0; i < 16; i += 8 {
		data, _, err := codec.EncodeGOP(frames[i:i+8], codec.H264, 85)
		if err != nil {
			t.Fatal(err)
		}
		gops = append(gops, data)
	}
	if err := s.WriteEncoded("v", 4, gops); err != nil {
		t.Fatal(err)
	}
	res, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 16 {
		t.Errorf("read %d frames", len(res.Frames))
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{GOPFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	frames := scene(16, 64, 48, 19)
	if err := s.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("v", WriteSpec{FPS: 4, Codec: codec.H264}, frames); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("v", ReadSpec{P: Physical{Codec: codec.HEVC}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{GOPFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, phys, err := s2.Info("v")
	if err != nil {
		t.Fatal(err)
	}
	if v.Duration != 4 || len(phys) < 2 {
		t.Errorf("reopened: duration %f, %d phys", v.Duration, len(phys))
	}
	res, err := s2.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 16 {
		t.Errorf("reopened read %d frames", len(res.Frames))
	}
}

func TestBudgetEvictionRespectsBaseline(t *testing.T) {
	s := newStore(t, Options{BudgetMultiple: 1.5})
	frames := scene(32, 64, 48, 20)
	writeVideo(t, s, "v", frames, 4, codec.H264)
	v, _, _ := s.Info("v")
	if v.Budget <= 0 {
		t.Fatal("budget not set from multiple")
	}
	// Generate many distinct cached views to blow the budget.
	for i := 0; i < 6; i++ {
		start := float64(i)
		if _, err := s.Read("v", ReadSpec{T: Temporal{Start: start, End: start + 2}, P: Physical{Codec: codec.HEVC, Quality: 60 + i}}); err != nil {
			t.Fatal(err)
		}
	}
	total, err := s.TotalBytes("v")
	if err != nil {
		t.Fatal(err)
	}
	if total > v.Budget {
		t.Errorf("stored %d exceeds budget %d after eviction", total, v.Budget)
	}
	// The full original must still be readable (baseline cover guarded).
	res, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 32 {
		t.Errorf("full read %d frames after eviction", len(res.Frames))
	}
}

func TestUnlimitedBudgetNeverEvicts(t *testing.T) {
	s := newStore(t, Options{BudgetMultiple: -1})
	writeVideo(t, s, "v", scene(16, 64, 48, 21), 4, codec.H264)
	for i := 0; i < 4; i++ {
		if _, err := s.Read("v", ReadSpec{T: Temporal{Start: float64(i), End: float64(i + 1)}, P: Physical{Codec: codec.HEVC}}); err != nil {
			t.Fatal(err)
		}
	}
	_, phys, _ := s.Info("v")
	if len(phys) < 5 {
		t.Errorf("expected all views retained, got %d", len(phys))
	}
}

func TestDeferredCompressionShrinksRawCache(t *testing.T) {
	s := newStore(t, Options{BudgetMultiple: 60, DeferredThreshold: 0.01, GOPFrames: 8})
	writeVideo(t, s, "v", scene(24, 64, 48, 22), 4, codec.H264)
	// Raw reads populate large uncompressed views and trigger deferred
	// compression pressure.
	for i := 0; i < 3; i++ {
		if _, err := s.Read("v", ReadSpec{T: Temporal{Start: float64(i * 2), End: float64(i*2 + 2)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := s.Maintain(); err != nil {
			t.Fatal(err)
		}
	}
	_, phys, _ := s.Info("v")
	compressed := 0
	for _, p := range phys {
		for _, g := range p.GOPs {
			if g.Lossless > 0 {
				compressed++
			}
		}
	}
	if compressed == 0 {
		t.Error("no GOPs were deferred-compressed")
	}
	// Compressed views must still decode correctly.
	res, err := s.Read("v", ReadSpec{T: Temporal{Start: 0, End: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 8 {
		t.Errorf("read %d frames from compressed cache", len(res.Frames))
	}
}

func TestDeferredDisabled(t *testing.T) {
	s := newStore(t, Options{BudgetMultiple: 60, DeferredThreshold: 0.01, DisableDeferred: true})
	writeVideo(t, s, "v", scene(8, 64, 48, 23), 4, codec.H264)
	if _, err := s.Read("v", ReadSpec{}); err != nil {
		t.Fatal(err)
	}
	s.Maintain()
	_, phys, _ := s.Info("v")
	for _, p := range phys {
		for _, g := range p.GOPs {
			if g.Lossless > 0 {
				t.Error("deferred compression ran while disabled")
			}
		}
	}
}

func TestCompaction(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(32, 64, 48, 24), 4, codec.H264)
	// Two contiguous cached views in the same configuration.
	if _, err := s.Read("v", ReadSpec{T: Temporal{Start: 0, End: 4}, P: Physical{Codec: codec.HEVC}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("v", ReadSpec{T: Temporal{Start: 4, End: 8}, P: Physical{Codec: codec.HEVC}}); err != nil {
		t.Fatal(err)
	}
	_, physBefore, _ := s.Info("v")
	merges, err := s.CompactVideo("v")
	if err != nil {
		t.Fatal(err)
	}
	if merges != 1 {
		t.Errorf("merges = %d, want 1", merges)
	}
	_, physAfter, _ := s.Info("v")
	if len(physAfter) != len(physBefore)-1 {
		t.Errorf("phys count %d -> %d", len(physBefore), len(physAfter))
	}
	// The merged view must serve the whole range in one fragment.
	res, err := s.Read("v", ReadSpec{T: Temporal{Start: 0, End: 8}, P: Physical{Codec: codec.HEVC}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanRuns != 1 {
		t.Errorf("post-compaction plan runs = %d, want 1", res.Stats.PlanRuns)
	}
	if res.FrameCount() != 32 {
		t.Errorf("frame count %d", res.FrameCount())
	}
}

func TestQualityGateRejectsLowQualityViews(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(16, 64, 48, 25), 4, codec.H264)
	// Cache a heavily compressed (low-quality) view.
	if _, err := s.Read("v", ReadSpec{P: Physical{Codec: codec.HEVC, Quality: 5}}); err != nil {
		t.Fatal(err)
	}
	// A strict read must not use it (plan should be a single original
	// fragment).
	res, err := s.Read("v", ReadSpec{P: Physical{Codec: codec.H264, MinPSNR: 45}})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1} {
		for _, used := range resFragments(res) {
			if used == id {
				t.Error("low-quality view used despite quality gate")
			}
		}
	}
	_ = res
}

// resFragments is a test helper: plans are not exported, so infer from
// stats (single-run plans from the original have PlanRuns == 1).
func resFragments(r *ReadResult) []int {
	if r.Stats.PlanRuns == 1 {
		return nil
	}
	return []int{1}
}

func TestLowResViewRejectedForHighResRead(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(16, 96, 64, 26), 4, codec.H264)
	// Cache a tiny thumbnail view.
	if _, err := s.Read("v", ReadSpec{S: Spatial{Width: 16, Height: 12}}); err != nil {
		t.Fatal(err)
	}
	// Full-resolution read must not upsample the thumbnail: result PSNR
	// against the original decode must stay near-lossless.
	full1, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	full2, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := quality.FramesPSNR(full1.Frames, full2.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if p < 40 {
		t.Errorf("full-res reads diverged (PSNR %.1f): thumbnail likely used", p)
	}
}

func TestInfoAndVideos(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "a", scene(8, 64, 48, 27), 4, codec.H264)
	writeVideo(t, s, "b", scene(8, 64, 48, 28), 4, codec.H264)
	if n := len(s.Videos()); n != 2 {
		t.Errorf("videos %d", n)
	}
	v, phys, err := s.Info("a")
	if err != nil || v.Name != "a" || len(phys) != 1 {
		t.Errorf("info: %v %s %d", err, v.Name, len(phys))
	}
	if !phys[0].Orig {
		t.Error("first phys should be the original")
	}
	if _, _, err := s.Info("zzz"); err != ErrNotFound {
		t.Errorf("missing info err %v", err)
	}
}
