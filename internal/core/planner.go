package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/codec"
	"repro/internal/cost"
	"repro/internal/quality"
	"repro/internal/smt"
)

// resolvedSpec is a ReadSpec with defaults applied against a video.
type resolvedSpec struct {
	t1, t2  float64
	outW    int // full-frame output resolution
	outH    int
	roi     NRect // requested region, normalized
	outFPS  int
	codec   codec.ID
	quality int
	minPSNR float64
	pixfmt  int // frame.PixelFormat, widened to avoid import cycles in tests
	roiW    int // output pixel dimensions of the ROI
	roiH    int
}

// coverSpan is a contiguous covered time range of a physical video
// (eviction can leave holes between GOPs).
type coverSpan struct{ a, b float64 }

// planStep is one interval of a read plan with its chosen fragment.
type planStep struct {
	phys      *PhysMeta
	a, b      float64
	transcode float64
	entry     float64 // look-back cost paid when entering the fragment here
}

// Plan is the output of fragment selection.
type Plan struct {
	steps  []planStep
	Cost   float64
	Runs   int    // contiguous same-fragment runs (the paper's "fragments")
	Method string // "smt" or "greedy"
}

// Fragments returns the physical video IDs used by the plan, in order.
func (p *Plan) Fragments() []int {
	var out []int
	for i, st := range p.steps {
		if i == 0 || p.steps[i-1].phys.ID != st.phys.ID {
			out = append(out, st.phys.ID)
		}
	}
	return out
}

const timeEps = 1e-7

// resolve validates and defaults a ReadSpec against a video.
func (s *Store) resolve(v *VideoMeta, spec ReadSpec) (resolvedSpec, error) {
	var r resolvedSpec
	if v.Original < 0 {
		return r, fmt.Errorf("core: video %s has no data", v.Name)
	}
	r.t1 = spec.T.Start
	r.t2 = spec.T.End
	if r.t2 <= 0 {
		r.t2 = v.Duration
	}
	if r.t1 < -timeEps || r.t2 > v.Duration+timeEps || r.t2 <= r.t1 {
		// The paper: VSS returns an error for reads extending outside the
		// temporal interval of m0.
		return r, fmt.Errorf("%w: read interval [%f, %f) outside video [0, %f)", ErrInvalidSpec, r.t1, r.t2, v.Duration)
	}
	r.outW, r.outH = spec.S.Width, spec.S.Height
	if r.outW == 0 {
		r.outW = v.Width
	}
	if r.outH == 0 {
		r.outH = v.Height
	}
	if r.outW <= 0 || r.outH <= 0 {
		return r, fmt.Errorf("%w: invalid output resolution %dx%d", ErrInvalidSpec, r.outW, r.outH)
	}
	r.roi = FullNRect()
	if spec.S.ROI != nil {
		r.roi = Normalize(*spec.S.ROI, r.outW, r.outH)
		if r.roi.Empty() || r.roi.X0 < 0 || r.roi.Y0 < 0 || r.roi.X1 > 1 || r.roi.Y1 > 1 {
			return r, fmt.Errorf("%w: invalid ROI %+v", ErrInvalidSpec, *spec.S.ROI)
		}
	}
	px := r.roi.Pixels(r.outW, r.outH)
	r.roiW, r.roiH = px.Dx(), px.Dy()
	if r.roiW <= 0 || r.roiH <= 0 {
		return r, fmt.Errorf("%w: ROI resolves to empty pixel region", ErrInvalidSpec)
	}
	r.outFPS = spec.T.FPS
	if r.outFPS == 0 {
		r.outFPS = v.FPS
	}
	if r.outFPS < 0 || r.outFPS > v.FPS {
		return r, fmt.Errorf("%w: output fps %d not in (0, %d]", ErrInvalidSpec, r.outFPS, v.FPS)
	}
	r.codec = spec.P.Codec
	if r.codec == "" {
		r.codec = codec.Raw
	}
	if !r.codec.Valid() {
		return r, fmt.Errorf("%w: unknown codec %q", ErrInvalidSpec, r.codec)
	}
	r.quality = effectiveQuality(spec.P.Quality)
	r.minPSNR = spec.P.MinPSNR
	if r.minPSNR == 0 {
		r.minPSNR = s.opts.MinPSNR
	}
	r.pixfmt = int(spec.P.Format)
	return r, nil
}

// coverage returns the contiguous covered time spans of a physical video.
func coverage(p *PhysMeta) []coverSpan {
	if len(p.GOPs) == 0 {
		return nil
	}
	var out []coverSpan
	for i := range p.GOPs {
		a, b := p.gopSpan(&p.GOPs[i])
		if n := len(out); n > 0 && a <= out[n-1].b+timeEps {
			if b > out[n-1].b {
				out[n-1].b = b
			}
			continue
		}
		out = append(out, coverSpan{a, b})
	}
	return out
}

// covers reports whether the spans fully contain [a, b).
func covers(spans []coverSpan, a, b float64) bool {
	for _, s := range spans {
		if s.a <= a+timeEps && s.b >= b-timeEps {
			return true
		}
	}
	return false
}

// useMSE estimates the quality loss of answering the request from p: its
// accumulated MSE bound plus an upsampling penalty when p's resolution is
// below the requested output (the paper's example: a 32x32 fragment is
// unacceptable for a 4K read).
func useMSE(p *PhysMeta, r resolvedSpec) float64 {
	m := p.MSE
	// Pixels p devotes to the requested region vs pixels requested.
	pw := float64(p.Width) * (r.roi.X1 - r.roi.X0) / (p.ROI.X1 - p.ROI.X0)
	ph := float64(p.Height) * (r.roi.Y1 - r.roi.Y0) / (p.ROI.Y1 - p.ROI.Y0)
	srcPx := pw * ph
	dstPx := float64(r.roiW * r.roiH)
	if srcPx+1 < dstPx {
		// Empirical upsampling penalty: MSE grows with the magnification
		// factor. Calibrated so 2x-per-axis upsampling of detailed content
		// lands near 30 dB (near-lossless boundary).
		scale := dstPx / srcPx
		m = quality.ComposeMSE(m, 16*(scale-1))
	}
	return m
}

// candidatesFor returns the physical videos eligible to serve the request:
// they must cover the requested ROI and pass the quality gate u >= ε. The
// original is always eligible (it defines baseline quality). Caller holds
// the video's lock.
func (s *Store) candidatesFor(vs *videoState, r resolvedSpec) []*PhysMeta {
	maxMSE := quality.MSEFromPSNR(r.minPSNR)
	var out []*PhysMeta
	for _, p := range vs.phys {
		if len(p.GOPs) == 0 {
			continue
		}
		if !p.ROI.Contains(r.roi) {
			continue
		}
		if p.FPS < r.outFPS {
			continue // a lower-frame-rate view cannot serve this read
		}
		if !p.Orig && useMSE(p, r) > maxMSE {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// intervalsFor partitions [t1, t2) at the transition points contributed by
// candidate coverage boundaries (Section 3.1: "the collective start and end
// points of the physical videos form a set of transition points").
func intervalsFor(cands []*PhysMeta, t1, t2 float64) [][2]float64 {
	points := []float64{t1, t2}
	for _, p := range cands {
		for _, sp := range coverage(p) {
			for _, t := range []float64{sp.a, sp.b} {
				if t > t1+timeEps && t < t2-timeEps {
					points = append(points, t)
				}
			}
		}
	}
	sort.Float64s(points)
	var out [][2]float64
	for i := 1; i < len(points); i++ {
		if points[i]-points[i-1] > timeEps {
			out = append(out, [2]float64{points[i-1], points[i]})
		}
	}
	return out
}

// entryLookback computes c_l for entering fragment p at time t: the cost
// of decoding the GOP frames that precede the entry point, expressed in
// the same units as transcode cost (per-pixel decode cost times pixels).
func (s *Store) entryLookback(p *PhysMeta, t float64) float64 {
	if !p.Codec.Compressed() {
		return 0 // raw GOP frames are independently decodable
	}
	fps := float64(p.FPS)
	local := int(math.Round((t - p.Start) * fps))
	for i := range p.GOPs {
		g := &p.GOPs[i]
		if local >= g.StartFrame && local < g.StartFrame+g.Frames {
			before := local - g.StartFrame
			if before == 0 {
				return 0
			}
			// One independent frame (the GOP's I-frame) plus before-1
			// dependent frames must be decoded and discarded.
			frames := cost.LookBack(1, before-1)
			perFrame := s.opts.CostModel.Alpha(p.Codec, codec.Raw, p.Width*p.Height) * float64(p.Width*p.Height)
			return frames * perFrame
		}
	}
	return 0
}

// stepCosts fills transcode cost for a fragment serving one interval.
func (s *Store) stepCost(p *PhysMeta, r resolvedSpec, a, b float64) float64 {
	n := int(math.Round((b - a) * float64(p.FPS)))
	if n < 1 {
		n = 1
	}
	srcPx := p.Width * p.Height
	dstPx := r.roiW * r.roiH
	return s.opts.CostModel.Transcode(p.Codec, r.codec, srcPx, dstPx, n)
}

// plan selects fragments for a read using the SMT solver (or the greedy
// baseline when Options.GreedyPlanner is set). Caller holds the video's
// lock.
func (s *Store) plan(vs *videoState, r resolvedSpec) (*Plan, error) {
	cands := s.candidatesFor(vs, r)
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: no physical video can serve the request")
	}
	intervals := intervalsFor(cands, r.t1, r.t2)
	if len(intervals) == 0 {
		return nil, fmt.Errorf("core: empty read interval")
	}
	// Candidate fragments per interval.
	perInterval := make([][]*PhysMeta, len(intervals))
	for i, iv := range intervals {
		for _, p := range cands {
			if covers(coverage(p), iv[0], iv[1]) {
				perInterval[i] = append(perInterval[i], p)
			}
		}
		if len(perInterval[i]) == 0 {
			return nil, fmt.Errorf("core: interval [%f, %f) has no covering fragment (baseline cover violated)", iv[0], iv[1])
		}
	}
	if s.opts.GreedyPlanner {
		return s.planGreedy(r, intervals, perInterval), nil
	}
	plan, err := s.planSMT(r, intervals, perInterval)
	if err == smt.ErrNodeBudget {
		// Fall back to the baseline rather than fail the read.
		return s.planGreedy(r, intervals, perInterval), nil
	}
	return plan, err
}

// planSMT encodes fragment selection exactly as Section 3.1 describes:
// exactly one fragment per inter-transition interval; each choice carries
// its transcode cost; entering a fragment mid-GOP adds look-back cost,
// modeled as a pairwise cost with every different predecessor choice.
func (s *Store) planSMT(r resolvedSpec, intervals [][2]float64, perInterval [][]*PhysMeta) (*Plan, error) {
	solver := smt.New()
	type varInfo struct {
		phys      *PhysMeta
		transcode float64
		entry     float64
	}
	vars := make([][]smt.Var, len(intervals))
	info := make(map[smt.Var]varInfo)
	for i, iv := range intervals {
		group := make([]smt.Var, 0, len(perInterval[i]))
		for _, p := range perInterval[i] {
			v := solver.Bool(fmt.Sprintf("i%d-p%d", i, p.ID))
			tc := s.stepCost(p, r, iv[0], iv[1])
			entry := s.entryLookback(p, iv[0])
			solver.Cost(v, tc)
			if i == 0 {
				solver.Cost(v, entry)
			}
			info[v] = varInfo{p, tc, entry}
			group = append(group, v)
		}
		if err := solver.ExactlyOne(group...); err != nil {
			return nil, err
		}
		vars[i] = group
	}
	// Pairwise look-back: switching into fragment f at interval i costs
	// its entry look-back; continuing the same fragment does not.
	for i := 1; i < len(intervals); i++ {
		for _, cur := range vars[i] {
			ci := info[cur]
			if ci.entry == 0 {
				continue
			}
			for _, prev := range vars[i-1] {
				if info[prev].phys.ID == ci.phys.ID {
					continue
				}
				if err := solver.PairCost(prev, cur, ci.entry); err != nil {
					return nil, err
				}
			}
		}
	}
	sol, err := solver.Minimize()
	if err != nil {
		return nil, err
	}
	plan := &Plan{Cost: sol.Cost, Method: "smt"}
	for i, v := range sol.Selected {
		vi := info[v]
		plan.steps = append(plan.steps, planStep{
			phys: vi.phys, a: intervals[i][0], b: intervals[i][1],
			transcode: vi.transcode, entry: vi.entry,
		})
	}
	plan.Runs = len(plan.Fragments())
	return plan, nil
}

// planGreedy is the dependency-naive baseline of Section 6.1: per interval
// it independently picks the fragment with the lowest transcode cost,
// ignoring look-back interactions between choices.
func (s *Store) planGreedy(r resolvedSpec, intervals [][2]float64, perInterval [][]*PhysMeta) *Plan {
	plan := &Plan{Method: "greedy"}
	var prev *PhysMeta
	for i, iv := range intervals {
		var best *PhysMeta
		bestCost := math.Inf(1)
		for _, p := range perInterval[i] {
			if c := s.stepCost(p, r, iv[0], iv[1]); c < bestCost {
				best, bestCost = p, c
			}
		}
		entry := 0.0
		if prev == nil || prev.ID != best.ID {
			entry = s.entryLookback(best, iv[0])
		}
		plan.steps = append(plan.steps, planStep{phys: best, a: iv[0], b: iv[1], transcode: bestCost, entry: entry})
		plan.Cost += bestCost + entry
		prev = best
	}
	plan.Runs = len(plan.Fragments())
	return plan
}
