package core
