package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/frame"
	"repro/internal/index"
	"repro/internal/obs"
)

// This file implements predicate reads (ReadWhere / ReadStreamWhere):
// the analytics read mode that answers "frames matching P over [t0,t1)"
// from the temporal index and the per-GOP feature summaries, decoding
// only candidate GOPs through the same prefetch → decode pipeline batch
// and streaming reads use.
//
// The plan is three steps, the first two free at query time:
//
//  1. index.Temporal over the original view's GOP spans restricts the
//     scan to GOPs overlapping [t0, t1).
//  2. Each candidate's GOPSummary is tested with pred.CanMatch: bounds
//     that prove the predicate false on every frame skip the GOP
//     entirely — it is never fetched or decoded. Summaries are sound
//     over-approximations (see summary.go), so skipping never loses a
//     match; GOPs without a summary are decoded conservatively.
//  3. Surviving GOPs flow through the standard phase-B machinery
//     (prefetch window, CPU-pool decode, stale-fetch repair); the exact
//     predicate is applied per frame and matches are returned as RGB
//     frames — byte-identical to a full raw RGB read of the same video
//     filtered client-side with AnalyzeFrames, which the parity suite
//     pins.
//
// Predicate reads always scan the original physical view: summaries are
// computed from the original's reconstructed frames, and evaluating
// against a transcoded cached view would change the pixels under the
// predicate. They deliberately skip cache admission and LRU touches —
// a filtered frame subset is not a materialized view, and an analytics
// sweep should not perturb the eviction order of interactive reads.

// QueryStats instruments one predicate read.
type QueryStats struct {
	// GOPsConsidered is the number of GOPs overlapping the interval.
	GOPsConsidered int
	// GOPsSkipped is how many of those the summary bounds pruned
	// without fetching or decoding.
	GOPsSkipped int
	// GOPsDecoded is the number of GOP streams actually decoded.
	GOPsDecoded int
	// NoSummary counts candidate GOPs that had no summary and were
	// decoded conservatively (pre-summary stores before Maintain
	// backfills them, or GOPs invalidated by joint compression).
	NoSummary int
	// FramesScanned / FramesMatched count exact predicate evaluations
	// and hits; their ratio is the query's selectivity.
	FramesScanned int
	FramesMatched int
	// BytesRead is the stored bytes fetched.
	BytesRead int64
}

// Match is one frame satisfying the predicate.
type Match struct {
	// Index is the source frame index in the original video.
	Index int
	// Time is the frame's position in seconds (Index / source fps).
	Time float64
	// Frame is the matched frame in RGB at source resolution.
	Frame *frame.Frame
	// Info is the frame's content record (motion, detections) — the
	// values the predicate matched against.
	Info FrameInfo
}

// QueryResult is a completed batch predicate read.
type QueryResult struct {
	Width, Height, FPS int
	Matches            []Match
	Stats              QueryStats
}

// QueryBatch is one streamed group of matches: all matching frames of
// one decoded GOP, in frame order.
type QueryBatch struct {
	Matches []Match
}

// queryUnit is one candidate GOP of a predicate read.
type queryUnit struct {
	job    *decodeJob
	start  int // phys frame index of the GOP's first frame
	lo, hi int // local frame range [lo, hi) inside the interval

	// Phase-B outputs.
	matches []Match
	scanned int
	err     error
	done    chan struct{} // streaming: closed when the unit is produced
	snap    gopSnap       // batch: resolved in the prepare hook
}

// queryJob carries one predicate read from phase A to phase B.
type queryJob struct {
	width, height, fps int
	units              []*queryUnit
	fetches            []*gopFetch
	bytesRead          atomic.Int64
	stats              QueryStats // planning-time counters
}

// FrameWindow maps the half-open interval [t0, t1) onto source frame
// indices [i0, i1) at the given frame rate — the exact window predicate
// reads scan, exported so clients can reproduce match sets from a full
// read.
func FrameWindow(fps int, t0, t1 float64) (int, int) {
	i0 := int(math.Floor(t0*float64(fps) + timeEps))
	i1 := int(math.Ceil(t1*float64(fps) - timeEps))
	if i0 < 0 {
		i0 = 0
	}
	if i1 < i0 {
		i1 = i0
	}
	return i0, i1
}

// ReadWhere scans [t0, t1) of the video's original frames and returns
// those matching pred, consulting the temporal index and per-GOP
// summaries to decode only GOPs that can match. t1 <= 0 means the end
// of the video. Safe for concurrent use.
func (s *Store) ReadWhere(video string, pred Predicate, t0, t1 float64) (*QueryResult, error) {
	return s.ReadWhereContext(context.Background(), video, pred, t0, t1)
}

// ReadWhereContext is ReadWhere with cancellation (the same promptness
// contract as ReadContext: workers stop between GOP-granular tasks).
func (s *Store) ReadWhereContext(ctx context.Context, video string, pred Predicate, t0, t1 float64) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	out, err := s.readWhereOnce(ctx, video, pred, t0, t1, s.opts.DisablePrefetch)
	if errors.Is(err, errDanglingRef) && !s.opts.DisablePrefetch {
		// Same race as ReadContext: a planned GOP moved between phase A
		// and its fetch; the eager under-lock snapshot is immune.
		return s.readWhereOnce(ctx, video, pred, t0, t1, true)
	}
	return out, err
}

func (s *Store) readWhereOnce(ctx context.Context, video string, pred Predicate, t0, t1 float64, eager bool) (*QueryResult, error) {
	job, err := s.prepareQuery(ctx, video, pred, t0, t1, eager)
	if err != nil {
		return nil, err
	}

	// Phase B: prefetch + decode + exact evaluation, no locks held.
	dctx := ctx
	if len(job.fetches) > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithCancel(ctx)
		defer cancel()
		s.startPrefetch(dctx, job.fetches)
	}
	units := job.units
	if err := s.runJobsPrepared(dctx, len(units),
		func(i int) error {
			var err error
			units[i].snap, err = units[i].job.resolve(dctx, s)
			return err
		},
		func(i int) error {
			u := units[i]
			start := time.Now()
			err := u.job.decodeResolved(dctx, u.snap, s)
			obs.ObserveCodec(ctx, s.pipe, obs.StageDecode, string(u.job.codecID), time.Since(start))
			if err != nil {
				return err
			}
			u.scan(pred, job.fps)
			return nil
		},
	); err != nil {
		return nil, err
	}

	out := &QueryResult{Width: job.width, Height: job.height, FPS: job.fps, Stats: job.stats}
	for _, u := range units {
		out.Stats.GOPsDecoded += u.job.decoded
		out.Stats.FramesScanned += u.scanned
		out.Matches = append(out.Matches, u.matches...)
	}
	out.Stats.FramesMatched = len(out.Matches)
	// Eager snapshots record bytes in the planning stats; prefetched and
	// re-snapshotted reads record them in the shared atomic. Sum both.
	out.Stats.BytesRead += job.bytesRead.Load()
	return out, nil
}

// prepareQuery is phase A: under the video lock, restrict to GOPs
// overlapping the interval via the temporal index, prune by summary
// bounds, and snapshot the survivors' decode recipes.
func (s *Store) prepareQuery(ctx context.Context, video string, pred Predicate, t0, t1 float64, eager bool) (*queryJob, error) {
	if pred == nil {
		return nil, fmt.Errorf("%w: nil predicate", ErrInvalidSpec)
	}
	job := &queryJob{}
	planStart := time.Now()
	err := s.withVideos([]string{video}, func(held map[string]*videoState) error {
		vs := held[video]
		v := vs.meta
		orig := vs.original()
		if orig == nil || len(orig.GOPs) == 0 {
			job.units, job.fetches = nil, nil
			job.stats = QueryStats{}
			return nil // nothing written yet: empty result
		}
		end := t1
		if end <= 0 {
			end = v.Duration
		}
		// NaN compares false against everything, so test finiteness
		// explicitly or a NaN bound would slip past the range check.
		if math.IsNaN(t0) || math.IsInf(t0, 0) || math.IsNaN(end) || math.IsInf(end, 0) {
			return fmt.Errorf("%w: non-finite interval bound", ErrInvalidSpec)
		}
		if t0 < 0 || end < t0 || end > v.Duration+timeEps {
			return fmt.Errorf("%w: interval [%g, %g) outside [0, %g)", ErrInvalidSpec, t0, end, v.Duration)
		}
		job.width, job.height, job.fps = orig.Width, orig.Height, orig.FPS
		i0, i1 := FrameWindow(orig.FPS, t0, end)

		// The temporal index over the original's GOP spans names the
		// candidate set; everything outside [t0, end) is never touched.
		spans := make([]index.Span, len(orig.GOPs))
		for i := range orig.GOPs {
			g := &orig.GOPs[i]
			start, stop := orig.gopSpan(g)
			spans[i] = index.Span{Seq: g.Seq, Start: start, End: stop}
		}
		idx, err := index.NewTemporal(spans)
		if err != nil {
			return err
		}

		c := &snapCollector{ctx: ctx, stats: &ReadStats{}, eager: eager, bytes: &job.bytesRead}
		for _, sp := range idx.Covering(t0, end) {
			g := findGOP(orig, sp.Seq)
			if g == nil {
				continue
			}
			lo, hi := i0-g.StartFrame, i1-g.StartFrame
			if lo < 0 {
				lo = 0
			}
			if hi > g.Frames {
				hi = g.Frames
			}
			if hi <= lo {
				continue
			}
			job.stats.GOPsConsidered++
			if g.Summary == nil {
				job.stats.NoSummary++
			} else if !pred.CanMatch(g.Summary) {
				job.stats.GOPsSkipped++
				continue
			}
			snap, err := s.snapshotGOP(held, vs, orig, g, c)
			if err != nil {
				return err
			}
			dj := &decodeJob{
				snap:  snap,
				key:   jobKey{video: video, phys: orig.ID, seq: g.Seq, from: 0, to: -1},
				bytes: &job.bytesRead,
				from:  0,
				to:    -1,
			}
			job.units = append(job.units, &queryUnit{
				job: dj, start: g.StartFrame, lo: lo, hi: hi,
				done: make(chan struct{}),
			})
		}
		job.stats.BytesRead = c.stats.BytesRead
		job.fetches = c.fetches
		return nil
	})
	obs.Observe(ctx, s.pipe, obs.StagePlan, time.Since(planStart))
	if err != nil {
		return nil, err
	}
	return job, nil
}

// scan applies the exact predicate to the unit's decoded frames. The
// analysis runs on the RGB conversions — the same frame.Convert the raw
// read path applies — so matched frames are byte-identical to a full
// raw RGB read filtered client-side.
func (u *queryUnit) scan(pred Predicate, fps int) {
	rgb, infos := analyzeRGB(u.job.frames)
	hi := u.hi
	if hi > len(infos) {
		hi = len(infos)
	}
	for j := u.lo; j < hi; j++ {
		u.scanned++
		if !pred.Match(infos[j]) {
			continue
		}
		idx := u.start + j
		u.matches = append(u.matches, Match{
			Index: idx,
			Time:  float64(idx) / float64(fps),
			Frame: rgb[j],
			Info:  infos[j],
		})
	}
	// The matches retain only their own frames; drop the decoded GOP.
	u.job.frames = nil
}

// QueryStream is an in-order streaming predicate read: Next returns the
// matches of one decoded GOP at a time, skipping GOPs with no matches,
// while later candidates prefetch and decode ahead.
type QueryStream struct {
	// Width, Height, FPS describe the source frames matches are drawn
	// from (frames are RGB at source resolution).
	Width, Height, FPS int

	s      *Store
	ctx    context.Context
	cancel context.CancelCauseFunc
	pred   Predicate
	job    *queryJob
	next   int
	claim  atomic.Int64
	ahead  chan struct{}
	stats  QueryStats
	err    error
}

// ReadStreamWhere opens a streaming predicate read over [t0, t1) (t1 <=
// 0 means the end of the video). The returned stream must be drained to
// io.EOF or closed. Planning, pruning, and decode mechanics match
// ReadWhere exactly; only delivery differs.
func (s *Store) ReadStreamWhere(ctx context.Context, video string, pred Predicate, t0, t1 float64) (*QueryStream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	job, err := s.prepareQuery(ctx, video, pred, t0, t1, s.opts.DisablePrefetch)
	if err != nil {
		return nil, err
	}
	sctx, cancel := context.WithCancelCause(ctx)
	st := &QueryStream{
		Width: job.width, Height: job.height, FPS: job.fps,
		s: s, ctx: sctx, cancel: cancel, pred: pred, job: job,
		stats: job.stats,
		ahead: make(chan struct{}, 2*s.opts.Workers),
	}
	s.startPrefetch(sctx, job.fetches)
	workers := s.opts.Workers
	if workers > len(job.units) {
		workers = len(job.units)
	}
	for w := 0; w < workers; w++ {
		go st.worker()
	}
	return st, nil
}

// worker claims units in order and produces them until the stream is
// exhausted, cancelled, or a unit fails.
func (st *QueryStream) worker() {
	for {
		i := int(st.claim.Add(1)) - 1
		if i >= len(st.job.units) {
			return
		}
		u := st.job.units[i]
		u.err = st.produce(u)
		close(u.done)
		if u.err != nil {
			st.cancel(u.err)
			return
		}
	}
}

// produce decodes and scans one unit, bounded by the look-ahead window
// so decode never runs unboundedly ahead of the consumer.
func (st *QueryStream) produce(u *queryUnit) error {
	select {
	case st.ahead <- struct{}{}:
	case <-st.ctx.Done():
		return context.Cause(st.ctx)
	}
	snap, err := u.job.resolve(st.ctx, st.s)
	if err != nil {
		return err
	}
	select {
	case st.s.workSem <- struct{}{}:
	case <-st.ctx.Done():
		return context.Cause(st.ctx)
	}
	start := time.Now()
	err = u.job.decodeResolved(st.ctx, snap, st.s)
	obs.ObserveCodec(st.ctx, st.s.pipe, obs.StageDecode, string(u.job.codecID), time.Since(start))
	<-st.s.workSem
	if err != nil {
		return err
	}
	u.scan(st.pred, st.FPS)
	return nil
}

// Next returns the next non-empty batch of matches in frame order, or
// io.EOF once every candidate GOP has been scanned. After a non-nil
// error the stream is dead and Next keeps returning that error.
func (st *QueryStream) Next() (*QueryBatch, error) {
	if st.err != nil {
		return nil, st.err
	}
	for st.next < len(st.job.units) {
		u := st.job.units[st.next]
		select {
		case <-u.done:
		case <-st.ctx.Done():
			return nil, st.finish(context.Cause(st.ctx))
		}
		if u.err != nil {
			return nil, st.finish(u.err)
		}
		st.next++
		select {
		case <-st.ahead:
		default:
		}
		st.stats.GOPsDecoded += u.job.decoded
		st.stats.FramesScanned += u.scanned
		st.stats.FramesMatched += len(u.matches)
		if len(u.matches) > 0 {
			return &QueryBatch{Matches: u.matches}, nil
		}
	}
	return nil, st.finish(io.EOF)
}

// finish records the stream's terminal state and releases its workers.
func (st *QueryStream) finish(err error) error {
	if st.err == nil {
		st.err = err
		st.stats.BytesRead = st.job.stats.BytesRead + st.job.bytesRead.Load()
		st.cancel(err)
	}
	return st.err
}

// Close cancels the stream. Safe to call at any point and more than
// once; after Close, Next reports the cancellation.
func (st *QueryStream) Close() error {
	st.finish(errors.New("core: query stream closed"))
	return nil
}

// Stats reports the stream's counters: planning-time values (considered
// / skipped / no-summary) are complete as soon as the stream opens, the
// decode and match counters once Next has returned io.EOF. Call it from
// the goroutine consuming Next.
func (st *QueryStream) Stats() QueryStats {
	if st.err == nil {
		st.stats.BytesRead = st.job.stats.BytesRead + st.job.bytesRead.Load()
	}
	return st.stats
}
