package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
)

// skipWithoutGOPFiles skips tests that reach around the API and poke
// GOP files on disk when the suite runs against a backend that has none
// (VSS_BACKEND=mem, the CI backend-parity run).
func skipWithoutGOPFiles(t *testing.T) {
	t.Helper()
	if os.Getenv("VSS_BACKEND") == "mem" {
		t.Skip("test manipulates on-disk GOP files; mem backend has none")
	}
}

// findGOPFile locates one on-disk GOP file of the store. It walks the
// whole store directory (not just data/) so it finds GOPs under sharded
// roots too; the catalog holds no .gop files.
func findGOPFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(path) == ".gop" && found == "" {
			found = path
		}
		return nil
	})
	if found == "" {
		t.Fatal("no GOP files on disk")
	}
	return found
}

// damageEveryCopy applies damage to EVERY stored copy of one GOP
// address: under a replicated backend (VSS_BACKEND=sharded:N:R) the
// same relative path exists on several shard roots, and damaging fewer
// than all of them is, by design, not an error — read failover serves
// the intact survivors. Returns how many copies were damaged.
func damageEveryCopy(t *testing.T, dir string, damage func(path string) error) int {
	t.Helper()
	one := findGOPFile(t, dir)
	rel, err := filepath.Rel(dir, one)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the backend root (data/ or data-shardK/); the remainder is
	// the GOP's logical address path, identical on every root.
	parts := strings.SplitN(rel, string(filepath.Separator), 2)
	if len(parts) != 2 {
		t.Fatalf("unexpected GOP path layout %q", rel)
	}
	damaged := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "data") {
			continue
		}
		p := filepath.Join(dir, e.Name(), parts[1])
		if _, err := os.Stat(p); err != nil {
			continue
		}
		if err := damage(p); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	if damaged == 0 {
		t.Fatalf("no copies of %q damaged", parts[1])
	}
	return damaged
}

func TestCorruptGOPFileSurfacesError(t *testing.T) {
	skipWithoutGOPFiles(t)
	dir := t.TempDir()
	s, err := Open(dir, Options{GOPFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Create("v", -1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("v", WriteSpec{FPS: 4, Codec: codec.H264}, scene(8, 64, 48, 60)); err != nil {
		t.Fatal(err)
	}
	// Corrupt a stored GOP behind the store's back (every replica of it).
	damageEveryCopy(t, dir, func(path string) error {
		return os.WriteFile(path, []byte("corrupted"), 0o644)
	})
	if _, err := s.Read("v", ReadSpec{}); err == nil {
		t.Error("read over corrupt GOP should error, not return garbage")
	}
}

func TestMissingGOPFileSurfacesError(t *testing.T) {
	skipWithoutGOPFiles(t)
	dir := t.TempDir()
	s, err := Open(dir, Options{GOPFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Create("v", -1)
	if err := s.Write("v", WriteSpec{FPS: 4, Codec: codec.H264}, scene(8, 64, 48, 61)); err != nil {
		t.Fatal(err)
	}
	damageEveryCopy(t, dir, os.Remove)
	if _, err := s.Read("v", ReadSpec{}); err == nil {
		t.Error("read over missing GOP should error")
	}
}

func TestReopenAfterUncleanShutdown(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{GOPFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Create("v", -1)
	if err := s.Write("v", WriteSpec{FPS: 4, Codec: codec.H264}, scene(16, 64, 48, 62)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Close; the catalog WAL was flushed per commit,
	// so a new instance must recover the full state.
	s2, err := Open(dir, Options{GOPFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 16 {
		t.Errorf("recovered read %d frames, want 16", len(res.Frames))
	}
}

func TestOrphanedTempFilesIgnored(t *testing.T) {
	skipWithoutGOPFiles(t)
	dir := t.TempDir()
	s, err := Open(dir, Options{GOPFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Create("v", -1)
	if err := s.Write("v", WriteSpec{FPS: 4, Codec: codec.H264}, scene(8, 64, 48, 63)); err != nil {
		t.Fatal(err)
	}
	// A crash mid-WriteGOP leaves a uniquely named temp file (the shape
	// storage.atomicWrite's os.CreateTemp produces); it must not disturb
	// reads, and — once old enough that it cannot be a live writer's —
	// the background maintenance pass must sweep it.
	gop := findGOPFile(t, dir)
	tmp := filepath.Join(filepath.Dir(gop), "."+filepath.Base(gop)+".tmp-123456")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("v", ReadSpec{}); err != nil {
		t.Errorf("orphan temp file broke reads: %v", err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}
	if err := s.Maintain(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("crash-orphaned temp file not swept by maintenance (stat err %v)", err)
	}
	if _, err := s.Read("v", ReadSpec{}); err != nil {
		t.Errorf("read after temp sweep: %v", err)
	}
}

func TestOrphanedPhysRecoveryReclaimsStorage(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{GOPFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Create("v", -1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("v", WriteSpec{FPS: 4, Codec: codec.H264}, scene(16, 64, 48, 77)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that lost the video row but kept its physical
	// rows: recovery must drop the orphaned rows AND reclaim their GOP
	// files — no later operation ever visits a physical video the
	// catalog no longer reaches, so a row-only cleanup leaks the disk
	// space forever.
	if err := s.cat.Delete("videos", "v"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{GOPFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if keys := s2.cat.Keys("phys"); len(keys) != 0 {
		t.Errorf("orphaned phys rows survived recovery: %v", keys)
	}
	leaked := 0
	err = s2.files.Walk(func(video, physDir string, seq int, size int64) error {
		leaked++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaked != 0 {
		t.Errorf("%d GOP files leaked after orphan recovery", leaked)
	}
}

func TestDeleteWhileOtherVideosRemain(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "keep", scene(8, 64, 48, 64), 4, codec.H264)
	writeVideo(t, s, "drop", scene(8, 64, 48, 65), 4, codec.H264)
	if err := s.Delete("drop"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Read("keep", ReadSpec{})
	if err != nil || len(res.Frames) != 8 {
		t.Fatalf("surviving video broken: %v %d", err, len(res.Frames))
	}
}

func TestJointPartnerDeletionSurfacesError(t *testing.T) {
	// Deleting a logical video whose GOPs hold the shared overlap of a
	// joint pair leaves the partner unreadable for those GOPs — the read
	// must fail loudly rather than fabricate frames.
	s := newStore(t, Options{GOPFrames: 8})
	writePair(t, s, pairCfg(0.5, 0, 66), 8)
	res, err := s.JointCompressPair(GOPRef{"cam-left", 0, 0}, GOPRef{"cam-right", 0, 0}, MergeUnprojected)
	if err != nil || !res.Compressed {
		t.Skipf("pair not compressed: %+v %v", res, err)
	}
	if err := s.Delete("cam-left"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("cam-right", ReadSpec{T: Temporal{Start: 0, End: 1}}); err == nil {
		t.Error("right stream readable after its overlap partner was deleted")
	}
}
