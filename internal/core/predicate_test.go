package core

import (
	"bytes"
	"context"
	"io"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/frame"
)

// burstScene synthesizes frames where vehicles appear only inside the
// given frame ranges; everything outside is a static vehicle-free
// backdrop. With gop-aligned bursts this gives the planner GOPs whose
// summaries prove `count >= 1` false, so pruning is observable.
func burstScene(n, w, h int, bursts [][2]int) []*frame.Frame {
	// The backdrop gradient stays well clear of every vehicle-palette
	// color, so frames outside a burst really contain zero detections.
	base := frame.New(w, h, frame.RGB)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base.SetRGB(x, y, byte(60+x*50/w), byte(60+y*40/h), byte(115))
		}
	}
	inBurst := func(i int) bool {
		for _, b := range bursts {
			if i >= b[0] && i < b[1] {
				return true
			}
		}
		return false
	}
	out := make([]*frame.Frame, n)
	for i := 0; i < n; i++ {
		f := base.Clone()
		if inBurst(i) {
			cx := (i*3 + 4) % (w - 10)
			for y := h / 2; y < h/2+6 && y < h; y++ {
				for x := cx; x < cx+8; x++ {
					f.SetRGB(x, y, 220, 30, 30)
				}
			}
		}
		out[i] = f
	}
	return out
}

// baselineMatches is the reference semantics predicate reads must equal:
// a full raw RGB read, analyzed GOP by GOP (motion resets at GOP
// boundaries, like the summaries), filtered client-side over the exact
// frame window.
func baselineMatches(res *ReadResult, gopFrames int, pred Predicate, t0, t1 float64) []Match {
	var infos []FrameInfo
	for i := 0; i < len(res.Frames); i += gopFrames {
		end := i + gopFrames
		if end > len(res.Frames) {
			end = len(res.Frames)
		}
		infos = append(infos, AnalyzeFrames(res.Frames[i:end])...)
	}
	i0, i1 := FrameWindow(res.FPS, t0, t1)
	if i1 > len(res.Frames) {
		i1 = len(res.Frames)
	}
	var out []Match
	for i := i0; i < i1; i++ {
		if !pred.Match(infos[i]) {
			continue
		}
		out = append(out, Match{
			Index: i,
			Time:  float64(i) / float64(res.FPS),
			Frame: res.Frames[i],
			Info:  infos[i],
		})
	}
	return out
}

// matchesEqual asserts two match sets agree in index, time, info, and
// exact frame bytes.
func matchesEqual(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Index != w.Index {
			t.Fatalf("%s: match %d index %d, want %d", label, i, g.Index, w.Index)
		}
		if math.Abs(g.Time-w.Time) > 1e-9 {
			t.Errorf("%s: match %d time %g, want %g", label, i, g.Time, w.Time)
		}
		if g.Info.Motion != w.Info.Motion {
			t.Errorf("%s: match %d motion %g, want %g", label, i, g.Info.Motion, w.Info.Motion)
		}
		if !reflect.DeepEqual(g.Info.Detections, w.Info.Detections) {
			t.Errorf("%s: match %d detections differ", label, i)
		}
		if g.Frame.Format != frame.RGB {
			t.Fatalf("%s: match %d format %v, want RGB", label, i, g.Frame.Format)
		}
		if !bytes.Equal(g.Frame.Data, w.Frame.Data) {
			t.Errorf("%s: match %d frame bytes differ from full read", label, i)
		}
	}
}

func TestPredicateParseRoundTrip(t *testing.T) {
	cases := []struct{ in, want string }{
		{"motion > 2", "motion > 2"},
		{"motion>2", "motion > 2"},
		{"count >= 1", "count >= 1"},
		{"count = 0", "count = 0"},
		{"COUNT == 3", "count = 3"},
		{"color ~ 220,30,30", "color ~ 220,30,30 < 50"},
		{"color ~ 220 , 30 , 30 < 60.5", "color ~ 220,30,30 < 60.5"},
		{"motion > 1 and count >= 1", "motion > 1 and count >= 1"},
		{"motion > 1 or count >= 1", "motion > 1 or count >= 1"},
		{"(motion > 1 or count >= 1) and motion <= 5", "(motion > 1 or count >= 1) and motion <= 5"},
		{"motion > 1 and count >= 1 or count = 0", "motion > 1 and count >= 1 or count = 0"},
		{"motion < 0.25", "motion < 0.25"},
	}
	for _, c := range cases {
		p, err := ParsePredicate(c.in)
		if err != nil {
			t.Errorf("parse %q: %v", c.in, err)
			continue
		}
		if p.String() != c.want {
			t.Errorf("parse %q formats as %q, want %q", c.in, p.String(), c.want)
		}
		// Canonical form must reparse to itself (fixed point).
		p2, err := ParsePredicate(p.String())
		if err != nil {
			t.Errorf("reparse %q: %v", p.String(), err)
			continue
		}
		if p2.String() != p.String() {
			t.Errorf("reparse %q formats as %q", p.String(), p2.String())
		}
	}
	bad := []string{
		"", "motion", "motion >", "motion > x", "speed > 2", "motion ! 2",
		"color ~ 300,0,0", "color ~ 1,2", "color ~ 1,2,3 < -5", "motion > 2 and",
		"(motion > 2", "motion > 2)", "color ~ 1,2,3 < nan", "motion > inf",
	}
	for _, in := range bad {
		if p, err := ParsePredicate(in); err == nil {
			t.Errorf("parse %q succeeded as %q, want error", in, p.String())
		}
	}
}

// TestPredicateCanMatchSoundness property-checks the pruning contract on
// random data: whenever any frame in a GOP matches, the GOP's summary
// must report CanMatch — a summary may only prune provably-empty GOPs.
func TestPredicateCanMatchSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randInfos := func() []FrameInfo {
		infos := make([]FrameInfo, 1+rng.Intn(8))
		for i := range infos {
			if i > 0 {
				infos[i].Motion = rng.Float64() * 4
			}
			for d := rng.Intn(3); d > 0; d-- {
				infos[i].Detections = append(infos[i].Detections, Detection{
					Color: [3]float64{rng.Float64() * 255, rng.Float64() * 255, rng.Float64() * 255},
				})
			}
		}
		return infos
	}
	for trial := 0; trial < 300; trial++ {
		infos := randInfos()
		sum := Summarize(infos)
		pred, err := ParsePredicate(randPredString(rng))
		if err != nil {
			t.Fatalf("generated predicate: %v", err)
		}
		any := false
		for _, fi := range infos {
			if pred.Match(fi) {
				any = true
				break
			}
		}
		if any && !pred.CanMatch(sum) {
			t.Fatalf("trial %d: %q matches a frame but CanMatch pruned the GOP (summary %+v)",
				trial, pred, *sum)
		}
	}
}

// randPredString generates a random predicate over realistic value
// ranges, including and/or combinations.
func randPredString(rng *rand.Rand) string {
	ops := []string{"<", "<=", ">", ">=", "=="}
	term := func() string {
		switch rng.Intn(3) {
		case 0:
			return "motion " + ops[rng.Intn(len(ops))] + " " + []string{"0", "0.05", "0.2", "1", "3"}[rng.Intn(5)]
		case 1:
			return "count " + ops[rng.Intn(len(ops))] + " " + []string{"0", "1", "2"}[rng.Intn(3)]
		default:
			colors := []string{"220,30,30", "210,40,40", "40,60,200", "128,128,128"}
			dists := []string{"30", "50", "80", "120"}
			return "color ~ " + colors[rng.Intn(len(colors))] + " < " + dists[rng.Intn(len(dists))]
		}
	}
	switch rng.Intn(4) {
	case 0:
		return term()
	case 1:
		return term() + " and " + term()
	case 2:
		return term() + " or " + term()
	default:
		return "(" + term() + " or " + term() + ") and " + term()
	}
}

func TestSummaryCodecRoundTrip(t *testing.T) {
	sums := []*GOPSummary{
		{},
		{MinMotion: 0, MaxMotion: 2.75, MinCount: 0, MaxCount: 3, ColorBits: 1<<63 | 5},
		{MinMotion: 0.5, MaxMotion: 0.5, MinCount: 1, MaxCount: 1, ColorBits: 1},
	}
	for i, s := range sums {
		b := EncodeSummary(s)
		got, err := DecodeSummary(b)
		if err != nil {
			t.Fatalf("summary %d: decode: %v", i, err)
		}
		if *got != *s {
			t.Errorf("summary %d: round trip %+v, want %+v", i, *got, *s)
		}
		if !bytes.Equal(EncodeSummary(got), b) {
			t.Errorf("summary %d: re-encode not byte-identical", i)
		}
		// JSON path (the catalog's persisted form).
		j, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back GOPSummary
		if err := back.UnmarshalJSON(j); err != nil {
			t.Fatalf("summary %d: json: %v", i, err)
		}
		if back != *s {
			t.Errorf("summary %d: json round trip %+v, want %+v", i, back, *s)
		}
	}
	// Every single-byte corruption must be rejected (the CRC covers the
	// payload; header bytes fail their own checks).
	good := EncodeSummary(sums[1])
	for i := range good {
		for _, delta := range []byte{1, 0x80} {
			bad := append([]byte(nil), good...)
			bad[i] ^= delta
			if _, err := DecodeSummary(bad); err == nil {
				t.Fatalf("corrupting byte %d (^%#x) accepted", i, delta)
			}
		}
	}
	if _, err := DecodeSummary(good[:summaryLen-1]); err == nil {
		t.Error("truncated summary accepted")
	}
	if _, err := DecodeSummary(nil); err == nil {
		t.Error("nil summary accepted")
	}
}

// TestReadWhereParity is the core equivalence property: over random
// predicates and intervals, ReadWhere returns exactly the frames a full
// raw read filtered client-side would — byte-identical pixels included —
// for both raw and compressed originals.
func TestReadWhereParity(t *testing.T) {
	const (
		n, w, h = 48, 64, 48
		fps     = 8
		gop     = 8
	)
	bursts := [][2]int{{8, 16}, {26, 38}}
	for _, cd := range []codec.ID{codec.Raw, codec.H264} {
		t.Run(string(cd), func(t *testing.T) {
			s := newStore(t, Options{GOPFrames: gop, DisableCache: true})
			writeVideo(t, s, "v", burstScene(n, w, h, bursts), fps, cd)
			if !cd.Compressed() {
				// Raw ingest defers summarization to maintenance; backfill
				// so the parity trials below also exercise pruning.
				if err := s.Maintain(); err != nil {
					t.Fatal(err)
				}
			}
			full, err := s.Read("v", ReadSpec{})
			if err != nil {
				t.Fatal(err)
			}
			dur := float64(n) / float64(fps)
			rng := rand.New(rand.NewSource(int64(len(cd))))
			for trial := 0; trial < 25; trial++ {
				predStr := randPredString(rng)
				pred, err := ParsePredicate(predStr)
				if err != nil {
					t.Fatal(err)
				}
				t0, t1 := 0.0, 0.0 // whole video
				if trial%2 == 1 {
					t0 = rng.Float64() * dur * 0.8
					t1 = t0 + rng.Float64()*(dur-t0)
				}
				res, err := s.ReadWhere("v", pred, t0, t1)
				if err != nil {
					t.Fatalf("ReadWhere(%q, [%g,%g)): %v", predStr, t0, t1, err)
				}
				end := t1
				if end <= 0 {
					end = dur
				}
				want := baselineMatches(full, gop, pred, t0, end)
				matchesEqual(t, predStr, res.Matches, want)

				st := res.Stats
				if st.FramesMatched != len(res.Matches) {
					t.Errorf("%q: FramesMatched %d != %d matches", predStr, st.FramesMatched, len(res.Matches))
				}
				if st.GOPsDecoded > st.GOPsConsidered-st.GOPsSkipped {
					t.Errorf("%q: decoded %d > considered %d - skipped %d",
						predStr, st.GOPsDecoded, st.GOPsConsidered, st.GOPsSkipped)
				}
				if st.NoSummary != 0 {
					t.Errorf("%q: %d summaryless GOPs on a freshly written store", predStr, st.NoSummary)
				}
				if res.Width != w || res.Height != h || res.FPS != fps {
					t.Errorf("%q: geometry %dx%d@%d", predStr, res.Width, res.Height, res.FPS)
				}
			}
		})
	}
}

// TestReadStreamWhereParity pins the streaming delivery path to the batch
// path: same matches in the same order, same counters at EOF.
func TestReadStreamWhereParity(t *testing.T) {
	const n, fps, gop = 48, 8, 8
	s := newStore(t, Options{GOPFrames: gop, DisableCache: true})
	writeVideo(t, s, "v", burstScene(n, 64, 48, [][2]int{{0, 8}, {16, 24}, {40, 48}}), fps, codec.H264)
	for _, predStr := range []string{"count >= 1", "motion > 0.01", "count == 0 and motion <= 0.5"} {
		pred, err := ParsePredicate(predStr)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := s.ReadWhere("v", pred, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.ReadStreamWhere(context.Background(), "v", pred, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []Match
		for {
			b, err := st.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%q: Next: %v", predStr, err)
			}
			if len(b.Matches) == 0 {
				t.Fatalf("%q: empty batch delivered", predStr)
			}
			streamed = append(streamed, b.Matches...)
		}
		matchesEqual(t, predStr, streamed, batch.Matches)
		ss, bs := st.Stats(), batch.Stats
		if ss.GOPsConsidered != bs.GOPsConsidered || ss.GOPsSkipped != bs.GOPsSkipped ||
			ss.GOPsDecoded != bs.GOPsDecoded || ss.FramesScanned != bs.FramesScanned ||
			ss.FramesMatched != bs.FramesMatched || ss.NoSummary != bs.NoSummary {
			t.Errorf("%q: stream stats %+v, batch stats %+v", predStr, ss, bs)
		}
		st.Close()
	}
	// Close before drain must release the stream with an error, not hang.
	pred, _ := ParsePredicate("count >= 0")
	st, err := s.ReadStreamWhere(context.Background(), "v", pred, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := st.Next(); err == nil || err == io.EOF {
		t.Errorf("Next after Close: %v", err)
	}
}

// TestReadWherePruning verifies the planner actually skips GOPs whose
// summary bounds refute the predicate — the point of the subsystem — and
// that pruning is exact on a burst-structured video: only burst GOPs are
// decoded.
func TestReadWherePruning(t *testing.T) {
	const n, fps, gop = 64, 8, 8
	bursts := [][2]int{{16, 24}} // exactly one of eight GOPs has vehicles
	s := newStore(t, Options{GOPFrames: gop, DisableCache: true})
	writeVideo(t, s, "v", burstScene(n, 64, 48, bursts), fps, codec.H264)

	pred, err := ParsePredicate("count >= 1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ReadWhere("v", pred, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.GOPsConsidered != 8 {
		t.Fatalf("considered %d GOPs, want 8", st.GOPsConsidered)
	}
	if st.GOPsSkipped != 7 {
		t.Errorf("skipped %d GOPs, want 7 (summaries: %+v)", st.GOPsSkipped, st)
	}
	if st.GOPsDecoded != 1 {
		t.Errorf("decoded %d GOPs, want 1", st.GOPsDecoded)
	}
	if st.FramesScanned != gop {
		t.Errorf("scanned %d frames, want %d", st.FramesScanned, gop)
	}
	if len(res.Matches) != 8 {
		t.Errorf("%d matches, want 8", len(res.Matches))
	}
	for _, m := range res.Matches {
		if m.Index < 16 || m.Index >= 24 {
			t.Errorf("match at frame %d outside the burst", m.Index)
		}
	}

	// A time window over vehicle-free GOPs prunes everything: zero decodes.
	res, err = s.ReadWhere("v", pred, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.GOPsDecoded != 0 || len(res.Matches) != 0 {
		t.Errorf("windowed query decoded %d GOPs, matched %d", res.Stats.GOPsDecoded, len(res.Matches))
	}
	if res.Stats.BytesRead != 0 {
		t.Errorf("pruned-out query read %d bytes", res.Stats.BytesRead)
	}
}

func TestReadWhereValidation(t *testing.T) {
	s := newStore(t, Options{})
	writeVideo(t, s, "v", scene(16, 48, 32, 3), 4, codec.Raw)
	pred, _ := ParsePredicate("count >= 0")

	if _, err := s.ReadWhere("missing", pred, 0, 0); err != ErrNotFound {
		t.Errorf("missing video: %v", err)
	}
	if _, err := s.ReadWhere("v", nil, 0, 0); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := s.ReadWhere("v", pred, -1, 2); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := s.ReadWhere("v", pred, 3, 2); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := s.ReadWhere("v", pred, 0, 100); err == nil {
		t.Error("interval past the end accepted")
	}
	// An empty (never-written) video yields an empty result, not an error.
	if err := s.Create("empty", 0); err != nil {
		t.Fatal(err)
	}
	res, err := s.ReadWhere("empty", pred, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 || res.Stats.GOPsConsidered != 0 {
		t.Errorf("empty video: %+v", res.Stats)
	}
	// Cancelled context refuses to start.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ReadWhereContext(ctx, "v", pred, 0, 0); err == nil {
		t.Error("cancelled context accepted")
	}
}

// TestPreSummaryBackfill pins the compatibility story for stores written
// before summaries existed (and for WriteEncoded, which never computes
// them): queries stay correct via conservative full decode, and Maintain
// backfills summaries incrementally until pruning works.
func TestPreSummaryBackfill(t *testing.T) {
	const n, w, h, fps, gop = 64, 64, 48, 8, 8
	frames := burstScene(n, w, h, [][2]int{{16, 24}})
	if len(frames)%gop != 0 {
		t.Fatal("scene must be GOP aligned")
	}
	dir := t.TempDir()
	opts := Options{GOPFrames: gop, DisableCache: true, DisableDeferred: true}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close() }()
	if err := s.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	var gops [][]byte
	for i := 0; i < n; i += gop {
		data, _, err := codec.EncodeGOP(frames[i:i+gop], codec.H264, codec.DefaultQuality)
		if err != nil {
			t.Fatal(err)
		}
		gops = append(gops, data)
	}
	if err := s.WriteEncoded("v", fps, gops); err != nil {
		t.Fatal(err)
	}

	pred, err := ParsePredicate("count >= 1")
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	want := baselineMatches(full, gop, pred, 0, float64(n)/float64(fps))

	// Before backfill: every candidate GOP is summaryless, nothing is
	// pruned, and results are still exact.
	res, err := s.ReadWhere("v", pred, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, "pre-backfill", res.Matches, want)
	if res.Stats.NoSummary != n/gop || res.Stats.GOPsSkipped != 0 {
		t.Fatalf("pre-backfill stats %+v, want %d summaryless and 0 skipped", res.Stats, n/gop)
	}
	if res.Stats.GOPsDecoded != n/gop {
		t.Errorf("pre-backfill decoded %d GOPs, want all %d", res.Stats.GOPsDecoded, n/gop)
	}

	// Maintain backfills up to backfillBudget GOPs per pass.
	for pass := 0; pass < 8; pass++ {
		if err := s.Maintain(); err != nil {
			t.Fatal(err)
		}
		res, err = s.ReadWhere("v", pred, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.NoSummary == 0 {
			break
		}
	}
	if res.Stats.NoSummary != 0 {
		t.Fatalf("summaries not fully backfilled: %+v", res.Stats)
	}
	matchesEqual(t, "post-backfill", res.Matches, want)
	if res.Stats.GOPsSkipped != n/gop-1 {
		t.Errorf("post-backfill skipped %d GOPs, want %d", res.Stats.GOPsSkipped, n/gop-1)
	}

	// Backfilled summaries must survive a reopen (they ride the catalog).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err = s2.ReadWhere("v", pred, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, "post-reopen", res.Matches, want)
	if res.Stats.NoSummary != 0 || res.Stats.GOPsSkipped != n/gop-1 {
		t.Errorf("post-reopen stats %+v", res.Stats)
	}
}

// TestPredicateReadsConcurrentWithWriter stresses predicate reads racing
// a pipelined writer (run under -race in CI): every result must be an
// internally consistent snapshot of some committed prefix — monotonic
// indices, exact per-frame info, frames from the committed scene.
func TestPredicateReadsConcurrentWithWriter(t *testing.T) {
	const n, w, h, fps, gop = 64, 48, 32, 8, 8
	frames := burstScene(n, w, h, [][2]int{{0, n}}) // vehicles everywhere
	s := newStore(t, Options{GOPFrames: gop, DisableCache: true, Workers: 4})
	if err := s.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	pred, err := ParsePredicate("count >= 1")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if r == 2 { // one reader drives the streaming path
					st, err := s.ReadStreamWhere(context.Background(), "v", pred, 0, 0)
					if err != nil {
						t.Errorf("ReadStreamWhere: %v", err)
						return
					}
					last := -1
					for {
						b, err := st.Next()
						if err == io.EOF {
							break
						}
						if err != nil {
							t.Errorf("stream Next: %v", err)
							return
						}
						for _, m := range b.Matches {
							if m.Index <= last {
								t.Errorf("stream indices not increasing: %d after %d", m.Index, last)
								return
							}
							last = m.Index
						}
					}
					continue
				}
				res, err := s.ReadWhere("v", pred, 0, 0)
				if err != nil {
					t.Errorf("ReadWhere: %v", err)
					return
				}
				last := -1
				for _, m := range res.Matches {
					if m.Index <= last {
						t.Errorf("indices not increasing: %d after %d", m.Index, last)
						return
					}
					last = m.Index
					if m.Index >= n {
						t.Errorf("match %d beyond written frames", m.Index)
						return
					}
					if m.Info.Count() < 1 {
						t.Errorf("match %d violates predicate", m.Index)
						return
					}
					if len(m.Frame.Data) != w*h*3 {
						t.Errorf("match %d frame is %d bytes", m.Index, len(m.Frame.Data))
						return
					}
				}
				if res.Stats.GOPsDecoded > res.Stats.GOPsConsidered {
					t.Errorf("decoded %d > considered %d", res.Stats.GOPsDecoded, res.Stats.GOPsConsidered)
					return
				}
			}
		}(r)
	}

	wr, err := s.OpenWriterWith("v", WriteSpec{FPS: fps, Codec: codec.H264}, WriteOptions{EncodeWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 4 {
		if err := wr.Append(frames[i : i+4]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	// Quiescent check: the final state matches the baseline exactly.
	full, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ReadWhere("v", pred, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, "post-write", res.Matches, baselineMatches(full, gop, pred, 0, float64(n)/fps))
	if res.Stats.NoSummary != 0 {
		t.Errorf("%d GOPs missing summaries after pipelined write", res.Stats.NoSummary)
	}
}

// TestDisableSummaries pins the escape hatch: no summaries are computed,
// every query decodes conservatively, and results are still exact.
func TestDisableSummaries(t *testing.T) {
	const n, fps, gop = 32, 8, 8
	s := newStore(t, Options{GOPFrames: gop, DisableCache: true, DisableSummaries: true})
	writeVideo(t, s, "v", burstScene(n, 64, 48, [][2]int{{8, 16}}), fps, codec.H264)
	pred, _ := ParsePredicate("count >= 1")
	res, err := s.ReadWhere("v", pred, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NoSummary != n/gop || res.Stats.GOPsSkipped != 0 {
		t.Errorf("stats %+v, want all %d GOPs summaryless", res.Stats, n/gop)
	}
	full, err := s.Read("v", ReadSpec{})
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, "disabled", res.Matches, baselineMatches(full, gop, pred, 0, float64(n)/fps))
	// Maintain must respect the switch too.
	if err := s.Maintain(); err != nil {
		t.Fatal(err)
	}
	res, err = s.ReadWhere("v", pred, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NoSummary != n/gop {
		t.Errorf("Maintain backfilled summaries with DisableSummaries set")
	}
}

// FuzzPredicateParse asserts the parser never panics and that successful
// parses have a stable canonical form: parse → format → parse is a fixed
// point.
func FuzzPredicateParse(f *testing.F) {
	seeds := []string{
		"motion > 2",
		"count >= 1",
		"count == 0",
		"color ~ 220,30,30 < 60",
		"color ~ 220 , 30 , 30",
		"motion > 1 and count >= 1",
		"(motion < 0.5 or count == 0) and color ~ 40,60,200 < 80",
		"motion > 1 or count >= 1 or motion <= 0",
		"motion>=0.125and count<2",
		"", "motion", "((()))", "color ~ 999,0,0 < 1", "and and and",
		"motion > 1e308", "count >= -0", "color~1,2,3<4",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParsePredicate(in)
		if err != nil {
			return
		}
		canon := p.String()
		p2, err := ParsePredicate(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, in, err)
		}
		if p2.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", in, canon, p2.String())
		}
		// Parsed predicates must be safely evaluable on arbitrary records.
		p.Match(FrameInfo{})
		p.Match(FrameInfo{Motion: 1.5, Detections: []Detection{{Color: [3]float64{220, 30, 30}}}})
		p.CanMatch(&GOPSummary{MaxMotion: 3, MaxCount: 2, ColorBits: ^uint64(0)})
	})
}

// FuzzSummaryCodec asserts DecodeSummary never panics on arbitrary bytes
// and that every accepted input is exactly the canonical encoding of the
// summary it decodes to.
func FuzzSummaryCodec(f *testing.F) {
	f.Add(EncodeSummary(&GOPSummary{}))
	f.Add(EncodeSummary(&GOPSummary{MaxMotion: 2.5, MinCount: 1, MaxCount: 4, ColorBits: 0xdeadbeef}))
	f.Add([]byte{})
	f.Add([]byte{summaryMagic, summaryVersion, 0, 0})
	corrupted := EncodeSummary(&GOPSummary{MaxMotion: 1})
	corrupted[5] ^= 0xff
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSummary(b)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeSummary(s), b) {
			t.Fatalf("accepted non-canonical encoding %x of %+v", b, *s)
		}
		if s.MinMotion > s.MaxMotion || s.MinCount > s.MaxCount {
			t.Fatalf("accepted inverted bounds %+v", *s)
		}
	})
}
