package core

import (
	"math"
	"sort"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/quality"
	"repro/internal/storage"
)

// This file implements Section 4 of the paper: cache admission of read
// results as new physical videos, and the LRU_VSS eviction policy
// LRU_vss(f) = LRU(f) + γ·p(f) − ζ·r(f) + b(f) over GOP "pages".
//
// Locking: every function here carries the Locked suffix and requires the
// video's lock (videoState.mu) to be held by the caller.

// nrectClose reports approximate equality of normalized rects.
func nrectClose(a, b NRect) bool {
	const eps = 1e-6
	return math.Abs(a.X0-b.X0) < eps && math.Abs(a.Y0-b.Y0) < eps &&
		math.Abs(a.X1-b.X1) < eps && math.Abs(a.Y1-b.Y1) < eps
}

// matchesOutput reports whether a physical video already stores data in
// the output configuration of a read.
func matchesOutput(p *PhysMeta, r resolvedSpec) bool {
	return p.Codec == r.codec && p.Width == r.roiW && p.Height == r.roiH &&
		p.FPS == r.outFPS && nrectClose(p.ROI, r.roi) &&
		(!r.codec.Compressed() || p.Quality == r.quality)
}

// admitLocked decides whether to cache the result of a read as a new
// physical video, and does so. Returns whether the result was admitted.
// fragIDs are the physical-video IDs the plan used (revalidated against
// the video's current state, which may have changed since planning —
// admission runs after the lock was dropped for the compute phase).
func (s *Store) admitLocked(vs *videoState, job *readJob, fragIDs []int, parentMSE float64) (bool, error) {
	if s.opts.DisableCache {
		return false, nil
	}
	r := job.r
	frames, encoded, mbpp := job.outFrames, job.outGOPs, job.mbpp
	v := vs.meta
	// A read served entirely by one fragment already in the output
	// configuration adds no information: skip.
	if len(fragIDs) == 1 {
		if p := vs.byID(fragIDs[0]); p != nil && matchesOutput(p, r) {
			return false, nil
		}
	}
	// An existing view in this configuration covering the interval makes
	// admission a duplicate: skip. (Under concurrency this is also what
	// keeps two identical parallel reads from caching the result twice:
	// admission is serialized on the video lock, so the second read sees
	// the first one's view here.)
	for _, p := range vs.phys {
		if matchesOutput(p, r) && covers(coverage(p), r.t1, r.t2) {
			return false, nil
		}
	}

	step := s.estimateStepMSE(r, mbpp)
	mse := step
	if parentMSE > 0 {
		mse = quality.ComposeMSE(parentMSE, step)
	}

	id := s.allocPhys(v)
	p := &PhysMeta{
		ID:      id,
		Dir:     storage.PhysicalDirName(id, r.roiW, r.roiH, r.outFPS, string(r.codec)),
		Width:   r.roiW,
		Height:  r.roiH,
		FPS:     r.outFPS,
		Codec:   r.codec,
		Quality: r.quality,
		ROI:     r.roi,
		Start:   r.t1,
		MSE:     mse,
	}
	if r.codec.Compressed() {
		p.PixFmt = frame.YUV420
		framesSoFar := 0
		for _, data := range encoded {
			hd, err := codec.DecodeHeader(data)
			if err != nil {
				return false, err
			}
			if err := s.files.WriteGOP(v.Name, p.Dir, len(p.GOPs), data); err != nil {
				return false, err
			}
			p.GOPs = append(p.GOPs, GOPMeta{
				Seq: len(p.GOPs), StartFrame: framesSoFar, Frames: hd.FrameCount,
				Bytes: int64(len(data)), LRU: v.Clock,
			})
			framesSoFar += hd.FrameCount
		}
		s.maybeSampleQuality(job.sampleRef, job.sampleGOP, mbpp)
	} else {
		// Raw views are cached in the requested pixel layout so identical
		// future reads are pure IO. Phase B already produced the frames in
		// that layout (job.outConv, index-aligned with outFrames) — reuse
		// them rather than re-converting under the video lock.
		outFmt := frame.PixelFormat(r.pixfmt)
		p.PixFmt = outFmt
		conv := job.outConv
		gopN := rawGOPFrames(s.opts.RawBlockBytes, outFmt, r.roiW, r.roiH, s.opts.GOPFrames)
		for i := 0; i < len(frames); i += gopN {
			j := i + gopN
			if j > len(frames) {
				j = len(frames)
			}
			chunk := make([]*frame.Frame, j-i)
			for k := i; k < j; k++ {
				switch {
				case k < len(conv):
					chunk[k-i] = conv[k]
				case frames[k].Format == outFmt:
					chunk[k-i] = frames[k]
				default:
					chunk[k-i] = frames[k].Convert(outFmt)
				}
			}
			data, _, err := codec.EncodeGOP(chunk, codec.Raw, 0)
			if err != nil {
				return false, err
			}
			if err := s.files.WriteGOP(v.Name, p.Dir, len(p.GOPs), data); err != nil {
				return false, err
			}
			p.GOPs = append(p.GOPs, GOPMeta{
				Seq: len(p.GOPs), StartFrame: i, Frames: j - i,
				Bytes: int64(len(data)), LRU: v.Clock,
			})
		}
	}
	vs.phys[id] = p
	if err := s.savePhys(v.Name, p); err != nil {
		return false, err
	}
	if err := s.saveVideo(v); err != nil {
		return false, err
	}
	if err := s.evictLocked(vs); err != nil {
		return false, err
	}
	// The new view may itself have been evicted immediately under a tight
	// budget; report admission based on survival.
	return len(p.GOPs) > 0, nil
}

// rawGOPFrames computes frames per raw GOP under the block-size cap.
func rawGOPFrames(blockBytes int64, fmtv frame.PixelFormat, w, h, maxFrames int) int {
	frameBytes := int64(fmtv.Size(w, h))
	if frameBytes >= blockBytes {
		return 1
	}
	n := int(blockBytes / frameBytes)
	if n > maxFrames {
		n = maxFrames
	}
	if n < 1 {
		n = 1
	}
	return n
}

// maybeSampleQuality periodically measures exact PSNR of one just-encoded
// GOP against its source frames to refine the MBPP->PSNR estimator
// (Section 3.2: "VSS periodically samples regions of compressed video,
// computes exact PSNR, and updates its estimate"). The sampling counter
// has its own lock (it is store-global, not per-video); the estimator
// locks itself.
func (s *Store) maybeSampleQuality(frames []*frame.Frame, gop []byte, mbpp float64) {
	if len(gop) == 0 || len(frames) == 0 {
		return
	}
	s.sampleMu.Lock()
	s.sampleCounter++
	due := s.sampleCounter%s.opts.QualitySampleEvery == 0
	s.sampleMu.Unlock()
	if !due {
		return
	}
	dec, _, err := codec.DecodeGOP(gop)
	if err != nil || len(dec) == 0 {
		return
	}
	n := len(dec)
	if n > len(frames) {
		n = len(frames)
	}
	var sum float64
	for i := 0; i < n; i++ {
		ref := frames[i]
		if ref.Format != dec[i].Format {
			ref = ref.Convert(dec[i].Format)
		}
		p, err := quality.PSNR(ref, dec[i])
		if err != nil {
			return
		}
		sum += p
	}
	s.est.Observe(mbpp, sum/float64(n))
}

// evictCandidate scores one GOP page.
type evictCandidate struct {
	phys  *PhysMeta
	seq   int
	score float64
	bytes int64
}

// evictLocked enforces the video's storage budget using LRU_VSS
// (Section 4). GOPs are scored by last use offset by position (γ, reduces
// fragmentation) and redundancy (ζ, prefers evicting pages with
// higher-quality alternatives); pages that are the only sufficiently
// high-quality cover of their time range are never evicted.
func (s *Store) evictLocked(vs *videoState) error {
	v := vs.meta
	if v.Budget <= 0 {
		return nil
	}
	total := vs.totalBytes()
	if total <= v.Budget {
		return nil
	}
	gamma, zeta := s.opts.Gamma, s.opts.Zeta
	if s.opts.OrdinaryLRU {
		gamma, zeta = 0, 0
	}
	var cands []evictCandidate
	for _, p := range vs.phys {
		if p.Orig {
			// The originally written video is the guaranteed baseline
			// cover (and may have an open streaming writer); its pages
			// carry b(f) = +inf.
			continue
		}
		n := len(p.GOPs)
		for i := range p.GOPs {
			g := &p.GOPs[i]
			if g.Joint != nil {
				// Jointly compressed pages are pinned: the partner video
				// needs the shared overlap stream to reconstruct.
				continue
			}
			pos := i
			if n-1-i < pos {
				pos = n - 1 - i
			}
			score := float64(g.LRU) + gamma*float64(pos) - zeta*float64(s.redundancyLocked(vs, p, g))
			cands = append(cands, evictCandidate{phys: p, seq: g.Seq, score: score, bytes: g.Bytes})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score < cands[j].score })

	dirty := map[int]*PhysMeta{}
	for _, c := range cands {
		if total <= v.Budget {
			break
		}
		g := findGOP(c.phys, c.seq)
		if g == nil {
			continue
		}
		// Baseline-quality guard b(f): re-checked at eviction time because
		// earlier evictions may have removed alternative covers.
		if s.isLastQualityCoverLocked(vs, c.phys, g) {
			continue
		}
		if err := s.removeGOPLocked(vs, c.phys, g); err != nil {
			return err
		}
		total -= c.bytes
		dirty[c.phys.ID] = c.phys
	}
	for _, p := range dirty {
		if len(p.GOPs) == 0 {
			if err := s.dropPhysLocked(vs, p); err != nil {
				return err
			}
			continue
		}
		if err := s.savePhys(v.Name, p); err != nil {
			return err
		}
	}
	return s.saveVideo(v)
}

// redundancyLocked computes r(f): the number of other fragments that cover
// this GOP's spatiotemporal range with strictly higher quality (lower
// accumulated MSE). A page with many better alternatives is cheap to lose.
func (s *Store) redundancyLocked(vs *videoState, p *PhysMeta, g *GOPMeta) int {
	a, b := p.gopSpan(g)
	count := 0
	for _, q := range vs.phys {
		if q.ID == p.ID || q.MSE >= p.MSE {
			continue // not strictly higher quality
		}
		if q.ROI.Contains(p.ROI) && covers(coverage(q), a, b) {
			count++
		}
	}
	return count
}

// isLastQualityCoverLocked implements b(f): a GOP is protected when no
// other fragment of lossless-grade quality (PSNR >= τ vs the original)
// covers its span.
func (s *Store) isLastQualityCoverLocked(vs *videoState, p *PhysMeta, g *GOPMeta) bool {
	tauMSE := quality.MSEFromPSNR(quality.Lossless)
	if p.MSE > tauMSE && !p.Orig {
		return false // not itself part of the quality cover
	}
	a, b := p.gopSpan(g)
	for _, q := range vs.phys {
		if q.ID == p.ID {
			continue
		}
		if (q.MSE <= tauMSE || q.Orig) && q.ROI.Contains(p.ROI) && q.Width >= p.Width && covers(coverage(q), a, b) {
			return false
		}
	}
	return true
}

// findGOP locates a GOP by sequence number.
func findGOP(p *PhysMeta, seq int) *GOPMeta {
	for i := range p.GOPs {
		if p.GOPs[i].Seq == seq {
			return &p.GOPs[i]
		}
	}
	return nil
}

// removeGOPLocked deletes one GOP page (file and metadata).
func (s *Store) removeGOPLocked(vs *videoState, p *PhysMeta, g *GOPMeta) error {
	if g.DupOf == nil {
		if err := s.files.DeleteGOP(vs.meta.Name, p.Dir, g.Seq); err != nil {
			return err
		}
	}
	for i := range p.GOPs {
		if p.GOPs[i].Seq == g.Seq {
			p.GOPs = append(p.GOPs[:i], p.GOPs[i+1:]...)
			break
		}
	}
	return nil
}

// dropPhysLocked removes an empty physical video entirely.
func (s *Store) dropPhysLocked(vs *videoState, p *PhysMeta) error {
	if err := s.files.DeletePhysical(vs.meta.Name, p.Dir); err != nil {
		return err
	}
	delete(vs.phys, p.ID)
	return s.cat.Delete("phys", physKey(vs.meta.Name, p.ID))
}
