package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/frame"
	"repro/internal/index"
	"repro/internal/vision"
)

// This file implements joint-compression candidate selection (Section
// 5.1.3 and Figure 9): fragments are fingerprinted with color histograms,
// clustered incrementally with BIRCH, and — tightest clusters first —
// searched for pairs sharing many unambiguous feature correspondences.
//
// Locking: discovery visits one video at a time under that video's lock
// (fingerprinting decodes only first frames); the matching phase runs on
// the decoded copies with no locks held; compression locks each candidate
// pair through the ordered-acquisition path in joint.go.

// Candidate selection parameters from the paper's prototype: a pair is
// sufficiently related at m = 20 nearby, unambiguous correspondences.
const (
	candidateMinMatches = 20
	fingerprintBins     = 8
	fingerprintThumb    = 4
	// clusterThreshold is the BIRCH radius bound in fingerprint space
	// (histograms are unit-mass per channel, so distances live in [0, ~2]).
	clusterThreshold = 0.35
)

// PairCandidate names two GOPs from different logical videos proposed for
// joint compression.
type PairCandidate struct {
	A, B    GOPRef
	Matches int
}

// JointStats summarizes a joint-compression sweep.
type JointStats struct {
	Scanned     int // GOPs fingerprinted
	Pairs       int // candidate pairs proposed
	Compressed  int
	Duplicates  int
	Aborted     int
	BytesBefore int64
	BytesAfter  int64
}

// FindJointCandidates runs the discovery pipeline over the original
// physical videos of every logical video and returns proposed pairs. It
// never proposes GOPs already jointly compressed or deduplicated. Safe
// for concurrent use; it holds at most one video lock at a time.
func (s *Store) FindJointCandidates() ([]PairCandidate, int, error) {
	type gopInfo struct {
		ref   GOPRef
		first *frame.Frame
	}
	fp, err := index.NewFingerprints(clusterThreshold)
	if err != nil {
		return nil, 0, err
	}
	// One video at a time: snapshot its original's GOP bytes under that
	// video's lock only, then decode first frames and fingerprint with no
	// locks held (same pattern as the read path) — discovery never stalls
	// foreground traffic, and at most one video's snapshots are resident.
	var infos []gopInfo
	for _, name := range s.videoNames() {
		vs := s.acquire(name)
		if vs == nil {
			continue // deleted while we iterated
		}
		type pending struct {
			ref  GOPRef
			snap gopSnap
		}
		var snaps []pending
		func() {
			defer vs.mu.Unlock()
			held := map[string]*videoState{name: vs}
			p := vs.original()
			if p == nil {
				return
			}
			var stats ReadStats
			c := &snapCollector{stats: &stats, eager: true}
			for i := range p.GOPs {
				g := &p.GOPs[i]
				if g.Joint != nil || g.DupOf != nil {
					continue
				}
				snap, err := s.snapshotGOP(held, vs, p, g, c)
				if err != nil {
					continue // unreadable page: skip it, not the sweep
				}
				snaps = append(snaps, pending{GOPRef{name, p.ID, g.Seq}, snap})
			}
		}()
		// Decode first frames on the worker pool (one I-frame each).
		firsts := make([]*frame.Frame, len(snaps))
		if err := s.runJobs(context.Background(), len(snaps), func(i int) error {
			frames, _, _, err := decodeSnap(snaps[i].snap, 0, 1)
			if err != nil {
				return err
			}
			if len(frames) == 0 {
				return fmt.Errorf("core: empty GOP %s/%d/%d", snaps[i].ref.Video, snaps[i].ref.Phys, snaps[i].ref.Seq)
			}
			f := frames[0]
			if f.Format != frame.RGB {
				f = f.Convert(frame.RGB)
			}
			firsts[i] = f
			return nil
		}); err != nil {
			return nil, 0, err
		}
		// Fingerprint sequentially (the BIRCH index is not concurrent).
		for i, sn := range snaps {
			if err := fp.Add(len(infos), vision.Fingerprint(firsts[i], fingerprintBins, fingerprintThumb)); err != nil {
				return nil, 0, err
			}
			infos = append(infos, gopInfo{ref: sn.ref, first: firsts[i]})
		}
	}

	// Keypoints are computed lazily per GOP and cached for the sweep.
	// This phase works on decoded first frames only — no locks.
	kps := make(map[int][]vision.Keypoint)
	keypointsOf := func(id int) []vision.Keypoint {
		if k, ok := kps[id]; ok {
			return k
		}
		k := vision.DetectKeypoints(infos[id].first, 300)
		kps[id] = k
		return k
	}

	// Collect geometrically verified candidates within each cluster, then
	// pair greedily by correspondence strength: a GOP joins at most one
	// pair, and stronger matches claim their partners first.
	type scored struct {
		a, b    int
		inliers int
	}
	var all []scored
	rng := rand.New(rand.NewSource(97))
	for _, group := range fp.CandidateGroups(2) {
		sort.Ints(group)
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				if infos[a].ref.Video == infos[b].ref.Video {
					continue // joint compression crosses logical videos
				}
				ka, kb := keypointsOf(a), keypointsOf(b)
				matches := vision.MatchKeypoints(ka, kb, vision.DefaultLoweRatio)
				if len(matches) < candidateMinMatches {
					continue
				}
				// Geometric verification: the correspondences must be
				// consistent with a single homography, not merely similar
				// in appearance (periodic textures match across unrelated
				// scenes).
				res, ok := vision.RANSACHomography(ka, kb, matches, 200, 3, candidateMinMatches, rng)
				if !ok {
					continue
				}
				all = append(all, scored{a, b, len(res.Inliers)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].inliers > all[j].inliers })
	var pairs []PairCandidate
	paired := make(map[int]bool)
	for _, sc := range all {
		if paired[sc.a] || paired[sc.b] {
			continue
		}
		pairs = append(pairs, PairCandidate{A: infos[sc.a].ref, B: infos[sc.b].ref, Matches: sc.inliers})
		paired[sc.a], paired[sc.b] = true, true
	}
	return pairs, len(infos), nil
}

// FeatureMatchCheck runs the per-pair feature test in isolation: whether
// two GOPs share enough unambiguous correspondences to be a joint
// compression candidate. It is the unit of work the paper's Figure 11
// charges to the random-sampling strategy. Safe for concurrent use.
func (s *Store) FeatureMatchCheck(a, b GOPRef) (bool, error) {
	var fa, fb *frame.Frame
	err := s.withVideos([]string{a.Video, b.Video}, func(held map[string]*videoState) error {
		vsa, pa, ga, err := resolveRefIn(held, a)
		if err != nil {
			return err
		}
		vsb, pb, gb, err := resolveRefIn(held, b)
		if err != nil {
			return err
		}
		if fa, err = s.firstFrameIn(held, vsa, pa, ga); err != nil {
			return err
		}
		fb, err = s.firstFrameIn(held, vsb, pb, gb)
		return err
	})
	if err != nil {
		return false, err
	}
	matches := vision.MatchKeypoints(vision.DetectKeypoints(fa, 300), vision.DetectKeypoints(fb, 300), vision.DefaultLoweRatio)
	return len(matches) >= candidateMinMatches, nil
}

// firstFrameIn is firstFrameHeld generalized to a held lock set, so it can
// chase duplicate/joint references (expanding the set via withVideos).
func (s *Store) firstFrameIn(held map[string]*videoState, vs *videoState, p *PhysMeta, g *GOPMeta) (*frame.Frame, error) {
	var stats ReadStats
	snap, err := s.snapshotGOP(held, vs, p, g, &snapCollector{stats: &stats, eager: true})
	if err != nil {
		return nil, err
	}
	frames, _, _, err := decodeSnap(snap, 0, 1)
	if err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("core: empty GOP %s/%d/%d", vs.meta.Name, p.ID, g.Seq)
	}
	f := frames[0]
	if f.Format != frame.RGB {
		f = f.Convert(frame.RGB)
	}
	return f, nil
}

// JointCompressAll runs the full pipeline — discovery then compression —
// over the whole store, returning sweep statistics (the workflow of
// Figure 9). Safe for concurrent use: discovery holds one video lock at a
// time and each pair compression locks exactly its two videos, so
// foreground reads of other videos proceed throughout the sweep. Pairs
// whose GOPs were evicted or deleted between discovery and compression
// are counted as aborted.
func (s *Store) JointCompressAll(merge MergeMode) (JointStats, error) {
	var st JointStats
	pairs, scanned, err := s.FindJointCandidates()
	if err != nil {
		return st, err
	}
	st.Scanned = scanned
	st.Pairs = len(pairs)
	for _, pc := range pairs {
		res, err := s.JointCompressPair(pc.A, pc.B, merge)
		if err != nil {
			if errors.Is(err, ErrNotFound) || errors.Is(err, errDanglingRef) {
				st.Aborted++ // video, view, or GOP vanished mid-sweep
				continue
			}
			return st, err
		}
		st.BytesBefore += res.BytesBefore
		st.BytesAfter += res.BytesAfter
		switch {
		case res.Duplicate:
			st.Duplicates++
			st.Compressed++
		case res.Compressed:
			st.Compressed++
		default:
			st.Aborted++
		}
	}
	return st, nil
}
