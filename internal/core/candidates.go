package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/frame"
	"repro/internal/index"
	"repro/internal/vision"
)

// This file implements joint-compression candidate selection (Section
// 5.1.3 and Figure 9): fragments are fingerprinted with color histograms,
// clustered incrementally with BIRCH, and — tightest clusters first —
// searched for pairs sharing many unambiguous feature correspondences.

// Candidate selection parameters from the paper's prototype: a pair is
// sufficiently related at m = 20 nearby, unambiguous correspondences.
const (
	candidateMinMatches = 20
	fingerprintBins     = 8
	fingerprintThumb    = 4
	// clusterThreshold is the BIRCH radius bound in fingerprint space
	// (histograms are unit-mass per channel, so distances live in [0, ~2]).
	clusterThreshold = 0.35
)

// PairCandidate names two GOPs from different logical videos proposed for
// joint compression.
type PairCandidate struct {
	A, B    GOPRef
	Matches int
}

// JointStats summarizes a joint-compression sweep.
type JointStats struct {
	Scanned     int // GOPs fingerprinted
	Pairs       int // candidate pairs proposed
	Compressed  int
	Duplicates  int
	Aborted     int
	BytesBefore int64
	BytesAfter  int64
}

// FindJointCandidates runs the discovery pipeline over the original
// physical videos of every logical video and returns proposed pairs. It
// never proposes GOPs already jointly compressed or deduplicated.
func (s *Store) FindJointCandidates() ([]PairCandidate, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.findJointCandidatesLocked()
}

func (s *Store) findJointCandidatesLocked() ([]PairCandidate, int, error) {
	fp, err := index.NewFingerprints(clusterThreshold)
	if err != nil {
		return nil, 0, err
	}
	type gopInfo struct {
		ref   GOPRef
		first *frame.Frame
	}
	var infos []gopInfo
	names := make([]string, 0, len(s.videos))
	for name := range s.videos {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := s.videos[name]
		p := s.originalOf(name)
		if p == nil {
			continue
		}
		for i := range p.GOPs {
			g := &p.GOPs[i]
			if g.Joint != nil || g.DupOf != nil {
				continue
			}
			first, err := s.firstFrameLocked(v, p, g)
			if err != nil {
				return nil, 0, err
			}
			id := len(infos)
			infos = append(infos, gopInfo{GOPRef{name, p.ID, g.Seq}, first})
			if err := fp.Add(id, vision.Fingerprint(first, fingerprintBins, fingerprintThumb)); err != nil {
				return nil, 0, err
			}
		}
	}

	// Keypoints are computed lazily per GOP and cached for the sweep.
	kps := make(map[int][]vision.Keypoint)
	keypointsOf := func(id int) []vision.Keypoint {
		if k, ok := kps[id]; ok {
			return k
		}
		k := vision.DetectKeypoints(infos[id].first, 300)
		kps[id] = k
		return k
	}

	// Collect geometrically verified candidates within each cluster, then
	// pair greedily by correspondence strength: a GOP joins at most one
	// pair, and stronger matches claim their partners first.
	type scored struct {
		a, b    int
		inliers int
	}
	var all []scored
	rng := rand.New(rand.NewSource(97))
	for _, group := range fp.CandidateGroups(2) {
		sort.Ints(group)
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				if infos[a].ref.Video == infos[b].ref.Video {
					continue // joint compression crosses logical videos
				}
				ka, kb := keypointsOf(a), keypointsOf(b)
				matches := vision.MatchKeypoints(ka, kb, vision.DefaultLoweRatio)
				if len(matches) < candidateMinMatches {
					continue
				}
				// Geometric verification: the correspondences must be
				// consistent with a single homography, not merely similar
				// in appearance (periodic textures match across unrelated
				// scenes).
				res, ok := vision.RANSACHomography(ka, kb, matches, 200, 3, candidateMinMatches, rng)
				if !ok {
					continue
				}
				all = append(all, scored{a, b, len(res.Inliers)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].inliers > all[j].inliers })
	var pairs []PairCandidate
	paired := make(map[int]bool)
	for _, sc := range all {
		if paired[sc.a] || paired[sc.b] {
			continue
		}
		pairs = append(pairs, PairCandidate{A: infos[sc.a].ref, B: infos[sc.b].ref, Matches: sc.inliers})
		paired[sc.a], paired[sc.b] = true, true
	}
	return pairs, len(infos), nil
}

// firstFrameLocked decodes just the first frame of a GOP (cheap: one
// I-frame) for fingerprinting and feature detection.
func (s *Store) firstFrameLocked(v *VideoMeta, p *PhysMeta, g *GOPMeta) (*frame.Frame, error) {
	var stats ReadStats
	frames, err := s.decodeGOPRangeLocked(v, p, g, 0, 1, &stats)
	if err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("core: empty GOP %s/%d/%d", v.Name, p.ID, g.Seq)
	}
	f := frames[0]
	if f.Format != frame.RGB {
		f = f.Convert(frame.RGB)
	}
	return f, nil
}

// FeatureMatchCheck runs the per-pair feature test in isolation: whether
// two GOPs share enough unambiguous correspondences to be a joint
// compression candidate. It is the unit of work the paper's Figure 11
// charges to the random-sampling strategy.
func (s *Store) FeatureMatchCheck(a, b GOPRef) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	va, pa, ga, err := s.resolveRef(a)
	if err != nil {
		return false, err
	}
	vb, pb, gb, err := s.resolveRef(b)
	if err != nil {
		return false, err
	}
	fa, err := s.firstFrameLocked(va, pa, ga)
	if err != nil {
		return false, err
	}
	fb, err := s.firstFrameLocked(vb, pb, gb)
	if err != nil {
		return false, err
	}
	matches := vision.MatchKeypoints(vision.DetectKeypoints(fa, 300), vision.DetectKeypoints(fb, 300), vision.DefaultLoweRatio)
	return len(matches) >= candidateMinMatches, nil
}

// JointCompressAll runs the full pipeline — discovery then compression —
// over the whole store, returning sweep statistics (the workflow of
// Figure 9).
func (s *Store) JointCompressAll(merge MergeMode) (JointStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st JointStats
	pairs, scanned, err := s.findJointCandidatesLocked()
	if err != nil {
		return st, err
	}
	st.Scanned = scanned
	st.Pairs = len(pairs)
	for _, pc := range pairs {
		res, err := s.jointCompressPairLocked(pc.A, pc.B, merge)
		if err != nil {
			return st, err
		}
		st.BytesBefore += res.BytesBefore
		st.BytesAfter += res.BytesAfter
		switch {
		case res.Duplicate:
			st.Duplicates++
			st.Compressed++
		case res.Compressed:
			st.Compressed++
		default:
			st.Aborted++
		}
	}
	return st, nil
}
