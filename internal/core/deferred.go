package core

import (
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/codec"
	"repro/internal/lossless"
	"repro/internal/storage"
)

// This file implements deferred compression (Section 5.2): when a video's
// stored size exceeds a threshold fraction of its budget, uncompressed
// cache entries are losslessly compressed — last-in-eviction-order first
// (the entry least likely to be evicted) — at a level that scales linearly
// with the remaining budget.

// deferredPressureLocked performs one deferred-compression step if the
// video is over its activation threshold. It is invoked by uncompressed
// reads, after writes, and by the background maintenance loop. Caller
// holds the video's lock.
func (s *Store) deferredPressureLocked(vs *videoState) error {
	v := vs.meta
	if s.opts.DisableDeferred || v.Budget <= 0 {
		return nil
	}
	used := vs.totalBytes()
	if float64(used) < s.opts.DeferredThreshold*float64(v.Budget) {
		return nil
	}
	remaining := 1 - float64(used)/float64(v.Budget)
	level := lossless.LevelForBudget(remaining)
	_, err := s.compressOneLocked(vs, level)
	return err
}

// DeferredLevel reports the compression level the controller would use for
// the video right now (Figure 13 instrumentation); 0 means deferred
// compression is currently inactive. Safe for concurrent use.
func (s *Store) DeferredLevel(video string) int {
	vs := s.acquire(video)
	if vs == nil {
		return 0
	}
	defer vs.mu.Unlock()
	v := vs.meta
	if s.opts.DisableDeferred || v.Budget <= 0 {
		return 0
	}
	used := vs.totalBytes()
	if float64(used) < s.opts.DeferredThreshold*float64(v.Budget) {
		return 0
	}
	return lossless.LevelForBudget(1 - float64(used)/float64(v.Budget))
}

// compressOneLocked losslessly compresses the uncompressed GOP least
// likely to be evicted (highest LRU_VSS score). Returns whether any entry
// was compressed. Caller holds the video's lock.
func (s *Store) compressOneLocked(vs *videoState, level int) (bool, error) {
	v := vs.meta
	type cand struct {
		phys  *PhysMeta
		seq   int
		score float64
	}
	var cands []cand
	for _, p := range vs.phys {
		if p.Codec != codec.Raw {
			continue
		}
		n := len(p.GOPs)
		for i := range p.GOPs {
			g := &p.GOPs[i]
			if g.Lossless != 0 || g.Joint != nil || g.DupOf != nil {
				continue // already compressed or marked incompressible
			}
			pos := i
			if n-1-i < pos {
				pos = n - 1 - i
			}
			score := float64(g.LRU) + s.opts.Gamma*float64(pos) - s.opts.Zeta*float64(s.redundancyLocked(vs, p, g))
			cands = append(cands, cand{p, g.Seq, score})
		}
	}
	if len(cands) == 0 {
		return false, nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	c := cands[0]
	g := findGOP(c.phys, c.seq)
	data, err := s.readGOP(context.Background(), v.Name, c.phys.Dir, g.Seq, g.Bytes)
	if err != nil {
		return false, err
	}
	block, err := lossless.Recompress(data, level)
	if err != nil {
		return false, err
	}
	if len(block) >= len(data) {
		// Incompressible; mark with level so it is not retried forever.
		g.Lossless = -1
		return false, s.savePhys(v.Name, c.phys)
	}
	if err := s.files.WriteGOP(v.Name, c.phys.Dir, g.Seq, block); err != nil {
		return false, err
	}
	g.Lossless = level
	g.Bytes = int64(len(block))
	return true, s.savePhys(v.Name, c.phys)
}

// backfillBudget bounds how many GOPs one Maintain pass summarizes per
// video: the pass holds the video's lock, so backfilling a large
// pre-summary store must stay incremental rather than stall readers for
// one long pass.
const backfillBudget = 16

// backfillSummariesLocked computes feature summaries for original GOPs
// that lack one — stores written before summaries existed, ingest
// decode-back failures, and GOPs whose summaries were invalidated by
// joint compression or duplicate elision. Each GOP is decoded through
// the same snapshot machinery predicate reads use (eagerly, under the
// held lock — the compressOneLocked idiom: CPU work runs under the video
// lock and never touches workSem, which a lock-holder must not acquire),
// so the recomputed bounds are exact over the reconstructed pixels
// queries decode. GOPs whose references escape this video (cross-video
// joint partners or duplicate targets) are skipped and stay summaryless:
// predicate reads keep decoding them conservatively. Caller holds the
// video's lock.
func (s *Store) backfillSummariesLocked(vs *videoState) error {
	if s.opts.DisableSummaries {
		return nil
	}
	p := vs.original()
	if p == nil {
		return nil
	}
	held := map[string]*videoState{vs.meta.Name: vs}
	filled := 0
	for i := range p.GOPs {
		if filled >= backfillBudget {
			break
		}
		g := &p.GOPs[i]
		if g.Summary != nil {
			continue
		}
		c := &snapCollector{ctx: context.Background(), stats: &ReadStats{}, eager: true}
		snap, err := s.snapshotGOP(held, vs, p, g, c)
		if err != nil {
			continue
		}
		frames, _, _, err := decodeSnap(snap, 0, -1)
		if err != nil {
			continue
		}
		g.Summary = summarizeFrames(frames)
		filled++
	}
	if filled == 0 {
		return nil
	}
	return s.savePhys(vs.meta.Name, p)
}

// tempSweepAge is how old a crash-orphaned write temp must be before
// maintenance reclaims it. Live atomicWrite temps exist for
// milliseconds; an hour leaves a colossal safety margin while still
// reclaiming crash leftovers on the first maintenance pass after them.
const tempSweepAge = time.Hour

// Maintain runs one background maintenance pass over every video:
// deferred compression pressure and physical video compaction, then a
// sweep of crash-orphaned write temp files (unique temp names mean no
// later write ever renames an orphan away, and doing the full-tree walk
// here keeps it off the open and foreground paths), and finally — when
// the backend keeps redundant copies — a replication scrub that
// re-copies missing or stale replicas from a healthy copy so a
// briefly-degraded shard root converges back to full R-way replication
// (ScrubStats are surfaced via ReplicationStats and vssd /metrics). The
// paper runs maintenance "in a background thread when no other requests
// are being executed" and "periodically and non-quiescently". It holds
// at most one video's lock at a time, so it never blocks foreground
// reads and writes of other videos.
func (s *Store) Maintain() error {
	for _, name := range s.videoNames() {
		vs := s.acquire(name)
		if vs == nil {
			continue // deleted while we iterated
		}
		err := func() error {
			defer vs.mu.Unlock()
			if err := s.deferredPressureLocked(vs); err != nil {
				return err
			}
			if _, err := s.compactLocked(vs); err != nil {
				return err
			}
			return s.backfillSummariesLocked(vs)
		}()
		if err != nil {
			return err
		}
	}
	// The scrub must run even when the temp sweep fails: a root degraded
	// enough to error the sweep is exactly the situation whose lost
	// replicas the scrub re-copies onto the healthy roots (Scrub itself
	// tolerates unwalkable shards). Both errors surface, joined. The
	// catalog snapshot (Options.SnapshotCatalog) goes last so the
	// replicated copy reflects this pass's compaction and repairs.
	return errors.Join(s.files.SweepTemps(tempSweepAge), s.scrub(), s.snapshotCatalog())
}

// snapshotCatalog replicates the metadata catalog into the storage
// backend when Options.SnapshotCatalog is set: snapshot the catalog (WAL
// folded in, so the snapshot alone is full state), then write the bytes
// as a GOP at the reserved storage.CatalogSnapshotVideo address. The
// write rides the backend's ordinary path — fan-out, write-repair
// journal, everything — so on a replicated fleet every replica node ends
// up holding the catalog. RestoreCatalog is the inverse.
func (s *Store) snapshotCatalog() error {
	if !s.opts.SnapshotCatalog {
		return nil
	}
	data, err := s.cat.SnapshotBytes()
	if err != nil {
		return err
	}
	return s.files.WriteGOP(storage.CatalogSnapshotVideo, storage.CatalogSnapshotDir, 0, data)
}

// StartBackground launches the maintenance loop at the given interval and
// returns a stop function. The loop runs concurrently with foreground
// operations (per-video locking keeps them from serializing store-wide).
func (s *Store) StartBackground(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				// Maintenance is best-effort; errors surface on the next
				// foreground operation.
				_ = s.Maintain()
			}
		}
	}()
	return func() { close(done) }
}
