package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/storage"
)

// WriteOptions tune a Writer's pipelined ingest engine. The zero value
// selects safe defaults sized from the store's Options.Workers budget.
type WriteOptions struct {
	// EncodeWorkers is the number of GOP-encode workers the writer may run
	// concurrently. 0 defaults to the store's Options.Workers; 1 disables
	// the pipeline entirely and encodes inline in the appending goroutine
	// (the serial pre-pipeline behavior, useful for deterministic
	// profiling). Whatever the setting, workers share the store-wide
	// Options.Workers CPU semaphore with the read pipeline, so total
	// encode/decode fan-out stays bounded across all writers and readers.
	EncodeWorkers int
	// MaxInflightGOPs bounds the GOPs buffered inside the pipeline —
	// encoding or awaiting their in-order commit — before Append blocks.
	// It caps ingest memory at roughly MaxInflightGOPs uncompressed GOPs.
	// 0 defaults to 2*EncodeWorkers.
	MaxInflightGOPs int
}

// withDefaults resolves zero fields against the store's options.
func (wo WriteOptions) withDefaults(opts Options) WriteOptions {
	if wo.EncodeWorkers <= 0 {
		wo.EncodeWorkers = opts.Workers
	}
	if wo.MaxInflightGOPs <= 0 {
		wo.MaxInflightGOPs = 2 * wo.EncodeWorkers
	}
	if wo.MaxInflightGOPs < wo.EncodeWorkers {
		// Fewer tokens than workers just idles workers; keep every worker
		// feedable so the configured parallelism is reachable.
		wo.MaxInflightGOPs = wo.EncodeWorkers
	}
	return wo
}

// errWriterClosed poisons a Writer after Close so later calls fail fast.
var errWriterClosed = errors.New("core: writer closed")

// Writer is a streaming write handle. Frames appended to it accumulate
// into GOPs; each completed GOP is persisted and immediately visible to
// readers, so applications may query prefixes of video still being written
// (Section 2: "writes to VSS are non-blocking and users may query prefixes
// of ingested video data").
//
// Ingest is pipelined: Append hands completed GOPs to a bounded pool of
// encode workers and returns; encoded GOPs are committed to the store
// strictly in append order by a sequenced commit goroutine, so a reader
// always observes a durable prefix of the appended frames, exactly as with
// serial ingest. Because encoding is asynchronous, an encode or commit
// failure may surface on a later Append, or on Flush/Close, which drain
// the pipeline and report the first (lowest-sequence) error; once failed,
// the writer is poisoned and every later call returns that same error.
//
// The writer borrows appended frames: it has always held partial-GOP
// frames in its buffer across calls, and with pipelining it also reads
// complete GOPs asynchronously while they encode. Callers must not mutate
// a frame after passing it to Append until Flush or Close returns —
// recycling a capture buffer earlier races the encode workers and stores
// torn pixels without any error. Allocate (or Clone) a fresh frame per
// Append instead.
//
// A Writer is NOT safe for concurrent use by multiple goroutines; open
// one Writer per producer. Distinct Writers — even on the same video —
// may run concurrently: the video lock serializes their GOP commits.
// Frame buffering and GOP encoding happen outside the video lock, so a
// streaming writer does not block readers of the same video while it
// compresses.
type Writer struct {
	s     *Store
	video string
	spec  WriteSpec
	wopts WriteOptions
	phys  *PhysMeta
	buf   []*frame.Frame
	gopN  int // frames per GOP for this writer
	err   error
	enc   *codec.Encoder // inline-encode scratch (partial GOPs, serial mode)
	pipe  *ingestPipe    // nil until the first complete GOP needs encoding
}

// Write stores frames as (or appended to) the video's original physical
// representation, blocking until all GOPs are durable. It is shorthand for
// OpenWriter + Append + Close.
func (s *Store) Write(video string, spec WriteSpec, frames []*frame.Frame) error {
	w, err := s.OpenWriter(video, spec)
	if err != nil {
		return err
	}
	if err := w.Append(frames...); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// writeEncodedChunk is the number of GOPs WriteEncoded commits per video
// lock acquisition: large enough to amortize locking and catalog updates,
// small enough that a bulk ingest cannot starve concurrent readers of the
// same video.
const writeEncodedChunk = 8

// WriteEncoded ingests already-compressed GOPs as-is (the paper: "VSS
// accepts as-is ingested compressed GOP sizes"). Each element must be a
// valid encoded GOP with a consistent configuration; the whole batch is
// validated before anything is written. Safe for concurrent use. The batch
// commits in bounded chunks, releasing the video lock between chunks so
// readers (and other writers, whose GOPs may interleave at chunk
// granularity) are not starved during a bulk ingest; readers therefore
// observe the batch growing prefix by prefix rather than all at once.
func (s *Store) WriteEncoded(video string, fps int, gops [][]byte) error {
	if len(gops) == 0 {
		return fmt.Errorf("core: no GOPs to write")
	}
	// Validate every GOP up front, outside any lock: DecodeHeader is cheap
	// and failing after a partial commit would leave a half-ingested batch.
	hd0, err := codec.DecodeHeader(gops[0])
	if err != nil {
		return err
	}
	batch := make([]encodedGOP, len(gops))
	for i, gop := range gops {
		hd, err := codec.DecodeHeader(gop)
		if err != nil {
			return err
		}
		if hd.Codec != hd0.Codec || hd.Width != hd0.Width || hd.Height != hd0.Height {
			return fmt.Errorf("core: inconsistent GOP configuration in encoded write")
		}
		batch[i] = encodedGOP{data: gop, frames: hd.FrameCount}
	}
	vs := s.acquire(video)
	if vs == nil {
		return ErrNotFound
	}
	p, err := s.ensureOriginalLocked(vs, WriteSpec{FPS: fps, Codec: hd0.Codec, Quality: hd0.Quality}, hd0.Width, hd0.Height, hd0.PixFmt)
	vs.mu.Unlock()
	if err != nil {
		return err
	}
	for start := 0; start < len(batch); start += writeEncodedChunk {
		end := start + writeEncodedChunk
		if end > len(batch) {
			end = len(batch)
		}
		if err := s.commitGOPs(video, p, batch[start:end]); err != nil {
			return err
		}
	}
	vs = s.acquire(video)
	if vs == nil {
		return ErrNotFound
	}
	defer vs.mu.Unlock()
	if vs.byID(p.ID) != p {
		return ErrNotFound
	}
	return s.finishWriteLocked(vs, p)
}

// OpenWriter starts a streaming write with default WriteOptions. The first
// writer on a video establishes its original physical representation m0;
// later writers append to it (the prototype adopts the paper's
// no-overwrite policy, so the configuration must match).
func (s *Store) OpenWriter(video string, spec WriteSpec) (*Writer, error) {
	return s.OpenWriterWith(video, spec, WriteOptions{})
}

// OpenWriterWith starts a streaming write with explicit pipeline tuning.
func (s *Store) OpenWriterWith(video string, spec WriteSpec, wopts WriteOptions) (*Writer, error) {
	if spec.FPS <= 0 {
		return nil, fmt.Errorf("core: write requires a positive fps")
	}
	if spec.Codec == "" {
		spec.Codec = codec.Raw
	}
	if !spec.Codec.Valid() {
		return nil, fmt.Errorf("core: unknown codec %q", spec.Codec)
	}
	spec.Quality = effectiveQuality(spec.Quality)
	if s.lookup(video) == nil {
		return nil, ErrNotFound
	}
	return &Writer{s: s, video: video, spec: spec, wopts: wopts.withDefaults(s.opts)}, nil
}

// ensureOriginalLocked finds or creates the original physical video m0.
// Caller holds the video's lock.
func (s *Store) ensureOriginalLocked(vs *videoState, spec WriteSpec, w, h int, pixfmt frame.PixelFormat) (*PhysMeta, error) {
	v := vs.meta
	if p := vs.original(); p != nil {
		if p.Codec != spec.Codec || p.Width != w || p.Height != h || p.FPS != spec.FPS {
			return nil, fmt.Errorf("core: video %s already written as %dx%dr%d.%s; writes must append in the same configuration (no-overwrite policy)",
				v.Name, p.Width, p.Height, p.FPS, p.Codec)
		}
		return p, nil
	}
	id := s.allocPhys(v)
	p := &PhysMeta{
		ID:      id,
		Dir:     storage.PhysicalDirName(id, w, h, spec.FPS, string(spec.Codec)),
		Width:   w,
		Height:  h,
		FPS:     spec.FPS,
		Codec:   spec.Codec,
		PixFmt:  pixfmt,
		Quality: spec.Quality,
		ROI:     FullNRect(),
		Orig:    true,
	}
	v.Original = id
	v.FPS = spec.FPS
	v.Width = w
	v.Height = h
	vs.phys[id] = p
	if err := s.saveVideo(v); err != nil {
		return nil, err
	}
	return p, s.savePhys(v.Name, p)
}

// encodedGOP is one encoded GOP awaiting commit.
type encodedGOP struct {
	data    []byte
	frames  int
	summary *GOPSummary // feature summary for predicate planning; may be nil
}

// encodeForIngest encodes one GOP and, unless summaries are disabled,
// computes its feature summary from the encoder's reconstructed frames —
// the exact pixels a predicate read will decode (codec.EncodeGOPRecon
// captures them from the closed prediction loop, so no decode-back pass
// is paid). A nil reconstruction leaves the GOP summaryless and predicate
// reads decode it conservatively. CPU-heavy; callers run it under a
// workSem slot.
//
// Uncompressed (raw) ingest skips inline summarization: raw writes are
// the high-rate capture path — storing bytes at memory speed, thousands
// of fps — and per-frame content analysis would dominate them, exactly
// the work-at-ingest the deferred machinery exists to avoid. Raw GOPs
// stay summaryless (predicate reads decode them, still correct) until
// the next Maintain pass backfills their summaries. Compressed ingest
// summarizes inline, where analysis amortizes against encode cost and
// the reconstruction is free.
func encodeForIngest(s *Store, enc *codec.Encoder, spec WriteSpec, frames []*frame.Frame) ([]byte, *GOPSummary, error) {
	start := time.Now()
	if s.opts.DisableSummaries || !spec.Codec.Compressed() {
		data, _, err := enc.EncodeGOP(frames, spec.Codec, spec.Quality)
		s.pipe.ObserveCodec(obs.StageEncode, string(spec.Codec), time.Since(start))
		return data, nil, err
	}
	data, recon, _, err := enc.EncodeGOPRecon(frames, spec.Codec, spec.Quality)
	s.pipe.ObserveCodec(obs.StageEncode, string(spec.Codec), time.Since(start))
	if err != nil || recon == nil {
		return data, nil, err
	}
	return data, summarizeFrames(recon), nil
}

// appendGOPLocked persists one encoded GOP and registers it. Caller holds
// the video's lock.
func (s *Store) appendGOPLocked(vs *videoState, p *PhysMeta, data []byte, frames int) error {
	return s.appendGOPBatchLocked(vs, p, []encodedGOP{{data: data, frames: frames}})
}

// appendGOPBatchLocked persists a batch of encoded GOPs in order and
// registers them with a single catalog update, amortizing the per-GOP
// bookkeeping the serial write path paid. Every GOP file is durable before
// the catalog row that references it is written, so a crash mid-batch
// leaves at most orphaned files, never metadata for missing data — the
// same guarantee the one-at-a-time path gave. Caller holds the video's
// lock.
func (s *Store) appendGOPBatchLocked(vs *videoState, p *PhysMeta, batch []encodedGOP) error {
	v := vs.meta
	appended := 0
	for _, g := range batch {
		seq := len(p.GOPs)
		start := 0
		if seq > 0 {
			last := p.GOPs[seq-1]
			start = last.StartFrame + last.Frames
		}
		if err := s.files.WriteGOP(v.Name, p.Dir, seq, g.data); err != nil {
			if appended > 0 {
				// Keep the catalog consistent with the GOPs whose files did
				// land before reporting the failure.
				if serr := s.savePhys(v.Name, p); serr != nil {
					return errors.Join(err, serr)
				}
			}
			return err
		}
		p.GOPs = append(p.GOPs, GOPMeta{
			Seq:        seq,
			StartFrame: start,
			Frames:     g.frames,
			Bytes:      int64(len(g.data)),
			LRU:        s.tick(v),
			Summary:    g.summary,
		})
		appended++
	}
	return s.savePhys(v.Name, p)
}

// commitGOPs appends a batch of encoded GOPs to a physical video under one
// video lock acquisition, rechecking that the physical view still exists
// (the video may have been deleted — and possibly recreated — since the
// caller last held the lock).
func (s *Store) commitGOPs(video string, p *PhysMeta, batch []encodedGOP) error {
	if len(batch) == 0 {
		return nil
	}
	vs := s.acquire(video)
	if vs == nil {
		return ErrNotFound
	}
	defer vs.mu.Unlock()
	if vs.byID(p.ID) != p {
		return ErrNotFound
	}
	return s.appendGOPBatchLocked(vs, p, batch)
}

// finishWriteLocked settles bookkeeping after a write burst: duration,
// default budget, eviction, and deferred compression pressure. Caller
// holds the video's lock.
func (s *Store) finishWriteLocked(vs *videoState, p *PhysMeta) error {
	v := vs.meta
	if end := p.End(); p.Orig && end > v.Duration {
		v.Duration = end
	}
	if v.Budget == 0 && p.Orig && s.opts.BudgetMultiple > 0 {
		v.Budget = int64(float64(p.Bytes()) * s.opts.BudgetMultiple)
	}
	if err := s.saveVideo(v); err != nil {
		return err
	}
	if err := s.evictLocked(vs); err != nil {
		return err
	}
	return s.deferredPressureLocked(vs)
}

// Append buffers frames, dispatching complete GOPs to the encode pipeline.
func (w *Writer) Append(frames ...*frame.Frame) error {
	if w.err != nil {
		return w.err
	}
	if err := w.pipelineErr(); err != nil {
		w.err = err
		return err
	}
	for _, f := range frames {
		if err := w.append(f); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

func (w *Writer) append(f *frame.Frame) error {
	if w.phys == nil {
		vs := w.s.acquire(w.video)
		if vs == nil {
			return ErrNotFound
		}
		pixfmt := f.Format
		if w.spec.Codec.Compressed() {
			pixfmt = frame.YUV420
		}
		p, err := w.s.ensureOriginalLocked(vs, w.spec, f.Width, f.Height, pixfmt)
		vs.mu.Unlock()
		if err != nil {
			return err
		}
		w.phys = p
		w.gopN = w.gopFrames(f)
	}
	if f.Width != w.phys.Width || f.Height != w.phys.Height {
		return fmt.Errorf("core: frame %dx%d does not match video %dx%d", f.Width, f.Height, w.phys.Width, w.phys.Height)
	}
	w.buf = append(w.buf, f)
	if len(w.buf) >= w.gopN {
		return w.dispatchGOP()
	}
	return nil
}

// gopFrames picks the GOP length: the configured frame count for
// compressed video, or a byte-bounded block for raw (paper: blocks of at
// most 25MB, or a single frame beyond that).
func (w *Writer) gopFrames(f *frame.Frame) int {
	if w.spec.Codec.Compressed() {
		return w.s.opts.GOPFrames
	}
	frameBytes := int64(f.Format.Size(f.Width, f.Height))
	if frameBytes >= w.s.opts.RawBlockBytes {
		return 1
	}
	n := int(w.s.opts.RawBlockBytes / frameBytes)
	if n > w.s.opts.GOPFrames {
		n = w.s.opts.GOPFrames
	}
	if n < 1 {
		n = 1
	}
	return n
}

// dispatchGOP hands the buffered complete GOP to the encode pipeline, or
// encodes it inline when the writer is configured serial (EncodeWorkers
// 1). Blocks only when MaxInflightGOPs GOPs are already in the pipeline.
func (w *Writer) dispatchGOP() error {
	if w.wopts.EncodeWorkers <= 1 {
		return w.encodeAndCommitBuf()
	}
	if w.pipe == nil {
		w.pipe = newIngestPipe(w.s, w.video, w.phys, w.spec, w.wopts)
	}
	frames := w.buf
	w.buf = nil // the pipeline owns this slice now
	return w.pipe.submit(frames)
}

// encodeAndCommitBuf is the serial path: encode the buffered frames (full
// or partial GOP) in the calling goroutine — outside the video lock, since
// encoding is the CPU-heavy part of a write — and commit. Also used by
// Flush for the trailing partial GOP after the pipeline drains.
func (w *Writer) encodeAndCommitBuf() error {
	if len(w.buf) == 0 {
		return nil
	}
	if w.enc == nil {
		w.enc = codec.NewEncoder()
	}
	w.s.workSem <- struct{}{}
	data, sum, err := encodeForIngest(w.s, w.enc, w.spec, w.buf)
	<-w.s.workSem
	if err != nil {
		return err
	}
	n := len(w.buf)
	w.buf = w.buf[:0]
	return w.s.commitGOPs(w.video, w.phys, []encodedGOP{{data: data, frames: n, summary: sum}})
}

// pipelineErr reports the pipeline's first error, if any, without waiting.
func (w *Writer) pipelineErr() error {
	if w.pipe == nil {
		return nil
	}
	return w.pipe.firstErr()
}

// Flush persists any buffered partial GOP, making all appended frames
// readable. It drains the pipeline first: when Flush returns nil, every
// frame appended so far is durable and visible to readers.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.drain(); err != nil {
		w.err = err
		return err
	}
	if w.phys == nil {
		return nil
	}
	if err := w.encodeAndCommitBuf(); err != nil {
		w.err = err
		return err
	}
	vs := w.s.acquire(w.video)
	if vs == nil {
		w.err = ErrNotFound
		return w.err
	}
	defer vs.mu.Unlock()
	if vs.byID(w.phys.ID) != w.phys {
		w.err = ErrNotFound
		return w.err
	}
	return w.s.finishWriteLocked(vs, w.phys)
}

// drain waits for every in-flight GOP to commit (or fail) and surfaces the
// pipeline's first error.
func (w *Writer) drain() error {
	if w.pipe == nil {
		return nil
	}
	w.pipe.drain()
	return w.pipe.firstErr()
}

// Close drains the pipeline, flushes any partial GOP, shuts the pipeline
// down, and poisons the writer. If the writer already failed — a poisoned
// Append, or an asynchronous encode/commit error — Close does NOT attempt
// another flush of the dead buffer: it releases the pipeline's goroutines
// and returns the stored error. Per the paper's prototype, writes are only
// guaranteed visible once the writer is closed; in this implementation
// every whole GOP is already visible earlier.
func (w *Writer) Close() error {
	err := w.err
	if err == nil {
		err = w.Flush()
	}
	if w.pipe != nil {
		w.pipe.shutdown()
		w.pipe = nil
	}
	if err != nil {
		w.err = err
		return err
	}
	w.err = errWriterClosed
	return nil
}

// ingestPipe is the pipelined ingest engine behind a Writer: a bounded
// pool of encode workers fed complete GOPs in sequence order, and a single
// committer goroutine that restores that order before committing, so the
// store only ever contains a prefix of the appended GOPs.
//
//	Append → jobs → [encode workers × EncodeWorkers] → done → committer
//
// Workers encode concurrently and finish out of order; the committer holds
// early arrivals until their predecessors commit. In-flight GOPs are
// bounded by the sem tokens (MaxInflightGOPs): Append acquires one per
// submitted GOP and the committer releases it after the GOP commits (or is
// discarded past an error), which backpressures Append instead of letting
// ingest buffer unboundedly. The first error in sequence order poisons the
// pipe; later GOPs are discarded, never committed, preserving the durable-
// prefix invariant even across failures.
type ingestPipe struct {
	s     *Store
	video string
	phys  *PhysMeta
	spec  WriteSpec

	jobs     chan ingestJob
	done     chan ingestResult
	sem      chan struct{}  // in-flight GOP tokens
	inflight sync.WaitGroup // submitted-but-uncommitted GOPs (drain)
	workers  sync.WaitGroup // encode workers (shutdown)
	commit   chan struct{}  // closed when the committer exits
	nextSeq  int            // next sequence number Append will assign

	mu  sync.Mutex
	err error // first (lowest-sequence) encode/commit error
}

type ingestJob struct {
	seq    int
	frames []*frame.Frame
}

type ingestResult struct {
	seq    int
	gop    encodedGOP
	err    error
	permit bool // carries an in-flight token to release after commit
}

func newIngestPipe(s *Store, video string, phys *PhysMeta, spec WriteSpec, wopts WriteOptions) *ingestPipe {
	p := &ingestPipe{
		s:      s,
		video:  video,
		phys:   phys,
		spec:   spec,
		jobs:   make(chan ingestJob, wopts.MaxInflightGOPs),
		done:   make(chan ingestResult, wopts.MaxInflightGOPs),
		sem:    make(chan struct{}, wopts.MaxInflightGOPs),
		commit: make(chan struct{}),
	}
	for i := 0; i < wopts.EncodeWorkers; i++ {
		p.workers.Add(1)
		go p.encodeWorker()
	}
	go func() { // close the result stream once every worker has exited
		p.workers.Wait()
		close(p.done)
	}()
	go p.committer()
	return p
}

// submit hands one complete GOP to the pipeline, blocking while
// MaxInflightGOPs GOPs are already in flight. The error returned is the
// pipeline's current first error (submission itself cannot fail).
func (p *ingestPipe) submit(frames []*frame.Frame) error {
	p.sem <- struct{}{}
	p.inflight.Add(1)
	p.jobs <- ingestJob{seq: p.nextSeq, frames: frames}
	p.nextSeq++
	return p.firstErr()
}

// encodeWorker encodes GOPs with per-worker reusable scratch. The CPU work
// holds one slot of the store-wide worker semaphore, so writer fan-out and
// reader fan-out together never exceed Options.Workers.
func (p *ingestPipe) encodeWorker() {
	defer p.workers.Done()
	enc := codec.NewEncoder()
	for job := range p.jobs {
		p.s.workSem <- struct{}{}
		data, sum, err := encodeForIngest(p.s, enc, p.spec, job.frames)
		<-p.s.workSem
		p.done <- ingestResult{
			seq:    job.seq,
			gop:    encodedGOP{data: data, frames: len(job.frames), summary: sum},
			err:    err,
			permit: true,
		}
	}
}

// committer restores sequence order and commits ready runs of GOPs in
// batches, one video lock acquisition per run. It is the only goroutine
// that commits for this writer, which is what makes the in-order guarantee
// and the first-error semantics deterministic.
func (p *ingestPipe) committer() {
	defer close(p.commit)
	pending := make(map[int]ingestResult)
	next := 0 // next sequence number to commit
	var batch []encodedGOP
	for res := range p.done {
		pending[res.seq] = res
		// Gather the ready run [next, ...) — including results that arrived
		// while a previous batch was committing — and commit it in one
		// batch under a single video lock acquisition.
		batch = batch[:0]
		disposed := 0 // GOPs leaving the pipeline this iteration
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if r.err != nil {
				p.fail(r.err) // first in sequence order wins
			}
			if p.firstErr() != nil {
				disposed++ // poisoned: discard instead of committing
				continue
			}
			batch = append(batch, r.gop)
		}
		if len(batch) > 0 {
			if err := p.s.commitGOPs(p.video, p.phys, batch); err != nil {
				p.fail(err)
			}
			disposed += len(batch)
		}
		// Whether committed or discarded, each disposed GOP frees one
		// in-flight token (unblocking Append) and one drain count.
		for i := 0; i < disposed; i++ {
			<-p.sem
			p.inflight.Done()
		}
	}
}

// fail records the pipeline's first error.
func (p *ingestPipe) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// firstErr returns the pipeline's first error, if any.
func (p *ingestPipe) firstErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// drain blocks until every submitted GOP has committed or been discarded.
func (p *ingestPipe) drain() { p.inflight.Wait() }

// shutdown stops the pipeline's goroutines. Pending GOPs are still
// processed (workers drain the job channel before exiting); callers that
// need them durable call drain first.
func (p *ingestPipe) shutdown() {
	close(p.jobs)
	<-p.commit
}
