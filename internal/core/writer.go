package core

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/storage"
)

// Writer is a streaming write handle. Frames appended to it accumulate
// into GOPs; each completed GOP is persisted and immediately visible to
// readers, so applications may query prefixes of video still being written
// (Section 2: "writes to VSS are non-blocking and users may query prefixes
// of ingested video data").
//
// A Writer is NOT safe for concurrent use by multiple goroutines; open
// one Writer per producer. Distinct Writers — even on the same video —
// may run concurrently: the video lock serializes their GOP appends.
// Frame buffering and GOP encoding happen outside the video lock, so a
// streaming writer does not block readers of the same video while it
// compresses.
type Writer struct {
	s     *Store
	video string
	spec  WriteSpec
	phys  *PhysMeta
	buf   []*frame.Frame
	gopN  int // frames per GOP for this writer
	err   error
}

// Write stores frames as (or appended to) the video's original physical
// representation, blocking until all GOPs are durable. It is shorthand for
// OpenWriter + Append + Close.
func (s *Store) Write(video string, spec WriteSpec, frames []*frame.Frame) error {
	w, err := s.OpenWriter(video, spec)
	if err != nil {
		return err
	}
	if err := w.Append(frames...); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// WriteEncoded ingests already-compressed GOPs as-is (the paper: "VSS
// accepts as-is ingested compressed GOP sizes"). Each element must be a
// valid encoded GOP with a consistent configuration. Safe for concurrent
// use; it holds the video's lock for the duration of the batch.
func (s *Store) WriteEncoded(video string, fps int, gops [][]byte) error {
	if len(gops) == 0 {
		return fmt.Errorf("core: no GOPs to write")
	}
	hd0, err := codec.DecodeHeader(gops[0])
	if err != nil {
		return err
	}
	vs := s.acquire(video)
	if vs == nil {
		return ErrNotFound
	}
	defer vs.mu.Unlock()
	p, err := s.ensureOriginalLocked(vs, WriteSpec{FPS: fps, Codec: hd0.Codec, Quality: hd0.Quality}, hd0.Width, hd0.Height, hd0.PixFmt)
	if err != nil {
		return err
	}
	for _, gop := range gops {
		hd, err := codec.DecodeHeader(gop)
		if err != nil {
			return err
		}
		if hd.Codec != hd0.Codec || hd.Width != hd0.Width || hd.Height != hd0.Height {
			return fmt.Errorf("core: inconsistent GOP configuration in encoded write")
		}
		if err := s.appendGOPLocked(vs, p, gop, hd.FrameCount); err != nil {
			return err
		}
	}
	return s.finishWriteLocked(vs, p)
}

// OpenWriter starts a streaming write. The first writer on a video
// establishes its original physical representation m0; later writers
// append to it (the prototype adopts the paper's no-overwrite policy, so
// the configuration must match).
func (s *Store) OpenWriter(video string, spec WriteSpec) (*Writer, error) {
	if spec.FPS <= 0 {
		return nil, fmt.Errorf("core: write requires a positive fps")
	}
	if spec.Codec == "" {
		spec.Codec = codec.Raw
	}
	if !spec.Codec.Valid() {
		return nil, fmt.Errorf("core: unknown codec %q", spec.Codec)
	}
	spec.Quality = effectiveQuality(spec.Quality)
	if s.lookup(video) == nil {
		return nil, ErrNotFound
	}
	return &Writer{s: s, video: video, spec: spec}, nil
}

// ensureOriginalLocked finds or creates the original physical video m0.
// Caller holds the video's lock.
func (s *Store) ensureOriginalLocked(vs *videoState, spec WriteSpec, w, h int, pixfmt frame.PixelFormat) (*PhysMeta, error) {
	v := vs.meta
	if p := vs.original(); p != nil {
		if p.Codec != spec.Codec || p.Width != w || p.Height != h || p.FPS != spec.FPS {
			return nil, fmt.Errorf("core: video %s already written as %dx%dr%d.%s; writes must append in the same configuration (no-overwrite policy)",
				v.Name, p.Width, p.Height, p.FPS, p.Codec)
		}
		return p, nil
	}
	id := s.allocPhys(v)
	p := &PhysMeta{
		ID:      id,
		Dir:     storage.PhysicalDirName(id, w, h, spec.FPS, string(spec.Codec)),
		Width:   w,
		Height:  h,
		FPS:     spec.FPS,
		Codec:   spec.Codec,
		PixFmt:  pixfmt,
		Quality: spec.Quality,
		ROI:     FullNRect(),
		Orig:    true,
	}
	v.Original = id
	v.FPS = spec.FPS
	v.Width = w
	v.Height = h
	vs.phys[id] = p
	if err := s.saveVideo(v); err != nil {
		return nil, err
	}
	return p, s.savePhys(v.Name, p)
}

// appendGOPLocked persists one encoded GOP and registers it. Caller holds
// the video's lock.
func (s *Store) appendGOPLocked(vs *videoState, p *PhysMeta, data []byte, frames int) error {
	v := vs.meta
	seq := len(p.GOPs)
	start := 0
	if seq > 0 {
		last := p.GOPs[seq-1]
		start = last.StartFrame + last.Frames
	}
	if err := s.files.WriteGOP(v.Name, p.Dir, seq, data); err != nil {
		return err
	}
	p.GOPs = append(p.GOPs, GOPMeta{
		Seq:        seq,
		StartFrame: start,
		Frames:     frames,
		Bytes:      int64(len(data)),
		LRU:        s.tick(v),
	})
	return s.savePhys(v.Name, p)
}

// finishWriteLocked settles bookkeeping after a write burst: duration,
// default budget, eviction, and deferred compression pressure. Caller
// holds the video's lock.
func (s *Store) finishWriteLocked(vs *videoState, p *PhysMeta) error {
	v := vs.meta
	if end := p.End(); p.Orig && end > v.Duration {
		v.Duration = end
	}
	if v.Budget == 0 && p.Orig && s.opts.BudgetMultiple > 0 {
		v.Budget = int64(float64(p.Bytes()) * s.opts.BudgetMultiple)
	}
	if err := s.saveVideo(v); err != nil {
		return err
	}
	if err := s.evictLocked(vs); err != nil {
		return err
	}
	return s.deferredPressureLocked(vs)
}

// Append buffers frames, flushing complete GOPs.
func (w *Writer) Append(frames ...*frame.Frame) error {
	if w.err != nil {
		return w.err
	}
	for _, f := range frames {
		if err := w.append(f); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

func (w *Writer) append(f *frame.Frame) error {
	if w.phys == nil {
		vs := w.s.acquire(w.video)
		if vs == nil {
			return ErrNotFound
		}
		pixfmt := f.Format
		if w.spec.Codec.Compressed() {
			pixfmt = frame.YUV420
		}
		p, err := w.s.ensureOriginalLocked(vs, w.spec, f.Width, f.Height, pixfmt)
		vs.mu.Unlock()
		if err != nil {
			return err
		}
		w.phys = p
		w.gopN = w.gopFrames(f)
	}
	if f.Width != w.phys.Width || f.Height != w.phys.Height {
		return fmt.Errorf("core: frame %dx%d does not match video %dx%d", f.Width, f.Height, w.phys.Width, w.phys.Height)
	}
	w.buf = append(w.buf, f)
	if len(w.buf) >= w.gopN {
		return w.flush()
	}
	return nil
}

// gopFrames picks the GOP length: the configured frame count for
// compressed video, or a byte-bounded block for raw (paper: blocks of at
// most 25MB, or a single frame beyond that).
func (w *Writer) gopFrames(f *frame.Frame) int {
	if w.spec.Codec.Compressed() {
		return w.s.opts.GOPFrames
	}
	frameBytes := int64(f.Format.Size(f.Width, f.Height))
	if frameBytes >= w.s.opts.RawBlockBytes {
		return 1
	}
	n := int(w.s.opts.RawBlockBytes / frameBytes)
	if n > w.s.opts.GOPFrames {
		n = w.s.opts.GOPFrames
	}
	if n < 1 {
		n = 1
	}
	return n
}

// flush encodes the buffered GOP (outside the video lock — encoding is
// the CPU-heavy part of a write) and persists it under the lock.
func (w *Writer) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	data, _, err := codec.EncodeGOP(w.buf, w.spec.Codec, w.spec.Quality)
	if err != nil {
		return err
	}
	n := len(w.buf)
	w.buf = w.buf[:0]
	vs := w.s.acquire(w.video)
	if vs == nil {
		return ErrNotFound
	}
	defer vs.mu.Unlock()
	if vs.byID(w.phys.ID) != w.phys {
		// The video was deleted (and possibly recreated) under us; this
		// writer's physical view is gone.
		return ErrNotFound
	}
	return w.s.appendGOPLocked(vs, w.phys, data, n)
}

// Flush persists any buffered partial GOP, making all appended frames
// readable.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.phys == nil {
		return nil
	}
	if err := w.flush(); err != nil {
		w.err = err
		return err
	}
	vs := w.s.acquire(w.video)
	if vs == nil {
		return ErrNotFound
	}
	defer vs.mu.Unlock()
	if vs.byID(w.phys.ID) != w.phys {
		return ErrNotFound
	}
	return w.s.finishWriteLocked(vs, w.phys)
}

// Close flushes and finalizes the write. Per the paper's prototype, writes
// are only guaranteed visible once the writer is closed; in this
// implementation every whole GOP is already visible earlier.
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		return err
	}
	w.err = fmt.Errorf("core: writer closed")
	return nil
}
