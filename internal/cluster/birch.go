// Package cluster implements BIRCH clustering (Zhang, Ramakrishnan & Livny,
// SIGMOD 1996) over feature vectors. VSS uses it to prune the joint
// compression pair search (Section 5.1.3 of the paper): video fragments are
// fingerprinted with color histograms, clustered incrementally as they
// arrive, and only fragments sharing a cluster are considered for joint
// compression.
//
// The implementation maintains a CF-tree of clustering features
// (N, LS, SS). It is memory efficient, scales to many points, and supports
// incremental insertion — the properties for which the paper selected
// BIRCH.
package cluster

import (
	"fmt"
	"math"
)

// CF is a clustering feature: the sufficient statistics of a set of
// vectors (count, linear sum, square sum).
type CF struct {
	N  int
	LS []float64
	SS float64
}

// newCF creates a clustering feature from a single vector.
func newCF(v []float64) CF {
	ls := make([]float64, len(v))
	var ss float64
	for i, x := range v {
		ls[i] = x
		ss += x * x
	}
	return CF{N: 1, LS: ls, SS: ss}
}

// add merges another CF into this one.
func (c *CF) add(o CF) {
	if c.N == 0 {
		c.LS = make([]float64, len(o.LS))
	}
	c.N += o.N
	for i := range o.LS {
		c.LS[i] += o.LS[i]
	}
	c.SS += o.SS
}

// Centroid returns the mean vector of the cluster.
func (c *CF) Centroid() []float64 {
	out := make([]float64, len(c.LS))
	for i, x := range c.LS {
		out[i] = x / float64(c.N)
	}
	return out
}

// Radius returns the RMS distance of cluster members to the centroid
// (BIRCH's R). Smaller radius means a tighter cluster; VSS considers the
// tightest cluster first when searching for joint compression candidates.
func (c *CF) Radius() float64 {
	if c.N == 0 {
		return 0
	}
	var cent2 float64
	for _, x := range c.LS {
		m := x / float64(c.N)
		cent2 += m * m
	}
	v := c.SS/float64(c.N) - cent2
	if v < 0 {
		v = 0 // numerical noise
	}
	return math.Sqrt(v)
}

// centroidDist returns the Euclidean distance between cluster centroids.
func centroidDist(a, b *CF) float64 {
	var s float64
	for i := range a.LS {
		d := a.LS[i]/float64(a.N) - b.LS[i]/float64(b.N)
		s += d * d
	}
	return math.Sqrt(s)
}

// radiusIfMerged computes the radius of the union of a CF and a point
// without materializing the merge.
func radiusIfMerged(c *CF, v []float64) float64 {
	n := float64(c.N + 1)
	var ss float64 = c.SS
	var cent2 float64
	for i, x := range v {
		ls := c.LS[i] + x
		ss0 := x * x
		ss += ss0
		m := ls / n
		cent2 += m * m
	}
	val := ss/n - cent2
	if val < 0 {
		val = 0
	}
	return math.Sqrt(val)
}

// Entry is a leaf cluster: a CF plus the identifiers of the items assigned
// to it. VSS stores fragment IDs here and retrieves cluster co-members as
// joint compression candidates.
type Entry struct {
	CF    CF
	Items []int
}

// node is a CF-tree node. Leaves hold Entries; internal nodes hold children
// with aggregate CFs.
type node struct {
	leaf     bool
	entries  []*Entry // leaf level
	children []*node  // internal level
	cf       CF       // aggregate over the subtree (internal nodes)
}

// Tree is a BIRCH CF-tree with a fixed distance threshold and branching
// factor. Insertion is O(depth * branching).
type Tree struct {
	threshold float64 // max leaf-entry radius
	branching int     // max entries per node
	root      *node
	dim       int
	count     int
}

// NewTree creates a CF-tree. threshold bounds the radius of leaf clusters;
// branching bounds node fan-out (must be >= 2).
func NewTree(threshold float64, branching int) (*Tree, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("cluster: threshold must be positive, got %f", threshold)
	}
	if branching < 2 {
		return nil, fmt.Errorf("cluster: branching must be >= 2, got %d", branching)
	}
	return &Tree{threshold: threshold, branching: branching, root: &node{leaf: true}}, nil
}

// Len returns the number of inserted items.
func (t *Tree) Len() int { return t.count }

// Insert adds an item (by caller-assigned id) with its feature vector,
// returning the leaf Entry it was absorbed into or seeded as.
func (t *Tree) Insert(id int, v []float64) (*Entry, error) {
	if t.dim == 0 {
		t.dim = len(v)
	}
	if len(v) != t.dim {
		return nil, fmt.Errorf("cluster: dimension %d, tree expects %d", len(v), t.dim)
	}
	entry, split := t.insert(t.root, id, v)
	if split != nil {
		// Root split: grow the tree by one level.
		newRoot := &node{leaf: false, children: []*node{t.root, split}}
		newRoot.cf = aggregate(t.root)
		newRoot.cf.add(aggregate(split))
		t.root = newRoot
	}
	t.count++
	return entry, nil
}

// aggregate computes the CF summarizing an entire node.
func aggregate(n *node) CF {
	var cf CF
	if n.leaf {
		for _, e := range n.entries {
			cf.add(e.CF)
		}
	} else {
		for _, c := range n.children {
			cf.add(c.cf)
		}
	}
	return cf
}

// insert descends to the closest leaf, absorbs or adds an entry, and
// propagates splits. Returns the entry used and a new sibling node if this
// node split.
func (t *Tree) insert(n *node, id int, v []float64) (*Entry, *node) {
	point := newCF(v)
	if n.leaf {
		// Find closest entry by centroid distance.
		var best *Entry
		bestD := math.Inf(1)
		for _, e := range n.entries {
			if d := centroidDist(&e.CF, &point); d < bestD {
				best, bestD = e, d
			}
		}
		if best != nil && radiusIfMerged(&best.CF, v) <= t.threshold {
			best.CF.add(point)
			best.Items = append(best.Items, id)
			return best, nil
		}
		e := &Entry{CF: point, Items: []int{id}}
		n.entries = append(n.entries, e)
		if len(n.entries) > t.branching {
			return e, t.splitLeaf(n)
		}
		return e, nil
	}
	// Internal: descend into the child with the nearest centroid.
	var best *node
	bestD := math.Inf(1)
	for _, c := range n.children {
		if c.cf.N == 0 {
			continue
		}
		if d := centroidDist(&c.cf, &point); d < bestD {
			best, bestD = c, d
		}
	}
	if best == nil {
		best = n.children[0]
	}
	entry, split := t.insert(best, id, v)
	best.cf = aggregate(best)
	if split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.branching {
			n.cf = aggregate(n)
			return entry, t.splitInternal(n)
		}
	}
	n.cf = aggregate(n)
	return entry, nil
}

// splitLeaf divides an over-full leaf into two by the classic BIRCH rule:
// pick the two farthest entries as seeds and assign the rest by proximity.
func (t *Tree) splitLeaf(n *node) *node {
	i0, i1 := farthestPair(len(n.entries), func(i, j int) float64 {
		return centroidDist(&n.entries[i].CF, &n.entries[j].CF)
	})
	old := n.entries
	sib := &node{leaf: true}
	n.entries = nil
	for k, e := range old {
		if k == i0 {
			n.entries = append(n.entries, e)
			continue
		}
		if k == i1 {
			sib.entries = append(sib.entries, e)
			continue
		}
		if centroidDist(&e.CF, &old[i0].CF) <= centroidDist(&e.CF, &old[i1].CF) {
			n.entries = append(n.entries, e)
		} else {
			sib.entries = append(sib.entries, e)
		}
	}
	sib.cf = aggregate(sib)
	return sib
}

func (t *Tree) splitInternal(n *node) *node {
	i0, i1 := farthestPair(len(n.children), func(i, j int) float64 {
		return centroidDist(&n.children[i].cf, &n.children[j].cf)
	})
	old := n.children
	sib := &node{leaf: false}
	n.children = nil
	for k, c := range old {
		if k == i0 {
			n.children = append(n.children, c)
			continue
		}
		if k == i1 {
			sib.children = append(sib.children, c)
			continue
		}
		if centroidDist(&c.cf, &old[i0].cf) <= centroidDist(&c.cf, &old[i1].cf) {
			n.children = append(n.children, c)
		} else {
			sib.children = append(sib.children, c)
		}
	}
	n.cf = aggregate(n)
	sib.cf = aggregate(sib)
	return sib
}

// farthestPair returns the indices of the two items maximizing dist.
func farthestPair(n int, dist func(i, j int) float64) (int, int) {
	bi, bj := 0, 1
	best := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(i, j); d > best {
				best, bi, bj = d, i, j
			}
		}
	}
	return bi, bj
}

// Clusters returns all leaf entries (the flat clustering).
func (t *Tree) Clusters() []*Entry {
	var out []*Entry
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			out = append(out, n.entries...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// SmallestRadiusCluster returns the leaf cluster with the smallest radius
// among clusters with at least minItems members, or nil if none qualifies.
// VSS selects this cluster first when searching for joint compression
// candidates (Section 5.1.3: "selects the cluster with the smallest
// radius").
func (t *Tree) SmallestRadiusCluster(minItems int) *Entry {
	var best *Entry
	bestR := math.Inf(1)
	for _, e := range t.Clusters() {
		if len(e.Items) < minItems {
			continue
		}
		if r := e.CF.Radius(); r < bestR {
			best, bestR = e, r
		}
	}
	return best
}

// ClustersByRadius returns qualifying leaf clusters ordered tightest-first.
func (t *Tree) ClustersByRadius(minItems int) []*Entry {
	var out []*Entry
	for _, e := range t.Clusters() {
		if len(e.Items) >= minItems {
			out = append(out, e)
		}
	}
	// Insertion sort: cluster counts are small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].CF.Radius() < out[j-1].CF.Radius(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
