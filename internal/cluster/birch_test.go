package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(0, 4); err == nil {
		t.Error("zero threshold should error")
	}
	if _, err := NewTree(1, 1); err == nil {
		t.Error("branching 1 should error")
	}
	if _, err := NewTree(0.5, 4); err != nil {
		t.Errorf("valid params: %v", err)
	}
}

func TestCFStatistics(t *testing.T) {
	cf := newCF([]float64{1, 2})
	cf.add(newCF([]float64{3, 4}))
	cent := cf.Centroid()
	if cent[0] != 2 || cent[1] != 3 {
		t.Errorf("centroid %v", cent)
	}
	// Radius: RMS distance to centroid; both points are sqrt(2) away.
	if r := cf.Radius(); math.Abs(r-math.Sqrt2) > 1e-9 {
		t.Errorf("radius %f, want sqrt(2)", r)
	}
}

func TestInsertSeparatedClusters(t *testing.T) {
	tree, _ := NewTree(0.5, 4)
	// Two well-separated groups.
	for i := 0; i < 10; i++ {
		if _, err := tree.Insert(i, []float64{0.1 * float64(i%3), 0}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 20; i++ {
		if _, err := tree.Insert(i, []float64{10 + 0.1*float64(i%3), 0}); err != nil {
			t.Fatal(err)
		}
	}
	clusters := tree.Clusters()
	if len(clusters) < 2 {
		t.Fatalf("expected >= 2 clusters, got %d", len(clusters))
	}
	// No cluster may span both groups.
	for _, c := range clusters {
		hasLow, hasHigh := false, false
		for _, id := range c.Items {
			if id < 10 {
				hasLow = true
			} else {
				hasHigh = true
			}
		}
		if hasLow && hasHigh {
			t.Error("cluster spans both groups")
		}
	}
	if tree.Len() != 20 {
		t.Errorf("Len = %d", tree.Len())
	}
}

func TestDimensionMismatch(t *testing.T) {
	tree, _ := NewTree(1, 4)
	tree.Insert(0, []float64{1, 2})
	if _, err := tree.Insert(1, []float64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestAllItemsPreserved(t *testing.T) {
	// Property: every inserted id appears in exactly one cluster, under
	// many random insertion orders that force splits.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, _ := NewTree(0.3, 3)
		n := 50
		for i := 0; i < n; i++ {
			v := []float64{rng.Float64() * 10, rng.Float64() * 10}
			if _, err := tree.Insert(i, v); err != nil {
				return false
			}
		}
		seen := map[int]int{}
		for _, c := range tree.Clusters() {
			for _, id := range c.Items {
				seen[id]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLeafRadiusBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	thresh := 0.4
	tree, _ := NewTree(thresh, 4)
	for i := 0; i < 200; i++ {
		tree.Insert(i, []float64{rng.Float64() * 5, rng.Float64() * 5})
	}
	for _, c := range tree.Clusters() {
		if r := c.CF.Radius(); r > thresh+1e-9 {
			t.Errorf("cluster radius %f exceeds threshold %f", r, thresh)
		}
	}
}

func TestSmallestRadiusCluster(t *testing.T) {
	tree, _ := NewTree(5, 8)
	// Tight cluster of 3 identical points.
	for i := 0; i < 3; i++ {
		tree.Insert(i, []float64{1, 1})
	}
	// Looser cluster.
	tree.Insert(3, []float64{20, 20})
	tree.Insert(4, []float64{22, 22})
	tree.Insert(5, []float64{24, 24})
	best := tree.SmallestRadiusCluster(2)
	if best == nil {
		t.Fatal("no qualifying cluster")
	}
	if best.CF.Radius() > 1e-9 {
		t.Errorf("tightest cluster radius %f, want 0", best.CF.Radius())
	}
	for _, id := range best.Items {
		if id > 2 {
			t.Errorf("tight cluster contains id %d", id)
		}
	}
	if got := tree.SmallestRadiusCluster(100); got != nil {
		t.Error("minItems filter ignored")
	}
}

func TestClustersByRadiusOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tree, _ := NewTree(1.0, 4)
	for i := 0; i < 100; i++ {
		tree.Insert(i, []float64{rng.Float64() * 20, rng.Float64() * 20})
	}
	ordered := tree.ClustersByRadius(1)
	for i := 1; i < len(ordered); i++ {
		if ordered[i].CF.Radius() < ordered[i-1].CF.Radius()-1e-12 {
			t.Fatal("clusters not ordered by radius")
		}
	}
}

func TestIncrementalGrowthHandlesSplits(t *testing.T) {
	// Deep insertion with tiny branching exercises internal splits.
	tree, _ := NewTree(0.05, 2)
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 300; i++ {
		v := []float64{rng.Float64() * 100}
		if _, err := tree.Insert(i, v); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, c := range tree.Clusters() {
		total += len(c.Items)
	}
	if total != 300 {
		t.Errorf("items across clusters = %d, want 300", total)
	}
}

func TestInsertReturnsHostEntry(t *testing.T) {
	tree, _ := NewTree(1, 4)
	e1, _ := tree.Insert(1, []float64{0, 0})
	e2, _ := tree.Insert(2, []float64{0.1, 0})
	if e1 != e2 {
		t.Error("near-identical points should land in the same entry")
	}
	if len(e1.Items) != 2 {
		t.Errorf("entry items %v", e1.Items)
	}
	e3, _ := tree.Insert(3, []float64{50, 50})
	if e3 == e1 {
		t.Error("distant point should seed a new entry")
	}
}
