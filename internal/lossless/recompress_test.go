package lossless

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/codec"
	"repro/internal/frame"
)

// rawGOP builds a raw GOP container over noisy synthetic frames — the
// exact input shape the deferred tier hands to Recompress.
func rawGOP(t *testing.T, n, w, h int, seed int64) ([]byte, []*frame.Frame) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	frames := make([]*frame.Frame, n)
	for i := range frames {
		f := frame.New(w, h, frame.YUV420)
		for j := range f.Data {
			f.Data[j] = byte((j/5)%200) + byte(rng.Intn(8))
		}
		frames[i] = f
	}
	data, _, err := codec.EncodeGOP(frames, codec.Raw, 100)
	if err != nil {
		t.Fatal(err)
	}
	return data, frames
}

// TestRecompressRoutesRawGOPThroughLS pins the deferred tier's new path:
// a raw GOP container comes back as a directly-decodable ls container —
// no VSL1 framing — that is smaller than raw and byte-identical on
// decode.
func TestRecompressRoutesRawGOPThroughLS(t *testing.T) {
	raw, frames := rawGOP(t, 6, 64, 48, 41)
	out, err := Recompress(raw, LevelForBudget(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if IsCompressed(out) {
		t.Fatal("raw GOP recompressed into a flate block, want an ls container")
	}
	hd, err := codec.DecodeHeader(out)
	if err != nil {
		t.Fatalf("output is not a GOP container: %v", err)
	}
	if hd.Codec != codec.LS {
		t.Fatalf("output codec = %q, want ls", hd.Codec)
	}
	if len(out) >= len(raw) {
		t.Fatalf("recompressed %d bytes >= raw %d bytes", len(out), len(raw))
	}
	dec, _, err := codec.DecodeGOP(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		if !bytes.Equal(frames[i].Data, dec[i].Data) {
			t.Fatalf("frame %d not byte-identical through Recompress", i)
		}
	}
}

// TestRecompressFallsBackToFlate pins the fallback: bytes that are not a
// raw GOP container (arbitrary data, and an already-compressed h264
// container) come back as a VSL1 flate block that round-trips.
func TestRecompressFallsBackToFlate(t *testing.T) {
	blob := bytes.Repeat([]byte("not a gop container "), 64)
	_, frames := rawGOP(t, 4, 32, 24, 43)
	h264, _, err := codec.EncodeGOP(frames, codec.H264, 85)
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"blob": blob, "h264": h264} {
		out, err := Recompress(data, 6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !IsCompressed(out) {
			t.Fatalf("%s: fallback did not produce a VSL1 block", name)
		}
		got, err := Decompress(out)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: fallback round trip mismatch", name)
		}
	}
}
