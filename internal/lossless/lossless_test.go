package lossless

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("video frame data "), 100)
	for _, level := range []int{1, 5, 10, 19} {
		block, err := Compress(data, level)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		got, err := Decompress(block)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("level %d: round trip mismatch", level)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(data []byte, lvl uint8) bool {
		level := int(lvl%MaxLevel) + 1
		block, err := Compress(data, level)
		if err != nil {
			return false
		}
		got, err := Decompress(block)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyInput(t *testing.T) {
	block, err := Compress(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected empty output, got %d bytes", len(got))
	}
}

func TestLevelRecorded(t *testing.T) {
	block, err := Compress([]byte("x"), 7)
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := Level(block)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 7 {
		t.Errorf("recorded level %d, want 7", lvl)
	}
}

func TestLevelClamped(t *testing.T) {
	block, _ := Compress([]byte("x"), 100)
	if lvl, _ := Level(block); lvl != MaxLevel {
		t.Errorf("level %d, want clamp to %d", lvl, MaxLevel)
	}
	block, _ = Compress([]byte("x"), -3)
	if lvl, _ := Level(block); lvl != MinLevel {
		t.Errorf("level %d, want clamp to %d", lvl, MinLevel)
	}
}

func TestHigherLevelNoWorseRatio(t *testing.T) {
	// Compressible data: redundant synthetic "frame" content.
	rng := rand.New(rand.NewSource(9))
	row := make([]byte, 512)
	for i := range row {
		row[i] = byte(rng.Intn(8) * 32)
	}
	data := bytes.Repeat(row, 64)
	lo, _ := Compress(data, 1)
	hi, _ := Compress(data, 19)
	if len(hi) > len(lo) {
		t.Errorf("level 19 (%d bytes) worse than level 1 (%d bytes)", len(hi), len(lo))
	}
}

func TestIsCompressed(t *testing.T) {
	block, _ := Compress([]byte("hello"), 3)
	if !IsCompressed(block) {
		t.Error("block should be recognized")
	}
	if IsCompressed([]byte("plainly raw data")) {
		t.Error("raw data misrecognized")
	}
	if IsCompressed(nil) {
		t.Error("nil misrecognized")
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	if _, err := Decompress([]byte("garbage")); err == nil {
		t.Error("expected header error")
	}
	block, _ := Compress(bytes.Repeat([]byte("a"), 1000), 5)
	if _, err := Decompress(block[:len(block)/2]); err == nil {
		t.Error("expected truncation error")
	}
}

func TestLevelForBudget(t *testing.T) {
	if got := LevelForBudget(1.0); got != MinLevel {
		t.Errorf("full budget -> level %d, want %d", got, MinLevel)
	}
	if got := LevelForBudget(0.0); got != MaxLevel {
		t.Errorf("exhausted budget -> level %d, want %d", got, MaxLevel)
	}
	mid := LevelForBudget(0.5)
	if mid <= MinLevel || mid >= MaxLevel {
		t.Errorf("half budget -> level %d, want interior", mid)
	}
	// Monotone: less remaining budget, higher (or equal) level.
	prev := 0
	for f := 1.0; f >= 0; f -= 0.05 {
		l := LevelForBudget(f)
		if l < prev {
			t.Errorf("level not monotone at fraction %f: %d < %d", f, l, prev)
		}
		prev = l
	}
	// Out-of-range inputs clamp.
	if LevelForBudget(-1) != MaxLevel || LevelForBudget(2) != MinLevel {
		t.Error("out-of-range fractions should clamp")
	}
}
